//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the crash-consistent metadata journal: WAL framing and
/// torn-tail rules, group commit and ack semantics, checkpoint +
/// truncation, the crash-point x recovery matrix (every acknowledged
/// write rebuilt bit-identically, unacknowledged writes cleanly
/// absent), and corruption sweeps over both artefacts.
///
//===----------------------------------------------------------------------===//

#include "fault/FaultInjector.h"
#include "hash/Crc32.h"
#include "journal/JournaledVolume.h"
#include "journal/Recovery.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

using namespace padre;
using namespace padre::journal;
using padre::fault::CrashPoint;
using padre::fault::ErrorCode;

namespace {

constexpr std::size_t BlockSize = 4096;
constexpr std::uint64_t BlockCount = 128;

struct JournalFixture : ::testing::Test {
  std::string JournalPath;
  std::string CheckpointPath;

  void SetUp() override {
    const std::string Base =
        ::testing::TempDir() + "padre_journal_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    JournalPath = Base + ".wal";
    CheckpointPath = Base + ".ckpt";
  }

  void TearDown() override {
    std::remove(JournalPath.c_str());
    std::remove(CheckpointPath.c_str());
    std::remove((CheckpointPath + ".tmp").c_str());
  }

  static std::unique_ptr<ReductionPipeline> makePipeline() {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.Dedup.Index.BinBits = 8;
    return std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  }

  static ByteVector blockOf(std::uint64_t Tag) {
    ByteVector Data(BlockSize);
    Random Rng(Tag * 31337 + 5);
    std::uint8_t Filler[64];
    Rng.fillBytes(Filler, sizeof(Filler));
    for (std::size_t I = 0; I < Data.size(); I += 64)
      if ((I / 64) % 3 == 0)
        Rng.fillBytes(Data.data() + I, 64);
      else
        std::copy(Filler, Filler + 64, Data.data() + I);
    return Data;
  }

  static fault::FaultPlan planOf(const std::string &Spec) {
    fault::FaultPlan Plan;
    std::string Error;
    EXPECT_TRUE(fault::parseFaultPlan(Spec, Plan, Error)) << Error;
    return Plan;
  }

  JournaledVolumeConfig configOf(std::size_t GroupCommitOps = 1,
                                 std::size_t CheckpointEveryOps = 0,
                                 fault::FaultInjector *Faults = nullptr) {
    JournaledVolumeConfig Config;
    Config.JournalPath = JournalPath;
    Config.CheckpointPath = CheckpointPath;
    Config.GroupCommitOps = GroupCommitOps;
    Config.CheckpointEveryOps = CheckpointEveryOps;
    Config.Faults = Faults;
    return Config;
  }
};

/// Reads a whole volume and requires success.
ByteVector readAll(Volume &Vol) {
  const auto Data = Vol.readBlocks(0, Vol.blockCount());
  EXPECT_TRUE(Data.has_value());
  return Data ? *Data : ByteVector();
}

/// Appends raw bytes to a file (corruption helper).
void appendToFile(const std::string &Path, ByteSpan Bytes) {
  std::FILE *File = std::fopen(Path.c_str(), "ab");
  ASSERT_NE(File, nullptr);
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), File), Bytes.size());
  std::fclose(File);
}

/// Reads a whole file.
ByteVector slurp(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(File, nullptr);
  if (!File)
    return {};
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  ByteVector Out(static_cast<std::size_t>(Size));
  EXPECT_EQ(std::fread(Out.data(), 1, Out.size(), File), Out.size());
  std::fclose(File);
  return Out;
}

/// Writes a whole file (truncating).
void dump(const std::string &Path, ByteSpan Bytes) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  ASSERT_EQ(std::fwrite(Bytes.data(), 1, Bytes.size(), File), Bytes.size());
  std::fclose(File);
}

} // namespace

//===--------------------------------------------------------------------===//
// Round trips and ack semantics
//===--------------------------------------------------------------------===//

TEST_F(JournalFixture, JournaledOpsRecoverBitIdentical) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  ASSERT_TRUE(Jv.ctorStatus().ok());

  for (std::uint64_t Op = 0; Op < 24; ++Op) {
    const ByteVector Data = blockOf(Op % 9); // duplicates included
    const auto Seq =
        Jv.writeBlocks((Op * 5) % BlockCount, ByteSpan(Data.data(),
                                                       Data.size()));
    ASSERT_TRUE(Seq.ok());
    EXPECT_LE(*Seq, Jv.ackedSeq()); // per-op commit acks immediately
  }
  Volume::SnapshotId Snap = 0;
  ASSERT_TRUE(Jv.createSnapshot(&Snap).ok());
  ASSERT_TRUE(Jv.trim(5, 3).ok());
  const ByteVector Fresh = blockOf(777);
  ASSERT_TRUE(Jv.writeBlocks(10, ByteSpan(Fresh.data(), Fresh.size())).ok());
  std::size_t Collected = 0;
  ASSERT_TRUE(Jv.collectGarbage(&Collected).ok());

  const ByteVector Before = readAll(Vol);
  const auto SnapBefore = Vol.readSnapshotBlocks(Snap, 0, BlockCount);
  ASSERT_TRUE(SnapBefore.has_value());

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_FALSE(Report.CheckpointLoaded);
  EXPECT_EQ(Report.ReplayedRecords, 28u); // 24 + snap + trim + write + gc
  EXPECT_EQ(Report.DiscardedTailBytes, 0u);
  EXPECT_GT(Report.ModelledMicros, 0.0);

  EXPECT_EQ(readAll(Restored), Before);
  const auto SnapAfter = Restored.readSnapshotBlocks(Snap, 0, BlockCount);
  ASSERT_TRUE(SnapAfter.has_value());
  EXPECT_EQ(*SnapAfter, *SnapBefore);
  EXPECT_EQ(Restored.stats().LiveChunks, Vol.stats().LiveChunks);
  EXPECT_EQ(Restored.stats().DeadChunks, Vol.stats().DeadChunks);

  // Refcounts must agree chunk-for-chunk, not just in aggregate.
  for (const auto &Record : Vol.chunkRecords())
    EXPECT_EQ(Restored.refCount(Record.Location), Record.Refs)
        << "location " << Record.Location;
}

TEST_F(JournalFixture, RecoveryWithNoArtefactsIsEmpty) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *Pipeline, Vol);
  EXPECT_TRUE(Report.ok());
  EXPECT_FALSE(Report.CheckpointLoaded);
  EXPECT_EQ(Report.ReplayedRecords, 0u);
  EXPECT_EQ(Vol.stats().MappedBlocks, 0u);
}

TEST_F(JournalFixture, GroupCommitAcksInBatches) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf(/*GroupCommitOps=*/4));
  ASSERT_TRUE(Jv.ctorStatus().ok());

  for (std::uint64_t Op = 0; Op < 3; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
    EXPECT_EQ(Jv.ackedSeq(), 0u) << "acked before the group committed";
  }
  const ByteVector Data = blockOf(3);
  ASSERT_TRUE(Jv.writeBlocks(3, ByteSpan(Data.data(), Data.size())).ok());
  EXPECT_EQ(Jv.ackedSeq(), 4u);

  // A partial group flushes on sync().
  const ByteVector More = blockOf(4);
  ASSERT_TRUE(Jv.writeBlocks(4, ByteSpan(More.data(), More.size())).ok());
  EXPECT_EQ(Jv.ackedSeq(), 4u);
  ASSERT_TRUE(Jv.sync().ok());
  EXPECT_EQ(Jv.ackedSeq(), 5u);
}

TEST_F(JournalFixture, PendingRecordsAreCleanlyAbsentAfterRecovery) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf(/*GroupCommitOps=*/100));

  for (std::uint64_t Op = 0; Op < 5; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  ASSERT_TRUE(Jv.sync().ok());
  // Three more writes stay pooled in memory — the "crash" (abandoning
  // the frontend) loses them, exactly like an unsynced page cache.
  for (std::uint64_t Op = 5; Op < 8; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  EXPECT_EQ(Jv.ackedSeq(), 5u);

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Report.ReplayedRecords, 5u);
  for (std::uint64_t Op = 0; Op < 8; ++Op) {
    const auto Read = Restored.readBlocks(Op, 1);
    ASSERT_TRUE(Read.has_value());
    if (Op < 5)
      EXPECT_EQ(*Read, blockOf(Op)) << "acked write lost";
    else
      EXPECT_EQ(*Read, ByteVector(BlockSize, 0)) << "unsynced write leaked";
  }
}

//===--------------------------------------------------------------------===//
// Crash x recovery matrix
//===--------------------------------------------------------------------===//

namespace {

/// Outcome of driving writes into a crash: the last acknowledged
/// content per LBA, plus the LBAs whose post-crash content is allowed
/// to be either old or new (the post-commit durable-but-unacked case).
struct CrashScenario {
  std::vector<ByteVector> Acked; // empty = never acknowledged (zeros)
  /// Lba -> also-allowed content for the interrupted op.
  std::vector<std::pair<std::uint64_t, ByteVector>> Ambiguous;
  bool Crashed = false;
  std::uint64_t AckedSeq = 0;
};

CrashScenario driveUntilCrash(JournaledVolume &Jv, bool AmbiguousOnCrash,
                              std::uint64_t MaxOps) {
  CrashScenario Scenario;
  Scenario.Acked.resize(BlockCount);
  for (std::uint64_t Op = 0; Op < MaxOps; ++Op) {
    const std::uint64_t Lba = (Op * 7) % (BlockCount - 1);
    const ByteVector Data = JournalFixture::blockOf(Op * 13 + 1);
    const auto Seq = Jv.writeBlocks(Lba, ByteSpan(Data.data(), Data.size()));
    if (Seq.ok() && *Seq <= Jv.ackedSeq()) {
      Scenario.Acked[Lba] = Data;
      continue;
    }
    EXPECT_EQ(Seq.status().code(), ErrorCode::Crashed);
    Scenario.Crashed = true;
    if (AmbiguousOnCrash)
      Scenario.Ambiguous.emplace_back(Lba, Data);
    break;
  }
  Scenario.AckedSeq = Jv.ackedSeq();
  return Scenario;
}

/// Recovered content must equal the acknowledged content everywhere,
/// except the ambiguous LBAs, which may also hold the in-flight data.
void expectMatchesScenario(Volume &Restored, const CrashScenario &Scenario) {
  for (std::uint64_t Lba = 0; Lba < BlockCount; ++Lba) {
    const auto Read = Restored.readBlocks(Lba, 1);
    ASSERT_TRUE(Read.has_value());
    const ByteVector &Expected = Scenario.Acked[Lba].empty()
                                     ? ByteVector(BlockSize, 0)
                                     : Scenario.Acked[Lba];
    bool Allowed = *Read == Expected;
    for (const auto &[AmbLba, AmbData] : Scenario.Ambiguous)
      if (AmbLba == Lba && *Read == AmbData)
        Allowed = true;
    EXPECT_TRUE(Allowed) << "LBA " << Lba
                         << " holds neither acked nor in-flight content";
  }
}

} // namespace

TEST_F(JournalFixture, CrashMatrixRecoversExactlyTheAckedPrefix) {
  const struct {
    const char *Point;
    bool Ambiguous; // post-commit: durable but unacknowledged
  } Points[] = {
      {"mid-destage", false},
      {"pre-commit", false},
      {"mid-commit", false},
      {"post-commit", true},
  };
  for (const auto &Point : Points) {
    for (const std::uint64_t At : {0ull, 3ull, 7ull}) {
      SCOPED_TRACE(std::string(Point.Point) + " at=" + std::to_string(At));
      const fault::FaultPlan Plan = planOf(
          "seed=11;crash@" + std::string(Point.Point) +
          ":crash:at=" + std::to_string(At));
      fault::FaultInjector Faults(Plan);
      auto Pipeline = makePipeline();
      Volume Vol(*Pipeline, {BlockCount});
      JournaledVolume Jv(Vol, *Pipeline, configOf(1, 0, &Faults));
      ASSERT_TRUE(Jv.ctorStatus().ok());

      const CrashScenario Scenario =
          driveUntilCrash(Jv, Point.Ambiguous, /*MaxOps=*/16);
      ASSERT_TRUE(Scenario.Crashed);
      ASSERT_TRUE(Jv.halted());
      EXPECT_EQ(Scenario.AckedSeq, At);

      // Recover twice independently: both must satisfy the contract
      // and agree with each other (deterministic replay).
      auto Pipe1 = makePipeline();
      Volume Restored1(*Pipe1, {BlockCount});
      const RecoveryReport Report1 =
          recoverVolume(JournalPath, CheckpointPath, *Pipe1, Restored1);
      ASSERT_TRUE(Report1.ok()) << Report1.St.message();
      expectMatchesScenario(Restored1, Scenario);

      auto Pipe2 = makePipeline();
      Volume Restored2(*Pipe2, {BlockCount});
      const RecoveryReport Report2 =
          recoverVolume(JournalPath, CheckpointPath, *Pipe2, Restored2);
      ASSERT_TRUE(Report2.ok());
      EXPECT_EQ(readAll(Restored1), readAll(Restored2));
      EXPECT_EQ(Report1.ReplayedRecords, Report2.ReplayedRecords);
    }
  }
}

TEST_F(JournalFixture, TornWriteTailIsDiscardedDeterministically) {
  for (const std::uint64_t Seed : {3ull, 17ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    const fault::FaultPlan Plan =
        planOf("seed=" + std::to_string(Seed) +
               ";crash@mid-commit:torn-write:at=5");
    fault::FaultInjector Faults(Plan);
    auto Pipeline = makePipeline();
    Volume Vol(*Pipeline, {BlockCount});
    JournaledVolume Jv(Vol, *Pipeline, configOf(1, 0, &Faults));

    const CrashScenario Scenario =
        driveUntilCrash(Jv, /*AmbiguousOnCrash=*/false, 16);
    ASSERT_TRUE(Scenario.Crashed);

    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    const RecoveryReport Report =
        recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
    ASSERT_TRUE(Report.ok()) << Report.St.message();
    EXPECT_EQ(Report.ReplayedRecords, 5u);
    expectMatchesScenario(Restored, Scenario);
  }
}

TEST_F(JournalFixture, BareCrashSiteCountsEveryPoint) {
  // Global ordinal: each write visits mid-destage, pre-commit,
  // mid-commit, post-commit in order, so at=6 is write #1's mid-commit.
  const fault::FaultPlan Plan = planOf("seed=1;crash:crash:at=6");
  fault::FaultInjector Faults(Plan);
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf(1, 0, &Faults));

  const ByteVector D0 = blockOf(1);
  EXPECT_TRUE(Jv.writeBlocks(0, ByteSpan(D0.data(), D0.size())).ok());
  const ByteVector D1 = blockOf(2);
  const auto Seq = Jv.writeBlocks(1, ByteSpan(D1.data(), D1.size()));
  ASSERT_FALSE(Seq.ok());
  EXPECT_EQ(Seq.status().code(), ErrorCode::Crashed);
  EXPECT_EQ(Faults.crashPointOps(CrashPoint::MidCommit), 2u);
}

TEST_F(JournalFixture, MidCheckpointCrashKeepsCheckpointAndSkipsCovered) {
  const fault::FaultPlan Plan =
      planOf("seed=5;crash@mid-checkpoint:crash:at=1");
  fault::FaultInjector Faults(Plan);
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  // Checkpoint every 4 ops; the second checkpoint (op 8) crashes after
  // the image is durable but before the log truncates.
  JournaledVolume Jv(Vol, *Pipeline, configOf(1, 4, &Faults));

  std::uint64_t Op = 0;
  bool Crashed = false;
  std::vector<ByteVector> Acked(BlockCount);
  for (; Op < 32 && !Crashed; ++Op) {
    const std::uint64_t Lba = Op % BlockCount;
    const ByteVector Data = blockOf(Op + 100);
    const auto Seq = Jv.writeBlocks(Lba, ByteSpan(Data.data(), Data.size()));
    if (Seq.ok() && *Seq <= Jv.ackedSeq()) {
      Acked[Lba] = Data;
      continue;
    }
    EXPECT_EQ(Seq.status().code(), ErrorCode::Crashed);
    // The op's record committed before the checkpoint ran: the write
    // itself is durable even though the op errored.
    Acked[Lba] = Data;
    Crashed = true;
  }
  ASSERT_TRUE(Crashed);
  EXPECT_EQ(Jv.checkpointsTaken(), 1u);

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_TRUE(Report.CheckpointLoaded);
  EXPECT_GT(Report.SkippedRecords, 0u); // covered residue in the old log
  for (std::uint64_t Lba = 0; Lba < BlockCount; ++Lba) {
    const auto Read = Restored.readBlocks(Lba, 1);
    ASSERT_TRUE(Read.has_value());
    EXPECT_EQ(*Read, Acked[Lba].empty() ? ByteVector(BlockSize, 0)
                                        : Acked[Lba])
        << "LBA " << Lba;
  }
}

//===--------------------------------------------------------------------===//
// Checkpoints
//===--------------------------------------------------------------------===//

TEST_F(JournalFixture, CheckpointTruncatesTheLog) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf(1, /*CheckpointEveryOps=*/8));

  for (std::uint64_t Op = 0; Op < 20; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(
        Jv.writeBlocks(Op % BlockCount, ByteSpan(Data.data(), Data.size()))
            .ok());
  }
  EXPECT_EQ(Jv.checkpointsTaken(), 2u);

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_TRUE(Report.CheckpointLoaded);
  EXPECT_EQ(Report.CheckpointSeq, 16u);
  EXPECT_EQ(Report.ReplayedRecords, 4u); // only the post-checkpoint ops
  EXPECT_EQ(readAll(Restored), readAll(Vol));
}

TEST_F(JournalFixture, ExplicitCheckpointAnchorsRecoveredState) {
  // The recover-then-continue pattern: recover, wrap, checkpoint to
  // anchor the rebuilt state, keep writing.
  {
    auto Pipeline = makePipeline();
    Volume Vol(*Pipeline, {BlockCount});
    JournaledVolume Jv(Vol, *Pipeline, configOf());
    for (std::uint64_t Op = 0; Op < 6; ++Op) {
      const ByteVector Data = blockOf(Op);
      ASSERT_TRUE(
          Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
    }
  }
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  ASSERT_TRUE(
      recoverVolume(JournalPath, CheckpointPath, *Pipeline, Vol).ok());

  JournaledVolume Jv(Vol, *Pipeline, configOf());
  ASSERT_TRUE(Jv.ctorStatus().ok()); // truncates the log...
  ASSERT_TRUE(Jv.checkpoint().ok()); // ...so anchor the state first
  const ByteVector Data = blockOf(42);
  ASSERT_TRUE(Jv.writeBlocks(20, ByteSpan(Data.data(), Data.size())).ok());
  const ByteVector Dup = blockOf(0); // duplicate of recovered content
  ASSERT_TRUE(Jv.writeBlocks(21, ByteSpan(Dup.data(), Dup.size())).ok());
  // Dedup continued across the crash: the duplicate shares the
  // recovered chunk.
  EXPECT_EQ(Vol.mapping()[21], Vol.mapping()[0]);

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_TRUE(Report.CheckpointLoaded);
  EXPECT_EQ(readAll(Restored), readAll(Vol));
}

TEST_F(JournalFixture, SnapshotIdCounterSurvivesCheckpointAfterDelete) {
  // Create-then-delete advances the snapshot-id counter without
  // leaving a live snapshot for the checkpoint to derive it from; the
  // checkpoint must persist the counter itself so an acknowledged
  // post-checkpoint SnapshotCreate replays with the recorded id
  // instead of reissuing the deleted one.
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  const ByteVector Data = blockOf(1);
  ASSERT_TRUE(Jv.writeBlocks(0, ByteSpan(Data.data(), Data.size())).ok());
  Volume::SnapshotId First = 0;
  ASSERT_TRUE(Jv.createSnapshot(&First).ok());
  ASSERT_TRUE(Jv.deleteSnapshot(First).ok());
  ASSERT_TRUE(Jv.checkpoint().ok());

  Volume::SnapshotId Second = 0;
  ASSERT_TRUE(Jv.createSnapshot(&Second).ok());
  EXPECT_EQ(Second, First + 1);

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_TRUE(Report.CheckpointLoaded);
  EXPECT_EQ(Report.ReplayedRecords, 1u); // the post-checkpoint create
  EXPECT_EQ(Restored.snapshotIds(),
            std::vector<Volume::SnapshotId>{Second});
  EXPECT_EQ(Restored.nextSnapshotId(), Vol.nextSnapshotId());
  EXPECT_EQ(readAll(Restored), readAll(Vol));
}

//===--------------------------------------------------------------------===//
// Corruption sweeps — typed errors, never crashes
//===--------------------------------------------------------------------===//

TEST_F(JournalFixture, GarbageTailAfterCommittedRecordsIsDiscarded) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  for (std::uint64_t Op = 0; Op < 6; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  const ByteVector Before = readAll(Vol);

  ByteVector Garbage(37);
  Random Rng(1234);
  Rng.fillBytes(Garbage.data(), Garbage.size());
  appendToFile(JournalPath, ByteSpan(Garbage.data(), Garbage.size()));

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
  ASSERT_TRUE(Report.ok()) << Report.St.message();
  EXPECT_EQ(Report.DiscardedTailBytes, Garbage.size());
  EXPECT_EQ(Report.ReplayedRecords, 6u);
  EXPECT_EQ(readAll(Restored), Before);
}

TEST_F(JournalFixture, JournalBitFlipSweepNeverCrashes) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  for (std::uint64_t Op = 0; Op < 4; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  const ByteVector Pristine = slurp(JournalPath);
  ASSERT_FALSE(Pristine.empty());

  for (std::size_t Offset = 0; Offset < Pristine.size();
       Offset += 211) { // prime stride keeps the sweep affordable
    ByteVector Flipped = Pristine;
    Flipped[Offset] ^= 0x40;
    dump(JournalPath, ByteSpan(Flipped.data(), Flipped.size()));

    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    const RecoveryReport Report =
        recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
    if (Report.ok()) {
      // A flip in the tail truncates the log there: the replayed
      // prefix must still read back cleanly.
      EXPECT_LE(Report.ReplayedRecords, 4u);
      readAll(Restored);
    } else {
      EXPECT_NE(Report.St.code(), ErrorCode::Ok);
    }
  }
}

TEST_F(JournalFixture, JournalTruncationSweepNeverCrashes) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  for (std::uint64_t Op = 0; Op < 4; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  const ByteVector Pristine = slurp(JournalPath);

  for (std::size_t Keep = 0; Keep <= Pristine.size(); Keep += 97) {
    dump(JournalPath, ByteSpan(Pristine.data(), Keep));
    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    const RecoveryReport Report =
        recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
    if (Keep < JournalHeaderSize) {
      EXPECT_FALSE(Report.ok());
      EXPECT_EQ(Report.St.code(), ErrorCode::JournalCorrupt);
    } else if (Report.ok()) {
      EXPECT_LE(Report.ReplayedRecords, 4u);
      readAll(Restored);
    }
  }
}

TEST_F(JournalFixture, CheckpointCorruptionIsRejectedTyped) {
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolume Jv(Vol, *Pipeline, configOf());
  for (std::uint64_t Op = 0; Op < 6; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  ASSERT_TRUE(Jv.checkpoint().ok());
  const ByteVector Pristine = slurp(CheckpointPath);

  for (std::size_t Offset = 0; Offset < Pristine.size(); Offset += 509) {
    ByteVector Flipped = Pristine;
    Flipped[Offset] ^= 0x01;
    dump(CheckpointPath, ByteSpan(Flipped.data(), Flipped.size()));

    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    const RecoveryReport Report =
        recoverVolume(JournalPath, CheckpointPath, *FreshPipe, Restored);
    ASSERT_FALSE(Report.ok()) << "flip at " << Offset << " accepted";
    EXPECT_EQ(Report.St.code(), ErrorCode::ImageCorrupt);
  }

  // Truncations and pure garbage are equally typed.
  dump(CheckpointPath, ByteSpan(Pristine.data(), Pristine.size() / 2));
  {
    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    EXPECT_EQ(recoverVolume(JournalPath, CheckpointPath, *FreshPipe,
                            Restored)
                  .St.code(),
              ErrorCode::ImageCorrupt);
  }
  ByteVector Garbage(4096);
  Random Rng(777);
  Rng.fillBytes(Garbage.data(), Garbage.size());
  dump(CheckpointPath, ByteSpan(Garbage.data(), Garbage.size()));
  {
    auto FreshPipe = makePipeline();
    Volume Restored(*FreshPipe, {BlockCount});
    EXPECT_EQ(recoverVolume(JournalPath, CheckpointPath, *FreshPipe,
                            Restored)
                  .St.code(),
              ErrorCode::ImageCorrupt);
  }
}

TEST_F(JournalFixture, GarbageJournalFileIsRejectedTyped) {
  ByteVector Garbage(2048);
  Random Rng(55);
  Rng.fillBytes(Garbage.data(), Garbage.size());
  dump(JournalPath, ByteSpan(Garbage.data(), Garbage.size()));

  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  const RecoveryReport Report =
      recoverVolume(JournalPath, CheckpointPath, *Pipeline, Vol);
  EXPECT_FALSE(Report.ok());
  EXPECT_EQ(Report.St.code(), ErrorCode::JournalCorrupt);
}

//===--------------------------------------------------------------------===//
// Format-level invariants
//===--------------------------------------------------------------------===//

TEST(JournalFormat, SequenceGapIsCorruptNotTorn) {
  ByteVector File;
  JournalHeader Header;
  Header.ChunkSize = BlockSize;
  Header.BlockCount = BlockCount;
  encodeJournalHeader(Header, File);
  JournalRecord A;
  A.Seq = 1;
  A.Type = RecordType::Trim;
  encodeRecord(A, File);
  JournalRecord B;
  B.Seq = 3; // gap: 2 is missing
  B.Type = RecordType::Trim;
  encodeRecord(B, File);

  const auto Scan = scanJournal(ByteSpan(File.data(), File.size()));
  ASSERT_FALSE(Scan.ok());
  EXPECT_EQ(Scan.status().code(), ErrorCode::JournalCorrupt);
}

TEST(JournalFormat, CrcValidGarbagePayloadIsCorruptNotTorn) {
  ByteVector File;
  JournalHeader Header;
  Header.ChunkSize = BlockSize;
  Header.BlockCount = BlockCount;
  encodeJournalHeader(Header, File);
  // A frame whose CRC verifies but whose payload is nonsense (record
  // type 200): tearing cannot produce this.
  ByteVector Payload;
  std::uint8_t SeqBytes[8];
  storeLe64(SeqBytes, 1);
  Payload.insert(Payload.end(), SeqBytes, SeqBytes + 8);
  Payload.push_back(200);
  std::uint8_t Frame[8];
  storeLe32(Frame, static_cast<std::uint32_t>(Payload.size()));
  storeLe32(Frame + 4, crc32c(ByteSpan(Payload.data(), Payload.size())));
  File.insert(File.end(), Frame, Frame + 8);
  appendBytes(File, ByteSpan(Payload.data(), Payload.size()));

  const auto Scan = scanJournal(ByteSpan(File.data(), File.size()));
  ASSERT_FALSE(Scan.ok());
  EXPECT_EQ(Scan.status().code(), ErrorCode::JournalCorrupt);
}

TEST(JournalFormat, HugeElementCountsFailTypedWithoutAllocating) {
  // A CRC-valid WriteBatch whose chunk count claims ~4e9 elements: the
  // decoder must clamp its reservations to what the payload could
  // actually hold and report corruption, not die in std::bad_alloc.
  ByteVector File;
  JournalHeader Header;
  Header.ChunkSize = BlockSize;
  Header.BlockCount = BlockCount;
  encodeJournalHeader(Header, File);
  ByteVector Payload;
  std::uint8_t SeqBytes[8];
  storeLe64(SeqBytes, 1);
  Payload.insert(Payload.end(), SeqBytes, SeqBytes + 8);
  Payload.push_back(0); // RecordType::WriteBatch
  std::uint8_t CountBytes[4];
  storeLe32(CountBytes, 0xFFFFFFFFu);
  Payload.insert(Payload.end(), CountBytes, CountBytes + 4);
  std::uint8_t Frame[8];
  storeLe32(Frame, static_cast<std::uint32_t>(Payload.size()));
  storeLe32(Frame + 4, crc32c(ByteSpan(Payload.data(), Payload.size())));
  File.insert(File.end(), Frame, Frame + 8);
  appendBytes(File, ByteSpan(Payload.data(), Payload.size()));

  const auto Scan = scanJournal(ByteSpan(File.data(), File.size()));
  ASSERT_FALSE(Scan.ok());
  EXPECT_EQ(Scan.status().code(), ErrorCode::JournalCorrupt);
}

TEST(JournalFormat, EveryCutOfTheTailIsTornNotCorrupt) {
  ByteVector File;
  JournalHeader Header;
  Header.ChunkSize = BlockSize;
  Header.BlockCount = BlockCount;
  encodeJournalHeader(Header, File);
  std::vector<std::size_t> FrameEnds;
  for (std::uint64_t Seq = 1; Seq <= 3; ++Seq) {
    JournalRecord Record;
    Record.Seq = Seq;
    Record.Type = RecordType::Trim;
    Record.Lba = Seq;
    Record.Count = 1;
    encodeRecord(Record, File);
    FrameEnds.push_back(File.size());
  }

  for (std::size_t Cut = JournalHeaderSize; Cut <= File.size(); ++Cut) {
    const auto Scan = scanJournal(ByteSpan(File.data(), Cut));
    ASSERT_TRUE(Scan.ok()) << "cut at " << Cut;
    std::size_t ExpectRecords = 0;
    for (const std::size_t End : FrameEnds)
      ExpectRecords += End <= Cut;
    EXPECT_EQ(Scan->Records.size(), ExpectRecords) << "cut at " << Cut;
    const bool CleanCut = Cut == JournalHeaderSize ||
                          Cut == FrameEnds[0] || Cut == FrameEnds[1] ||
                          Cut == FrameEnds[2];
    EXPECT_EQ(Scan->TornBytes > 0, !CleanCut) << "cut at " << Cut;
  }
}

//===--------------------------------------------------------------------===//
// Observability and modelled time
//===--------------------------------------------------------------------===//

TEST_F(JournalFixture, MetricsCountRecordsCommitsAndReplay) {
  obs::MetricsRegistry Metrics;
  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolumeConfig Config = configOf(/*GroupCommitOps=*/2);
  Config.Metrics = &Metrics;
  JournaledVolume Jv(Vol, *Pipeline, Config);

  for (std::uint64_t Op = 0; Op < 8; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  ASSERT_TRUE(Jv.checkpoint().ok());
  EXPECT_EQ(Metrics.counter("padre_journal_records_total").value(), 8u);
  EXPECT_EQ(Metrics.counter("padre_journal_commits_total").value(), 4u);
  EXPECT_GT(Metrics.counter("padre_journal_bytes_total").value(), 0u);
  EXPECT_EQ(Metrics.counter("padre_journal_checkpoints_total").value(), 1u);

  const ByteVector Tail = blockOf(99);
  ASSERT_TRUE(Jv.writeBlocks(9, ByteSpan(Tail.data(), Tail.size())).ok());
  ASSERT_TRUE(Jv.sync().ok());

  auto FreshPipe = makePipeline();
  Volume Restored(*FreshPipe, {BlockCount});
  const RecoveryReport Report = recoverVolume(
      JournalPath, CheckpointPath, *FreshPipe, Restored, &Metrics);
  ASSERT_TRUE(Report.ok());
  EXPECT_EQ(Metrics.counter("padre_journal_replayed_records_total").value(),
            Report.ReplayedRecords);
}

TEST_F(JournalFixture, JournalingChargesModelledSsdTime) {
  // Same workload, with and without the journal: the journaled run
  // must charge strictly more SSD time (the commit appends), and the
  // overhead must be far below the data path itself.
  auto Plain = makePipeline();
  Volume PlainVol(*Plain, {BlockCount});
  for (std::uint64_t Op = 0; Op < 16; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(PlainVol.writeBlocks(Op, ByteSpan(Data.data(), Data.size())));
  }
  const double PlainUs = Plain->ledger().busyMicros(Resource::Ssd);

  auto Journaled = makePipeline();
  Volume JournaledVol(*Journaled, {BlockCount});
  JournaledVolume Jv(JournaledVol, *Journaled, configOf());
  for (std::uint64_t Op = 0; Op < 16; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(Jv.writeBlocks(Op, ByteSpan(Data.data(), Data.size())).ok());
  }
  const double JournaledUs = Journaled->ledger().busyMicros(Resource::Ssd);

  EXPECT_GT(JournaledUs, PlainUs);
  // Metadata-only commits: the journal adds well under 100% overhead
  // on a 4 KiB-block write path.
  EXPECT_LT(JournaledUs, PlainUs * 2.0);
}
