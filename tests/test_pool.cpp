//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the storage pool: cross-volume dedup (golden-image
/// clones), shared-domain garbage collection, per-volume isolation of
/// mappings, snapshots inside a pool, and restore-path guarding.
///
//===----------------------------------------------------------------------===//

#include "core/StoragePool.h"
#include "workload/Trace.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;

PipelineConfig poolConfig() {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Dedup.Index.BinBits = 8;
  return Config;
}

/// Deterministic block content per tag.
ByteVector blockOf(std::uint64_t Tag) {
  ByteVector Data(BlockSize);
  fillTraceBlock(Tag, MutableByteSpan(Data.data(), Data.size()));
  return Data;
}

/// Writes `Blocks` tagged blocks starting at LBA 0.
void writeImage(Volume &Vol, std::uint64_t Blocks, std::uint64_t BaseTag) {
  ByteVector Image;
  for (std::uint64_t I = 0; I < Blocks; ++I)
    appendBytes(Image, ByteSpan(blockOf(BaseTag + I).data(), BlockSize));
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Image.data(), Image.size())));
}

} // namespace

TEST(StoragePool, GoldenImageClonesShareChunks) {
  StoragePool Pool(Platform::paper(), poolConfig());
  constexpr std::uint64_t ImageBlocks = 64;

  // Four VDI clones provisioned from the same golden image.
  for (int Clone = 0; Clone < 4; ++Clone) {
    Volume &Vol = Pool.createVolume(128);
    writeImage(Vol, ImageBlocks, /*BaseTag=*/1000);
  }

  const PoolStats Stats = Pool.stats();
  EXPECT_EQ(Stats.Volumes, 4u);
  EXPECT_EQ(Stats.MappedBlocks, 4 * ImageBlocks);
  // The image is stored once: cross-volume dedup.
  EXPECT_EQ(Stats.LiveChunks, ImageBlocks);
  EXPECT_GT(Stats.reductionRatio(), 4.0); // 4x dedup x compression
}

TEST(StoragePool, SharedChunksSurviveOneClonesDeletion) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &A = Pool.createVolume(128);
  Volume &B = Pool.createVolume(128);
  writeImage(A, 32, 1);
  writeImage(B, 32, 1); // same content

  // Wipe clone A entirely; the chunks stay live via clone B.
  ASSERT_TRUE(A.trim(0, 128));
  EXPECT_EQ(Pool.collectGarbage(), 0u);
  const auto Read = B.readBlocks(0, 32);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ((*Read)[0], blockOf(1)[0]);

  // Wipe clone B too: now everything is collectable.
  ASSERT_TRUE(B.trim(0, 128));
  EXPECT_EQ(Pool.collectGarbage(), 32u);
  EXPECT_EQ(Pool.pipeline().store().chunkCount(), 0u);
}

TEST(StoragePool, VolumeMappingsAreIndependent) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &A = Pool.createVolume(16);
  Volume &B = Pool.createVolume(16);
  const ByteVector DataA = blockOf(10);
  const ByteVector DataB = blockOf(20);
  ASSERT_TRUE(A.writeBlocks(3, ByteSpan(DataA.data(), DataA.size())));
  ASSERT_TRUE(B.writeBlocks(3, ByteSpan(DataB.data(), DataB.size())));

  EXPECT_EQ(*A.readBlocks(3, 1), DataA);
  EXPECT_EQ(*B.readBlocks(3, 1), DataB);
  // A's LBA 5 is untouched by B's writes.
  const auto Empty = A.readBlocks(5, 1);
  ASSERT_TRUE(Empty.has_value());
  EXPECT_EQ((*Empty)[0], 0);
}

TEST(StoragePool, DuplicateAcrossVolumesCountsBothReferences) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &A = Pool.createVolume(16);
  Volume &B = Pool.createVolume(16);
  const ByteVector Data = blockOf(30);
  ASSERT_TRUE(A.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(B.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  const std::uint64_t Location = A.mapping()[0];
  EXPECT_EQ(B.mapping()[0], Location);
  EXPECT_EQ(Pool.tracker()->refCount(Location), 2u);
}

TEST(StoragePool, SnapshotsWorkInsidePools) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &Vol = Pool.createVolume(32);
  const ByteVector Before = blockOf(40);
  const ByteVector After = blockOf(41);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Before.data(), Before.size())));
  const Volume::SnapshotId Snap = Vol.createSnapshot();
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(After.data(), After.size())));
  Pool.collectGarbage();
  EXPECT_EQ(*Vol.readSnapshotBlocks(Snap, 0, 1), Before);
  EXPECT_EQ(*Vol.readBlocks(0, 1), After);
}

TEST(StoragePool, PoolMemberRejectsRestoreState) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &Vol = Pool.createVolume(8);
  std::vector<std::uint64_t> Mapping(8, Volume::Unmapped);
  EXPECT_FALSE(Vol.restoreState(std::move(Mapping), {}));
}

TEST(StoragePool, ScrubCoversTheWholeDomain) {
  StoragePool Pool(Platform::paper(), poolConfig());
  Volume &A = Pool.createVolume(16);
  Volume &B = Pool.createVolume(16);
  writeImage(A, 8, 50);
  writeImage(B, 8, 60);
  // Scrubbing through either volume covers the shared domain.
  EXPECT_EQ(A.scrub().ChunksScanned, 16u);
  EXPECT_EQ(B.scrub().CorruptChunks, 0u);
}

TEST(StoragePool, CrossVolumeReductionBeatsPrivateDomains) {
  // The quantified benefit: two identical 32-block images in one pool
  // store half the chunks of two private-domain volumes.
  StoragePool Pool(Platform::paper(), poolConfig());
  writeImage(Pool.createVolume(64), 32, 70);
  writeImage(Pool.createVolume(64), 32, 70);
  const std::uint64_t PoolChunks = Pool.stats().LiveChunks;

  ReductionPipeline PipeA(Platform::paper(), poolConfig());
  ReductionPipeline PipeB(Platform::paper(), poolConfig());
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 64;
  Volume PrivateA(PipeA, VolConfig);
  Volume PrivateB(PipeB, VolConfig);
  writeImage(PrivateA, 32, 70);
  writeImage(PrivateB, 32, 70);
  const std::uint64_t PrivateChunks =
      PrivateA.stats().LiveChunks + PrivateB.stats().LiveChunks;

  EXPECT_EQ(PoolChunks * 2, PrivateChunks);
}
