//===----------------------------------------------------------------------===//
///
/// \file
/// Pipelined batch scheduler tests (ctest -L sched): the in-flight
/// window changes *when* modelled time lands, never what the pipeline
/// does. Depth sweeps must keep recipes, stored bytes and per-lane
/// busy charges bit-identical while the dependency-constrained wall
/// time shrinks monotonically; the scheduled per-lane totals must
/// reconcile exactly with the ledger's charges; and fault-recovery
/// paths must drain the window cleanly at every depth.
///
//===----------------------------------------------------------------------===//

#include "core/BatchScheduler.h"
#include "core/ReductionPipeline.h"
#include "fault/FaultInjector.h"
#include "fault/FaultPlan.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

using namespace padre;

namespace {

ByteVector makeStream(std::uint64_t Bytes, std::uint64_t Seed = 77) {
  WorkloadConfig Config;
  Config.TotalBytes = Bytes;
  Config.DedupRatio = 2.0;
  Config.CompressRatio = 2.0;
  Config.Seed = Seed;
  return VdbenchStream(Config).generateAll();
}

PipelineConfig configFor(PipelineMode Mode, std::size_t Depth) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  Config.PipelineDepth = Depth;
  return Config;
}

/// Everything a depth sweep compares between two runs.
struct RunResult {
  StreamRecipe Recipe;
  std::uint64_t StoredBytes = 0;
  ByteVector ReadBack;
  std::array<double, ResourceCount> BusyUs{};
  std::array<double, ResourceCount> SchedUs{};
  double WallUs = 0.0;
  std::size_t InFlight = 0;
  PipelineReport Report;
};

RunResult runOnce(PipelineMode Mode, std::size_t Depth,
                  const ByteVector &Data) {
  ReductionPipeline Pipeline(Platform::paper(), configFor(Mode, Depth));
  EXPECT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  EXPECT_TRUE(Pipeline.finish().ok());

  RunResult Result;
  Result.Recipe = Pipeline.recipe();
  Result.Report = Pipeline.report();
  Result.StoredBytes = Result.Report.StoredBytes;
  for (unsigned R = 0; R < ResourceCount; ++R) {
    Result.BusyUs[R] = Pipeline.ledger().busyMicros(static_cast<Resource>(R));
    Result.SchedUs[R] =
        Pipeline.ledger().laneScheduledMicros(static_cast<Resource>(R));
  }
  Result.WallUs = Pipeline.scheduler().wallMicros();
  Result.InFlight = Pipeline.scheduler().inFlight();
  const auto Restored = Pipeline.readBack();
  EXPECT_TRUE(Restored.has_value());
  if (Restored)
    Result.ReadBack = *Restored;
  return Result;
}

constexpr std::size_t Depths[] = {1, 2, 4, 8};

} // namespace

//===----------------------------------------------------------------------===//
// Depth-sweep determinism
//===----------------------------------------------------------------------===//

TEST(SchedDepthSweep, ResultsBitIdenticalAcrossDepths) {
  const ByteVector Data = makeStream(8ull << 20);
  for (unsigned M = 0; M < PipelineModeCount; ++M) {
    const auto Mode = static_cast<PipelineMode>(M);
    const RunResult Serial = runOnce(Mode, 1, Data);
    EXPECT_EQ(Serial.ReadBack, Data) << pipelineModeName(Mode);
    for (const std::size_t Depth : Depths) {
      if (Depth == 1)
        continue;
      const RunResult Deep = runOnce(Mode, Depth, Data);
      SCOPED_TRACE(std::string(pipelineModeName(Mode)) + " depth " +
                   std::to_string(Depth));
      EXPECT_EQ(Deep.Recipe.ChunkLocations, Serial.Recipe.ChunkLocations);
      EXPECT_EQ(Deep.Recipe.ChunkSizes, Serial.Recipe.ChunkSizes);
      EXPECT_EQ(Deep.StoredBytes, Serial.StoredBytes);
      EXPECT_EQ(Deep.ReadBack, Serial.ReadBack);
      // Charged time is depth-invariant: pipelining only reorders it.
      for (unsigned R = 0; R < ResourceCount; ++R)
        EXPECT_DOUBLE_EQ(Deep.BusyUs[R], Serial.BusyUs[R])
            << resourceName(static_cast<Resource>(R));
    }
  }
}

TEST(SchedDepthSweep, WallTimeMonotoneNonIncreasing) {
  const ByteVector Data = makeStream(8ull << 20);
  for (unsigned M = 0; M < PipelineModeCount; ++M) {
    const auto Mode = static_cast<PipelineMode>(M);
    double PrevWallUs = 0.0;
    for (const std::size_t Depth : Depths) {
      const RunResult Result = runOnce(Mode, Depth, Data);
      SCOPED_TRACE(std::string(pipelineModeName(Mode)) + " depth " +
                   std::to_string(Depth));
      EXPECT_GT(Result.WallUs, 0.0);
      if (Depth > 1)
        EXPECT_LE(Result.WallUs, PrevWallUs + 1e-6);
      // The wall can never undercut any single lane's occupancy.
      for (unsigned R = 0; R < ResourceCount; ++R)
        EXPECT_GE(Result.WallUs + 1e-6, Result.SchedUs[R]);
      PrevWallUs = Result.WallUs;
    }
  }
}

TEST(SchedDepthSweep, DepthFourBeatsSerialOnGpuCompress) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Serial = runOnce(PipelineMode::GpuCompress, 1, Data);
  const RunResult Deep = runOnce(PipelineMode::GpuCompress, 4, Data);
  EXPECT_LT(Deep.WallUs, Serial.WallUs);
  EXPECT_GT(Deep.Report.WallThroughputMBps, Serial.Report.WallThroughputMBps);
}

//===----------------------------------------------------------------------===//
// Charge reconciliation
//===----------------------------------------------------------------------===//

TEST(SchedReconcile, ScheduledTotalsMatchLedgerCharges) {
  const ByteVector Data = makeStream(8ull << 20);
  const unsigned Threads = Platform::paper().Model.Cpu.Threads;
  for (unsigned M = 0; M < PipelineModeCount; ++M) {
    const auto Mode = static_cast<PipelineMode>(M);
    for (const std::size_t Depth : Depths) {
      ReductionPipeline Pipeline(Platform::paper(), configFor(Mode, Depth));
      ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
      ASSERT_TRUE(Pipeline.finish().ok());
      SCOPED_TRACE(std::string(pipelineModeName(Mode)) + " depth " +
                   std::to_string(Depth));
      // CPU occupancy is normalized by the pool width; every other lane
      // replays its charges one-to-one. Tolerance covers the per-charge
      // integer-ns quantization and the sub-nanosecond schedule skips.
      EXPECT_NEAR(Pipeline.ledger().laneScheduledMicros(Resource::CpuPool),
                  Pipeline.ledger().busyMicros(Resource::CpuPool) / Threads,
                  1.0);
      for (const Resource R : {Resource::Gpu, Resource::Pcie, Resource::Ssd,
                               Resource::IndexLock})
        EXPECT_NEAR(Pipeline.ledger().laneScheduledMicros(R),
                    Pipeline.ledger().busyMicros(R), 1.0)
            << resourceName(R);
    }
  }
}

TEST(SchedReconcile, OverlapAccountingIsConsistent) {
  const ByteVector Data = makeStream(8ull << 20);
  ReductionPipeline Pipeline(Platform::paper(),
                             configFor(PipelineMode::GpuCompress, 4));
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());
  const ScheduleOverlap Overlap = Pipeline.scheduler().overlap();
  for (unsigned R = 0; R < ResourceCount; ++R) {
    SCOPED_TRACE(resourceName(static_cast<Resource>(R)));
    EXPECT_NEAR(Overlap.BusySec[R] * 1e6,
                Pipeline.ledger().laneScheduledMicros(static_cast<Resource>(R)),
                1.0);
    EXPECT_GE(Overlap.HiddenSec[R], 0.0);
    EXPECT_LE(Overlap.HiddenSec[R], Overlap.BusySec[R] + 1e-9);
  }
  // At depth 4 on gpu-compress, some GPU time must actually hide
  // behind concurrent CPU/SSD work — the whole point of the window.
  EXPECT_GT(Overlap.HiddenSec[static_cast<unsigned>(Resource::Gpu)], 0.0);
}

//===----------------------------------------------------------------------===//
// Window lifecycle
//===----------------------------------------------------------------------===//

TEST(SchedWindow, DrainsCleanlyAfterFinish) {
  const ByteVector Data = makeStream(4ull << 20);
  for (const std::size_t Depth : Depths) {
    const RunResult Result = runOnce(PipelineMode::GpuCompress, Depth, Data);
    EXPECT_EQ(Result.InFlight, 0u) << "depth " << Depth;
    EXPECT_EQ(Result.Report.PipelineDepth, Depth);
  }
}

TEST(SchedWindow, ResetMeasurementResetsTimeline) {
  const ByteVector Data = makeStream(4ull << 20);
  ReductionPipeline Pipeline(Platform::paper(),
                             configFor(PipelineMode::GpuCompress, 4));
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_GT(Pipeline.scheduler().wallMicros(), 0.0);
  Pipeline.resetMeasurement();
  EXPECT_DOUBLE_EQ(Pipeline.scheduler().wallMicros(), 0.0);
  EXPECT_EQ(Pipeline.scheduler().batchesScheduled(), 0u);
  for (unsigned R = 0; R < ResourceCount; ++R)
    EXPECT_DOUBLE_EQ(
        Pipeline.ledger().laneScheduledMicros(static_cast<Resource>(R)), 0.0);
  // A post-reset write schedules fresh from t=0.
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());
  EXPECT_GT(Pipeline.scheduler().wallMicros(), 0.0);
  EXPECT_EQ(Pipeline.scheduler().inFlight(), 0u);
}

//===----------------------------------------------------------------------===//
// Fault drain: the window must empty under every fault class, whether
// the run recovers (bounded retries) or surfaces a typed error.
//===----------------------------------------------------------------------===//

namespace {

void runFaultDrain(const char *PlanSpec, bool VerifyWhenOk = true) {
  SCOPED_TRACE(PlanSpec);
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan(PlanSpec, Plan, Error)) << Error;
  const ByteVector Data = makeStream(4ull << 20);
  for (const std::size_t Depth : {std::size_t(1), std::size_t(4)}) {
    fault::FaultInjector Injector(Plan);
    PipelineConfig Config = configFor(PipelineMode::GpuBoth, Depth);
    Config.Faults = &Injector;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    const fault::Status WriteStatus =
        Pipeline.write(ByteSpan(Data.data(), Data.size()));
    const fault::Status FinishStatus = Pipeline.finish();
    // Recovered or not, no batch may be left mid-window.
    EXPECT_EQ(Pipeline.scheduler().inFlight(), 0u) << "depth " << Depth;
    if (VerifyWhenOk && WriteStatus.ok() && FinishStatus.ok())
      EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())))
          << "depth " << Depth;
  }
}

} // namespace

TEST(SchedFaultDrain, SsdReadError) {
  runFaultDrain("seed=11;ssd-read:error:p=0.02");
}

TEST(SchedFaultDrain, SsdWriteError) {
  runFaultDrain("seed=12;ssd-write:error:p=0.02");
}

TEST(SchedFaultDrain, SsdWriteTimeout) {
  runFaultDrain("seed=13;ssd-write:timeout:p=0.02");
}

TEST(SchedFaultDrain, GpuKernelEcc) {
  runFaultDrain("seed=14;gpu-kernel:ecc:p=0.05");
}

TEST(SchedFaultDrain, GpuKernelHang) {
  runFaultDrain("seed=15;gpu-kernel:hang:every=9");
}

TEST(SchedFaultDrain, GpuDmaCorrupt) {
  runFaultDrain("seed=16;gpu-dma:dma-corrupt:p=0.05");
}

TEST(SchedFaultDrain, DestageBitflip) {
  // Bit flips corrupt stored payloads *silently* — only the scrub path
  // detects them — so the drain check runs without read-back verify.
  runFaultDrain("seed=17;destage:bitflip:every=31", /*VerifyWhenOk=*/false);
}
