//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the GPU lane-parallel decompressor (the decode inverse of
/// test_gpulane): plan geometry, round trips across lane counts and
/// data shapes, divergence accounting, cross-lane reference detection,
/// malformed-payload rejection, and the decode cost-model helper.
///
//===----------------------------------------------------------------------===//

#include "compress/GpuLaneCompressor.h"
#include "compress/GpuLaneDecompressor.h"
#include "sim/CostModel.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

ByteVector repetitiveData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  std::uint8_t Pattern[64];
  Rng.fillBytes(Pattern, sizeof(Pattern));
  for (std::size_t I = 0; I < Size; I += 64) {
    const std::size_t Take = std::min<std::size_t>(64, Size - I);
    if (Rng.nextBool(0.2))
      Rng.fillBytes(Data.data() + I, Take);
    else
      std::copy(Pattern, Pattern + Take, Data.data() + I);
  }
  return Data;
}

/// Compresses with the single-scan codec — the decoder accepts any
/// producer of the shared token format.
ByteVector compress(const ByteVector &Data) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  return Codec.compress(ByteSpan(Data.data(), Data.size())).Payload;
}

/// Plans and decodes back; asserts the chunk survives.
void expectDecodeRoundTrip(const GpuLaneDecompressor &Decoder,
                           const ByteVector &Data) {
  const ByteVector Payload = compress(Data);
  const auto Plan = Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                                 Data.size());
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->OriginalSize, Data.size());
  EXPECT_EQ(Plan->PayloadSize, Payload.size());
  ByteVector Out;
  ASSERT_TRUE(GpuLaneDecompressor::runLanes(
      ByteSpan(Payload.data(), Payload.size()), *Plan, Out));
  EXPECT_EQ(Out, Data);
}

} // namespace

TEST(GpuLaneDecompressor, PlanTilesPayloadAndOutput) {
  const GpuLaneDecompressor Decoder(8);
  const ByteVector Data = repetitiveData(4096, 1);
  const ByteVector Payload = compress(Data);
  const auto Plan = Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                                 Data.size());
  ASSERT_TRUE(Plan.has_value());
  EXPECT_LE(Plan->Lanes.size(), 8u);
  EXPECT_GE(Plan->Lanes.size(), 1u);
  // Lane segments must tile both streams exactly, in order.
  std::size_t PayloadPos = 0, OutputPos = 0;
  for (const GpuDecodeLane &Lane : Plan->Lanes) {
    EXPECT_EQ(Lane.PayloadBegin, PayloadPos);
    EXPECT_EQ(Lane.OutputBegin, OutputPos);
    EXPECT_LT(Lane.PayloadBegin, Lane.PayloadEnd);
    EXPECT_LT(Lane.OutputBegin, Lane.OutputEnd);
    PayloadPos = Lane.PayloadEnd;
    OutputPos = Lane.OutputEnd;
    EXPECT_EQ(Lane.Stats.LiteralBytes + Lane.Stats.MatchBytes,
              Lane.OutputEnd - Lane.OutputBegin);
  }
  EXPECT_EQ(PayloadPos, Payload.size());
  EXPECT_EQ(OutputPos, Data.size());
}

TEST(GpuLaneDecompressor, EmptyChunk) {
  const GpuLaneDecompressor Decoder;
  const auto Plan = Decoder.plan(ByteSpan(), 0);
  ASSERT_TRUE(Plan.has_value());
  EXPECT_TRUE(Plan->Lanes.empty());
  ByteVector Out;
  EXPECT_TRUE(GpuLaneDecompressor::runLanes(ByteSpan(), *Plan, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(GpuLaneDecompressor, OversizedChunkRejected) {
  const GpuLaneDecompressor Decoder;
  const ByteVector Payload(16, std::uint8_t{0});
  EXPECT_FALSE(Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                            LzCodec::MaxInputSize + 1)
                   .has_value());
}

namespace {

class DecodeRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

} // namespace

TEST_P(DecodeRoundTrip, LanePlannedStreamDecodes) {
  const auto &[Lanes, Shape] = GetParam();
  const GpuLaneDecompressor Decoder(Lanes);
  ByteVector Data;
  switch (Shape) {
  case 0:
    Data = randomData(4096, 3);
    break;
  case 1:
    Data = repetitiveData(4096, 4);
    break;
  case 2:
    Data = ByteVector(4096, 0x77);
    break;
  default:
    Data = repetitiveData(16384, 5);
  }
  expectDecodeRoundTrip(Decoder, Data);
}

namespace {

std::string decodeRoundTripName(
    const ::testing::TestParamInfo<DecodeRoundTrip::ParamType> &Info) {
  static const char *Shapes[] = {"random", "mixed", "constant", "big"};
  return "lanes" + std::to_string(std::get<0>(Info.param)) + "_" +
         Shapes[std::get<1>(Info.param)];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Geometry, DecodeRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 32u),
                       ::testing::Range(0, 4)),
    decodeRoundTripName);

TEST(GpuLaneDecompressor, DecodesGpuLaneRefinedBlocks) {
  // The write-side lane compressor's refined stream is the same token
  // format; the decode kernel must accept it (this is the production
  // pairing: GpuLane-method blocks read back through the GPU).
  const ByteVector Data = repetitiveData(8192, 6);
  const GpuLaneCompressor Compressor;
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  const auto View =
      decodeBlock(ByteSpan(Refined.Block.data(), Refined.Block.size()));
  ASSERT_TRUE(View.has_value());
  ASSERT_EQ(View->Method, BlockMethod::GpuLane);
  const GpuLaneDecompressor Decoder(8);
  const auto Plan = Decoder.plan(View->Payload, View->OriginalSize);
  ASSERT_TRUE(Plan.has_value());
  ByteVector Out;
  ASSERT_TRUE(
      GpuLaneDecompressor::runLanes(View->Payload, *Plan, Out));
  EXPECT_EQ(Out, Data);
}

TEST(GpuLaneDecompressor, TokenSwitchAccounting) {
  // Constant data decodes as one literal run plus long matches — few
  // token-kind switches. Mixed data flips between kinds constantly.
  // The divergence counter must reflect that ordering.
  const GpuLaneDecompressor Decoder(8);
  const ByteVector Constant(8192, std::uint8_t{0x42});
  const ByteVector Mixed = repetitiveData(8192, 7);
  const ByteVector ConstPayload = compress(Constant);
  const ByteVector MixedPayload = compress(Mixed);
  const auto ConstPlan = Decoder.plan(
      ByteSpan(ConstPayload.data(), ConstPayload.size()), Constant.size());
  const auto MixedPlan = Decoder.plan(
      ByteSpan(MixedPayload.data(), MixedPayload.size()), Mixed.size());
  ASSERT_TRUE(ConstPlan.has_value());
  ASSERT_TRUE(MixedPlan.has_value());
  EXPECT_LT(ConstPlan->totalTokenSwitches(),
            MixedPlan->totalTokenSwitches());
  // Sum over lanes equals the total.
  std::uint32_t Sum = 0;
  for (const GpuDecodeLane &Lane : MixedPlan->Lanes)
    Sum += Lane.TokenSwitches;
  EXPECT_EQ(Sum, MixedPlan->totalTokenSwitches());
}

TEST(GpuLaneDecompressor, CrossLaneRefsDetected) {
  // Constant data: every match reaches back into earlier output, so
  // once the stream is split across 8 lanes, later lanes must hold
  // references that cross their own segment start.
  const GpuLaneDecompressor Decoder(8);
  const ByteVector Data(16384, std::uint8_t{0x5A});
  const ByteVector Payload = compress(Data);
  const auto Plan = Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                                 Data.size());
  ASSERT_TRUE(Plan.has_value());
  ASSERT_GT(Plan->Lanes.size(), 1u);
  std::uint32_t CrossRefs = 0;
  for (const GpuDecodeLane &Lane : Plan->Lanes)
    CrossRefs += Lane.CrossLaneRefs;
  EXPECT_GT(CrossRefs, 0u);
}

TEST(GpuLaneDecompressor, MalformedPayloadsRejected) {
  const GpuLaneDecompressor Decoder(8);
  const ByteVector Data = repetitiveData(4096, 8);
  ByteVector Payload = compress(Data);

  // Truncation: the token walk runs off the end.
  EXPECT_FALSE(Decoder.plan(ByteSpan(Payload.data(), Payload.size() - 1),
                            Data.size())
                   .has_value());
  // Wrong original size: the stream does not produce it.
  EXPECT_FALSE(Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                            Data.size() - 1)
                   .has_value());
  // A zero back-distance is never valid.
  ByteVector Bad = Payload;
  for (std::size_t I = 0; I + 2 < Bad.size(); ++I) {
    if ((Bad[I] & 0x80) != 0) { // first match token
      Bad[I + 1] = 0;
      Bad[I + 2] = 0;
      break;
    }
    I += (Bad[I] & 0x7F) + 1; // skip literal run body
  }
  EXPECT_FALSE(
      Decoder.plan(ByteSpan(Bad.data(), Bad.size()), Data.size())
          .has_value());
  // runLanes cross-checks the plan against the payload it gets.
  const auto Plan = Decoder.plan(ByteSpan(Payload.data(), Payload.size()),
                                 Data.size());
  ASSERT_TRUE(Plan.has_value());
  ByteVector Out;
  EXPECT_FALSE(GpuLaneDecompressor::runLanes(
      ByteSpan(Payload.data(), Payload.size() - 1), *Plan, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(GpuLaneDecompressor, DecodeCostModelIsMonotonic) {
  const CostModel Model;
  // More bytes or more divergence can only slow a lane down.
  const double Base = Model.gpuDecodeLaneUs(512, 512, 16);
  EXPECT_GT(Base, 0.0);
  EXPECT_GT(Model.gpuDecodeLaneUs(1024, 512, 16), Base);
  EXPECT_GT(Model.gpuDecodeLaneUs(512, 1024, 16), Base);
  EXPECT_GT(Model.gpuDecodeLaneUs(512, 512, 64), Base);
  // Literals stream slower than match copies (CODAG: match copies are
  // coalesced reads of already-decoded output).
  EXPECT_GT(Model.gpuDecodeLaneUs(1024, 0, 0),
            Model.gpuDecodeLaneUs(0, 1024, 0));
}
