//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free hot-path proof suite (`ctest -L hotpath`): the
/// concurrent bin index and the batched-hash engine path are accepted
/// only because these tests hold.
///
/// Three layers of evidence:
///  1. Property tests — OracleCheck.h replays random op sequences
///     against the serial DedupIndex oracle and the concurrent index,
///     diffing outcomes, flush events, counters and modelled ledger
///     charges after every op (unbounded, bounded-with-evictions, and
///     GPU-resolved variants, across shard counts).
///  2. Bit-identity goldens — full pipeline runs must produce identical
///     chunk outcomes, recipes, stored bytes and read-back streams at
///     every index shard count and every batched-hash width; the
///     concurrent index must also charge bit-identical CPU/SSD busy
///     time (same outcomes => same ledger).
///  3. Concurrency stress — N writer threads hammer one index with
///     insert/probe/evict interleavings (run under TSan in CI);
///     membership, locations and conservation invariants must hold
///     after the dust settles.
///
/// Plus the allocator-poisoning pipeline check: arena reset + reuse
/// across batches must never leak stale chunk refs into recipes.
///
//===----------------------------------------------------------------------===//

#include "OracleCheck.h"

#include "core/ReductionPipeline.h"
#include "index/ConcurrentBinIndex.h"
#include "index/DedupIndex.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

using namespace padre;
using oracle::fingerprintOf;

namespace {

DedupIndexConfig serialConfig(unsigned BinBits = 8,
                              std::size_t BufferCap = 4,
                              std::size_t MaxPerBin = 0) {
  DedupIndexConfig Config;
  Config.BinBits = BinBits;
  Config.BufferCapacityPerBin = BufferCap;
  Config.MaxEntriesPerBin = MaxPerBin;
  return Config;
}

DedupIndexConfig concurrentConfig(unsigned Shards, unsigned BinBits = 8,
                                  std::size_t BufferCap = 4,
                                  std::size_t MaxPerBin = 0) {
  DedupIndexConfig Config = serialConfig(BinBits, BufferCap, MaxPerBin);
  Config.Concurrent = true;
  Config.Shards = Shards;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Oracle property tests: serial DedupIndex vs ConcurrentBinIndex
//===----------------------------------------------------------------------===//

class OracleShardTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(OracleShardTest, UnboundedRandomOps) {
  Random Rng(0xC0FFEE ^ GetParam());
  const std::vector<oracle::IndexOp> Ops =
      oracle::randomOps(Rng, 300, /*Universe=*/512);
  oracle::replayConfigsAndCompare(serialConfig(),
                                  concurrentConfig(GetParam()), Ops);
}

TEST_P(OracleShardTest, BoundedEvictionParity) {
  // Tiny bins + a hard per-bin cap: drains and random-replacement
  // evictions dominate. Victim identities must replay the serial
  // per-bin Rng stream bit-for-bit.
  Random Rng(0xBADBEEF ^ GetParam());
  const std::vector<oracle::IndexOp> Ops =
      oracle::randomOps(Rng, 250, /*Universe=*/4096, /*MaxBatch=*/32);
  oracle::replayConfigsAndCompare(
      serialConfig(6, /*BufferCap=*/2, /*MaxPerBin=*/4),
      concurrentConfig(GetParam(), 6, 2, 4), Ops);
}

TEST_P(OracleShardTest, GpuResolvedBatches) {
  Random Rng(0x6B75 ^ GetParam());
  const std::vector<oracle::IndexOp> Ops = oracle::randomOps(
      Rng, 200, /*Universe=*/512, /*MaxBatch=*/48, /*WithKnown=*/true);
  oracle::replayConfigsAndCompare(serialConfig(),
                                  concurrentConfig(GetParam()), Ops);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, OracleShardTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(OracleEquivalence, SingleBinPathologicalStream) {
  // Every fingerprint in one bin: maximal drain pressure and the
  // deepest buffer scans. BinBits=1 keeps two bins; identities are
  // drawn small so collisions recur fast.
  Random Rng(7);
  const std::vector<oracle::IndexOp> Ops =
      oracle::randomOps(Rng, 200, /*Universe=*/64, /*MaxBatch=*/16);
  oracle::replayConfigsAndCompare(serialConfig(1, 2, 8),
                                  concurrentConfig(2, 1, 2, 8), Ops);
}

//===----------------------------------------------------------------------===//
// 2. Bit-identity goldens: pipeline results across widths and shards
//===----------------------------------------------------------------------===//

namespace {

struct GoldenRun {
  PipelineReport Report;
  std::vector<std::uint64_t> Locations;
  ByteVector ReadBack;
  double CpuBusySec = 0.0;
  double SsdBusySec = 0.0;
};

GoldenRun runPipeline(const ByteVector &Data, unsigned HashWidth,
                      bool Concurrent, unsigned Shards) {
  Platform Plat = Platform::paper();
  Plat.Model.Cpu.HashBatchWidth = HashWidth;
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  Config.Dedup.Index.Concurrent = Concurrent;
  Config.Dedup.Index.Shards = Shards;
  ReductionPipeline Pipeline(Plat, Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  GoldenRun Run;
  Run.Report = Pipeline.report();
  Run.Locations = Pipeline.recipe().ChunkLocations;
  Run.CpuBusySec = Pipeline.ledger().busySeconds(Resource::CpuPool);
  Run.SsdBusySec = Pipeline.ledger().busySeconds(Resource::Ssd);
  const auto Stream = Pipeline.readBack();
  if (Stream)
    Run.ReadBack = *Stream;
  return Run;
}

void expectSameFunctionalResults(const GoldenRun &A, const GoldenRun &B) {
  EXPECT_EQ(A.Report.UniqueChunks, B.Report.UniqueChunks);
  EXPECT_EQ(A.Report.DupChunks, B.Report.DupChunks);
  EXPECT_EQ(A.Report.DupFromBuffer, B.Report.DupFromBuffer);
  EXPECT_EQ(A.Report.DupFromTree, B.Report.DupFromTree);
  EXPECT_EQ(A.Report.StoredBytes, B.Report.StoredBytes);
  EXPECT_EQ(A.Locations, B.Locations);
  EXPECT_EQ(A.ReadBack, B.ReadBack);
}

ByteVector goldenStream() {
  WorkloadConfig Workload;
  Workload.TotalBytes = 1 << 20;
  Workload.DedupRatio = 2.0;
  Workload.CompressRatio = 2.0;
  Workload.Seed = 99;
  return VdbenchStream(Workload).generateAll();
}

} // namespace

TEST(Goldens, HashWidthSweepBitIdenticalResults) {
  const ByteVector Data = goldenStream();
  const GoldenRun Baseline =
      runPipeline(Data, /*HashWidth=*/1, /*Concurrent=*/false, 1);
  ASSERT_FALSE(Baseline.ReadBack.empty());
  EXPECT_EQ(Baseline.ReadBack.size(), Data.size());
  for (unsigned Width : {2u, 4u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    const GoldenRun Run = runPipeline(Data, Width, false, 1);
    expectSameFunctionalResults(Baseline, Run);
    // Wider lanes charge strictly less CPU time for the same work —
    // the whole point of the multi-buffer path. SSD traffic is
    // functional and must not move at all.
    EXPECT_LT(Run.CpuBusySec, Baseline.CpuBusySec);
    EXPECT_DOUBLE_EQ(Run.SsdBusySec, Baseline.SsdBusySec);
  }
}

TEST(Goldens, ConcurrentIndexBitIdenticalIncludingCharges) {
  const ByteVector Data = goldenStream();
  for (unsigned Width : {1u, 8u}) {
    SCOPED_TRACE("width " + std::to_string(Width));
    const GoldenRun Serial = runPipeline(Data, Width, false, 1);
    for (unsigned Shards : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("shards " + std::to_string(Shards));
      const GoldenRun Run = runPipeline(Data, Width, true, Shards);
      expectSameFunctionalResults(Serial, Run);
      // Same outcomes => same modelled charges, bit for bit: swapping
      // the index implementation must never move the ledger.
      EXPECT_DOUBLE_EQ(Serial.CpuBusySec, Run.CpuBusySec);
      EXPECT_DOUBLE_EQ(Serial.SsdBusySec, Run.SsdBusySec);
    }
  }
}

TEST(Goldens, ShardedCompositeMatchesConcurrent) {
  // The pre-existing sequential sharded composite and the concurrent
  // index agree with each other too (both equal the serial oracle).
  const ByteVector Data = goldenStream();
  const GoldenRun Sharded = runPipeline(Data, 1, false, 4);
  const GoldenRun Concurrent = runPipeline(Data, 1, true, 4);
  expectSameFunctionalResults(Sharded, Concurrent);
}

//===----------------------------------------------------------------------===//
// 3. Concurrency stress (TSan-run in CI)
//===----------------------------------------------------------------------===//

TEST(Stress, DisjointWritersExactMembership) {
  // N writers, disjoint identity ranges, unbounded bins: the final
  // membership is fully determined, so every fingerprint must resolve
  // to exactly the location its writer inserted.
  constexpr unsigned Writers = 4;
  constexpr std::uint64_t PerWriter = 2000;
  ConcurrentBinIndex Index(concurrentConfig(4));
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Writers; ++W) {
    Threads.emplace_back([&Index, W] {
      std::vector<FlushEvent> Flush;
      for (std::uint64_t V = W * PerWriter; V < (W + 1) * PerWriter; ++V) {
        const LookupResult Result =
            Index.upsert(fingerprintOf(V), V, Flush);
        ASSERT_EQ(Result.Outcome, LookupOutcome::Unique);
        // Immediate read-your-write, racing the other writers.
        const auto Found = Index.lookup(fingerprintOf(V));
        ASSERT_TRUE(Found.has_value());
        ASSERT_EQ(*Found, V);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Index.uniqueInserts(), Writers * PerWriter);
  EXPECT_EQ(Index.evictions(), 0u);
  std::vector<FlushEvent> Flush;
  Index.flushAll(Flush);
  EXPECT_EQ(Index.treeEntries(), Writers * PerWriter);
  for (std::uint64_t V = 0; V < Writers * PerWriter; ++V) {
    const auto Found = Index.lookup(fingerprintOf(V));
    ASSERT_TRUE(Found.has_value()) << "lost identity " << V;
    EXPECT_EQ(*Found, V);
  }
}

TEST(Stress, MixedOpsConservationInvariant) {
  // Overlapping universes, bounded bins, random insert/probe/remove
  // interleavings: outcomes are timing-dependent, but conservation is
  // not — every entry now live was inserted and neither evicted nor
  // removed.
  constexpr unsigned Workers = 4;
  ConcurrentBinIndex Index(
      concurrentConfig(4, /*BinBits=*/6, /*BufferCap=*/4, /*MaxPerBin=*/8));
  std::atomic<std::uint64_t> Removed{0};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < Workers; ++W) {
    Threads.emplace_back([&Index, &Removed, W] {
      Random Rng(0xABCD + W);
      std::vector<FlushEvent> Flush;
      for (int I = 0; I < 4000; ++I) {
        const Fingerprint Fp = fingerprintOf(Rng.nextBelow(1024));
        switch (Rng.nextBelow(4)) {
        case 0:
        case 1:
          (void)Index.upsert(Fp, Rng.nextU64(), Flush);
          break;
        case 2:
          (void)Index.lookup(Fp);
          break;
        case 3:
          if (Index.remove(Fp))
            Removed.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  const std::size_t EntryBytes = Index.layout().cpuEntryBytes();
  const std::size_t Live = Index.memoryBytes() / EntryBytes;
  EXPECT_EQ(Index.memoryBytes() % EntryBytes, 0u);
  EXPECT_EQ(Index.uniqueInserts(),
            Index.evictions() + Removed.load() + Live);
  // Post-stress sanity: the index still works single-threaded.
  std::vector<FlushEvent> Flush;
  Index.flushAll(Flush);
  const Fingerprint Probe = fingerprintOf(999999);
  EXPECT_EQ(Index.upsert(Probe, 42, Flush).Outcome, LookupOutcome::Unique);
  EXPECT_EQ(Index.lookup(Probe), std::optional<std::uint64_t>(42));
}

TEST(Stress, ReadersNeverLoseEntriesDuringGrowth) {
  // One writer forces repeated table growth (few bins, many uniques);
  // readers continuously probe already-published identities. RCU-lite
  // retirement means a probe must never miss an entry that was
  // published before it started.
  constexpr std::uint64_t Total = 20000;
  ConcurrentBinIndex Index(concurrentConfig(1, /*BinBits=*/4,
                                            /*BufferCap=*/2));
  std::atomic<std::uint64_t> Published{0};
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (unsigned R = 0; R < 3; ++R) {
    Readers.emplace_back([&Index, &Published, &Stop, R] {
      Random Rng(0x5EED + R);
      while (!Stop.load(std::memory_order_acquire)) {
        const std::uint64_t Limit =
            Published.load(std::memory_order_acquire);
        if (Limit == 0)
          continue;
        const std::uint64_t V = Rng.nextBelow(Limit);
        const auto Found = Index.lookup(fingerprintOf(V));
        ASSERT_TRUE(Found.has_value()) << "growth lost identity " << V;
        ASSERT_EQ(*Found, V);
      }
    });
  }
  {
    std::vector<FlushEvent> Flush;
    for (std::uint64_t V = 0; V < Total; ++V) {
      (void)Index.upsert(fingerprintOf(V), V, Flush);
      Published.store(V + 1, std::memory_order_release);
    }
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();
  EXPECT_EQ(Index.uniqueInserts(), Total);
  // Growth happened: with 16 bins and 20k entries the initial tables
  // cannot have held everything.
  EXPECT_GT(Index.treeEntries() + Total / 100, Total / 2);
}

TEST(Stress, ParallelBatchesThroughEngineInterface) {
  // processBatch from multiple threads at once — beyond what the
  // engine does today (one batch at a time), exactly what the
  // concurrent index exists to make legal.
  constexpr unsigned Drivers = 3;
  ConcurrentBinIndex Index(concurrentConfig(4, 8, 4));
  std::vector<std::thread> Threads;
  for (unsigned D = 0; D < Drivers; ++D) {
    Threads.emplace_back([&Index, D] {
      ThreadPool Pool(2);
      Random Rng(0xD00D + D);
      for (int Round = 0; Round < 30; ++Round) {
        const std::size_t Size = 1 + Rng.nextBelow(64);
        std::vector<Fingerprint> Fps;
        std::vector<std::uint64_t> Locations;
        for (std::size_t I = 0; I < Size; ++I) {
          Fps.push_back(fingerprintOf(Rng.nextBelow(2048)));
          Locations.push_back(Rng.nextU64());
        }
        std::vector<LookupResult> Results(Size);
        std::vector<FlushEvent> Flush;
        Index.processBatch(Fps, Locations, {}, Pool, Results, Flush);
        for (const LookupResult &R : Results)
          ASSERT_NE(R.Outcome, LookupOutcome::DupGpu);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  // Conservation, again: batches insert uniques, nothing removes.
  const std::size_t EntryBytes = Index.layout().cpuEntryBytes();
  EXPECT_EQ(Index.uniqueInserts(),
            Index.evictions() + Index.memoryBytes() / EntryBytes);
  EXPECT_GT(Index.shardStats(0).Epoch + Index.shardStats(1).Epoch +
                Index.shardStats(2).Epoch + Index.shardStats(3).Epoch,
            0u);
}

//===----------------------------------------------------------------------===//
// Arena reuse on the pipeline hot path
//===----------------------------------------------------------------------===//

TEST(ArenaHotpath, RecipeStableAcrossArenaReuse) {
  // Many small writes => many processBatch calls => many arena resets.
  // Recipe entries recorded in earlier batches must be bit-stable (no
  // stale arena-backed refs), and the reassembled stream must verify.
  const ByteVector Data = goldenStream();
  Platform Plat = Platform::paper();
  Plat.Model.Cpu.HashBatchWidth = 4;
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.Concurrent = true;
  Config.Dedup.Index.Shards = 4;
  Config.BatchChunks = 16; // small batches -> frequent resets
  ReductionPipeline Pipeline(Plat, Config);

  const std::size_t Step = 64 * 1024;
  std::vector<std::uint64_t> AfterFirst;
  for (std::size_t Offset = 0; Offset < Data.size(); Offset += Step) {
    const std::size_t Length = std::min(Step, Data.size() - Offset);
    Pipeline.write(ByteSpan(Data.data() + Offset, Length));
    if (Offset == 0)
      AfterFirst = Pipeline.recipe().ChunkLocations;
    else {
      // The first write's entries are untouched by later batches.
      ASSERT_GE(Pipeline.recipe().ChunkLocations.size(),
                AfterFirst.size());
      for (std::size_t I = 0; I < AfterFirst.size(); ++I)
        ASSERT_EQ(Pipeline.recipe().ChunkLocations[I], AfterFirst[I]);
    }
  }
  Pipeline.finish();
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}
