//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-injection and graceful-degradation tests: deterministic
/// replay of seeded fault schedules, typed-error surfacing, bounded
/// retry recovery, GPU->CPU fallback bit-exactness, destage corruption
/// and scrub-and-repair. Labelled `fault` (ctest -L fault).
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "core/Volume.h"
#include "restore/ReadPipeline.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

ByteVector makeStream(std::uint64_t Bytes, double Dedup = 2.0,
                      double Compress = 2.0, std::uint64_t Seed = 21) {
  WorkloadConfig Config;
  Config.TotalBytes = Bytes;
  Config.DedupRatio = Dedup;
  Config.CompressRatio = Compress;
  Config.Seed = Seed;
  return VdbenchStream(Config).generateAll();
}

PipelineConfig pipelineConfig(PipelineMode Mode) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  return Config;
}

fault::FaultRule rule(fault::FaultSite Site, fault::FaultKind Kind) {
  fault::FaultRule Rule;
  Rule.Site = Site;
  Rule.Kind = Kind;
  return Rule;
}

/// Every resource lane's busy time, for bit-identity comparisons.
std::array<double, ResourceCount> busyTimes(ReductionPipeline &Pipeline) {
  std::array<double, ResourceCount> Busy{};
  for (unsigned R = 0; R < ResourceCount; ++R)
    Busy[R] = Pipeline.ledger().busyMicros(static_cast<Resource>(R));
  return Busy;
}

} // namespace

//===----------------------------------------------------------------------===//
// Plan parsing
//===----------------------------------------------------------------------===//

TEST(FaultPlanParse, AcceptsFullMiniLanguage) {
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan(
      "seed=7;retries=2;backoff-us=50;timeout-us=250;hang-us=1000;"
      "ssd-read:error:p=0.25;ssd-write:timeout:at=3,1;gpu-kernel:hang:"
      "every=10;gpu-dma:dma-corrupt:p=0.5;destage:bitflip:at=0",
      Plan, Error))
      << Error;
  EXPECT_EQ(Plan.Seed, 7u);
  EXPECT_EQ(Plan.Policy.MaxRetries, 2u);
  EXPECT_DOUBLE_EQ(Plan.Policy.RetryBackoffUs, 50.0);
  EXPECT_DOUBLE_EQ(Plan.Policy.SsdTimeoutUs, 250.0);
  EXPECT_DOUBLE_EQ(Plan.Policy.GpuHangTimeoutUs, 1000.0);
  ASSERT_EQ(Plan.Rules.size(), 5u);
  EXPECT_EQ(Plan.Rules[0].Site, fault::FaultSite::SsdRead);
  EXPECT_EQ(Plan.Rules[0].Kind, fault::FaultKind::LatentSectorError);
  EXPECT_DOUBLE_EQ(Plan.Rules[0].Probability, 0.25);
  // at= lists are kept sorted.
  ASSERT_EQ(Plan.Rules[1].AtOps.size(), 2u);
  EXPECT_EQ(Plan.Rules[1].AtOps[0], 1u);
  EXPECT_EQ(Plan.Rules[1].AtOps[1], 3u);
  EXPECT_EQ(Plan.Rules[2].EveryN, 10u);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  fault::FaultPlan Plan;
  std::string Error;
  // Unknown site, unknown kind, bad trigger, kind/site mismatch.
  EXPECT_FALSE(fault::parseFaultPlan("nvme:error:p=0.1", Plan, Error));
  EXPECT_FALSE(fault::parseFaultPlan("ssd-read:melt:p=0.1", Plan, Error));
  EXPECT_FALSE(fault::parseFaultPlan("ssd-read:error:soon", Plan, Error));
  EXPECT_FALSE(fault::parseFaultPlan("gpu-kernel:bitflip:p=0.1", Plan,
                                     Error));
  EXPECT_FALSE(fault::parseFaultPlan("ssd-read:error:p=1.5", Plan, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(FaultPlanParse, ValidityMatrixMatchesPhysics) {
  using fault::FaultKind;
  using fault::FaultSite;
  EXPECT_TRUE(faultKindValidAt(FaultSite::SsdRead,
                               FaultKind::LatentSectorError));
  EXPECT_TRUE(faultKindValidAt(FaultSite::SsdWrite, FaultKind::IoTimeout));
  EXPECT_TRUE(faultKindValidAt(FaultSite::GpuKernel,
                               FaultKind::GpuKernelHang));
  EXPECT_TRUE(faultKindValidAt(FaultSite::GpuDma,
                               FaultKind::GpuDmaCorrupt));
  EXPECT_TRUE(faultKindValidAt(FaultSite::Destage,
                               FaultKind::PayloadBitFlip));
  EXPECT_FALSE(faultKindValidAt(FaultSite::GpuKernel,
                                FaultKind::LatentSectorError));
  EXPECT_FALSE(faultKindValidAt(FaultSite::SsdRead,
                                FaultKind::GpuEccError));
  EXPECT_FALSE(faultKindValidAt(FaultSite::Destage,
                                FaultKind::IoTimeout));
}

//===----------------------------------------------------------------------===//
// Deterministic replay
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, SameSeedReplaysBitIdentically) {
  fault::FaultPlan Plan;
  Plan.Seed = 1234;
  auto Rule = rule(fault::FaultSite::SsdRead,
                   fault::FaultKind::LatentSectorError);
  Rule.Probability = 0.3;
  Plan.Rules.push_back(Rule);

  fault::FaultInjector A(Plan), B(Plan);
  for (int I = 0; I < 2000; ++I) {
    const auto FaultA = A.sample(fault::FaultSite::SsdRead);
    const auto FaultB = B.sample(fault::FaultSite::SsdRead);
    ASSERT_EQ(FaultA.has_value(), FaultB.has_value()) << "op " << I;
    if (FaultA) {
      EXPECT_EQ(FaultA->Kind, FaultB->Kind);
      EXPECT_EQ(FaultA->RandomBits, FaultB->RandomBits);
    }
  }
  EXPECT_EQ(A.injectedTotal(), B.injectedTotal());
  // p=0.3 over 2000 ops: the count concentrates near 600.
  EXPECT_GT(A.injectedTotal(), 450u);
  EXPECT_LT(A.injectedTotal(), 750u);
}

TEST(FaultInjectorTest, DifferentSeedsDifferentSchedules) {
  fault::FaultPlan Plan;
  auto Rule = rule(fault::FaultSite::SsdRead,
                   fault::FaultKind::LatentSectorError);
  Rule.Probability = 0.5;
  Plan.Rules.push_back(Rule);
  Plan.Seed = 1;
  fault::FaultInjector A(Plan);
  Plan.Seed = 2;
  fault::FaultInjector B(Plan);
  int Diverged = 0;
  for (int I = 0; I < 256; ++I)
    Diverged += A.sample(fault::FaultSite::SsdRead).has_value() !=
                B.sample(fault::FaultSite::SsdRead).has_value();
  EXPECT_GT(Diverged, 0);
}

TEST(FaultInjectorTest, ScheduleAndPeriodTriggersFireExactly) {
  fault::FaultPlan Plan;
  auto At = rule(fault::FaultSite::SsdWrite, fault::FaultKind::IoTimeout);
  At.AtOps = {0, 5};
  Plan.Rules.push_back(At);
  auto Every =
      rule(fault::FaultSite::GpuKernel, fault::FaultKind::GpuEccError);
  Every.EveryN = 4;
  Plan.Rules.push_back(Every);

  fault::FaultInjector Injector(Plan);
  std::vector<int> WriteFaults, KernelFaults;
  for (int I = 0; I < 12; ++I) {
    if (Injector.sample(fault::FaultSite::SsdWrite))
      WriteFaults.push_back(I);
    if (Injector.sample(fault::FaultSite::GpuKernel))
      KernelFaults.push_back(I);
  }
  EXPECT_EQ(WriteFaults, (std::vector<int>{0, 5}));
  EXPECT_EQ(KernelFaults, (std::vector<int>{3, 7, 11})); // every 4th op
}

TEST(FaultPipelineTest, SeededEndToEndRunReplaysBitIdentically) {
  // Two full pipeline runs under the same probability plan must charge
  // the same modelled time on every lane and inject the same faults.
  const ByteVector Data = makeStream(2 << 20);
  fault::FaultPlan Plan;
  Plan.Seed = 99;
  auto ReadRule = rule(fault::FaultSite::SsdRead,
                       fault::FaultKind::LatentSectorError);
  ReadRule.Probability = 0.05;
  Plan.Rules.push_back(ReadRule);
  auto WriteRule =
      rule(fault::FaultSite::SsdWrite, fault::FaultKind::IoTimeout);
  WriteRule.Probability = 0.05;
  Plan.Rules.push_back(WriteRule);

  auto Run = [&](std::array<double, ResourceCount> &Busy,
                 std::uint64_t &Injected, std::uint64_t &Retries) {
    fault::FaultInjector Injector(Plan);
    PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
    Config.Faults = &Injector;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    Pipeline.readBack();
    Busy = busyTimes(Pipeline);
    Injected = Injector.injectedTotal();
    Retries = Pipeline.ssd().retryCount();
  };

  std::array<double, ResourceCount> BusyA{}, BusyB{};
  std::uint64_t InjectedA = 0, InjectedB = 0, RetriesA = 0, RetriesB = 0;
  Run(BusyA, InjectedA, RetriesA);
  Run(BusyB, InjectedB, RetriesB);
  EXPECT_GT(InjectedA, 0u);
  EXPECT_EQ(InjectedA, InjectedB);
  EXPECT_EQ(RetriesA, RetriesB);
  for (unsigned R = 0; R < ResourceCount; ++R)
    EXPECT_DOUBLE_EQ(BusyA[R], BusyB[R]) << "resource " << R;
}

//===----------------------------------------------------------------------===//
// Null plan => bit-identical to no injector at all
//===----------------------------------------------------------------------===//

TEST(FaultPipelineTest, EmptyPlanIsBitIdenticalToNoInjector) {
  const ByteVector Data = makeStream(2 << 20);
  auto Run = [&](fault::FaultInjector *Faults,
                 std::array<double, ResourceCount> &Busy,
                 std::uint64_t &Stored) {
    PipelineConfig Config = pipelineConfig(PipelineMode::GpuCompress);
    Config.Faults = Faults;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    Pipeline.readBack();
    Busy = busyTimes(Pipeline);
    Stored = Pipeline.store().storedBytes();
  };

  std::array<double, ResourceCount> BusyNone{}, BusyEmpty{};
  std::uint64_t StoredNone = 0, StoredEmpty = 0;
  Run(nullptr, BusyNone, StoredNone);
  fault::FaultInjector Empty(fault::FaultPlan{});
  Run(&Empty, BusyEmpty, StoredEmpty);

  EXPECT_EQ(Empty.injectedTotal(), 0u);
  EXPECT_EQ(StoredNone, StoredEmpty);
  for (unsigned R = 0; R < ResourceCount; ++R)
    EXPECT_DOUBLE_EQ(BusyNone[R], BusyEmpty[R]) << "resource " << R;
}

//===----------------------------------------------------------------------===//
// SSD faults: bounded retry, typed errors, timeout degradation
//===----------------------------------------------------------------------===//

TEST(FaultPipelineTest, TransientSsdReadErrorRetriesAndRecovers) {
  const ByteVector Data = makeStream(1 << 20);
  fault::FaultPlan Plan;
  auto Rule = rule(fault::FaultSite::SsdRead,
                   fault::FaultKind::LatentSectorError);
  Rule.AtOps = {0}; // first read command fails once, retry sees op 1
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  EXPECT_TRUE(
      Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  EXPECT_TRUE(Pipeline.finish().ok());

  const std::uint64_t Loc = Pipeline.recipe().ChunkLocations.front();
  const auto Read = Pipeline.readChunkEx(Loc);
  ASSERT_TRUE(Read.ok()) << Read.status().message();
  EXPECT_EQ(Injector.injected(fault::FaultKind::LatentSectorError), 1u);
  EXPECT_EQ(Pipeline.ssd().retryCount(), 1u);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST(FaultPipelineTest, PersistentSsdReadErrorSurfacesTypedError) {
  const ByteVector Data = makeStream(1 << 20);
  fault::FaultPlan Plan;
  Plan.Policy.MaxRetries = 2;
  auto Rule = rule(fault::FaultSite::SsdRead,
                   fault::FaultKind::LatentSectorError);
  Rule.Probability = 1.0; // the medium is gone; retries cannot help
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  const auto Read =
      Pipeline.readChunkEx(Pipeline.recipe().ChunkLocations.front());
  ASSERT_FALSE(Read.ok());
  EXPECT_EQ(Read.status().code(), fault::ErrorCode::SsdReadError);
  EXPECT_STREQ(Read.status().message(), "ssd-read-error");
  // Budget respected: 1 initial attempt + MaxRetries re-issues.
  EXPECT_EQ(Pipeline.ssd().retryCount(), 2u);
}

TEST(FaultPipelineTest, PersistentSsdWriteErrorFailsWriteButKeepsData) {
  const ByteVector Data = makeStream(1 << 20);
  fault::FaultPlan Plan;
  Plan.Policy.MaxRetries = 1;
  auto Rule =
      rule(fault::FaultSite::SsdWrite, fault::FaultKind::LatentSectorError);
  Rule.Probability = 1.0;
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  const fault::Status Status =
      Pipeline.write(ByteSpan(Data.data(), Data.size()));
  ASSERT_FALSE(Status.ok());
  EXPECT_EQ(Status.code(), fault::ErrorCode::SsdWriteError);
  // The functional store still holds every batch: a destage failure is
  // surfaced, not silently swallowed mid-stream.
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST(FaultPipelineTest, IoTimeoutChargesDegradedLatencyAndRecovers) {
  const ByteVector Data = makeStream(1 << 20);
  auto Run = [&](bool WithTimeout) {
    fault::FaultPlan Plan;
    Plan.Policy.SsdTimeoutUs = 750.0;
    if (WithTimeout) {
      auto Rule =
          rule(fault::FaultSite::SsdRead, fault::FaultKind::IoTimeout);
      Rule.AtOps = {0};
      Plan.Rules.push_back(Rule);
    }
    fault::FaultInjector Injector(Plan);
    PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
    Config.Faults = &Injector;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    EXPECT_TRUE(
        Pipeline.readChunk(Pipeline.recipe().ChunkLocations.front())
            .has_value());
    return Pipeline.ledger().busyMicros(Resource::Ssd);
  };
  const double Clean = Run(false);
  const double Degraded = Run(true);
  // The stalled attempt + backoff + re-issue all cost modelled time.
  EXPECT_GT(Degraded, Clean + 750.0);
}

//===----------------------------------------------------------------------===//
// GPU faults: transparent CPU fallback, bit-exact output
//===----------------------------------------------------------------------===//

class GpuFaultTest
    : public ::testing::TestWithParam<std::pair<fault::FaultSite,
                                                fault::FaultKind>> {};

TEST_P(GpuFaultTest, WritePathFallsBackToCpuBitExact) {
  const auto [Site, Kind] = GetParam();
  const ByteVector Data = makeStream(2 << 20);
  fault::FaultPlan Plan;
  auto Rule = rule(Site, Kind);
  Rule.Probability = 1.0; // the device is effectively dead
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  obs::MetricsRegistry Metrics;
  PipelineConfig Config = pipelineConfig(PipelineMode::GpuBoth);
  Config.Faults = &Injector;
  Config.Metrics = &Metrics;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  // GPU faults never fail a batch — the CPU re-runs it and the stored
  // stream is bit-exact.
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
  EXPECT_GT(Injector.injected(Kind), 0u);
  // The degradation is observable.
  std::uint64_t Fallbacks = 0;
  for (const char *Name :
       {"padre_gpu_fallback_total{family=\"compression\"}",
        "padre_gpu_fallback_total{family=\"indexing\"}"})
    if (const obs::Counter *C = Metrics.findCounter(Name))
      Fallbacks += C->value();
  EXPECT_GT(Fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    KernelAndDma, GpuFaultTest,
    ::testing::Values(
        std::pair(fault::FaultSite::GpuKernel,
                  fault::FaultKind::GpuEccError),
        std::pair(fault::FaultSite::GpuKernel,
                  fault::FaultKind::GpuKernelHang),
        std::pair(fault::FaultSite::GpuDma,
                  fault::FaultKind::GpuDmaCorrupt)),
    [](const auto &Info) {
      std::string Name =
          std::string(fault::faultSiteName(Info.param.first)) + "_" +
          fault::faultKindName(Info.param.second);
      for (char &C : Name)
        if (C == '-')
          C = '_'; // gtest names must be identifiers
      return Name;
    });

TEST(FaultRestoreTest, GpuDecodeFaultFallsBackToCpuBitExact) {
  const ByteVector Data = makeStream(2 << 20, 1.0); // all unique
  fault::FaultPlan Plan;
  auto Rule =
      rule(fault::FaultSite::GpuKernel, fault::FaultKind::GpuEccError);
  Rule.EveryN = 2; // every other decode kernel dies
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  restore::ReadConfig ReadConfig;
  ReadConfig.Mode = restore::DecodeMode::Gpu;
  restore::ReadPipeline Reader(Pipeline, ReadConfig);
  ASSERT_EQ(Reader.effectiveMode(), restore::DecodeMode::Gpu);
  const auto Restored = Reader.readStream(Pipeline.recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data); // every chunk delivered despite the faults
  EXPECT_GT(Reader.gpuDecodeFallbackCount(), 0u);
  EXPECT_EQ(Reader.report().DecodeFailures, 0u);
}

TEST(FaultRestoreTest, WarpDecodeFaultEvictsKernelAndFallsBackBitExact) {
  const ByteVector Data = makeStream(2 << 20, 1.0); // all unique
  fault::FaultPlan Plan;
  auto Rule =
      rule(fault::FaultSite::GpuKernel, fault::FaultKind::GpuEccError);
  Rule.EveryN = 2; // every other warp dispatch dies
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Compress.SubBlocks = 4; // v2 framed store
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  restore::ReadConfig ReadConfig;
  ReadConfig.Mode = restore::DecodeMode::WarpGpu;
  ReadConfig.BatchDepth = 32; // several sub-batches: evict + relaunch
  restore::ReadPipeline Reader(Pipeline, ReadConfig);
  ASSERT_EQ(Reader.effectiveMode(), restore::DecodeMode::WarpGpu);
  const auto Restored = Reader.readStream(Pipeline.recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data); // CPU retry is authoritative and bit-exact
  EXPECT_GT(Reader.gpuDecodeFallbackCount(), 0u);
  const restore::ReadReport Report = Reader.report();
  EXPECT_EQ(Report.DecodeFailures, 0u);
  EXPECT_GT(Report.WarpBatches, 1u); // faulted AND surviving dispatches
}

TEST(FaultRestoreTest, WarpDmaFaultFallsBackBitExact) {
  const ByteVector Data = makeStream(1 << 20, 1.0);
  fault::FaultPlan Plan;
  auto Rule =
      rule(fault::FaultSite::GpuDma, fault::FaultKind::GpuDmaCorrupt);
  Rule.AtOps = {0}; // the first DMA of the restore run
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Compress.SubBlocks = 4;
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  restore::ReadConfig ReadConfig;
  ReadConfig.Mode = restore::DecodeMode::WarpGpu;
  restore::ReadPipeline Reader(Pipeline, ReadConfig);
  const auto Restored = Reader.readStream(Pipeline.recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  EXPECT_GT(Reader.gpuDecodeFallbackCount(), 0u);
}

TEST(FaultPipelineTest, GpuHangChargesHangOccupancy) {
  const ByteVector Data = makeStream(1 << 20, 1.0);
  auto Run = [&](bool WithHang) {
    fault::FaultPlan Plan;
    Plan.Policy.GpuHangTimeoutUs = 5000.0;
    if (WithHang) {
      auto Rule = rule(fault::FaultSite::GpuKernel,
                       fault::FaultKind::GpuKernelHang);
      Rule.AtOps = {0};
      Plan.Rules.push_back(Rule);
    }
    fault::FaultInjector Injector(Plan);
    PipelineConfig Config = pipelineConfig(PipelineMode::GpuCompress);
    Config.Faults = &Injector;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    EXPECT_TRUE(
        Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
    return Pipeline.ledger().busyMicros(Resource::Gpu);
  };
  const double Clean = Run(false);
  const double Hung = Run(true);
  // The hung kernel occupies the device until the watchdog kills it;
  // the CPU re-run then happens off-GPU, so GPU busy strictly grows.
  EXPECT_GT(Hung, Clean);
}

//===----------------------------------------------------------------------===//
// Destage corruption, CRC detection, scrub-and-repair
//===----------------------------------------------------------------------===//

TEST(FaultScrubTest, DestageBitFlipIsDetectedAndTyped) {
  const ByteVector Data = makeStream(1 << 20, 1.0);
  fault::FaultPlan Plan;
  auto Rule =
      rule(fault::FaultSite::Destage, fault::FaultKind::PayloadBitFlip);
  Rule.AtOps = {3};
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  std::vector<ChunkWriteInfo> Info;
  ASSERT_TRUE(
      Pipeline.write(ByteSpan(Data.data(), Data.size()), &Info).ok());
  ASSERT_TRUE(Pipeline.finish().ok());
  ASSERT_EQ(Injector.injected(fault::FaultKind::PayloadBitFlip), 1u);

  // Exactly one chunk fails its CRC with a typed ChunkCorrupt; all
  // others read back clean.
  std::uint64_t Corrupt = 0;
  for (const ChunkWriteInfo &Chunk : Info) {
    const auto Read = Pipeline.readChunkEx(Chunk.Location);
    if (!Read.ok()) {
      EXPECT_EQ(Read.status().code(), fault::ErrorCode::ChunkCorrupt);
      ++Corrupt;
      // No cached copy ever existed: the damage is unrepairable.
      EXPECT_EQ(Pipeline.scrubChunk(Chunk.Location, Chunk.Fp),
                ScrubOutcome::Lost);
    }
  }
  EXPECT_EQ(Corrupt, 1u);
}

TEST(FaultScrubTest, ScrubRepairsFromFingerprintVerifiedCachedCopy) {
  const ByteVector Data = makeStream(1 << 20, 1.0);
  obs::MetricsRegistry Metrics;
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.ReadCacheBytes = 32 << 20;
  Config.Metrics = &Metrics;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  std::vector<ChunkWriteInfo> Info;
  ASSERT_TRUE(
      Pipeline.write(ByteSpan(Data.data(), Data.size()), &Info).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  const std::uint64_t Loc = Info.front().Location;
  const auto Original = Pipeline.readChunk(Loc); // warms the cache
  ASSERT_TRUE(Original.has_value());
  ASSERT_TRUE(Pipeline.corruptChunkForTesting(Loc, 20));

  EXPECT_EQ(Pipeline.scrubChunk(Loc, Info.front().Fp),
            ScrubOutcome::Repaired);
  const obs::Counter *Repaired = Metrics.findCounter(
      "padre_scrub_repair_total{outcome=\"repaired\"}");
  ASSERT_NE(Repaired, nullptr);
  EXPECT_EQ(Repaired->value(), 1u);

  // The repaired block reads back bit-exact, off flash, no cache help.
  const auto After = Pipeline.readChunk(Loc, /*BypassCache=*/true);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, *Original);
  EXPECT_EQ(Pipeline.scrubChunk(Loc, Info.front().Fp),
            ScrubOutcome::Healthy);
}

TEST(FaultScrubTest, VolumeScrubAndRepairEndToEnd) {
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.ReadCacheBytes = 32 << 20;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 256;
  Volume Vol(Pipeline, VolConfig);

  const ByteVector Data = makeStream(256 * 4096, 1.0);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  Vol.flush();
  // Warm the cache (every chunk decodes into the front tier), then
  // corrupt two stored blocks behind the cache's back.
  ASSERT_TRUE(Vol.readBlocks(0, Vol.blockCount()).has_value());
  const auto Records = Vol.chunkRecords();
  ASSERT_GE(Records.size(), 2u);
  ASSERT_TRUE(
      Pipeline.corruptChunkForTesting(Records[0].Location, 19));
  ASSERT_TRUE(
      Pipeline.corruptChunkForTesting(Records[1].Location, 23));

  const Volume::ScrubRepairReport Report = Vol.scrubAndRepair();
  EXPECT_EQ(Report.ChunksScanned, Records.size());
  EXPECT_EQ(Report.CorruptChunks, 2u);
  EXPECT_EQ(Report.RepairedChunks, 2u);
  EXPECT_EQ(Report.LostChunks, 0u);
  EXPECT_TRUE(Report.LostLocations.empty());

  // Everything reads back bit-exact after repair.
  const auto After = Vol.readBlocks(0, Vol.blockCount());
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, Data);
  // And a plain scrub now finds a healthy store.
  EXPECT_EQ(Vol.scrub().CorruptChunks, 0u);
}

//===----------------------------------------------------------------------===//
// Fault metrics surface through the registry
//===----------------------------------------------------------------------===//

TEST(FaultObsTest, InjectionAndRetryCountersExported) {
  const ByteVector Data = makeStream(1 << 20);
  fault::FaultPlan Plan;
  auto Rule = rule(fault::FaultSite::SsdWrite,
                   fault::FaultKind::LatentSectorError);
  Rule.AtOps = {0};
  Plan.Rules.push_back(Rule);
  fault::FaultInjector Injector(Plan);

  obs::MetricsRegistry Metrics;
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Faults = &Injector;
  Config.Metrics = &Metrics;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());

  const obs::Counter *InjectedCounter = Metrics.findCounter(
      "padre_fault_injected_total{kind=\"latent-sector-error\"}");
  ASSERT_NE(InjectedCounter, nullptr);
  EXPECT_EQ(InjectedCounter->value(), 1u);
  const obs::Counter *RetryCounter =
      Metrics.findCounter("padre_retry_total{op=\"write\"}");
  ASSERT_NE(RetryCounter, nullptr);
  EXPECT_EQ(RetryCounter->value(), 1u);
  EXPECT_EQ(Pipeline.ssd().retryCount(), 1u);
}
