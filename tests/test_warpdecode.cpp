//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for decode v2's codec layer (`ctest -L decode`): the sub-block
/// frame format (parse geometry, header round trips, the corruption
/// sweep), compressFramed's history-reset invariant and measured ratio
/// cost, the warp-cooperative decompressor's bit-exactness against the
/// serial LzCodec::decompress oracle across sub-block counts and data
/// shapes, and the warp cost-model helper.
///
//===----------------------------------------------------------------------===//

#include "compress/ChunkCodec.h"
#include "compress/GpuWarpDecompressor.h"
#include "compress/SubBlockFrame.h"
#include "sim/CostModel.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

ByteVector repetitiveData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  std::uint8_t Pattern[64];
  Rng.fillBytes(Pattern, sizeof(Pattern));
  for (std::size_t I = 0; I < Size; I += 64) {
    const std::size_t Take = std::min<std::size_t>(64, Size - I);
    if (Rng.nextBool(0.2))
      Rng.fillBytes(Data.data() + I, Take);
    else
      std::copy(Pattern, Pattern + Take, Data.data() + I);
  }
  return Data;
}

/// The serial oracle: LzCodec::decompress over each sub-block, exactly
/// what ChunkCodec's LzFramed branch runs.
ByteVector serialOracleDecode(const ByteVector &Framed,
                              std::size_t OriginalSize) {
  const auto Frame = parseSubBlockFrame(
      ByteSpan(Framed.data(), Framed.size()),
      static_cast<std::uint32_t>(OriginalSize));
  EXPECT_TRUE(Frame.has_value());
  ByteVector Out;
  if (!Frame)
    return Out;
  for (unsigned I = 0; I < Frame->Count; ++I)
    EXPECT_TRUE(LzCodec::decompress(Frame->tokens(I),
                                    Frame->Segs[I].OutputBytes, Out));
  return Out;
}

/// Warp plan + runWarps over a framed payload.
ByteVector warpDecode(const ByteVector &Framed, std::size_t OriginalSize,
                      bool *Ok = nullptr) {
  WarpSubBlock Table[MaxSubBlocks];
  auto Plan = GpuWarpDecompressor::plan(
      ByteSpan(Framed.data(), Framed.size()), OriginalSize,
      std::span<WarpSubBlock>(Table, MaxSubBlocks));
  ByteVector Out;
  if (!Plan) {
    if (Ok)
      *Ok = false;
    return Out;
  }
  const bool Ran = GpuWarpDecompressor::runWarps(
      ByteSpan(Framed.data(), Framed.size()), *Plan, Out);
  if (Ok)
    *Ok = Ran;
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame format
//===----------------------------------------------------------------------===//

TEST(SubBlockFrame, HeaderRoundTripsAndSegsTile) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(8192, 11);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);
  EXPECT_EQ(Framed.SubBlockCount, 4u);
  const auto Frame =
      parseSubBlockFrame(ByteSpan(Framed.Payload.data(),
                                  Framed.Payload.size()),
                         static_cast<std::uint32_t>(Data.size()));
  ASSERT_TRUE(Frame.has_value());
  ASSERT_EQ(Frame->Count, 4u);
  // Segments tile both the token region and the decoded output.
  std::size_t PayloadPos = subBlockHeaderSize(Frame->Count);
  std::size_t OutputPos = 0;
  for (unsigned I = 0; I < Frame->Count; ++I) {
    const SubBlockSeg &Seg = Frame->Segs[I];
    EXPECT_EQ(Seg.PayloadOffset, PayloadPos);
    EXPECT_EQ(Seg.OutputOffset, OutputPos);
    EXPECT_GT(Seg.OutputBytes, 0u);
    PayloadPos += Seg.PayloadBytes;
    OutputPos += Seg.OutputBytes;
  }
  EXPECT_EQ(PayloadPos, Framed.Payload.size());
  EXPECT_EQ(OutputPos, Data.size());
}

TEST(SubBlockFrame, TinyInputClampsSubBlockCount) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Tiny = {std::uint8_t{1}, std::uint8_t{2},
                           std::uint8_t{3}};
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Tiny.data(), Tiny.size()), 8);
  EXPECT_LE(Framed.SubBlockCount, Tiny.size());
  EXPECT_GE(Framed.SubBlockCount, 1u);
  EXPECT_EQ(serialOracleDecode(Framed.Payload, Tiny.size()), Tiny);
}

TEST(SubBlockFrame, OversizedCountClampsToMax) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(4096, 12);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 1000);
  EXPECT_EQ(Framed.SubBlockCount, MaxSubBlocks);
  EXPECT_EQ(serialOracleDecode(Framed.Payload, Data.size()), Data);
}

TEST(SubBlockFrame, RatioCostIsBoundedOnCompressibleData) {
  // The history reset + header overhead must stay a small tax: the
  // whole point of the format is trading a few percent of ratio for
  // warp parallelism (the bench gates <= 5% on the vdbench workload).
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(65536, 13);
  const std::size_t Unframed =
      Codec.compress(ByteSpan(Data.data(), Data.size())).Payload.size();
  for (const unsigned Count : {1u, 2u, 4u, 8u}) {
    const FramedCompressResult Framed =
        Codec.compressFramed(ByteSpan(Data.data(), Data.size()), Count);
    const double DeltaPct =
        100.0 *
        (static_cast<double>(Framed.Payload.size()) -
         static_cast<double>(Unframed)) /
        static_cast<double>(Unframed);
    EXPECT_LT(DeltaPct, 10.0) << "sub-blocks=" << Count;
    EXPECT_EQ(serialOracleDecode(Framed.Payload, Data.size()), Data)
        << "sub-blocks=" << Count;
  }
}

TEST(SubBlockFrame, ChunkCodecDecodesLzFramedBlocks) {
  // The block-layer integration: an LzFramed block decodes through the
  // generic chunk codec (the CPU path every framed chunk can fall back
  // to).
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(8192, 14);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);
  const ByteVector Block = encodeBlock(
      BlockMethod::LzFramed, static_cast<std::uint32_t>(Data.size()),
      ByteSpan(Framed.Payload.data(), Framed.Payload.size()));
  const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->Method, BlockMethod::LzFramed);
  ByteVector Out;
  ASSERT_TRUE(decodeChunkPayload(*View, Out));
  EXPECT_EQ(Out, Data);
}

//===----------------------------------------------------------------------===//
// Warp decode vs the serial oracle
//===----------------------------------------------------------------------===//

namespace {

class WarpOracle
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

std::string warpOracleName(
    const ::testing::TestParamInfo<WarpOracle::ParamType> &Info) {
  static const char *Shapes[] = {"random", "mixed", "constant", "big"};
  return "sub" + std::to_string(std::get<0>(Info.param)) + "_" +
         Shapes[std::get<1>(Info.param)];
}

} // namespace

TEST_P(WarpOracle, WarpDecodeMatchesSerialOracleBitExact) {
  const auto &[SubBlocks, Shape] = GetParam();
  ByteVector Data;
  switch (Shape) {
  case 0:
    Data = randomData(4096, 21);
    break;
  case 1:
    Data = repetitiveData(4096, 22);
    break;
  case 2:
    Data = ByteVector(4096, 0x77);
    break;
  default:
    Data = repetitiveData(32768, 23);
  }
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), SubBlocks);
  const ByteVector Oracle = serialOracleDecode(Framed.Payload, Data.size());
  bool Ok = false;
  const ByteVector Warp = warpDecode(Framed.Payload, Data.size(), &Ok);
  ASSERT_TRUE(Ok);
  EXPECT_EQ(Warp, Oracle);
  EXPECT_EQ(Warp, Data);
}

INSTANTIATE_TEST_SUITE_P(
    CountsAndShapes, WarpOracle,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Range(0, 4)),
    warpOracleName);

TEST(GpuWarpDecompressor, PlanIsHeaderOnlyAndFillsTable) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(8192, 31);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 8);
  WarpSubBlock Table[MaxSubBlocks];
  auto Plan = GpuWarpDecompressor::plan(
      ByteSpan(Framed.Payload.data(), Framed.Payload.size()), Data.size(),
      std::span<WarpSubBlock>(Table, MaxSubBlocks));
  ASSERT_TRUE(Plan.has_value());
  EXPECT_EQ(Plan->SubBlocks.size(), 8u);
  EXPECT_EQ(Plan->OriginalSize, Data.size());
  EXPECT_EQ(Plan->PayloadSize, Framed.Payload.size());
  // Counts are filled by runWarps, not plan (the O(N) header parse
  // never walks tokens).
  for (const WarpSubBlock &Sub : Plan->SubBlocks) {
    EXPECT_EQ(Sub.Tokens, 0u);
    EXPECT_EQ(Sub.TokenSwitches, 0u);
  }
  ByteVector Out;
  ASSERT_TRUE(GpuWarpDecompressor::runWarps(
      ByteSpan(Framed.Payload.data(), Framed.Payload.size()), *Plan, Out));
  std::uint64_t Tokens = 0;
  for (const WarpSubBlock &Sub : Plan->SubBlocks) {
    EXPECT_GT(Sub.Tokens, 0u);
    EXPECT_EQ(Sub.Stats.LiteralBytes + Sub.Stats.MatchBytes,
              Sub.Seg.OutputBytes);
    Tokens += Sub.Tokens;
  }
  EXPECT_GT(Tokens, 0u);
}

TEST(GpuWarpDecompressor, UndersizedTableRejected) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(4096, 32);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 8);
  WarpSubBlock Small[4];
  EXPECT_FALSE(GpuWarpDecompressor::plan(
                   ByteSpan(Framed.Payload.data(), Framed.Payload.size()),
                   Data.size(), std::span<WarpSubBlock>(Small, 4))
                   .has_value());
}

TEST(GpuWarpDecompressor, CrossSubBlockDistanceRejected) {
  // History reset is an invariant, not a convention: hand-build a frame
  // whose second sub-block reaches back across the boundary. The serial
  // oracle would happily decode it (its history spans the chunk), so
  // the warp kernel must reject it itself.
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data(512, std::uint8_t{0x42});
  // Sub-block 1: the constant run compressed standalone.
  const CompressResult Legit =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  // Sub-block 2: one literal + a match whose distance (2) is fine, then
  // rebuild with a distance that reaches before the sub-block (600 >
  // its own output).
  ByteVector Evil;
  Evil.push_back(std::uint8_t{0});    // literal run, length 1
  Evil.push_back(std::uint8_t{0xAA}); // the literal
  Evil.push_back(std::uint8_t{0x80}); // match, length 4
  Evil.push_back(std::uint8_t{88});   // distance lo: 600 = 0x258
  Evil.push_back(std::uint8_t{2});    // distance hi
  const std::uint32_t PayloadBytes[2] = {
      static_cast<std::uint32_t>(Legit.Payload.size()),
      static_cast<std::uint32_t>(Evil.size())};
  const std::uint32_t OutputBytes[2] = {512, 5};
  ByteVector Framed;
  appendSubBlockHeader(Framed, 2, PayloadBytes, OutputBytes);
  appendBytes(Framed, ByteSpan(Legit.Payload.data(), Legit.Payload.size()));
  appendBytes(Framed, ByteSpan(Evil.data(), Evil.size()));

  bool Ok = true;
  const ByteVector Out = warpDecode(Framed, 517, &Ok);
  EXPECT_FALSE(Ok);
  EXPECT_TRUE(Out.empty()); // no partial output on failure
}

//===----------------------------------------------------------------------===//
// Corruption sweep: every malformed frame fails typed, never crashes.
//===----------------------------------------------------------------------===//

TEST(SubBlockFrameCorruption, HeaderFieldSweep) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(4096, 41);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);
  const auto Parse = [&](const ByteVector &Payload) {
    return parseSubBlockFrame(ByteSpan(Payload.data(), Payload.size()),
                              static_cast<std::uint32_t>(Data.size()));
  };
  ASSERT_TRUE(Parse(Framed.Payload).has_value());

  ByteVector Bad = Framed.Payload;
  Bad[0] = 0x5C; // wrong magic
  EXPECT_FALSE(Parse(Bad).has_value());

  Bad = Framed.Payload;
  Bad[1] = 1; // wrong version (v1 streams are never framed)
  EXPECT_FALSE(Parse(Bad).has_value());

  Bad = Framed.Payload;
  Bad[2] = 0; // zero sub-blocks
  EXPECT_FALSE(Parse(Bad).has_value());

  Bad = Framed.Payload;
  Bad[2] = MaxSubBlocks + 1; // count above the format bound
  EXPECT_FALSE(Parse(Bad).has_value());

  Bad = Framed.Payload;
  Bad[3] = 0xFF; // reserved byte must be zero
  EXPECT_FALSE(Parse(Bad).has_value());

  // Size-table damage: every byte of every length entry, flipped.
  for (std::size_t I = 4; I < subBlockHeaderSize(4); ++I) {
    Bad = Framed.Payload;
    Bad[I] ^= 0xFF;
    const auto Frame = Parse(Bad);
    if (!Frame.has_value())
      continue; // parse already rejected it
    // A flip the running sums cannot catch must still fail (or
    // round-trip bit-exactly, never crash or mis-decode) in the
    // decoders themselves.
    ByteVector Out;
    WarpSubBlock Table[MaxSubBlocks];
    auto Plan = GpuWarpDecompressor::plan(ByteSpan(Bad.data(), Bad.size()),
                                          Data.size(),
                                          std::span<WarpSubBlock>(
                                              Table, MaxSubBlocks));
    if (!Plan)
      continue;
    if (GpuWarpDecompressor::runWarps(ByteSpan(Bad.data(), Bad.size()),
                                      *Plan, Out)) {
      EXPECT_EQ(Out, Data) << "header byte " << I;
    }
  }
}

TEST(SubBlockFrameCorruption, TruncationAndSizeMismatch) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(4096, 42);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);

  // Truncated anywhere: header, table, streams.
  for (const std::size_t Keep :
       {std::size_t{0}, std::size_t{3}, subBlockHeaderSize(4) - 1,
        Framed.Payload.size() - 1}) {
    EXPECT_FALSE(parseSubBlockFrame(
                     ByteSpan(Framed.Payload.data(), Keep),
                     static_cast<std::uint32_t>(Data.size()))
                     .has_value())
        << "kept " << Keep;
  }
  // OriginalSize mismatch: the output sum no longer reconciles.
  EXPECT_FALSE(
      parseSubBlockFrame(
          ByteSpan(Framed.Payload.data(), Framed.Payload.size()),
          static_cast<std::uint32_t>(Data.size() - 1))
          .has_value());
  // Trailing garbage: payload sum no longer reconciles.
  ByteVector Longer = Framed.Payload;
  Longer.push_back(std::uint8_t{0});
  EXPECT_FALSE(parseSubBlockFrame(ByteSpan(Longer.data(), Longer.size()),
                                  static_cast<std::uint32_t>(Data.size()))
                   .has_value());
}

TEST(SubBlockFrameCorruption, TokenStreamByteSweepNeverCrashes) {
  // Flip every token byte in turn: each variant either fails typed in
  // runWarps (distances/lengths no longer reconcile) or still decodes
  // to exactly OriginalSize bytes. No partial output, no crash — the
  // CRC normally screens these, so this exercises the last line of
  // defence.
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(1024, 43);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);
  for (std::size_t I = subBlockHeaderSize(4); I < Framed.Payload.size();
       ++I) {
    ByteVector Bad = Framed.Payload;
    Bad[I] ^= 0x55;
    bool Ok = false;
    const ByteVector Out = warpDecode(Bad, Data.size(), &Ok);
    if (Ok)
      EXPECT_EQ(Out.size(), Data.size()) << "token byte " << I;
    else
      EXPECT_TRUE(Out.empty()) << "token byte " << I;
  }
}

//===----------------------------------------------------------------------===//
// Warp cost model
//===----------------------------------------------------------------------===//

TEST(WarpCostModel, SubBlockCostIsMonotonic) {
  const CostModel Model;
  const double Base = Model.gpuWarpSubBlockUs(64, 4096, 16, 4);
  EXPECT_GT(Base, 0.0);
  EXPECT_GT(Model.gpuWarpSubBlockUs(128, 4096, 16, 4), Base);
  EXPECT_GT(Model.gpuWarpSubBlockUs(64, 8192, 16, 4), Base);
  EXPECT_GT(Model.gpuWarpSubBlockUs(64, 4096, 64, 4), Base);
  EXPECT_GT(Model.gpuWarpSubBlockUs(64, 4096, 16, 32), Base);
}

TEST(WarpCostModel, WarpDivergenceIsCheaperThanLockstep) {
  // The design claim the constants encode: a token-kind switch costs a
  // warp less than a lockstep wavefront (divergence is contained to
  // one warp, CODAG §reader/decoder split).
  const CostModel Model;
  EXPECT_LT(Model.Gpu.WarpDivergencePerTokenNs,
            Model.Gpu.DecDivergencePerTokenNs);
  // And the doorbell is far below a full launch — the persistent
  // kernel's whole reason to exist.
  EXPECT_LT(Model.Gpu.WarpDoorbellUs * 10.0, Model.Gpu.LaunchUs);
}
