//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the GPU lane-parallel compressor and its CPU refinement:
/// lane geometry, overlap-window semantics, refined-stream round trips,
/// raw fallback, and the ratio cost of lane parallelism vs single-scan
/// compression.
///
//===----------------------------------------------------------------------===//

#include "compress/GpuLaneCompressor.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

ByteVector repetitiveData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  std::uint8_t Pattern[64];
  Rng.fillBytes(Pattern, sizeof(Pattern));
  for (std::size_t I = 0; I < Size; I += 64) {
    const std::size_t Take = std::min<std::size_t>(64, Size - I);
    if (Rng.nextBool(0.2))
      Rng.fillBytes(Data.data() + I, Take);
    else
      std::copy(Pattern, Pattern + Take, Data.data() + I);
  }
  return Data;
}

/// Refines and decodes back; asserts the chunk survives.
void expectRefinedRoundTrip(const GpuLaneCompressor &Compressor,
                            const ByteVector &Data) {
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  const auto View =
      decodeBlock(ByteSpan(Refined.Block.data(), Refined.Block.size()));
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->OriginalSize, Data.size());
  if (View->Method == BlockMethod::Raw) {
    EXPECT_TRUE(Refined.StoredRaw);
    EXPECT_TRUE(std::equal(View->Payload.begin(), View->Payload.end(),
                           Data.begin()));
    return;
  }
  EXPECT_EQ(View->Method, BlockMethod::GpuLane);
  ByteVector Out;
  ASSERT_TRUE(LzCodec::decompress(View->Payload, Data.size(), Out));
  EXPECT_EQ(Out, Data);
}

} // namespace

TEST(GpuLaneCompressor, LaneGeometryCoversChunk) {
  GpuLaneConfig Config;
  Config.Lanes = 8;
  const GpuLaneCompressor Compressor(Config);
  const ByteVector Data = randomData(4096, 1);
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  EXPECT_EQ(Outputs.LaneResults.size(), 8u);
  std::size_t Covered = 0;
  for (const CompressResult &Lane : Outputs.LaneResults)
    Covered += Lane.Stats.LiteralBytes + Lane.Stats.MatchBytes;
  EXPECT_EQ(Covered, Data.size());
}

TEST(GpuLaneCompressor, FewerLanesThanBytesDegradesGracefully) {
  GpuLaneConfig Config;
  Config.Lanes = 16;
  const GpuLaneCompressor Compressor(Config);
  const ByteVector Data = randomData(10, 2); // fewer bytes than lanes
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  EXPECT_LE(Outputs.LaneResults.size(), 10u);
  expectRefinedRoundTrip(Compressor, Data);
}

TEST(GpuLaneCompressor, EmptyChunk) {
  const GpuLaneCompressor Compressor;
  const LaneOutputs Outputs = Compressor.runLanes(ByteSpan());
  EXPECT_TRUE(Outputs.LaneResults.empty());
  EXPECT_EQ(Outputs.totalPayloadBytes(), 0u);
}

namespace {

class LaneRoundTrip
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t, int>> {
};

} // namespace

TEST_P(LaneRoundTrip, RefinedStreamDecodes) {
  const auto &[Lanes, History, Shape] = GetParam();
  GpuLaneConfig Config;
  Config.Lanes = Lanes;
  Config.HistoryBytes = History;
  const GpuLaneCompressor Compressor(Config);

  ByteVector Data;
  switch (Shape) {
  case 0:
    Data = randomData(4096, 3);
    break;
  case 1:
    Data = repetitiveData(4096, 4);
    break;
  case 2:
    Data = ByteVector(4096, 0x77);
    break;
  default:
    Data = repetitiveData(16384, 5);
  }
  expectRefinedRoundTrip(Compressor, Data);
}

namespace {

std::string laneRoundTripName(
    const ::testing::TestParamInfo<LaneRoundTrip::ParamType> &Info) {
  static const char *Shapes[] = {"random", "mixed", "constant", "big"};
  return "lanes" + std::to_string(std::get<0>(Info.param)) + "_hist" +
         std::to_string(std::get<1>(Info.param)) + "_" +
         Shapes[std::get<2>(Info.param)];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Geometry, LaneRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 32u),
                       ::testing::Values(std::size_t{0}, std::size_t{256},
                                         std::size_t{1024}),
                       ::testing::Range(0, 4)),
    laneRoundTripName);

TEST(GpuLaneCompressor, IncompressibleFallsBackToRaw) {
  const GpuLaneCompressor Compressor;
  const ByteVector Data = randomData(4096, 6);
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  EXPECT_TRUE(Refined.StoredRaw);
  const auto View =
      decodeBlock(ByteSpan(Refined.Block.data(), Refined.Block.size()));
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->Method, BlockMethod::Raw);
}

TEST(GpuLaneCompressor, CompressibleBeatsRaw) {
  const GpuLaneCompressor Compressor;
  const ByteVector Data = repetitiveData(4096, 7);
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  EXPECT_FALSE(Refined.StoredRaw);
  EXPECT_LT(Refined.Block.size(), Data.size());
}

TEST(GpuLaneCompressor, HistoryOverlapImprovesRatio) {
  // With overlap, lane k can reference the pattern in lane k-1's
  // region, so more lanes' worth of redundancy is captured (§3.2(2)
  // "Adjacent threads inspect overlapping regions by the size of the
  // history buffer").
  const ByteVector Data = repetitiveData(4096, 8);
  GpuLaneConfig NoOverlap;
  NoOverlap.Lanes = 8;
  NoOverlap.HistoryBytes = 0;
  GpuLaneConfig WithOverlap = NoOverlap;
  WithOverlap.HistoryBytes = 512;
  const LaneOutputs A =
      GpuLaneCompressor(NoOverlap).runLanes(ByteSpan(Data.data(),
                                                     Data.size()));
  const LaneOutputs B = GpuLaneCompressor(WithOverlap)
                            .runLanes(ByteSpan(Data.data(), Data.size()));
  EXPECT_LE(B.totalPayloadBytes(), A.totalPayloadBytes());
}

TEST(GpuLaneCompressor, MoreLanesCostRatioVsSingleScan) {
  // Lane parallelism trades ratio for parallel speed: a single-lane
  // scan can never lose to a many-lane scan with the same matcher
  // (ignoring refinement merges).
  const ByteVector Data = repetitiveData(8192, 9);
  GpuLaneConfig One;
  One.Lanes = 1;
  GpuLaneConfig Many;
  Many.Lanes = 16;
  Many.HistoryBytes = 128;
  const auto Single = GpuLaneCompressor(One).runLanes(
      ByteSpan(Data.data(), Data.size()));
  const auto Wide = GpuLaneCompressor(Many).runLanes(
      ByteSpan(Data.data(), Data.size()));
  EXPECT_LE(Single.totalPayloadBytes(), Wide.totalPayloadBytes());
}

TEST(GpuLaneCompressor, RefineMergesBoundaryLiteralRuns) {
  // All-literal lanes: per-lane streams end in literal runs; the
  // refined stream must not have more control bytes than the naive
  // concatenation.
  const ByteVector Data = randomData(4096, 10);
  GpuLaneConfig Config;
  Config.Lanes = 8;
  const GpuLaneCompressor Compressor(Config);
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  // Raw fallback also proves the merged stream wasn't bigger.
  EXPECT_LE(Refined.Block.size(), Data.size() + BlockHeaderSize);
}

TEST(GpuLaneCompressor, StatsSurviveRefinement) {
  const ByteVector Data = repetitiveData(4096, 11);
  const GpuLaneCompressor Compressor;
  const LaneOutputs Outputs =
      Compressor.runLanes(ByteSpan(Data.data(), Data.size()));
  CompressStats LaneSum;
  for (const CompressResult &Lane : Outputs.LaneResults)
    LaneSum.merge(Lane.Stats);
  const RefinedChunk Refined = GpuLaneCompressor::refine(
      Outputs, ByteSpan(Data.data(), Data.size()));
  EXPECT_EQ(Refined.Stats.LiteralBytes, LaneSum.LiteralBytes);
  EXPECT_EQ(Refined.Stats.MatchBytes, LaneSum.MatchBytes);
  EXPECT_EQ(Refined.Stats.LiteralBytes + Refined.Stats.MatchBytes,
            Data.size());
}
