//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the LBA volume layer: overwrite remapping, TRIM,
/// reference counting across duplicates, revival of dead chunks by
/// dedup hits, garbage collection (including index purging), space
/// accounting, and a randomized model-based property test against a
/// shadow byte array.
///
//===----------------------------------------------------------------------===//

#include "core/BackgroundReducer.h"
#include "core/Volume.h"
#include "util/Random.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <memory>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;

struct VolumeFixture : ::testing::Test {
  std::unique_ptr<ReductionPipeline> Pipeline;
  std::unique_ptr<Volume> Vol;

  void SetUp() override { rebuild(PipelineMode::CpuOnly); }

  void rebuild(PipelineMode Mode, std::uint64_t Blocks = 1024) {
    PipelineConfig Config;
    Config.Mode = Mode;
    Config.Dedup.Index.BinBits = 8;
    Config.Dedup.Index.BufferCapacityPerBin = 4;
    Pipeline = std::make_unique<ReductionPipeline>(Platform::paper(),
                                                   Config);
    VolumeConfig VolConfig;
    VolConfig.BlockCount = Blocks;
    Vol = std::make_unique<Volume>(*Pipeline, VolConfig);
  }

  /// A deterministic compressible block whose content is `Tag`.
  static ByteVector blockOf(std::uint64_t Tag) {
    ByteVector Data(BlockSize);
    Random Rng(Tag * 7919 + 1);
    // Half filler, half random — compressible and tag-unique.
    std::uint8_t Filler[64];
    Rng.fillBytes(Filler, sizeof(Filler));
    for (std::size_t I = 0; I < Data.size(); I += 64) {
      if ((I / 64) % 2 == 0)
        std::copy(Filler, Filler + 64, Data.data() + I);
      else
        Rng.fillBytes(Data.data() + I, 64);
    }
    return Data;
  }
};

} // namespace

TEST_F(VolumeFixture, ReadYourWrites) {
  const ByteVector Data = blockOf(1);
  ASSERT_TRUE(Vol->writeBlocks(10, ByteSpan(Data.data(), Data.size())));
  const auto Read = Vol->readBlocks(10, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
}

TEST_F(VolumeFixture, UnmappedBlocksReadAsZeros) {
  const auto Read = Vol->readBlocks(5, 2);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(Read->size(), 2 * BlockSize);
  for (std::uint8_t Byte : *Read)
    EXPECT_EQ(Byte, 0);
}

TEST_F(VolumeFixture, OutOfRangeRejected) {
  const ByteVector Data = blockOf(2);
  EXPECT_FALSE(Vol->writeBlocks(Vol->blockCount(),
                                ByteSpan(Data.data(), Data.size())));
  EXPECT_FALSE(Vol->readBlocks(Vol->blockCount() - 1, 2).has_value());
  EXPECT_FALSE(Vol->trim(Vol->blockCount(), 1));
}

TEST_F(VolumeFixture, OverwriteRemapsAndReadsNewData) {
  const ByteVector First = blockOf(3);
  const ByteVector Second = blockOf(4);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(First.data(), First.size())));
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Second.data(), Second.size())));
  const auto Read = Vol->readBlocks(0, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Second);
  // The first chunk is now dead, awaiting GC.
  EXPECT_EQ(Vol->stats().DeadChunks, 1u);
}

TEST_F(VolumeFixture, DuplicateBlocksShareOneChunk) {
  const ByteVector Data = blockOf(5);
  for (std::uint64_t Lba = 0; Lba < 8; ++Lba)
    ASSERT_TRUE(Vol->writeBlocks(Lba, ByteSpan(Data.data(), Data.size())));
  const VolumeStats Stats = Vol->stats();
  EXPECT_EQ(Stats.MappedBlocks, 8u);
  EXPECT_EQ(Stats.LiveChunks, 1u);
  EXPECT_LT(Stats.spaceAmplification(), 0.2); // 1 compressed chunk / 8
}

TEST_F(VolumeFixture, TrimDereferencesAndGcFrees) {
  const ByteVector Data = blockOf(6);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  const std::uint64_t StoredBefore = Pipeline->store().storedBytes();
  ASSERT_GT(StoredBefore, 0u);

  ASSERT_TRUE(Vol->trim(0, 1));
  EXPECT_EQ(Vol->stats().DeadChunks, 1u);
  // Still resident until GC.
  EXPECT_EQ(Pipeline->store().storedBytes(), StoredBefore);

  EXPECT_EQ(Vol->collectGarbage(), 1u);
  EXPECT_EQ(Pipeline->store().storedBytes(), 0u);
  EXPECT_EQ(Vol->stats().DeadChunks, 0u);
  // Trimmed block reads as zeros.
  const auto Read = Vol->readBlocks(0, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ((*Read)[0], 0);
}

TEST_F(VolumeFixture, SharedChunkSurvivesPartialTrim) {
  const ByteVector Data = blockOf(7);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->writeBlocks(1, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->trim(0, 1));
  EXPECT_EQ(Vol->collectGarbage(), 0u); // still referenced by LBA 1
  const auto Read = Vol->readBlocks(1, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
}

TEST_F(VolumeFixture, DeadChunkRevivedByDedupHit) {
  const ByteVector Data = blockOf(8);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->trim(0, 1));
  EXPECT_EQ(Vol->stats().DeadChunks, 1u);

  // Rewriting the same content before GC dedups against the dead
  // chunk and revives it — no new chunk is stored.
  const std::size_t ChunksBefore = Pipeline->store().chunkCount();
  ASSERT_TRUE(Vol->writeBlocks(3, ByteSpan(Data.data(), Data.size())));
  EXPECT_EQ(Pipeline->store().chunkCount(), ChunksBefore);
  EXPECT_EQ(Vol->stats().DeadChunks, 0u);
  EXPECT_EQ(Vol->stats().RevivedChunks, 1u);
  EXPECT_EQ(Vol->collectGarbage(), 0u);
  const auto Read = Vol->readBlocks(3, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
}

TEST_F(VolumeFixture, GcPurgesIndexSoContentIsWrittenFresh) {
  const ByteVector Data = blockOf(9);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->trim(0, 1));
  ASSERT_EQ(Vol->collectGarbage(), 1u);

  // After GC the index no longer knows the content: rewriting it must
  // store a fresh chunk (and read back correctly).
  ASSERT_TRUE(Vol->writeBlocks(5, ByteSpan(Data.data(), Data.size())));
  EXPECT_EQ(Pipeline->store().chunkCount(), 1u);
  EXPECT_EQ(Vol->stats().RevivedChunks, 0u);
  const auto Read = Vol->readBlocks(5, 1);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
}

TEST_F(VolumeFixture, MultiBlockWriteSpansMapping) {
  ByteVector Data;
  for (std::uint64_t Tag = 10; Tag < 14; ++Tag)
    appendBytes(Data, ByteSpan(blockOf(Tag).data(), BlockSize));
  ASSERT_TRUE(Vol->writeBlocks(100, ByteSpan(Data.data(), Data.size())));
  const auto Read = Vol->readBlocks(100, 4);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
  EXPECT_EQ(Vol->stats().MappedBlocks, 4u);
}

TEST_F(VolumeFixture, RefCountsTrackSharing) {
  const ByteVector Data = blockOf(15);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->writeBlocks(1, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->writeBlocks(2, ByteSpan(Data.data(), Data.size())));
  // All three LBAs map to one location with refcount 3.
  const VolumeStats Stats = Vol->stats();
  EXPECT_EQ(Stats.LiveChunks, 1u);
  ASSERT_TRUE(Vol->trim(1, 1));
  EXPECT_EQ(Vol->stats().LiveChunks, 1u);
  EXPECT_EQ(Vol->collectGarbage(), 0u);
}

TEST_F(VolumeFixture, StatsSpaceAmplificationBelowOne) {
  WorkloadConfig Load;
  Load.TotalBytes = 64 * BlockSize;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  const VolumeStats Stats = Vol->stats();
  EXPECT_EQ(Stats.MappedBlocks, 64u);
  EXPECT_LT(Stats.spaceAmplification(), 0.5);
}

//===----------------------------------------------------------------------===//
// Background (offline) reduction — the §1 strawman implemented for real
//===----------------------------------------------------------------------===//

TEST_F(VolumeFixture, RawWritesBypassReduction) {
  const ByteVector Data = blockOf(60);
  ASSERT_TRUE(Vol->writeBlocksRaw(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol->writeBlocksRaw(1, ByteSpan(Data.data(), Data.size())));
  // No dedup (two identical blocks stored twice), no compression
  // (stored bytes exceed the logical size thanks to headers).
  EXPECT_EQ(Pipeline->store().chunkCount(), 2u);
  EXPECT_GE(Pipeline->store().storedBytes(), 2 * Data.size());
  // Read-back still works.
  EXPECT_EQ(*Vol->readBlocks(0, 1), Data);
}

TEST_F(VolumeFixture, BackgroundReduceShrinksAndPreservesData) {
  // Populate raw with duplicate-rich content, then sweep.
  ByteVector Image;
  for (std::uint64_t I = 0; I < 32; ++I)
    appendBytes(Image, ByteSpan(blockOf(70 + I % 8).data(), BlockSize));
  ASSERT_TRUE(Vol->writeBlocksRaw(0, ByteSpan(Image.data(), Image.size())));
  const std::uint64_t RawBytes = Vol->stats().PhysicalBytes;

  const BackgroundReduceStats Stats = backgroundReduce(*Vol);
  EXPECT_EQ(Stats.BlocksProcessed, 32u);
  EXPECT_EQ(Stats.ReadFailures, 0u);
  EXPECT_LT(Stats.BytesAfter, RawBytes / 3); // 4x dedup x ~2x compression
  EXPECT_GT(Stats.ChunksCollected, 0u);

  // Data identical after the sweep.
  const auto Read = Vol->readBlocks(0, 32);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Image);
  EXPECT_EQ(Vol->scrub().CorruptChunks, 0u);
}

TEST_F(VolumeFixture, BackgroundReduceWearsNandMoreThanInline) {
  ByteVector Image;
  for (std::uint64_t I = 0; I < 32; ++I)
    appendBytes(Image, ByteSpan(blockOf(80 + I % 8).data(), BlockSize));

  // Background scheme on this volume.
  ASSERT_TRUE(Vol->writeBlocksRaw(0, ByteSpan(Image.data(), Image.size())));
  backgroundReduce(*Vol);
  const std::uint64_t BackgroundNand =
      Pipeline->ssd().nandBytesWritten();
  const std::uint64_t BackgroundHost =
      Pipeline->ssd().hostBytesWritten();

  // Inline scheme on a fresh volume.
  rebuild(PipelineMode::CpuOnly);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Image.data(), Image.size())));
  Vol->flush();
  const std::uint64_t InlineNand = Pipeline->ssd().nandBytesWritten();

  // Host bytes were counted once in both schemes (the sweep's
  // rewrites are internal I/O)…
  EXPECT_EQ(BackgroundHost, Image.size());
  // …but the background scheme physically wrote the raw copy first:
  // strictly more NAND wear than inline, and more than no reduction.
  EXPECT_GT(BackgroundNand, InlineNand * 2);
  EXPECT_GT(BackgroundNand, Image.size());
}

TEST_F(VolumeFixture, BackgroundReduceSkipsCorruptBlocks) {
  const ByteVector Data = blockOf(90);
  ASSERT_TRUE(Vol->writeBlocksRaw(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Vol->mapping()[0], 25));
  const BackgroundReduceStats Stats = backgroundReduce(*Vol);
  EXPECT_EQ(Stats.ReadFailures, 1u);
  EXPECT_EQ(Stats.BlocksProcessed, 0u);
  // The corrupt block stays mapped to its original (still detectable).
  EXPECT_EQ(Vol->scrub().CorruptChunks, 1u);
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

TEST_F(VolumeFixture, SnapshotPreservesPointInTimeData) {
  const ByteVector Before = blockOf(20);
  const ByteVector After = blockOf(21);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Before.data(), Before.size())));
  const Volume::SnapshotId Snap = Vol->createSnapshot();
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(After.data(), After.size())));

  const auto Live = Vol->readBlocks(0, 1);
  const auto Old = Vol->readSnapshotBlocks(Snap, 0, 1);
  ASSERT_TRUE(Live.has_value());
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(*Live, After);
  EXPECT_EQ(*Old, Before);
}

TEST_F(VolumeFixture, SnapshotProtectsChunksFromGc) {
  const ByteVector Data = blockOf(22);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  const Volume::SnapshotId Snap = Vol->createSnapshot();

  // Trim the live mapping: the snapshot still references the chunk.
  ASSERT_TRUE(Vol->trim(0, 1));
  EXPECT_EQ(Vol->collectGarbage(), 0u);
  const auto Old = Vol->readSnapshotBlocks(Snap, 0, 1);
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(*Old, Data);

  // Deleting the snapshot releases the last reference.
  ASSERT_TRUE(Vol->deleteSnapshot(Snap));
  EXPECT_EQ(Vol->collectGarbage(), 1u);
  EXPECT_EQ(Pipeline->store().chunkCount(), 0u);
}

TEST_F(VolumeFixture, SnapshotSpaceGrowsWithDivergenceOnly) {
  // Fill 32 blocks, snapshot, overwrite 4: physical space holds the
  // shared chunks once plus only the 4 diverged ones.
  for (std::uint64_t I = 0; I < 32; ++I) {
    const ByteVector Data = blockOf(100 + I);
    ASSERT_TRUE(Vol->writeBlocks(I, ByteSpan(Data.data(), Data.size())));
  }
  const std::size_t ChunksBefore = Pipeline->store().chunkCount();
  const Volume::SnapshotId Snap = Vol->createSnapshot();
  EXPECT_EQ(Pipeline->store().chunkCount(), ChunksBefore); // free

  for (std::uint64_t I = 0; I < 4; ++I) {
    const ByteVector Data = blockOf(200 + I);
    ASSERT_TRUE(Vol->writeBlocks(I, ByteSpan(Data.data(), Data.size())));
  }
  Vol->collectGarbage();
  EXPECT_EQ(Pipeline->store().chunkCount(), ChunksBefore + 4);
  ASSERT_TRUE(Vol->deleteSnapshot(Snap));
  Vol->collectGarbage();
  EXPECT_EQ(Pipeline->store().chunkCount(), ChunksBefore); // diverged-from 4 freed
}

TEST_F(VolumeFixture, MultipleSnapshotsAreIndependent) {
  const ByteVector A = blockOf(30), B = blockOf(31), C = blockOf(32);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(A.data(), A.size())));
  const auto SnapA = Vol->createSnapshot();
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(B.data(), B.size())));
  const auto SnapB = Vol->createSnapshot();
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(C.data(), C.size())));

  EXPECT_EQ(Vol->snapshotIds().size(), 2u);
  EXPECT_EQ(*Vol->readSnapshotBlocks(SnapA, 0, 1), A);
  EXPECT_EQ(*Vol->readSnapshotBlocks(SnapB, 0, 1), B);
  EXPECT_EQ(*Vol->readBlocks(0, 1), C);
  EXPECT_TRUE(Vol->deleteSnapshot(SnapA));
  EXPECT_FALSE(Vol->deleteSnapshot(SnapA)); // already gone
  EXPECT_EQ(*Vol->readSnapshotBlocks(SnapB, 0, 1), B);
  EXPECT_FALSE(Vol->readSnapshotBlocks(SnapA, 0, 1).has_value());
}

//===----------------------------------------------------------------------===//
// Scrubbing
//===----------------------------------------------------------------------===//

TEST_F(VolumeFixture, ScrubCleanVolumeFindsNothing) {
  for (std::uint64_t I = 0; I < 16; ++I) {
    const ByteVector Data = blockOf(300 + I % 5);
    ASSERT_TRUE(Vol->writeBlocks(I, ByteSpan(Data.data(), Data.size())));
  }
  const Volume::ScrubReport Report = Vol->scrub();
  EXPECT_GT(Report.ChunksScanned, 0u);
  EXPECT_EQ(Report.CorruptChunks, 0u);
  EXPECT_TRUE(Report.BadLocations.empty());
}

TEST_F(VolumeFixture, ScrubDetectsPayloadCorruption) {
  const ByteVector Data = blockOf(40);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  const std::uint64_t Location = Vol->mapping()[0];
  // Flip a payload byte: the block CRC rejects the chunk.
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Location, 20));
  const Volume::ScrubReport Report = Vol->scrub();
  EXPECT_EQ(Report.CorruptChunks, 1u);
  ASSERT_EQ(Report.BadLocations.size(), 1u);
  EXPECT_EQ(Report.BadLocations[0], Location);
  // The read path fails loudly too.
  EXPECT_FALSE(Vol->readBlocks(0, 1).has_value());
}

TEST_F(VolumeFixture, ScrubDetectsMisdirectedBlock) {
  // A block that decodes fine but holds the wrong content (as after a
  // misdirected write): only the fingerprint check catches it.
  const ByteVector Right = blockOf(41);
  const ByteVector Wrong = blockOf(42);
  ASSERT_TRUE(Vol->writeBlocks(0, ByteSpan(Right.data(), Right.size())));
  const std::uint64_t Location = Vol->mapping()[0];
  Pipeline->eraseChunk(Location);
  // Re-insert a *valid* block with the wrong content under the old
  // location; keep the volume's fingerprint record for `Right`.
  const ByteVector WrongBlock =
      encodeBlock(BlockMethod::Raw,
                  static_cast<std::uint32_t>(Wrong.size()),
                  ByteSpan(Wrong.data(), Wrong.size()));
  ASSERT_TRUE(Pipeline->restoreChunk(
      Location, WrongBlock, Fingerprint::ofData(ByteSpan(Wrong.data(),
                                                         Wrong.size()))));
  const Volume::ScrubReport Report = Vol->scrub();
  EXPECT_EQ(Report.CorruptChunks, 1u);
}

//===----------------------------------------------------------------------===//
// Model-based randomized property test: the volume must agree with a
// plain shadow byte array under an arbitrary interleaving of writes,
// overwrites, trims, reads and GC — in every pipeline mode.
//===----------------------------------------------------------------------===//

namespace {

class VolumeModelTest
    : public VolumeFixture,
      public ::testing::WithParamInterface<std::tuple<PipelineMode, int>> {
};

} // namespace

TEST_P(VolumeModelTest, AgreesWithShadowArray) {
  const auto Mode = std::get<0>(GetParam());
  const std::uint64_t Seed = static_cast<std::uint64_t>(
      std::get<1>(GetParam()));
  constexpr std::uint64_t Blocks = 96;
  rebuild(Mode, Blocks);

  ByteVector Shadow(Blocks * BlockSize, 0);
  Random Rng(Seed * 104729 + 11);

  for (int Op = 0; Op < 220; ++Op) {
    const std::uint64_t Lba = Rng.nextBelow(Blocks);
    const std::uint64_t Count =
        1 + Rng.nextBelow(std::min<std::uint64_t>(4, Blocks - Lba));
    switch (Rng.nextBelow(5)) {
    case 0:
    case 1: { // write (tags drawn from a small pool => duplicates)
      ByteVector Data;
      for (std::uint64_t I = 0; I < Count; ++I)
        appendBytes(Data,
                    ByteSpan(blockOf(Rng.nextBelow(24)).data(), BlockSize));
      ASSERT_TRUE(Vol->writeBlocks(Lba, ByteSpan(Data.data(), Data.size())));
      std::copy(Data.begin(), Data.end(),
                Shadow.begin() + Lba * BlockSize);
      break;
    }
    case 2: { // trim
      ASSERT_TRUE(Vol->trim(Lba, Count));
      std::fill(Shadow.begin() + Lba * BlockSize,
                Shadow.begin() + (Lba + Count) * BlockSize, 0);
      break;
    }
    case 3: { // read and compare
      const auto Read = Vol->readBlocks(Lba, Count);
      ASSERT_TRUE(Read.has_value());
      EXPECT_TRUE(std::equal(Read->begin(), Read->end(),
                             Shadow.begin() + Lba * BlockSize))
          << "op " << Op << " lba " << Lba;
      break;
    }
    default: // garbage collection at a random moment
      Vol->collectGarbage();
      break;
    }
  }

  // Final full-volume comparison.
  const auto All = Vol->readBlocks(0, Blocks);
  ASSERT_TRUE(All.has_value());
  EXPECT_EQ(*All, Shadow);

  // And the books balance: every mapped LBA's chunk is live.
  const VolumeStats Stats = Vol->stats();
  EXPECT_LE(Stats.LiveChunks, Stats.MappedBlocks);
  Vol->collectGarbage();
  EXPECT_EQ(Vol->stats().DeadChunks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, VolumeModelTest,
    ::testing::Combine(::testing::Values(PipelineMode::CpuOnly,
                                         PipelineMode::GpuCompress,
                                         PipelineMode::GpuBoth),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<VolumeModelTest::ParamType> &Info) {
      std::string Name = pipelineModeName(std::get<0>(Info.param));
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_seed" + std::to_string(std::get<1>(Info.param));
    });
