//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the vdbench-style workload generator: determinism,
/// duplicate structure, and that the dedup/compression-ratio knobs
/// actually deliver the requested ratios (the compression knob is
/// verified against the real LZ codec).
///
//===----------------------------------------------------------------------===//

#include "compress/LzCodec.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>

using namespace padre;

namespace {

WorkloadConfig smallConfig(double Dedup, double Compress) {
  WorkloadConfig Config;
  Config.TotalBytes = 4 << 20;
  Config.DedupRatio = Dedup;
  Config.CompressRatio = Compress;
  Config.Seed = 17;
  return Config;
}

} // namespace

TEST(VdbenchStream, DeterministicAcrossInstances) {
  const VdbenchStream A(smallConfig(2.0, 2.0));
  const VdbenchStream B(smallConfig(2.0, 2.0));
  ASSERT_EQ(A.blockCount(), B.blockCount());
  ByteVector BlockA(4096), BlockB(4096);
  for (std::uint64_t I = 0; I < A.blockCount(); I += 37) {
    A.fillBlock(I, MutableByteSpan(BlockA.data(), BlockA.size()));
    B.fillBlock(I, MutableByteSpan(BlockB.data(), BlockB.size()));
    EXPECT_EQ(BlockA, BlockB) << "block " << I;
  }
}

TEST(VdbenchStream, DifferentSeedsProduceDifferentData) {
  WorkloadConfig ConfigA = smallConfig(1.0, 1.0);
  WorkloadConfig ConfigB = ConfigA;
  ConfigB.Seed = 18;
  const VdbenchStream A(ConfigA), B(ConfigB);
  ByteVector BlockA(4096), BlockB(4096);
  A.fillBlock(0, MutableByteSpan(BlockA.data(), BlockA.size()));
  B.fillBlock(0, MutableByteSpan(BlockB.data(), BlockB.size()));
  EXPECT_NE(BlockA, BlockB);
}

TEST(VdbenchStream, DuplicatesAreByteIdenticalReplays) {
  const VdbenchStream Stream(smallConfig(3.0, 2.0));
  // Map content -> first block; every duplicate must match some
  // earlier block exactly.
  std::map<std::string, std::uint64_t> Seen;
  ByteVector Block(4096);
  for (std::uint64_t I = 0; I < Stream.blockCount(); ++I) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    const std::string Key(reinterpret_cast<const char *>(Block.data()),
                          Block.size());
    const bool SeenBefore = Seen.count(Key) != 0;
    EXPECT_EQ(SeenBefore, Stream.isDuplicate(I)) << "block " << I;
    Seen.emplace(Key, I);
  }
}

TEST(VdbenchStream, FirstBlockIsNeverDuplicate) {
  const VdbenchStream Stream(smallConfig(4.0, 1.0));
  EXPECT_FALSE(Stream.isDuplicate(0));
}

TEST(VdbenchStream, TotalBytesAndBlockCount) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.TotalBytes = 1 << 20;
  Config.BlockSize = 8192;
  const VdbenchStream Stream(Config);
  EXPECT_EQ(Stream.blockCount(), (1u << 20) / 8192);
  EXPECT_EQ(Stream.totalBytes(), 1u << 20);
}

namespace {

class RatioSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

} // namespace

TEST_P(RatioSweep, AchievedDedupRatioNearTarget) {
  const auto &[Dedup, Compress] = GetParam();
  const VdbenchStream Stream(smallConfig(Dedup, Compress));
  EXPECT_NEAR(Stream.achievedDedupRatio(), Dedup, Dedup * 0.15);
}

TEST_P(RatioSweep, AchievedCompressRatioNearTarget) {
  const auto &[Dedup, Compress] = GetParam();
  const VdbenchStream Stream(smallConfig(Dedup, Compress));
  // Compress a sample of unique blocks with the reference codec.
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  ByteVector Block(4096);
  std::uint64_t Original = 0, Compressed = 0;
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 7) {
    if (Stream.isDuplicate(I))
      continue;
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    const CompressResult Result =
        Codec.compress(ByteSpan(Block.data(), Block.size()));
    Original += Block.size();
    // Store-raw fallback: never above original size.
    Compressed += std::min(Result.Payload.size(), Block.size());
  }
  ASSERT_GT(Original, 0u);
  const double Achieved =
      static_cast<double>(Original) / static_cast<double>(Compressed);
  EXPECT_NEAR(Achieved, Compress, Compress * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, RatioSweep,
    ::testing::Values(std::make_tuple(1.0, 1.0), std::make_tuple(2.0, 2.0),
                      std::make_tuple(2.0, 4.0), std::make_tuple(4.0, 2.0),
                      std::make_tuple(3.0, 1.5)),
    [](const ::testing::TestParamInfo<RatioSweep::ParamType> &Info) {
      return "d" +
             std::to_string(static_cast<int>(std::get<0>(Info.param) * 10)) +
             "_c" +
             std::to_string(static_cast<int>(std::get<1>(Info.param) * 10));
    });

TEST(VdbenchStream, RatioOneMeansNoDuplicates) {
  const VdbenchStream Stream(smallConfig(1.0, 2.0));
  EXPECT_EQ(Stream.uniqueBlockCount(), Stream.blockCount());
  for (std::uint64_t I = 0; I < Stream.blockCount(); ++I)
    EXPECT_FALSE(Stream.isDuplicate(I));
}

TEST(VdbenchStream, RandomCellFractionMonotoneInRatio) {
  const VdbenchStream Low(smallConfig(1.0, 1.0));
  const VdbenchStream Mid(smallConfig(1.0, 2.0));
  const VdbenchStream High(smallConfig(1.0, 4.0));
  EXPECT_GT(Low.randomCellFraction(), Mid.randomCellFraction());
  EXPECT_GT(Mid.randomCellFraction(), High.randomCellFraction());
  EXPECT_DOUBLE_EQ(Low.randomCellFraction(), 1.0);
}

TEST(VdbenchStream, DedupWindowBoundsDuplicateDistance) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.DedupWindowBlocks = 8;
  const VdbenchStream Stream(Config);
  // With a tight window, any duplicate's source must be nearby: verify
  // by replaying content of the previous 64 blocks.
  ByteVector Block(4096), Candidate(4096);
  for (std::uint64_t I = 1; I < std::min<std::uint64_t>(
                                    Stream.blockCount(), 300);
       ++I) {
    if (!Stream.isDuplicate(I))
      continue;
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    bool FoundNearby = false;
    const std::uint64_t From = I > 64 ? I - 64 : 0;
    for (std::uint64_t J = From; J < I && !FoundNearby; ++J) {
      Stream.fillBlock(J, MutableByteSpan(Candidate.data(),
                                          Candidate.size()));
      FoundNearby = Block == Candidate;
    }
    EXPECT_TRUE(FoundNearby) << "duplicate " << I << " has no recent source";
  }
}

TEST(VdbenchStream, ContentAlphabetBoundsByteValues) {
  WorkloadConfig Config = smallConfig(1.0, 1.0);
  Config.ContentAlphabet = 16;
  Config.TotalBytes = 1 << 20;
  const VdbenchStream Stream(Config);
  ByteVector Block(4096);
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 13) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    for (std::uint8_t Byte : Block)
      EXPECT_LT(Byte, 16);
  }
}

TEST(VdbenchStream, SmallAlphabetKeepsLzRatioNearTarget) {
  // The alphabet shrinks byte entropy but must not hand LZ long
  // matches: the achieved LZ ratio stays near the knob.
  WorkloadConfig Config = smallConfig(1.0, 2.0);
  Config.ContentAlphabet = 16;
  const VdbenchStream Stream(Config);
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  ByteVector Block(4096);
  std::uint64_t Original = 0, Compressed = 0;
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 17) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    Original += Block.size();
    Compressed += std::min(
        Codec.compress(ByteSpan(Block.data(), Block.size()))
            .Payload.size(),
        Block.size());
  }
  const double Achieved =
      static_cast<double>(Original) / static_cast<double>(Compressed);
  EXPECT_NEAR(Achieved, 2.0, 0.7);
}

TEST(VdbenchStream, GenerateAllMatchesFillBlock) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.TotalBytes = 1 << 20;
  const VdbenchStream Stream(Config);
  const ByteVector All = Stream.generateAll();
  ASSERT_EQ(All.size(), Stream.totalBytes());
  ByteVector Block(Config.BlockSize);
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 11) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    EXPECT_EQ(0, std::memcmp(Block.data(),
                             All.data() + I * Config.BlockSize,
                             Config.BlockSize));
  }
}
