//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the vdbench-style workload generator: determinism,
/// duplicate structure, and that the dedup/compression-ratio knobs
/// actually deliver the requested ratios (the compression knob is
/// verified against the real LZ codec).
///
//===----------------------------------------------------------------------===//

#include "compress/LzCodec.h"
#include "workload/Scenario.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

using namespace padre;

namespace {

WorkloadConfig smallConfig(double Dedup, double Compress) {
  WorkloadConfig Config;
  Config.TotalBytes = 4 << 20;
  Config.DedupRatio = Dedup;
  Config.CompressRatio = Compress;
  Config.Seed = 17;
  return Config;
}

} // namespace

TEST(VdbenchStream, DeterministicAcrossInstances) {
  const VdbenchStream A(smallConfig(2.0, 2.0));
  const VdbenchStream B(smallConfig(2.0, 2.0));
  ASSERT_EQ(A.blockCount(), B.blockCount());
  ByteVector BlockA(4096), BlockB(4096);
  for (std::uint64_t I = 0; I < A.blockCount(); I += 37) {
    A.fillBlock(I, MutableByteSpan(BlockA.data(), BlockA.size()));
    B.fillBlock(I, MutableByteSpan(BlockB.data(), BlockB.size()));
    EXPECT_EQ(BlockA, BlockB) << "block " << I;
  }
}

TEST(VdbenchStream, DifferentSeedsProduceDifferentData) {
  WorkloadConfig ConfigA = smallConfig(1.0, 1.0);
  WorkloadConfig ConfigB = ConfigA;
  ConfigB.Seed = 18;
  const VdbenchStream A(ConfigA), B(ConfigB);
  ByteVector BlockA(4096), BlockB(4096);
  A.fillBlock(0, MutableByteSpan(BlockA.data(), BlockA.size()));
  B.fillBlock(0, MutableByteSpan(BlockB.data(), BlockB.size()));
  EXPECT_NE(BlockA, BlockB);
}

TEST(VdbenchStream, DuplicatesAreByteIdenticalReplays) {
  const VdbenchStream Stream(smallConfig(3.0, 2.0));
  // Map content -> first block; every duplicate must match some
  // earlier block exactly.
  std::map<std::string, std::uint64_t> Seen;
  ByteVector Block(4096);
  for (std::uint64_t I = 0; I < Stream.blockCount(); ++I) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    const std::string Key(reinterpret_cast<const char *>(Block.data()),
                          Block.size());
    const bool SeenBefore = Seen.count(Key) != 0;
    EXPECT_EQ(SeenBefore, Stream.isDuplicate(I)) << "block " << I;
    Seen.emplace(Key, I);
  }
}

TEST(VdbenchStream, FirstBlockIsNeverDuplicate) {
  const VdbenchStream Stream(smallConfig(4.0, 1.0));
  EXPECT_FALSE(Stream.isDuplicate(0));
}

TEST(VdbenchStream, TotalBytesAndBlockCount) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.TotalBytes = 1 << 20;
  Config.BlockSize = 8192;
  const VdbenchStream Stream(Config);
  EXPECT_EQ(Stream.blockCount(), (1u << 20) / 8192);
  EXPECT_EQ(Stream.totalBytes(), 1u << 20);
}

namespace {

class RatioSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

} // namespace

TEST_P(RatioSweep, AchievedDedupRatioNearTarget) {
  const auto &[Dedup, Compress] = GetParam();
  const VdbenchStream Stream(smallConfig(Dedup, Compress));
  EXPECT_NEAR(Stream.achievedDedupRatio(), Dedup, Dedup * 0.15);
}

TEST_P(RatioSweep, AchievedCompressRatioNearTarget) {
  const auto &[Dedup, Compress] = GetParam();
  const VdbenchStream Stream(smallConfig(Dedup, Compress));
  // Compress a sample of unique blocks with the reference codec.
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  ByteVector Block(4096);
  std::uint64_t Original = 0, Compressed = 0;
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 7) {
    if (Stream.isDuplicate(I))
      continue;
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    const CompressResult Result =
        Codec.compress(ByteSpan(Block.data(), Block.size()));
    Original += Block.size();
    // Store-raw fallback: never above original size.
    Compressed += std::min(Result.Payload.size(), Block.size());
  }
  ASSERT_GT(Original, 0u);
  const double Achieved =
      static_cast<double>(Original) / static_cast<double>(Compressed);
  EXPECT_NEAR(Achieved, Compress, Compress * 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, RatioSweep,
    ::testing::Values(std::make_tuple(1.0, 1.0), std::make_tuple(2.0, 2.0),
                      std::make_tuple(2.0, 4.0), std::make_tuple(4.0, 2.0),
                      std::make_tuple(3.0, 1.5)),
    [](const ::testing::TestParamInfo<RatioSweep::ParamType> &Info) {
      return "d" +
             std::to_string(static_cast<int>(std::get<0>(Info.param) * 10)) +
             "_c" +
             std::to_string(static_cast<int>(std::get<1>(Info.param) * 10));
    });

TEST(VdbenchStream, RatioOneMeansNoDuplicates) {
  const VdbenchStream Stream(smallConfig(1.0, 2.0));
  EXPECT_EQ(Stream.uniqueBlockCount(), Stream.blockCount());
  for (std::uint64_t I = 0; I < Stream.blockCount(); ++I)
    EXPECT_FALSE(Stream.isDuplicate(I));
}

TEST(VdbenchStream, RandomCellFractionMonotoneInRatio) {
  const VdbenchStream Low(smallConfig(1.0, 1.0));
  const VdbenchStream Mid(smallConfig(1.0, 2.0));
  const VdbenchStream High(smallConfig(1.0, 4.0));
  EXPECT_GT(Low.randomCellFraction(), Mid.randomCellFraction());
  EXPECT_GT(Mid.randomCellFraction(), High.randomCellFraction());
  EXPECT_DOUBLE_EQ(Low.randomCellFraction(), 1.0);
}

TEST(VdbenchStream, DedupWindowBoundsDuplicateDistance) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.DedupWindowBlocks = 8;
  const VdbenchStream Stream(Config);
  // With a tight window, any duplicate's source must be nearby: verify
  // by replaying content of the previous 64 blocks.
  ByteVector Block(4096), Candidate(4096);
  for (std::uint64_t I = 1; I < std::min<std::uint64_t>(
                                    Stream.blockCount(), 300);
       ++I) {
    if (!Stream.isDuplicate(I))
      continue;
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    bool FoundNearby = false;
    const std::uint64_t From = I > 64 ? I - 64 : 0;
    for (std::uint64_t J = From; J < I && !FoundNearby; ++J) {
      Stream.fillBlock(J, MutableByteSpan(Candidate.data(),
                                          Candidate.size()));
      FoundNearby = Block == Candidate;
    }
    EXPECT_TRUE(FoundNearby) << "duplicate " << I << " has no recent source";
  }
}

TEST(VdbenchStream, ContentAlphabetBoundsByteValues) {
  WorkloadConfig Config = smallConfig(1.0, 1.0);
  Config.ContentAlphabet = 16;
  Config.TotalBytes = 1 << 20;
  const VdbenchStream Stream(Config);
  ByteVector Block(4096);
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 13) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    for (std::uint8_t Byte : Block)
      EXPECT_LT(Byte, 16);
  }
}

TEST(VdbenchStream, SmallAlphabetKeepsLzRatioNearTarget) {
  // The alphabet shrinks byte entropy but must not hand LZ long
  // matches: the achieved LZ ratio stays near the knob.
  WorkloadConfig Config = smallConfig(1.0, 2.0);
  Config.ContentAlphabet = 16;
  const VdbenchStream Stream(Config);
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  ByteVector Block(4096);
  std::uint64_t Original = 0, Compressed = 0;
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 17) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    Original += Block.size();
    Compressed += std::min(
        Codec.compress(ByteSpan(Block.data(), Block.size()))
            .Payload.size(),
        Block.size());
  }
  const double Achieved =
      static_cast<double>(Original) / static_cast<double>(Compressed);
  EXPECT_NEAR(Achieved, 2.0, 0.7);
}

TEST(VdbenchStream, GenerateAllMatchesFillBlock) {
  WorkloadConfig Config = smallConfig(2.0, 2.0);
  Config.TotalBytes = 1 << 20;
  const VdbenchStream Stream(Config);
  const ByteVector All = Stream.generateAll();
  ASSERT_EQ(All.size(), Stream.totalBytes());
  ByteVector Block(Config.BlockSize);
  for (std::uint64_t I = 0; I < Stream.blockCount(); I += 11) {
    Stream.fillBlock(I, MutableByteSpan(Block.data(), Block.size()));
    EXPECT_EQ(0, std::memcmp(Block.data(),
                             All.data() + I * Config.BlockSize,
                             Config.BlockSize));
  }
}

//===----------------------------------------------------------------------===//
// Shaped scenario generators (workload/Scenario.h)
//===----------------------------------------------------------------------===//

namespace {

ScenarioConfig scenarioOf(ScenarioShape Shape) {
  ScenarioConfig Config;
  Config.Shape = Shape;
  Config.Operations = 2000;
  Config.VolumeBlocks = 2048;
  Config.Seed = 11;
  return Config;
}

/// Inter-arrival times of \p Log (first arrival counts from 0).
std::vector<double> interArrivals(const TraceLog &Log) {
  std::vector<double> Out;
  std::uint64_t Prev = 0;
  for (const TraceRecord &R : Log.Records) {
    Out.push_back(static_cast<double>(R.ArrivalUs - Prev));
    Prev = R.ArrivalUs;
  }
  return Out;
}

double meanOf(const std::vector<double> &Values) {
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Values.empty() ? 0.0 : Sum / static_cast<double>(Values.size());
}

} // namespace

TEST(Scenario, ShapeNamesRoundTrip) {
  for (unsigned S = 0; S < ScenarioShapeCount; ++S) {
    const ScenarioShape Shape = static_cast<ScenarioShape>(S);
    ScenarioShape Parsed;
    ASSERT_TRUE(parseScenarioShape(scenarioShapeName(Shape), Parsed));
    EXPECT_EQ(Parsed, Shape);
  }
  ScenarioShape Out;
  EXPECT_FALSE(parseScenarioShape("zipfian", Out));
}

TEST(Scenario, EveryShapeIsBoundedMonotoneAndDeterministic) {
  for (unsigned S = 0; S < ScenarioShapeCount; ++S) {
    const ScenarioShape Shape = static_cast<ScenarioShape>(S);
    SCOPED_TRACE(scenarioShapeName(Shape));
    const ScenarioConfig Config = scenarioOf(Shape);
    const TraceLog Log = synthesizeScenario(Config);
    ASSERT_EQ(Log.Records.size(), Config.Operations);
    EXPECT_TRUE(Log.validate(Config.VolumeBlocks).ok());
    std::uint64_t Prev = 0;
    for (const TraceRecord &R : Log.Records) {
      EXPECT_GE(R.ArrivalUs, Prev); // arrivals never go backwards
      Prev = R.ArrivalUs;
    }
    // Same seed, same trace; different seed, different trace.
    EXPECT_EQ(synthesizeScenario(Config).serialize(), Log.serialize());
    ScenarioConfig Reseeded = Config;
    Reseeded.Seed = Config.Seed + 1;
    EXPECT_NE(synthesizeScenario(Reseeded).serialize(), Log.serialize());
  }
}

TEST(Scenario, SequentialIsOrderedOverwritePasses) {
  const ScenarioConfig Config = scenarioOf(ScenarioShape::Sequential);
  const TraceLog Log = synthesizeScenario(Config);
  std::uint64_t Cursor = 0;
  for (const TraceRecord &R : Log.Records) {
    EXPECT_EQ(R.Op, TraceOp::Write);
    EXPECT_EQ(R.Lba, Cursor); // strict allocation order, wrapping
    Cursor = (Cursor + R.Blocks) % Config.VolumeBlocks;
  }
}

TEST(Scenario, SkewedHotConcentratesAccesses) {
  const ScenarioConfig Config = scenarioOf(ScenarioShape::SkewedHot);
  const TraceLog Log = synthesizeScenario(Config);
  const std::uint64_t HotEnd = static_cast<std::uint64_t>(
      static_cast<double>(Config.VolumeBlocks) * Config.HotFraction);
  std::size_t InHot = 0;
  for (const TraceRecord &R : Log.Records)
    if (R.Lba < HotEnd)
      ++InHot;
  // ~90% of ops target the hot 10% of the LBA space; a uniform trace
  // would put ~10% there.
  EXPECT_GT(static_cast<double>(InHot) /
                static_cast<double>(Log.Records.size()),
            0.6);
}

TEST(Scenario, BurstyArrivalsClusterBelowTheMeanRate) {
  const TraceLog Bursty =
      synthesizeScenario(scenarioOf(ScenarioShape::BurstyHot));
  const TraceLog Smooth =
      synthesizeScenario(scenarioOf(ScenarioShape::SkewedHot));
  std::vector<double> BurstGaps = interArrivals(Bursty);
  const std::vector<double> SmoothGaps = interArrivals(Smooth);
  // Within a burst the gap is mean/BurstFactor, so the median bursty
  // gap sits far below the smooth trace's; the long inter-burst gaps
  // keep the overall rate comparable.
  std::sort(BurstGaps.begin(), BurstGaps.end());
  const double BurstMedian = BurstGaps[BurstGaps.size() / 2];
  EXPECT_LT(BurstMedian, meanOf(SmoothGaps) / 3.0);
  const double RateRatio =
      meanOf(interArrivals(Bursty)) / meanOf(SmoothGaps);
  EXPECT_GT(RateRatio, 0.5);
  EXPECT_LT(RateRatio, 2.0);
}

TEST(Scenario, DayNightSlowsTheNightHalf) {
  ScenarioConfig Config = scenarioOf(ScenarioShape::DayNight);
  Config.PeriodOps = 512;
  const TraceLog Log = synthesizeScenario(Config);
  const std::vector<double> Gaps = interArrivals(Log);
  std::vector<double> Day, Night;
  for (std::size_t I = 0; I < Gaps.size(); ++I)
    ((I % Config.PeriodOps) < Config.PeriodOps / 2 ? Day : Night)
        .push_back(Gaps[I]);
  // NightFactor=6: the night half's inter-arrival mean is several
  // times the day half's.
  EXPECT_GT(meanOf(Night), meanOf(Day) * 3.0);
}

TEST(Scenario, UniqueContentModeNeverRepeatsATag) {
  ScenarioConfig Config = scenarioOf(ScenarioShape::UniformRandom);
  Config.ContentTags = 0; // unique-content mode
  const TraceLog Log = synthesizeScenario(Config);
  std::map<std::uint64_t, int> Seen;
  for (const TraceRecord &R : Log.Records)
    if (R.Op == TraceOp::Write)
      EXPECT_EQ(++Seen[R.ContentTag], 1) << "tag " << R.ContentTag;
}
