//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and integration tests for the observability layer: span
/// recording on the modelled-time lane clocks, log-bucketed histogram
/// geometry, Chrome trace_event JSON round-trips through a real JSON
/// parser, Prometheus text grammar, and the reconciliation contract —
/// per-lane stage-span totals must equal the report's busy times.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"
#include "util/ThreadPool.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace padre;
using namespace padre::obs;

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TEST(TraceRecorder, RecordsAndTotalsPerLane) {
  TraceRecorder Trace;
  Trace.record("chunk", CategoryStage, Resource::CpuPool, 0.0, 10.0);
  Trace.record("dedup", CategoryStage, Resource::CpuPool, 10.0, 5.0);
  Trace.record("kernel:hashing", CategoryKernel, Resource::Gpu, 0.0, 3.0);
  EXPECT_EQ(Trace.spanCount(), 3u);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::CpuPool), 15.0);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::CpuPool, CategoryStage),
                   15.0);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::Gpu, CategoryKernel), 3.0);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::Gpu, CategoryStage), 0.0);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::Ssd), 0.0);
}

TEST(TraceRecorder, DropsEmptyAndInvalidDurations) {
  TraceRecorder Trace;
  Trace.record("a", CategoryStage, Resource::CpuPool, 0.0, 0.0);
  Trace.record("b", CategoryStage, Resource::CpuPool, 0.0, -1.0);
  Trace.record("c", CategoryStage, Resource::CpuPool, 0.0, 0.5e-3);
  Trace.record("d", CategoryStage, Resource::CpuPool, 0.0,
               std::nan(""));
  EXPECT_EQ(Trace.spanCount(), 0u);
  // One nanosecond — the ledger's resolution — is kept.
  Trace.record("e", CategoryStage, Resource::CpuPool, 0.0, 1e-3);
  EXPECT_EQ(Trace.spanCount(), 1u);
}

TEST(TraceRecorder, ClearDropsEverything) {
  TraceRecorder Trace;
  Trace.record("a", CategoryStage, Resource::Ssd, 0.0, 7.0);
  Trace.clear();
  EXPECT_EQ(Trace.spanCount(), 0u);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::Ssd), 0.0);
}

TEST(TraceRecorder, SpansSortParentsBeforeChildren) {
  TraceRecorder Trace;
  // Inserted in child-first order; spans() must yield (lane, begin asc,
  // longest-first) so enclosing spans precede what they contain.
  Trace.record("child", CategoryKernel, Resource::Gpu, 0.0, 2.0);
  Trace.record("parent", CategoryStage, Resource::Gpu, 0.0, 10.0);
  Trace.record("early-cpu", CategoryStage, Resource::CpuPool, 5.0, 1.0);
  Trace.record("earlier-cpu", CategoryStage, Resource::CpuPool, 1.0, 1.0);
  const std::vector<TraceSpan> Spans = Trace.spans();
  ASSERT_EQ(Spans.size(), 4u);
  EXPECT_STREQ(Spans[0].Name, "earlier-cpu");
  EXPECT_STREQ(Spans[1].Name, "early-cpu");
  EXPECT_STREQ(Spans[2].Name, "parent");
  EXPECT_STREQ(Spans[3].Name, "child");
}

TEST(TraceRecorder, LaneSpanBracketsLedgerCharges) {
  TraceRecorder Trace;
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::Pcie, 100.0); // before: not in the span
  {
    const LaneSpan Span(&Trace, Ledger, Resource::Pcie, "dma:h2d",
                        CategoryDma);
    Ledger.chargeMicros(Resource::Pcie, 40.0);
    Ledger.chargeMicros(Resource::Ssd, 999.0); // other lane: ignored
  }
  const std::vector<TraceSpan> Spans = Trace.spans();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_EQ(Spans[0].Lane, Resource::Pcie);
  EXPECT_NEAR(Spans[0].BeginUs, 100.0, 1e-9);
  EXPECT_NEAR(Spans[0].DurUs, 40.0, 1e-9);
}

TEST(TraceRecorder, StageSpanEmitsOnlyLanesThatAccrued) {
  TraceRecorder Trace;
  ResourceLedger Ledger;
  {
    const StageSpan Stage(&Trace, Ledger, "dedup");
    Ledger.chargeMicros(Resource::CpuPool, 12.0);
    Ledger.chargeMicros(Resource::Gpu, 8.0);
  }
  // CPU and GPU accrued; PCIe/SSD/lock stayed flat — no empty spans.
  EXPECT_EQ(Trace.spanCount(), 2u);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::CpuPool, CategoryStage), 12.0,
              1e-9);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Gpu, CategoryStage), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(Trace.laneTotalUs(Resource::Pcie), 0.0);
}

TEST(TraceRecorder, NullRecorderIsNoop) {
  ResourceLedger Ledger;
  const LaneSpan Lane(nullptr, Ledger, Resource::Gpu, "x", CategoryKernel);
  const StageSpan Stage(nullptr, Ledger, "y");
  Ledger.chargeMicros(Resource::Gpu, 5.0);
  // Nothing to assert beyond "does not crash / does not record".
  SUCCEED();
}

TEST(TraceRecorder, ThreadSafeUnderParallelFor) {
  TraceRecorder Trace;
  ResourceLedger Ledger;
  ThreadPool Pool(4);
  constexpr std::size_t N = 512;
  Pool.parallelFor(0, N, [&](std::size_t) {
    const LaneSpan Span(&Trace, Ledger, Resource::CpuPool, "work",
                        CategoryStage);
    Ledger.chargeMicros(Resource::CpuPool, 2.0);
  });
  // No span lost under concurrency, and every span covers at least its
  // own charge (concurrent charges on the shared lane clock can only
  // widen a span, never shrink it).
  const std::vector<TraceSpan> Spans = Trace.spans();
  ASSERT_EQ(Spans.size(), N);
  for (const TraceSpan &Span : Spans)
    EXPECT_GE(Span.DurUs, 2.0 - 1e-9);
  EXPECT_GE(Trace.laneTotalUs(Resource::CpuPool), N * 2.0 - 1e-6);
  EXPECT_NEAR(Ledger.busyMicros(Resource::CpuPool), N * 2.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

TEST(LogHistogram, BoundsGrowGeometrically) {
  const LogHistogram Hist(1.0, 2.0, 4);
  const std::vector<double> &Bounds = Hist.bounds();
  ASSERT_EQ(Bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(Bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(Bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(Bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(Bounds[3], 8.0);
}

TEST(LogHistogram, BucketIndexUsesLeSemantics) {
  const LogHistogram Hist(1.0, 2.0, 4);
  // Prometheus `le`: a value exactly on a bound belongs to that bucket.
  EXPECT_EQ(Hist.bucketIndex(0.5), 0u);
  EXPECT_EQ(Hist.bucketIndex(1.0), 0u);
  EXPECT_EQ(Hist.bucketIndex(1.001), 1u);
  EXPECT_EQ(Hist.bucketIndex(2.0), 1u);
  EXPECT_EQ(Hist.bucketIndex(8.0), 3u);
  EXPECT_EQ(Hist.bucketIndex(8.001), 4u); // overflow bucket
}

TEST(LogHistogram, ObserveAccumulatesCountsAndSum) {
  LogHistogram Hist(1.0, 2.0, 4);
  Hist.observe(0.5);
  Hist.observe(3.0);
  Hist.observe(3.5);
  Hist.observe(100.0); // overflow
  EXPECT_EQ(Hist.count(), 4u);
  EXPECT_DOUBLE_EQ(Hist.sum(), 107.0);
  EXPECT_EQ(Hist.bucketCount(0), 1u);
  EXPECT_EQ(Hist.bucketCount(1), 0u);
  EXPECT_EQ(Hist.bucketCount(2), 2u);
  EXPECT_EQ(Hist.bucketCount(3), 0u);
  EXPECT_EQ(Hist.bucketCount(4), 1u);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry Metrics;
  Counter &A = Metrics.counter("padre_test_total", "help");
  Counter &B = Metrics.counter("padre_test_total");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
}

TEST(MetricsRegistry, FindRespectsKindAndAbsence) {
  MetricsRegistry Metrics;
  Metrics.counter("padre_a_total");
  Metrics.gauge("padre_b");
  Metrics.histogram("padre_c_us");
  EXPECT_NE(Metrics.findCounter("padre_a_total"), nullptr);
  EXPECT_EQ(Metrics.findCounter("padre_b"), nullptr);  // wrong kind
  EXPECT_EQ(Metrics.findGauge("padre_a_total"), nullptr);
  EXPECT_NE(Metrics.findHistogram("padre_c_us"), nullptr);
  EXPECT_EQ(Metrics.findCounter("padre_missing_total"), nullptr);
}

namespace {

/// True if \p Name is a valid Prometheus metric name.
bool validMetricName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (std::size_t I = 0; I < Name.size(); ++I) {
    const char C = Name[I];
    const bool Ok = std::isalpha(static_cast<unsigned char>(C)) ||
                    C == '_' || C == ':' ||
                    (I > 0 && std::isdigit(static_cast<unsigned char>(C)));
    if (!Ok)
      return false;
  }
  return true;
}

} // namespace

TEST(MetricsRegistry, PrometheusTextFollowsTheGrammar) {
  MetricsRegistry Metrics;
  Metrics.counter("padre_hits_total{tier=\"buffer\"}", "Hits by tier")
      .add(4);
  Metrics.counter("padre_hits_total{tier=\"tree\"}", "Hits by tier")
      .add(2);
  Metrics.gauge("padre_offload_fraction", "Current offload").set(0.25);
  LogHistogram &Hist =
      Metrics.histogram("padre_lat_us", "Latency", 1.0, 2.0, 3);
  Hist.observe(0.5);
  Hist.observe(3.0);
  Hist.observe(50.0);

  const std::string Text = Metrics.prometheusText();
  std::istringstream Stream(Text);
  std::string Line;
  std::map<std::string, unsigned> HelpCount, TypeCount;
  std::map<std::string, std::vector<double>> BucketsBySeries;
  double HistSum = -1.0, HistCount = -1.0, InfBucket = -1.0;
  while (std::getline(Stream, Line)) {
    if (Line.empty())
      continue;
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream Fields(Line.substr(2));
      std::string Keyword, Base, Rest;
      Fields >> Keyword >> Base >> Rest;
      EXPECT_TRUE(validMetricName(Base)) << Line;
      EXPECT_FALSE(Rest.empty()) << "header missing help/type: " << Line;
      if (Keyword == "HELP")
        ++HelpCount[Base];
      else
        ++TypeCount[Base];
      if (Keyword == "TYPE") {
        EXPECT_TRUE(Rest == "counter" || Rest == "gauge" ||
                    Rest == "histogram")
            << Line;
      }
      continue;
    }
    // Sample line: name[{labels}] SP value
    const std::size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    const std::string Series = Line.substr(0, Space);
    const std::string ValueText = Line.substr(Space + 1);
    const std::size_t Brace = Series.find('{');
    const std::string Name =
        Brace == std::string::npos ? Series : Series.substr(0, Brace);
    EXPECT_TRUE(validMetricName(Name)) << Line;
    if (Brace != std::string::npos) {
      EXPECT_EQ(Series.back(), '}') << Line;
    }
    double Value = 0.0;
    if (ValueText == "+Inf")
      Value = std::numeric_limits<double>::infinity();
    else
      ASSERT_NO_THROW(Value = std::stod(ValueText)) << Line;
    if (Name == "padre_lat_us_bucket") {
      BucketsBySeries["padre_lat_us"].push_back(Value);
      if (Series.find("le=\"+Inf\"") != std::string::npos)
        InfBucket = Value;
    } else if (Name == "padre_lat_us_sum") {
      HistSum = Value;
    } else if (Name == "padre_lat_us_count") {
      HistCount = Value;
    }
  }

  // One HELP and one TYPE per base name, shared across label series.
  for (const char *Base :
       {"padre_hits_total", "padre_offload_fraction", "padre_lat_us"}) {
    EXPECT_EQ(HelpCount[Base], 1u) << Base;
    EXPECT_EQ(TypeCount[Base], 1u) << Base;
  }
  // Histogram buckets are cumulative and end at +Inf == _count.
  const std::vector<double> &Buckets = BucketsBySeries["padre_lat_us"];
  ASSERT_EQ(Buckets.size(), 4u); // 3 finite bounds + +Inf
  for (std::size_t I = 1; I < Buckets.size(); ++I)
    EXPECT_GE(Buckets[I], Buckets[I - 1]);
  EXPECT_DOUBLE_EQ(InfBucket, 3.0);
  EXPECT_DOUBLE_EQ(HistCount, 3.0);
  EXPECT_DOUBLE_EQ(HistSum, 53.5);
}

//===----------------------------------------------------------------------===//
// Chrome trace_event JSON round-trip
//===----------------------------------------------------------------------===//

namespace {

/// Minimal JSON value + recursive-descent parser: just enough to
/// round-trip the exporter's output through a real grammar check
/// (objects, arrays, strings with escapes, numbers, true/false/null).
struct JsonValue {
  enum Kind { Null, Bool, Number, String, Array, Object } K = Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out) {
    return value(Out) && (skipSpace(), Pos == Text.size());
  }

private:
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool literal(const char *Word) {
    const std::size_t Len = std::string(Word).size();
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool value(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return false;
    const char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.K = JsonValue::String;
      return string(Out.Str);
    }
    if (literal("true")) {
      Out.K = JsonValue::Bool;
      Out.B = true;
      return true;
    }
    if (literal("false")) {
      Out.K = JsonValue::Bool;
      Out.B = false;
      return true;
    }
    if (literal("null")) {
      Out.K = JsonValue::Null;
      return true;
    }
    return number(Out);
  }

  bool string(std::string &Out) {
    if (Text[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        if (Pos >= Text.size())
          return false;
        const char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          C = E;
          break;
        case 'n':
          C = '\n';
          break;
        case 't':
          C = '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return false;
          C = static_cast<char>(
              std::stoul(Text.substr(Pos, 4), nullptr, 16));
          Pos += 4;
          break;
        }
        default:
          return false;
        }
      }
      Out.push_back(C);
    }
    if (Pos >= Text.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number(JsonValue &Out) {
    const std::size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '+' || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E'))
      ++Pos;
    if (Pos == Start)
      return false;
    Out.K = JsonValue::Number;
    Out.Num = std::stod(Text.substr(Start, Pos - Start));
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue Element;
      if (!value(Element))
        return false;
      Out.Arr.push_back(std::move(Element));
      skipSpace();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"' || !string(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return false;
      ++Pos;
      JsonValue Member;
      if (!value(Member))
        return false;
      Out.Obj[Key] = std::move(Member);
      skipSpace();
      if (Pos >= Text.size())
        return false;
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  const std::string &Text;
  std::size_t Pos = 0;
};

} // namespace

TEST(ChromeTrace, JsonRoundTripsThroughAParser) {
  TraceRecorder Trace;
  Trace.record("chunk", CategoryStage, Resource::CpuPool, 0.0, 120.5);
  Trace.record("kernel:compression", CategoryKernel, Resource::Gpu, 3.25,
               42.0);
  Trace.record("ssd:seq-write", CategoryIo, Resource::Ssd, 10.0, 77.125);

  const std::string Json = Trace.chromeJson();
  JsonValue Root;
  ASSERT_TRUE(JsonParser(Json).parse(Root)) << Json;
  ASSERT_EQ(Root.K, JsonValue::Object);
  ASSERT_EQ(Root.Obj.count("traceEvents"), 1u);
  const JsonValue &Events = Root.Obj["traceEvents"];
  ASSERT_EQ(Events.K, JsonValue::Array);

  std::size_t MetaThreads = 0;
  std::vector<TraceSpan> Expected = Trace.spans();
  std::size_t NextSpan = 0;
  for (const JsonValue &Event : Events.Arr) {
    ASSERT_EQ(Event.K, JsonValue::Object);
    const std::string &Phase = Event.Obj.at("ph").Str;
    EXPECT_DOUBLE_EQ(Event.Obj.at("pid").Num, 1.0);
    if (Phase == "M") {
      if (Event.Obj.at("name").Str == "thread_name")
        ++MetaThreads;
      continue;
    }
    ASSERT_EQ(Phase, "X");
    ASSERT_LT(NextSpan, Expected.size());
    const TraceSpan &Span = Expected[NextSpan++];
    EXPECT_EQ(Event.Obj.at("name").Str, Span.Name);
    EXPECT_EQ(Event.Obj.at("cat").Str, Span.Category);
    EXPECT_NEAR(Event.Obj.at("tid").Num,
                static_cast<double>(static_cast<unsigned>(Span.Lane)),
                1e-9);
    EXPECT_NEAR(Event.Obj.at("ts").Num, Span.BeginUs, 1e-3);
    EXPECT_NEAR(Event.Obj.at("dur").Num, Span.DurUs, 1e-3);
    EXPECT_EQ(Event.Obj.at("args").Obj.at("lane").Str,
              resourceName(Span.Lane));
  }
  EXPECT_EQ(NextSpan, Expected.size());
  EXPECT_EQ(MetaThreads, static_cast<std::size_t>(ResourceCount));
}

TEST(ChromeTrace, EscapesStringsSafely) {
  TraceRecorder Trace;
  Trace.record("odd\"name\\with\ttabs\n", CategoryStage,
               Resource::CpuPool, 0.0, 1.0);
  const std::string Json = Trace.chromeJson();
  JsonValue Root;
  ASSERT_TRUE(JsonParser(Json).parse(Root));
  bool Found = false;
  for (const JsonValue &Event : Root.Obj["traceEvents"].Arr)
    if (Event.Obj.at("ph").Str == "X") {
      EXPECT_EQ(Event.Obj.at("name").Str, "odd\"name\\with\ttabs\n");
      Found = true;
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Pipeline integration: the reconciliation contract
//===----------------------------------------------------------------------===//

namespace {

struct ObsRun {
  PipelineReport Report;
  std::size_t SpanCount = 0;
};

/// Runs a small stream through the pipeline with (or without) the obs
/// sinks attached and returns the report.
ObsRun runPipeline(PipelineMode Mode, TraceRecorder *Trace,
                   MetricsRegistry *Metrics) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Trace = Trace;
  Config.Metrics = Metrics;

  WorkloadConfig Load;
  Load.TotalBytes = 4ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  ObsRun Run;
  Run.Report = Pipeline.report();
  Run.SpanCount = Trace ? Trace->spanCount() : 0;
  return Run;
}

class ObsPipelineTest : public ::testing::TestWithParam<PipelineMode> {};

} // namespace

TEST_P(ObsPipelineTest, StageSpanTotalsReconcileWithReportBusyTimes) {
  TraceRecorder Trace;
  const ObsRun Run = runPipeline(GetParam(), &Trace, nullptr);
  ASSERT_GT(Run.SpanCount, 0u);
  // The contract: stage spans tile each lane, so their totals equal the
  // ledger busy times the report publishes — within a microsecond.
  EXPECT_NEAR(Trace.laneTotalUs(Resource::CpuPool, CategoryStage),
              Run.Report.CpuBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Gpu, CategoryStage),
              Run.Report.GpuBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Pcie, CategoryStage),
              Run.Report.PcieBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Ssd, CategoryStage),
              Run.Report.SsdBusySec * 1e6, 1.0);
  // Detail spans (kernels, DMAs, I/O) nest inside stage spans, so each
  // category total is bounded by its lane's stage total.
  EXPECT_LE(Trace.laneTotalUs(Resource::Gpu, CategoryKernel),
            Trace.laneTotalUs(Resource::Gpu, CategoryStage) + 1.0);
  EXPECT_LE(Trace.laneTotalUs(Resource::Pcie, CategoryDma),
            Trace.laneTotalUs(Resource::Pcie, CategoryStage) + 1.0);
  EXPECT_LE(Trace.laneTotalUs(Resource::Ssd, CategoryIo),
            Trace.laneTotalUs(Resource::Ssd, CategoryStage) + 1.0);
}

TEST_P(ObsPipelineTest, MetricsMatchTheReport) {
  MetricsRegistry Metrics;
  const ObsRun Run = runPipeline(GetParam(), nullptr, &Metrics);
  const PipelineReport &Report = Run.Report;
  EXPECT_EQ(Metrics.findCounter("padre_chunks_total")->value(),
            Report.LogicalChunks);
  EXPECT_EQ(Metrics.findCounter("padre_logical_bytes_total")->value(),
            Report.LogicalBytes);
  EXPECT_EQ(Metrics.findCounter("padre_unique_chunks_total")->value(),
            Report.UniqueChunks);
  EXPECT_EQ(
      Metrics.findCounter("padre_dup_chunks_total{tier=\"buffer\"}")
          ->value(),
      Report.DupFromBuffer);
  EXPECT_EQ(
      Metrics.findCounter("padre_dup_chunks_total{tier=\"tree\"}")
          ->value(),
      Report.DupFromTree);
  EXPECT_EQ(Metrics.findCounter("padre_dup_chunks_total{tier=\"gpu\"}")
                ->value(),
            Report.DupFromGpu);
  EXPECT_EQ(Metrics.findCounter("padre_stored_bytes_total")->value(),
            Report.StoredBytes);
  const LogHistogram *Latency =
      Metrics.findHistogram("padre_chunk_latency_us");
  ASSERT_NE(Latency, nullptr);
  EXPECT_EQ(Latency->count(), Report.LogicalChunks);
  // GPU modes must count kernel launches; CPU-only must not.
  std::uint64_t Launches = 0;
  for (const char *Family : {"indexing", "hashing", "compression"})
    if (const Counter *C = Metrics.findCounter(
            std::string("padre_gpu_kernel_launches_total{family=\"") +
            Family + "\"}"))
      Launches += C->value();
  EXPECT_EQ(Launches, Report.KernelLaunches);
}

TEST_P(ObsPipelineTest, DisabledObservabilityLeavesTheReportUnchanged) {
  TraceRecorder Trace;
  MetricsRegistry Metrics;
  const ObsRun Traced = runPipeline(GetParam(), &Trace, &Metrics);
  const ObsRun Plain = runPipeline(GetParam(), nullptr, nullptr);
  const PipelineReport &A = Traced.Report, &B = Plain.Report;
  EXPECT_EQ(A.LogicalBytes, B.LogicalBytes);
  EXPECT_EQ(A.LogicalChunks, B.LogicalChunks);
  EXPECT_EQ(A.UniqueChunks, B.UniqueChunks);
  EXPECT_EQ(A.DupChunks, B.DupChunks);
  EXPECT_EQ(A.DupFromBuffer, B.DupFromBuffer);
  EXPECT_EQ(A.DupFromTree, B.DupFromTree);
  EXPECT_EQ(A.DupFromGpu, B.DupFromGpu);
  EXPECT_EQ(A.StoredBytes, B.StoredBytes);
  EXPECT_EQ(A.KernelLaunches, B.KernelLaunches);
  EXPECT_EQ(A.SsdNandBytes, B.SsdNandBytes);
  // Modelled time is deterministic: tracing only *reads* the clocks.
  EXPECT_DOUBLE_EQ(A.MakespanSec, B.MakespanSec);
  EXPECT_DOUBLE_EQ(A.CpuBusySec, B.CpuBusySec);
  EXPECT_DOUBLE_EQ(A.GpuBusySec, B.GpuBusySec);
  EXPECT_DOUBLE_EQ(A.PcieBusySec, B.PcieBusySec);
  EXPECT_DOUBLE_EQ(A.SsdBusySec, B.SsdBusySec);
  EXPECT_DOUBLE_EQ(A.ThroughputIops, B.ThroughputIops);
  EXPECT_DOUBLE_EQ(A.LatencyP50Us, B.LatencyP50Us);
  EXPECT_DOUBLE_EQ(A.LatencyP99Us, B.LatencyP99Us);
}

TEST(ObsPipeline, ResetMeasurementClearsWarmupSpans) {
  TraceRecorder Trace;
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  Config.Trace = &Trace;
  WorkloadConfig Load;
  Load.TotalBytes = 2ull << 20;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  const std::size_t Half = Data.size() / 2;
  Pipeline.write(ByteSpan(Data.data(), Half));
  ASSERT_GT(Trace.spanCount(), 0u);
  Pipeline.resetMeasurement();
  EXPECT_EQ(Trace.spanCount(), 0u);
  // Post-reset spans start from the rewound lane clocks and still
  // reconcile with the (reset) ledger.
  Pipeline.write(ByteSpan(Data.data() + Half, Data.size() - Half));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_NEAR(Trace.laneTotalUs(Resource::CpuPool, CategoryStage),
              Report.CpuBusySec * 1e6, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ObsPipelineTest,
    ::testing::Values(PipelineMode::CpuOnly, PipelineMode::GpuCompress),
    [](const ::testing::TestParamInfo<PipelineMode> &Info) {
      return Info.param == PipelineMode::CpuOnly ? "CpuOnly"
                                                 : "GpuCompress";
    });
