//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the GPU device model: kernel launch accounting,
/// transfers, memory arena, mixed-kernel penalty.
///
//===----------------------------------------------------------------------===//

#include "gpu/GpuDevice.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

struct GpuFixture : ::testing::Test {
  CostModel Model;
  ResourceLedger Ledger;
};

} // namespace

TEST_F(GpuFixture, KernelChargesLaunchPlusExec) {
  GpuDevice Device(Model, Ledger);
  bool Ran = false;
  Device.launchKernel(KernelFamily::Compression, 100.0,
                      [&Ran] { Ran = true; });
  EXPECT_TRUE(Ran);
  EXPECT_NEAR(Ledger.busySeconds(Resource::Gpu),
              (Model.Gpu.LaunchUs + 100.0) * 1e-6, 1e-12);
  EXPECT_EQ(Ledger.kernelLaunches(), 1u);
  EXPECT_EQ(Device.launches(KernelFamily::Compression), 1u);
  EXPECT_EQ(Device.launches(KernelFamily::Indexing), 0u);
}

TEST_F(GpuFixture, MixedModeInflatesKernelCost) {
  GpuDevice Device(Model, Ledger);
  Device.launchKernel(KernelFamily::Indexing, 100.0, nullptr);
  const double Plain = Ledger.busySeconds(Resource::Gpu);
  Ledger.reset();
  Device.setMixedMode(true);
  Device.launchKernel(KernelFamily::Indexing, 100.0, nullptr);
  EXPECT_NEAR(Ledger.busySeconds(Resource::Gpu),
              Plain * Model.Gpu.MixedKernelPenalty, 1e-12);
}

TEST_F(GpuFixture, TransfersChargePcieAndCount) {
  GpuDevice Device(Model, Ledger);
  Device.transferToDevice(4096);
  Device.transferFromDevice(1024);
  EXPECT_NEAR(Ledger.busySeconds(Resource::Pcie),
              (Model.pcieTransferUs(4096) + Model.pcieTransferUs(1024)) *
                  1e-6,
              1e-12);
  EXPECT_EQ(Ledger.bytesToDevice(), 4096u);
  EXPECT_EQ(Ledger.bytesFromDevice(), 1024u);
}

TEST_F(GpuFixture, MemoryArenaBounds) {
  GpuDevice Device(Model, Ledger);
  const std::uint64_t Capacity = Device.memoryCapacityBytes();
  EXPECT_EQ(Capacity, static_cast<std::uint64_t>(
                          Model.Gpu.DeviceMemoryMiB * 1024 * 1024));
  EXPECT_TRUE(Device.allocateMemory(Capacity / 2));
  EXPECT_TRUE(Device.allocateMemory(Capacity / 2));
  EXPECT_FALSE(Device.allocateMemory(1)); // arena full
  Device.releaseMemory(Capacity / 2);
  EXPECT_TRUE(Device.allocateMemory(1));
}

TEST_F(GpuFixture, ConcurrentLaunchCountsAreExact) {
  GpuDevice Device(Model, Ledger);
  ThreadPool Pool(4);
  Pool.parallelFor(0, 500, [&Device](std::size_t) {
    Device.launchKernel(KernelFamily::Hashing, 1.0, nullptr);
  });
  EXPECT_EQ(Device.launches(KernelFamily::Hashing), 500u);
  EXPECT_EQ(Ledger.kernelLaunches(), 500u);
}

TEST_F(GpuFixture, KernelFamilyNames) {
  EXPECT_STREQ(kernelFamilyName(KernelFamily::Indexing), "indexing");
  EXPECT_STREQ(kernelFamilyName(KernelFamily::Hashing), "hashing");
  EXPECT_STREQ(kernelFamilyName(KernelFamily::Compression), "compression");
}

TEST_F(GpuFixture, AbsentGpuReportsNotPresent) {
  Model.Gpu.Present = false;
  GpuDevice Device(Model, Ledger);
  EXPECT_FALSE(Device.present());
}
