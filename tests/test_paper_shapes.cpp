//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduction-shape tests: assert that the modelled system reproduces
/// the paper's evaluation *shapes* (who wins, by roughly what factor)
/// within tolerance bands. These are the executable form of
/// EXPERIMENTS.md:
///
///   E1 (§3.1(3))  CPU indexing 4.16–5.45x faster than GPU indexing.
///   E2 (§4(1))    GPU-assisted dedup ≈ +15% over CPU-only; ≈ 3x SSD.
///   E3 (§4(2))    compression IOPS: CPU ≈ 50K < SSD ≈ 80K < GPU ≈ 100K
///                 at low ratio; all rise with the ratio; GPU ≈ +88%.
///   E4 (§4(3))    integration: CpuOnly < GpuDedup < GpuBoth <=
///                 GpuCompress; best ≈ +89.7% over CpuOnly.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "index/CpuBinStore.h"
#include "index/GpuBinTable.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

/// Runs a pipeline over a generated stream with a warmup prefix, then
/// returns the steady-state report.
PipelineReport runPipeline(const Platform &Plat, PipelineConfig Config,
                           double DedupRatio, double CompressRatio,
                           std::uint64_t MeasureBytes = 12ull << 20,
                           std::uint64_t WarmupBytes = 4ull << 20) {
  WorkloadConfig Load;
  Load.BlockSize = Config.ChunkSize;
  Load.TotalBytes = WarmupBytes + MeasureBytes;
  Load.DedupRatio = DedupRatio;
  Load.CompressRatio = CompressRatio;
  Load.Seed = 1234;
  const VdbenchStream Stream(Load);
  const ByteVector Data = Stream.generateAll();

  ReductionPipeline Pipeline(Plat, Config);
  Pipeline.write(ByteSpan(Data.data(), WarmupBytes));
  Pipeline.resetMeasurement();
  Pipeline.write(ByteSpan(Data.data() + WarmupBytes, MeasureBytes));
  return Pipeline.report();
}

PipelineConfig baseConfig(PipelineMode Mode) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// E1: preliminary indexing comparison (§3.1(3))
//===----------------------------------------------------------------------===//

namespace {

/// Modelled CPU-vs-GPU indexing execution-time ratio for one probe
/// batch of \p BatchSize, using the functional index structures.
double indexingRatio(std::size_t BatchSize) {
  const Platform Plat = Platform::paper();
  const BinLayout Layout(8);

  // Same number of entries on both sides (the paper's fairness rule).
  ResourceLedger Ledger;
  GpuDevice Device(Plat.Model, Ledger);
  GpuBinTable GpuTable(Device, Layout, 256, 1);
  CpuBinStore CpuTable(Layout, 0, 1);

  std::vector<Fingerprint> Fps;
  for (std::size_t I = 0; I < 4096; ++I) {
    std::uint8_t Data[8];
    storeLe64(Data, I);
    const Fingerprint Fp = Fingerprint::ofData(ByteSpan(Data, 8));
    Fps.push_back(Fp);
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    ByteVector Suffixes(Suffix, Suffix + Layout.suffixBytes());
    CpuTable.mergeRun(Layout.binOf(Fp),
                      ByteSpan(Suffixes.data(), Suffixes.size()), {I});
    GpuTable.applyFlush(Layout.binOf(Fp),
                        ByteSpan(Suffixes.data(), Suffixes.size()), {I});
  }

  // CPU side: a hot probe loop.
  double CpuMicros = 0.0;
  for (std::size_t I = 0; I < BatchSize; ++I) {
    std::uint8_t Suffix[Fingerprint::Size];
    const Fingerprint &Fp = Fps[I % Fps.size()];
    Layout.extractSuffix(Fp, Suffix);
    [[maybe_unused]] const auto Hit =
        CpuTable.lookup(Layout.binOf(Fp), Suffix);
    CpuMicros += Plat.Model.Cpu.IndexProbeHotUs;
  }

  // GPU side: one kernel over the batch (digests DMA'd in, results
  // out).
  Ledger.reset();
  Device.transferToDevice(BatchSize * Fingerprint::Size);
  double ExecMicros = 0.0;
  for (std::size_t I = 0; I < BatchSize; ++I)
    ExecMicros += Plat.Model.Gpu.ProbePerEntryUs;
  Device.launchKernel(KernelFamily::Indexing, ExecMicros, [&] {
    for (std::size_t I = 0; I < BatchSize; ++I)
      (void)GpuTable.probe(Fps[I % Fps.size()]);
  });
  Device.transferFromDevice(BatchSize * sizeof(std::uint32_t));
  const double GpuMicros =
      (Ledger.busySeconds(Resource::Gpu) +
       Ledger.busySeconds(Resource::Pcie)) *
      1e6;
  return GpuMicros / CpuMicros;
}

} // namespace

TEST(E1_IndexingPrelim, CpuBeatsGpuByFourToFiveAndAHalf) {
  // Paper band: 4.16x–5.45x across their configurations.
  for (std::size_t BatchSize : {128u, 256u, 512u, 1024u}) {
    const double Ratio = indexingRatio(BatchSize);
    EXPECT_GE(Ratio, 3.9) << "batch " << BatchSize;
    EXPECT_LE(Ratio, 5.8) << "batch " << BatchSize;
  }
}

TEST(E1_IndexingPrelim, LaunchLatencyDominatesSmallBatches) {
  // The ratio must shrink as the batch grows (launch amortization) —
  // the paper's "execution time is fixed because of the inevitable
  // time at which the GPU kernel starts".
  EXPECT_GT(indexingRatio(128), indexingRatio(1024));
}

//===----------------------------------------------------------------------===//
// E2: parallel dedup throughput (§4(1))
//===----------------------------------------------------------------------===//

namespace {

PipelineConfig dedupOnly(PipelineMode Mode) {
  PipelineConfig Config = baseConfig(Mode);
  Config.CompressEnabled = false;
  return Config;
}

} // namespace

TEST(E2_Dedup, CpuOnlyThroughputNearPaper) {
  const PipelineReport Report = runPipeline(
      Platform::paper(), dedupOnly(PipelineMode::CpuOnly), 2.0, 2.0);
  // Paper: ≈ 209 K IOPS (240 K / 1.15).
  EXPECT_GT(Report.ThroughputIops, 180e3);
  EXPECT_LT(Report.ThroughputIops, 245e3);
}

TEST(E2_Dedup, GpuAssistGainsAboutFifteenPercent) {
  const PipelineReport Cpu = runPipeline(
      Platform::paper(), dedupOnly(PipelineMode::CpuOnly), 2.0, 2.0);
  const PipelineReport Gpu = runPipeline(
      Platform::paper(), dedupOnly(PipelineMode::GpuDedup), 2.0, 2.0);
  const double Gain = Gpu.ThroughputIops / Cpu.ThroughputIops;
  EXPECT_GT(Gain, 1.05);
  EXPECT_LT(Gain, 1.30);
}

TEST(E2_Dedup, GpuAssistedDedupIsAboutThreeTimesSsd) {
  const PipelineReport Gpu = runPipeline(
      Platform::paper(), dedupOnly(PipelineMode::GpuDedup), 2.0, 2.0);
  ResourceLedger Scratch;
  const SsdModel Ssd(Platform::paper().Model, Scratch);
  const double Ratio = Gpu.ThroughputIops / Ssd.baselineWriteIops4K();
  EXPECT_GT(Ratio, 2.5);
  EXPECT_LT(Ratio, 3.6);
}

//===----------------------------------------------------------------------===//
// E3: parallel compression IOPS vs compression ratio (§4(2))
//===----------------------------------------------------------------------===//

namespace {

PipelineConfig compressOnly(PipelineMode Mode) {
  PipelineConfig Config = baseConfig(Mode);
  Config.DedupEnabled = false;
  return Config;
}

} // namespace

TEST(E3_Compression, LowRatioEndpointsMatchPaper) {
  const PipelineReport Cpu = runPipeline(
      Platform::paper(), compressOnly(PipelineMode::CpuOnly), 1.0, 1.0,
      8ull << 20, 2ull << 20);
  const PipelineReport Gpu = runPipeline(
      Platform::paper(), compressOnly(PipelineMode::GpuCompress), 1.0, 1.0,
      8ull << 20, 2ull << 20);
  // Paper: CPU ≈ 50 K IOPS, GPU ≈ 100 K IOPS, SSD ≈ 80 K in between.
  EXPECT_GT(Cpu.ThroughputIops, 40e3);
  EXPECT_LT(Cpu.ThroughputIops, 62e3);
  EXPECT_GT(Gpu.ThroughputIops, 85e3);
  EXPECT_LT(Gpu.ThroughputIops, 135e3);

  ResourceLedger Scratch;
  const SsdModel Ssd(Platform::paper().Model, Scratch);
  EXPECT_LT(Cpu.ThroughputIops, Ssd.baselineWriteIops4K());
  EXPECT_GT(Gpu.ThroughputIops, Ssd.baselineWriteIops4K());
}

TEST(E3_Compression, ThroughputRisesWithCompressionRatio) {
  double LastCpu = 0.0, LastGpu = 0.0;
  for (double Ratio : {1.0, 2.0, 4.0}) {
    const PipelineReport Cpu = runPipeline(
        Platform::paper(), compressOnly(PipelineMode::CpuOnly), 1.0, Ratio,
        8ull << 20, 2ull << 20);
    const PipelineReport Gpu = runPipeline(
        Platform::paper(), compressOnly(PipelineMode::GpuCompress), 1.0,
        Ratio, 8ull << 20, 2ull << 20);
    EXPECT_GT(Cpu.ThroughputIops, LastCpu) << "ratio " << Ratio;
    EXPECT_GE(Gpu.ThroughputIops, LastGpu * 0.98) << "ratio " << Ratio;
    LastCpu = Cpu.ThroughputIops;
    LastGpu = Gpu.ThroughputIops;
  }
}

TEST(E3_Compression, GpuGainAveragesNearEightyEightPercent) {
  double GainSum = 0.0;
  int Count = 0;
  for (double Ratio : {1.0, 1.33, 2.0, 4.0}) {
    const PipelineReport Cpu = runPipeline(
        Platform::paper(), compressOnly(PipelineMode::CpuOnly), 1.0, Ratio,
        8ull << 20, 2ull << 20);
    const PipelineReport Gpu = runPipeline(
        Platform::paper(), compressOnly(PipelineMode::GpuCompress), 1.0,
        Ratio, 8ull << 20, 2ull << 20);
    GainSum += Gpu.ThroughputIops / Cpu.ThroughputIops;
    ++Count;
  }
  const double MeanGain = GainSum / Count;
  // Paper: +88.3% on average.
  EXPECT_GT(MeanGain, 1.6);
  EXPECT_LT(MeanGain, 2.2);
}

//===----------------------------------------------------------------------===//
// E4: integrated pipeline, Fig. 2 (§4(3))
//===----------------------------------------------------------------------===//

TEST(E4_Integration, Figure2OrderingAndHeadlineGain) {
  double Iops[PipelineModeCount];
  for (unsigned I = 0; I < PipelineModeCount; ++I)
    Iops[I] = runPipeline(Platform::paper(),
                          baseConfig(static_cast<PipelineMode>(I)), 2.0,
                          2.0)
                  .ThroughputIops;

  const double CpuOnly = Iops[0], GpuDedup = Iops[1], GpuComp = Iops[2],
               GpuBoth = Iops[3];
  // Fig. 2 ordering: GPU-for-compression best, CPU-only worst, the two
  // other options in between.
  EXPECT_GT(GpuComp, GpuBoth);
  EXPECT_GT(GpuBoth, GpuDedup);
  EXPECT_GT(GpuDedup, CpuOnly);

  // Headline: +89.7% for the best option over CPU-only.
  const double Gain = GpuComp / CpuOnly;
  EXPECT_GT(Gain, 1.6);
  EXPECT_LT(Gain, 2.2);
}

TEST(E4_Integration, MixedKernelPenaltyDrivesTheGpuBothGap) {
  // The occupancy penalty for mixed kernels is the dominant cause of
  // Fig. 2's GpuBoth-vs-GpuCompress gap: removing it must shrink the
  // gap substantially (the small remainder comes from the forced
  // minimum dedup-offload share).
  const auto gapFor = [](double Penalty) {
    Platform Plat = Platform::paper();
    Plat.Model.Gpu.MixedKernelPenalty = Penalty;
    const double Both =
        runPipeline(Plat, baseConfig(PipelineMode::GpuBoth), 2.0, 2.0)
            .ThroughputIops;
    const double Comp =
        runPipeline(Plat, baseConfig(PipelineMode::GpuCompress), 2.0, 2.0)
            .ThroughputIops;
    return Comp / Both;
  };
  const double GapWithPenalty =
      gapFor(Platform::paper().Model.Gpu.MixedKernelPenalty);
  const double GapWithoutPenalty = gapFor(1.0);
  EXPECT_GT(GapWithPenalty, 1.05);
  EXPECT_LT(GapWithoutPenalty, 1.0 + (GapWithPenalty - 1.0) * 0.6);
}
