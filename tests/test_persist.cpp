//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for volume image persistence: save/load round trips (data,
/// mapping, refcounts, dead list), dedup continuity across remounts,
/// and corruption/mismatch rejection.
///
//===----------------------------------------------------------------------===//

#include "hash/Crc32.h"
#include "persist/VolumeImage.h"
#include "util/Random.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;

struct PersistFixture : ::testing::Test {
  std::string ImagePath;

  void SetUp() override {
    ImagePath = ::testing::TempDir() + "padre_image_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".img";
  }

  void TearDown() override { std::remove(ImagePath.c_str()); }

  static std::unique_ptr<ReductionPipeline> makePipeline() {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.Dedup.Index.BinBits = 8;
    return std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  }

  static ByteVector blockOf(std::uint64_t Tag) {
    ByteVector Data(BlockSize);
    Random Rng(Tag * 31337 + 5);
    std::uint8_t Filler[64];
    Rng.fillBytes(Filler, sizeof(Filler));
    for (std::size_t I = 0; I < Data.size(); I += 64)
      if ((I / 64) % 3 == 0)
        Rng.fillBytes(Data.data() + I, 64);
      else
        std::copy(Filler, Filler + 64, Data.data() + I);
    return Data;
  }
};

} // namespace

TEST_F(PersistFixture, SaveLoadRoundTripsDataAndMapping) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 256;
  Volume Vol(*Pipeline, VolConfig);

  for (std::uint64_t Tag = 0; Tag < 20; ++Tag) {
    const ByteVector Data = blockOf(Tag % 7); // duplicates included
    ASSERT_TRUE(Vol.writeBlocks(Tag * 3, ByteSpan(Data.data(),
                                                  Data.size())));
  }
  ASSERT_TRUE(Vol.trim(6, 1));
  const auto Before = Vol.readBlocks(0, 256);
  ASSERT_TRUE(Before.has_value());

  const ImageResult Saved = saveVolumeImage(ImagePath, Vol, *Pipeline);
  ASSERT_TRUE(Saved.Ok) << Saved.Message;

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  const ImageResult Loaded = loadVolumeImage(ImagePath, *Fresh, Restored);
  ASSERT_TRUE(Loaded.Ok) << Loaded.Message;

  const auto After = Restored.readBlocks(0, 256);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(*After, *Before);
  EXPECT_EQ(Restored.stats().MappedBlocks, Vol.stats().MappedBlocks);
  EXPECT_EQ(Restored.stats().LiveChunks, Vol.stats().LiveChunks);
  EXPECT_EQ(Restored.stats().DeadChunks, Vol.stats().DeadChunks);
}

TEST_F(PersistFixture, DedupContinuesAcrossRemount) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 64;
  Volume Vol(*Pipeline, VolConfig);
  const ByteVector Data = blockOf(99);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  ASSERT_TRUE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok);

  // Writing the same content after remount must dedup against the
  // restored chunk — the index was rebuilt from the image.
  const std::size_t ChunksBefore = Fresh->store().chunkCount();
  ASSERT_TRUE(Restored.writeBlocks(5, ByteSpan(Data.data(), Data.size())));
  EXPECT_EQ(Fresh->store().chunkCount(), ChunksBefore);
  EXPECT_EQ(Restored.stats().LiveChunks, 1u);
}

TEST_F(PersistFixture, DeadChunksStayCollectableAfterRemount) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 64;
  Volume Vol(*Pipeline, VolConfig);
  const ByteVector Data = blockOf(5);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(Vol.trim(0, 1)); // dead but uncollected
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  ASSERT_TRUE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok);
  EXPECT_EQ(Restored.stats().DeadChunks, 1u);
  EXPECT_EQ(Restored.collectGarbage(), 1u);
  EXPECT_EQ(Fresh->store().chunkCount(), 0u);
}

TEST_F(PersistFixture, EmptyVolumeImage) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 16;
  Volume Vol(*Pipeline, VolConfig);
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);
  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  ASSERT_TRUE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok);
  EXPECT_EQ(Restored.stats().MappedBlocks, 0u);
}

TEST_F(PersistFixture, RejectsBitFlipAnywhere) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 32;
  Volume Vol(*Pipeline, VolConfig);
  const ByteVector Data = blockOf(1);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  // Flip one byte at several offsets; every variant must be rejected.
  std::FILE *File = std::fopen(ImagePath.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  ByteVector Image(static_cast<std::size_t>(Size));
  ASSERT_EQ(std::fread(Image.data(), 1, Image.size(), File), Image.size());
  std::fclose(File);

  for (std::size_t Offset : {std::size_t{0}, std::size_t{9},
                             Image.size() / 2, Image.size() - 1}) {
    ByteVector Corrupt = Image;
    Corrupt[Offset] ^= 0x40;
    std::FILE *Out = std::fopen(ImagePath.c_str(), "wb");
    ASSERT_NE(Out, nullptr);
    ASSERT_EQ(std::fwrite(Corrupt.data(), 1, Corrupt.size(), Out),
              Corrupt.size());
    std::fclose(Out);

    auto Fresh = makePipeline();
    Volume Restored(*Fresh, VolConfig);
    const ImageResult Result =
        loadVolumeImage(ImagePath, *Fresh, Restored);
    EXPECT_FALSE(Result.Ok) << "offset " << Offset;
    // The trailer CRC covers the whole file, so every flip is typed as
    // image corruption (never a crash, never a partial load).
    EXPECT_EQ(Result.Status.code(), fault::ErrorCode::ImageCorrupt)
        << "offset " << Offset;
    EXPECT_EQ(Restored.stats().MappedBlocks, 0u) << "offset " << Offset;
  }
}

TEST_F(PersistFixture, SemanticCorruptionLeavesTargetUntouched) {
  // A CRC-valid image with an out-of-range mapping LBA exercises the
  // two-phase decode: validation fails *after* the CRC passes, and the
  // target pair must remain untouched and fully usable.
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 32;
  Volume Vol(*Pipeline, VolConfig);
  for (std::uint64_t Lba = 0; Lba < 4; ++Lba) {
    const ByteVector Data = blockOf(Lba + 1);
    ASSERT_TRUE(Vol.writeBlocks(Lba, ByteSpan(Data.data(), Data.size())));
  }
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  std::FILE *File = std::fopen(ImagePath.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  ByteVector Pristine(static_cast<std::size_t>(Size));
  ASSERT_EQ(std::fread(Pristine.data(), 1, Pristine.size(), File),
            Pristine.size());
  std::fclose(File);

  // With no snapshots the file tail is: ..., last 16-byte mapping
  // record, u64 snapshot count (0), u64 next snapshot id, u32 trailer
  // CRC — so the last record's LBA field sits 36 bytes from the end.
  // Point it past the volume and recompute the CRC so only semantic
  // validation can reject it.
  ByteVector Corrupt = Pristine;
  const std::size_t LbaOffset = Corrupt.size() - 4 - 8 - 8 - 16;
  const std::uint64_t BadLba = VolConfig.BlockCount + 999;
  storeLe64(Corrupt.data() + LbaOffset, BadLba);
  storeLe32(Corrupt.data() + Corrupt.size() - 4,
            crc32c(ByteSpan(Corrupt.data(), Corrupt.size() - 4)));
  {
    std::FILE *Out = std::fopen(ImagePath.c_str(), "wb");
    ASSERT_NE(Out, nullptr);
    ASSERT_EQ(std::fwrite(Corrupt.data(), 1, Corrupt.size(), Out),
              Corrupt.size());
    std::fclose(Out);
  }

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  const ImageResult Result = loadVolumeImage(ImagePath, *Fresh, Restored);
  ASSERT_FALSE(Result.Ok);
  EXPECT_EQ(Result.Status.code(), fault::ErrorCode::ImageCorrupt);
  EXPECT_EQ(Result.Status.detail(), BadLba);
  EXPECT_EQ(Restored.stats().MappedBlocks, 0u);
  EXPECT_EQ(Restored.stats().LiveChunks, 0u);

  // The very pair that saw the failed load must accept the pristine
  // image — proof no partial state leaked into pipeline or volume.
  {
    std::FILE *Out = std::fopen(ImagePath.c_str(), "wb");
    ASSERT_NE(Out, nullptr);
    ASSERT_EQ(std::fwrite(Pristine.data(), 1, Pristine.size(), Out),
              Pristine.size());
    std::fclose(Out);
  }
  const ImageResult Retry = loadVolumeImage(ImagePath, *Fresh, Restored);
  ASSERT_TRUE(Retry.Ok) << Retry.Message;
  for (std::uint64_t Lba = 0; Lba < 4; ++Lba) {
    const auto Read = Restored.readBlocks(Lba, 1);
    ASSERT_TRUE(Read.has_value());
    EXPECT_EQ(*Read, blockOf(Lba + 1)) << "LBA " << Lba;
  }
}

TEST_F(PersistFixture, RejectsGeometryMismatch) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 32;
  Volume Vol(*Pipeline, VolConfig);
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  auto Fresh = makePipeline();
  VolumeConfig Wrong;
  Wrong.BlockCount = 64;
  Volume Restored(*Fresh, Wrong);
  const ImageResult Result = loadVolumeImage(ImagePath, *Fresh, Restored);
  EXPECT_FALSE(Result.Ok);
  EXPECT_EQ(Result.Status.code(), fault::ErrorCode::StateMismatch);
}

TEST_F(PersistFixture, RejectsMissingFileAndGarbage) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 8;
  Volume Vol(*Pipeline, VolConfig);
  const ImageResult Missing =
      loadVolumeImage("/nonexistent/padre.img", *Pipeline, Vol);
  EXPECT_FALSE(Missing.Ok);
  EXPECT_EQ(Missing.Status.code(), fault::ErrorCode::IoError);

  std::FILE *File = std::fopen(ImagePath.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  std::fputs("this is not an image", File);
  std::fclose(File);
  const ImageResult Garbage = loadVolumeImage(ImagePath, *Pipeline, Vol);
  EXPECT_FALSE(Garbage.Ok);
  EXPECT_EQ(Garbage.Status.code(), fault::ErrorCode::ImageCorrupt);
}

TEST_F(PersistFixture, SnapshotsSurviveRemount) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 64;
  Volume Vol(*Pipeline, VolConfig);

  const ByteVector Before = blockOf(50);
  const ByteVector After = blockOf(51);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Before.data(), Before.size())));
  // A deleted snapshot advances the id counter past what the live
  // table shows; the image must persist the counter itself.
  ASSERT_TRUE(Vol.deleteSnapshot(Vol.createSnapshot()));
  const Volume::SnapshotId Snap = Vol.createSnapshot();
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(After.data(), After.size())));
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  ASSERT_TRUE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok);
  EXPECT_EQ(Restored.stats().Snapshots, 1u);
  EXPECT_EQ(Restored.nextSnapshotId(), Vol.nextSnapshotId());
  const auto Old = Restored.readSnapshotBlocks(Snap, 0, 1);
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(*Old, Before);
  EXPECT_EQ(*Restored.readBlocks(0, 1), After);

  // Snapshot chunk references survived: deleting the snapshot frees
  // the old chunk.
  ASSERT_TRUE(Restored.deleteSnapshot(Snap));
  EXPECT_EQ(Restored.collectGarbage(), 1u);
}

TEST_F(PersistFixture, LoaderNeverCrashesOnRandomGarbage) {
  // Fuzz the loader: random byte soup of assorted sizes, plus soups
  // that start with the valid magic/superblock prefix. Every variant
  // must be rejected cleanly (no crash, no partial state acceptance).
  Random Rng(0xF022);
  for (int Case = 0; Case < 60; ++Case) {
    ByteVector Garbage(16 + Rng.nextBelow(4096));
    Rng.fillBytes(Garbage.data(), Garbage.size());
    if (Case % 3 == 0 && Garbage.size() > 16) {
      // Valid magic + version so parsing reaches deeper code paths.
      storeLe64(Garbage.data(), 0x314D494552444150ull);
      storeLe32(Garbage.data() + 8, 3);
      storeLe32(Garbage.data() + 12, 4096);
    }
    std::FILE *File = std::fopen(ImagePath.c_str(), "wb");
    ASSERT_NE(File, nullptr);
    ASSERT_EQ(std::fwrite(Garbage.data(), 1, Garbage.size(), File),
              Garbage.size());
    std::fclose(File);

    auto Pipeline = makePipeline();
    VolumeConfig VolConfig;
    VolConfig.BlockCount = 32;
    Volume Vol(*Pipeline, VolConfig);
    const ImageResult Result =
        loadVolumeImage(ImagePath, *Pipeline, Vol);
    EXPECT_FALSE(Result.Ok) << "case " << Case;
    EXPECT_FALSE(Result.Message.empty());
  }
}

TEST_F(PersistFixture, TruncationAtEveryBoundaryIsRejected) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 32;
  Volume Vol(*Pipeline, VolConfig);
  const ByteVector Data = blockOf(7);
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  Vol.createSnapshot();
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  std::FILE *File = std::fopen(ImagePath.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  ByteVector Image(static_cast<std::size_t>(Size));
  ASSERT_EQ(std::fread(Image.data(), 1, Image.size(), File), Image.size());
  std::fclose(File);

  for (std::size_t Keep :
       {std::size_t{0}, std::size_t{8}, std::size_t{39},
        Image.size() / 4, Image.size() / 2, Image.size() - 5,
        Image.size() - 1}) {
    std::FILE *Out = std::fopen(ImagePath.c_str(), "wb");
    ASSERT_NE(Out, nullptr);
    ASSERT_EQ(std::fwrite(Image.data(), 1, Keep, Out), Keep);
    std::fclose(Out);
    auto Fresh = makePipeline();
    Volume Restored(*Fresh, VolConfig);
    EXPECT_FALSE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok)
        << "kept " << Keep << " of " << Image.size();
  }
}

TEST_F(PersistFixture, FullCycleWithWorkloadStream) {
  auto Pipeline = makePipeline();
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 2048;
  Volume Vol(*Pipeline, VolConfig);

  WorkloadConfig Load;
  Load.TotalBytes = 4ull << 20;
  Load.DedupRatio = 2.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  ASSERT_TRUE(Vol.writeBlocks(0, ByteSpan(Data.data(), Data.size())));
  ASSERT_TRUE(saveVolumeImage(ImagePath, Vol, *Pipeline).Ok);

  auto Fresh = makePipeline();
  Volume Restored(*Fresh, VolConfig);
  ASSERT_TRUE(loadVolumeImage(ImagePath, *Fresh, Restored).Ok);
  const auto Read =
      Restored.readBlocks(0, Data.size() / BlockSize);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Data);
}
