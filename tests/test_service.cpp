//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the multi-tenant volume service (src/service): quota
/// admission, weighted-fair dispatch, cross-tenant dedup bit-safety,
/// shard-count invariance, single-tenant pass-through parity with the
/// direct Volume path, the prioritized cache tier's deferral
/// lifecycle, and fault-plan drains through the dispatch layer.
///
//===----------------------------------------------------------------------===//

#include "OracleCheck.h"

#include "fault/FaultInjector.h"
#include "service/VolumeService.h"
#include "workload/Trace.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

constexpr std::size_t BlockSize = 4096;

PipelineConfig basePipeline(unsigned Shards = 1) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.Shards = Shards;
  return Config;
}

ServiceConfig baseService(unsigned Shards = 1) {
  ServiceConfig Config;
  Config.Pipeline = basePipeline(Shards);
  return Config;
}

/// Deterministic block content per tag.
ByteVector blockOf(std::uint64_t Tag) {
  ByteVector Data(BlockSize);
  fillTraceBlock(Tag, MutableByteSpan(Data.data(), Data.size()));
  return Data;
}

/// `Count` consecutive tagged blocks as one buffer.
ByteVector runOf(std::uint64_t BaseTag, std::uint64_t Count) {
  ByteVector Run;
  for (std::uint64_t I = 0; I < Count; ++I)
    appendBytes(Run, ByteSpan(blockOf(BaseTag + I).data(), BlockSize));
  return Run;
}

/// Per-lane modelled busy times of a pipeline, in microseconds.
std::vector<double> laneBusy(ReductionPipeline &Pipeline) {
  std::vector<double> Busy;
  for (unsigned R = 0; R < ResourceCount; ++R)
    Busy.push_back(Pipeline.ledger().busyMicros(static_cast<Resource>(R)));
  return Busy;
}

} // namespace

//===----------------------------------------------------------------------===//
// Single-tenant pass-through parity and shard-count invariance
//===----------------------------------------------------------------------===//

// A single tenant driven through the service must be bit-identical to
// the direct Volume path — chunks, recipes, mappings and per-lane
// ledger charges — at every index shard count.
TEST(ServiceParity, SingleTenantMatchesDirectVolumeAtEveryShardCount) {
  // The write sequence: a dup-heavy prefix, an overwrite, fresh tail.
  const std::vector<std::pair<std::uint64_t, ByteVector>> Writes = {
      {0, runOf(100, 16)},
      {16, runOf(100, 16)}, // duplicates of the prefix
      {8, runOf(500, 8)},   // overwrite in the middle
      {32, runOf(900, 16)},
  };

  // Reference: the direct Volume path on an unsharded index.
  ReductionPipeline RefPipeline(Platform::paper(), basePipeline(1));
  Volume RefVol(RefPipeline, VolumeConfig{256});
  for (const auto &[Lba, Data] : Writes)
    ASSERT_TRUE(RefVol.writeBlocks(
        Lba, ByteSpan(Data.data(), Data.size())));
  RefPipeline.finish();
  const std::vector<double> RefBusy = laneBusy(RefPipeline);
  const PipelineReport RefReport = RefPipeline.report();

  for (unsigned Shards : {1u, 2u, 4u, 7u}) {
    VolumeService Service(Platform::paper(), baseService(Shards));
    const auto Tenant = Service.addTenant("only", TenantConfig{256});
    for (const auto &[Lba, Data] : Writes)
      ASSERT_TRUE(Service.submitWrite(
          Tenant, Lba, ByteSpan(Data.data(), Data.size())));
    Service.finish();

    // Functional state: recipe, mapping, stored bytes.
    EXPECT_EQ(Service.pipeline().recipe().ChunkLocations,
              RefPipeline.recipe().ChunkLocations)
        << "shards=" << Shards;
    EXPECT_EQ(Service.pipeline().recipe().ChunkSizes,
              RefPipeline.recipe().ChunkSizes);
    EXPECT_EQ(Service.tenantVolume(Tenant).mapping(), RefVol.mapping());

    // Outcome counters.
    const PipelineReport Report = Service.pipeline().report();
    EXPECT_EQ(Report.UniqueChunks, RefReport.UniqueChunks);
    EXPECT_EQ(Report.DupChunks, RefReport.DupChunks);
    EXPECT_EQ(Report.DupFromBuffer, RefReport.DupFromBuffer);
    EXPECT_EQ(Report.DupFromTree, RefReport.DupFromTree);
    EXPECT_EQ(Report.StoredBytes, RefReport.StoredBytes);

    // Ledger charges, lane by lane.
    const std::vector<double> Busy = laneBusy(Service.pipeline());
    for (unsigned R = 0; R < ResourceCount; ++R)
      EXPECT_EQ(Busy[R], RefBusy[R])
          << "lane " << R << " shards=" << Shards;

    // Index totals are shard-invariant too.
    const FingerprintIndex &Index =
        Service.pipeline().dedupEngine()->index();
    const FingerprintIndex &RefIndex = RefPipeline.dedupEngine()->index();
    EXPECT_EQ(Index.shardCount(), Shards == 1 ? 1u : Shards);
    EXPECT_EQ(Index.uniqueInserts(), RefIndex.uniqueInserts());
    EXPECT_EQ(Index.bufferHits(), RefIndex.bufferHits());
    EXPECT_EQ(Index.treeHits(), RefIndex.treeHits());
    EXPECT_EQ(Index.treeEntries(), RefIndex.treeEntries());
    EXPECT_EQ(Index.memoryBytes(), RefIndex.memoryBytes());
  }
}

// Multi-tenant runs are shard-count invariant as well: same outcomes,
// same charges, and per-shard stats sum to the unsharded totals.
TEST(ServiceParity, MultiTenantShardCountInvariance) {
  auto Run = [](unsigned Shards) {
    VolumeService Service(Platform::paper(), baseService(Shards));
    const auto A = Service.addTenant("a", TenantConfig{128});
    const auto B = Service.addTenant("b", TenantConfig{128});
    const auto C = Service.addTenant("c", TenantConfig{128});
    const ByteVector Shared = runOf(100, 8);
    const ByteSpan SharedSpan(Shared.data(), Shared.size());
    EXPECT_TRUE(Service.submitWrite(A, 0, SharedSpan));
    EXPECT_TRUE(Service.submitWrite(B, 4, SharedSpan));
    const ByteVector Own = runOf(700, 12);
    EXPECT_TRUE(Service.submitWrite(C, 0, ByteSpan(Own.data(), Own.size())));
    EXPECT_TRUE(Service.submitWrite(A, 16, SharedSpan));
    Service.finish();
    return std::make_tuple(Service.pipeline().recipe().ChunkLocations,
                           laneBusy(Service.pipeline()),
                           Service.pipeline().report().StoredBytes);
  };

  const auto Reference = Run(1);
  for (unsigned Shards : {2u, 5u}) {
    const auto Sharded = Run(Shards);
    EXPECT_EQ(std::get<0>(Sharded), std::get<0>(Reference));
    EXPECT_EQ(std::get<1>(Sharded), std::get<1>(Reference));
    EXPECT_EQ(std::get<2>(Sharded), std::get<2>(Reference));
  }

  // Per-shard stats partition the bin space and sum to the totals.
  VolumeService Service(Platform::paper(), baseService(4));
  const auto T = Service.addTenant("t", TenantConfig{128});
  const ByteVector Data = runOf(3000, 32);
  ASSERT_TRUE(Service.submitWrite(T, 0, ByteSpan(Data.data(), Data.size())));
  Service.finish();
  const FingerprintIndex &Index = Service.pipeline().dedupEngine()->index();
  std::uint64_t Inserts = 0;
  std::size_t Entries = 0;
  std::uint32_t NextBin = 0;
  for (unsigned S = 0; S < Index.shardCount(); ++S) {
    const IndexShardStats Stats = Index.shardStats(S);
    EXPECT_EQ(Stats.BinBegin, NextBin);
    EXPECT_LE(Stats.BinBegin, Stats.BinEnd);
    NextBin = Stats.BinEnd;
    Inserts += Stats.UniqueInserts;
    Entries += Stats.TreeEntries;
  }
  EXPECT_EQ(NextBin, Index.layout().binCount());
  EXPECT_EQ(Inserts, Index.uniqueInserts());
  EXPECT_EQ(Entries, Index.treeEntries());
}

//===----------------------------------------------------------------------===//
// Quotas and weighted-fair dispatch
//===----------------------------------------------------------------------===//

TEST(ServiceAdmission, QuotaRejectsBeforeAnyResourceIsCharged) {
  VolumeService Service(Platform::paper(), baseService());
  const auto Small = Service.addTenant(
      "small", TenantConfig{64, /*QuotaBytes=*/8 * BlockSize, 1});
  const auto Big = Service.addTenant("big", TenantConfig{64, 0, 1});

  const ByteVector Four = runOf(10, 4);
  const ByteSpan FourSpan(Four.data(), Four.size());
  EXPECT_TRUE(Service.submitWrite(Small, 0, FourSpan));
  EXPECT_TRUE(Service.submitWrite(Small, 4, FourSpan));
  // Third write would exceed the 8-block quota: rejected at admission,
  // before any modelled time is charged.
  const double CpuBefore =
      Service.pipeline().ledger().busyMicros(Resource::CpuPool);
  EXPECT_FALSE(Service.submitWrite(Small, 8, FourSpan));
  EXPECT_EQ(Service.pipeline().ledger().busyMicros(Resource::CpuPool),
            CpuBefore);
  EXPECT_EQ(Service.tenantStats(Small).RejectedBytes, 4 * BlockSize);

  // The unlimited tenant is unaffected.
  EXPECT_TRUE(Service.submitWrite(Big, 0, FourSpan));
  Service.finish();
  EXPECT_EQ(Service.tenantStats(Small).AdmittedBytes, 8 * BlockSize);
  EXPECT_EQ(Service.tenantStats(Big).AdmittedBytes, 4 * BlockSize);

  // Accepted data is intact; the rejected range stays unmapped.
  const auto Read = Service.readBlocks(Small, 8, 4);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ((*Read)[0], 0);
}

TEST(ServiceAdmission, RejectsMisalignedAndOutOfRangeWrites) {
  VolumeService Service(Platform::paper(), baseService());
  const auto T = Service.addTenant("t", TenantConfig{16});
  const ByteVector One = runOf(1, 1);
  EXPECT_FALSE(Service.submitWrite(
      T, 0, ByteSpan(One.data(), BlockSize / 2))); // misaligned
  EXPECT_FALSE(Service.submitWrite(
      T, 16, ByteSpan(One.data(), BlockSize))); // out of range
  EXPECT_TRUE(Service.submitWrite(T, 15, ByteSpan(One.data(), BlockSize)));
}

TEST(ServiceDispatch, WeightedFairSharesOneRoundByWeight) {
  ServiceConfig Config = baseService();
  Config.DispatchRunBlocks = 4;
  VolumeService Service(Platform::paper(), Config);
  const auto Light = Service.addTenant("light", TenantConfig{256, 0, 1});
  const auto Heavy = Service.addTenant("heavy", TenantConfig{256, 0, 3});

  // Both tenants queue 32 single-block writes.
  for (std::uint64_t I = 0; I < 32; ++I) {
    const ByteVector A = blockOf(1000 + I), B = blockOf(2000 + I);
    ASSERT_TRUE(Service.submitWrite(Light, I, ByteSpan(A.data(), BlockSize)));
    ASSERT_TRUE(Service.submitWrite(Heavy, I, ByteSpan(B.data(), BlockSize)));
  }

  // One round: credit = Weight x DispatchRunBlocks blocks each.
  EXPECT_TRUE(Service.pump());
  EXPECT_EQ(Service.tenantStats(Light).AdmittedBytes, 4 * BlockSize);
  EXPECT_EQ(Service.tenantStats(Heavy).AdmittedBytes, 12 * BlockSize);

  // Draining finishes both queues regardless of weights.
  Service.finish();
  EXPECT_EQ(Service.tenantStats(Light).AdmittedBytes, 32 * BlockSize);
  EXPECT_EQ(Service.tenantStats(Heavy).AdmittedBytes, 32 * BlockSize);
  EXPECT_EQ(Service.tenantStats(Light).QueuedBytes, 0u);
}

//===----------------------------------------------------------------------===//
// Cross-tenant dedup bit-safety
//===----------------------------------------------------------------------===//

TEST(ServiceIsolation, CrossTenantSharingIsBitSafe) {
  VolumeService Service(Platform::paper(), baseService(3));
  const auto A = Service.addTenant("a", TenantConfig{64});
  const auto B = Service.addTenant("b", TenantConfig{64});
  const auto C = Service.addTenant("c", TenantConfig{64});

  const ByteVector Shared = runOf(42, 8);
  const ByteSpan SharedSpan(Shared.data(), Shared.size());
  ASSERT_TRUE(Service.submitWrite(A, 0, SharedSpan));
  ASSERT_TRUE(Service.submitWrite(B, 8, SharedSpan));
  const ByteVector Private = runOf(9000, 8);
  ASSERT_TRUE(Service.submitWrite(C, 0,
                                  ByteSpan(Private.data(), Private.size())));
  Service.finish();

  // The shared image is stored once (cross-tenant dedup)…
  EXPECT_GT(Service.pipeline().report().DupChunks, 0u);

  // …and every tenant reads exactly its own bytes.
  const auto ReadA = Service.readBlocks(A, 0, 8);
  const auto ReadB = Service.readBlocks(B, 8, 8);
  const auto ReadC = Service.readBlocks(C, 0, 8);
  ASSERT_TRUE(ReadA && ReadB && ReadC);
  EXPECT_EQ(*ReadA, Shared);
  EXPECT_EQ(*ReadB, Shared);
  EXPECT_EQ(*ReadC, Private);

  // A tenant that never wrote the shared content cannot see it: C's
  // other LBAs read as zeros, not as some other tenant's plaintext.
  const auto Unwritten = Service.readBlocks(C, 8, 8);
  ASSERT_TRUE(Unwritten.has_value());
  EXPECT_TRUE(std::all_of(Unwritten->begin(), Unwritten->end(),
                          [](std::uint8_t V) { return V == 0; }));

  // Trimming one tenant's copy must not damage the other's: the chunk
  // survives via B's references.
  ASSERT_TRUE(Service.tenantVolume(A).trim(0, 64));
  Service.tenantVolume(A).collectGarbage();
  const auto ReadBAfter = Service.readBlocks(B, 8, 8);
  ASSERT_TRUE(ReadBAfter.has_value());
  EXPECT_EQ(*ReadBAfter, Shared);
}

//===----------------------------------------------------------------------===//
// Coalesced dispatch: one combined pipeline ingest per round
//===----------------------------------------------------------------------===//

// CoalesceDispatch only regroups batches — it must not change any
// outcome: locations, recipes, mappings, tenant stats and read-back
// all match per-run dispatch exactly, while the combined ingests fill
// the scheduler's overlap window with fewer, deeper batches.
TEST(ServiceCoalesce, CoalescedDispatchKeepsResultsBitIdentical) {
  auto Run = [](bool Coalesce) {
    ServiceConfig Config = baseService(2);
    Config.CoalesceDispatch = Coalesce;
    Config.DispatchRunBlocks = 8;
    Config.IndexMemoryBudget = 64 * 32; // forces a deferred (raw) path
    Config.Pipeline.PipelineDepth = 4;
    auto Service =
        std::make_unique<VolumeService>(Platform::paper(), Config);
    const auto A = Service->addTenant("hot", TenantConfig{512});
    const auto B = Service->addTenant("cold", TenantConfig{512});
    const auto C = Service->addTenant("shared", TenantConfig{512});
    std::uint64_t ColdTag = 100000;
    for (std::uint64_t Round = 0; Round < 16; ++Round) {
      const ByteVector Hot = runOf(500, 8);
      EXPECT_TRUE(Service->submitWrite(A, (Round % 8) * 8,
                                       ByteSpan(Hot.data(), Hot.size())));
      const ByteVector Cold = runOf(ColdTag, 8);
      ColdTag += 8;
      EXPECT_TRUE(Service->submitWrite(B, (Round * 8) % 512,
                                       ByteSpan(Cold.data(), Cold.size())));
      const ByteVector Shared = runOf(2000 + (Round % 4) * 8, 8);
      EXPECT_TRUE(Service->submitWrite(
          C, (Round * 8) % 512, ByteSpan(Shared.data(), Shared.size())));
      Service->pump();
    }
    Service->finish();
    EXPECT_EQ(Service->pipeline().scheduler().inFlight(), 0u);
    return Service;
  };

  auto Base = Run(false);
  auto Co = Run(true);

  // Functional state is bit-identical: the chunk order is preserved,
  // so every chunk lands at the same location either way.
  EXPECT_EQ(Co->pipeline().recipe().ChunkLocations,
            Base->pipeline().recipe().ChunkLocations);
  EXPECT_EQ(Co->pipeline().recipe().ChunkSizes,
            Base->pipeline().recipe().ChunkSizes);
  const PipelineReport BaseReport = Base->pipeline().report();
  const PipelineReport CoReport = Co->pipeline().report();
  EXPECT_EQ(CoReport.UniqueChunks, BaseReport.UniqueChunks);
  EXPECT_EQ(CoReport.DupChunks, BaseReport.DupChunks);
  EXPECT_EQ(CoReport.StoredBytes, BaseReport.StoredBytes);

  for (VolumeService::TenantId T = 0; T < 3; ++T) {
    const TenantStats BaseStats = Base->tenantStats(T);
    const TenantStats CoStats = Co->tenantStats(T);
    EXPECT_EQ(CoStats.AdmittedBytes, BaseStats.AdmittedBytes) << T;
    EXPECT_EQ(CoStats.DeferredBytes, BaseStats.DeferredBytes) << T;
    EXPECT_EQ(CoStats.RejectedBytes, BaseStats.RejectedBytes) << T;
    EXPECT_EQ(CoStats.Resident, BaseStats.Resident) << T;
    EXPECT_EQ(Co->tenantVolume(T).mapping(),
              Base->tenantVolume(T).mapping())
        << T;
    const auto BaseRead = Base->readBlocks(T, 0, 64);
    const auto CoRead = Co->readBlocks(T, 0, 64);
    ASSERT_TRUE(BaseRead && CoRead) << T;
    EXPECT_EQ(*CoRead, *BaseRead) << T;
  }

  // The point of coalescing: the same chunk stream flows through
  // fewer, deeper batches.
  EXPECT_LT(Co->pipeline().scheduler().batchesScheduled(),
            Base->pipeline().scheduler().batchesScheduled());
}

//===----------------------------------------------------------------------===//
// Prioritized cache tier and the deferred-dedup lifecycle
//===----------------------------------------------------------------------===//

TEST(ServiceCacheTier, LowLocalityTenantsAreDeferredAndSweptLater) {
  ServiceConfig Config = baseService();
  Config.IndexMemoryBudget = 64 * 32; // a few hundred entries
  Config.Policy = CachePolicy::Prioritized;
  Config.DispatchRunBlocks = 8;
  VolumeService Service(Platform::paper(), Config);

  const auto Hot = Service.addTenant("hot", TenantConfig{512});
  const auto Cold = Service.addTenant("cold", TenantConfig{512});

  // Hot tenant: the same 8 blocks over and over (locality ≈ 1).
  // Cold tenant: fresh blocks every time (locality ≈ 0).
  std::uint64_t ColdTag = 100000;
  for (std::uint64_t Round = 0; Round < 24; ++Round) {
    const ByteVector HotData = runOf(500, 8);
    ASSERT_TRUE(Service.submitWrite(Hot, (Round % 8) * 8,
                                    ByteSpan(HotData.data(),
                                             HotData.size())));
    const ByteVector ColdData = runOf(ColdTag, 8);
    ColdTag += 8;
    ASSERT_TRUE(Service.submitWrite(Cold, (Round * 8) % 512,
                                    ByteSpan(ColdData.data(),
                                             ColdData.size())));
    Service.pump();
  }
  Service.drain();

  // The hot stream stays resident; the cold one is demoted to the
  // deferred (raw) path once its locality score sinks.
  EXPECT_TRUE(Service.tenantStats(Hot).Resident);
  EXPECT_FALSE(Service.tenantStats(Cold).Resident);
  EXPECT_GT(Service.tenantStats(Cold).DeferredBytes, 0u);
  EXPECT_EQ(Service.tenantStats(Hot).DeferredBytes, 0u);
  EXPECT_GT(Service.tenantStats(Hot).LocalityScore,
            Service.tenantStats(Cold).LocalityScore);

  // The deferred-dedup pass reduces the raw blocks and expires the
  // non-resident tenant's transient index entries.
  const std::size_t EntriesBefore =
      Service.pipeline().dedupEngine()->index().treeEntries() +
      Service.tenantStats(Cold).TrackedEntries;
  const ServiceSweepStats Sweep = Service.sweepDeferred();
  EXPECT_EQ(Sweep.TenantsSwept, 1u);
  EXPECT_GT(Sweep.BlocksProcessed, 0u);
  EXPECT_GT(Sweep.EntriesExpired, 0u);
  (void)EntriesBefore;

  // Both tenants read back intact after the whole lifecycle.
  const auto HotRead = Service.readBlocks(Hot, 0, 8);
  ASSERT_TRUE(HotRead.has_value());
  EXPECT_EQ(*HotRead, runOf(500, 8));
}

//===----------------------------------------------------------------------===//
// Fault-plan drain through the dispatch layer
//===----------------------------------------------------------------------===//

TEST(ServiceFaults, FaultPlanDrainRecoversAndStaysBitExact) {
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan(
      "seed=7;ssd-write:error:at=0,2,5", Plan, Error))
      << Error;
  fault::FaultInjector Injector(Plan);

  ServiceConfig Config = baseService(2);
  Config.Pipeline.Faults = &Injector;
  VolumeService Service(Platform::paper(), Config);
  const auto A = Service.addTenant("a", TenantConfig{128});
  const auto B = Service.addTenant("b", TenantConfig{128});

  const ByteVector DataA = runOf(1, 64);
  const ByteVector DataB = runOf(5000, 64);
  ASSERT_TRUE(Service.submitWrite(A, 0, ByteSpan(DataA.data(),
                                                 DataA.size())));
  ASSERT_TRUE(Service.submitWrite(B, 0, ByteSpan(DataB.data(),
                                                 DataB.size())));
  Service.finish();

  // Faults actually fired during the drain…
  EXPECT_GT(Injector.injected(fault::FaultKind::LatentSectorError), 0u);

  // …and every tenant's data is still byte-exact (transient write
  // faults are retried inside the SSD model).
  const auto ReadA = Service.readBlocks(A, 0, 64);
  const auto ReadB = Service.readBlocks(B, 0, 64);
  ASSERT_TRUE(ReadA && ReadB);
  EXPECT_EQ(*ReadA, DataA);
  EXPECT_EQ(*ReadB, DataB);
}

//===----------------------------------------------------------------------===//
// Concurrent-index opt-in: bit parity through the whole service stack
//===----------------------------------------------------------------------===//

// ServiceConfig::ConcurrentIndex swaps the lock-free index under the
// entire multi-tenant stack; every observable — recipes, per-lane
// ledger charges, stored bytes, tenant stats — must be bit-identical
// to the serial index.
TEST(ServiceConcurrentIndex, BitIdenticalToSerialIncludingLedger) {
  auto Run = [](bool Concurrent, unsigned Shards) {
    ServiceConfig Config = baseService(Shards);
    Config.ConcurrentIndex = Concurrent;
    VolumeService Service(Platform::paper(), Config);
    const auto A = Service.addTenant("a", TenantConfig{128});
    const auto B = Service.addTenant("b", TenantConfig{128});
    const ByteVector Shared = runOf(100, 8);
    const ByteSpan SharedSpan(Shared.data(), Shared.size());
    EXPECT_TRUE(Service.submitWrite(A, 0, SharedSpan));
    EXPECT_TRUE(Service.submitWrite(B, 4, SharedSpan));
    const ByteVector Own = runOf(700, 12);
    EXPECT_TRUE(Service.submitWrite(B, 32, ByteSpan(Own.data(), Own.size())));
    Service.finish();
    return std::make_tuple(Service.pipeline().recipe().ChunkLocations,
                           laneBusy(Service.pipeline()),
                           Service.pipeline().report().StoredBytes,
                           Service.tenantStats(A).AdmittedBytes,
                           Service.readBlocks(B, 4, 8));
  };
  const auto Reference = Run(false, 1);
  for (unsigned Shards : {1u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(Shards));
    const auto Concurrent = Run(true, Shards);
    EXPECT_EQ(std::get<0>(Concurrent), std::get<0>(Reference));
    EXPECT_EQ(std::get<1>(Concurrent), std::get<1>(Reference));
    EXPECT_EQ(std::get<2>(Concurrent), std::get<2>(Reference));
    EXPECT_EQ(std::get<3>(Concurrent), std::get<3>(Reference));
    EXPECT_EQ(std::get<4>(Concurrent), std::get<4>(Reference));
  }
}

// The harness the hotpath suite uses, pointed at the exact index
// configuration the service layer builds (BinBits=8, budgeted
// removals included via the op mix's Remove share).
TEST(ServiceConcurrentIndex, OracleReplayOnServiceIndexConfig) {
  const DedupIndexConfig Serial = basePipeline().Dedup.Index;
  DedupIndexConfig Concurrent = Serial;
  Concurrent.Concurrent = true;
  Concurrent.Shards = 4;
  Random Rng(0x5EC1);
  const std::vector<oracle::IndexOp> Ops =
      oracle::randomOps(Rng, 250, /*Universe=*/1024);
  oracle::replayConfigsAndCompare(Serial, Concurrent, Ops);
}
