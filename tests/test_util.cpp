//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the util module: thread pool, PRNG, statistics, byte
/// helpers.
///
//===----------------------------------------------------------------------===//

#include "util/Bytes.h"
#include "util/Random.h"
#include "util/Stats.h"
#include "util/StopWatch.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <set>

using namespace padre;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.waitIdle();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, Hits.size(),
                   [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
  for (const auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.parallelFor(5, 5, [&Ran](std::size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, SlicesAreDisjointAndComplete) {
  ThreadPool Pool(3);
  std::mutex Mutex;
  std::vector<std::pair<std::size_t, std::size_t>> Slices;
  Pool.parallelForSlices(10, 107,
                         [&](std::size_t Begin, std::size_t End, unsigned) {
                           std::lock_guard<std::mutex> Lock(Mutex);
                           Slices.push_back({Begin, End});
                         });
  std::sort(Slices.begin(), Slices.end());
  std::size_t Expected = 10;
  for (const auto &[Begin, End] : Slices) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_LT(Begin, End);
    Expected = End;
  }
  EXPECT_EQ(Expected, 107u);
}

TEST(ThreadPool, SliceIndexIsBounded) {
  ThreadPool Pool(4);
  std::atomic<unsigned> MaxIndex{0};
  Pool.parallelForSlices(0, 1000,
                         [&](std::size_t, std::size_t, unsigned Index) {
                           unsigned Current = MaxIndex.load();
                           while (Index > Current &&
                                  !MaxIndex.compare_exchange_weak(Current,
                                                                  Index)) {
                           }
                         });
  EXPECT_LT(MaxIndex.load(), Pool.size());
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<int> Counter{0};
  Pool.parallelFor(0, 50, [&Counter](std::size_t) { Counter.fetch_add(1); });
  EXPECT_EQ(Counter.load(), 50);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicForSameSeed) {
  Random A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Random, DifferentSeedsDiverge) {
  Random A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    Equal += A.nextU64() == B.nextU64();
  EXPECT_LT(Equal, 3);
}

TEST(Random, NextBelowStaysInRange) {
  Random Rng(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random Rng(9);
  for (int I = 0; I < 1000; ++I) {
    const double Value = Rng.nextDouble();
    EXPECT_GE(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(Random, NextBoolMatchesProbability) {
  Random Rng(11);
  int Trues = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    Trues += Rng.nextBool(0.3);
  EXPECT_NEAR(static_cast<double>(Trues) / Trials, 0.3, 0.02);
}

TEST(Random, FillBytesIsDeterministicAndCoversBuffer) {
  Random A(5), B(5);
  std::uint8_t BufA[37], BufB[37];
  A.fillBytes(BufA, sizeof(BufA));
  B.fillBytes(BufB, sizeof(BufB));
  EXPECT_EQ(0, std::memcmp(BufA, BufB, sizeof(BufA)));
  // Not all bytes equal (overwhelmingly likely for a working PRNG).
  std::set<std::uint8_t> Distinct(BufA, BufA + sizeof(BufA));
  EXPECT_GT(Distinct.size(), 8u);
}

TEST(Random, ReseedResetsStream) {
  Random Rng(77);
  const std::uint64_t First = Rng.nextU64();
  Rng.nextU64();
  Rng.reseed(77);
  EXPECT_EQ(Rng.nextU64(), First);
}

//===----------------------------------------------------------------------===//
// RunningStats
//===----------------------------------------------------------------------===//

TEST(RunningStats, BasicMoments) {
  RunningStats Stats;
  for (double Value : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stats.add(Value);
  EXPECT_EQ(Stats.count(), 8u);
  EXPECT_DOUBLE_EQ(Stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(Stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(Stats.max(), 9.0);
  EXPECT_NEAR(Stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats Stats;
  EXPECT_EQ(Stats.count(), 0u);
  EXPECT_EQ(Stats.mean(), 0.0);
  EXPECT_EQ(Stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats All, A, B;
  Random Rng(3);
  for (int I = 0; I < 1000; ++I) {
    const double Value = Rng.nextDouble() * 10.0;
    All.add(Value);
    (I % 2 == 0 ? A : B).add(Value);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(RunningStats, MergeIntoEmpty) {
  RunningStats A, B;
  B.add(1.0);
  B.add(3.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), 2.0);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, PercentilesOfUniformData) {
  Histogram Hist(100.0, 100);
  for (int I = 0; I < 100; ++I)
    Hist.add(static_cast<double>(I) + 0.5);
  EXPECT_NEAR(Hist.percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(Hist.percentile(95.0), 95.0, 1.5);
}

TEST(Histogram, OverflowGoesToMax) {
  Histogram Hist(10.0, 10);
  Hist.add(5.0);
  Hist.add(1000.0);
  EXPECT_DOUBLE_EQ(Hist.percentile(100.0), 1000.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram Hist(10.0, 10);
  Hist.add(1.0);
  Hist.add(2.0);
  EXPECT_NE(Hist.summary().find("count=2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bytes helpers
//===----------------------------------------------------------------------===//

TEST(Bytes, LittleEndianRoundTrip) {
  std::uint8_t Buffer[8];
  storeLe16(Buffer, 0xBEEF);
  EXPECT_EQ(loadLe16(Buffer), 0xBEEF);
  storeLe32(Buffer, 0xDEADBEEFu);
  EXPECT_EQ(loadLe32(Buffer), 0xDEADBEEFu);
  storeLe64(Buffer, 0x0123456789ABCDEFull);
  EXPECT_EQ(loadLe64(Buffer), 0x0123456789ABCDEFull);
}

TEST(Bytes, LittleEndianByteOrder) {
  std::uint8_t Buffer[4];
  storeLe32(Buffer, 0x11223344u);
  EXPECT_EQ(Buffer[0], 0x44);
  EXPECT_EQ(Buffer[3], 0x11);
}

TEST(Bytes, HexFormatting) {
  const std::uint8_t Data[] = {0xDE, 0xAD, 0x00, 0xFF};
  EXPECT_EQ(toHex(ByteSpan(Data, 4)), "dead00ff");
  EXPECT_EQ(toHex(ByteSpan(Data, 0)), "");
}

TEST(Bytes, SizeFormatting) {
  EXPECT_EQ(formatSize(512), "512 B");
  EXPECT_EQ(formatSize(4096), "4.00 KiB");
  EXPECT_EQ(formatSize(3ull << 30), "3.00 GiB");
}

TEST(Bytes, ThroughputFormatting) {
  EXPECT_EQ(formatThroughput(1e6, 1.0), "1.0 MB/s");
  EXPECT_EQ(formatThroughput(1.0, 0.0), "inf");
}

TEST(Bytes, AppendBytes) {
  ByteVector Out = {1, 2};
  const std::uint8_t More[] = {3, 4, 5};
  appendBytes(Out, ByteSpan(More, 3));
  EXPECT_EQ(Out, (ByteVector{1, 2, 3, 4, 5}));
}

TEST(StopWatch, MeasuresForwardTime) {
  StopWatch Watch;
  const double First = Watch.seconds();
  EXPECT_GE(First, 0.0);
  EXPECT_GE(Watch.seconds(), First);
  Watch.restart();
  EXPECT_LT(Watch.seconds(), 1.0);
}
