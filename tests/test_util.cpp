//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the util module: thread pool, PRNG, statistics, byte
/// helpers.
///
//===----------------------------------------------------------------------===//

#include "util/Arena.h"
#include "util/Bytes.h"
#include "util/Random.h"
#include "util/Stats.h"
#include "util/StopWatch.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <set>

using namespace padre;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.waitIdle();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, Hits.size(),
                   [&Hits](std::size_t I) { Hits[I].fetch_add(1); });
  for (const auto &Hit : Hits)
    EXPECT_EQ(Hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool Pool(2);
  bool Ran = false;
  Pool.parallelFor(5, 5, [&Ran](std::size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, SlicesAreDisjointAndComplete) {
  ThreadPool Pool(3);
  std::mutex Mutex;
  std::vector<std::pair<std::size_t, std::size_t>> Slices;
  Pool.parallelForSlices(10, 107,
                         [&](std::size_t Begin, std::size_t End, unsigned) {
                           std::lock_guard<std::mutex> Lock(Mutex);
                           Slices.push_back({Begin, End});
                         });
  std::sort(Slices.begin(), Slices.end());
  std::size_t Expected = 10;
  for (const auto &[Begin, End] : Slices) {
    EXPECT_EQ(Begin, Expected);
    EXPECT_LT(Begin, End);
    Expected = End;
  }
  EXPECT_EQ(Expected, 107u);
}

TEST(ThreadPool, SliceIndexIsBounded) {
  ThreadPool Pool(4);
  std::atomic<unsigned> MaxIndex{0};
  Pool.parallelForSlices(0, 1000,
                         [&](std::size_t, std::size_t, unsigned Index) {
                           unsigned Current = MaxIndex.load();
                           while (Index > Current &&
                                  !MaxIndex.compare_exchange_weak(Current,
                                                                  Index)) {
                           }
                         });
  EXPECT_LT(MaxIndex.load(), Pool.size());
}

TEST(ThreadPool, SingleWorkerPoolStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<int> Counter{0};
  Pool.parallelFor(0, 50, [&Counter](std::size_t) { Counter.fetch_add(1); });
  EXPECT_EQ(Counter.load(), 50);
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(Random, DeterministicForSameSeed) {
  Random A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextU64(), B.nextU64());
}

TEST(Random, DifferentSeedsDiverge) {
  Random A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 100; ++I)
    Equal += A.nextU64() == B.nextU64();
  EXPECT_LT(Equal, 3);
}

TEST(Random, NextBelowStaysInRange) {
  Random Rng(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Random Rng(9);
  for (int I = 0; I < 1000; ++I) {
    const double Value = Rng.nextDouble();
    EXPECT_GE(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(Random, NextBoolMatchesProbability) {
  Random Rng(11);
  int Trues = 0;
  const int Trials = 20000;
  for (int I = 0; I < Trials; ++I)
    Trues += Rng.nextBool(0.3);
  EXPECT_NEAR(static_cast<double>(Trues) / Trials, 0.3, 0.02);
}

TEST(Random, FillBytesIsDeterministicAndCoversBuffer) {
  Random A(5), B(5);
  std::uint8_t BufA[37], BufB[37];
  A.fillBytes(BufA, sizeof(BufA));
  B.fillBytes(BufB, sizeof(BufB));
  EXPECT_EQ(0, std::memcmp(BufA, BufB, sizeof(BufA)));
  // Not all bytes equal (overwhelmingly likely for a working PRNG).
  std::set<std::uint8_t> Distinct(BufA, BufA + sizeof(BufA));
  EXPECT_GT(Distinct.size(), 8u);
}

TEST(Random, ReseedResetsStream) {
  Random Rng(77);
  const std::uint64_t First = Rng.nextU64();
  Rng.nextU64();
  Rng.reseed(77);
  EXPECT_EQ(Rng.nextU64(), First);
}

//===----------------------------------------------------------------------===//
// RunningStats
//===----------------------------------------------------------------------===//

TEST(RunningStats, BasicMoments) {
  RunningStats Stats;
  for (double Value : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    Stats.add(Value);
  EXPECT_EQ(Stats.count(), 8u);
  EXPECT_DOUBLE_EQ(Stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(Stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(Stats.max(), 9.0);
  EXPECT_NEAR(Stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats Stats;
  EXPECT_EQ(Stats.count(), 0u);
  EXPECT_EQ(Stats.mean(), 0.0);
  EXPECT_EQ(Stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats All, A, B;
  Random Rng(3);
  for (int I = 0; I < 1000; ++I) {
    const double Value = Rng.nextDouble() * 10.0;
    All.add(Value);
    (I % 2 == 0 ? A : B).add(Value);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(RunningStats, MergeIntoEmpty) {
  RunningStats A, B;
  B.add(1.0);
  B.add(3.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 2u);
  EXPECT_DOUBLE_EQ(A.mean(), 2.0);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, PercentilesOfUniformData) {
  Histogram Hist(100.0, 100);
  for (int I = 0; I < 100; ++I)
    Hist.add(static_cast<double>(I) + 0.5);
  EXPECT_NEAR(Hist.percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(Hist.percentile(95.0), 95.0, 1.5);
}

TEST(Histogram, OverflowGoesToMax) {
  Histogram Hist(10.0, 10);
  Hist.add(5.0);
  Hist.add(1000.0);
  EXPECT_DOUBLE_EQ(Hist.percentile(100.0), 1000.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram Hist(10.0, 10);
  Hist.add(1.0);
  Hist.add(2.0);
  EXPECT_NE(Hist.summary().find("count=2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Bytes helpers
//===----------------------------------------------------------------------===//

TEST(Bytes, LittleEndianRoundTrip) {
  std::uint8_t Buffer[8];
  storeLe16(Buffer, 0xBEEF);
  EXPECT_EQ(loadLe16(Buffer), 0xBEEF);
  storeLe32(Buffer, 0xDEADBEEFu);
  EXPECT_EQ(loadLe32(Buffer), 0xDEADBEEFu);
  storeLe64(Buffer, 0x0123456789ABCDEFull);
  EXPECT_EQ(loadLe64(Buffer), 0x0123456789ABCDEFull);
}

TEST(Bytes, LittleEndianByteOrder) {
  std::uint8_t Buffer[4];
  storeLe32(Buffer, 0x11223344u);
  EXPECT_EQ(Buffer[0], 0x44);
  EXPECT_EQ(Buffer[3], 0x11);
}

TEST(Bytes, HexFormatting) {
  const std::uint8_t Data[] = {0xDE, 0xAD, 0x00, 0xFF};
  EXPECT_EQ(toHex(ByteSpan(Data, 4)), "dead00ff");
  EXPECT_EQ(toHex(ByteSpan(Data, 0)), "");
}

TEST(Bytes, SizeFormatting) {
  EXPECT_EQ(formatSize(512), "512 B");
  EXPECT_EQ(formatSize(4096), "4.00 KiB");
  EXPECT_EQ(formatSize(3ull << 30), "3.00 GiB");
}

TEST(Bytes, ThroughputFormatting) {
  EXPECT_EQ(formatThroughput(1e6, 1.0), "1.0 MB/s");
  EXPECT_EQ(formatThroughput(1.0, 0.0), "inf");
}

TEST(Bytes, AppendBytes) {
  ByteVector Out = {1, 2};
  const std::uint8_t More[] = {3, 4, 5};
  appendBytes(Out, ByteSpan(More, 3));
  EXPECT_EQ(Out, (ByteVector{1, 2, 3, 4, 5}));
}

TEST(StopWatch, MeasuresForwardTime) {
  StopWatch Watch;
  const double First = Watch.seconds();
  EXPECT_GE(First, 0.0);
  EXPECT_GE(Watch.seconds(), First);
  Watch.restart();
  EXPECT_LT(Watch.seconds(), 1.0);
}

//===----------------------------------------------------------------------===//
// Arena: bump allocation, poisoned reuse, retention policy
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena A(256);
  const std::span<std::uint64_t> Words = A.allocateSpan<std::uint64_t>(8);
  const std::span<std::uint8_t> Bytes = A.allocateSpan<std::uint8_t>(13);
  const std::span<double> Doubles = A.allocateSpan<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Words.data()) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(Doubles.data()) % 8, 0u);
  // Fill each span with a distinct pattern; none may alias another.
  std::fill(Words.begin(), Words.end(), 0x1111111111111111ull);
  std::fill(Bytes.begin(), Bytes.end(), std::uint8_t(0x22));
  std::fill(Doubles.begin(), Doubles.end(), 3.0);
  EXPECT_TRUE(std::all_of(Words.begin(), Words.end(),
                          [](std::uint64_t W) {
                            return W == 0x1111111111111111ull;
                          }));
  EXPECT_TRUE(std::all_of(Bytes.begin(), Bytes.end(),
                          [](std::uint8_t B) { return B == 0x22; }));
  EXPECT_GE(A.bytesAllocated(), 8 * 8 + 13 + 4 * 8);
}

TEST(Arena, ResetPoisonsReclaimedBytes) {
  // The canary test behind the no-stale-chunk-refs guarantee: bytes
  // written before a reset must read back as PoisonByte afterwards, so
  // a dangling span read fails loudly instead of aliasing fresh data.
  Arena A(128);
  const std::span<std::uint8_t> Canary = A.allocateSpan<std::uint8_t>(64);
  std::fill(Canary.begin(), Canary.end(), std::uint8_t(0xCA));
  const std::uint8_t *Raw = Canary.data();
  A.reset();
  for (std::size_t I = 0; I < 64; ++I)
    ASSERT_EQ(Raw[I], Arena::PoisonByte) << "byte " << I;
  // The next batch's allocation reuses the block and sees no canary.
  const std::span<std::uint8_t> Fresh = A.allocateSpan<std::uint8_t>(64);
  for (std::size_t I = 0; I < 64; ++I)
    ASSERT_EQ(Fresh[I], Arena::PoisonByte);
  EXPECT_EQ(A.bytesAllocated(), 64u);
}

TEST(Arena, ResetKeepsOnlyLargestBlock) {
  Arena A(64);
  (void)A.allocateSpan<std::uint8_t>(64);
  (void)A.allocateSpan<std::uint8_t>(4096); // forces a bigger block
  EXPECT_GE(A.blockCount(), 2u);
  const std::size_t Reserved = A.bytesReserved();
  A.reset();
  EXPECT_EQ(A.blockCount(), 1u);
  EXPECT_LE(A.bytesReserved(), Reserved);
  EXPECT_EQ(A.bytesAllocated(), 0u);
  // Steady state: the survivor absorbs the next batch without growing.
  (void)A.allocateSpan<std::uint8_t>(4096);
  EXPECT_EQ(A.blockCount(), 1u);
}

TEST(Arena, FilledSpansAndAllocatorAdapter) {
  Arena A;
  const std::span<std::uint32_t> Filled =
      A.allocateFilled<std::uint32_t>(100, 0xDEADBEEF);
  EXPECT_TRUE(std::all_of(Filled.begin(), Filled.end(),
                          [](std::uint32_t V) { return V == 0xDEADBEEF; }));
  std::vector<int, ArenaAllocator<int>> Borrowed{ArenaAllocator<int>(A)};
  for (int I = 0; I < 1000; ++I)
    Borrowed.push_back(I);
  EXPECT_EQ(Borrowed[999], 999);
  EXPECT_GT(A.bytesAllocated(), 1000 * sizeof(int) / 2);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena A;
  EXPECT_NE(A.allocate(0, 1), nullptr);
  const std::span<std::uint8_t> Empty = A.allocateSpan<std::uint8_t>(0);
  EXPECT_EQ(Empty.size(), 0u);
}
