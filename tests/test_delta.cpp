//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the delta-compression substrate: super-feature
/// resemblance properties, similarity-index behaviour (bounding,
/// replacement, GC), delta codec round trips over synthetic edits, and
/// the end-to-end claim: similar chunks delta-encode far smaller than
/// they LZ-compress.
///
//===----------------------------------------------------------------------===//

#include "compress/LzCodec.h"
#include "delta/DeltaCodec.h"
#include "delta/SimilarityIndex.h"
#include "delta/SuperFeatures.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <string>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

/// Applies \p Edits random splice edits (replace a short span with
/// fresh bytes) to a copy of \p Base.
ByteVector withEdits(const ByteVector &Base, unsigned Edits,
                     std::uint64_t Seed) {
  ByteVector Out = Base;
  Random Rng(Seed);
  for (unsigned I = 0; I < Edits && !Out.empty(); ++I) {
    const std::size_t At = Rng.nextBelow(Out.size());
    const std::size_t Len =
        std::min<std::size_t>(1 + Rng.nextBelow(32), Out.size() - At);
    Rng.fillBytes(Out.data() + At, Len);
  }
  return Out;
}

void expectDeltaRoundTrip(const ByteVector &Base, const ByteVector &Target) {
  const DeltaResult Result =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()));
  EXPECT_EQ(Result.CopyBytes + Result.InsertBytes, Target.size());
  ByteVector Out;
  ASSERT_TRUE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                          ByteSpan(Result.Payload.data(),
                                   Result.Payload.size()),
                          Target.size(), Out));
  EXPECT_EQ(Out, Target);
}

} // namespace

//===----------------------------------------------------------------------===//
// Super-features
//===----------------------------------------------------------------------===//

TEST(SuperFeatures, IdenticalChunksShareAllFeatures) {
  const ByteVector Data = randomData(4096, 1);
  const SuperFeatureSet A =
      computeSuperFeatures(ByteSpan(Data.data(), Data.size()));
  const SuperFeatureSet B =
      computeSuperFeatures(ByteSpan(Data.data(), Data.size()));
  EXPECT_EQ(A, B);
  EXPECT_TRUE(similar(A, B));
}

TEST(SuperFeatures, SimilarChunksMatchDissimilarDoNot) {
  int SimilarHits = 0, DissimilarHits = 0;
  for (std::uint64_t Seed = 0; Seed < 20; ++Seed) {
    const ByteVector Base = randomData(4096, 100 + Seed);
    const ByteVector NearCopy = withEdits(Base, 3, 200 + Seed);
    const ByteVector Unrelated = randomData(4096, 300 + Seed);
    const auto FsBase =
        computeSuperFeatures(ByteSpan(Base.data(), Base.size()));
    SimilarHits += similar(
        FsBase, computeSuperFeatures(ByteSpan(NearCopy.data(),
                                              NearCopy.size())));
    DissimilarHits += similar(
        FsBase, computeSuperFeatures(ByteSpan(Unrelated.data(),
                                              Unrelated.size())));
  }
  EXPECT_GE(SimilarHits, 16);  // lightly edited chunks are detected
  EXPECT_EQ(DissimilarHits, 0); // random chunks never collide
}

TEST(SuperFeatures, HeavilyEditedChunksStopMatching) {
  const ByteVector Base = randomData(4096, 2);
  const ByteVector Heavy = withEdits(Base, 200, 3); // ~most bytes touched
  EXPECT_FALSE(similar(
      computeSuperFeatures(ByteSpan(Base.data(), Base.size())),
      computeSuperFeatures(ByteSpan(Heavy.data(), Heavy.size()))));
}

TEST(SuperFeatures, TinyInputsAreStable) {
  const ByteVector A = {1, 2, 3};
  const ByteVector B = {1, 2, 3};
  const ByteVector C = {4, 5, 6};
  EXPECT_EQ(computeSuperFeatures(ByteSpan(A.data(), A.size())),
            computeSuperFeatures(ByteSpan(B.data(), B.size())));
  EXPECT_NE(computeSuperFeatures(ByteSpan(A.data(), A.size())),
            computeSuperFeatures(ByteSpan(C.data(), C.size())));
}

//===----------------------------------------------------------------------===//
// SimilarityIndex
//===----------------------------------------------------------------------===//

TEST(SimilarityIndex, FindAfterInsert) {
  SimilarityIndex Index;
  const ByteVector Data = randomData(4096, 4);
  const SuperFeatureSet Fs =
      computeSuperFeatures(ByteSpan(Data.data(), Data.size()));
  EXPECT_FALSE(Index.findBase(Fs).has_value());
  Index.insert(Fs, 42);
  const auto Found = Index.findBase(Fs);
  ASSERT_TRUE(Found.has_value());
  EXPECT_EQ(*Found, 42u);
}

TEST(SimilarityIndex, SimilarChunkFindsItsBase) {
  SimilarityIndex Index;
  const ByteVector Base = randomData(4096, 5);
  Index.insert(computeSuperFeatures(ByteSpan(Base.data(), Base.size())),
               7);
  const ByteVector Near = withEdits(Base, 2, 6);
  const auto Found = Index.findBase(
      computeSuperFeatures(ByteSpan(Near.data(), Near.size())));
  ASSERT_TRUE(Found.has_value());
  EXPECT_EQ(*Found, 7u);
}

TEST(SimilarityIndex, CapacityBoundIsEnforced) {
  SimilarityIndex Index(/*MaxEntriesPerTable=*/16);
  for (std::uint64_t I = 0; I < 200; ++I) {
    const ByteVector Data = randomData(1024, 1000 + I);
    Index.insert(computeSuperFeatures(ByteSpan(Data.data(), Data.size())),
                 I);
  }
  EXPECT_LE(Index.size(), 16u * SuperFeatureCount);
}

TEST(SimilarityIndex, RemoveLocationDropsAllItsEntries) {
  SimilarityIndex Index;
  const ByteVector Data = randomData(4096, 8);
  const SuperFeatureSet Fs =
      computeSuperFeatures(ByteSpan(Data.data(), Data.size()));
  Index.insert(Fs, 11);
  EXPECT_EQ(Index.removeLocation(11), SuperFeatureCount);
  EXPECT_FALSE(Index.findBase(Fs).has_value());
  EXPECT_EQ(Index.size(), 0u);
}

TEST(SimilarityIndex, NewerBaseWinsOnCollision) {
  SimilarityIndex Index;
  const ByteVector Data = randomData(4096, 9);
  const SuperFeatureSet Fs =
      computeSuperFeatures(ByteSpan(Data.data(), Data.size()));
  Index.insert(Fs, 1);
  Index.insert(Fs, 2);
  EXPECT_EQ(*Index.findBase(Fs), 2u);
}

//===----------------------------------------------------------------------===//
// Delta codec
//===----------------------------------------------------------------------===//

TEST(DeltaCodec, IdenticalChunkIsNearlyFree) {
  const ByteVector Base = randomData(4096, 10);
  const DeltaResult Result = deltaEncode(
      ByteSpan(Base.data(), Base.size()), ByteSpan(Base.data(), Base.size()));
  // All copies, ~3 bytes per 128-135 covered.
  EXPECT_EQ(Result.InsertBytes, 0u);
  EXPECT_LT(Result.Payload.size(), 128u);
  expectDeltaRoundTrip(Base, Base);
}

TEST(DeltaCodec, LightEditsRoundTripSmall) {
  const ByteVector Base = randomData(4096, 11);
  const ByteVector Target = withEdits(Base, 4, 12);
  const DeltaResult Result =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()));
  EXPECT_LT(Result.Payload.size(), Target.size() / 4);
  expectDeltaRoundTrip(Base, Target);
}

TEST(DeltaCodec, UnrelatedTargetDegradesToInserts) {
  const ByteVector Base = randomData(4096, 13);
  const ByteVector Target = randomData(4096, 14);
  const DeltaResult Result =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()));
  EXPECT_GT(Result.InsertBytes, 3500u);
  expectDeltaRoundTrip(Base, Target);
}

TEST(DeltaCodec, EmptyAndTinyInputs) {
  const ByteVector Base = randomData(4096, 15);
  expectDeltaRoundTrip(Base, ByteVector());
  expectDeltaRoundTrip(Base, ByteVector{1, 2, 3});
  expectDeltaRoundTrip(ByteVector(), randomData(100, 16));
}

TEST(DeltaCodec, InsertionShiftsAreHandled) {
  // Insert 5 bytes mid-chunk: everything after shifts; backward/
  // forward extension must still find the displaced copies.
  const ByteVector Base = randomData(4096, 17);
  ByteVector Target(Base.begin(), Base.begin() + 2000);
  for (int I = 0; I < 5; ++I)
    Target.push_back(static_cast<std::uint8_t>(I));
  Target.insert(Target.end(), Base.begin() + 2000, Base.end());
  const DeltaResult Result =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()));
  EXPECT_LT(Result.Payload.size(), 200u);
  expectDeltaRoundTrip(Base, Target);
}

TEST(DeltaCodec, DecoderRejectsMalformedPayloads) {
  const ByteVector Base = randomData(1024, 18);
  ByteVector Out;
  // Truncated insert.
  const ByteVector BadInsert = {0x05, 'a'};
  EXPECT_FALSE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                           ByteSpan(BadInsert.data(), BadInsert.size()), 6,
                           Out));
  // Copy past the base end.
  const ByteVector BadCopy = {0x80, 0xFF, 0xFF};
  EXPECT_FALSE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                           ByteSpan(BadCopy.data(), BadCopy.size()), 8,
                           Out));
  // Wrong target size.
  const ByteVector Short = {0x00, 'x'};
  EXPECT_FALSE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                           ByteSpan(Short.data(), Short.size()), 2, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(DeltaCodec, FuzzRoundTrips) {
  for (std::uint64_t Seed = 0; Seed < 20; ++Seed) {
    Random Rng(Seed * 7907 + 3);
    const ByteVector Base = randomData(512 + Rng.nextBelow(8000), Seed);
    const ByteVector Target =
        withEdits(Base, static_cast<unsigned>(Rng.nextBelow(50)),
                  Seed + 999);
    expectDeltaRoundTrip(Base, Target);
  }
}

//===----------------------------------------------------------------------===//
// The end-to-end claim: delta beats LZ on similar chunks.
//===----------------------------------------------------------------------===//

TEST(Delta, BeatsLzOnLightlyEditedChunks) {
  const LzCodec Lz(LzCodec::MatcherKind::HashChain);
  double DeltaTotal = 0.0, LzTotal = 0.0;
  for (std::uint64_t Seed = 0; Seed < 10; ++Seed) {
    const ByteVector Base = randomData(4096, 500 + Seed);
    const ByteVector Target = withEdits(Base, 5, 600 + Seed);
    DeltaTotal += static_cast<double>(
        deltaEncode(ByteSpan(Base.data(), Base.size()),
                    ByteSpan(Target.data(), Target.size()))
            .Payload.size());
    LzTotal += static_cast<double>(
        std::min(Lz.compress(ByteSpan(Target.data(), Target.size()))
                     .Payload.size(),
                 Target.size()));
  }
  // Random-content chunks do not LZ-compress at all, but a light edit
  // leaves ~95% of the bytes copyable from the base.
  EXPECT_LT(DeltaTotal, LzTotal * 0.25);
}

//===----------------------------------------------------------------------===//
// Decoder robustness under systematic damage. Delta payloads reference
// the *base* chunk by offset, so corruption can redirect copies as
// well as break framing; the decoder must bounds-check both and uphold
// the shared decode contract: fail with Out untouched, or produce
// exactly TargetSize bytes. Never crash, never read out of bounds.
//===----------------------------------------------------------------------===//

namespace {

void expectDeltaDecodeContract(const ByteVector &Base,
                               const ByteVector &Payload,
                               std::size_t TargetSize) {
  ByteVector Out = {0x5A};
  const ByteVector Before = Out;
  const bool Ok =
      deltaDecode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Payload.data(), Payload.size()), TargetSize, Out);
  if (Ok)
    EXPECT_EQ(Out.size(), Before.size() + TargetSize);
  else
    EXPECT_EQ(Out, Before);
}

} // namespace

class DeltaCorruption : public ::testing::TestWithParam<int> {};

TEST_P(DeltaCorruption, TruncatedPayloadsAlwaysFail) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  Random Rng(Seed * 449 + 13);
  const ByteVector Base = randomData(1024 + Rng.nextBelow(4096), Seed + 40);
  const ByteVector Target =
      withEdits(Base, static_cast<unsigned>(1 + Rng.nextBelow(20)),
                Seed + 41);
  const ByteVector Payload =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()))
          .Payload;
  for (int Trial = 0; Trial < 24; ++Trial) {
    const std::size_t Keep = Rng.nextBelow(Payload.size());
    const ByteVector Cut(Payload.begin(), Payload.begin() + Keep);
    ByteVector Out;
    // A strict prefix of the token stream covers strictly fewer target
    // bytes, so truncation is always detected.
    EXPECT_FALSE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                             ByteSpan(Cut.data(), Cut.size()),
                             Target.size(), Out));
    EXPECT_TRUE(Out.empty());
  }
}

TEST_P(DeltaCorruption, BitFlippedPayloadsFailOrDecodeFullSize) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  Random Rng(Seed * 523 + 17);
  const ByteVector Base = randomData(2048, Seed + 50);
  const ByteVector Target =
      withEdits(Base, static_cast<unsigned>(1 + Rng.nextBelow(30)),
                Seed + 51);
  const ByteVector Payload =
      deltaEncode(ByteSpan(Base.data(), Base.size()),
                  ByteSpan(Target.data(), Target.size()))
          .Payload;
  for (int Trial = 0; Trial < 64; ++Trial) {
    ByteVector Damaged = Payload;
    const std::size_t Flips = 1 + Rng.nextBelow(4);
    for (std::size_t I = 0; I < Flips; ++I)
      Damaged[Rng.nextBelow(Damaged.size())] ^=
          static_cast<std::uint8_t>(1u << Rng.nextBelow(8));
    expectDeltaDecodeContract(Base, Damaged, Target.size());
  }
}

TEST(DeltaCorruption, GarbagePayloadsNeverCrash) {
  for (std::uint64_t Seed = 0; Seed < 16; ++Seed) {
    Random Rng(Seed * 89 + 23);
    const ByteVector Base = randomData(512 + Rng.nextBelow(2048), Seed + 60);
    const ByteVector Garbage =
        randomData(1 + Rng.nextBelow(2048), Seed + 61);
    expectDeltaDecodeContract(Base, Garbage, 1 + Rng.nextBelow(8192));
  }
}

TEST(DeltaCorruption, CopyBeyondBaseIsRejected) {
  // A copy token whose offset+length overruns the base must fail even
  // when the target size would otherwise fit.
  const ByteVector Base = randomData(64, 70);
  ByteVector Payload;
  Payload.push_back(0x80); // copy, length DeltaMinCopy
  Payload.push_back(60);   // offset 60: 60 + 8 > 64
  Payload.push_back(0);
  ByteVector Out;
  EXPECT_FALSE(deltaDecode(ByteSpan(Base.data(), Base.size()),
                           ByteSpan(Payload.data(), Payload.size()),
                           DeltaMinCopy, Out));
  EXPECT_TRUE(Out.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaCorruption, ::testing::Range(0, 10));
