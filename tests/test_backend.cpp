//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-backend splitter property tests (ctest -L backend). The
/// correctness bar for src/backend: the forced split endpoints must be
/// exact pass-throughs of the classic single-backend stage (results,
/// recipes, ledger charges and the scheduled timeline bit-identical),
/// every interior split point must keep results and recipes
/// bit-identical to the serial oracle, the tuner must be deterministic
/// under replay, charges must not depend on the modelled device count,
/// and fault plans must drain the overlap window with bit-exact
/// CPU-fallback results.
///
//===----------------------------------------------------------------------===//

#include "backend/AutoSplitter.h"
#include "core/ReductionPipeline.h"
#include "fault/FaultInjector.h"
#include "fault/FaultPlan.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

using namespace padre;

namespace {

ByteVector makeStream(std::uint64_t Bytes, std::uint64_t Seed = 91) {
  WorkloadConfig Config;
  Config.TotalBytes = Bytes;
  Config.DedupRatio = 2.0;
  Config.CompressRatio = 2.0;
  Config.Seed = Seed;
  return VdbenchStream(Config).generateAll();
}

PipelineConfig classicConfig(PipelineMode Mode) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  Config.PipelineDepth = 4;
  return Config;
}

PipelineConfig backendConfig(backend::SplitMode Split, double Fraction = 1.0,
                             unsigned GpuDevices = 1) {
  PipelineConfig Config = classicConfig(PipelineMode::CpuOnly);
  Config.Backend.Enabled = true;
  Config.Backend.Split = Split;
  Config.Backend.Fraction = Fraction;
  Config.Backend.GpuDevices = GpuDevices;
  return Config;
}

/// Everything two runs are diffed on.
struct RunResult {
  StreamRecipe Recipe;
  std::uint64_t StoredBytes = 0;
  ByteVector ReadBack;
  std::array<double, ResourceCount> BusyUs{};
  std::array<double, ResourceCount> SchedUs{};
  double WallUs = 0.0;
  double MakespanSec = 0.0;
  PipelineReport Report;
  backend::SplitterStats Stats;
};

RunResult runOnce(const PipelineConfig &Config, const ByteVector &Data) {
  ReductionPipeline Pipeline(Platform::paper(), Config);
  EXPECT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  EXPECT_TRUE(Pipeline.finish().ok());
  RunResult Result;
  Result.Recipe = Pipeline.recipe();
  Result.Report = Pipeline.report();
  Result.StoredBytes = Result.Report.StoredBytes;
  Result.MakespanSec = Result.Report.MakespanSec;
  for (unsigned R = 0; R < ResourceCount; ++R) {
    Result.BusyUs[R] = Pipeline.ledger().busyMicros(static_cast<Resource>(R));
    Result.SchedUs[R] =
        Pipeline.ledger().laneScheduledMicros(static_cast<Resource>(R));
  }
  Result.WallUs = Pipeline.scheduler().wallMicros();
  EXPECT_EQ(Pipeline.scheduler().inFlight(), 0u);
  if (Pipeline.splitter())
    Result.Stats = Pipeline.splitter()->stats();
  const auto Restored = Pipeline.readBack();
  EXPECT_TRUE(Restored.has_value());
  if (Restored)
    Result.ReadBack = *Restored;
  return Result;
}

/// Results + recipes: the any-split-point bar.
void expectSameResults(const RunResult &Oracle, const RunResult &Candidate) {
  EXPECT_EQ(Oracle.Recipe.ChunkLocations, Candidate.Recipe.ChunkLocations);
  EXPECT_EQ(Oracle.Recipe.ChunkSizes, Candidate.Recipe.ChunkSizes);
  EXPECT_EQ(Oracle.ReadBack, Candidate.ReadBack);
  EXPECT_EQ(Oracle.Report.UniqueChunks, Candidate.Report.UniqueChunks);
  EXPECT_EQ(Oracle.Report.DupChunks, Candidate.Report.DupChunks);
}

/// Full identity: the {0,1} pass-through bar — everything above plus
/// stored bytes, per-lane busy charges and the scheduled timeline.
void expectBitIdentical(const RunResult &Oracle, const RunResult &Candidate) {
  expectSameResults(Oracle, Candidate);
  EXPECT_EQ(Oracle.StoredBytes, Candidate.StoredBytes);
  for (unsigned R = 0; R < ResourceCount; ++R) {
    SCOPED_TRACE(resourceName(static_cast<Resource>(R)));
    EXPECT_DOUBLE_EQ(Oracle.BusyUs[R], Candidate.BusyUs[R]);
    EXPECT_DOUBLE_EQ(Oracle.SchedUs[R], Candidate.SchedUs[R]);
  }
  EXPECT_DOUBLE_EQ(Oracle.WallUs, Candidate.WallUs);
}

constexpr double Fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};

} // namespace

//===----------------------------------------------------------------------===//
// Pass-through endpoints: forced modes vs the classic stage
//===----------------------------------------------------------------------===//

TEST(BackendPassThrough, CpuOnlyBitIdenticalToClassicCpu) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Classic = runOnce(classicConfig(PipelineMode::CpuOnly), Data);
  EXPECT_EQ(Classic.ReadBack, Data);
  const RunResult Forced =
      runOnce(backendConfig(backend::SplitMode::CpuOnly), Data);
  expectBitIdentical(Classic, Forced);
}

TEST(BackendPassThrough, GpuOnlyBitIdenticalToClassicGpuCompress) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Classic =
      runOnce(classicConfig(PipelineMode::GpuCompress), Data);
  EXPECT_EQ(Classic.ReadBack, Data);
  const RunResult Forced =
      runOnce(backendConfig(backend::SplitMode::GpuOnly), Data);
  expectBitIdentical(Classic, Forced);
}

TEST(BackendPassThrough, FixedEndpointsMatchForcedModes) {
  const ByteVector Data = makeStream(4ull << 20);
  expectBitIdentical(runOnce(backendConfig(backend::SplitMode::CpuOnly), Data),
                     runOnce(backendConfig(backend::SplitMode::Fixed, 0.0),
                             Data));
  expectBitIdentical(runOnce(backendConfig(backend::SplitMode::GpuOnly), Data),
                     runOnce(backendConfig(backend::SplitMode::Fixed, 1.0),
                             Data));
}

//===----------------------------------------------------------------------===//
// Every split point: results and recipes never depend on the cut
//===----------------------------------------------------------------------===//

TEST(BackendSplit, ResultsBitIdenticalAtEveryFraction) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Oracle = runOnce(classicConfig(PipelineMode::CpuOnly), Data);
  ASSERT_EQ(Oracle.ReadBack, Data);
  for (const unsigned Devices : {1u, 2u}) {
    for (const double Fraction : Fractions) {
      SCOPED_TRACE("devices " + std::to_string(Devices) + " fraction " +
                   std::to_string(Fraction));
      const RunResult Split = runOnce(
          backendConfig(backend::SplitMode::Fixed, Fraction, Devices), Data);
      expectSameResults(Oracle, Split);
    }
  }
}

TEST(BackendSplit, AutoModeResultsMatchOracle) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Oracle = runOnce(classicConfig(PipelineMode::CpuOnly), Data);
  for (const unsigned Devices : {1u, 2u}) {
    SCOPED_TRACE("devices " + std::to_string(Devices));
    const RunResult Auto = runOnce(
        backendConfig(backend::SplitMode::Auto, 1.0, Devices), Data);
    expectSameResults(Oracle, Auto);
    EXPECT_GT(Auto.Stats.Batches, 0u);
  }
}

TEST(BackendSplit, ChargesScheduleAndWallReconcile) {
  const ByteVector Data = makeStream(8ull << 20);
  const unsigned Threads = Platform::paper().Model.Cpu.Threads;
  for (const double Fraction : Fractions) {
    SCOPED_TRACE("fraction " + std::to_string(Fraction));
    const RunResult Split =
        runOnce(backendConfig(backend::SplitMode::Fixed, Fraction, 1), Data);
    // The sliced replay must stay lossless: scheduled lane totals equal
    // the ledger's charges (CPU normalized by pool width), and the wall
    // can never undercut any lane's occupancy.
    EXPECT_NEAR(Split.SchedUs[static_cast<unsigned>(Resource::CpuPool)],
                Split.BusyUs[static_cast<unsigned>(Resource::CpuPool)] /
                    Threads,
                1.0);
    for (const Resource R : {Resource::Gpu, Resource::Pcie, Resource::Ssd,
                             Resource::IndexLock})
      EXPECT_NEAR(Split.SchedUs[static_cast<unsigned>(R)],
                  Split.BusyUs[static_cast<unsigned>(R)], 1.0)
          << resourceName(R);
    for (unsigned R = 0; R < ResourceCount; ++R)
      EXPECT_GE(Split.WallUs + 1e-6, Split.SchedUs[R]);
  }
}

//===----------------------------------------------------------------------===//
// Modelled device count: charges invariant, makespan scales
//===----------------------------------------------------------------------===//

TEST(BackendMultiGpu, BusyChargesInvariantAcrossDeviceCount) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult One =
      runOnce(backendConfig(backend::SplitMode::GpuOnly, 1.0, 1), Data);
  const RunResult Two =
      runOnce(backendConfig(backend::SplitMode::GpuOnly, 1.0, 2), Data);
  expectSameResults(One, Two);
  EXPECT_EQ(One.StoredBytes, Two.StoredBytes);
  // Busy accumulators are shared across mirrored lanes — work charged,
  // not where it ran — so the device count must not change any charge.
  for (unsigned R = 0; R < ResourceCount; ++R) {
    SCOPED_TRACE(resourceName(static_cast<Resource>(R)));
    EXPECT_DOUBLE_EQ(One.BusyUs[R], Two.BusyUs[R]);
  }
}

TEST(BackendMultiGpu, ComputeMakespanScalesWithDevices) {
  // GPU-bound shape: dedup off, big batches — the compute makespan is
  // the device lanes' occupancy, which halves across two devices.
  WorkloadConfig Shape;
  Shape.TotalBytes = 16ull << 20;
  Shape.DedupRatio = 1.0;
  Shape.CompressRatio = 2.0;
  Shape.Seed = 92;
  const ByteVector Data = VdbenchStream(Shape).generateAll();
  PipelineConfig Config = backendConfig(backend::SplitMode::GpuOnly, 1.0, 1);
  Config.DedupEnabled = false;
  Config.BatchChunks = 2048;
  const RunResult One = runOnce(Config, Data);
  Config.Backend.GpuDevices = 2;
  const RunResult Two = runOnce(Config, Data);
  expectSameResults(One, Two);
  ASSERT_GT(Two.MakespanSec, 0.0);
  EXPECT_GE(One.MakespanSec / Two.MakespanSec, 1.5);
}

//===----------------------------------------------------------------------===//
// Tuner: deterministic under replay, observes real rates
//===----------------------------------------------------------------------===//

TEST(BackendTuner, DeterministicUnderReplay) {
  const ByteVector Data = makeStream(8ull << 20);
  for (const unsigned Devices : {1u, 2u}) {
    SCOPED_TRACE("devices " + std::to_string(Devices));
    const RunResult First = runOnce(
        backendConfig(backend::SplitMode::Auto, 1.0, Devices), Data);
    const RunResult Second = runOnce(
        backendConfig(backend::SplitMode::Auto, 1.0, Devices), Data);
    expectBitIdentical(First, Second);
    EXPECT_DOUBLE_EQ(First.Stats.Fraction, Second.Stats.Fraction);
    EXPECT_DOUBLE_EQ(First.Stats.CpuRateBytesPerUs,
                     Second.Stats.CpuRateBytesPerUs);
    EXPECT_DOUBLE_EQ(First.Stats.GpuRateBytesPerUs,
                     Second.Stats.GpuRateBytesPerUs);
    EXPECT_EQ(First.Stats.Batches, Second.Stats.Batches);
    EXPECT_EQ(First.Stats.CpuChunks, Second.Stats.CpuChunks);
    EXPECT_EQ(First.Stats.GpuChunks, Second.Stats.GpuChunks);
  }
}

TEST(BackendTuner, ObservesRatesAndRoutesWork) {
  const ByteVector Data = makeStream(8ull << 20);
  const RunResult Auto =
      runOnce(backendConfig(backend::SplitMode::Auto, 1.0, 1), Data);
  EXPECT_GT(Auto.Stats.CpuRateBytesPerUs, 0.0);
  EXPECT_GT(Auto.Stats.GpuRateBytesPerUs, 0.0);
  // On the paper platform the GPU compresses literals ~13x faster per
  // byte than a CPU thread; the tuner must discover a device-heavy
  // split, not sit on the seed.
  EXPECT_GT(Auto.Stats.Fraction, 0.5);
  EXPECT_GT(Auto.Stats.GpuChunks, Auto.Stats.CpuChunks);
}

TEST(BackendTuner, WindowClampAndConfigSurvive) {
  const ByteVector Data = makeStream(2ull << 20);
  PipelineConfig Config = backendConfig(backend::SplitMode::Auto);
  Config.Backend.TunerWindow = 0; // clamps to 1 (pure last-batch rate)
  ReductionPipeline Pipeline(Platform::paper(), Config);
  ASSERT_TRUE(Pipeline.write(ByteSpan(Data.data(), Data.size())).ok());
  ASSERT_TRUE(Pipeline.finish().ok());
  ASSERT_NE(Pipeline.splitter(), nullptr);
  EXPECT_EQ(Pipeline.splitter()->config().TunerWindow, 1u);
  EXPECT_EQ(Pipeline.gpuDeviceCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Fault drain: device faults fall back bit-exactly, window empties
//===----------------------------------------------------------------------===//

namespace {

void runBackendFaultDrain(const char *PlanSpec, unsigned Devices) {
  SCOPED_TRACE(std::string(PlanSpec) + " devices " + std::to_string(Devices));
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan(PlanSpec, Plan, Error)) << Error;
  const ByteVector Data = makeStream(4ull << 20);
  const RunResult Clean = runOnce(classicConfig(PipelineMode::CpuOnly), Data);
  fault::FaultInjector Injector(Plan);
  PipelineConfig Config =
      backendConfig(backend::SplitMode::Auto, 1.0, Devices);
  Config.Faults = &Injector;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  const fault::Status WriteStatus =
      Pipeline.write(ByteSpan(Data.data(), Data.size()));
  const fault::Status FinishStatus = Pipeline.finish();
  EXPECT_EQ(Pipeline.scheduler().inFlight(), 0u);
  if (!WriteStatus.ok() || !FinishStatus.ok())
    return;
  // Device faults re-compress the slice on the CPU: outcomes, recipes
  // and the decoded stream stay bit-exact to the fault-free oracle.
  EXPECT_EQ(Pipeline.recipe().ChunkLocations, Clean.Recipe.ChunkLocations);
  EXPECT_EQ(Pipeline.recipe().ChunkSizes, Clean.Recipe.ChunkSizes);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

} // namespace

TEST(BackendFaultDrain, GpuKernelEcc) {
  for (const unsigned Devices : {1u, 2u})
    runBackendFaultDrain("seed=21;gpu-kernel:ecc:p=0.05", Devices);
}

TEST(BackendFaultDrain, GpuKernelHang) {
  for (const unsigned Devices : {1u, 2u})
    runBackendFaultDrain("seed=22;gpu-kernel:hang:every=9", Devices);
}

TEST(BackendFaultDrain, GpuDmaCorrupt) {
  for (const unsigned Devices : {1u, 2u})
    runBackendFaultDrain("seed=23;gpu-dma:dma-corrupt:p=0.05", Devices);
}

TEST(BackendFaultDrain, SsdWriteError) {
  for (const unsigned Devices : {1u, 2u})
    runBackendFaultDrain("seed=24;ssd-write:error:p=0.02", Devices);
}
