//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the trace module: format round trips, malformed-input
/// rejection, synthesis properties (mix, locality, bounds), content
/// determinism, and verified replay against the LBA volume in several
/// pipeline modes.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"
#include "util/Random.h"
#include "workload/Scenario.h"
#include "workload/Trace.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

using namespace padre;

//===----------------------------------------------------------------------===//
// Format
//===----------------------------------------------------------------------===//

TEST(TraceFormat, SerializeParseRoundTrip) {
  TraceLog Log;
  Log.Records = {
      {TraceOp::Write, 10, 4, 7},
      {TraceOp::Read, 10, 2, 0},
      {TraceOp::Trim, 12, 2, 0},
      {TraceOp::Write, 0, 1, 99},
  };
  const auto Parsed = TraceLog::parse(Log.serialize());
  ASSERT_TRUE(Parsed.has_value());
  ASSERT_EQ(Parsed->Records.size(), Log.Records.size());
  for (std::size_t I = 0; I < Log.Records.size(); ++I) {
    EXPECT_EQ(Parsed->Records[I].Op, Log.Records[I].Op);
    EXPECT_EQ(Parsed->Records[I].Lba, Log.Records[I].Lba);
    EXPECT_EQ(Parsed->Records[I].Blocks, Log.Records[I].Blocks);
    if (Log.Records[I].Op == TraceOp::Write) {
      EXPECT_EQ(Parsed->Records[I].ContentTag, Log.Records[I].ContentTag);
    }
  }
}

TEST(TraceFormat, CommentsAndBlanksAreSkipped) {
  const auto Parsed = TraceLog::parse("# header\n\nW 1 2 3 # inline\n\n"
                                      "R 1 2\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->Records.size(), 2u);
}

TEST(TraceFormat, RejectsMalformedLines) {
  EXPECT_FALSE(TraceLog::parse("X 1 2\n").has_value());   // unknown op
  EXPECT_FALSE(TraceLog::parse("W 1 2\n").has_value());   // missing tag
  EXPECT_FALSE(TraceLog::parse("R 1\n").has_value());     // missing count
  EXPECT_FALSE(TraceLog::parse("R 1 2 3\n").has_value()); // trailing junk
  EXPECT_FALSE(TraceLog::parse("W 1 0 5\n").has_value()); // zero blocks
}

TEST(TraceFormat, EmptyTextIsEmptyTrace) {
  const auto Parsed = TraceLog::parse("");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_TRUE(Parsed->Records.empty());
}

//===----------------------------------------------------------------------===//
// Synthesis
//===----------------------------------------------------------------------===//

TEST(TraceSynthesis, RespectsBoundsAndCount) {
  TraceSynthesisConfig Config;
  Config.Operations = 5000;
  Config.VolumeBlocks = 1000;
  Config.MaxRunBlocks = 7;
  const TraceLog Log = TraceLog::synthesize(Config);
  ASSERT_EQ(Log.Records.size(), 5000u);
  for (const TraceRecord &Record : Log.Records) {
    EXPECT_LT(Record.Lba, 1000u);
    EXPECT_GE(Record.Blocks, 1u);
    EXPECT_LE(Record.Blocks, 7u);
    EXPECT_LE(Record.Lba + Record.Blocks, 1000u);
    if (Record.Op == TraceOp::Write) {
      EXPECT_LT(Record.ContentTag, Config.ContentTags);
    }
  }
}

TEST(TraceSynthesis, OperationMixNearConfig) {
  TraceSynthesisConfig Config;
  Config.Operations = 20000;
  const TraceLog Log = TraceLog::synthesize(Config);
  std::map<TraceOp, double> Mix;
  for (const TraceRecord &Record : Log.Records)
    Mix[Record.Op] += 1.0 / static_cast<double>(Log.Records.size());
  EXPECT_NEAR(Mix[TraceOp::Write], Config.WriteFraction, 0.02);
  EXPECT_NEAR(Mix[TraceOp::Read], Config.ReadFraction, 0.02);
}

TEST(TraceSynthesis, HotspotSkewsAccesses) {
  TraceSynthesisConfig Config;
  Config.Operations = 20000;
  Config.VolumeBlocks = 10000;
  const TraceLog Log = TraceLog::synthesize(Config);
  const std::uint64_t HotLimit = static_cast<std::uint64_t>(
      Config.VolumeBlocks * Config.HotFraction);
  std::size_t HotOps = 0;
  for (const TraceRecord &Record : Log.Records)
    HotOps += Record.Lba < HotLimit;
  // ~80% target plus the cold draws that land in the hot range anyway.
  EXPECT_GT(static_cast<double>(HotOps) / Log.Records.size(), 0.7);
}

TEST(TraceSynthesis, DeterministicPerSeed) {
  TraceSynthesisConfig Config;
  const std::string A = TraceLog::synthesize(Config).serialize();
  const std::string B = TraceLog::synthesize(Config).serialize();
  EXPECT_EQ(A, B);
  Config.Seed = 2;
  EXPECT_NE(TraceLog::synthesize(Config).serialize(), A);
}

TEST(TraceContent, TagsAreDeterministicAndDistinct) {
  ByteVector A(4096), B(4096), C(4096);
  fillTraceBlock(5, MutableByteSpan(A.data(), A.size()));
  fillTraceBlock(5, MutableByteSpan(B.data(), B.size()));
  fillTraceBlock(6, MutableByteSpan(C.data(), C.size()));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

//===----------------------------------------------------------------------===//
// Verified replay
//===----------------------------------------------------------------------===//

namespace {

class ReplayTest : public ::testing::TestWithParam<PipelineMode> {};

} // namespace

TEST_P(ReplayTest, SyntheticTraceRunsClean) {
  PipelineConfig Config;
  Config.Mode = GetParam();
  Config.Dedup.Index.BinBits = 8;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 512;
  Volume Vol(Pipeline, VolConfig);

  TraceSynthesisConfig Synth;
  Synth.Operations = 1500;
  Synth.VolumeBlocks = 512;
  Synth.ContentTags = 32;
  const TraceLog Log = TraceLog::synthesize(Synth);
  const TraceRunStats Stats = replayTrace(Vol, Log);

  EXPECT_TRUE(Stats.clean())
      << "readFail=" << Stats.ReadFailures
      << " verifyFail=" << Stats.VerifyFailures;
  EXPECT_EQ(Stats.Writes + Stats.Reads + Stats.Trims + Stats.OutOfRange,
            Log.Records.size());
  EXPECT_GT(Stats.Writes, 0u);
  EXPECT_GT(Stats.Reads, 0u);

  // The small tag pool means heavy dedup: stored chunks are bounded by
  // the pool size (plus nothing else).
  EXPECT_LE(Pipeline.store().chunkCount(), Synth.ContentTags);
  Vol.collectGarbage();
  EXPECT_EQ(Vol.scrub().CorruptChunks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplayTest,
                         ::testing::Values(PipelineMode::CpuOnly,
                                           PipelineMode::GpuCompress),
                         [](const auto &Info) {
                           return Info.param == PipelineMode::CpuOnly
                                      ? "cpu"
                                      : "gpu";
                         });

TEST(Replay, OutOfRangeRecordsAreSkippedNotFatal) {
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 8;
  Volume Vol(Pipeline, VolConfig);

  TraceLog Log;
  Log.Records = {
      {TraceOp::Write, 0, 2, 1},
      {TraceOp::Write, 100, 1, 2}, // out of range
      {TraceOp::Read, 0, 2, 0},
  };
  const TraceRunStats Stats = replayTrace(Vol, Log);
  EXPECT_EQ(Stats.OutOfRange, 1u);
  EXPECT_EQ(Stats.Writes, 1u);
  EXPECT_TRUE(Stats.clean());
}

TEST(Replay, DetectsInjectedCorruption) {
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  VolumeConfig VolConfig;
  VolConfig.BlockCount = 8;
  Volume Vol(Pipeline, VolConfig);

  TraceLog Log;
  Log.Records = {{TraceOp::Write, 0, 1, 1}};
  replayTrace(Vol, Log);
  ASSERT_TRUE(Pipeline.corruptChunkForTesting(Vol.mapping()[0], 30));

  TraceLog ReadLog;
  ReadLog.Records = {{TraceOp::Read, 0, 1, 0}};
  const TraceRunStats Stats = replayTrace(Vol, ReadLog);
  EXPECT_EQ(Stats.ReadFailures, 1u);
  EXPECT_FALSE(Stats.clean());
}

//===----------------------------------------------------------------------===//
// Arrival stamps and typed parse errors
//===----------------------------------------------------------------------===//

TEST(TraceFormat, ArrivalTokenRoundTrips) {
  TraceLog Log;
  Log.Records = {
      {TraceOp::Write, 10, 4, 7, 125},
      {TraceOp::Read, 10, 2, 0, 250},
      {TraceOp::Trim, 12, 2, 0, 0}, // untimed stays bare
  };
  const std::string Text = Log.serialize();
  EXPECT_NE(Text.find("@125"), std::string::npos);
  const auto Parsed = TraceLog::parse(Text);
  ASSERT_TRUE(Parsed.has_value());
  ASSERT_EQ(Parsed->Records.size(), 3u);
  EXPECT_EQ(Parsed->Records[0].ArrivalUs, 125u);
  EXPECT_EQ(Parsed->Records[1].ArrivalUs, 250u);
  EXPECT_EQ(Parsed->Records[2].ArrivalUs, 0u);
}

TEST(TraceFormat, ArrivalTokenGrammarIsStrict) {
  EXPECT_TRUE(TraceLog::parse("R 1 2 @50\n").has_value());
  EXPECT_TRUE(TraceLog::parse("W 1 2 3 @7\n").has_value());
  EXPECT_FALSE(TraceLog::parse("R 1 2 @\n").has_value());    // empty stamp
  EXPECT_FALSE(TraceLog::parse("R 1 2 @5x\n").has_value());  // junk suffix
  EXPECT_FALSE(TraceLog::parse("R 1 2 @5 6\n").has_value()); // extra field
  EXPECT_FALSE(TraceLog::parse("R 1 2 50\n").has_value());   // bare number
}

TEST(TraceChecked, MalformedLineCarriesItsNumber) {
  const auto Bad = TraceLog::parseChecked("W 1 2 3\nR 1\nT 2 2\n");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.status().code(), fault::ErrorCode::TraceMalformed);
  EXPECT_EQ(Bad.status().detail(), 2u); // 1-based line number

  const auto Ok = TraceLog::parseChecked("W 1 2 3\n# note\nR 1 2\n");
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(Ok->Records.size(), 2u);
}

TEST(TraceChecked, ValidateRejectsOutOfRangeRecords) {
  TraceLog Log;
  Log.Records = {{TraceOp::Write, 0, 8, 1}};
  EXPECT_TRUE(Log.validate(4096).ok());

  Log.Records.push_back({TraceOp::Read, 4090, 16, 0}); // past the end
  const fault::Status Past = Log.validate(4096);
  ASSERT_FALSE(Past.ok());
  EXPECT_EQ(Past.code(), fault::ErrorCode::TraceInvalid);
  EXPECT_EQ(Past.detail(), 1u); // 0-based record index

  Log.Records = {{TraceOp::Trim, ~0ull - 1, 4, 0}}; // 64-bit wrap
  EXPECT_EQ(Log.validate(4096).code(), fault::ErrorCode::TraceInvalid);

  TraceRecord Zero;
  Zero.Blocks = 0;
  Log.Records = {Zero};
  EXPECT_EQ(Log.validate(4096).code(), fault::ErrorCode::TraceInvalid);
}

TEST(TraceChecked, CorruptionSweepNeverCrashes) {
  TraceSynthesisConfig Synth;
  Synth.Operations = 200;
  std::string Text = TraceLog::synthesize(Synth).serialize();
  Random Rng(404);
  for (int Round = 0; Round < 400; ++Round) {
    std::string Mutant = Text;
    if (Round % 4 == 0) {
      Mutant.resize(Rng.nextBelow(Mutant.size())); // truncation
    } else {
      const std::size_t At =
          static_cast<std::size_t>(Rng.nextBelow(Mutant.size()));
      Mutant[At] = static_cast<char>(Rng.nextBelow(256)); // byte flip
    }
    const auto Parsed = TraceLog::parseChecked(Mutant);
    // Either it still parses, or the error is typed with a line
    // number inside the text — never a crash, never a mystery code.
    if (!Parsed.ok()) {
      EXPECT_EQ(Parsed.status().code(), fault::ErrorCode::TraceMalformed);
      EXPECT_GE(Parsed.status().detail(), 1u);
    }
  }
}

//===----------------------------------------------------------------------===//
// Timed replay
//===----------------------------------------------------------------------===//

namespace {

TraceLog timedScenario(std::uint64_t Blocks) {
  ScenarioConfig Scen;
  Scen.Shape = ScenarioShape::SkewedHot;
  Scen.Operations = 600;
  Scen.VolumeBlocks = Blocks;
  Scen.Seed = 21;
  return synthesizeScenario(Scen);
}

} // namespace

TEST(TimedReplay, StatsMatchTheUntimedReplay) {
  const TraceLog Log = timedScenario(512);
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;

  ReductionPipeline PipeA(Platform::paper(), Config);
  Volume VolA(PipeA, VolumeConfig{512});
  const TraceRunStats Untimed = replayTrace(VolA, Log);
  VolA.flush();

  ReductionPipeline PipeB(Platform::paper(), Config);
  Volume VolB(PipeB, VolumeConfig{512});
  const TimedReplayReport Timed = replayTraceTimed(VolB, Log);

  EXPECT_EQ(Timed.Stats.Writes, Untimed.Writes);
  EXPECT_EQ(Timed.Stats.Reads, Untimed.Reads);
  EXPECT_EQ(Timed.Stats.Trims, Untimed.Trims);
  EXPECT_EQ(Timed.Stats.BlocksWritten, Untimed.BlocksWritten);
  EXPECT_TRUE(Timed.Stats.clean());
  // The functional outcome is identical too.
  EXPECT_EQ(PipeA.ssd().nandBytesWritten(), PipeB.ssd().nandBytesWritten());

  EXPECT_GT(Timed.P50Us, 0.0);
  EXPECT_LE(Timed.P50Us, Timed.P95Us);
  EXPECT_LE(Timed.P95Us, Timed.P99Us);
  EXPECT_LE(Timed.P99Us, Timed.MaxUs);
  EXPECT_GT(Timed.WallUs, 0.0);
  EXPECT_GE(Timed.WallUs,
            static_cast<double>(Log.Records.back().ArrivalUs));
}

TEST(TimedReplay, RawModeAndGcCadence) {
  const TraceLog Log = timedScenario(256);
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Volume Vol(Pipeline, VolumeConfig{256});

  ReplayConfig Replay;
  Replay.RawWrites = true;
  Replay.GcEveryOps = 50;
  const TimedReplayReport Report = replayTraceTimed(Vol, Log, Replay);
  EXPECT_TRUE(Report.Stats.clean());
  EXPECT_EQ(Report.GcRuns, Log.Records.size() / 50);
  // Raw overwrite churn leaves garbage for the cadence to collect.
  EXPECT_GT(Report.ChunksCollected, 0u);
}

TEST(TimedReplay, RunsCleanOverTheFtl) {
  const TraceLog Log = timedScenario(512);
  PipelineConfig Config;
  Config.Dedup.Index.BinBits = 8;
  ssd::FtlConfig FtlCfg;
  FtlCfg.Blocks = 64;
  FtlCfg.PagesPerBlock = 64;
  Config.Ftl = FtlCfg;
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Volume Vol(Pipeline, VolumeConfig{512});

  ReplayConfig Replay;
  Replay.GcEveryOps = 64;
  const TimedReplayReport Report = replayTraceTimed(Vol, Log, Replay);
  EXPECT_TRUE(Report.Stats.clean());
  ASSERT_TRUE(Pipeline.ssd().ftlEnabled());
  EXPECT_GE(Pipeline.ssd().ftl()->measuredWaf(), 1.0);
  EXPECT_TRUE(Pipeline.ssd().ftl()->checkInvariants());
}
