//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the chunk module. The core invariant for
/// every chunker: the produced views partition the stream exactly, and
/// sizes respect the strategy's bounds. CDC chunkers additionally must
/// be shift-resistant.
///
//===----------------------------------------------------------------------===//

#include "chunk/FastCdcChunker.h"
#include "chunk/FixedChunker.h"
#include "chunk/RabinChunker.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

/// Asserts that Chunks exactly tile [BaseOffset, BaseOffset + Size).
void expectPartition(const std::vector<ChunkView> &Chunks,
                     const ByteVector &Stream, std::uint64_t BaseOffset) {
  std::uint64_t Expected = BaseOffset;
  std::size_t StreamPos = 0;
  for (const ChunkView &Chunk : Chunks) {
    ASSERT_EQ(Chunk.StreamOffset, Expected);
    ASSERT_LE(StreamPos + Chunk.Data.size(), Stream.size());
    EXPECT_EQ(Chunk.Data.data(), Stream.data() + StreamPos);
    Expected += Chunk.Data.size();
    StreamPos += Chunk.Data.size();
  }
  EXPECT_EQ(StreamPos, Stream.size());
}

} // namespace

//===----------------------------------------------------------------------===//
// FixedChunker
//===----------------------------------------------------------------------===//

TEST(FixedChunker, ExactMultiple) {
  const ByteVector Data = randomData(16384, 1);
  FixedChunker Chunker(4096);
  std::vector<ChunkView> Chunks;
  Chunker.split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  ASSERT_EQ(Chunks.size(), 4u);
  for (const ChunkView &Chunk : Chunks)
    EXPECT_EQ(Chunk.Data.size(), 4096u);
  expectPartition(Chunks, Data, 0);
}

TEST(FixedChunker, TrailingPartialChunk) {
  const ByteVector Data = randomData(10000, 2);
  FixedChunker Chunker(4096);
  std::vector<ChunkView> Chunks;
  Chunker.split(ByteSpan(Data.data(), Data.size()), 100, Chunks);
  ASSERT_EQ(Chunks.size(), 3u);
  EXPECT_EQ(Chunks[2].Data.size(), 10000u - 8192u);
  expectPartition(Chunks, Data, 100);
}

TEST(FixedChunker, EmptyStream) {
  FixedChunker Chunker(4096);
  std::vector<ChunkView> Chunks;
  Chunker.split(ByteSpan(), 0, Chunks);
  EXPECT_TRUE(Chunks.empty());
}

TEST(FixedChunker, MetaData) {
  FixedChunker Chunker(8192);
  EXPECT_STREQ(Chunker.name(), "fixed");
  EXPECT_EQ(Chunker.nominalChunkSize(), 8192u);
}

//===----------------------------------------------------------------------===//
// Content-defined chunkers: shared properties, parameterized over both
// implementations and several size configurations.
//===----------------------------------------------------------------------===//

namespace {

struct CdcCase {
  const char *Name;
  std::size_t Min, Avg, Max;
};

class CdcTest : public ::testing::TestWithParam<std::tuple<int, CdcCase>> {
protected:
  std::unique_ptr<Chunker> makeChunker() const {
    const auto &[Kind, Sizes] = GetParam();
    if (Kind == 0) {
      RabinConfig Config;
      Config.MinSize = Sizes.Min;
      Config.AvgSize = Sizes.Avg;
      Config.MaxSize = Sizes.Max;
      return std::make_unique<RabinChunker>(Config);
    }
    FastCdcConfig Config;
    Config.MinSize = Sizes.Min;
    Config.AvgSize = Sizes.Avg;
    Config.MaxSize = Sizes.Max;
    return std::make_unique<FastCdcChunker>(Config);
  }
};

} // namespace

TEST_P(CdcTest, PartitionsStreamExactly) {
  const ByteVector Data = randomData(256 * 1024, 3);
  const auto Chunker = makeChunker();
  std::vector<ChunkView> Chunks;
  Chunker->split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  expectPartition(Chunks, Data, 0);
}

TEST_P(CdcTest, RespectsSizeBounds) {
  const auto &[Kind, Sizes] = GetParam();
  const ByteVector Data = randomData(256 * 1024, 4);
  const auto Chunker = makeChunker();
  std::vector<ChunkView> Chunks;
  Chunker->split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  ASSERT_GT(Chunks.size(), 1u);
  for (std::size_t I = 0; I + 1 < Chunks.size(); ++I) {
    EXPECT_GT(Chunks[I].Data.size(), Sizes.Min);
    EXPECT_LE(Chunks[I].Data.size(), Sizes.Max);
  }
}

TEST_P(CdcTest, MeanChunkSizeNearTarget) {
  const auto &[Kind, Sizes] = GetParam();
  const ByteVector Data = randomData(1024 * 1024, 5);
  const auto Chunker = makeChunker();
  std::vector<ChunkView> Chunks;
  Chunker->split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  const double Mean =
      static_cast<double>(Data.size()) / static_cast<double>(Chunks.size());
  // Loose band: the mean must land within 2x of the target either way.
  EXPECT_GT(Mean, static_cast<double>(Sizes.Avg) * 0.5);
  EXPECT_LT(Mean, static_cast<double>(Sizes.Avg) * 2.0);
}

TEST_P(CdcTest, DeterministicAcrossRuns) {
  const ByteVector Data = randomData(128 * 1024, 6);
  const auto ChunkerA = makeChunker();
  const auto ChunkerB = makeChunker();
  std::vector<ChunkView> A, B;
  ChunkerA->split(ByteSpan(Data.data(), Data.size()), 0, A);
  ChunkerB->split(ByteSpan(Data.data(), Data.size()), 0, B);
  ASSERT_EQ(A.size(), B.size());
  for (std::size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].Data.size(), B[I].Data.size());
}

TEST_P(CdcTest, ShiftResistance) {
  // Inserting bytes at the front must leave most downstream chunk
  // boundaries intact — the property fixed-size chunking lacks.
  const ByteVector Data = randomData(512 * 1024, 7);
  ByteVector Shifted(17, 0xEE);
  Shifted.insert(Shifted.end(), Data.begin(), Data.end());

  const auto Chunker = makeChunker();
  std::vector<ChunkView> Original, Moved;
  Chunker->split(ByteSpan(Data.data(), Data.size()), 0, Original);
  Chunker->split(ByteSpan(Shifted.data(), Shifted.size()), 0, Moved);

  // Collect chunk content hashes and count re-found chunks.
  std::set<std::string> OriginalChunks;
  for (const ChunkView &Chunk : Original)
    OriginalChunks.insert(std::string(
        reinterpret_cast<const char *>(Chunk.Data.data()),
        Chunk.Data.size()));
  std::size_t Refound = 0;
  for (const ChunkView &Chunk : Moved)
    Refound += OriginalChunks.count(std::string(
        reinterpret_cast<const char *>(Chunk.Data.data()),
        Chunk.Data.size()));
  EXPECT_GT(Refound, Moved.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, CdcTest,
    ::testing::Combine(::testing::Values(0, 1), // 0=Rabin, 1=FastCDC
                       ::testing::Values(CdcCase{"small", 512, 2048, 8192},
                                         CdcCase{"default", 2048, 8192,
                                                 32768})),
    [](const ::testing::TestParamInfo<CdcTest::ParamType> &Info) {
      return std::string(std::get<0>(Info.param) == 0 ? "rabin_"
                                                      : "fastcdc_") +
             std::get<1>(Info.param).Name;
    });

//===----------------------------------------------------------------------===//
// Chunker-specific details
//===----------------------------------------------------------------------===//

TEST(RabinChunker, AllZerosHitsMaxSize) {
  // Constant data gives a constant rolling hash: either it always cuts
  // (immediately past MinSize) or never (MaxSize clamp) — both legal;
  // all chunks except the tail must be the same size.
  const ByteVector Data(100 * 1024, 0);
  RabinChunker Chunker;
  std::vector<ChunkView> Chunks;
  Chunker.split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  ASSERT_GT(Chunks.size(), 1u);
  for (std::size_t I = 1; I + 1 < Chunks.size(); ++I)
    EXPECT_EQ(Chunks[I].Data.size(), Chunks[0].Data.size());
}

TEST(FastCdcChunker, Names) {
  FastCdcChunker Chunker;
  EXPECT_STREQ(Chunker.name(), "fastcdc");
  RabinChunker Rabin;
  EXPECT_STREQ(Rabin.name(), "rabin");
}

TEST(RabinChunker, TinyStreamIsOneChunk) {
  const ByteVector Data = randomData(100, 8);
  RabinChunker Chunker;
  std::vector<ChunkView> Chunks;
  Chunker.split(ByteSpan(Data.data(), Data.size()), 0, Chunks);
  ASSERT_EQ(Chunks.size(), 1u);
  EXPECT_EQ(Chunks[0].Data.size(), 100u);
}
