//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the chunk read cache: LRU semantics and capacity
/// accounting in isolation, plus the pipeline integration — hit/miss
/// charging, invalidation on GC, scrub bypass (a cached-clean copy
/// must never mask corrupt flash), and the dedup-concentrates-reads
/// effect on a hot-spot trace.
///
//===----------------------------------------------------------------------===//

#include "core/BackgroundReducer.h"
#include "core/ChunkCache.h"
#include "core/TraceRunner.h"
#include "util/Random.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

ByteVector bytesOfSize(std::size_t Size, std::uint8_t Fill) {
  return ByteVector(Size, Fill);
}

} // namespace

//===----------------------------------------------------------------------===//
// ChunkCache in isolation
//===----------------------------------------------------------------------===//

TEST(ChunkCache, HitAfterPut) {
  ChunkCache Cache(1024);
  EXPECT_FALSE(Cache.get(1).has_value());
  Cache.put(1, bytesOfSize(100, 0xAA));
  const auto Hit = Cache.get(1);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->size(), 100u);
  EXPECT_EQ((*Hit)[0], 0xAA);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(ChunkCache, EvictsLeastRecentlyUsed) {
  ChunkCache Cache(300);
  Cache.put(1, bytesOfSize(100, 1));
  Cache.put(2, bytesOfSize(100, 2));
  Cache.put(3, bytesOfSize(100, 3));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(Cache.get(1).has_value());
  Cache.put(4, bytesOfSize(100, 4));
  EXPECT_TRUE(Cache.get(1).has_value());
  EXPECT_FALSE(Cache.get(2).has_value()); // evicted
  EXPECT_TRUE(Cache.get(3).has_value());
  EXPECT_TRUE(Cache.get(4).has_value());
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_LE(Cache.cachedBytes(), 300u);
}

TEST(ChunkCache, OversizedEntriesAreNotCached) {
  ChunkCache Cache(100);
  Cache.put(1, bytesOfSize(200, 1));
  EXPECT_FALSE(Cache.get(1).has_value());
  EXPECT_EQ(Cache.cachedBytes(), 0u);
}

TEST(ChunkCache, RefreshUpdatesContentAndSize) {
  ChunkCache Cache(1000);
  Cache.put(1, bytesOfSize(100, 1));
  Cache.put(1, bytesOfSize(400, 9));
  const auto Hit = Cache.get(1);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->size(), 400u);
  EXPECT_EQ(Cache.cachedBytes(), 400u);
  EXPECT_EQ(Cache.entryCount(), 1u);
}

TEST(ChunkCache, InvalidateAndClear) {
  ChunkCache Cache(1000);
  Cache.put(1, bytesOfSize(100, 1));
  Cache.put(2, bytesOfSize(100, 2));
  Cache.invalidate(1);
  EXPECT_FALSE(Cache.get(1).has_value());
  EXPECT_TRUE(Cache.get(2).has_value());
  Cache.clear();
  EXPECT_FALSE(Cache.get(2).has_value());
  EXPECT_EQ(Cache.cachedBytes(), 0u);
}

TEST(ChunkCache, CapacityNeverExceeded) {
  ChunkCache Cache(1000);
  Random Rng(5);
  for (int I = 0; I < 500; ++I) {
    Cache.put(Rng.nextBelow(50), bytesOfSize(1 + Rng.nextBelow(300), 7));
    EXPECT_LE(Cache.cachedBytes(), 1000u);
  }
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

namespace {

constexpr std::size_t BlockSize = 4096;

struct CacheFixture : ::testing::Test {
  std::unique_ptr<ReductionPipeline> Pipeline;
  std::unique_ptr<Volume> Vol;

  void rebuild(std::size_t CacheBytes) {
    PipelineConfig Config;
    Config.Dedup.Index.BinBits = 8;
    Config.ReadCacheBytes = CacheBytes;
    Pipeline = std::make_unique<ReductionPipeline>(Platform::paper(),
                                                   Config);
    VolumeConfig VolConfig;
    VolConfig.BlockCount = 256;
    Vol = std::make_unique<Volume>(*Pipeline, VolConfig);
  }

  ByteVector writeOneBlock(std::uint64_t Tag, std::uint64_t Lba) {
    ByteVector Data(BlockSize);
    fillTraceBlock(Tag, MutableByteSpan(Data.data(), Data.size()));
    [[maybe_unused]] const bool Ok =
        Vol->writeBlocks(Lba, ByteSpan(Data.data(), Data.size()));
    assert(Ok);
    return Data;
  }
};

} // namespace

TEST_F(CacheFixture, RepeatedReadsHitTheCache) {
  rebuild(1 << 20);
  const ByteVector Data = writeOneBlock(1, 0);
  const double SsdAfterWrite =
      Pipeline->ledger().busySeconds(Resource::Ssd);

  // First read misses (flash), the rest hit (DRAM).
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(*Vol->readBlocks(0, 1), Data);
  ASSERT_NE(Pipeline->readCache(), nullptr);
  EXPECT_EQ(Pipeline->readCache()->misses(), 1u);
  EXPECT_EQ(Pipeline->readCache()->hits(), 9u);
  // Only the miss charged an SSD read.
  const double SsdDelta =
      Pipeline->ledger().busySeconds(Resource::Ssd) - SsdAfterWrite;
  EXPECT_NEAR(SsdDelta, Platform::paper().Model.Ssd.RandRead4KUs * 1e-6,
              1e-9);
}

TEST_F(CacheFixture, DisabledCacheReadsFlashEveryTime) {
  rebuild(0);
  EXPECT_EQ(Pipeline->readCache(), nullptr);
  const ByteVector Data = writeOneBlock(2, 0);
  const double Before = Pipeline->ledger().busySeconds(Resource::Ssd);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(*Vol->readBlocks(0, 1), Data);
  const double Delta =
      Pipeline->ledger().busySeconds(Resource::Ssd) - Before;
  EXPECT_NEAR(Delta, 4 * Platform::paper().Model.Ssd.RandRead4KUs * 1e-6,
              1e-9);
}

TEST_F(CacheFixture, GcInvalidatesCachedChunks) {
  rebuild(1 << 20);
  writeOneBlock(3, 0);
  EXPECT_TRUE(Vol->readBlocks(0, 1).has_value()); // cache it
  ASSERT_TRUE(Vol->trim(0, 1));
  ASSERT_EQ(Vol->collectGarbage(), 1u);
  // The location is gone from store AND cache; a fresh write of new
  // content must not resurrect stale bytes.
  const ByteVector Fresh = writeOneBlock(4, 0);
  EXPECT_EQ(*Vol->readBlocks(0, 1), Fresh);
}

TEST_F(CacheFixture, ScrubBypassesCacheAndSeesFlashCorruption) {
  rebuild(1 << 20);
  writeOneBlock(5, 0);
  // Warm the cache with a clean copy, then corrupt the flash block.
  EXPECT_TRUE(Vol->readBlocks(0, 1).has_value());
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Vol->mapping()[0], 25));
  // Cached reads still serve clean data (the production hazard)…
  EXPECT_TRUE(Vol->readBlocks(0, 1).has_value());
  // …but the scrub must not be fooled.
  EXPECT_EQ(Vol->scrub().CorruptChunks, 1u);
}

TEST_F(CacheFixture, DedupConcentratesReadsIntoTheCache) {
  // 64 logical blocks backed by 4 hot shared chunks: a tiny cache
  // absorbs almost all reads.
  rebuild(4 * BlockSize + 1024);
  for (std::uint64_t Lba = 0; Lba < 64; ++Lba)
    writeOneBlock(Lba % 4, Lba);
  Random Rng(9);
  for (int I = 0; I < 200; ++I)
    EXPECT_TRUE(Vol->readBlocks(Rng.nextBelow(64), 1).has_value());
  EXPECT_GT(Pipeline->readCache()->hitRate(), 0.95);
}
