//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the SSD model: service-time charges, baseline
/// figures, and the endurance accounting that motivates inline
/// reduction (§1).
///
//===----------------------------------------------------------------------===//

#include "ssd/SsdModel.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

struct SsdFixture : ::testing::Test {
  CostModel Model;
  ResourceLedger Ledger;
};

} // namespace

TEST_F(SsdFixture, SequentialWriteChargesServiceTime) {
  SsdModel Ssd(Model, Ledger);
  Ssd.writeSequential(1 << 20);
  EXPECT_NEAR(Ledger.busySeconds(Resource::Ssd),
              Model.ssdSeqWriteUs(1 << 20) * 1e-6, 1e-12);
}

TEST_F(SsdFixture, ZeroSizedOpsAreFree) {
  SsdModel Ssd(Model, Ledger);
  Ssd.writeSequential(0);
  Ssd.writeRandom4K(0);
  Ssd.readSequential(0);
  Ssd.readRandom4K(0);
  EXPECT_EQ(Ledger.busySeconds(Resource::Ssd), 0.0);
  EXPECT_EQ(Ssd.nandBytesWritten(), 0u);
}

TEST_F(SsdFixture, RandomWriteIopsMatchBaseline) {
  SsdModel Ssd(Model, Ledger);
  // The paper's comparison baseline: ~80K IOPS.
  EXPECT_NEAR(Ssd.baselineWriteIops4K(), 80000.0, 1.0);
  Ssd.writeRandom4K(1000);
  EXPECT_NEAR(Ledger.busySeconds(Resource::Ssd),
              1000.0 * Model.Ssd.RandWrite4KUs * 1e-6, 1e-12);
}

TEST_F(SsdFixture, ReadsChargeButDoNotWearNand) {
  SsdModel Ssd(Model, Ledger);
  Ssd.readSequential(1 << 20);
  Ssd.readRandom4K(100);
  EXPECT_GT(Ledger.busySeconds(Resource::Ssd), 0.0);
  EXPECT_EQ(Ssd.nandBytesWritten(), 0u);
}

TEST_F(SsdFixture, EnduranceTracksWafByAccessPattern) {
  SsdModel Ssd(Model, Ledger);
  Ssd.writeSequential(1000000);
  const std::uint64_t SeqNand = Ssd.nandBytesWritten();
  EXPECT_NEAR(static_cast<double>(SeqNand), 1000000 * Model.Ssd.SequentialWaf,
              2.0);
  Ssd.writeRandom4K(100);
  EXPECT_NEAR(static_cast<double>(Ssd.nandBytesWritten() - SeqNand),
              100 * 4096 * Model.Ssd.RandomWaf, 2.0);
}

TEST_F(SsdFixture, EnduranceRatioBelowOneWithInlineReduction) {
  SsdModel Ssd(Model, Ledger);
  // Host submits 4 MiB; inline reduction destages only 1 MiB.
  Ssd.noteHostWrite(4 << 20);
  Ssd.writeSequential(1 << 20);
  EXPECT_LT(Ssd.enduranceRatio(), 0.5);
}

TEST_F(SsdFixture, EnduranceRatioAboveOneWithBackgroundReduction) {
  SsdModel Ssd(Model, Ledger);
  // Background scheme: write everything raw first, then rewrite the
  // reduced copy later — more NAND wear than no reduction at all (§1).
  Ssd.noteHostWrite(4 << 20);
  Ssd.writeSequential(4 << 20); // initial raw destage
  Ssd.writeSequential(1 << 20); // background reduced rewrite
  EXPECT_GT(Ssd.enduranceRatio(), 1.0);
}

TEST_F(SsdFixture, EnduranceRatioZeroWhenNoHostWrites) {
  SsdModel Ssd(Model, Ledger);
  EXPECT_EQ(Ssd.enduranceRatio(), 0.0);
}
