//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the dummy-I/O calibrator (E5, §4(3)): mode feasibility per
/// platform, selection sanity, and the paper's headline choice (GPU for
/// compression on the paper platform).
///
//===----------------------------------------------------------------------===//

#include "core/Calibrator.h"

#include <gtest/gtest.h>

#include <string>

using namespace padre;

namespace {

CalibratorConfig quickConfig() {
  CalibratorConfig Config;
  Config.DummyBytes = 2 << 20; // keep unit tests fast
  Config.Base.Dedup.Index.BinBits = 8;
  Config.Base.Dedup.Index.BufferCapacityPerBin = 8;
  return Config;
}

} // namespace

TEST(Calibrator, PaperPlatformPicksGpuCompression) {
  const CalibrationResult Result =
      calibrate(Platform::paper(), quickConfig());
  // §4(3): "Allocating the GPU for compression is the best choice
  // among the integration methods."
  EXPECT_EQ(Result.BestMode, PipelineMode::GpuCompress);
  for (unsigned I = 0; I < PipelineModeCount; ++I)
    EXPECT_GT(Result.ThroughputIops[I], 0.0) << "mode " << I;
}

TEST(Calibrator, NoGpuPlatformPicksCpuOnlyAndSkipsGpuModes) {
  const CalibrationResult Result =
      calibrate(Platform::noGpu(), quickConfig());
  EXPECT_EQ(Result.BestMode, PipelineMode::CpuOnly);
  EXPECT_GT(
      Result.ThroughputIops[static_cast<unsigned>(PipelineMode::CpuOnly)],
      0.0);
  for (PipelineMode Mode :
       {PipelineMode::GpuDedup, PipelineMode::GpuCompress,
        PipelineMode::GpuBoth})
    EXPECT_EQ(Result.ThroughputIops[static_cast<unsigned>(Mode)], 0.0);
}

TEST(Calibrator, BestModeHasMaxThroughput) {
  const CalibrationResult Result =
      calibrate(Platform::paper(), quickConfig());
  const double Best =
      Result.ThroughputIops[static_cast<unsigned>(Result.BestMode)];
  for (double Iops : Result.ThroughputIops)
    EXPECT_LE(Iops, Best + 1e-9);
}

TEST(Calibrator, FastGpuPlatformStillFavorsGpu) {
  const CalibrationResult Result =
      calibrate(Platform::fastGpu(), quickConfig());
  EXPECT_NE(Result.BestMode, PipelineMode::CpuOnly);
}

TEST(Calibrator, WeakGpuReducesGpuAdvantage) {
  const CalibrationResult Paper =
      calibrate(Platform::paper(), quickConfig());
  const CalibrationResult Weak =
      calibrate(Platform::weakGpu(), quickConfig());
  const auto GpuComp = static_cast<unsigned>(PipelineMode::GpuCompress);
  const auto CpuOnly = static_cast<unsigned>(PipelineMode::CpuOnly);
  const double PaperGain =
      Paper.ThroughputIops[GpuComp] / Paper.ThroughputIops[CpuOnly];
  const double WeakGain =
      Weak.ThroughputIops[GpuComp] / Weak.ThroughputIops[CpuOnly];
  EXPECT_LT(WeakGain, PaperGain);
}

TEST(Calibrator, SummaryListsEveryModeAndSelection) {
  const CalibrationResult Result =
      calibrate(Platform::noGpu(), quickConfig());
  const std::string Text = Result.summary();
  EXPECT_NE(Text.find("cpu-only"), std::string::npos);
  EXPECT_NE(Text.find("gpu-compress"), std::string::npos);
  EXPECT_NE(Text.find("selected"), std::string::npos);
  EXPECT_NE(Text.find("n/a"), std::string::npos);
}

TEST(Calibrator, DeterministicAcrossRuns) {
  const CalibrationResult A = calibrate(Platform::paper(), quickConfig());
  const CalibrationResult B = calibrate(Platform::paper(), quickConfig());
  EXPECT_EQ(A.BestMode, B.BestMode);
  for (unsigned I = 0; I < PipelineModeCount; ++I)
    EXPECT_DOUBLE_EQ(A.ThroughputIops[I], B.ThroughputIops[I]);
}
