//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the dedup and compression engines: functional correctness
/// of both backends, ledger charging, GPU offload mechanics, flush
/// side-effects, and the adaptive offload controller.
///
//===----------------------------------------------------------------------===//

#include "core/CompressEngine.h"

#include <cstring>
#include "core/DedupEngine.h"
#include "util/Random.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

using namespace padre;

namespace {

struct EngineFixture : ::testing::Test {
  CostModel Model;
  ResourceLedger Ledger;
  ThreadPool Pool{4};
  SsdModel Ssd{Model, Ledger};

  DedupEngineConfig dedupConfig(bool Gpu) {
    DedupEngineConfig Config;
    Config.Index.BinBits = 8;
    Config.Index.BufferCapacityPerBin = 8;
    Config.GpuOffload = Gpu;
    return Config;
  }

  /// Builds chunk views over a generated stream.
  static std::vector<ChunkView> viewsOf(const ByteVector &Data,
                                        std::size_t ChunkSize = 4096) {
    std::vector<ChunkView> Views;
    for (std::size_t Offset = 0; Offset < Data.size();
         Offset += ChunkSize)
      Views.push_back(ChunkView{
          ByteSpan(Data.data() + Offset,
                   std::min(ChunkSize, Data.size() - Offset)),
          Offset});
    return Views;
  }

  static std::vector<std::uint64_t> locationsFor(std::size_t Count,
                                                 std::uint64_t Base = 0) {
    std::vector<std::uint64_t> Locations(Count);
    for (std::size_t I = 0; I < Count; ++I)
      Locations[I] = Base + I;
    return Locations;
  }
};

ByteVector streamWithDuplicates(std::size_t Blocks, double DedupRatio,
                                std::uint64_t Seed) {
  WorkloadConfig Config;
  Config.TotalBytes = Blocks * 4096;
  Config.DedupRatio = DedupRatio;
  Config.CompressRatio = 2.0;
  Config.Seed = Seed;
  return VdbenchStream(Config).generateAll();
}

} // namespace

//===----------------------------------------------------------------------===//
// DedupEngine — CPU only
//===----------------------------------------------------------------------===//

TEST_F(EngineFixture, DedupDetectsDuplicatesAcrossBatches) {
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr,
                     dedupConfig(false));
  const ByteVector Data = streamWithDuplicates(64, 1.0, 1);
  const auto Views = viewsOf(Data);

  std::vector<DedupItem> First, Second;
  Engine.processBatch(Views, locationsFor(Views.size()), First);
  for (const DedupItem &Item : First)
    EXPECT_EQ(Item.Outcome, LookupOutcome::Unique);

  Engine.processBatch(Views, locationsFor(Views.size(), 1000), Second);
  for (std::size_t I = 0; I < Second.size(); ++I) {
    EXPECT_NE(Second[I].Outcome, LookupOutcome::Unique);
    EXPECT_EQ(Second[I].Location, First[I].Location)
        << "duplicate must resolve to the original location";
  }
}

TEST_F(EngineFixture, DedupChargesCpuHashAndIndexCosts) {
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr,
                     dedupConfig(false));
  const ByteVector Data = streamWithDuplicates(32, 1.0, 2);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> Items;
  Engine.processBatch(Views, locationsFor(Views.size()), Items);

  const double Expected =
      32 * (Model.cpuHashUs(4096) + Model.Cpu.IndexProbeUs +
            Model.Cpu.IndexMaintainUs);
  EXPECT_NEAR(Ledger.busySeconds(Resource::CpuPool), Expected * 1e-6,
              Expected * 1e-6 * 0.01);
  EXPECT_EQ(Ledger.busySeconds(Resource::Gpu), 0.0);
}

TEST_F(EngineFixture, SerialIndexingChargesTheLock) {
  DedupEngineConfig Config = dedupConfig(false);
  Config.SerialIndexing = true;
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr, Config);
  const ByteVector Data = streamWithDuplicates(32, 1.0, 21);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> Items;
  Engine.processBatch(Views, locationsFor(Views.size()), Items);
  // Index work (probe + maintenance) appears on the lock resource.
  const double Expected =
      32 * (Model.Cpu.IndexProbeUs + Model.Cpu.IndexMaintainUs);
  EXPECT_NEAR(Ledger.busySeconds(Resource::IndexLock), Expected * 1e-6,
              Expected * 1e-8);
  // The parallel path (no flag) leaves the lock untouched.
  Ledger.reset();
  DedupEngine Parallel(Model, Ledger, Pool, Ssd, nullptr,
                       dedupConfig(false));
  Parallel.processBatch(Views, locationsFor(Views.size()), Items);
  EXPECT_EQ(Ledger.busySeconds(Resource::IndexLock), 0.0);
}

TEST_F(EngineFixture, DedupFinishFlushesBuffersToSsd) {
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr,
                     dedupConfig(false));
  const ByteVector Data = streamWithDuplicates(32, 1.0, 3);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> Items;
  Engine.processBatch(Views, locationsFor(Views.size()), Items);
  const double SsdBefore = Ledger.busySeconds(Resource::Ssd);
  Engine.finish();
  EXPECT_GT(Ledger.busySeconds(Resource::Ssd), SsdBefore);
}

TEST_F(EngineFixture, DedupItemsCarryFingerprints) {
  DedupEngine Engine(Model, Ledger, Pool, Ssd, nullptr,
                     dedupConfig(false));
  const ByteVector Data = streamWithDuplicates(8, 1.0, 4);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> Items;
  Engine.processBatch(Views, locationsFor(Views.size()), Items);
  for (std::size_t I = 0; I < Views.size(); ++I)
    EXPECT_EQ(Items[I].Fp, Fingerprint::ofData(Views[I].Data));
}

//===----------------------------------------------------------------------===//
// DedupEngine — GPU offload
//===----------------------------------------------------------------------===//

TEST_F(EngineFixture, GpuOffloadKeepsResultsCorrect) {
  GpuDevice Device(Model, Ledger);
  DedupEngineConfig Config = dedupConfig(true);
  Config.OffloadInitial = 0.5;
  DedupEngine Engine(Model, Ledger, Pool, Ssd, &Device, Config);

  const ByteVector Data = streamWithDuplicates(512, 2.0, 5);
  const auto Views = viewsOf(Data);

  // Two passes; second pass must find every chunk as a duplicate.
  std::vector<DedupItem> Items;
  std::size_t Processed = 0;
  for (std::size_t Begin = 0; Begin < Views.size(); Begin += 128) {
    const std::size_t End = std::min(Views.size(), Begin + 128);
    Engine.processBatch(
        std::span<const ChunkView>(Views.data() + Begin, End - Begin),
        locationsFor(End - Begin, Processed), Items);
    Processed += End - Begin;
  }
  Engine.finish(); // populate the GPU table fully

  std::vector<DedupItem> Second;
  Engine.processBatch(
      std::span<const ChunkView>(Views.data(), 128),
      locationsFor(128, 100000), Second);
  for (const DedupItem &Item : Second)
    EXPECT_NE(Item.Outcome, LookupOutcome::Unique);
  EXPECT_GT(Ledger.busySeconds(Resource::Gpu), 0.0);
  EXPECT_GT(Device.launches(KernelFamily::Indexing), 0u);
}

TEST_F(EngineFixture, GpuHitsResolveToOriginalLocations) {
  GpuDevice Device(Model, Ledger);
  DedupEngineConfig Config = dedupConfig(true);
  Config.OffloadInitial = 1.0;
  Config.OffloadFloor = 1.0; // force everything through the GPU
  Config.Index.BufferCapacityPerBin = 1; // flush immediately
  DedupEngine Engine(Model, Ledger, Pool, Ssd, &Device, Config);

  const ByteVector Data = streamWithDuplicates(64, 1.0, 6);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> First, Second;
  Engine.processBatch(Views, locationsFor(Views.size()), First);
  Engine.processBatch(Views, locationsFor(Views.size(), 5000), Second);

  std::size_t GpuResolved = 0;
  for (std::size_t I = 0; I < Second.size(); ++I) {
    EXPECT_NE(Second[I].Outcome, LookupOutcome::Unique);
    EXPECT_EQ(Second[I].Location, First[I].Location);
    GpuResolved += Second[I].Outcome == LookupOutcome::DupGpu;
  }
  // With full offload and immediate flush, the GPU resolves most
  // duplicates before the CPU path.
  EXPECT_GT(GpuResolved, Second.size() / 2);
}

TEST_F(EngineFixture, AdaptiveOffloadStaysWithinBounds) {
  GpuDevice Device(Model, Ledger);
  DedupEngineConfig Config = dedupConfig(true);
  DedupEngine Engine(Model, Ledger, Pool, Ssd, &Device, Config);
  const ByteVector Data = streamWithDuplicates(2048, 2.0, 7);
  const auto Views = viewsOf(Data);
  std::vector<DedupItem> Items;
  std::size_t Processed = 0;
  for (std::size_t Begin = 0; Begin < Views.size(); Begin += 256) {
    const std::size_t End = std::min(Views.size(), Begin + 256);
    Engine.processBatch(
        std::span<const ChunkView>(Views.data() + Begin, End - Begin),
        locationsFor(End - Begin, Processed), Items);
    Processed += End - Begin;
    EXPECT_GE(Engine.offloadFraction(), Config.OffloadFloor);
    EXPECT_LE(Engine.offloadFraction(), Config.OffloadCeiling);
  }
}

//===----------------------------------------------------------------------===//
// CompressEngine — both backends
//===----------------------------------------------------------------------===//

namespace {

class BackendTest : public EngineFixture,
                    public ::testing::WithParamInterface<CompressBackend> {
protected:
  std::unique_ptr<GpuDevice> Device;

  CompressEngine makeEngine() {
    CompressEngineConfig Config;
    Config.Backend = GetParam();
    if (GetParam() == CompressBackend::GpuLane)
      Device = std::make_unique<GpuDevice>(Model, Ledger);
    return CompressEngine(Model, Ledger, Pool, Device.get(), Config);
  }
};

} // namespace

TEST_P(BackendTest, CompressedBlocksDecodeToOriginal) {
  CompressEngine Engine = makeEngine();
  const ByteVector Data = streamWithDuplicates(64, 1.0, 8);
  const auto Views = viewsOf(Data);
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(Views, Out);
  ASSERT_EQ(Out.size(), Views.size());
  for (std::size_t I = 0; I < Out.size(); ++I) {
    const auto View =
        decodeBlock(ByteSpan(Out[I].Block.data(), Out[I].Block.size()));
    ASSERT_TRUE(View.has_value()) << I;
    ByteVector Decoded;
    if (View->Method == BlockMethod::Raw)
      Decoded.assign(View->Payload.begin(), View->Payload.end());
    else
      ASSERT_TRUE(LzCodec::decompress(View->Payload, View->OriginalSize,
                                      Decoded));
    EXPECT_TRUE(std::equal(Decoded.begin(), Decoded.end(),
                           Views[I].Data.begin()));
  }
}

TEST_P(BackendTest, CompressionSavesSpaceOnCompressibleData) {
  CompressEngine Engine = makeEngine();
  const ByteVector Data = streamWithDuplicates(64, 1.0, 9);
  const auto Views = viewsOf(Data);
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(Views, Out);
  std::uint64_t Stored = 0;
  for (const CompressedChunk &Chunk : Out)
    Stored += Chunk.Block.size();
  // The workload targets ratio 2; allow a generous band.
  EXPECT_LT(Stored, Data.size() * 3 / 4);
}

TEST_P(BackendTest, EmptyBatchIsFine) {
  CompressEngine Engine = makeEngine();
  std::vector<CompressedChunk> Out;
  Engine.compressBatch({}, Out);
  EXPECT_TRUE(Out.empty());
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendTest,
                         ::testing::Values(CompressBackend::Cpu,
                                           CompressBackend::GpuLane),
                         [](const auto &Info) {
                           return Info.param == CompressBackend::Cpu
                                      ? "cpu"
                                      : "gpulane";
                         });

TEST_F(EngineFixture, CpuBackendChargesCpuOnly) {
  CompressEngineConfig Config;
  CompressEngine Engine(Model, Ledger, Pool, nullptr, Config);
  const ByteVector Data = streamWithDuplicates(32, 1.0, 10);
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(viewsOf(Data), Out);
  EXPECT_GT(Ledger.busySeconds(Resource::CpuPool), 0.0);
  EXPECT_EQ(Ledger.busySeconds(Resource::Gpu), 0.0);
  EXPECT_EQ(Ledger.busySeconds(Resource::Pcie), 0.0);
}

TEST_F(EngineFixture, GpuBackendChargesGpuPcieAndCpuRefinement) {
  GpuDevice Device(Model, Ledger);
  CompressEngineConfig Config;
  Config.Backend = CompressBackend::GpuLane;
  CompressEngine Engine(Model, Ledger, Pool, &Device, Config);
  const ByteVector Data = streamWithDuplicates(64, 1.0, 11);
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(viewsOf(Data), Out);
  EXPECT_GT(Ledger.busySeconds(Resource::Gpu), 0.0);
  EXPECT_GT(Ledger.busySeconds(Resource::Pcie), 0.0);
  EXPECT_GT(Ledger.busySeconds(Resource::CpuPool), 0.0); // refinement
  EXPECT_GT(Device.launches(KernelFamily::Compression), 0u);
  EXPECT_GT(Ledger.bytesToDevice(), 0u);
  EXPECT_GT(Ledger.bytesFromDevice(), 0u);
}

TEST_F(EngineFixture, IncompressibleDataFallsBackToRaw) {
  CompressEngineConfig Config;
  CompressEngine Engine(Model, Ledger, Pool, nullptr, Config);
  ByteVector Data(64 * 4096);
  Random Rng(12);
  Rng.fillBytes(Data.data(), Data.size());
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(viewsOf(Data), Out);
  EXPECT_EQ(Engine.rawFallbacks(), Out.size());
  for (const CompressedChunk &Chunk : Out)
    EXPECT_TRUE(Chunk.StoredRaw);
}

TEST_F(EngineFixture, LockstepChargesDivergentChunksMore) {
  // Two inputs with identical total literal/match bytes, but one has
  // them split evenly across lanes and the other concentrates all the
  // literals in a single lane. Under the SIMT lockstep rule the
  // divergent chunk's wavefront is gated by its slowest lane, so the
  // GPU charge must be strictly higher.
  GpuDevice Device(Model, Ledger);
  CompressEngineConfig Config;
  Config.Backend = CompressBackend::GpuLane;
  Config.Lanes.Lanes = 8;
  CompressEngine Engine(Model, Ledger, Pool, &Device, Config);

  // Balanced: every 512 B lane is half filler, half noise.
  ByteVector Balanced(4096);
  Random Rng(21);
  for (std::size_t Lane = 0; Lane < 8; ++Lane) {
    std::memset(Balanced.data() + Lane * 512, 0x55, 256);
    Rng.fillBytes(Balanced.data() + Lane * 512 + 256, 256);
  }
  // Divergent: lanes 0-3 pure filler, lanes 4-7 pure noise (same
  // totals: 2 KiB filler, 2 KiB noise).
  ByteVector Divergent(4096);
  std::memset(Divergent.data(), 0x55, 2048);
  Rng.fillBytes(Divergent.data() + 2048, 2048);

  std::vector<CompressedChunk> Out;
  const ChunkView BalancedView{ByteSpan(Balanced.data(), 4096), 0};
  const ChunkView DivergentView{ByteSpan(Divergent.data(), 4096), 0};
  Engine.compressBatch(std::span<const ChunkView>(&BalancedView, 1), Out);
  const double BalancedExec =
      Ledger.busySeconds(Resource::Gpu) * 1e6 - Model.Gpu.LaunchUs;
  Ledger.reset();
  Engine.compressBatch(std::span<const ChunkView>(&DivergentView, 1), Out);
  const double DivergentExec =
      Ledger.busySeconds(Resource::Gpu) * 1e6 - Model.Gpu.LaunchUs;
  // The literal and match per-byte rates are deliberately close (the
  // calibration in EXPERIMENTS.md), so the lockstep penalty is a
  // few percent here — but it must be strictly and measurably worse.
  EXPECT_GT(DivergentExec, BalancedExec * 1.03);
}

TEST_F(EngineFixture, GpuBatchingRespectsSubBatchSize) {
  Model.Gpu.CompressBatchChunks = 16;
  GpuDevice Device(Model, Ledger);
  CompressEngineConfig Config;
  Config.Backend = CompressBackend::GpuLane;
  CompressEngine Engine(Model, Ledger, Pool, &Device, Config);
  const ByteVector Data = streamWithDuplicates(64, 1.0, 13);
  std::vector<CompressedChunk> Out;
  Engine.compressBatch(viewsOf(Data), Out);
  EXPECT_EQ(Device.launches(KernelFamily::Compression), 4u); // 64/16
}
