//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the hash module: SHA-1 / SHA-256 against official
/// test vectors, CRC-32C check values, FNV-1a, and the fingerprint
/// bin/prefix arithmetic the dedup index relies on.
///
//===----------------------------------------------------------------------===//

#include "hash/Crc32.h"
#include "hash/Fingerprint.h"
#include "hash/Fnv.h"
#include "hash/Sha1.h"
#include "hash/Sha1Batch.h"
#include "hash/Sha256.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace padre;

static ByteSpan bytesOf(const char *Text) {
  return ByteSpan(reinterpret_cast<const std::uint8_t *>(Text),
                  std::strlen(Text));
}

//===----------------------------------------------------------------------===//
// SHA-1 (FIPS 180-1 and RFC 3174 vectors)
//===----------------------------------------------------------------------===//

TEST(Sha1, EmptyString) {
  EXPECT_EQ(toHex(ByteSpan(Sha1::digest(bytesOf("")).data(), 20)),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(toHex(ByteSpan(Sha1::digest(bytesOf("abc")).data(), 20)),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      toHex(ByteSpan(
          Sha1::digest(
              bytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                      "nopq"))
              .data(),
          20)),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 Context;
  const ByteVector Block(1000, 'a');
  for (int I = 0; I < 1000; ++I)
    Context.update(ByteSpan(Block.data(), Block.size()));
  EXPECT_EQ(toHex(ByteSpan(Context.final().data(), 20)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  Random Rng(1);
  ByteVector Data(10000);
  Rng.fillBytes(Data.data(), Data.size());
  const auto OneShot = Sha1::digest(ByteSpan(Data.data(), Data.size()));

  // Feed in awkward piece sizes that straddle block boundaries.
  Sha1 Context;
  std::size_t Offset = 0;
  const std::size_t Pieces[] = {1, 63, 64, 65, 127, 128, 1000, 3, 0, 9999};
  for (std::size_t Piece : Pieces) {
    const std::size_t Take = std::min(Piece, Data.size() - Offset);
    Context.update(ByteSpan(Data.data() + Offset, Take));
    Offset += Take;
  }
  Context.update(ByteSpan(Data.data() + Offset, Data.size() - Offset));
  EXPECT_EQ(Context.final(), OneShot);
}

TEST(Sha1, PaddingBoundaryLengths) {
  // Message lengths around the 55/56/64-byte padding edges must all
  // produce distinct, stable digests.
  std::vector<Sha1::Digest> Digests;
  for (std::size_t Length : {54u, 55u, 56u, 57u, 63u, 64u, 65u}) {
    const ByteVector Data(Length, 0x5A);
    Digests.push_back(Sha1::digest(ByteSpan(Data.data(), Data.size())));
  }
  for (std::size_t I = 0; I < Digests.size(); ++I)
    for (std::size_t J = I + 1; J < Digests.size(); ++J)
      EXPECT_NE(Digests[I], Digests[J]);
}

//===----------------------------------------------------------------------===//
// SHA-256 (FIPS 180-2 vectors)
//===----------------------------------------------------------------------===//

TEST(Sha256, EmptyString) {
  EXPECT_EQ(
      toHex(ByteSpan(Sha256::digest(bytesOf("")).data(), 32)),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(
      toHex(ByteSpan(Sha256::digest(bytesOf("abc")).data(), 32)),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      toHex(ByteSpan(
          Sha256::digest(bytesOf(
                             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmn"
                             "lmnomnopnopq"))
              .data(),
          32)),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 Context;
  const ByteVector Block(1000, 'a');
  for (int I = 0; I < 1000; ++I)
    Context.update(ByteSpan(Block.data(), Block.size()));
  EXPECT_EQ(
      toHex(ByteSpan(Context.final().data(), 32)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

//===----------------------------------------------------------------------===//
// CRC-32C
//===----------------------------------------------------------------------===//

TEST(Crc32c, CheckValue) {
  // Standard CRC-32C check: "123456789" -> 0xE3069283.
  EXPECT_EQ(crc32c(bytesOf("123456789")), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(crc32c(bytesOf("")), 0u); }

TEST(Crc32c, SeedChaining) {
  const ByteSpan Whole = bytesOf("hello world");
  const std::uint32_t Full = crc32c(Whole);
  const std::uint32_t Partial = crc32c(Whole.subspan(5), crc32c(Whole.first(5)));
  EXPECT_EQ(Partial, Full);
}

TEST(Crc32c, DetectsBitFlip) {
  ByteVector Data(100, 0x41);
  const std::uint32_t Before = crc32c(ByteSpan(Data.data(), Data.size()));
  Data[50] ^= 0x01;
  EXPECT_NE(crc32c(ByteSpan(Data.data(), Data.size())), Before);
}

//===----------------------------------------------------------------------===//
// FNV-1a
//===----------------------------------------------------------------------===//

TEST(Fnv, KnownVectors) {
  // Published FNV-1a 64 values.
  EXPECT_EQ(fnv1a64(bytesOf("")), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64(bytesOf("a")), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64(bytesOf("foobar")), 0x85944171F73967E8ull);
}

TEST(Fnv, IntegerOverloadMixesAllBytes) {
  EXPECT_NE(fnv1a64(std::uint64_t{1}), fnv1a64(std::uint64_t{1} << 56));
}

//===----------------------------------------------------------------------===//
// Fingerprint
//===----------------------------------------------------------------------===//

TEST(Fingerprint, BinIdUsesLeadingBits) {
  Sha1::Digest Digest{};
  Digest[0] = 0xAB;
  Digest[1] = 0xCD;
  Digest[2] = 0xEF;
  const Fingerprint Fp(Digest);
  EXPECT_EQ(Fp.binId(8), 0xABu);
  EXPECT_EQ(Fp.binId(16), 0xABCDu);
  EXPECT_EQ(Fp.binId(4), 0xAu);
  EXPECT_EQ(Fp.binId(12), 0xABCu);
  EXPECT_EQ(Fp.binId(20), 0xABCDEu);
}

TEST(Fingerprint, BinIdIsUniformish) {
  // Hash uniformity: over many fingerprints, all 16 top-4-bit bins get
  // hits.
  int Bins[16] = {0};
  for (int I = 0; I < 512; ++I) {
    std::uint8_t Data[8];
    storeLe64(Data, static_cast<std::uint64_t>(I));
    Bins[Fingerprint::ofData(ByteSpan(Data, 8)).binId(4)] += 1;
  }
  for (int Count : Bins)
    EXPECT_GT(Count, 8);
}

TEST(Fingerprint, OrderingAndEquality) {
  const auto A = Fingerprint::ofData(bytesOf("a"));
  const auto B = Fingerprint::ofData(bytesOf("b"));
  EXPECT_EQ(A, Fingerprint::ofData(bytesOf("a")));
  EXPECT_NE(A, B);
  EXPECT_TRUE(A < B || B < A);
}

TEST(Fingerprint, Key64ReadsBigEndianWithZeroPad) {
  Sha1::Digest Digest{};
  for (unsigned I = 0; I < 20; ++I)
    Digest[I] = static_cast<std::uint8_t>(I + 1);
  const Fingerprint Fp(Digest);
  EXPECT_EQ(Fp.key64(0), 0x0102030405060708ull);
  // Offset 16: only 4 digest bytes remain; the rest reads as zero.
  EXPECT_EQ(Fp.key64(16), 0x1112131400000000ull);
}

TEST(Fingerprint, HexMatchesSha1) {
  EXPECT_EQ(Fingerprint::ofData(bytesOf("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(FingerprintHash, DistinctForDistinctDigests) {
  FingerprintHash Hasher;
  EXPECT_NE(Hasher(Fingerprint::ofData(bytesOf("x"))),
            Hasher(Fingerprint::ofData(bytesOf("y"))));
}

//===----------------------------------------------------------------------===//
// Sha1Batch: multi-buffer lanes vs the serial reference
//===----------------------------------------------------------------------===//

namespace {

// Messages with deliberately awkward lengths: empty, sub-block,
// exactly one block, just over, multi-block, and a large odd size —
// so lanes in one group retire at different rounds (tail divergence).
std::vector<ByteVector> batchMessages(std::size_t Count,
                                      std::uint64_t Seed) {
  static constexpr std::size_t Shapes[] = {0,  1,  55,  56,  63, 64,
                                           65, 127, 128, 1000, 4096, 4097};
  Random Rng(Seed);
  std::vector<ByteVector> Messages(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    const std::size_t Size =
        Shapes[I % (sizeof(Shapes) / sizeof(Shapes[0]))] + (I / 12) * 37;
    Messages[I].resize(Size);
    Rng.fillBytes(Messages[I].data(), Size);
  }
  return Messages;
}

} // namespace

TEST(Sha1Batch, WidthTimesBatchSweepMatchesSerial) {
  // Satellite requirement: widths {1,2,4,8} x batch sizes {1..17},
  // digests bit-identical to Sha1::digest — including every tail case
  // (e.g. 5 chunks at width 4 = one full group + one group of 1).
  for (const unsigned Width : {1u, 2u, 4u, 8u}) {
    const Sha1Batch Batch(Width);
    EXPECT_EQ(Batch.width(), Width);
    for (std::size_t Size = 1; Size <= 17; ++Size) {
      SCOPED_TRACE("width " + std::to_string(Width) + " batch " +
                   std::to_string(Size));
      const std::vector<ByteVector> Messages =
          batchMessages(Size, 0x51A1 + Width * 131 + Size);
      std::vector<ByteSpan> Inputs;
      for (const ByteVector &Message : Messages)
        Inputs.emplace_back(Message.data(), Message.size());
      std::vector<Sha1::Digest> Digests(Size);
      Batch.digestMany(Inputs, Digests);
      for (std::size_t I = 0; I < Size; ++I)
        EXPECT_EQ(Digests[I], Sha1::digest(Inputs[I]))
            << "lane " << I << " of " << Size;
    }
  }
}

TEST(Sha1Batch, KnownVectorsThroughEveryLanePosition) {
  // The RFC 3174 vectors must come out of every lane of a full-width
  // group, not just lane 0.
  const ByteSpan Abc = bytesOf("abc");
  std::vector<ByteSpan> Inputs(Sha1Batch::MaxWidth, Abc);
  std::vector<Sha1::Digest> Digests(Inputs.size());
  Sha1Batch::digestGroup(Inputs, Digests);
  const Sha1::Digest Expected = Sha1::digest(Abc);
  for (std::size_t I = 0; I < Digests.size(); ++I)
    EXPECT_EQ(Digests[I], Expected) << "lane " << I;
}

TEST(Sha1Batch, TailDivergenceShortAndLongLanesInterleaved) {
  // One group where lane lengths differ by orders of magnitude: the
  // short lanes retire after round 0 while the long lane keeps
  // consuming blocks. Ordering of retirements must not corrupt chains.
  std::vector<ByteVector> Messages;
  Messages.push_back(ByteVector());            // empty
  Messages.push_back(ByteVector(10000, 0xAB)); // ~157 blocks
  Messages.push_back(ByteVector(64, 0x01));    // exactly one block
  Messages.push_back(ByteVector(65, 0x02));    // one block + 1 byte
  std::vector<ByteSpan> Inputs;
  for (const ByteVector &Message : Messages)
    Inputs.emplace_back(Message.data(), Message.size());
  std::vector<Sha1::Digest> Digests(Inputs.size());
  Sha1Batch::digestGroup(Inputs, Digests);
  for (std::size_t I = 0; I < Inputs.size(); ++I)
    EXPECT_EQ(Digests[I], Sha1::digest(Inputs[I])) << "lane " << I;
}

TEST(Sha1Batch, WidthClampedToValidRange) {
  EXPECT_EQ(Sha1Batch(0).width(), 1u);
  EXPECT_EQ(Sha1Batch(100).width(), Sha1Batch::MaxWidth);
}
