//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the index module: bin layout arithmetic (prefix removal),
/// bin buffer semantics, bin tree merge/eviction, GPU bin table, and
/// the lock-free batch facade including flush events.
///
//===----------------------------------------------------------------------===//

#include "OracleCheck.h"

#include "index/BinBuffer.h"
#include "index/BinLayout.h"
#include "index/CpuBinStore.h"
#include "index/DedupIndex.h"
#include "index/ShardedFingerprintIndex.h"
#include "index/GpuBinTable.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

using namespace padre;

namespace {

Fingerprint fingerprintOf(std::uint64_t Value) {
  std::uint8_t Data[8];
  storeLe64(Data, Value);
  return Fingerprint::ofData(ByteSpan(Data, 8));
}

} // namespace

//===----------------------------------------------------------------------===//
// BinLayout
//===----------------------------------------------------------------------===//

TEST(BinLayout, PaperExampleTwoBytePrefix) {
  // §3.1(1): 2-byte prefix -> keep 18 of 20 bytes per hash. On a 4 TB /
  // 8 KiB system (512 Mi entries) that saves 1 GiB.
  const BinLayout Layout(16);
  EXPECT_EQ(Layout.binCount(), 65536u);
  EXPECT_EQ(Layout.prefixBytes(), 2u);
  EXPECT_EQ(Layout.suffixBytes(), 18u);
  const std::uint64_t Entries = (4ull << 40) / 8192;
  const std::uint64_t Saved = Entries * Layout.prefixBytes();
  EXPECT_EQ(Saved, 1ull << 30);
}

TEST(BinLayout, SuffixPlusPrefixReconstructsDigest) {
  const BinLayout Layout(16);
  const Fingerprint Fp = fingerprintOf(1234);
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);
  const std::uint32_t Bin = Layout.binOf(Fp);
  // Prefix bytes are exactly the bin id (big-endian).
  EXPECT_EQ(Fp.bytes()[0], static_cast<std::uint8_t>(Bin >> 8));
  EXPECT_EQ(Fp.bytes()[1], static_cast<std::uint8_t>(Bin & 0xFF));
  for (unsigned I = 0; I < Layout.suffixBytes(); ++I)
    EXPECT_EQ(Suffix[I], Fp.bytes()[2 + I]);
}

TEST(BinLayout, NonByteAlignedBinBits) {
  const BinLayout Layout(10);
  EXPECT_EQ(Layout.binCount(), 1024u);
  EXPECT_EQ(Layout.prefixBytes(), 1u); // floor(10/8)
  EXPECT_EQ(Layout.suffixBytes(), 19u);
  const Fingerprint Fp = fingerprintOf(99);
  EXPECT_LT(Layout.binOf(Fp), 1024u);
}

TEST(BinLayout, EntrySizes) {
  const BinLayout Layout(16);
  EXPECT_EQ(Layout.cpuEntryBytes(), 18u + 8u);
  EXPECT_EQ(Layout.gpuEntryBytes(), 18u);
}

//===----------------------------------------------------------------------===//
// BinBuffer
//===----------------------------------------------------------------------===//

namespace {

struct BufferFixture : ::testing::Test {
  BinLayout Layout{8};
  BinBuffer Buffer{Layout, 4};

  std::uint32_t insertFp(const Fingerprint &Fp, std::uint64_t Location,
                         bool *Full = nullptr) {
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    const std::uint32_t Bin = Layout.binOf(Fp);
    const bool F = Buffer.insert(Bin, Suffix, Location);
    if (Full)
      *Full = F;
    return Bin;
  }

  std::optional<std::uint64_t> lookupFp(const Fingerprint &Fp) {
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    return Buffer.lookup(Layout.binOf(Fp), Suffix);
  }
};

} // namespace

TEST_F(BufferFixture, InsertThenLookup) {
  const Fingerprint Fp = fingerprintOf(1);
  EXPECT_FALSE(lookupFp(Fp).has_value());
  insertFp(Fp, 42);
  const auto Hit = lookupFp(Fp);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, 42u);
}

TEST_F(BufferFixture, ReportsFullAtCapacity) {
  // Find four fingerprints in one bin.
  std::map<std::uint32_t, std::vector<std::uint64_t>> ByBin;
  for (std::uint64_t I = 0; I < 4000; ++I) {
    const std::uint32_t Bin = Layout.binOf(fingerprintOf(I));
    ByBin[Bin].push_back(I);
    if (ByBin[Bin].size() == 4)
      break;
  }
  const auto It =
      std::find_if(ByBin.begin(), ByBin.end(),
                   [](const auto &Pair) { return Pair.second.size() == 4; });
  ASSERT_NE(It, ByBin.end());
  bool Full = false;
  for (std::size_t I = 0; I < 4; ++I)
    insertFp(fingerprintOf(It->second[I]), I, &Full);
  EXPECT_TRUE(Full);
  EXPECT_EQ(Buffer.size(It->first), 4u);
}

TEST_F(BufferFixture, DrainSortsAndEmpties) {
  std::vector<std::uint64_t> Values;
  std::uint32_t TargetBin = 0;
  for (std::uint64_t I = 0; Values.size() < 4 && I < 10000; ++I) {
    const Fingerprint Fp = fingerprintOf(I);
    if (Values.empty())
      TargetBin = Layout.binOf(Fp);
    if (Layout.binOf(Fp) == TargetBin) {
      insertFp(Fp, I);
      Values.push_back(I);
    }
  }
  ASSERT_EQ(Values.size(), 4u);

  ByteVector Suffixes;
  std::vector<std::uint64_t> Locations;
  Buffer.drain(TargetBin, Suffixes, Locations);
  EXPECT_EQ(Locations.size(), 4u);
  EXPECT_EQ(Suffixes.size(), 4u * Layout.suffixBytes());
  EXPECT_EQ(Buffer.size(TargetBin), 0u);
  // Sorted by suffix.
  for (std::size_t I = 0; I + 1 < Locations.size(); ++I)
    EXPECT_LE(std::memcmp(Suffixes.data() + I * Layout.suffixBytes(),
                          Suffixes.data() + (I + 1) * Layout.suffixBytes(),
                          Layout.suffixBytes()),
              0);
}

TEST_F(BufferFixture, TotalEntriesAcrossBins) {
  for (std::uint64_t I = 0; I < 10; ++I)
    insertFp(fingerprintOf(I), I);
  EXPECT_EQ(Buffer.totalEntries(), 10u);
}

//===----------------------------------------------------------------------===//
// CpuBinStore
//===----------------------------------------------------------------------===//

namespace {

struct StoreFixture : ::testing::Test {
  BinLayout Layout{8};

  /// Inserts fingerprints via a sorted single-entry run each.
  void insertOne(CpuBinStore &Store, const Fingerprint &Fp,
                 std::uint64_t Location) {
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    ByteVector Suffixes(Suffix, Suffix + Layout.suffixBytes());
    Store.mergeRun(Layout.binOf(Fp),
                   ByteSpan(Suffixes.data(), Suffixes.size()), {Location});
  }

  std::optional<std::uint64_t> lookupOne(const CpuBinStore &Store,
                                         const Fingerprint &Fp) {
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    return Store.lookup(Layout.binOf(Fp), Suffix);
  }
};

} // namespace

TEST_F(StoreFixture, MergeAndLookupManyEntries) {
  CpuBinStore Store(Layout, 0, 1);
  for (std::uint64_t I = 0; I < 500; ++I)
    insertOne(Store, fingerprintOf(I), I);
  EXPECT_EQ(Store.totalEntries(), 500u);
  for (std::uint64_t I = 0; I < 500; ++I) {
    const auto Hit = lookupOne(Store, fingerprintOf(I));
    ASSERT_TRUE(Hit.has_value()) << "missing entry " << I;
    EXPECT_EQ(*Hit, I);
  }
  EXPECT_FALSE(lookupOne(Store, fingerprintOf(9999)).has_value());
}

TEST_F(StoreFixture, MergeKeepsBinsSorted) {
  CpuBinStore Store(Layout, 0, 2);
  // Insert in a scrambled order, then expect all lookups to succeed
  // (binary search requires sortedness).
  Random Rng(1);
  std::vector<std::uint64_t> Values(300);
  for (std::size_t I = 0; I < Values.size(); ++I)
    Values[I] = I * 13 + 7;
  for (std::size_t I = Values.size(); I > 1; --I)
    std::swap(Values[I - 1], Values[Rng.nextBelow(I)]);
  for (std::uint64_t Value : Values)
    insertOne(Store, fingerprintOf(Value), Value);
  for (std::uint64_t Value : Values)
    EXPECT_TRUE(lookupOne(Store, fingerprintOf(Value)).has_value());
}

TEST_F(StoreFixture, CapacityEvictsRandomEntries) {
  CpuBinStore Store(Layout, 2, 3); // 2 entries per bin
  for (std::uint64_t I = 0; I < 200; ++I)
    insertOne(Store, fingerprintOf(I), I);
  for (std::uint32_t Bin = 0; Bin < Layout.binCount(); ++Bin)
    EXPECT_LE(Store.entryCount(Bin), 2u);
  EXPECT_LE(Store.totalEntries(), 2u * Layout.binCount());
  // Some lookups must now miss (the paper accepts missed duplicates).
  std::size_t Misses = 0;
  for (std::uint64_t I = 0; I < 200; ++I)
    Misses += !lookupOne(Store, fingerprintOf(I)).has_value();
  EXPECT_GT(Misses, 0u);
}

TEST_F(StoreFixture, MemoryBytesReflectsPrefixTruncation) {
  CpuBinStore Narrow(BinLayout(16), 0, 4);
  CpuBinStore Wide(BinLayout(8), 0, 4);
  // Same entries under both layouts.
  for (std::uint64_t I = 0; I < 100; ++I) {
    const Fingerprint Fp = fingerprintOf(I);
    for (auto *StorePtr : {&Narrow, &Wide}) {
      const BinLayout &L =
          StorePtr == &Narrow ? Narrow.layout() : Wide.layout();
      std::uint8_t Suffix[Fingerprint::Size];
      L.extractSuffix(Fp, Suffix);
      ByteVector Suffixes(Suffix, Suffix + L.suffixBytes());
      StorePtr->mergeRun(L.binOf(Fp),
                         ByteSpan(Suffixes.data(), Suffixes.size()), {I});
    }
  }
  // 16 bin bits store 18-byte suffixes; 8 bin bits store 19-byte ones.
  EXPECT_EQ(Wide.memoryBytes() - Narrow.memoryBytes(), 100u);
}

TEST_F(StoreFixture, DuplicateRunsMergeStably) {
  CpuBinStore Store(Layout, 0, 5);
  insertOne(Store, fingerprintOf(1), 10);
  insertOne(Store, fingerprintOf(1), 20); // same digest again
  // Both entries live in the bin; lookup returns one of them.
  const auto Hit = lookupOne(Store, fingerprintOf(1));
  ASSERT_TRUE(Hit.has_value());
  EXPECT_TRUE(*Hit == 10 || *Hit == 20);
}

//===----------------------------------------------------------------------===//
// GpuBinTable
//===----------------------------------------------------------------------===//

namespace {

struct GpuTableFixture : ::testing::Test {
  CostModel Model;
  ResourceLedger Ledger;
  BinLayout Layout{8};

  GpuTableFixture() { Model.Gpu.DeviceMemoryMiB = 1.0; }

  void applyOne(GpuBinTable &Table, const Fingerprint &Fp,
                std::uint64_t Location) {
    std::uint8_t Suffix[Fingerprint::Size];
    Layout.extractSuffix(Fp, Suffix);
    ByteVector Suffixes(Suffix, Suffix + Layout.suffixBytes());
    Table.applyFlush(Layout.binOf(Fp),
                     ByteSpan(Suffixes.data(), Suffixes.size()),
                     {Location});
  }
};

} // namespace

TEST_F(GpuTableFixture, SizesToDeviceMemory) {
  GpuDevice Device(Model, Ledger);
  GpuBinTable Table(Device, Layout, 16, 1);
  EXPECT_GT(Table.coverageFraction(), 0.0);
  EXPECT_LE(Table.deviceBytes(), Device.memoryCapacityBytes());
  EXPECT_EQ(Device.memoryUsedBytes(), Table.deviceBytes());
}

TEST_F(GpuTableFixture, ReleasesMemoryOnDestruction) {
  GpuDevice Device(Model, Ledger);
  {
    GpuBinTable Table(Device, Layout, 16, 1);
    EXPECT_GT(Device.memoryUsedBytes(), 0u);
  }
  EXPECT_EQ(Device.memoryUsedBytes(), 0u);
}

TEST_F(GpuTableFixture, ProbeFindsFlushedEntries) {
  GpuDevice Device(Model, Ledger);
  GpuBinTable Table(Device, Layout, 16, 1);
  const Fingerprint Fp = fingerprintOf(77);
  if (!Table.coversBin(Layout.binOf(Fp)))
    GTEST_SKIP() << "bin not covered under this budget";
  EXPECT_FALSE(Table.probe(Fp).Hit);
  applyOne(Table, Fp, 555);
  const GpuProbeResult Probe = Table.probe(Fp);
  ASSERT_TRUE(Probe.Hit);
  EXPECT_EQ(Table.resolveLocation(Probe.SlotIndex), 555u);
}

TEST_F(GpuTableFixture, RandomReplacementBoundsOccupancy) {
  GpuDevice Device(Model, Ledger);
  GpuBinTable Table(Device, Layout, 4, 1); // tiny bins
  // Flood one covered bin with many entries.
  std::uint32_t TargetBin = 0xFFFFFFFF;
  std::size_t Applied = 0;
  for (std::uint64_t I = 0; I < 50000 && Applied < 64; ++I) {
    const Fingerprint Fp = fingerprintOf(I);
    const std::uint32_t Bin = Layout.binOf(Fp);
    if (!Table.coversBin(Bin))
      continue;
    if (TargetBin == 0xFFFFFFFF)
      TargetBin = Bin;
    if (Bin != TargetBin)
      continue;
    applyOne(Table, Fp, I);
    ++Applied;
  }
  ASSERT_GT(Applied, 4u);
  EXPECT_LE(Table.occupiedSlots(), 4u * 1); // only the flooded bin filled
}

TEST_F(GpuTableFixture, UncoveredBinUpdatesAreIgnored) {
  Model.Gpu.DeviceMemoryMiB = 0.001; // almost no device memory
  GpuDevice Device(Model, Ledger);
  GpuBinTable Table(Device, Layout, 64, 1);
  EXPECT_LT(Table.coverageFraction(), 1.0);
  // Find an uncovered bin and apply — must be a no-op.
  for (std::uint64_t I = 0; I < 5000; ++I) {
    const Fingerprint Fp = fingerprintOf(I);
    if (!Table.coversBin(Layout.binOf(Fp))) {
      applyOne(Table, Fp, I);
      break;
    }
  }
  EXPECT_EQ(Table.occupiedSlots(), 0u);
}

//===----------------------------------------------------------------------===//
// DedupIndex (batch facade)
//===----------------------------------------------------------------------===//

namespace {

struct IndexFixture : ::testing::Test {
  DedupIndexConfig Config;
  ThreadPool Pool{4};

  IndexFixture() {
    Config.BinBits = 8;
    Config.BufferCapacityPerBin = 4;
  }

  std::vector<LookupResult>
  run(DedupIndex &Index, const std::vector<Fingerprint> &Fps,
      std::vector<FlushEvent> *FlushOut = nullptr,
      const std::vector<std::uint8_t> *Known = nullptr) {
    std::vector<std::uint64_t> Locations(Fps.size());
    for (std::size_t I = 0; I < Fps.size(); ++I)
      Locations[I] = 1000 + I;
    std::vector<LookupResult> Results(Fps.size());
    std::vector<FlushEvent> Flushes;
    Index.processBatch(
        Fps, Locations,
        Known ? std::span<const std::uint8_t>(Known->data(), Known->size())
              : std::span<const std::uint8_t>(),
        Pool, Results, FlushOut ? *FlushOut : Flushes);
    return Results;
  }
};

} // namespace

TEST_F(IndexFixture, FirstOccurrenceUniqueSecondDuplicate) {
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps;
  for (std::uint64_t I = 0; I < 100; ++I)
    Fps.push_back(fingerprintOf(I));

  const auto First = run(Index, Fps);
  for (const LookupResult &Result : First)
    EXPECT_EQ(Result.Outcome, LookupOutcome::Unique);

  const auto Second = run(Index, Fps);
  for (std::size_t I = 0; I < Second.size(); ++I) {
    EXPECT_NE(Second[I].Outcome, LookupOutcome::Unique) << I;
    EXPECT_EQ(Second[I].Location, 1000 + I); // original locations
  }
  EXPECT_EQ(Index.uniqueInserts(), 100u);
  EXPECT_EQ(Index.bufferHits() + Index.treeHits(), 100u);
}

TEST_F(IndexFixture, DuplicatesInsideOneBatch) {
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps;
  for (std::uint64_t I = 0; I < 50; ++I) {
    Fps.push_back(fingerprintOf(I));
    Fps.push_back(fingerprintOf(I)); // immediate duplicate
  }
  const auto Results = run(Index, Fps);
  std::size_t Uniques = 0, Dups = 0;
  for (const LookupResult &Result : Results)
    (Result.Outcome == LookupOutcome::Unique ? Uniques : Dups) += 1;
  EXPECT_EQ(Uniques, 50u);
  EXPECT_EQ(Dups, 50u);
}

TEST_F(IndexFixture, FlushEventsFireWhenBuffersFill) {
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps;
  for (std::uint64_t I = 0; I < 2000; ++I)
    Fps.push_back(fingerprintOf(I));
  std::vector<FlushEvent> Flushes;
  run(Index, Fps, &Flushes);
  EXPECT_GT(Flushes.size(), 0u);
  for (const FlushEvent &Event : Flushes) {
    EXPECT_EQ(Event.Suffixes.size(),
              Event.Locations.size() * Index.layout().suffixBytes());
    EXPECT_EQ(Event.Locations.size(), Config.BufferCapacityPerBin);
  }
  // Flushed entries moved to the tree and stay findable.
  for (std::uint64_t I = 0; I < 2000; ++I)
    EXPECT_TRUE(Index.lookup(fingerprintOf(I)).has_value()) << I;
}

TEST_F(IndexFixture, KnownDuplicatesSkipCpuPath) {
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps = {fingerprintOf(1), fingerprintOf(2)};
  std::vector<std::uint8_t> Known = {1, 0};
  const auto Results = run(Index, Fps, nullptr, &Known);
  EXPECT_EQ(Results[0].Outcome, LookupOutcome::DupGpu);
  EXPECT_EQ(Results[1].Outcome, LookupOutcome::Unique);
  EXPECT_EQ(Index.gpuHits(), 1u);
  // The known item was NOT inserted: next time it's still unique.
  std::vector<Fingerprint> Again = {fingerprintOf(1)};
  const auto Second = run(Index, Again);
  EXPECT_EQ(Second[0].Outcome, LookupOutcome::Unique);
}

TEST_F(IndexFixture, FlushAllDrainsEverything) {
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps;
  for (std::uint64_t I = 0; I < 37; ++I)
    Fps.push_back(fingerprintOf(I));
  run(Index, Fps);
  std::vector<FlushEvent> Flushes;
  Index.flushAll(Flushes);
  std::size_t Drained = 0;
  for (const FlushEvent &Event : Flushes)
    Drained += Event.Locations.size();
  EXPECT_EQ(Drained + Index.bufferHits(), 37u);
  EXPECT_EQ(Index.treeEntries(), 37u);
  // Everything still findable after the final flush.
  for (std::uint64_t I = 0; I < 37; ++I)
    EXPECT_TRUE(Index.lookup(fingerprintOf(I)).has_value());
}

TEST_F(IndexFixture, ParallelAndSerialAgree) {
  // The bin partitioning must make results independent of worker count.
  DedupIndexConfig SerialConfig = Config;
  DedupIndex Parallel(Config), Serial(SerialConfig);
  ThreadPool OnePool(1);

  std::vector<Fingerprint> Fps;
  Random Rng(9);
  for (std::uint64_t I = 0; I < 1000; ++I)
    Fps.push_back(fingerprintOf(Rng.nextBelow(400)));

  std::vector<std::uint64_t> Locations(Fps.size());
  for (std::size_t I = 0; I < Fps.size(); ++I)
    Locations[I] = I;
  std::vector<LookupResult> ResultsA(Fps.size()), ResultsB(Fps.size());
  std::vector<FlushEvent> FlushA, FlushB;
  Parallel.processBatch(Fps, Locations, {}, Pool, ResultsA, FlushA);
  Serial.processBatch(Fps, Locations, {}, OnePool, ResultsB, FlushB);

  for (std::size_t I = 0; I < Fps.size(); ++I) {
    EXPECT_EQ(ResultsA[I].Outcome == LookupOutcome::Unique,
              ResultsB[I].Outcome == LookupOutcome::Unique)
        << I;
    EXPECT_EQ(ResultsA[I].Location, ResultsB[I].Location) << I;
  }
}

TEST_F(IndexFixture, MemoryBoundedIndexMissesSomeDuplicates) {
  Config.MaxEntriesPerBin = 2;
  DedupIndex Index(Config);
  std::vector<Fingerprint> Fps;
  for (std::uint64_t I = 0; I < 3000; ++I)
    Fps.push_back(fingerprintOf(I));
  run(Index, Fps);
  EXPECT_GT(Index.evictions(), 0u);

  // Second pass: some duplicates are no longer detected (paper §3.1(1):
  // "the deduplication module cannot find some duplicate data. However
  // that is not a big deal").
  const auto Results = run(Index, Fps);
  std::size_t MissedDuplicates = 0;
  for (const LookupResult &Result : Results)
    MissedDuplicates += Result.Outcome == LookupOutcome::Unique;
  EXPECT_GT(MissedDuplicates, 0u);
}

//===----------------------------------------------------------------------===//
// Oracle replay: the sharded composite against the plain index
//===----------------------------------------------------------------------===//

TEST(ShardedOracle, CompositeMatchesPlainIndexUnderRandomOps) {
  // The same OracleCheck harness the hotpath suite drives against the
  // concurrent index, applied to the sequential sharded composite:
  // shard count must be a pure layout decision.
  DedupIndexConfig Serial;
  Serial.BinBits = 8;
  Serial.BufferCapacityPerBin = 4;
  for (unsigned Shards : {2u, 5u, 16u}) {
    SCOPED_TRACE("shards " + std::to_string(Shards));
    DedupIndexConfig Sharded = Serial;
    Sharded.Shards = Shards;
    Random Rng(0x51AB + Shards);
    const std::vector<oracle::IndexOp> Ops =
        oracle::randomOps(Rng, 200, /*Universe=*/512);
    oracle::replayConfigsAndCompare(Serial, Sharded, Ops);
  }
}

TEST(ShardedOracle, BoundedCompositeEvictsIdentically) {
  DedupIndexConfig Serial;
  Serial.BinBits = 6;
  Serial.BufferCapacityPerBin = 2;
  Serial.MaxEntriesPerBin = 4;
  DedupIndexConfig Sharded = Serial;
  Sharded.Shards = 4;
  Random Rng(0xE71C);
  const std::vector<oracle::IndexOp> Ops =
      oracle::randomOps(Rng, 200, /*Universe=*/2048, /*MaxBatch=*/24);
  oracle::replayConfigsAndCompare(Serial, Sharded, Ops);
}
