//===----------------------------------------------------------------------===//
///
/// \file
/// Serial-oracle property-test harness for fingerprint indexes: replay
/// one operation sequence against two FingerprintIndex implementations
/// and diff everything observable — per-op outcomes (including buffer
/// depths and duplicate locations), flush-event streams, cumulative
/// counters, occupancy, and the CPU-lane ledger charge each batch's
/// outcomes would produce in the dedup engine.
///
/// The harness is how "observationally equivalent to DedupIndex" is
/// made a checkable property instead of a comment: test_hotpath drives
/// it with the concurrent index as candidate, test_index with the
/// prefix-sharded composite, and test_service with the service-layer
/// index configuration. Any divergence fails with the op number via
/// SCOPED_TRACE, so a shrinking seed hunt is a one-line loop.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_TESTS_ORACLECHECK_H
#define PADRE_TESTS_ORACLECHECK_H

#include "index/FingerprintIndex.h"
#include "sim/CostModel.h"
#include "util/Bytes.h"
#include "util/Random.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace padre {
namespace oracle {

/// One replayable index operation.
enum class OpKind : std::uint8_t {
  Batch,    ///< processBatch over Fps/Locations (KnownDuplicate optional)
  Upsert,   ///< single insert-if-absent of Fps[0]
  Remove,   ///< single removal of Fps[0]
  Lookup,   ///< read-only probe of Fps[0]
  FlushAll, ///< end-of-run drain of every bin buffer
};

struct IndexOp {
  OpKind Kind = OpKind::Batch;
  std::vector<Fingerprint> Fps;
  std::vector<std::uint64_t> Locations;
  /// Same length as Fps or empty (Batch only): GPU-resolved markers.
  std::vector<std::uint8_t> KnownDuplicate;
};

/// Deterministic fingerprint for an integer identity.
inline Fingerprint fingerprintOf(std::uint64_t Value) {
  std::uint8_t Data[8];
  storeLe64(Data, Value);
  return Fingerprint::ofData(ByteSpan(Data, 8));
}

/// Generates a seeded random op sequence: mostly batches (sizes
/// 1..MaxBatch, identities from [0, Universe) so duplicates recur),
/// sprinkled with single-item upserts, removals, read-only lookups and
/// the occasional full drain. \p WithKnown marks ~1/8 of batch items as
/// GPU-resolved, exercising the DupGpu bypass.
inline std::vector<IndexOp> randomOps(Random &Rng, std::size_t OpCount,
                                      std::uint64_t Universe,
                                      std::size_t MaxBatch = 48,
                                      bool WithKnown = false) {
  std::vector<IndexOp> Ops;
  Ops.reserve(OpCount);
  std::uint64_t NextLocation = 0;
  for (std::size_t I = 0; I < OpCount; ++I) {
    IndexOp Op;
    const std::uint64_t Roll = Rng.nextBelow(16);
    if (Roll < 10) {
      Op.Kind = OpKind::Batch;
      const std::size_t Size = 1 + Rng.nextBelow(MaxBatch);
      for (std::size_t J = 0; J < Size; ++J) {
        Op.Fps.push_back(fingerprintOf(Rng.nextBelow(Universe)));
        Op.Locations.push_back(NextLocation++);
      }
      if (WithKnown) {
        Op.KnownDuplicate.assign(Size, 0);
        for (std::size_t J = 0; J < Size; ++J)
          Op.KnownDuplicate[J] = Rng.nextBelow(8) == 0 ? 1 : 0;
      }
    } else if (Roll < 12) {
      Op.Kind = OpKind::Upsert;
      Op.Fps.push_back(fingerprintOf(Rng.nextBelow(Universe)));
      Op.Locations.push_back(NextLocation++);
    } else if (Roll < 14) {
      Op.Kind = OpKind::Remove;
      Op.Fps.push_back(fingerprintOf(Rng.nextBelow(Universe)));
    } else if (Roll < 15) {
      Op.Kind = OpKind::Lookup;
      Op.Fps.push_back(fingerprintOf(Rng.nextBelow(Universe)));
    } else {
      Op.Kind = OpKind::FlushAll;
    }
    Ops.push_back(std::move(Op));
  }
  return Ops;
}

/// The dedup engine's CPU index charge for one batch's outcomes
/// (DedupEngine::processBatch's formula, microseconds). Equal outcomes
/// must imply bit-equal ledger charges — this is the "same ledger
/// charges" half of observational equivalence.
inline double indexChargeUs(const CostModel &Model,
                            std::span<const LookupResult> Results,
                            std::span<const std::uint8_t> KnownDuplicate) {
  std::size_t BufferHits = 0;
  std::size_t FullProbes = 0;
  std::size_t Uniques = 0;
  for (std::size_t I = 0; I < Results.size(); ++I) {
    if (!KnownDuplicate.empty() && KnownDuplicate[I])
      continue;
    if (Results[I].Outcome == LookupOutcome::DupBuffer)
      ++BufferHits;
    else
      ++FullProbes;
    if (Results[I].Outcome == LookupOutcome::Unique)
      ++Uniques;
  }
  return static_cast<double>(BufferHits) * Model.Cpu.IndexProbeBufferUs +
         static_cast<double>(FullProbes) * Model.Cpu.IndexProbeUs +
         static_cast<double>(Uniques) * Model.Cpu.IndexMaintainUs;
}

/// Diffs two flush-event streams bit-for-bit (order included: flush
/// order drives SSD log writes and GPU table updates).
inline void expectSameFlushes(const std::vector<FlushEvent> &Expected,
                              const std::vector<FlushEvent> &Actual) {
  ASSERT_EQ(Expected.size(), Actual.size());
  for (std::size_t I = 0; I < Expected.size(); ++I) {
    SCOPED_TRACE("flush " + std::to_string(I));
    EXPECT_EQ(Expected[I].Bin, Actual[I].Bin);
    EXPECT_EQ(Expected[I].Suffixes, Actual[I].Suffixes);
    EXPECT_EQ(Expected[I].Locations, Actual[I].Locations);
  }
}

/// Diffs every cumulative counter and occupancy total two indexes
/// expose. Epoch/CasRetries are deliberately excluded — they are
/// implementation-progress signals, not semantics.
inline void expectSameTotals(const FingerprintIndex &Oracle,
                             const FingerprintIndex &Candidate) {
  EXPECT_EQ(Oracle.bufferHits(), Candidate.bufferHits());
  EXPECT_EQ(Oracle.treeHits(), Candidate.treeHits());
  EXPECT_EQ(Oracle.gpuHits(), Candidate.gpuHits());
  EXPECT_EQ(Oracle.uniqueInserts(), Candidate.uniqueInserts());
  EXPECT_EQ(Oracle.evictions(), Candidate.evictions());
  EXPECT_EQ(Oracle.treeEntries(), Candidate.treeEntries());
  EXPECT_EQ(Oracle.memoryBytes(), Candidate.memoryBytes());
}

/// Replays \p Ops against both indexes, diffing per-op results, flush
/// events, modelled ledger charges, and running totals after every op.
inline void replayAndCompare(FingerprintIndex &Oracle,
                             FingerprintIndex &Candidate,
                             std::span<const IndexOp> Ops,
                             ThreadPool &Pool) {
  const CostModel Model;
  std::vector<FlushEvent> OracleFlush;
  std::vector<FlushEvent> CandidateFlush;
  std::vector<LookupResult> OracleResults;
  std::vector<LookupResult> CandidateResults;
  for (std::size_t OpIdx = 0; OpIdx < Ops.size(); ++OpIdx) {
    const IndexOp &Op = Ops[OpIdx];
    SCOPED_TRACE("op " + std::to_string(OpIdx));
    OracleFlush.clear();
    CandidateFlush.clear();
    switch (Op.Kind) {
    case OpKind::Batch: {
      const std::size_t Size = Op.Fps.size();
      OracleResults.assign(Size, LookupResult());
      CandidateResults.assign(Size, LookupResult());
      Oracle.processBatch(Op.Fps, Op.Locations, Op.KnownDuplicate, Pool,
                          OracleResults, OracleFlush);
      Candidate.processBatch(Op.Fps, Op.Locations, Op.KnownDuplicate, Pool,
                             CandidateResults, CandidateFlush);
      for (std::size_t I = 0; I < Size; ++I) {
        SCOPED_TRACE("item " + std::to_string(I));
        EXPECT_EQ(OracleResults[I].Outcome, CandidateResults[I].Outcome);
        EXPECT_EQ(OracleResults[I].Location, CandidateResults[I].Location);
        EXPECT_EQ(OracleResults[I].BufferDepth,
                  CandidateResults[I].BufferDepth);
      }
      EXPECT_EQ(indexChargeUs(Model, OracleResults, Op.KnownDuplicate),
                indexChargeUs(Model, CandidateResults, Op.KnownDuplicate));
      break;
    }
    case OpKind::Upsert: {
      const LookupResult A =
          Oracle.upsert(Op.Fps[0], Op.Locations[0], OracleFlush);
      const LookupResult B =
          Candidate.upsert(Op.Fps[0], Op.Locations[0], CandidateFlush);
      EXPECT_EQ(A.Outcome, B.Outcome);
      EXPECT_EQ(A.Location, B.Location);
      EXPECT_EQ(A.BufferDepth, B.BufferDepth);
      break;
    }
    case OpKind::Remove:
      EXPECT_EQ(Oracle.remove(Op.Fps[0]), Candidate.remove(Op.Fps[0]));
      break;
    case OpKind::Lookup:
      EXPECT_EQ(Oracle.lookup(Op.Fps[0]), Candidate.lookup(Op.Fps[0]));
      break;
    case OpKind::FlushAll:
      Oracle.flushAll(OracleFlush);
      Candidate.flushAll(CandidateFlush);
      break;
    }
    expectSameFlushes(OracleFlush, CandidateFlush);
    expectSameTotals(Oracle, Candidate);
  }
}

/// Builds both indexes from configs and replays (the common shape:
/// oracle = serial config, candidate = same semantics via another
/// implementation).
inline void replayConfigsAndCompare(const DedupIndexConfig &OracleConfig,
                                    const DedupIndexConfig &CandidateConfig,
                                    std::span<const IndexOp> Ops,
                                    unsigned Threads = 4) {
  const std::unique_ptr<FingerprintIndex> Oracle =
      makeFingerprintIndex(OracleConfig);
  const std::unique_ptr<FingerprintIndex> Candidate =
      makeFingerprintIndex(CandidateConfig);
  ThreadPool Pool(Threads);
  replayAndCompare(*Oracle, *Candidate, Ops, Pool);
}

} // namespace oracle
} // namespace padre

#endif // PADRE_TESTS_ORACLECHECK_H
