//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests for the reduction pipeline: end-to-end write /
/// read-back verification in every integration mode, reduction-ratio
/// accounting, single-operation configurations, warmup reset, and
/// endurance bookkeeping.
///
//===----------------------------------------------------------------------===//

#include "core/ReductionPipeline.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <string>

using namespace padre;

namespace {

WorkloadConfig workload(std::uint64_t Bytes, double Dedup, double Compress,
                        std::uint64_t Seed = 21) {
  WorkloadConfig Config;
  Config.TotalBytes = Bytes;
  Config.DedupRatio = Dedup;
  Config.CompressRatio = Compress;
  Config.Seed = Seed;
  return Config;
}

PipelineConfig pipelineConfig(PipelineMode Mode) {
  PipelineConfig Config;
  Config.Mode = Mode;
  Config.Dedup.Index.BinBits = 8;
  Config.Dedup.Index.BufferCapacityPerBin = 8;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// End-to-end correctness in every mode
//===----------------------------------------------------------------------===//

class ModeTest : public ::testing::TestWithParam<PipelineMode> {};

TEST_P(ModeTest, WriteThenVerifyReadback) {
  const VdbenchStream Stream(workload(8 << 20, 2.0, 2.0));
  const ByteVector Data = Stream.generateAll();

  ReductionPipeline Pipeline(Platform::paper(), pipelineConfig(GetParam()));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST_P(ModeTest, ReductionRatiosNearWorkloadTargets) {
  const VdbenchStream Stream(workload(8 << 20, 2.0, 2.0));
  const ByteVector Data = Stream.generateAll();
  ReductionPipeline Pipeline(Platform::paper(), pipelineConfig(GetParam()));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_NEAR(Report.DedupRatio, 2.0, 0.4);
  EXPECT_NEAR(Report.CompressRatio, 2.0, 0.6);
  EXPECT_GT(Report.ReductionRatio, 2.5); // ~4x minus overheads
  EXPECT_EQ(Report.LogicalBytes, Data.size());
  EXPECT_EQ(Report.LogicalChunks, Data.size() / 4096);
  EXPECT_EQ(Report.UniqueChunks + Report.DupChunks, Report.LogicalChunks);
}

TEST_P(ModeTest, ThroughputAndBusyTimesArePositive) {
  const VdbenchStream Stream(workload(4 << 20, 2.0, 2.0));
  const ByteVector Data = Stream.generateAll();
  ReductionPipeline Pipeline(Platform::paper(), pipelineConfig(GetParam()));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_GT(Report.ThroughputIops, 0.0);
  EXPECT_GT(Report.MakespanSec, 0.0);
  EXPECT_GT(Report.CpuBusySec, 0.0);
  const bool UsesGpu = modeOffloadsDedup(GetParam()) ||
                       modeOffloadsCompression(GetParam());
  EXPECT_EQ(Report.GpuBusySec > 0.0, UsesGpu);
  EXPECT_EQ(Report.KernelLaunches > 0, UsesGpu);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeTest,
    ::testing::Values(PipelineMode::CpuOnly, PipelineMode::GpuDedup,
                      PipelineMode::GpuCompress, PipelineMode::GpuBoth),
    [](const ::testing::TestParamInfo<PipelineMode> &Info) {
      std::string Name = pipelineModeName(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Dedup-specific behaviour
//===----------------------------------------------------------------------===//

TEST(Pipeline, DuplicateHeavyStreamStoresFewChunks) {
  const VdbenchStream Stream(workload(4 << 20, 4.0, 1.5));
  const ByteVector Data = Stream.generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_NEAR(Report.DedupRatio, 4.0, 1.0);
  EXPECT_EQ(Pipeline.store().chunkCount(), Report.UniqueChunks);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST(Pipeline, RewritingSameStreamIsAllDuplicates) {
  const VdbenchStream Stream(workload(2 << 20, 1.0, 2.0));
  const ByteVector Data = Stream.generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  const std::uint64_t StoredAfterFirst = Pipeline.store().chunkCount();
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  EXPECT_EQ(Pipeline.store().chunkCount(), StoredAfterFirst);
  const PipelineReport Report = Pipeline.report();
  EXPECT_NEAR(Report.DedupRatio, 2.0, 0.1);
  // Read-back covers both copies.
  const auto ReadBack = Pipeline.readBack();
  ASSERT_TRUE(ReadBack.has_value());
  EXPECT_EQ(ReadBack->size(), 2 * Data.size());
}

TEST(Pipeline, TemporalLocalityHitsBinBuffer) {
  // A tight dedup window produces duplicates of *recent* blocks, which
  // the bin buffer should catch before the tree (§3.3).
  WorkloadConfig Config = workload(4 << 20, 3.0, 2.0);
  Config.DedupWindowBlocks = 16;
  const ByteVector Data = VdbenchStream(Config).generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_GT(Report.DupFromBuffer, Report.DupFromTree);
}

//===----------------------------------------------------------------------===//
// Single-operation configurations (used by benches E2/E3)
//===----------------------------------------------------------------------===//

TEST(Pipeline, DedupOnlyStoresRawBlocks) {
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.CompressEnabled = false;
  const ByteVector Data =
      VdbenchStream(workload(2 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_NEAR(Report.CompressRatio, 1.0, 0.01);
  EXPECT_GT(Report.DedupRatio, 1.5);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST(Pipeline, CompressionOnlyStoresEveryChunk) {
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.DedupEnabled = false;
  const ByteVector Data =
      VdbenchStream(workload(2 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_EQ(Report.DupChunks, 0u);
  EXPECT_EQ(Report.UniqueChunks, Report.LogicalChunks);
  EXPECT_GT(Report.CompressRatio, 1.4);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

//===----------------------------------------------------------------------===//
// Measurement mechanics
//===----------------------------------------------------------------------===//

TEST(Pipeline, ResetMeasurementKeepsFunctionalState) {
  const ByteVector Data =
      VdbenchStream(workload(2 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.resetMeasurement();
  EXPECT_EQ(Pipeline.report().LogicalChunks, 0u);
  EXPECT_EQ(Pipeline.report().MakespanSec, 0.0);

  // Rewriting after reset: all duplicates (index survived the reset).
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_EQ(Report.UniqueChunks, 0u);
  EXPECT_EQ(Report.DupChunks, Report.LogicalChunks);
}

TEST(Pipeline, EnduranceCountsInlineSavings) {
  const ByteVector Data =
      VdbenchStream(workload(4 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_EQ(Report.SsdHostBytes, Data.size());
  // Inline reduction: NAND writes well below host writes (§1).
  EXPECT_LT(Report.SsdNandBytes, Report.SsdHostBytes / 2);
}

TEST(Pipeline, ReportStringMentionsKeyFigures) {
  const ByteVector Data =
      VdbenchStream(workload(1 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const std::string Text = Pipeline.report().toString();
  EXPECT_NE(Text.find("throughput"), std::string::npos);
  EXPECT_NE(Text.find("dedup"), std::string::npos);
  EXPECT_NE(Text.find("bottleneck"), std::string::npos);
}

TEST(Pipeline, ChunkSizeEightKib) {
  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.ChunkSize = 8192;
  WorkloadConfig Load = workload(2 << 20, 2.0, 2.0);
  Load.BlockSize = 8192;
  const ByteVector Data = VdbenchStream(Load).generateAll();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  EXPECT_EQ(Pipeline.report().LogicalChunks, Data.size() / 8192);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}

TEST(Pipeline, LatencyPercentilesArePopulatedAndOrdered) {
  const ByteVector Data =
      VdbenchStream(workload(4 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::paper(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  EXPECT_GT(Report.LatencyP50Us, 0.0);
  EXPECT_LE(Report.LatencyP50Us, Report.LatencyP95Us);
  EXPECT_LE(Report.LatencyP95Us, Report.LatencyP99Us);
  // A CPU-only 4 KiB chunk costs tens of microseconds end to end.
  EXPECT_LT(Report.LatencyP99Us, 1000.0);
}

TEST(Pipeline, GpuCompressTradesLatencyForThroughput) {
  const ByteVector Data =
      VdbenchStream(workload(8 << 20, 1.0, 2.0)).generateAll();
  PipelineConfig CpuConfig = pipelineConfig(PipelineMode::CpuOnly);
  CpuConfig.DedupEnabled = false;
  PipelineConfig GpuConfig = pipelineConfig(PipelineMode::GpuCompress);
  GpuConfig.DedupEnabled = false;

  ReductionPipeline Cpu(Platform::paper(), CpuConfig);
  Cpu.write(ByteSpan(Data.data(), Data.size()));
  ReductionPipeline Gpu(Platform::paper(), GpuConfig);
  Gpu.write(ByteSpan(Data.data(), Data.size()));

  const PipelineReport CpuReport = Cpu.report();
  const PipelineReport GpuReport = Gpu.report();
  // Batched kernels: higher throughput AND higher tail latency.
  EXPECT_GT(GpuReport.ThroughputIops, CpuReport.ThroughputIops);
  EXPECT_GT(GpuReport.LatencyP99Us, CpuReport.LatencyP99Us);
}

TEST(Pipeline, VerifyOnDedupKeepsResultsAndChargesReads) {
  const ByteVector Data =
      VdbenchStream(workload(2 << 20, 2.0, 2.0)).generateAll();
  PipelineConfig Plain = pipelineConfig(PipelineMode::CpuOnly);
  PipelineConfig Verified = Plain;
  Verified.VerifyDuplicates = true;

  ReductionPipeline A(Platform::paper(), Plain);
  A.write(ByteSpan(Data.data(), Data.size()));
  ReductionPipeline B(Platform::paper(), Verified);
  B.write(ByteSpan(Data.data(), Data.size()));

  // Same functional outcome, zero mismatches on a healthy store…
  EXPECT_EQ(B.report().DupChunks, A.report().DupChunks);
  EXPECT_EQ(B.report().VerifyMismatches, 0u);
  EXPECT_TRUE(B.verifyAgainst(ByteSpan(Data.data(), Data.size())));
  // …but every duplicate paid a read-back.
  EXPECT_GT(B.report().SsdBusySec, A.report().SsdBusySec);
  EXPECT_GT(B.report().CpuBusySec, A.report().CpuBusySec);
}

TEST(Pipeline, VerifyOnDedupCatchesLatentCorruption) {
  // Write a block, corrupt its stored chunk, then rewrite identical
  // content. Without verification the new logical block silently
  // shares the corrupt chunk; with it, the mismatch is detected and
  // the rewrite lands in a fresh, healthy chunk.
  const ByteVector Block = [&] {
    WorkloadConfig Load = workload(4096, 1.0, 2.0);
    return VdbenchStream(Load).generateAll();
  }();

  for (const bool Verify : {false, true}) {
    PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
    Config.VerifyDuplicates = Verify;
    ReductionPipeline Pipeline(Platform::paper(), Config);
    std::vector<ChunkWriteInfo> Infos;
    Pipeline.write(ByteSpan(Block.data(), Block.size()), &Infos);
    ASSERT_EQ(Infos.size(), 1u);
    ASSERT_TRUE(Pipeline.corruptChunkForTesting(Infos[0].Location, 20));

    std::vector<ChunkWriteInfo> Second;
    Pipeline.write(ByteSpan(Block.data(), Block.size()), &Second);
    ASSERT_EQ(Second.size(), 1u);
    if (Verify) {
      EXPECT_EQ(Second[0].Outcome, LookupOutcome::Unique);
      EXPECT_NE(Second[0].Location, Infos[0].Location);
      EXPECT_EQ(Pipeline.report().VerifyMismatches, 1u);
      // The rewritten block reads back clean.
      const auto Chunk = Pipeline.readChunk(Second[0].Location);
      ASSERT_TRUE(Chunk.has_value());
      EXPECT_TRUE(std::equal(Chunk->begin(), Chunk->end(), Block.begin()));
    } else {
      EXPECT_NE(Second[0].Outcome, LookupOutcome::Unique);
      EXPECT_EQ(Second[0].Location, Infos[0].Location); // shares corrupt
      EXPECT_FALSE(Pipeline.readChunk(Second[0].Location).has_value());
    }
  }
}

TEST(Pipeline, DeterministicReportsForIdenticalRuns) {
  // The reproducibility claim: identical input + config => bit-equal
  // modelled measurements (no wall-clock leaks into the ledger).
  const ByteVector Data =
      VdbenchStream(workload(4 << 20, 2.0, 2.0)).generateAll();
  PipelineReport Reports[2];
  for (int Run = 0; Run < 2; ++Run) {
    ReductionPipeline Pipeline(Platform::paper(),
                               pipelineConfig(PipelineMode::GpuBoth));
    Pipeline.write(ByteSpan(Data.data(), Data.size()));
    Pipeline.finish();
    Reports[Run] = Pipeline.report();
  }
  EXPECT_EQ(Reports[0].ThroughputIops, Reports[1].ThroughputIops);
  EXPECT_EQ(Reports[0].CpuBusySec, Reports[1].CpuBusySec);
  EXPECT_EQ(Reports[0].GpuBusySec, Reports[1].GpuBusySec);
  EXPECT_EQ(Reports[0].StoredBytes, Reports[1].StoredBytes);
  EXPECT_EQ(Reports[0].UniqueChunks, Reports[1].UniqueChunks);
  EXPECT_EQ(Reports[0].LatencyP99Us, Reports[1].LatencyP99Us);
}

namespace {

class CdcPipeline : public ::testing::TestWithParam<ChunkingMode> {};

} // namespace

TEST_P(CdcPipeline, RoundTripsWithVariableChunks) {
  const ByteVector Data =
      VdbenchStream(workload(2 << 20, 2.0, 2.0)).generateAll();
  PipelineConfig Config = pipelineConfig(PipelineMode::GpuCompress);
  Config.Chunking = GetParam();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
  // Variable chunks: counts differ from the fixed-size block count.
  if (GetParam() != ChunkingMode::Fixed)
    EXPECT_NE(Pipeline.report().LogicalChunks, Data.size() / 4096);
}

TEST_P(CdcPipeline, CdcSurvivesAByteShiftFixedDoesNot) {
  // The canonical CDC property at pipeline level: write a stream, then
  // the same stream with 100 bytes inserted at the front. CDC re-finds
  // almost every chunk; fixed-size chunking finds none.
  WorkloadConfig Load = workload(1 << 20, 1.0, 2.0);
  const ByteVector Original = VdbenchStream(Load).generateAll();
  ByteVector Shifted(100, 0xEE);
  Shifted.insert(Shifted.end(), Original.begin(), Original.end());

  PipelineConfig Config = pipelineConfig(PipelineMode::CpuOnly);
  Config.Chunking = GetParam();
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Original.data(), Original.size()));
  const std::uint64_t UniqueAfterFirst = Pipeline.report().UniqueChunks;
  Pipeline.write(ByteSpan(Shifted.data(), Shifted.size()));
  Pipeline.finish();
  const PipelineReport Report = Pipeline.report();
  const std::uint64_t NewUniques =
      Report.UniqueChunks - UniqueAfterFirst;

  if (GetParam() == ChunkingMode::Fixed) {
    // Every shifted chunk is new: no dedup across the insertion.
    EXPECT_GT(NewUniques, UniqueAfterFirst * 9 / 10);
  } else {
    // CDC boundaries resynchronize: most chunks dedup.
    EXPECT_LT(NewUniques, UniqueAfterFirst / 4);
  }
  // Reconstruction covers both streams regardless.
  ByteVector Both = Original;
  Both.insert(Both.end(), Shifted.begin(), Shifted.end());
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Both.data(), Both.size())));
}

INSTANTIATE_TEST_SUITE_P(Chunkers, CdcPipeline,
                         ::testing::Values(ChunkingMode::Fixed,
                                           ChunkingMode::Rabin,
                                           ChunkingMode::FastCdc),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case ChunkingMode::Fixed:
                             return "fixed";
                           case ChunkingMode::Rabin:
                             return "rabin";
                           default:
                             return "fastcdc";
                           }
                         });

TEST(Pipeline, NoGpuPlatformRunsCpuOnly) {
  const ByteVector Data =
      VdbenchStream(workload(1 << 20, 2.0, 2.0)).generateAll();
  ReductionPipeline Pipeline(Platform::noGpu(),
                             pipelineConfig(PipelineMode::CpuOnly));
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();
  EXPECT_EQ(Pipeline.report().GpuBusySec, 0.0);
  EXPECT_TRUE(Pipeline.verifyAgainst(ByteSpan(Data.data(), Data.size())));
}
