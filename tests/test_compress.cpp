//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for the compress module: block format
/// integrity, LZ round-trips over adversarial and random inputs for
/// both matchers, token-format edge cases, and malformed-payload
/// rejection.
///
//===----------------------------------------------------------------------===//

#include "compress/Block.h"
#include "compress/ChunkCodec.h"
#include "compress/LzCodec.h"
#include "compress/SubBlockFrame.h"
#include "util/Random.h"

#include <gtest/gtest.h>

#include <string>

using namespace padre;

namespace {

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

ByteVector repetitiveData(std::size_t Size, std::uint64_t Seed) {
  // 75% repeated 64-byte pattern, 25% random cells.
  ByteVector Data(Size);
  Random Rng(Seed);
  std::uint8_t Pattern[64];
  Rng.fillBytes(Pattern, sizeof(Pattern));
  for (std::size_t I = 0; I < Size; I += 64) {
    const std::size_t Take = std::min<std::size_t>(64, Size - I);
    if (Rng.nextBool(0.25))
      Rng.fillBytes(Data.data() + I, Take);
    else
      std::copy(Pattern, Pattern + Take, Data.data() + I);
  }
  return Data;
}

ByteSpan bytesFour() {
  static const std::uint8_t Bytes[4] = {1, 2, 3, 4};
  return ByteSpan(Bytes, 4);
}

void expectRoundTrip(const LzCodec &Codec, const ByteVector &Data) {
  const CompressResult Result =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  EXPECT_EQ(Result.Stats.LiteralBytes + Result.Stats.MatchBytes,
            Data.size());
  ByteVector Out;
  ASSERT_TRUE(LzCodec::decompress(
      ByteSpan(Result.Payload.data(), Result.Payload.size()), Data.size(),
      Out));
  EXPECT_EQ(Out, Data);
}

} // namespace

//===----------------------------------------------------------------------===//
// Block format
//===----------------------------------------------------------------------===//

TEST(Block, EncodeDecodeRoundTrip) {
  const ByteVector Payload = randomData(100, 1);
  const ByteVector Encoded = encodeBlock(
      BlockMethod::Lz77, 4096, ByteSpan(Payload.data(), Payload.size()));
  EXPECT_EQ(Encoded.size(), BlockHeaderSize + Payload.size());
  const auto View = decodeBlock(ByteSpan(Encoded.data(), Encoded.size()));
  ASSERT_TRUE(View.has_value());
  EXPECT_EQ(View->Method, BlockMethod::Lz77);
  EXPECT_EQ(View->OriginalSize, 4096u);
  EXPECT_TRUE(std::equal(View->Payload.begin(), View->Payload.end(),
                         Payload.begin()));
}

TEST(Block, RejectsBadMagic) {
  ByteVector Encoded = encodeBlock(BlockMethod::Raw, 4, bytesFour());
  Encoded[0] ^= 0xFF;
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
}

TEST(Block, RejectsCorruptPayload) {
  const ByteVector Payload = randomData(64, 2);
  ByteVector Encoded = encodeBlock(BlockMethod::QuickLz, 4096,
                                   ByteSpan(Payload.data(), Payload.size()));
  Encoded[BlockHeaderSize + 10] ^= 0x01;
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
}

TEST(Block, RejectsTruncation) {
  const ByteVector Payload = randomData(64, 3);
  ByteVector Encoded = encodeBlock(BlockMethod::GpuLane, 4096,
                                   ByteSpan(Payload.data(), Payload.size()));
  Encoded.pop_back();
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), 8)));
}

TEST(Block, RejectsUnknownMethodAndFlags) {
  ByteVector Encoded = encodeBlock(BlockMethod::Raw, 4, bytesFour());
  Encoded[2] = 99;
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
  Encoded[2] = 0;
  Encoded[3] = 1; // reserved flags
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
}

TEST(Block, RawSizeMustMatch) {
  const ByteVector Payload = randomData(10, 4);
  const ByteVector Encoded = encodeBlock(
      BlockMethod::Raw, 11, ByteSpan(Payload.data(), Payload.size()));
  EXPECT_FALSE(decodeBlock(ByteSpan(Encoded.data(), Encoded.size())));
}

TEST(Block, MethodNames) {
  EXPECT_STREQ(blockMethodName(BlockMethod::Raw), "raw");
  EXPECT_STREQ(blockMethodName(BlockMethod::Lz77), "lz77");
  EXPECT_STREQ(blockMethodName(BlockMethod::QuickLz), "quicklz");
  EXPECT_STREQ(blockMethodName(BlockMethod::GpuLane), "gpulane");
}

//===----------------------------------------------------------------------===//
// LzCodec round-trip properties (parameterized over matcher x input)
//===----------------------------------------------------------------------===//

namespace {

class LzRoundTrip
    : public ::testing::TestWithParam<std::tuple<LzCodec::MatcherKind, int>> {
protected:
  LzCodec makeCodec() const { return LzCodec(std::get<0>(GetParam())); }
  ByteVector makeInput() const {
    const int Shape = std::get<1>(GetParam());
    switch (Shape) {
    case 0:
      return ByteVector(); // empty
    case 1:
      return ByteVector(1, 0x42); // single byte
    case 2:
      return ByteVector(4096, 0x00); // constant
    case 3:
      return randomData(4096, 42); // incompressible
    case 4:
      return repetitiveData(4096, 43); // mixed
    case 5: {
      // Short period (overlapping matches).
      ByteVector Data(4096);
      for (std::size_t I = 0; I < Data.size(); ++I)
        Data[I] = static_cast<std::uint8_t>(I % 3);
      return Data;
    }
    case 6:
      return repetitiveData(65536, 44); // max format size
    case 7: {
      // Text-like.
      std::string Text;
      while (Text.size() < 4096)
        Text += "the quick brown fox jumps over the lazy dog. ";
      Text.resize(4096);
      return ByteVector(Text.begin(), Text.end());
    }
    default:
      return randomData(100, 45);
    }
  }
};

} // namespace

TEST_P(LzRoundTrip, DecompressInvertsCompress) {
  const LzCodec Codec = makeCodec();
  expectRoundTrip(Codec, makeInput());
}

namespace {

std::string
lzRoundTripName(const ::testing::TestParamInfo<LzRoundTrip::ParamType> &Info) {
  static const char *Shapes[] = {"empty",  "single",  "constant", "random",
                                 "mixed",  "period3", "max64k",   "text"};
  return std::string(std::get<0>(Info.param) == LzCodec::MatcherKind::HashChain
                         ? "chain_"
                         : "probe_") +
         Shapes[std::get<1>(Info.param)];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    MatcherAndShape, LzRoundTrip,
    ::testing::Combine(::testing::Values(LzCodec::MatcherKind::HashChain,
                                         LzCodec::MatcherKind::SingleProbe),
                       ::testing::Range(0, 8)),
    lzRoundTripName);

//===----------------------------------------------------------------------===//
// Compression quality and stats
//===----------------------------------------------------------------------===//

TEST(LzCodec, ConstantDataCompressesHard) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data(4096, 0xAA);
  const CompressResult Result =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  EXPECT_LT(Result.Payload.size(), Data.size() / 10);
  EXPECT_GT(Result.Stats.MatchBytes, 3800u);
}

TEST(LzCodec, RandomDataDoesNotExplode) {
  const LzCodec Codec(LzCodec::MatcherKind::SingleProbe);
  const ByteVector Data = randomData(4096, 46);
  const CompressResult Result =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  // At worst ~1 control byte per 128 literals plus rare fake matches.
  EXPECT_LT(Result.Payload.size(), Data.size() + Data.size() / 16);
}

TEST(LzCodec, ChainBeatsOrMatchesProbeOnMixedData) {
  const ByteVector Data = repetitiveData(16384, 47);
  const LzCodec Chain(LzCodec::MatcherKind::HashChain);
  const LzCodec Probe(LzCodec::MatcherKind::SingleProbe);
  const auto ChainSize =
      Chain.compress(ByteSpan(Data.data(), Data.size())).Payload.size();
  const auto ProbeSize =
      Probe.compress(ByteSpan(Data.data(), Data.size())).Payload.size();
  EXPECT_LE(ChainSize, ProbeSize);
}

TEST(LzCodec, StatsPartitionInput) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(8192, 48);
  const CompressResult Result =
      Codec.compress(ByteSpan(Data.data(), Data.size()));
  EXPECT_EQ(Result.Stats.LiteralBytes + Result.Stats.MatchBytes, 8192u);
  EXPECT_GT(Result.Stats.Matches, 0u);
  EXPECT_GT(Result.Stats.LiteralRuns, 0u);
}

TEST(LzCodec, Names) {
  EXPECT_STREQ(LzCodec(LzCodec::MatcherKind::HashChain).name(),
               "lz77-chain");
  EXPECT_STREQ(LzCodec(LzCodec::MatcherKind::SingleProbe).name(),
               "lz-probe");
}

//===----------------------------------------------------------------------===//
// compressRange (the lane primitive)
//===----------------------------------------------------------------------===//

TEST(LzCodec, RangeWithHistoryConcatenatesValidly) {
  const ByteVector Data = repetitiveData(4096, 49);
  const LzCodec Codec(LzCodec::MatcherKind::SingleProbe);
  ByteVector Combined;
  for (std::size_t Lane = 0; Lane < 4; ++Lane) {
    const CompressResult Result =
        Codec.compressRange(ByteSpan(Data.data(), Data.size()), Lane * 1024,
                            (Lane + 1) * 1024, 256);
    Combined.insert(Combined.end(), Result.Payload.begin(),
                    Result.Payload.end());
  }
  ByteVector Out;
  ASSERT_TRUE(LzCodec::decompress(
      ByteSpan(Combined.data(), Combined.size()), Data.size(), Out));
  EXPECT_EQ(Out, Data);
}

TEST(LzCodec, ZeroHistoryLaneIsSelfContained) {
  const ByteVector Data = repetitiveData(4096, 50);
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const CompressResult Result = Codec.compressRange(
      ByteSpan(Data.data(), Data.size()), 1024, 2048, 0);
  // A zero-history lane can be decoded standalone.
  ByteVector Out;
  ASSERT_TRUE(LzCodec::decompress(
      ByteSpan(Result.Payload.data(), Result.Payload.size()), 1024, Out));
  EXPECT_TRUE(std::equal(Out.begin(), Out.end(), Data.begin() + 1024));
}

//===----------------------------------------------------------------------===//
// Decoder robustness
//===----------------------------------------------------------------------===//

TEST(LzDecoder, RejectsTruncatedLiteralRun) {
  const ByteVector Payload = {0x05, 'a', 'b'}; // promises 6 literals
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 6, Out));
  EXPECT_TRUE(Out.empty());
}

TEST(LzDecoder, RejectsMatchBeforeStart) {
  // Match token with distance 5 at output position 0.
  const ByteVector Payload = {0x80, 0x05, 0x00};
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 4, Out));
}

TEST(LzDecoder, RejectsZeroDistance) {
  const ByteVector Payload = {0x00, 'x', 0x80, 0x00, 0x00};
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 5, Out));
}

TEST(LzDecoder, RejectsOverlongOutput) {
  const ByteVector Payload = {0x01, 'a', 'b'}; // 2 literals
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 1, Out));
}

TEST(LzDecoder, RejectsShortOutput) {
  const ByteVector Payload = {0x00, 'a'}; // 1 literal, claims 2
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 2, Out));
}

TEST(LzDecoder, RejectsTruncatedMatchToken) {
  const ByteVector Payload = {0x00, 'a', 0x80, 0x01}; // match missing a byte
  ByteVector Out;
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 5, Out));
}

TEST(LzDecoder, FailureLeavesOutputUntouched) {
  ByteVector Out = {9, 9, 9};
  const ByteVector Payload = {0x80, 0x05, 0x00};
  EXPECT_FALSE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 4, Out));
  EXPECT_EQ(Out, (ByteVector{9, 9, 9}));
}

TEST(LzDecoder, OverlappingMatchReplicatesPattern) {
  // "abc" then match(distance=3, length=9) -> "abcabcabcabc".
  const ByteVector Payload = {0x02, 'a', 'b', 'c',
                              static_cast<std::uint8_t>(0x80 | (9 - 4)),
                              0x03, 0x00};
  ByteVector Out;
  ASSERT_TRUE(LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), 12, Out));
  EXPECT_EQ(std::string(Out.begin(), Out.end()), "abcabcabcabc");
}

//===----------------------------------------------------------------------===//
// Randomized property sweep: every seed round-trips on both matchers.
//===----------------------------------------------------------------------===//

class LzFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LzFuzz, RandomMixturesRoundTrip) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  Random Rng(Seed * 7919 + 13);
  // Random mixture of runs, repeats and noise with random total size.
  ByteVector Data;
  const std::size_t Target = 256 + Rng.nextBelow(8000);
  while (Data.size() < Target) {
    switch (Rng.nextBelow(3)) {
    case 0: { // run of one byte
      Data.insert(Data.end(), 1 + Rng.nextBelow(300),
                  static_cast<std::uint8_t>(Rng.nextU32()));
      break;
    }
    case 1: { // copy of an earlier region
      if (Data.empty())
        break;
      const std::size_t From = Rng.nextBelow(Data.size());
      const std::size_t Len =
          std::min<std::size_t>(1 + Rng.nextBelow(200), Data.size() - From);
      for (std::size_t I = 0; I < Len; ++I)
        Data.push_back(Data[From + I]);
      break;
    }
    default: { // noise
      const std::size_t Len = 1 + Rng.nextBelow(100);
      for (std::size_t I = 0; I < Len; ++I)
        Data.push_back(static_cast<std::uint8_t>(Rng.nextU32()));
    }
    }
  }
  Data.resize(std::min<std::size_t>(Data.size(), LzCodec::MaxInputSize));

  expectRoundTrip(LzCodec(LzCodec::MatcherKind::HashChain), Data);
  expectRoundTrip(LzCodec(LzCodec::MatcherKind::SingleProbe), Data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzFuzz, ::testing::Range(0, 25));

//===----------------------------------------------------------------------===//
// Decoder robustness: damaged payloads must fail typed, never crash.
//
// The fault layer (src/fault) flips bits at destage and the scrubber
// feeds suspect blocks straight back through these decoders, so the
// decode contract is load-bearing: a corrupt payload either returns
// false with Out untouched, or decodes to exactly OriginalSize bytes
// (a semantically valid but different token stream). No other outcome
// — in particular no partial output and no out-of-bounds read.
//===----------------------------------------------------------------------===//

namespace {

/// Checks the decode contract for one (possibly damaged) payload.
void expectLzDecodeContract(const ByteVector &Payload,
                            std::size_t OriginalSize) {
  ByteVector Out = {0xEE, 0xBB};
  const ByteVector Before = Out;
  const bool Ok = LzCodec::decompress(
      ByteSpan(Payload.data(), Payload.size()), OriginalSize, Out);
  if (Ok)
    EXPECT_EQ(Out.size(), Before.size() + OriginalSize);
  else
    EXPECT_EQ(Out, Before); // failure must not leave partial output
}

} // namespace

class LzCorruption : public ::testing::TestWithParam<int> {};

TEST_P(LzCorruption, TruncatedPayloadsAlwaysFail) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  const ByteVector Data = repetitiveData(2048 + Seed * 97, Seed + 600);
  const LzCodec Codec(Seed % 2 ? LzCodec::MatcherKind::HashChain
                               : LzCodec::MatcherKind::SingleProbe);
  const ByteVector Payload =
      Codec.compress(ByteSpan(Data.data(), Data.size())).Payload;
  Random Rng(Seed * 31 + 7);
  for (int Trial = 0; Trial < 32; ++Trial) {
    const std::size_t Keep = Rng.nextBelow(Payload.size());
    ByteVector Cut(Payload.begin(), Payload.begin() + Keep);
    ByteVector Out;
    // Fewer payload bytes can never produce all OriginalSize bytes, so
    // truncation is always detected (not merely tolerated).
    EXPECT_FALSE(LzCodec::decompress(ByteSpan(Cut.data(), Cut.size()),
                                     Data.size(), Out));
    EXPECT_TRUE(Out.empty());
  }
}

TEST_P(LzCorruption, BitFlippedPayloadsFailOrDecodeFullSize) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  const ByteVector Data = repetitiveData(4096, Seed + 700);
  const LzCodec Codec(Seed % 2 ? LzCodec::MatcherKind::HashChain
                               : LzCodec::MatcherKind::SingleProbe);
  const ByteVector Payload =
      Codec.compress(ByteSpan(Data.data(), Data.size())).Payload;
  Random Rng(Seed * 131 + 17);
  for (int Trial = 0; Trial < 64; ++Trial) {
    ByteVector Damaged = Payload;
    const std::size_t Flips = 1 + Rng.nextBelow(4);
    for (std::size_t I = 0; I < Flips; ++I)
      Damaged[Rng.nextBelow(Damaged.size())] ^=
          static_cast<std::uint8_t>(1u << Rng.nextBelow(8));
    expectLzDecodeContract(Damaged, Data.size());
  }
}

TEST(LzCorruption, GarbagePayloadsNeverCrash) {
  for (std::uint64_t Seed = 0; Seed < 16; ++Seed) {
    Random Rng(Seed * 53 + 29);
    const ByteVector Garbage = randomData(1 + Rng.nextBelow(4096), Seed + 800);
    expectLzDecodeContract(Garbage, 1 + Rng.nextBelow(8192));
  }
}

//===----------------------------------------------------------------------===//
// Framed (v2) payloads through the block layer. The deep frame-format
// sweep lives in test_warpdecode.cpp (`ctest -L decode`); these checks
// pin the compress-side contract: compressFramed round-trips through
// the generic chunk decode path for every supported sub-block count,
// and a damaged framed payload obeys the same fail-typed contract as
// an unframed one.
//===----------------------------------------------------------------------===//

TEST(LzFramed, CompressFramedRoundTripsThroughChunkCodec) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  for (const unsigned Count : {1u, 2u, 4u, 8u}) {
    const ByteVector Data = repetitiveData(8192, 1000 + Count);
    const FramedCompressResult Framed =
        Codec.compressFramed(ByteSpan(Data.data(), Data.size()), Count);
    EXPECT_EQ(Framed.SubBlockCount, Count);
    EXPECT_EQ(Framed.Stats.LiteralBytes + Framed.Stats.MatchBytes,
              Data.size());
    const ByteVector Block = encodeBlock(
        BlockMethod::LzFramed, static_cast<std::uint32_t>(Data.size()),
        ByteSpan(Framed.Payload.data(), Framed.Payload.size()));
    const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
    ASSERT_TRUE(View.has_value());
    ByteVector Out;
    ASSERT_TRUE(decodeChunkPayload(*View, Out)) << "sub-blocks=" << Count;
    EXPECT_EQ(Out, Data) << "sub-blocks=" << Count;
  }
}

TEST(LzFramed, HistoryResetKeepsSubBlocksSelfContained) {
  // Each framed sub-block must decode standalone with the plain serial
  // decoder — the property the warp kernel's independence rests on.
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(16384, 1100);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 8);
  const auto Frame = parseSubBlockFrame(
      ByteSpan(Framed.Payload.data(), Framed.Payload.size()),
      static_cast<std::uint32_t>(Data.size()));
  ASSERT_TRUE(Frame.has_value());
  for (unsigned I = 0; I < Frame->Count; ++I) {
    ByteVector Piece;
    ASSERT_TRUE(LzCodec::decompress(Frame->tokens(I),
                                    Frame->Segs[I].OutputBytes, Piece))
        << "sub-block " << I;
    EXPECT_TRUE(std::equal(Piece.begin(), Piece.end(),
                           Data.begin() + Frame->Segs[I].OutputOffset))
        << "sub-block " << I;
  }
}

TEST(LzFramed, DamagedFramedPayloadsFailTypedThroughChunkCodec) {
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Data = repetitiveData(4096, 1200);
  const FramedCompressResult Framed =
      Codec.compressFramed(ByteSpan(Data.data(), Data.size()), 4);
  Random Rng(1201);
  for (int Trial = 0; Trial < 64; ++Trial) {
    ByteVector Damaged = Framed.Payload;
    const std::size_t Flips = 1 + Rng.nextBelow(4);
    for (std::size_t I = 0; I < Flips; ++I)
      Damaged[Rng.nextBelow(Damaged.size())] ^=
          static_cast<std::uint8_t>(1u << Rng.nextBelow(8));
    const ByteVector Block = encodeBlock(
        BlockMethod::LzFramed, static_cast<std::uint32_t>(Data.size()),
        ByteSpan(Damaged.data(), Damaged.size()));
    // Encoding after the damage keeps the block checksum valid, so the
    // frame/token validation inside decodeChunkPayload is what's under
    // test here — not the CRC screen above it.
    const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
    ASSERT_TRUE(View.has_value());
    ByteVector Out = {0xEE, 0xBB};
    const ByteVector Before = Out;
    if (decodeChunkPayload(*View, Out))
      EXPECT_EQ(Out.size(), Before.size() + Data.size());
    else
      EXPECT_EQ(Out, Before); // failure must not leave partial output
  }
}

TEST(LzCorruption, WrongOriginalSizeIsRejected) {
  const ByteVector Data = repetitiveData(4096, 900);
  const LzCodec Codec(LzCodec::MatcherKind::HashChain);
  const ByteVector Payload =
      Codec.compress(ByteSpan(Data.data(), Data.size())).Payload;
  ByteVector Out;
  // Too-small claim: the stream overruns the declared size.
  EXPECT_FALSE(LzCodec::decompress(ByteSpan(Payload.data(), Payload.size()),
                                   Data.size() - 1, Out));
  EXPECT_TRUE(Out.empty());
  // Too-large claim: the stream ends short of the declared size.
  EXPECT_FALSE(LzCodec::decompress(ByteSpan(Payload.data(), Payload.size()),
                                   Data.size() + 1, Out));
  EXPECT_TRUE(Out.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzCorruption, ::testing::Range(0, 12));
