//===----------------------------------------------------------------------===//
///
/// \file
/// FTL suite: page mapping and seam refcounts, GC liveness ("never
/// lose a live page"), WA ordering by overwrite pattern, the static
/// wear-leveling bound, endurance-accounting parity with the seed's
/// constant-WA path (bit-exact goldens), fault-injection consistency,
/// and crash@mid-gc recovery through the journal.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"
#include "core/Volume.h"
#include "journal/JournaledVolume.h"
#include "journal/Recovery.h"
#include "ssd/Ftl.h"
#include "util/Random.h"
#include "workload/Scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <memory>

using namespace padre;
using namespace padre::ssd;
using namespace padre::journal;

namespace {

/// Small geometry every unit test shares: 32 blocks x 8 pages, 12% OP
/// -> 201 logical pages over 256 raw.
FtlConfig smallGeometry() {
  FtlConfig Config;
  Config.PagesPerBlock = 8;
  Config.Blocks = 32;
  Config.OverprovisionPct = 12.0;
  Config.WearDeltaLimit = 4;
  Config.MetadataPages = 16;
  return Config;
}

/// Appends one full-page extent (no seam sharing) and requires success.
Ftl::Extent appendOne(Ftl &F) {
  const std::uint64_t Bytes[] = {F.config().PageBytes};
  std::vector<Ftl::Extent> Out;
  EXPECT_TRUE(F.appendStream(std::span<const std::uint64_t>(Bytes, 1), Out));
  EXPECT_EQ(Out.size(), 1u);
  return Out.empty() ? Ftl::Extent{} : Out[0];
}

std::string whyOf(const Ftl &F) {
  std::string Why;
  F.checkInvariants(&Why);
  return Why;
}

} // namespace

//===--------------------------------------------------------------------===//
// Mapping basics
//===--------------------------------------------------------------------===//

TEST(FtlConfigTest, Validation) {
  EXPECT_TRUE(isValidFtlConfig(FtlConfig{}));
  EXPECT_TRUE(isValidFtlConfig(smallGeometry()));
  FtlConfig Bad = smallGeometry();
  Bad.Blocks = 0;
  EXPECT_FALSE(isValidFtlConfig(Bad));
  Bad = smallGeometry();
  Bad.OverprovisionPct = 95.0;
  EXPECT_FALSE(isValidFtlConfig(Bad));
  Bad = smallGeometry();
  Bad.GcReserveBlocks = 1; // no relocation destination
  EXPECT_FALSE(isValidFtlConfig(Bad));
  Bad = smallGeometry();
  Bad.GcReserveBlocks = Bad.Blocks; // reserve swallows the device
  EXPECT_FALSE(isValidFtlConfig(Bad));
}

TEST(FtlTest, AppendMapsAndReleaseInvalidates) {
  Ftl F(smallGeometry());
  EXPECT_EQ(F.livePages(), 0u);
  EXPECT_EQ(F.measuredWaf(), 1.0);

  const Ftl::Extent A = appendOne(F);
  const Ftl::Extent B = appendOne(F);
  ASSERT_TRUE(A.Valid);
  ASSERT_TRUE(B.Valid);
  EXPECT_EQ(F.livePages(), 2u);
  EXPECT_EQ(F.counters().HostPages, 2u);
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);

  F.releaseExtent(A);
  EXPECT_EQ(F.livePages(), 1u);
  F.releaseExtent(B);
  EXPECT_EQ(F.livePages(), 0u);
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
}

TEST(FtlTest, StreamNeighboursShareSeamPages) {
  Ftl F(smallGeometry());
  // Two half-page chunks in one stream pack into ONE physical page.
  const std::uint64_t Half = F.config().PageBytes / 2;
  const std::uint64_t Bytes[] = {Half, Half};
  std::vector<Ftl::Extent> Out;
  ASSERT_TRUE(F.appendStream(std::span<const std::uint64_t>(Bytes, 2), Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(F.livePages(), 1u);
  EXPECT_EQ(Out[0].LastPage, Out[1].FirstPage); // the shared seam

  // The seam page survives the first release, dies with the second.
  F.releaseExtent(Out[0]);
  EXPECT_EQ(F.livePages(), 1u);
  F.releaseExtent(Out[1]);
  EXPECT_EQ(F.livePages(), 0u);
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
}

TEST(FtlTest, StreamsDoNotShareAcrossCalls) {
  // Program-once NAND: the final partial page of a stream is closed,
  // so the next stream starts fresh instead of appending into it.
  Ftl F(smallGeometry());
  const std::uint64_t Half = F.config().PageBytes / 2;
  const std::uint64_t Bytes[] = {Half};
  std::vector<Ftl::Extent> Out;
  ASSERT_TRUE(F.appendStream(std::span<const std::uint64_t>(Bytes, 1), Out));
  ASSERT_TRUE(F.appendStream(std::span<const std::uint64_t>(Bytes, 1), Out));
  EXPECT_EQ(F.livePages(), 2u);
}

TEST(FtlTest, OverCapacityAppendIsRejectedWholly) {
  Ftl F(smallGeometry());
  const std::uint64_t Cap = F.capacityPages();
  const std::uint64_t TooBig = (Cap + 1) * F.config().PageBytes;
  const std::uint64_t Bytes[] = {TooBig};
  std::vector<Ftl::Extent> Out;
  EXPECT_FALSE(F.appendStream(std::span<const std::uint64_t>(Bytes, 1), Out));
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(F.livePages(), 0u);
  EXPECT_EQ(F.counters().HostPages, 0u); // nothing half-written
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
}

//===--------------------------------------------------------------------===//
// GC liveness and write amplification
//===--------------------------------------------------------------------===//

namespace {

/// Churns \p F with single-page extents at \p LiveTarget steady-state
/// occupancy for \p Appends rounds. Victim selection: FIFO when
/// \p ReleaseOldest (pages die in allocation order, the sequential
/// pattern), else uniform-random (the hostile pattern).
double churn(Ftl &F, std::uint64_t LiveTarget, std::uint64_t Appends,
             bool ReleaseOldest, std::uint64_t Seed) {
  Random Rng(Seed);
  std::deque<Ftl::Extent> Live;
  for (std::uint64_t I = 0; I < Appends; ++I) {
    Live.push_back(appendOne(F));
    while (Live.size() > LiveTarget) {
      const std::size_t Victim =
          ReleaseOldest ? 0
                        : static_cast<std::size_t>(
                              Rng.nextBelow(Live.size()));
      F.releaseExtent(Live[Victim]);
      Live.erase(Live.begin() +
                 static_cast<std::deque<Ftl::Extent>::difference_type>(
                     Victim));
    }
    EXPECT_EQ(F.livePages(), Live.size()); // GC lost nothing
  }
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
  EXPECT_GT(F.counters().GcRuns, 0u);
  return F.measuredWaf();
}

} // namespace

TEST(FtlTest, GcNeverLosesALivePage) {
  Ftl F(smallGeometry());
  // 150 of 201 logical pages live; 2000 appends wrap the 256-page
  // device ~8 times, so GC must relocate constantly.
  churn(F, 150, 2000, /*ReleaseOldest=*/false, /*Seed=*/17);
  EXPECT_GT(F.counters().GcPages, 0u);
}

TEST(FtlTest, RandomOverwritesAmplifyMoreThanSequential) {
  Ftl Seq(smallGeometry());
  const double SeqWaf = churn(Seq, 150, 2000, /*ReleaseOldest=*/true, 1);
  Ftl Rand(smallGeometry());
  const double RandWaf = churn(Rand, 150, 2000, /*ReleaseOldest=*/false, 1);
  // FIFO death means victims are fully invalid: WA stays at 1.
  EXPECT_DOUBLE_EQ(SeqWaf, 1.0);
  EXPECT_GT(RandWaf, SeqWaf);
}

TEST(FtlTest, EraseCountersStayWithinWearBound) {
  FtlConfig Config = smallGeometry();
  Ftl F(Config);
  // Pin 10 blocks' worth of cold pages, then churn a small hot set on
  // top: without static wear leveling the cold blocks would never be
  // erased and the spread would grow with every hot-block cycle.
  std::vector<Ftl::Extent> Cold;
  for (int I = 0; I < 80; ++I)
    Cold.push_back(appendOne(F));
  Random Rng(5);
  std::deque<Ftl::Extent> Hot;
  std::uint32_t MaxSpread = 0;
  for (std::uint64_t I = 0; I < 4000; ++I) {
    Hot.push_back(appendOne(F));
    while (Hot.size() > 60) {
      const std::size_t Victim =
          static_cast<std::size_t>(Rng.nextBelow(Hot.size()));
      F.releaseExtent(Hot[Victim]);
      Hot.erase(Hot.begin() +
                static_cast<std::deque<Ftl::Extent>::difference_type>(
                    Victim));
    }
    MaxSpread = std::max(MaxSpread, F.eraseSpread());
  }
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
  EXPECT_GT(F.counters().WearMigrations, 0u);
  // The bound: the trigger fires at WearDeltaLimit, and one migration
  // is in flight while the next erase lands — allow that transient.
  EXPECT_LE(MaxSpread, Config.WearDeltaLimit + 2);
}

TEST(FtlTest, MetadataRingRecyclesItsWindow) {
  FtlConfig Config = smallGeometry();
  Ftl F(Config);
  for (int I = 0; I < 100; ++I)
    ASSERT_TRUE(F.appendMetadata(Config.PageBytes));
  // The window caps residency; everything older was retired.
  EXPECT_LE(F.livePages(), Config.MetadataPages);
  EXPECT_TRUE(F.checkInvariants()) << whyOf(F);
}

//===--------------------------------------------------------------------===//
// SsdModel integration and endurance parity
//===--------------------------------------------------------------------===//

namespace {

SsdModel::ChunkExtent extentOf(std::uint64_t Location, std::uint64_t Bytes) {
  SsdModel::ChunkExtent E;
  E.Location = Location;
  E.Bytes = Bytes;
  return E;
}

} // namespace

TEST(FtlSsdTest, DisabledDestageDelegatesToSequentialBitExactly) {
  // Satellite 1: with no FTL the new entry points must charge exactly
  // what the seed's constant-WA calls charged.
  CostModel Model;
  ResourceLedger LedgerA, LedgerB;
  SsdModel A(Model, LedgerA), B(Model, LedgerB);
  const std::vector<SsdModel::ChunkExtent> Extents = {
      extentOf(1, 5000), extentOf(2, 123), extentOf(3, 8192)};
  ASSERT_TRUE(
      A.writeDestage(std::span<const SsdModel::ChunkExtent>(Extents), 13315)
          .ok());
  ASSERT_TRUE(B.writeSequential(13315).ok());
  EXPECT_EQ(A.nandBytesWritten(), B.nandBytesWritten());
  EXPECT_EQ(LedgerA.busyMicros(Resource::Ssd),
            LedgerB.busyMicros(Resource::Ssd));

  ASSERT_TRUE(A.rewriteChunk(7, 4096).ok());
  ASSERT_TRUE(B.writeRandom4K(1).ok());
  EXPECT_EQ(A.nandBytesWritten(), B.nandBytesWritten());
  EXPECT_EQ(LedgerA.busyMicros(Resource::Ssd),
            LedgerB.busyMicros(Resource::Ssd));

  A.noteHostWrite(1 << 20);
  B.noteHostWrite(1 << 20);
  EXPECT_DOUBLE_EQ(A.enduranceRatio(), B.enduranceRatio());
}

TEST(FtlSsdTest, EnabledDestageBypassesConstantWaf) {
  // Satellite 1, other half: with the FTL on, NAND bytes are exactly
  // pages x page size — the constant WAF must NOT also apply.
  CostModel Model;
  ResourceLedger Ledger;
  SsdModel Ssd(Model, Ledger);
  Ssd.enableFtl(smallGeometry());
  ASSERT_TRUE(Ssd.ftlEnabled());
  const std::vector<SsdModel::ChunkExtent> Extents = {extentOf(1, 10000)};
  ASSERT_TRUE(
      Ssd.writeDestage(std::span<const SsdModel::ChunkExtent>(Extents),
                       10000)
          .ok());
  const Ftl::Counters &C = Ssd.ftl()->counters();
  EXPECT_EQ(C.HostPages, 3u); // ceil(10000 / 4096)
  EXPECT_EQ(Ssd.nandBytesWritten(),
            (C.HostPages + C.GcPages) * 4096u);
}

TEST(FtlSsdTest, DeviceFullReturnsTypedError) {
  CostModel Model;
  ResourceLedger Ledger;
  SsdModel Ssd(Model, Ledger);
  FtlConfig Tiny;
  Tiny.PagesPerBlock = 4;
  Tiny.Blocks = 6;
  Tiny.OverprovisionPct = 7.0;
  Tiny.MetadataPages = 4;
  ASSERT_TRUE(isValidFtlConfig(Tiny));
  Ssd.enableFtl(Tiny);
  const std::uint64_t Cap = Ssd.ftl()->capacityPages();
  const std::vector<SsdModel::ChunkExtent> Extents = {
      extentOf(1, (Cap + 1) * 4096)};
  const fault::Status St = Ssd.writeDestage(
      std::span<const SsdModel::ChunkExtent>(Extents), (Cap + 1) * 4096);
  ASSERT_FALSE(St.ok());
  EXPECT_EQ(St.code(), fault::ErrorCode::SsdWriteError);
}

TEST(FtlSsdTest, GoldenConstantWafReplayIsBitExact) {
  // Satellite 1, end to end: the FTL-disabled pipeline must reproduce
  // the NAND accounting captured before the FTL existed.
  ReductionPipeline Pipeline(Platform::paper(), PipelineConfig{});
  Volume Vol(Pipeline, VolumeConfig{4096});
  TraceSynthesisConfig T;
  T.Operations = 3000;
  T.VolumeBlocks = 4096;
  T.Seed = 42;
  const TraceLog Log = TraceLog::synthesize(T);
  const TraceRunStats Stats = replayTrace(Vol, Log);
  Vol.flush();
  EXPECT_TRUE(Stats.clean());
  EXPECT_EQ(Pipeline.ssd().hostBytesWritten(), 33517568u);
  EXPECT_EQ(Pipeline.ssd().nandBytesWritten(), 153074u);
}

//===--------------------------------------------------------------------===//
// Volume-level behaviour, fault injection, determinism
//===--------------------------------------------------------------------===//

namespace {

struct FtlRunOutcome {
  Ftl::Counters Counters;
  std::uint64_t NandBytes = 0;
  bool Clean = false;
};

FtlRunOutcome runFtlVolume(const fault::FaultPlan *Plan) {
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  FtlConfig FtlCfg;
  FtlCfg.Blocks = 64;
  FtlCfg.PagesPerBlock = 64;
  FtlCfg.OverprovisionPct = 12.0;
  Config.Ftl = FtlCfg;
  std::unique_ptr<fault::FaultInjector> Faults;
  if (Plan) {
    Faults = std::make_unique<fault::FaultInjector>(*Plan);
    Config.Faults = Faults.get();
  }
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Volume Vol(Pipeline, VolumeConfig{2048});

  ScenarioConfig Scen;
  Scen.Shape = ScenarioShape::SkewedHot;
  Scen.Operations = 2000;
  Scen.VolumeBlocks = 2048;
  Scen.Seed = 9;
  const TraceLog Log = synthesizeScenario(Scen);
  ReplayConfig Replay;
  Replay.RawWrites = true; // every block reaches the FTL
  Replay.GcEveryOps = 64;
  const TimedReplayReport Report = replayTraceTimed(Vol, Log, Replay);

  const Ftl *F = Pipeline.ssd().ftl();
  EXPECT_TRUE(F->checkInvariants()) << whyOf(*F);
  FtlRunOutcome Out;
  Out.Counters = F->counters();
  Out.NandBytes = Pipeline.ssd().nandBytesWritten();
  Out.Clean = Report.Stats.clean();
  return Out;
}

} // namespace

TEST(FtlVolumeTest, ShapedReplayIsCleanAndAmplifies) {
  const FtlRunOutcome Out = runFtlVolume(nullptr);
  EXPECT_TRUE(Out.Clean);
  EXPECT_GT(Out.Counters.GcPages, 0u);
  EXPECT_GT(Out.Counters.Erases, 0u);
  // No double amplification: NAND is pages x 4096, nothing more.
  EXPECT_EQ(Out.NandBytes,
            (Out.Counters.HostPages + Out.Counters.GcPages) * 4096u);
}

TEST(FtlVolumeTest, ReplayIsDeterministic) {
  const FtlRunOutcome A = runFtlVolume(nullptr);
  const FtlRunOutcome B = runFtlVolume(nullptr);
  EXPECT_EQ(A.Counters.HostPages, B.Counters.HostPages);
  EXPECT_EQ(A.Counters.GcPages, B.Counters.GcPages);
  EXPECT_EQ(A.Counters.Erases, B.Counters.Erases);
  EXPECT_EQ(A.NandBytes, B.NandBytes);
}

TEST(FtlVolumeTest, InvariantsHoldUnderInjectedSsdFaults) {
  // Satellite 3: injected SSD write errors and destage bit-flips must
  // never corrupt the mapping — checkInvariants runs inside
  // runFtlVolume after the storm.
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan(
      "seed=23;ssd-write:error:p=0.02;destage:bitflip:every=97", Plan,
      Error))
      << Error;
  const FtlRunOutcome Out = runFtlVolume(&Plan);
  // Bit-flips may surface as verify failures (that is the point of
  // injection); the FTL bookkeeping must survive regardless.
  EXPECT_GT(Out.Counters.HostPages, 0u);
}

//===--------------------------------------------------------------------===//
// Crash at mid-GC: journal recovery
//===--------------------------------------------------------------------===//

namespace {

struct FtlJournalFixture : ::testing::Test {
  std::string JournalPath;
  std::string CheckpointPath;

  void SetUp() override {
    const std::string Base =
        ::testing::TempDir() + "padre_ftl_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    JournalPath = Base + ".wal";
    CheckpointPath = Base + ".ckpt";
  }

  void TearDown() override {
    std::remove(JournalPath.c_str());
    std::remove(CheckpointPath.c_str());
    std::remove((CheckpointPath + ".tmp").c_str());
  }

  static std::unique_ptr<ReductionPipeline> makePipeline() {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.Dedup.Index.BinBits = 8;
    FtlConfig FtlCfg;
    FtlCfg.Blocks = 64;
    FtlCfg.PagesPerBlock = 16;
    FtlCfg.MetadataPages = 64;
    Config.Ftl = FtlCfg;
    return std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  }

  static ByteVector blockOf(std::uint64_t Tag) {
    ByteVector Data(4096);
    Random Rng(Tag * 31337 + 5);
    Rng.fillBytes(Data.data(), Data.size());
    return Data;
  }
};

ByteVector readAll(Volume &Vol) {
  const auto Data = Vol.readBlocks(0, Vol.blockCount());
  EXPECT_TRUE(Data.has_value());
  return Data ? *Data : ByteVector();
}

} // namespace

TEST(FtlFaultPlanTest, MidGcPointParses) {
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan("seed=1;crash@mid-gc:crash:at=0",
                                    Plan, Error))
      << Error;
  EXPECT_STREQ(fault::crashPointName(fault::CrashPoint::MidGc), "mid-gc");
}

TEST_F(FtlJournalFixture, CrashAtMidGcRecoversBitIdentical) {
  constexpr std::uint64_t BlockCount = 64;
  fault::FaultPlan Plan;
  std::string Error;
  ASSERT_TRUE(fault::parseFaultPlan("seed=3;crash@mid-gc:crash:at=0",
                                    Plan, Error))
      << Error;
  fault::FaultInjector Faults(Plan);

  auto Pipeline = makePipeline();
  Volume Vol(*Pipeline, {BlockCount});
  JournaledVolumeConfig JvConfig;
  JvConfig.JournalPath = JournalPath;
  JvConfig.CheckpointPath = CheckpointPath;
  JvConfig.Faults = &Faults;
  JournaledVolume Jv(Vol, *Pipeline, JvConfig);
  ASSERT_TRUE(Jv.ctorStatus().ok());

  // Writes plus overwrites and trims: GC will have chunks to collect.
  for (std::uint64_t Op = 0; Op < 24; ++Op) {
    const ByteVector Data = blockOf(Op);
    ASSERT_TRUE(
        Jv.writeBlocks((Op * 3) % BlockCount,
                       ByteSpan(Data.data(), Data.size()))
            .ok());
  }
  ASSERT_TRUE(Jv.trim(0, 4).ok());

  std::size_t Collected = 0;
  const auto GcSt = Jv.collectGarbage(&Collected);
  ASSERT_FALSE(GcSt.ok());
  EXPECT_EQ(GcSt.status().code(), fault::ErrorCode::Crashed);
  EXPECT_EQ(Faults.crashPointOps(fault::CrashPoint::MidGc), 1u);

  // The chunks were collected before the crash point, so the durable
  // state is "GC ran, record lost": recovery replays the committed
  // prefix and the volume contents must be bit-identical to what the
  // crashed instance acknowledged.
  const ByteVector Acked = readAll(Vol);

  auto Pipe1 = makePipeline();
  Volume Restored1(*Pipe1, {BlockCount});
  const RecoveryReport Report1 =
      recoverVolume(JournalPath, CheckpointPath, *Pipe1, Restored1);
  ASSERT_TRUE(Report1.ok()) << Report1.St.message();
  EXPECT_EQ(readAll(Restored1), Acked);

  // Deterministic: a second independent recovery agrees byte-for-byte.
  auto Pipe2 = makePipeline();
  Volume Restored2(*Pipe2, {BlockCount});
  const RecoveryReport Report2 =
      recoverVolume(JournalPath, CheckpointPath, *Pipe2, Restored2);
  ASSERT_TRUE(Report2.ok());
  EXPECT_EQ(readAll(Restored1), readAll(Restored2));
  EXPECT_EQ(Report1.ReplayedRecords, Report2.ReplayedRecords);

  // The FTL under the recovered pipeline is internally consistent.
  EXPECT_TRUE(Pipe1->ssd().ftl()->checkInvariants())
      << whyOf(*Pipe1->ssd().ftl());
}
