//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the sim module: ledger arithmetic, makespan /
/// bottleneck math, cost-model helpers and platform profiles.
///
//===----------------------------------------------------------------------===//

#include "sim/CostModel.h"
#include "sim/Platform.h"
#include "sim/ResourceLedger.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace padre;

//===----------------------------------------------------------------------===//
// ResourceLedger
//===----------------------------------------------------------------------===//

TEST(ResourceLedger, ChargesAccumulate) {
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::CpuPool, 100.0);
  Ledger.chargeMicros(Resource::CpuPool, 150.0);
  EXPECT_NEAR(Ledger.busySeconds(Resource::CpuPool), 250e-6, 1e-12);
  EXPECT_EQ(Ledger.busySeconds(Resource::Gpu), 0.0);
}

TEST(ResourceLedger, MakespanDividesCpuByThreads) {
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::CpuPool, 800.0);
  Ledger.chargeMicros(Resource::Gpu, 50.0);
  // CPU normalized: 800/8 = 100us; GPU 50us -> CPU is the bottleneck.
  EXPECT_NEAR(Ledger.makespanSeconds(8), 100e-6, 1e-12);
  EXPECT_EQ(Ledger.bottleneck(8), Resource::CpuPool);
  // With one thread the CPU dominates even more.
  EXPECT_NEAR(Ledger.makespanSeconds(1), 800e-6, 1e-12);
}

TEST(ResourceLedger, MaskExcludesResources) {
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::Ssd, 1000.0);
  Ledger.chargeMicros(Resource::CpuPool, 80.0);
  EXPECT_NEAR(Ledger.makespanSeconds(8, AllResources), 1000e-6, 1e-12);
  EXPECT_NEAR(Ledger.makespanSeconds(8, ComputeResources), 10e-6, 1e-12);
  EXPECT_EQ(Ledger.bottleneck(8, ComputeResources), Resource::CpuPool);
}

TEST(ResourceLedger, ResetClearsEverything) {
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::Pcie, 5.0);
  Ledger.countKernelLaunch();
  Ledger.countHostToDevice(100);
  Ledger.reset();
  EXPECT_EQ(Ledger.busySeconds(Resource::Pcie), 0.0);
  EXPECT_EQ(Ledger.kernelLaunches(), 0u);
  EXPECT_EQ(Ledger.bytesToDevice(), 0u);
}

TEST(ResourceLedger, ConcurrentChargesAreLossless) {
  ResourceLedger Ledger;
  ThreadPool Pool(4);
  Pool.parallelFor(0, 10000, [&Ledger](std::size_t) {
    Ledger.chargeMicros(Resource::Gpu, 1.0);
  });
  EXPECT_NEAR(Ledger.busySeconds(Resource::Gpu), 10000e-6, 1e-9);
}

TEST(ResourceLedger, SummaryContainsLaunchCount) {
  ResourceLedger Ledger;
  Ledger.countKernelLaunch();
  Ledger.countKernelLaunch();
  EXPECT_NE(Ledger.summary(8).find("launches=2"), std::string::npos);
}

TEST(ResourceLedger, ResourceNames) {
  EXPECT_STREQ(resourceName(Resource::CpuPool), "cpu");
  EXPECT_STREQ(resourceName(Resource::Gpu), "gpu");
  EXPECT_STREQ(resourceName(Resource::Pcie), "pcie");
  EXPECT_STREQ(resourceName(Resource::Ssd), "ssd");
  EXPECT_STREQ(resourceName(Resource::IndexLock), "lock");
}

TEST(ResourceLedger, IndexLockIsCapacityOneInComputeMakespan) {
  ResourceLedger Ledger;
  Ledger.chargeMicros(Resource::CpuPool, 800.0);
  Ledger.chargeMicros(Resource::IndexLock, 500.0);
  // CPU normalized 100us < lock 500us: the serialization point wins.
  EXPECT_NEAR(Ledger.makespanSeconds(8, ComputeResources), 500e-6, 1e-12);
  EXPECT_EQ(Ledger.bottleneck(8, ComputeResources), Resource::IndexLock);
}

//===----------------------------------------------------------------------===//
// CostModel helpers
//===----------------------------------------------------------------------===//

TEST(CostModel, DefaultIsValid) {
  EXPECT_TRUE(isValidCostModel(CostModel()));
}

TEST(CostModel, RejectsNonPositiveConstants) {
  CostModel Model;
  Model.Cpu.HashPerByteNs = 0.0;
  EXPECT_FALSE(isValidCostModel(Model));
  Model = CostModel();
  Model.Gpu.MixedKernelPenalty = 0.9; // below 1 is nonsensical
  EXPECT_FALSE(isValidCostModel(Model));
  Model = CostModel();
  Model.Cpu.Threads = 0;
  EXPECT_FALSE(isValidCostModel(Model));
}

TEST(CostModel, HashCostScalesLinearly) {
  const CostModel Model;
  EXPECT_NEAR(Model.cpuHashUs(8192), 2 * Model.cpuHashUs(4096), 1e-9);
  EXPECT_LT(Model.gpuHashUs(4096), Model.cpuHashUs(4096));
}

TEST(CostModel, CompressCostPrefersMatches) {
  const CostModel Model;
  // Match-covered bytes must be cheaper than literal bytes — this is
  // what makes compressible data faster (§4(2)).
  EXPECT_LT(Model.cpuCompressUs(0, 4096), Model.cpuCompressUs(4096, 0));
}

TEST(CostModel, PcieTransferHasFixedAndLinearParts) {
  const CostModel Model;
  const double Small = Model.pcieTransferUs(1);
  const double Large = Model.pcieTransferUs(1 << 20);
  EXPECT_GT(Small, 0.0);
  EXPECT_GT(Large, Small);
  // 1 MiB at 8 GB/s is ~131 us plus the fixed setup.
  EXPECT_NEAR(Large, Model.Pcie.PerTransferUs + (1 << 20) / 8e3, 1.0);
}

TEST(CostModel, SsdSequentialCosts) {
  const CostModel Model;
  // 320 MB/s: 1 MB takes ~3125 us plus command overhead.
  EXPECT_NEAR(Model.ssdSeqWriteUs(1000000),
              Model.Ssd.SeqCommandUs + 1000000.0 / 320.0, 1e-6);
  EXPECT_LT(Model.ssdSeqReadUs(1000000), Model.ssdSeqWriteUs(1000000));
}

TEST(CostModel, PostprocessRawFallbackIsCheap) {
  const CostModel Model;
  EXPECT_LT(Model.cpuPostprocessUs(0, /*StoredRaw=*/true),
            Model.cpuPostprocessUs(2048, /*StoredRaw=*/false));
}

//===----------------------------------------------------------------------===//
// Platform profiles
//===----------------------------------------------------------------------===//

TEST(Platform, PaperProfileHasGpu) {
  const Platform P = Platform::paper();
  EXPECT_TRUE(P.Model.Gpu.Present);
  EXPECT_TRUE(isValidCostModel(P.Model));
}

TEST(Platform, NoGpuProfile) {
  EXPECT_FALSE(Platform::noGpu().Model.Gpu.Present);
}

TEST(Platform, WeakGpuIsSlowerThanPaper) {
  const Platform Paper = Platform::paper();
  const Platform Weak = Platform::weakGpu();
  EXPECT_GT(Weak.Model.Gpu.LzLiteralPerByteNs,
            Paper.Model.Gpu.LzLiteralPerByteNs);
  EXPECT_GT(Weak.Model.Gpu.LaunchUs, Paper.Model.Gpu.LaunchUs);
  EXPECT_LT(Weak.Model.Pcie.GigabytesPerSec,
            Paper.Model.Pcie.GigabytesPerSec);
  EXPECT_TRUE(isValidCostModel(Weak.Model));
}

TEST(Platform, FastGpuIsFasterThanPaper) {
  const Platform Paper = Platform::paper();
  const Platform Fast = Platform::fastGpu();
  EXPECT_LT(Fast.Model.Gpu.LzLiteralPerByteNs,
            Paper.Model.Gpu.LzLiteralPerByteNs);
  EXPECT_TRUE(isValidCostModel(Fast.Model));
}

TEST(Platform, AllProfilesAreDistinctAndValid) {
  const auto Profiles = Platform::allProfiles();
  ASSERT_EQ(Profiles.size(), 4u);
  std::set<std::string> Names;
  for (const Platform &P : Profiles) {
    EXPECT_TRUE(isValidCostModel(P.Model));
    Names.insert(P.Name);
  }
  EXPECT_EQ(Names.size(), 4u);
}
