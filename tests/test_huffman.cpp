//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the bit stream, the canonical Huffman codec, and the
/// LzHuff entropy-stage wiring (ChunkCodec + CompressEngine +
/// pipeline round trips).
///
//===----------------------------------------------------------------------===//

#include "compress/BitStream.h"
#include "compress/ChunkCodec.h"
#include "compress/Huffman.h"
#include "compress/LzCodec.h"
#include "core/ReductionPipeline.h"
#include "util/Random.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <string>

using namespace padre;

namespace {

ByteVector textData(std::size_t Size) {
  std::string Text;
  while (Text.size() < Size)
    Text += "it is a truth universally acknowledged, that a single man in "
            "possession of a good fortune, must be in want of a wife. ";
  Text.resize(Size);
  return ByteVector(Text.begin(), Text.end());
}

ByteVector randomData(std::size_t Size, std::uint64_t Seed) {
  ByteVector Data(Size);
  Random Rng(Seed);
  Rng.fillBytes(Data.data(), Data.size());
  return Data;
}

} // namespace

//===----------------------------------------------------------------------===//
// BitStream
//===----------------------------------------------------------------------===//

TEST(BitStream, WriteReadRoundTrip) {
  ByteVector Buffer;
  BitWriter Writer(Buffer);
  Writer.write(0b101, 3);
  Writer.write(0b11111111, 8);
  Writer.write(0, 1);
  Writer.write(0x12345, 20);
  Writer.finish();

  BitReader Reader(ByteSpan(Buffer.data(), Buffer.size()));
  std::uint32_t Value;
  ASSERT_TRUE(Reader.read(3, Value));
  EXPECT_EQ(Value, 0b101u);
  ASSERT_TRUE(Reader.read(8, Value));
  EXPECT_EQ(Value, 0xFFu);
  ASSERT_TRUE(Reader.read(1, Value));
  EXPECT_EQ(Value, 0u);
  ASSERT_TRUE(Reader.read(20, Value));
  EXPECT_EQ(Value, 0x12345u);
}

TEST(BitStream, ReaderReportsExhaustion) {
  ByteVector Buffer = {0xAB};
  BitReader Reader(ByteSpan(Buffer.data(), Buffer.size()));
  std::uint32_t Value;
  ASSERT_TRUE(Reader.read(8, Value));
  EXPECT_FALSE(Reader.read(1, Value));
}

TEST(BitStream, ManyRandomFields) {
  Random Rng(42);
  std::vector<std::pair<std::uint32_t, unsigned>> Fields;
  ByteVector Buffer;
  BitWriter Writer(Buffer);
  for (int I = 0; I < 2000; ++I) {
    const unsigned Count = 1 + Rng.nextBelow(24);
    const std::uint32_t Value =
        static_cast<std::uint32_t>(Rng.nextU64()) &
        ((Count == 32) ? 0xFFFFFFFFu : ((1u << Count) - 1));
    Fields.push_back({Value, Count});
    Writer.write(Value, Count);
  }
  Writer.finish();
  BitReader Reader(ByteSpan(Buffer.data(), Buffer.size()));
  for (const auto &[Value, Count] : Fields) {
    std::uint32_t Read;
    ASSERT_TRUE(Reader.read(Count, Read));
    EXPECT_EQ(Read, Value);
  }
}

//===----------------------------------------------------------------------===//
// Huffman codec
//===----------------------------------------------------------------------===//

TEST(Huffman, TextRoundTripAndShrinks) {
  const ByteVector Data = textData(4096);
  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  EXPECT_LT(Encoded->size(), Data.size());
  ByteVector Out;
  ASSERT_TRUE(huffmanDecode(ByteSpan(Encoded->data(), Encoded->size()),
                            Data.size(), Out));
  EXPECT_EQ(Out, Data);
}

TEST(Huffman, RandomDataDeclines) {
  const ByteVector Data = randomData(4096, 1);
  // Uniform bytes: entropy ~8 bits/symbol; header makes it a loss.
  EXPECT_FALSE(huffmanEncode(ByteSpan(Data.data(), Data.size())).has_value());
}

TEST(Huffman, SingleSymbolInput) {
  const ByteVector Data(4096, 'x');
  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  // 1 bit per symbol plus the header.
  EXPECT_LT(Encoded->size(), HuffmanHeaderSize + 4096 / 8 + 8);
  ByteVector Out;
  ASSERT_TRUE(huffmanDecode(ByteSpan(Encoded->data(), Encoded->size()),
                            Data.size(), Out));
  EXPECT_EQ(Out, Data);
}

TEST(Huffman, TinyInputDeclines) {
  const ByteVector Data = textData(64); // smaller than the header
  EXPECT_FALSE(huffmanEncode(ByteSpan(Data.data(), Data.size())).has_value());
}

TEST(Huffman, SkewedDistributionRoundTrip) {
  // Exponentially skewed frequencies force deep trees and exercise the
  // length-limiting path.
  ByteVector Data;
  Random Rng(2);
  for (int Symbol = 0; Symbol < 40; ++Symbol) {
    const std::size_t Count = std::size_t{1} << std::min(Symbol, 12);
    for (std::size_t I = 0; I < Count; ++I)
      Data.push_back(static_cast<std::uint8_t>(Symbol));
  }
  // Shuffle so runs do not matter.
  for (std::size_t I = Data.size(); I > 1; --I)
    std::swap(Data[I - 1], Data[Rng.nextBelow(I)]);

  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  ByteVector Out;
  ASSERT_TRUE(huffmanDecode(ByteSpan(Encoded->data(), Encoded->size()),
                            Data.size(), Out));
  EXPECT_EQ(Out, Data);
}

TEST(Huffman, DecodeRejectsTruncation) {
  const ByteVector Data = textData(2048);
  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  ByteVector Out;
  EXPECT_FALSE(huffmanDecode(
      ByteSpan(Encoded->data(), Encoded->size() - 8), Data.size(), Out));
  EXPECT_FALSE(huffmanDecode(ByteSpan(Encoded->data(), 10), Data.size(),
                             Out));
  EXPECT_TRUE(Out.empty());
}

TEST(Huffman, DecodeRejectsInvalidKraftHeader) {
  // A header claiming two symbols of length 1 plus one of length 1 is
  // over-subscribed.
  ByteVector Payload(HuffmanHeaderSize + 8, 0);
  Payload[0] = 0x11; // symbols 0 and 1: length 1
  Payload[1] = 0x01; // symbol 2: length 1 -> Kraft violation
  ByteVector Out;
  EXPECT_FALSE(huffmanDecode(ByteSpan(Payload.data(), Payload.size()), 4,
                             Out));
}

TEST(Huffman, FuzzRoundTripAcrossEntropies) {
  for (std::uint64_t Seed = 0; Seed < 12; ++Seed) {
    Random Rng(Seed * 131 + 7);
    // Alphabet size sweeps from 2 to 256.
    const unsigned Alphabet = 2 + Rng.nextBelow(255);
    ByteVector Data(1024 + Rng.nextBelow(8192));
    for (std::uint8_t &Byte : Data)
      Byte = static_cast<std::uint8_t>(Rng.nextBelow(Alphabet));
    const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
    if (!Encoded)
      continue; // declines are legal; nothing to verify
    ByteVector Out;
    ASSERT_TRUE(huffmanDecode(ByteSpan(Encoded->data(), Encoded->size()),
                              Data.size(), Out))
        << "seed " << Seed;
    EXPECT_EQ(Out, Data) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// ChunkCodec entropy wrapper + engine/pipeline integration
//===----------------------------------------------------------------------===//

TEST(ChunkCodec, EntropyTokensRoundTrip) {
  // A chunk that LZ cannot match much of but whose bytes carry only
  // 4 bits of entropy: the token stream is literal-heavy, the ideal
  // case for the entropy stage.
  ByteVector Chunk(16384);
  Random Rng(3);
  for (std::uint8_t &Byte : Chunk)
    Byte = static_cast<std::uint8_t>(Rng.nextBelow(16));
  const LzCodec Codec(LzCodec::MatcherKind::SingleProbe);
  const CompressResult Lz =
      Codec.compress(ByteSpan(Chunk.data(), Chunk.size()));
  const auto Payload =
      entropyEncodeTokens(ByteSpan(Lz.Payload.data(), Lz.Payload.size()));
  ASSERT_TRUE(Payload.has_value());
  EXPECT_LT(Payload->size(), Lz.Payload.size());

  const ByteVector Block =
      encodeBlock(BlockMethod::LzHuff,
                  static_cast<std::uint32_t>(Chunk.size()),
                  ByteSpan(Payload->data(), Payload->size()));
  const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
  ASSERT_TRUE(View.has_value());
  ByteVector Out;
  ASSERT_TRUE(decodeChunkPayload(*View, Out));
  EXPECT_EQ(Out, Chunk);
}

TEST(ChunkCodec, DecodeDispatchesEveryMethod) {
  const ByteVector Chunk = textData(4096);
  const LzCodec Chain(LzCodec::MatcherKind::HashChain);
  const CompressResult Lz =
      Chain.compress(ByteSpan(Chunk.data(), Chunk.size()));
  for (BlockMethod Method :
       {BlockMethod::Lz77, BlockMethod::QuickLz, BlockMethod::GpuLane}) {
    const ByteVector Block =
        encodeBlock(Method, static_cast<std::uint32_t>(Chunk.size()),
                    ByteSpan(Lz.Payload.data(), Lz.Payload.size()));
    const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
    ASSERT_TRUE(View.has_value());
    ByteVector Out;
    ASSERT_TRUE(decodeChunkPayload(*View, Out));
    EXPECT_EQ(Out, Chunk);
  }
  const ByteVector RawBlock =
      encodeBlock(BlockMethod::Raw,
                  static_cast<std::uint32_t>(Chunk.size()),
                  ByteSpan(Chunk.data(), Chunk.size()));
  const auto RawView =
      decodeBlock(ByteSpan(RawBlock.data(), RawBlock.size()));
  ByteVector Out;
  ASSERT_TRUE(decodeChunkPayload(*RawView, Out));
  EXPECT_EQ(Out, Chunk);
}

TEST(ChunkCodec, LzHuffRejectsShortPayload) {
  const ByteVector Block = encodeBlock(BlockMethod::LzHuff, 4096,
                                       ByteSpan());
  const auto View = decodeBlock(ByteSpan(Block.data(), Block.size()));
  ASSERT_TRUE(View.has_value());
  ByteVector Out;
  EXPECT_FALSE(decodeChunkPayload(*View, Out));
}

namespace {

class EntropyPipeline : public ::testing::TestWithParam<PipelineMode> {};

} // namespace

TEST_P(EntropyPipeline, RoundTripsAndImprovesRatio) {
  WorkloadConfig Load;
  Load.TotalBytes = 4 << 20;
  Load.DedupRatio = 1.0;
  Load.CompressRatio = 2.0;
  const ByteVector Data = VdbenchStream(Load).generateAll();

  PipelineConfig Plain;
  Plain.Mode = GetParam();
  Plain.Dedup.Index.BinBits = 8;
  PipelineConfig WithEntropy = Plain;
  WithEntropy.Compress.EntropyStage = true;

  ReductionPipeline PipelinePlain(Platform::paper(), Plain);
  PipelinePlain.write(ByteSpan(Data.data(), Data.size()));
  PipelinePlain.finish();
  ReductionPipeline PipelineEntropy(Platform::paper(), WithEntropy);
  PipelineEntropy.write(ByteSpan(Data.data(), Data.size()));
  PipelineEntropy.finish();

  EXPECT_TRUE(
      PipelineEntropy.verifyAgainst(ByteSpan(Data.data(), Data.size())));
  // Entropy stage must not hurt the stored size and should help some.
  EXPECT_LE(PipelineEntropy.report().StoredBytes,
            PipelinePlain.report().StoredBytes);
  // It costs CPU time (the trade the extension makes).
  EXPECT_GE(PipelineEntropy.report().CpuBusySec,
            PipelinePlain.report().CpuBusySec);
}

INSTANTIATE_TEST_SUITE_P(Backends, EntropyPipeline,
                         ::testing::Values(PipelineMode::CpuOnly,
                                           PipelineMode::GpuCompress),
                         [](const auto &Info) {
                           return Info.param == PipelineMode::CpuOnly
                                      ? "cpu"
                                      : "gpu";
                         });

//===----------------------------------------------------------------------===//
// Decoder robustness under systematic damage. The destage bit-flip
// fault (src/fault) can land anywhere in a stored block, so the
// entropy decoder must uphold the same contract as the LZ and delta
// decoders: a damaged payload either fails (Out untouched) or decodes
// to exactly OriginalSize bytes — never a crash, never partial output.
//===----------------------------------------------------------------------===//

namespace {

ByteVector compressibleCorpus(std::uint64_t Seed) {
  Random Rng(Seed * 977 + 5);
  const unsigned Alphabet = 2 + Rng.nextBelow(48);
  ByteVector Data(1024 + Rng.nextBelow(4096));
  for (std::uint8_t &Byte : Data)
    Byte = static_cast<std::uint8_t>(Rng.nextBelow(Alphabet));
  return Data;
}

void expectHuffmanDecodeContract(const ByteVector &Payload,
                                 std::size_t OriginalSize) {
  ByteVector Out = {0xA5};
  const ByteVector Before = Out;
  const bool Ok = huffmanDecode(ByteSpan(Payload.data(), Payload.size()),
                                OriginalSize, Out);
  if (Ok)
    EXPECT_EQ(Out.size(), Before.size() + OriginalSize);
  else
    EXPECT_EQ(Out, Before);
}

} // namespace

class HuffmanCorruption : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanCorruption, TruncationSweepFailsCleanly) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  const ByteVector Data = compressibleCorpus(Seed);
  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  Random Rng(Seed * 37 + 3);
  for (int Trial = 0; Trial < 24; ++Trial) {
    const std::size_t Keep = Rng.nextBelow(Encoded->size());
    const ByteVector Cut(Encoded->begin(), Encoded->begin() + Keep);
    ByteVector Out;
    // A truncated stream can never yield all OriginalSize symbols —
    // below the header it is rejected outright, above it the bit
    // reader exhausts early.
    EXPECT_FALSE(huffmanDecode(ByteSpan(Cut.data(), Cut.size()),
                               Data.size(), Out));
    EXPECT_TRUE(Out.empty());
  }
}

TEST_P(HuffmanCorruption, BitFlipsInHeaderAndStreamFailOrDecodeFullSize) {
  const std::uint64_t Seed = static_cast<std::uint64_t>(GetParam());
  const ByteVector Data = compressibleCorpus(Seed + 100);
  const auto Encoded = huffmanEncode(ByteSpan(Data.data(), Data.size()));
  ASSERT_TRUE(Encoded.has_value());
  Random Rng(Seed * 61 + 11);
  for (int Trial = 0; Trial < 48; ++Trial) {
    ByteVector Damaged = *Encoded;
    // Half the trials target the 128-byte code-length header (corrupt
    // tables, Kraft violations), half the bit stream proper.
    const bool HitHeader = Trial % 2 == 0;
    const std::size_t Offset =
        HitHeader ? Rng.nextBelow(HuffmanHeaderSize)
                  : HuffmanHeaderSize +
                        Rng.nextBelow(Damaged.size() - HuffmanHeaderSize);
    Damaged[Offset] ^= static_cast<std::uint8_t>(1u << Rng.nextBelow(8));
    expectHuffmanDecodeContract(Damaged, Data.size());
  }
}

TEST(HuffmanCorruption, GarbagePayloadsNeverCrash) {
  for (std::uint64_t Seed = 0; Seed < 16; ++Seed) {
    Random Rng(Seed * 211 + 9);
    ByteVector Garbage(HuffmanHeaderSize + Rng.nextBelow(2048));
    Rng.fillBytes(Garbage.data(), Garbage.size());
    expectHuffmanDecodeContract(Garbage, 1 + Rng.nextBelow(8192));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanCorruption, ::testing::Range(0, 10));
