//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the batched restore pipeline (src/restore): CPU and GPU
/// decode round trips, batch dedup and SSD coalescing, the cache front
/// tier and recipe-locality readahead, decode-failure accounting, the
/// Auto probe's launch-latency crossover, the span/report
/// reconciliation contract, and volume-level reads interleaved with
/// TRIM / GC / snapshots / scrub.
///
//===----------------------------------------------------------------------===//

#include "core/TraceRunner.h"
#include "obs/Obs.h"
#include "restore/VolumeReader.h"
#include "workload/VdbenchStream.h"

#include <gtest/gtest.h>

#include <cassert>

using namespace padre;
using namespace padre::obs;
using namespace padre::restore;

namespace {

constexpr std::size_t BlockSize = 4096;

ByteVector makeStream(std::uint64_t Bytes, double DedupRatio = 2.0,
                      double CompressRatio = 2.0,
                      std::uint64_t Seed = 1234) {
  WorkloadConfig Load;
  Load.BlockSize = BlockSize;
  Load.TotalBytes = Bytes;
  Load.DedupRatio = DedupRatio;
  Load.CompressRatio = CompressRatio;
  Load.Seed = Seed;
  return VdbenchStream(Load).generateAll();
}

/// A written pipeline ready for restore runs. The obs sinks are
/// members declared before the pipeline so they outlive its cached
/// instrument pointers.
struct RestoreFixture : ::testing::Test {
  MetricsRegistry Metrics;
  std::unique_ptr<ReductionPipeline> Pipeline;
  ByteVector Data;

  void write(std::uint64_t Bytes, std::size_t CacheBytes = 0,
             double DedupRatio = 2.0, double CompressRatio = 2.0,
             const Platform &Plat = Platform::paper(),
             unsigned SubBlocks = 1) {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.ReadCacheBytes = CacheBytes;
    Config.Metrics = &Metrics;
    Config.Compress.SubBlocks = SubBlocks;
    Data = makeStream(Bytes, DedupRatio, CompressRatio);
    Pipeline = std::make_unique<ReductionPipeline>(Plat, Config);
    Pipeline->write(ByteSpan(Data.data(), Data.size()));
    Pipeline->finish();
  }

  /// Writes a v2-framed stream (4 sub-blocks per chunk).
  void writeFramed(std::uint64_t Bytes, std::size_t CacheBytes = 0) {
    write(Bytes, CacheBytes, 2.0, 2.0, Platform::paper(), /*SubBlocks=*/4);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Round trips and batch semantics
//===----------------------------------------------------------------------===//

TEST_F(RestoreFixture, CpuDecodeRoundTrips) {
  write(4 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  const ReadReport Report = Reader.report();
  EXPECT_EQ(Report.ChunksRequested, Data.size() / BlockSize);
  EXPECT_EQ(Report.BytesOut, Data.size());
  EXPECT_GT(Report.CpuBatches, 0u);
  EXPECT_EQ(Report.GpuBatches, 0u);
  EXPECT_EQ(Report.DecodeFailures, 0u);
}

TEST_F(RestoreFixture, GpuDecodeRoundTripsWithSameBytes) {
  write(4 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Gpu;
  ReadPipeline Reader(*Pipeline, Config);
  // CPU-only write mode on a GPU platform: the reader brings up its
  // own device rather than degrading to CPU decode.
  EXPECT_EQ(Reader.effectiveMode(), DecodeMode::Gpu);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  const ReadReport Report = Reader.report();
  EXPECT_GT(Report.GpuBatches, 0u);
  EXPECT_GT(Report.GpuBusySec, 0.0);
  EXPECT_GT(Report.PcieBusySec, 0.0);
}

TEST_F(RestoreFixture, GpuModeDegradesToCpuWithoutDevice) {
  write(1 << 20, 0, 2.0, 2.0, Platform::noGpu());
  ReadConfig Config;
  Config.Mode = DecodeMode::Gpu;
  ReadPipeline Reader(*Pipeline, Config);
  EXPECT_EQ(Reader.effectiveMode(), DecodeMode::Cpu);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
}

TEST_F(RestoreFixture, DuplicateLocationsFetchOnceServeAll) {
  write(1 << 20);
  const std::uint64_t Loc = Pipeline->recipe().ChunkLocations.front();
  const std::uint64_t Locations[] = {Loc, Loc, Loc, Loc};
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  std::vector<ByteVector> Out;
  ASSERT_TRUE(Reader.readLocations(Locations, Out));
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0], Out[3]);
  const ReadReport Report = Reader.report();
  EXPECT_EQ(Report.ChunksRequested, 4u);
  EXPECT_EQ(Report.SsdChunks, 1u); // fetched and decoded once
}

TEST_F(RestoreFixture, AdjacentMissesCoalesceSequentialReads) {
  // Unique stream -> destage wrote locations 0..N-1 adjacently; a
  // full-stream batch must coalesce instead of issuing N random reads.
  write(1 << 20, 0, 1.0);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  const ReadReport Report = Reader.report();
  EXPECT_GT(Report.CoalescedRuns, 0u);
  EXPECT_LT(Report.CoalescedRuns + Report.RandomReads,
            Report.SsdChunks / 4);
}

TEST_F(RestoreFixture, MissingLocationFailsAndCounts) {
  write(1 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const std::uint64_t Locations[] = {~std::uint64_t{1}};
  std::vector<ByteVector> Out;
  EXPECT_FALSE(Reader.readLocations(Locations, Out));
  EXPECT_EQ(Reader.report().DecodeFailures, 1u);
}

//===----------------------------------------------------------------------===//
// Cache front tier and readahead
//===----------------------------------------------------------------------===//

TEST_F(RestoreFixture, WarmPassServesFromCache) {
  write(2 << 20, 8 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  ASSERT_TRUE(Reader.readStream(Pipeline->recipe()).has_value());
  Reader.resetMeasurement();
  const auto Warm = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Warm.has_value());
  EXPECT_EQ(*Warm, Data);
  const ReadReport Report = Reader.report();
  EXPECT_EQ(Report.CacheHits, Report.ChunksRequested);
  EXPECT_EQ(Report.SsdChunks, 0u);
  EXPECT_EQ(Report.SsdBusySec, 0.0);
  // The cache's own instruments saw the traffic (satellite: ChunkCache
  // is visible to the metrics registry).
  const Counter *Hits = Metrics.findCounter("padre_cache_hit_total");
  ASSERT_NE(Hits, nullptr);
  EXPECT_GE(Hits->value(), Report.CacheHits);
}

TEST_F(RestoreFixture, ReadaheadPrefetchesRecipeSuccessors) {
  // Unique stream: locations are contiguous. Reading a prefix with
  // readahead on must pull successors into the cache, so reading the
  // next stretch hits DRAM without new flash traffic.
  write(1 << 20, 8 << 20, 1.0);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  Config.ReadaheadChunks = 16;
  ReadPipeline Reader(*Pipeline, Config);
  const auto &Locations = Pipeline->recipe().ChunkLocations;
  ASSERT_GT(Locations.size(), 64u);
  std::vector<ByteVector> Out;
  ASSERT_TRUE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), 32), Out));
  const ReadReport Cold = Reader.report();
  EXPECT_GT(Cold.ReadaheadChunks, 0u);

  Reader.resetMeasurement();
  ASSERT_TRUE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data() + 32, 16), Out));
  const ReadReport Next = Reader.report();
  EXPECT_EQ(Next.CacheHits, Next.ChunksRequested);
  EXPECT_EQ(Next.SsdChunks, 0u);
}

TEST_F(RestoreFixture, CorruptChunkFailsAndCounts) {
  write(1 << 20);
  const std::uint64_t Loc = Pipeline->recipe().ChunkLocations.front();
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Loc, 20));
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const std::uint64_t One[] = {Loc};
  std::vector<ByteVector> Out;
  EXPECT_FALSE(Reader.readLocations(One, Out));
  EXPECT_EQ(Reader.report().DecodeFailures, 1u);
  const Counter *Fails =
      Metrics.findCounter("padre_read_decode_fail_total");
  ASSERT_NE(Fails, nullptr);
  EXPECT_GE(Fails->value(), 1u);
}

//===----------------------------------------------------------------------===//
// The Auto probe
//===----------------------------------------------------------------------===//

TEST_F(RestoreFixture, ProbeWarpKillsTheLaneCrossover) {
  write(1 << 20);
  // The lane kernel's launch-latency crossover is still visible in the
  // probe's per-path makespans: at depth 8 LaunchUs dominates and the
  // lane path loses to the CPU pool; at depth 256 it wins. But the
  // warp path (persistent kernel, doorbell dispatch) undercuts the CPU
  // pool at BOTH depths, so Auto resolves to WarpGpu everywhere — the
  // decode-v2 headline.
  ReadConfig Shallow;
  Shallow.Mode = DecodeMode::Auto;
  Shallow.BatchDepth = 8;
  ReadPipeline ShallowReader(*Pipeline, Shallow);
  EXPECT_EQ(ShallowReader.effectiveMode(), DecodeMode::WarpGpu);
  const ReadReport ShallowReport = ShallowReader.report();
  EXPECT_GT(ShallowReport.ProbeGpuUs, ShallowReport.ProbeCpuUs);
  EXPECT_LT(ShallowReport.ProbeWarpUs, ShallowReport.ProbeCpuUs);

  ReadConfig Deep = Shallow;
  Deep.BatchDepth = 256;
  ReadPipeline DeepReader(*Pipeline, Deep);
  EXPECT_EQ(DeepReader.effectiveMode(), DecodeMode::WarpGpu);
  const ReadReport DeepReport = DeepReader.report();
  EXPECT_LT(DeepReport.ProbeGpuUs, DeepReport.ProbeCpuUs);
  EXPECT_LT(DeepReport.ProbeWarpUs, DeepReport.ProbeGpuUs);
}

TEST_F(RestoreFixture, ProbeReportsSubBlockRatioDelta) {
  write(1 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Auto;
  ReadPipeline Reader(*Pipeline, Config);
  const ReadReport Report = Reader.report();
  // Framing costs ratio (history reset + header) but never wins it.
  EXPECT_GT(Report.SubBlockRatioDeltaPct, 0.0);
  EXPECT_LT(Report.SubBlockRatioDeltaPct, 15.0);
}

TEST_F(RestoreFixture, ProbeChargesNothing) {
  write(1 << 20);
  const double Before = Pipeline->ledger().busyMicros(Resource::CpuPool);
  ReadConfig Config;
  Config.Mode = DecodeMode::Auto;
  ReadPipeline Reader(*Pipeline, Config);
  EXPECT_EQ(Pipeline->ledger().busyMicros(Resource::CpuPool), Before);
  EXPECT_EQ(Pipeline->ledger().busyMicros(Resource::Gpu), 0.0);
}

//===----------------------------------------------------------------------===//
// Decode v2: the warp-cooperative path over framed streams, and the
// v1 <-> v2 compatibility matrix (either format on either backend).
//===----------------------------------------------------------------------===//

TEST_F(RestoreFixture, WarpDecodeRoundTripsFramedStream) {
  writeFramed(4 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::WarpGpu;
  ReadPipeline Reader(*Pipeline, Config);
  EXPECT_EQ(Reader.effectiveMode(), DecodeMode::WarpGpu);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  const ReadReport Report = Reader.report();
  EXPECT_GT(Report.WarpBatches, 0u);
  EXPECT_GT(Report.FramedChunks, 0u);
  EXPECT_EQ(Report.Mode, DecodeMode::WarpGpu);
  EXPECT_GT(Report.GpuBusySec, 0.0);
  EXPECT_GT(Report.PcieBusySec, 0.0);
  // Satellite metrics: the warp batch counter and the mode gauge.
  const Counter *Warp =
      Metrics.findCounter("padre_read_batches_total{mode=\"warp\"}");
  ASSERT_NE(Warp, nullptr);
  EXPECT_EQ(Warp->value(), Report.WarpBatches);
  const Gauge *ModeGauge = Metrics.findGauge("padre_read_decode_mode");
  ASSERT_NE(ModeGauge, nullptr);
  EXPECT_EQ(ModeGauge->value(), 2.0);
  for (const char *Name :
       {"padre_read_probe_us{mode=\"cpu\"}",
        "padre_read_probe_us{mode=\"gpu\"}",
        "padre_read_probe_us{mode=\"warp\"}"}) {
    const Gauge *Probe = Metrics.findGauge(Name);
    ASSERT_NE(Probe, nullptr) << Name;
    EXPECT_GT(Probe->value(), 0.0) << Name;
  }
}

TEST_F(RestoreFixture, FramedStreamDecodesOnCpuBitExact) {
  writeFramed(2 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  const ReadReport Report = Reader.report();
  EXPECT_EQ(Report.WarpBatches, 0u);
  EXPECT_GT(Report.FramedChunks, 0u); // counted on any decode path
}

TEST_F(RestoreFixture, UnframedStreamInWarpModeStaysBitExact) {
  // v1 compatibility: a store written without framing decodes under
  // WarpGpu mode by routing around the warp kernel (lane or CPU) —
  // never through it.
  write(2 << 20);
  ReadConfig Config;
  Config.Mode = DecodeMode::WarpGpu;
  ReadPipeline Reader(*Pipeline, Config);
  EXPECT_EQ(Reader.effectiveMode(), DecodeMode::WarpGpu);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);
  const ReadReport Report = Reader.report();
  EXPECT_EQ(Report.WarpBatches, 0u);
  EXPECT_EQ(Report.FramedChunks, 0u);
}

TEST_F(RestoreFixture, WarpAndCpuDecodeSameFramedBytes) {
  writeFramed(2 << 20);
  ReadConfig CpuConfig;
  CpuConfig.Mode = DecodeMode::Cpu;
  const auto CpuBytes =
      ReadPipeline(*Pipeline, CpuConfig).readStream(Pipeline->recipe());
  ReadConfig WarpConfig;
  WarpConfig.Mode = DecodeMode::WarpGpu;
  const auto WarpBytes =
      ReadPipeline(*Pipeline, WarpConfig).readStream(Pipeline->recipe());
  ASSERT_TRUE(CpuBytes.has_value());
  ASSERT_TRUE(WarpBytes.has_value());
  EXPECT_EQ(*CpuBytes, *WarpBytes);
  EXPECT_EQ(*CpuBytes, Data);
}

TEST_F(RestoreFixture, MixedFramedUnframedBatchArbitratesPerBatch) {
  // A store that genuinely mixes framed and unframed GPU-decodable
  // chunks: the backend splitter's Fixed 0.5 split compresses half of
  // every batch on the device engine (BlockMethod::GpuLane) and half
  // on the CPU engine, which frames at SubBlocks=4
  // (BlockMethod::LzFramed). Under WarpGpu decode the framed chunks go
  // to the warp kernel and the unframed remainder's route is arbitrated
  // per batch from that batch's actual composition.
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Metrics = &Metrics;
  Config.Compress.SubBlocks = 4;
  Config.Backend.Enabled = true;
  Config.Backend.Split = backend::SplitMode::Fixed;
  Config.Backend.Fraction = 0.5;
  Data = makeStream(4 << 20);
  Pipeline = std::make_unique<ReductionPipeline>(Platform::paper(), Config);
  Pipeline->write(ByteSpan(Data.data(), Data.size()));
  Pipeline->finish();

  ReadConfig Read;
  Read.Mode = DecodeMode::WarpGpu;
  ReadPipeline Reader(*Pipeline, Read);
  EXPECT_EQ(Reader.effectiveMode(), DecodeMode::WarpGpu);
  const auto Restored = Reader.readStream(Pipeline->recipe());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(*Restored, Data);

  const ReadReport Report = Reader.report();
  EXPECT_GT(Report.FramedChunks, 0u);
  EXPECT_GT(Report.WarpBatches, 0u);
  EXPECT_GT(Report.MixedBatches, 0u);
  EXPECT_LE(Report.MixedToLane, Report.MixedBatches);
  const Counter *Lane =
      Metrics.findCounter("padre_read_mixed_batches_total{route=\"lane\"}");
  const Counter *Cpu =
      Metrics.findCounter("padre_read_mixed_batches_total{route=\"cpu\"}");
  ASSERT_NE(Lane, nullptr);
  ASSERT_NE(Cpu, nullptr);
  EXPECT_EQ(Lane->value() + Cpu->value(), Report.MixedBatches);
  EXPECT_EQ(Lane->value(), Report.MixedToLane);

  // Either arbitration outcome must stay bit-exact with a plain CPU
  // decode of the same store.
  ReadConfig CpuRead;
  CpuRead.Mode = DecodeMode::Cpu;
  const auto CpuBytes =
      ReadPipeline(*Pipeline, CpuRead).readStream(Pipeline->recipe());
  ASSERT_TRUE(CpuBytes.has_value());
  EXPECT_EQ(*CpuBytes, *Restored);
}

TEST_F(RestoreFixture, CorruptFramedChunkFailsTypedInWarpMode) {
  writeFramed(1 << 20, /*CacheBytes=*/8 << 20);
  const auto &All = Pipeline->recipe().ChunkLocations;
  ASSERT_GE(All.size(), 8u);
  const std::uint64_t Bad = All[2];
  // Flip a payload byte past the block header: the CRC catches it and
  // the read fails typed — never crashes, never caches garbage.
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Bad, 20));

  ReadConfig Config;
  Config.Mode = DecodeMode::WarpGpu;
  ReadPipeline Reader(*Pipeline, Config);
  const std::vector<std::uint64_t> Locations = {All[0], Bad, All[4]};
  std::vector<ByteVector> Out;
  std::vector<ReadFailure> Failures;
  EXPECT_FALSE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), Locations.size()),
      Out, &Failures));
  ASSERT_EQ(Failures.size(), 1u);
  EXPECT_EQ(Failures[0].Location, Bad);
  EXPECT_EQ(Failures[0].Code, fault::ErrorCode::ChunkCorrupt);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_FALSE(Out[0].empty());
  EXPECT_TRUE(Out[1].empty());
  EXPECT_FALSE(Out[2].empty());
  const ChunkCache *Cache = Pipeline->readCache();
  ASSERT_NE(Cache, nullptr);
  EXPECT_FALSE(Cache->contains(Bad));
  EXPECT_TRUE(Cache->contains(All[0]));
  EXPECT_TRUE(Cache->contains(All[4]));
}

//===----------------------------------------------------------------------===//
// Observability reconciliation (the write side's contract, read-side)
//===----------------------------------------------------------------------===//

namespace {

void expectSpansTileReport(DecodeMode Mode) {
  TraceRecorder Trace;
  PipelineConfig Config;
  Config.Mode = PipelineMode::CpuOnly;
  Config.Trace = &Trace;
  const ByteVector Data = makeStream(2 << 20);
  ReductionPipeline Pipeline(Platform::paper(), Config);
  Pipeline.write(ByteSpan(Data.data(), Data.size()));
  Pipeline.finish();

  ReadConfig ReadCfg;
  ReadCfg.Mode = Mode;
  ReadPipeline Reader(Pipeline, ReadCfg);
  // Only the restore's own window: drop write-phase spans and
  // rebaseline the report.
  Trace.clear();
  Reader.resetMeasurement();
  ASSERT_TRUE(Reader.readStream(Pipeline.recipe()).has_value());
  const ReadReport Report = Reader.report();
  // Stage spans must tile each lane's clock: their totals equal the
  // report's busy deltas to ±1 µs.
  EXPECT_NEAR(Trace.laneTotalUs(Resource::CpuPool, CategoryStage),
              Report.CpuBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Gpu, CategoryStage),
              Report.GpuBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Pcie, CategoryStage),
              Report.PcieBusySec * 1e6, 1.0);
  EXPECT_NEAR(Trace.laneTotalUs(Resource::Ssd, CategoryStage),
              Report.SsdBusySec * 1e6, 1.0);
}

} // namespace

TEST(RestoreObs, CpuSpansTileLaneClocks) {
  expectSpansTileReport(DecodeMode::Cpu);
}

TEST(RestoreObs, GpuSpansTileLaneClocks) {
  expectSpansTileReport(DecodeMode::Gpu);
}

//===----------------------------------------------------------------------===//
// Volume-level reads interleaved with TRIM / GC / snapshots / scrub
//===----------------------------------------------------------------------===//

namespace {

struct VolumeRestoreFixture : ::testing::Test {
  std::unique_ptr<ReductionPipeline> Pipeline;
  std::unique_ptr<Volume> Vol;

  void rebuild(std::size_t CacheBytes = 1 << 20) {
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.ReadCacheBytes = CacheBytes;
    Pipeline = std::make_unique<ReductionPipeline>(Platform::paper(),
                                                   Config);
    VolumeConfig VolConfig;
    VolConfig.BlockCount = 256;
    Vol = std::make_unique<Volume>(*Pipeline, VolConfig);
  }

  ByteVector writeOneBlock(std::uint64_t Tag, std::uint64_t Lba) {
    ByteVector Block(BlockSize);
    fillTraceBlock(Tag, MutableByteSpan(Block.data(), Block.size()));
    [[maybe_unused]] const bool Ok =
        Vol->writeBlocks(Lba, ByteSpan(Block.data(), Block.size()));
    assert(Ok);
    return Block;
  }
};

} // namespace

TEST_F(VolumeRestoreFixture, MatchesSerialVolumeReads) {
  rebuild();
  const ByteVector Data = makeStream(64 * BlockSize);
  ASSERT_TRUE(Vol->writeBlocks(8, ByteSpan(Data.data(), Data.size())));
  VolumeReader Reader(*Vol);
  // A range spanning unmapped (zero) blocks on both sides.
  const auto Batched = Reader.readBlocks(0, 128);
  const auto Serial = Vol->readBlocks(0, 128);
  ASSERT_TRUE(Batched.has_value());
  ASSERT_TRUE(Serial.has_value());
  EXPECT_EQ(*Batched, *Serial);
  EXPECT_FALSE(Reader.readBlocks(250, 10).has_value()); // out of range
}

TEST_F(VolumeRestoreFixture, ReadAfterTrimReadsZeros) {
  rebuild();
  writeOneBlock(1, 0);
  writeOneBlock(2, 1);
  ASSERT_TRUE(Vol->trim(0, 1));
  VolumeReader Reader(*Vol);
  const auto Out = Reader.readBlocks(0, 2);
  ASSERT_TRUE(Out.has_value());
  for (std::size_t B = 0; B < BlockSize; ++B)
    ASSERT_EQ((*Out)[B], 0u) << "trimmed block must read zero at " << B;
  // Block 1 is untouched.
  const auto Kept = Vol->readBlocks(1, 1);
  ASSERT_TRUE(Kept.has_value());
  EXPECT_TRUE(std::equal(Kept->begin(), Kept->end(),
                         Out->begin() + BlockSize));
}

TEST_F(VolumeRestoreFixture, TrimGcRewriteNeverResurrectsStaleBytes) {
  rebuild();
  writeOneBlock(3, 0);
  VolumeReader Reader(*Vol);
  ASSERT_TRUE(Reader.readBlocks(0, 1).has_value()); // cache the chunk
  ASSERT_TRUE(Vol->trim(0, 1));
  ASSERT_EQ(Vol->collectGarbage(), 1u);
  const ByteVector Fresh = writeOneBlock(4, 0);
  const auto Out = Reader.readBlocks(0, 1);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, Fresh);
}

TEST_F(VolumeRestoreFixture, GcRevivedChunksDecodeCorrectly) {
  rebuild();
  const ByteVector Original = writeOneBlock(5, 0);
  ASSERT_TRUE(Vol->trim(0, 1)); // chunk goes dead (deferred GC)
  // Identical content at another LBA revives the dead chunk.
  const ByteVector Revived = writeOneBlock(5, 7);
  EXPECT_EQ(Vol->collectGarbage(), 0u); // nothing left to collect
  VolumeReader Reader(*Vol);
  const auto Out = Reader.readBlocks(7, 1);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, Revived);
  EXPECT_EQ(*Out, Original);
}

TEST_F(VolumeRestoreFixture, SnapshotReadsThroughRestorePath) {
  rebuild();
  const ByteVector Old = writeOneBlock(6, 0);
  const Volume::SnapshotId Snap = Vol->createSnapshot();
  const ByteVector New = writeOneBlock(7, 0);
  VolumeReader Reader(*Vol);
  const auto Current = Reader.readBlocks(0, 1);
  const auto AsOfSnap = Reader.readSnapshotBlocks(Snap, 0, 1);
  ASSERT_TRUE(Current.has_value());
  ASSERT_TRUE(AsOfSnap.has_value());
  EXPECT_EQ(*Current, New);
  EXPECT_EQ(*AsOfSnap, Old);
  EXPECT_FALSE(Reader.readSnapshotBlocks(Snap + 99, 0, 1).has_value());
}

TEST_F(VolumeRestoreFixture, ScrubStillBypassesWarmRestoreCache) {
  rebuild();
  writeOneBlock(8, 0);
  VolumeReader Reader(*Vol);
  ASSERT_TRUE(Reader.readBlocks(0, 1).has_value()); // warm the cache
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Vol->mapping()[0], 25));
  // The batched read path warmed the cache, but the scrub must still
  // read flash and see the corruption.
  EXPECT_EQ(Vol->scrub().CorruptChunks, 1u);
  // Satellite audit: the scrub's failed decode dropped the stale
  // cached copy, so the next read reports the corruption instead of
  // serving resurrected clean bytes.
  EXPECT_FALSE(Pipeline->readCache()->contains(Vol->mapping()[0]));
  EXPECT_FALSE(Reader.readBlocks(0, 1).has_value());
  EXPECT_FALSE(Vol->readBlocks(0, 1).has_value());
}

TEST_F(VolumeRestoreFixture, MixedTraceReplaysCleanThroughRestore) {
  rebuild(4 << 20);
  TraceSynthesisConfig Synth;
  Synth.Operations = 2000;
  Synth.VolumeBlocks = 256;
  Synth.Seed = 11;
  const TraceLog Log = TraceLog::synthesize(Synth);
  VolumeReader Reader(*Vol);
  const TraceRunStats Stats = replayTrace(
      *Vol, Log, [&](std::uint64_t Lba, std::uint64_t Count) {
        return Reader.readBlocks(Lba, Count);
      });
  EXPECT_GT(Stats.Reads, 0u);
  EXPECT_EQ(Stats.ReadFailures, 0u);
  EXPECT_EQ(Stats.VerifyFailures, 0u);
}

//===----------------------------------------------------------------------===//
// Error paths: a failed chunk must not take the batch down with it,
// and must never leave its debris in the cache.
//===----------------------------------------------------------------------===//

namespace {

/// A written CPU-only pipeline with an attached fault injector. The
/// plan and injector are members so they outlive the pipeline.
struct FaultedRestoreRig {
  fault::FaultPlan Plan;
  std::optional<fault::FaultInjector> Injector;
  std::unique_ptr<ReductionPipeline> Pipeline;
  ByteVector Data;

  void write(std::uint64_t Bytes, std::size_t CacheBytes = 0) {
    Injector.emplace(Plan);
    PipelineConfig Config;
    Config.Mode = PipelineMode::CpuOnly;
    Config.ReadCacheBytes = CacheBytes;
    Config.Faults = &*Injector;
    Data = makeStream(Bytes, /*DedupRatio=*/1.0);
    Pipeline = std::make_unique<ReductionPipeline>(Platform::paper(), Config);
    ASSERT_TRUE(Pipeline->write(ByteSpan(Data.data(), Data.size())).ok());
    ASSERT_TRUE(Pipeline->finish().ok());
  }
};

} // namespace

TEST(RestoreErrorPath, MidBatchSsdErrorCompletesRemainingFetches) {
  FaultedRestoreRig Rig;
  Rig.Plan.Policy.MaxRetries = 0; // make the hit permanent, not retried
  fault::FaultRule Rule;
  Rule.Site = fault::FaultSite::SsdRead;
  Rule.Kind = fault::FaultKind::LatentSectorError;
  Rule.AtOps = {2}; // the third flash read command of the batch
  Rig.Plan.Rules.push_back(Rule);
  Rig.write(1 << 20);

  // Stride-2 locations defeat coalescing: every chunk is its own flash
  // command, so exactly one chunk sits in the blast radius.
  const auto &All = Rig.Pipeline->recipe().ChunkLocations;
  ASSERT_GE(All.size(), 16u);
  std::vector<std::uint64_t> Locations;
  for (std::size_t I = 0; I < 16; I += 2)
    Locations.push_back(All[I]);

  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Rig.Pipeline, Config);
  std::vector<ByteVector> Out;
  std::vector<ReadFailure> Failures;
  EXPECT_FALSE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), Locations.size()),
      Out, &Failures));

  // One typed failure; every other fetch still completed and delivered.
  ASSERT_EQ(Out.size(), Locations.size());
  ASSERT_EQ(Failures.size(), 1u);
  EXPECT_EQ(Failures[0].Code, fault::ErrorCode::SsdReadError);
  std::size_t EmptySlots = 0;
  for (std::size_t I = 0; I < Locations.size(); ++I) {
    if (Out[I].empty()) {
      ++EmptySlots;
      EXPECT_EQ(Locations[I], Failures[0].Location);
      continue;
    }
    // The injected schedule is exhausted, so a direct re-read gives
    // the reference bytes.
    const auto Expect = Rig.Pipeline->readChunk(Locations[I]);
    ASSERT_TRUE(Expect.has_value());
    EXPECT_EQ(Out[I], *Expect) << "slot " << I;
  }
  EXPECT_EQ(EmptySlots, 1u);
  EXPECT_EQ(Reader.report().DecodeFailures, 1u);
}

TEST(RestoreErrorPath, SsdFailedFetchDoesNotPolluteCache) {
  FaultedRestoreRig Rig;
  Rig.Plan.Policy.MaxRetries = 0;
  fault::FaultRule Rule;
  Rule.Site = fault::FaultSite::SsdRead;
  Rule.Kind = fault::FaultKind::LatentSectorError;
  Rule.AtOps = {0}; // first flash read of the batch fails
  Rig.Plan.Rules.push_back(Rule);
  Rig.write(1 << 20, /*CacheBytes=*/8 << 20);

  const auto &All = Rig.Pipeline->recipe().ChunkLocations;
  ASSERT_GE(All.size(), 8u);
  const std::vector<std::uint64_t> Locations = {All[0], All[2], All[4]};
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Rig.Pipeline, Config);
  std::vector<ByteVector> Out;
  std::vector<ReadFailure> Failures;
  EXPECT_FALSE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), Locations.size()),
      Out, &Failures));
  ASSERT_EQ(Failures.size(), 1u);

  // The survivors were cached; the failed chunk was not.
  const ChunkCache *Cache = Rig.Pipeline->readCache();
  ASSERT_NE(Cache, nullptr);
  EXPECT_FALSE(Cache->contains(Failures[0].Location));
  std::size_t Cached = 0;
  for (const std::uint64_t Loc : Locations)
    if (Cache->contains(Loc))
      ++Cached;
  EXPECT_EQ(Cached, Locations.size() - 1);
}

TEST_F(RestoreFixture, CorruptChunkDoesNotPolluteCacheAndIsTyped) {
  write(1 << 20, /*CacheBytes=*/8 << 20, /*DedupRatio=*/1.0);
  const auto &All = Pipeline->recipe().ChunkLocations;
  ASSERT_GE(All.size(), 8u);
  const std::uint64_t Bad = All[2];
  ASSERT_TRUE(Pipeline->corruptChunkForTesting(Bad, 20));

  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  const std::vector<std::uint64_t> Locations = {All[0], Bad, All[4]};
  std::vector<ByteVector> Out;
  std::vector<ReadFailure> Failures;
  EXPECT_FALSE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), Locations.size()),
      Out, &Failures));
  ASSERT_EQ(Failures.size(), 1u);
  EXPECT_EQ(Failures[0].Location, Bad);
  EXPECT_EQ(Failures[0].Code, fault::ErrorCode::ChunkCorrupt);
  // Neighbours delivered; the corrupt chunk's slot is empty.
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_FALSE(Out[0].empty());
  EXPECT_TRUE(Out[1].empty());
  EXPECT_FALSE(Out[2].empty());
  // The failed decode never reached the cache; the good ones did.
  const ChunkCache *Cache = Pipeline->readCache();
  ASSERT_NE(Cache, nullptr);
  EXPECT_FALSE(Cache->contains(Bad));
  EXPECT_TRUE(Cache->contains(All[0]));
  EXPECT_TRUE(Cache->contains(All[4]));
}

TEST_F(RestoreFixture, MissingChunkReportsTypedFailure) {
  write(1 << 20);
  const auto &All = Pipeline->recipe().ChunkLocations;
  const std::uint64_t Ghost = ~std::uint64_t{1};
  const std::vector<std::uint64_t> Locations = {All[0], Ghost, All[2]};
  ReadConfig Config;
  Config.Mode = DecodeMode::Cpu;
  ReadPipeline Reader(*Pipeline, Config);
  std::vector<ByteVector> Out;
  std::vector<ReadFailure> Failures;
  EXPECT_FALSE(Reader.readLocations(
      std::span<const std::uint64_t>(Locations.data(), Locations.size()),
      Out, &Failures));
  ASSERT_EQ(Failures.size(), 1u);
  EXPECT_EQ(Failures[0].Location, Ghost);
  EXPECT_EQ(Failures[0].Code, fault::ErrorCode::ChunkMissing);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_FALSE(Out[0].empty());
  EXPECT_TRUE(Out[1].empty());
  EXPECT_FALSE(Out[2].empty());
}
