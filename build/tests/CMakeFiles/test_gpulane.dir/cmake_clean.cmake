file(REMOVE_RECURSE
  "CMakeFiles/test_gpulane.dir/test_gpulane.cpp.o"
  "CMakeFiles/test_gpulane.dir/test_gpulane.cpp.o.d"
  "test_gpulane"
  "test_gpulane.pdb"
  "test_gpulane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpulane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
