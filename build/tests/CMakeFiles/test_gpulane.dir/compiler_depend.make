# Empty compiler generated dependencies file for test_gpulane.
# This may be replaced when dependencies are built.
