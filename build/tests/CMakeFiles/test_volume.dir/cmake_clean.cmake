file(REMOVE_RECURSE
  "CMakeFiles/test_volume.dir/test_volume.cpp.o"
  "CMakeFiles/test_volume.dir/test_volume.cpp.o.d"
  "test_volume"
  "test_volume.pdb"
  "test_volume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
