# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_chunk[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_ssd[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_gpulane[1]_include.cmake")
include("/root/repo/build/tests/test_huffman[1]_include.cmake")
include("/root/repo/build/tests/test_index[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_volume[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_persist[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_delta[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
