file(REMOVE_RECURSE
  "CMakeFiles/bench_cdc.dir/bench_cdc.cpp.o"
  "CMakeFiles/bench_cdc.dir/bench_cdc.cpp.o.d"
  "bench_cdc"
  "bench_cdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
