# Empty dependencies file for bench_cdc.
# This may be replaced when dependencies are built.
