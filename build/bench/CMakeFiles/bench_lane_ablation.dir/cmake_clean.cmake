file(REMOVE_RECURSE
  "CMakeFiles/bench_lane_ablation.dir/bench_lane_ablation.cpp.o"
  "CMakeFiles/bench_lane_ablation.dir/bench_lane_ablation.cpp.o.d"
  "bench_lane_ablation"
  "bench_lane_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lane_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
