file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_ablation.dir/bench_chunk_ablation.cpp.o"
  "CMakeFiles/bench_chunk_ablation.dir/bench_chunk_ablation.cpp.o.d"
  "bench_chunk_ablation"
  "bench_chunk_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
