# Empty compiler generated dependencies file for bench_chunk_ablation.
# This may be replaced when dependencies are built.
