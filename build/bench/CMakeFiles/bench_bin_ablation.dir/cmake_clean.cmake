file(REMOVE_RECURSE
  "CMakeFiles/bench_bin_ablation.dir/bench_bin_ablation.cpp.o"
  "CMakeFiles/bench_bin_ablation.dir/bench_bin_ablation.cpp.o.d"
  "bench_bin_ablation"
  "bench_bin_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bin_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
