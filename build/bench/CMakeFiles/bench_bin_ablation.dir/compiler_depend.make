# Empty compiler generated dependencies file for bench_bin_ablation.
# This may be replaced when dependencies are built.
