file(REMOVE_RECURSE
  "CMakeFiles/bench_prefix_memory.dir/bench_prefix_memory.cpp.o"
  "CMakeFiles/bench_prefix_memory.dir/bench_prefix_memory.cpp.o.d"
  "bench_prefix_memory"
  "bench_prefix_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefix_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
