# Empty dependencies file for bench_prefix_memory.
# This may be replaced when dependencies are built.
