# Empty dependencies file for bench_pool.
# This may be replaced when dependencies are built.
