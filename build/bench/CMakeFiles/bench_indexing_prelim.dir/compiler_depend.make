# Empty compiler generated dependencies file for bench_indexing_prelim.
# This may be replaced when dependencies are built.
