file(REMOVE_RECURSE
  "CMakeFiles/bench_indexing_prelim.dir/bench_indexing_prelim.cpp.o"
  "CMakeFiles/bench_indexing_prelim.dir/bench_indexing_prelim.cpp.o.d"
  "bench_indexing_prelim"
  "bench_indexing_prelim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indexing_prelim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
