# Empty compiler generated dependencies file for primary_store_server.
# This may be replaced when dependencies are built.
