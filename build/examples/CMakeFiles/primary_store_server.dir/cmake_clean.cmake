file(REMOVE_RECURSE
  "CMakeFiles/primary_store_server.dir/primary_store_server.cpp.o"
  "CMakeFiles/primary_store_server.dir/primary_store_server.cpp.o.d"
  "primary_store_server"
  "primary_store_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primary_store_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
