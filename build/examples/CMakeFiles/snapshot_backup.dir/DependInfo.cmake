
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/snapshot_backup.cpp" "examples/CMakeFiles/snapshot_backup.dir/snapshot_backup.cpp.o" "gcc" "examples/CMakeFiles/snapshot_backup.dir/snapshot_backup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/padre_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/padre_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/padre_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/padre_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/padre_index.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/padre_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/padre_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/padre_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/padre_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
