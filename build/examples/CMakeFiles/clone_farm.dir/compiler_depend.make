# Empty compiler generated dependencies file for clone_farm.
# This may be replaced when dependencies are built.
