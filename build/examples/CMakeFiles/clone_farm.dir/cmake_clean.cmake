file(REMOVE_RECURSE
  "CMakeFiles/clone_farm.dir/clone_farm.cpp.o"
  "CMakeFiles/clone_farm.dir/clone_farm.cpp.o.d"
  "clone_farm"
  "clone_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clone_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
