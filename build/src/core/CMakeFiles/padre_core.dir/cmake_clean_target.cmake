file(REMOVE_RECURSE
  "libpadre_core.a"
)
