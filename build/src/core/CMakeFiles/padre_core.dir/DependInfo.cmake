
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BackgroundReducer.cpp" "src/core/CMakeFiles/padre_core.dir/BackgroundReducer.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/BackgroundReducer.cpp.o.d"
  "/root/repo/src/core/Calibrator.cpp" "src/core/CMakeFiles/padre_core.dir/Calibrator.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/Calibrator.cpp.o.d"
  "/root/repo/src/core/ChunkCache.cpp" "src/core/CMakeFiles/padre_core.dir/ChunkCache.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/ChunkCache.cpp.o.d"
  "/root/repo/src/core/ChunkStore.cpp" "src/core/CMakeFiles/padre_core.dir/ChunkStore.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/ChunkStore.cpp.o.d"
  "/root/repo/src/core/CompressEngine.cpp" "src/core/CMakeFiles/padre_core.dir/CompressEngine.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/CompressEngine.cpp.o.d"
  "/root/repo/src/core/DedupEngine.cpp" "src/core/CMakeFiles/padre_core.dir/DedupEngine.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/DedupEngine.cpp.o.d"
  "/root/repo/src/core/ReductionPipeline.cpp" "src/core/CMakeFiles/padre_core.dir/ReductionPipeline.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/ReductionPipeline.cpp.o.d"
  "/root/repo/src/core/RefTracker.cpp" "src/core/CMakeFiles/padre_core.dir/RefTracker.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/RefTracker.cpp.o.d"
  "/root/repo/src/core/Report.cpp" "src/core/CMakeFiles/padre_core.dir/Report.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/Report.cpp.o.d"
  "/root/repo/src/core/StoragePool.cpp" "src/core/CMakeFiles/padre_core.dir/StoragePool.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/StoragePool.cpp.o.d"
  "/root/repo/src/core/TraceRunner.cpp" "src/core/CMakeFiles/padre_core.dir/TraceRunner.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/TraceRunner.cpp.o.d"
  "/root/repo/src/core/Volume.cpp" "src/core/CMakeFiles/padre_core.dir/Volume.cpp.o" "gcc" "src/core/CMakeFiles/padre_core.dir/Volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/padre_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/padre_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/chunk/CMakeFiles/padre_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/padre_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/padre_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/padre_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/padre_index.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/padre_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
