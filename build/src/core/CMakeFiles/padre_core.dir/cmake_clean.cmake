file(REMOVE_RECURSE
  "CMakeFiles/padre_core.dir/BackgroundReducer.cpp.o"
  "CMakeFiles/padre_core.dir/BackgroundReducer.cpp.o.d"
  "CMakeFiles/padre_core.dir/Calibrator.cpp.o"
  "CMakeFiles/padre_core.dir/Calibrator.cpp.o.d"
  "CMakeFiles/padre_core.dir/ChunkCache.cpp.o"
  "CMakeFiles/padre_core.dir/ChunkCache.cpp.o.d"
  "CMakeFiles/padre_core.dir/ChunkStore.cpp.o"
  "CMakeFiles/padre_core.dir/ChunkStore.cpp.o.d"
  "CMakeFiles/padre_core.dir/CompressEngine.cpp.o"
  "CMakeFiles/padre_core.dir/CompressEngine.cpp.o.d"
  "CMakeFiles/padre_core.dir/DedupEngine.cpp.o"
  "CMakeFiles/padre_core.dir/DedupEngine.cpp.o.d"
  "CMakeFiles/padre_core.dir/ReductionPipeline.cpp.o"
  "CMakeFiles/padre_core.dir/ReductionPipeline.cpp.o.d"
  "CMakeFiles/padre_core.dir/RefTracker.cpp.o"
  "CMakeFiles/padre_core.dir/RefTracker.cpp.o.d"
  "CMakeFiles/padre_core.dir/Report.cpp.o"
  "CMakeFiles/padre_core.dir/Report.cpp.o.d"
  "CMakeFiles/padre_core.dir/StoragePool.cpp.o"
  "CMakeFiles/padre_core.dir/StoragePool.cpp.o.d"
  "CMakeFiles/padre_core.dir/TraceRunner.cpp.o"
  "CMakeFiles/padre_core.dir/TraceRunner.cpp.o.d"
  "CMakeFiles/padre_core.dir/Volume.cpp.o"
  "CMakeFiles/padre_core.dir/Volume.cpp.o.d"
  "libpadre_core.a"
  "libpadre_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
