# Empty compiler generated dependencies file for padre_core.
# This may be replaced when dependencies are built.
