file(REMOVE_RECURSE
  "CMakeFiles/padre_index.dir/BinBuffer.cpp.o"
  "CMakeFiles/padre_index.dir/BinBuffer.cpp.o.d"
  "CMakeFiles/padre_index.dir/BinLayout.cpp.o"
  "CMakeFiles/padre_index.dir/BinLayout.cpp.o.d"
  "CMakeFiles/padre_index.dir/CpuBinStore.cpp.o"
  "CMakeFiles/padre_index.dir/CpuBinStore.cpp.o.d"
  "CMakeFiles/padre_index.dir/DedupIndex.cpp.o"
  "CMakeFiles/padre_index.dir/DedupIndex.cpp.o.d"
  "CMakeFiles/padre_index.dir/GpuBinTable.cpp.o"
  "CMakeFiles/padre_index.dir/GpuBinTable.cpp.o.d"
  "libpadre_index.a"
  "libpadre_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
