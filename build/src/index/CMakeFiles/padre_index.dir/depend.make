# Empty dependencies file for padre_index.
# This may be replaced when dependencies are built.
