file(REMOVE_RECURSE
  "libpadre_index.a"
)
