file(REMOVE_RECURSE
  "CMakeFiles/padre_sim.dir/CostModel.cpp.o"
  "CMakeFiles/padre_sim.dir/CostModel.cpp.o.d"
  "CMakeFiles/padre_sim.dir/Platform.cpp.o"
  "CMakeFiles/padre_sim.dir/Platform.cpp.o.d"
  "CMakeFiles/padre_sim.dir/ResourceLedger.cpp.o"
  "CMakeFiles/padre_sim.dir/ResourceLedger.cpp.o.d"
  "libpadre_sim.a"
  "libpadre_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
