
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/CostModel.cpp" "src/sim/CMakeFiles/padre_sim.dir/CostModel.cpp.o" "gcc" "src/sim/CMakeFiles/padre_sim.dir/CostModel.cpp.o.d"
  "/root/repo/src/sim/Platform.cpp" "src/sim/CMakeFiles/padre_sim.dir/Platform.cpp.o" "gcc" "src/sim/CMakeFiles/padre_sim.dir/Platform.cpp.o.d"
  "/root/repo/src/sim/ResourceLedger.cpp" "src/sim/CMakeFiles/padre_sim.dir/ResourceLedger.cpp.o" "gcc" "src/sim/CMakeFiles/padre_sim.dir/ResourceLedger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
