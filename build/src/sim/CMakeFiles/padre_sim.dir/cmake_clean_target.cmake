file(REMOVE_RECURSE
  "libpadre_sim.a"
)
