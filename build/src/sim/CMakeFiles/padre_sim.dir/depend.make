# Empty dependencies file for padre_sim.
# This may be replaced when dependencies are built.
