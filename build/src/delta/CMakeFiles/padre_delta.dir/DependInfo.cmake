
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delta/DeltaCodec.cpp" "src/delta/CMakeFiles/padre_delta.dir/DeltaCodec.cpp.o" "gcc" "src/delta/CMakeFiles/padre_delta.dir/DeltaCodec.cpp.o.d"
  "/root/repo/src/delta/SimilarityIndex.cpp" "src/delta/CMakeFiles/padre_delta.dir/SimilarityIndex.cpp.o" "gcc" "src/delta/CMakeFiles/padre_delta.dir/SimilarityIndex.cpp.o.d"
  "/root/repo/src/delta/SuperFeatures.cpp" "src/delta/CMakeFiles/padre_delta.dir/SuperFeatures.cpp.o" "gcc" "src/delta/CMakeFiles/padre_delta.dir/SuperFeatures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/padre_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
