file(REMOVE_RECURSE
  "libpadre_delta.a"
)
