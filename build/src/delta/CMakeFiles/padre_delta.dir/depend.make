# Empty dependencies file for padre_delta.
# This may be replaced when dependencies are built.
