file(REMOVE_RECURSE
  "CMakeFiles/padre_delta.dir/DeltaCodec.cpp.o"
  "CMakeFiles/padre_delta.dir/DeltaCodec.cpp.o.d"
  "CMakeFiles/padre_delta.dir/SimilarityIndex.cpp.o"
  "CMakeFiles/padre_delta.dir/SimilarityIndex.cpp.o.d"
  "CMakeFiles/padre_delta.dir/SuperFeatures.cpp.o"
  "CMakeFiles/padre_delta.dir/SuperFeatures.cpp.o.d"
  "libpadre_delta.a"
  "libpadre_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
