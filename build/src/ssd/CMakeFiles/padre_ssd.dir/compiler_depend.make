# Empty compiler generated dependencies file for padre_ssd.
# This may be replaced when dependencies are built.
