file(REMOVE_RECURSE
  "CMakeFiles/padre_ssd.dir/SsdModel.cpp.o"
  "CMakeFiles/padre_ssd.dir/SsdModel.cpp.o.d"
  "libpadre_ssd.a"
  "libpadre_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
