file(REMOVE_RECURSE
  "libpadre_ssd.a"
)
