file(REMOVE_RECURSE
  "CMakeFiles/padre_hash.dir/Crc32.cpp.o"
  "CMakeFiles/padre_hash.dir/Crc32.cpp.o.d"
  "CMakeFiles/padre_hash.dir/Fingerprint.cpp.o"
  "CMakeFiles/padre_hash.dir/Fingerprint.cpp.o.d"
  "CMakeFiles/padre_hash.dir/Sha1.cpp.o"
  "CMakeFiles/padre_hash.dir/Sha1.cpp.o.d"
  "CMakeFiles/padre_hash.dir/Sha256.cpp.o"
  "CMakeFiles/padre_hash.dir/Sha256.cpp.o.d"
  "libpadre_hash.a"
  "libpadre_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
