file(REMOVE_RECURSE
  "libpadre_hash.a"
)
