# Empty dependencies file for padre_hash.
# This may be replaced when dependencies are built.
