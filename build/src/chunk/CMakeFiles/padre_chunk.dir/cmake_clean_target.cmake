file(REMOVE_RECURSE
  "libpadre_chunk.a"
)
