file(REMOVE_RECURSE
  "CMakeFiles/padre_chunk.dir/Chunker.cpp.o"
  "CMakeFiles/padre_chunk.dir/Chunker.cpp.o.d"
  "CMakeFiles/padre_chunk.dir/FastCdcChunker.cpp.o"
  "CMakeFiles/padre_chunk.dir/FastCdcChunker.cpp.o.d"
  "CMakeFiles/padre_chunk.dir/FixedChunker.cpp.o"
  "CMakeFiles/padre_chunk.dir/FixedChunker.cpp.o.d"
  "CMakeFiles/padre_chunk.dir/RabinChunker.cpp.o"
  "CMakeFiles/padre_chunk.dir/RabinChunker.cpp.o.d"
  "libpadre_chunk.a"
  "libpadre_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
