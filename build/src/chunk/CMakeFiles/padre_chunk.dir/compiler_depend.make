# Empty compiler generated dependencies file for padre_chunk.
# This may be replaced when dependencies are built.
