
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chunk/Chunker.cpp" "src/chunk/CMakeFiles/padre_chunk.dir/Chunker.cpp.o" "gcc" "src/chunk/CMakeFiles/padre_chunk.dir/Chunker.cpp.o.d"
  "/root/repo/src/chunk/FastCdcChunker.cpp" "src/chunk/CMakeFiles/padre_chunk.dir/FastCdcChunker.cpp.o" "gcc" "src/chunk/CMakeFiles/padre_chunk.dir/FastCdcChunker.cpp.o.d"
  "/root/repo/src/chunk/FixedChunker.cpp" "src/chunk/CMakeFiles/padre_chunk.dir/FixedChunker.cpp.o" "gcc" "src/chunk/CMakeFiles/padre_chunk.dir/FixedChunker.cpp.o.d"
  "/root/repo/src/chunk/RabinChunker.cpp" "src/chunk/CMakeFiles/padre_chunk.dir/RabinChunker.cpp.o" "gcc" "src/chunk/CMakeFiles/padre_chunk.dir/RabinChunker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
