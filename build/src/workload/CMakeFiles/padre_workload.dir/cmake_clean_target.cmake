file(REMOVE_RECURSE
  "libpadre_workload.a"
)
