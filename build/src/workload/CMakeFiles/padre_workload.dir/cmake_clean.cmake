file(REMOVE_RECURSE
  "CMakeFiles/padre_workload.dir/Trace.cpp.o"
  "CMakeFiles/padre_workload.dir/Trace.cpp.o.d"
  "CMakeFiles/padre_workload.dir/VdbenchStream.cpp.o"
  "CMakeFiles/padre_workload.dir/VdbenchStream.cpp.o.d"
  "libpadre_workload.a"
  "libpadre_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
