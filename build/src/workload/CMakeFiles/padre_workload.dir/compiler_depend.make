# Empty compiler generated dependencies file for padre_workload.
# This may be replaced when dependencies are built.
