file(REMOVE_RECURSE
  "CMakeFiles/padre_gpu.dir/GpuDevice.cpp.o"
  "CMakeFiles/padre_gpu.dir/GpuDevice.cpp.o.d"
  "libpadre_gpu.a"
  "libpadre_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
