# Empty dependencies file for padre_gpu.
# This may be replaced when dependencies are built.
