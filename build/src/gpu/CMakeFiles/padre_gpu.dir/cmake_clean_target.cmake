file(REMOVE_RECURSE
  "libpadre_gpu.a"
)
