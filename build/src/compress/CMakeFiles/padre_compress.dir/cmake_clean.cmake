file(REMOVE_RECURSE
  "CMakeFiles/padre_compress.dir/Block.cpp.o"
  "CMakeFiles/padre_compress.dir/Block.cpp.o.d"
  "CMakeFiles/padre_compress.dir/ChunkCodec.cpp.o"
  "CMakeFiles/padre_compress.dir/ChunkCodec.cpp.o.d"
  "CMakeFiles/padre_compress.dir/GpuLaneCompressor.cpp.o"
  "CMakeFiles/padre_compress.dir/GpuLaneCompressor.cpp.o.d"
  "CMakeFiles/padre_compress.dir/Huffman.cpp.o"
  "CMakeFiles/padre_compress.dir/Huffman.cpp.o.d"
  "CMakeFiles/padre_compress.dir/LzCodec.cpp.o"
  "CMakeFiles/padre_compress.dir/LzCodec.cpp.o.d"
  "libpadre_compress.a"
  "libpadre_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
