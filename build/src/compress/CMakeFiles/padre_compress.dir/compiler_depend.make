# Empty compiler generated dependencies file for padre_compress.
# This may be replaced when dependencies are built.
