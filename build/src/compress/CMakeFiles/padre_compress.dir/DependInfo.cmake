
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/Block.cpp" "src/compress/CMakeFiles/padre_compress.dir/Block.cpp.o" "gcc" "src/compress/CMakeFiles/padre_compress.dir/Block.cpp.o.d"
  "/root/repo/src/compress/ChunkCodec.cpp" "src/compress/CMakeFiles/padre_compress.dir/ChunkCodec.cpp.o" "gcc" "src/compress/CMakeFiles/padre_compress.dir/ChunkCodec.cpp.o.d"
  "/root/repo/src/compress/GpuLaneCompressor.cpp" "src/compress/CMakeFiles/padre_compress.dir/GpuLaneCompressor.cpp.o" "gcc" "src/compress/CMakeFiles/padre_compress.dir/GpuLaneCompressor.cpp.o.d"
  "/root/repo/src/compress/Huffman.cpp" "src/compress/CMakeFiles/padre_compress.dir/Huffman.cpp.o" "gcc" "src/compress/CMakeFiles/padre_compress.dir/Huffman.cpp.o.d"
  "/root/repo/src/compress/LzCodec.cpp" "src/compress/CMakeFiles/padre_compress.dir/LzCodec.cpp.o" "gcc" "src/compress/CMakeFiles/padre_compress.dir/LzCodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/padre_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/padre_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
