file(REMOVE_RECURSE
  "libpadre_compress.a"
)
