file(REMOVE_RECURSE
  "libpadre_persist.a"
)
