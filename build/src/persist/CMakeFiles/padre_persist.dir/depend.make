# Empty dependencies file for padre_persist.
# This may be replaced when dependencies are built.
