file(REMOVE_RECURSE
  "CMakeFiles/padre_persist.dir/VolumeImage.cpp.o"
  "CMakeFiles/padre_persist.dir/VolumeImage.cpp.o.d"
  "libpadre_persist.a"
  "libpadre_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
