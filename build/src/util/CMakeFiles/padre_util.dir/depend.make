# Empty dependencies file for padre_util.
# This may be replaced when dependencies are built.
