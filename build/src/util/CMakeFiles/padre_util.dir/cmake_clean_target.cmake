file(REMOVE_RECURSE
  "libpadre_util.a"
)
