file(REMOVE_RECURSE
  "CMakeFiles/padre_util.dir/Bytes.cpp.o"
  "CMakeFiles/padre_util.dir/Bytes.cpp.o.d"
  "CMakeFiles/padre_util.dir/Stats.cpp.o"
  "CMakeFiles/padre_util.dir/Stats.cpp.o.d"
  "CMakeFiles/padre_util.dir/ThreadPool.cpp.o"
  "CMakeFiles/padre_util.dir/ThreadPool.cpp.o.d"
  "libpadre_util.a"
  "libpadre_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padre_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
