# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(padrectl_info "/root/repo/build/tools/padrectl" "info")
set_tests_properties(padrectl_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_calibrate "/root/repo/build/tools/padrectl" "calibrate" "--platform" "no-gpu")
set_tests_properties(padrectl_calibrate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_run "/root/repo/build/tools/padrectl" "run" "--bytes" "2097152" "--mode" "gpu-compress" "--entropy")
set_tests_properties(padrectl_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_run_cdc_verify "/root/repo/build/tools/padrectl" "run" "--bytes" "2097152" "--mode" "cpu-only" "--chunking" "fastcdc" "--verify-dedup" "--threads" "16")
set_tests_properties(padrectl_run_cdc_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_trace_cached "/root/repo/build/tools/padrectl" "trace" "--bytes" "2097152" "--mode" "cpu-only" "--cache" "1048576" "--trace-ops" "800")
set_tests_properties(padrectl_trace_cached PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_volume "/root/repo/build/tools/padrectl" "volume" "--bytes" "2097152" "--mode" "cpu-only" "--image" "padrectl_smoke.img")
set_tests_properties(padrectl_volume PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_trace "/root/repo/build/tools/padrectl" "trace" "--bytes" "2097152" "--mode" "gpu-compress" "--trace-ops" "1000")
set_tests_properties(padrectl_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(padrectl_bad_args "/root/repo/build/tools/padrectl" "frobnicate")
set_tests_properties(padrectl_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
