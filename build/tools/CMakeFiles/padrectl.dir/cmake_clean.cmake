file(REMOVE_RECURSE
  "CMakeFiles/padrectl.dir/padrectl.cpp.o"
  "CMakeFiles/padrectl.dir/padrectl.cpp.o.d"
  "padrectl"
  "padrectl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padrectl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
