# Empty dependencies file for padrectl.
# This may be replaced when dependencies are built.
