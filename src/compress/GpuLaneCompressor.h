//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU compression kernel and its CPU post-processing (§3.2(2)).
///
/// Ozsoy et al.'s GPU LZ assumes large inputs; a 4 KiB chunk cannot
/// occupy a GPU by itself, so the paper's design assigns *multiple
/// device threads per chunk*: the chunk is split into lanes, every lane
/// runs an LZ scan over its own segment with a history window that
/// overlaps the previous lane's region, and many chunks are batched per
/// kernel. The device output is "not refined in GPU due to performance
/// issues" — the CPU post-processes it (§3.2(2): "It is called as
/// post-processing").
///
/// Here `runLanes` is the functional kernel body (branch-light
/// single-probe matcher, per-lane token streams with chunk-absolute
/// back-distances) and `refine` is the CPU step: re-emit lane streams
/// into one canonical token stream (merging literal runs that straddle
/// lane boundaries) and fall back to store-raw when compression does
/// not pay.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_GPULANECOMPRESSOR_H
#define PADRE_COMPRESS_GPULANECOMPRESSOR_H

#include "compress/Block.h"
#include "compress/LzCodec.h"

#include <vector>

namespace padre {

/// Kernel geometry.
struct GpuLaneConfig {
  /// Device threads assigned per chunk.
  unsigned Lanes = 8;
  /// History-buffer overlap into the previous lane's region, in bytes.
  std::size_t HistoryBytes = 256;
};

/// The unrefined device output for one chunk: one token stream per
/// lane, in lane order.
struct LaneOutputs {
  std::vector<CompressResult> LaneResults;
  std::size_t ChunkSize = 0;

  /// Total payload bytes across lanes (what the device DMAs back).
  std::size_t totalPayloadBytes() const;
};

/// The refined (CPU post-processed) result for one chunk.
struct RefinedChunk {
  /// Encoded block (GpuLane method, or Raw on fallback).
  ByteVector Block;
  /// Merged functional stats across lanes.
  CompressStats Stats;
  /// True if compression did not pay and the block stores raw bytes.
  bool StoredRaw = false;
};

/// Lane-parallel LZ compressor (kernel body + post-processing).
/// Stateless; safe to share between threads.
class GpuLaneCompressor {
public:
  explicit GpuLaneCompressor(GpuLaneConfig Config = GpuLaneConfig());

  /// The kernel body: compresses every lane of \p Chunk functionally.
  /// \p Chunk must be at most LzCodec::MaxInputSize bytes.
  LaneOutputs runLanes(ByteSpan Chunk) const;

  /// CPU post-processing: merges \p Outputs into one canonical block.
  /// \p Chunk is the original data (needed for the store-raw fallback).
  static RefinedChunk refine(const LaneOutputs &Outputs, ByteSpan Chunk);

  const GpuLaneConfig &config() const { return Config; }

private:
  GpuLaneConfig Config;
  LzCodec LaneCodec;
};

} // namespace padre

#endif // PADRE_COMPRESS_GPULANECOMPRESSOR_H
