//===----------------------------------------------------------------------===//
///
/// \file
/// The v2 framed payload layout (BlockMethod::LzFramed): Gompresso-style
/// two-level parallelism. A chunk's token stream is split into N
/// independently-decodable sub-blocks — the compressor resets the match
/// history at every sub-block boundary, so each sub-block's distances
/// stay local and a GPU warp can decode it without waiting on its
/// neighbours.
///
/// Frame layout (payload of BlockMethod::LzFramed, little-endian):
///   offset 0  u8   magic 0x5B
///   offset 1  u8   version (2)
///   offset 2  u8   sub-block count N (1..32)
///   offset 3  u8   reserved (zero)
///   offset 4  N x (u16 sub-block payload bytes [1..65535],
///                  u16 sub-block output bytes minus one)
///   offset 4+4N …  N concatenated LZ token streams (LzCodec format)
///
/// The frame header is the "small header" the issue calls for: it is
/// what lets a decode plan be built in O(N) instead of the O(payload)
/// serial token walk the v1 lane planner needs. Entries are u16, not
/// u32, because the header is pure ratio tax — at N=8 a u32 table
/// would cost 68 bytes per chunk, ~1.5% of a typical compressed 4 KiB
/// chunk on its own. Output bytes are stored minus one so the full
/// [1, MaxInputSize] range fits; payload bytes fit u16 directly for
/// every split of two or more (worst-case LZ expansion of a 32 KiB
/// half is ~33 KB), and compressFramed splits finer on the one corner
/// case (single sub-block over an incompressible ~64 KiB chunk) where
/// they would not.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_SUBBLOCKFRAME_H
#define PADRE_COMPRESS_SUBBLOCKFRAME_H

#include "util/Bytes.h"

#include <cstdint>
#include <optional>

namespace padre {

inline constexpr std::uint8_t SubBlockFrameMagic = 0x5B;
inline constexpr std::uint8_t SubBlockFrameVersion = 2;
inline constexpr unsigned MaxSubBlocks = 32;

/// Size in bytes of a frame header carrying \p Count sub-blocks.
inline constexpr std::size_t subBlockHeaderSize(unsigned Count) {
  return 4 + 4 * static_cast<std::size_t>(Count);
}

/// Largest token-stream length one header entry can describe.
inline constexpr std::size_t MaxSubBlockPayload = 0xFFFF;

/// One sub-block's extents, both in the framed payload (token bytes)
/// and in the decoded chunk (output bytes). Offsets are derived from
/// the header's running sums during parse.
struct SubBlockSeg {
  std::uint32_t PayloadOffset = 0; ///< first token byte within the frame
  std::uint32_t PayloadBytes = 0;  ///< token-stream length
  std::uint32_t OutputOffset = 0;  ///< first decoded byte within the chunk
  std::uint32_t OutputBytes = 0;   ///< decoded length
};

/// A validated frame header: the sub-block table plus a view of the
/// payload it indexes (aliasing the encoded buffer).
struct SubBlockFrameView {
  ByteSpan Payload; ///< the whole framed payload (header + streams)
  unsigned Count = 0;
  SubBlockSeg Segs[MaxSubBlocks];

  /// Token bytes of sub-block \p I (aliases Payload).
  ByteSpan tokens(unsigned I) const {
    return Payload.subspan(Segs[I].PayloadOffset, Segs[I].PayloadBytes);
  }
};

/// Parses and validates a framed payload against the block header's
/// \p OriginalSize: magic/version/count, reserved byte, per-sub-block
/// sizes, sum-of-outputs == OriginalSize and header + sum-of-payloads
/// == payload size. Returns nullopt on any corruption — the typed
/// failure the decode paths turn into a DecodeError.
std::optional<SubBlockFrameView> parseSubBlockFrame(ByteSpan Payload,
                                                    std::uint32_t OriginalSize);

/// Serialises a frame header for \p Count sub-blocks into \p Out
/// (caller appends the token streams afterwards). \p PayloadBytes /
/// \p OutputBytes are Count-length arrays.
void appendSubBlockHeader(ByteVector &Out, unsigned Count,
                          const std::uint32_t *PayloadBytes,
                          const std::uint32_t *OutputBytes);

} // namespace padre

#endif // PADRE_COMPRESS_SUBBLOCKFRAME_H
