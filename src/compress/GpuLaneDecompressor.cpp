//===----------------------------------------------------------------------===//
///
/// \file
/// Lane-parallel LZ decompression: CPU pre-parse and kernel body.
///
//===----------------------------------------------------------------------===//

#include "compress/GpuLaneDecompressor.h"

#include "util/Bytes.h"

#include <cassert>

using namespace padre;

std::uint32_t GpuDecodePlan::totalTokenSwitches() const {
  std::uint32_t Total = 0;
  for (const GpuDecodeLane &Lane : Lanes)
    Total += Lane.TokenSwitches;
  return Total;
}

GpuLaneDecompressor::GpuLaneDecompressor(unsigned Lanes)
    : Lanes(Lanes == 0 ? 1 : Lanes) {}

namespace {

/// Token kinds for divergence tracking.
enum class TokenKind { None, Literal, Match };

} // namespace

std::optional<GpuDecodePlan>
GpuLaneDecompressor::plan(ByteSpan Payload, std::size_t OriginalSize) const {
  if (OriginalSize > LzCodec::MaxInputSize)
    return std::nullopt;

  GpuDecodePlan Plan;
  Plan.OriginalSize = OriginalSize;
  Plan.PayloadSize = Payload.size();
  if (OriginalSize == 0)
    return Payload.empty() ? std::optional<GpuDecodePlan>(Plan)
                           : std::nullopt;

  // Roughly equal output share per lane; tokens are indivisible, so a
  // lane closes at the first token boundary at or past its share.
  const std::size_t LaneTarget = (OriginalSize + Lanes - 1) / Lanes;

  GpuDecodeLane Lane;
  TokenKind LastKind = TokenKind::None;
  std::size_t Pos = 0;
  std::size_t OutPos = 0;

  while (Pos < Payload.size()) {
    // Close the current lane once it has met its output share and
    // another lane slot remains.
    if (OutPos - Lane.OutputBegin >= LaneTarget &&
        Plan.Lanes.size() + 1 < Lanes) {
      Lane.PayloadEnd = Pos;
      Lane.OutputEnd = OutPos;
      Plan.Lanes.push_back(Lane);
      Lane = GpuDecodeLane();
      Lane.PayloadBegin = Pos;
      Lane.OutputBegin = OutPos;
      LastKind = TokenKind::None;
    }

    const std::uint8_t Control = Payload[Pos];
    if ((Control & 0x80) == 0) {
      const std::size_t Run = static_cast<std::size_t>(Control) + 1;
      if (Pos + 1 + Run > Payload.size() || OutPos + Run > OriginalSize)
        return std::nullopt;
      Pos += 1 + Run;
      OutPos += Run;
      Lane.Stats.LiteralBytes += static_cast<std::uint32_t>(Run);
      Lane.Stats.LiteralRuns += 1;
      if (LastKind == TokenKind::Match)
        Lane.TokenSwitches += 1;
      LastKind = TokenKind::Literal;
    } else {
      const std::size_t Length =
          static_cast<std::size_t>(Control & 0x7F) + LzCodec::MinMatch;
      if (Pos + 3 > Payload.size())
        return std::nullopt;
      const std::size_t Distance = loadLe16(Payload.data() + Pos + 1);
      if (Distance == 0 || Distance > OutPos ||
          OutPos + Length > OriginalSize)
        return std::nullopt;
      if (Distance > OutPos - Lane.OutputBegin)
        Lane.CrossLaneRefs += 1;
      Pos += 3;
      OutPos += Length;
      Lane.Stats.MatchBytes += static_cast<std::uint32_t>(Length);
      Lane.Stats.Matches += 1;
      if (LastKind == TokenKind::Literal)
        Lane.TokenSwitches += 1;
      LastKind = TokenKind::Match;
    }
  }

  if (OutPos != OriginalSize)
    return std::nullopt;
  Lane.PayloadEnd = Pos;
  Lane.OutputEnd = OutPos;
  Plan.Lanes.push_back(Lane);
  return Plan;
}

bool GpuLaneDecompressor::runLanes(ByteSpan Payload,
                                   const GpuDecodePlan &Plan,
                                   ByteVector &Out) {
  if (Plan.PayloadSize != Payload.size())
    return false;

  const std::size_t OutStart = Out.size();
  Out.reserve(OutStart + Plan.OriginalSize);

  // Lanes decode in order into the shared output window: a lane's
  // back-references may reach into output earlier lanes produced
  // (GpuDecodeLane::CrossLaneRefs), exactly as write-side lanes read
  // each other's regions through the history overlap.
  for (const GpuDecodeLane &Lane : Plan.Lanes) {
    if (Out.size() - OutStart != Lane.OutputBegin) {
      Out.resize(OutStart);
      return false;
    }
    std::size_t Pos = Lane.PayloadBegin;
    while (Pos < Lane.PayloadEnd) {
      const std::size_t OutPos = Out.size() - OutStart;
      const std::uint8_t Control = Payload[Pos];
      if ((Control & 0x80) == 0) {
        const std::size_t Run = static_cast<std::size_t>(Control) + 1;
        if (Pos + 1 + Run > Lane.PayloadEnd ||
            OutPos + Run > Lane.OutputEnd) {
          Out.resize(OutStart);
          return false;
        }
        Out.insert(Out.end(), Payload.begin() + Pos + 1,
                   Payload.begin() + Pos + 1 + Run);
        Pos += 1 + Run;
      } else {
        const std::size_t Length =
            static_cast<std::size_t>(Control & 0x7F) + LzCodec::MinMatch;
        if (Pos + 3 > Lane.PayloadEnd) {
          Out.resize(OutStart);
          return false;
        }
        const std::size_t Distance = loadLe16(Payload.data() + Pos + 1);
        if (Distance == 0 || Distance > OutPos ||
            OutPos + Length > Lane.OutputEnd) {
          Out.resize(OutStart);
          return false;
        }
        // Byte-by-byte: overlapping copies (distance < length)
        // replicate the window, as in LzCodec::decompress.
        for (std::size_t I = 0; I < Length; ++I)
          Out.push_back(Out[OutStart + OutPos - Distance + I]);
        Pos += 3;
      }
    }
    if (Out.size() - OutStart != Lane.OutputEnd) {
      Out.resize(OutStart);
      return false;
    }
  }

  if (Out.size() - OutStart != Plan.OriginalSize) {
    Out.resize(OutStart);
    return false;
  }
  return true;
}
