//===----------------------------------------------------------------------===//
///
/// \file
/// Chunk payload codec dispatch.
///
//===----------------------------------------------------------------------===//

#include "compress/ChunkCodec.h"

#include "compress/Huffman.h"
#include "compress/LzCodec.h"
#include "compress/SubBlockFrame.h"

#include <cassert>

using namespace padre;

bool padre::decodeChunkPayload(const BlockView &View, ByteVector &Out) {
  switch (View.Method) {
  case BlockMethod::Raw:
    Out.insert(Out.end(), View.Payload.begin(), View.Payload.end());
    return true;
  case BlockMethod::Lz77:
  case BlockMethod::QuickLz:
  case BlockMethod::GpuLane:
    return LzCodec::decompress(View.Payload, View.OriginalSize, Out);
  case BlockMethod::LzHuff: {
    if (View.Payload.size() < 4)
      return false;
    const std::uint32_t TokenBytes = loadLe32(View.Payload.data());
    ByteVector Tokens;
    if (!huffmanDecode(View.Payload.subspan(4), TokenBytes, Tokens))
      return false;
    return LzCodec::decompress(ByteSpan(Tokens.data(), Tokens.size()),
                               View.OriginalSize, Out);
  }
  case BlockMethod::LzFramed: {
    // The serial oracle for the v2 format: each sub-block is a
    // standalone LZ stream decoded in order. Any failure rolls the
    // whole chunk back so no partial output leaks.
    const auto Frame = parseSubBlockFrame(View.Payload, View.OriginalSize);
    if (!Frame)
      return false;
    const std::size_t OutStart = Out.size();
    for (unsigned I = 0; I < Frame->Count; ++I) {
      if (!LzCodec::decompress(Frame->tokens(I), Frame->Segs[I].OutputBytes,
                               Out)) {
        Out.resize(OutStart);
        return false;
      }
    }
    return true;
  }
  }
  assert(false && "Unknown block method");
  return false;
}

std::optional<ByteVector> padre::entropyEncodeTokens(ByteSpan Tokens) {
  const auto Encoded = huffmanEncode(Tokens);
  if (!Encoded)
    return std::nullopt;
  if (Encoded->size() + 4 >= Tokens.size())
    return std::nullopt; // the u32 length prefix ate the gain
  ByteVector Payload(4);
  storeLe32(Payload.data(), static_cast<std::uint32_t>(Tokens.size()));
  Payload.insert(Payload.end(), Encoded->begin(), Encoded->end());
  return Payload;
}
