//===----------------------------------------------------------------------===//
///
/// \file
/// The warp-cooperative decode kernel for v2 framed payloads — decode
/// v2's second level of parallelism, after the lane-per-chunk
/// GpuLaneDecompressor.
///
/// The v1 lane design has two structural costs the CODAG and Gompresso
/// papers attack (see PAPERS.md): the CPU must pre-parse the *whole*
/// token stream to find lane boundaries (O(payload) serial work per
/// chunk), and lanes run in one lockstep wavefront, so every
/// literal/match branch divergence is paid by all lanes. The framed
/// format (compress/SubBlockFrame.h) kills the first cost — sub-block
/// boundaries are in the header, so planning is O(N) — and the
/// reader-warp design kills most of the second: one warp owns one
/// sub-block, a reader sub-warp streams tokens while the decoder lanes
/// expand them in parallel, and warps proceed independently (no
/// cross-warp lockstep).
///
/// `plan` is the O(N) header parse; `runWarps` is the functional kernel
/// body. runWarps fills each sub-block's token/divergence/overlap
/// counts as it decodes — the charge inputs are known only after the
/// functional pass, the same idiom as the write-side kernels — and the
/// restore engine then charges sum over sub-blocks of
/// CostModel::gpuWarpSubBlockUs.
///
/// History reset at sub-block boundaries makes every back-reference
/// intra-sub-block by construction; runWarps enforces that (a distance
/// reaching before the sub-block's own output is a malformed payload,
/// never a data dependency). Self-overlapping matches
/// (distance < length) are counted per sub-block: Gompresso resolves
/// them with bit-parallel log-step replication, modelled by
/// GpuCosts::WarpOverlapPerMatchNs.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_GPUWARPDECOMPRESSOR_H
#define PADRE_COMPRESS_GPUWARPDECOMPRESSOR_H

#include "compress/LzCodec.h"
#include "compress/SubBlockFrame.h"

#include <optional>
#include <span>

namespace padre {

/// One warp's share of a framed chunk decode: the sub-block's extents
/// (from the frame header) plus the functional counts runWarps fills —
/// the inputs to CostModel::gpuWarpSubBlockUs.
struct WarpSubBlock {
  SubBlockSeg Seg;
  /// Tokens the reader sub-warp streams (literal runs + matches).
  std::uint32_t Tokens = 0;
  /// Literal<->match transitions — the (reader-path) divergence driver.
  std::uint32_t TokenSwitches = 0;
  /// Self-overlapping matches (distance < length): Gompresso's
  /// bit-parallel replication case.
  std::uint32_t OverlapMatches = 0;
  /// Byte mix of the sub-block, for reporting parity with the lane
  /// decoder.
  CompressStats Stats;
};

/// The O(N) plan for one framed chunk. SubBlocks views caller-owned
/// storage (the restore engine hands in arena-backed tables).
struct GpuWarpPlan {
  std::span<WarpSubBlock> SubBlocks;
  std::size_t OriginalSize = 0;
  std::size_t PayloadSize = 0;
};

/// Warp-cooperative decompressor for BlockMethod::LzFramed payloads
/// (header planning + kernel body). Stateless; safe to share between
/// threads.
class GpuWarpDecompressor {
public:
  /// The CPU pre-parse: validates the frame header of \p Payload
  /// against \p OriginalSize and fills \p Table (capacity >=
  /// MaxSubBlocks) with the sub-block extents — no token walk, which
  /// is the point (CostModel::FramePlanUs vs PlanSetupUs +
  /// PlanPerByteNs x payload). Returns nullopt on any malformed
  /// header; token-stream damage is caught by runWarps.
  static std::optional<GpuWarpPlan> plan(ByteSpan Payload,
                                         std::size_t OriginalSize,
                                         std::span<WarpSubBlock> Table);

  /// The kernel body: each warp decodes its sub-block of \p Payload
  /// independently, appending exactly Plan.OriginalSize bytes to
  /// \p Out, and fills the per-sub-block counts in Plan.SubBlocks.
  /// Every back-distance must stay inside the sub-block's own output
  /// (history reset at the boundary); any violation or malformed token
  /// fails with no partial output appended. Functionally identical to
  /// the serial LzCodec::decompress of the same chunk.
  static bool runWarps(ByteSpan Payload, GpuWarpPlan &Plan, ByteVector &Out);
};

} // namespace padre

#endif // PADRE_COMPRESS_GPUWARPDECOMPRESSOR_H
