//===----------------------------------------------------------------------===//
///
/// \file
/// The LZ token codec family used for chunk compression (§2: "LZ-based
/// compression algorithms are widely used in main storage systems due
/// to their simplicity and effectiveness").
///
/// One payload format, two matchers:
///   * HashChain  — hash chains with optional lazy matching; the
///     better-ratio reference codec.
///   * SingleProbe — one hash-table probe per position, greedy; the
///     QuickLZ-class fast codec the paper uses as the parallel CPU
///     baseline ("parallel QuickLZ", §6) and the branch-light algorithm
///     the GPU lanes run (§3.1(2): GPU code must be simple).
///
/// Token stream format (payload of BlockMethod::Lz77/QuickLz/GpuLane):
///   control byte C:
///     C bit7 = 0: literal run of (C + 1) bytes (1..128), bytes follow
///     C bit7 = 1: match of length ((C & 0x7F) + MinMatch) (4..131),
///                 followed by a 16-bit LE back-distance (1..65535)
/// Inputs are limited to 64 KiB (chunk-sized), so 16-bit distances
/// always suffice.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_LZCODEC_H
#define PADRE_COMPRESS_LZCODEC_H

#include "util/Bytes.h"

#include <cstdint>

namespace padre {

/// Functional outcome of compressing one chunk; the cost model charges
/// CPU time from these counts (literal bytes are slower than
/// match-covered bytes, reproducing "throughput is high when the
/// compression ratio is high", §4(2)).
struct CompressStats {
  std::uint32_t LiteralBytes = 0; ///< bytes emitted as literals
  std::uint32_t MatchBytes = 0;   ///< bytes covered by matches
  std::uint32_t LiteralRuns = 0;
  std::uint32_t Matches = 0;

  /// Merges another chunk's (or lane's) stats into this one.
  void merge(const CompressStats &Other) {
    LiteralBytes += Other.LiteralBytes;
    MatchBytes += Other.MatchBytes;
    LiteralRuns += Other.LiteralRuns;
    Matches += Other.Matches;
  }
};

/// A compressed payload plus its functional stats.
struct CompressResult {
  ByteVector Payload;
  CompressStats Stats;
};

/// Result of compressFramed: the LzFramed frame payload, the merged
/// stats of all sub-blocks, and the sub-block count actually used
/// (clamped for tiny inputs).
struct FramedCompressResult {
  ByteVector Payload;
  CompressStats Stats;
  unsigned SubBlockCount = 0;
};

/// Tuning knobs for the matchers.
struct LzOptions {
  /// Candidates examined per position (HashChain only).
  unsigned MaxChainLength = 32;
  /// One-token lookahead: prefer the longer of the matches at i and
  /// i+1 (HashChain only).
  bool LazyMatching = true;
};

/// The LZ compressor. Stateless across calls; safe to share between
/// threads.
class LzCodec {
public:
  enum class MatcherKind { HashChain, SingleProbe };

  static constexpr std::size_t MinMatch = 4;
  static constexpr std::size_t MaxMatch = 131;
  static constexpr std::size_t MaxLiteralRun = 128;
  static constexpr std::size_t MaxInputSize = 65536;

  explicit LzCodec(MatcherKind Kind, LzOptions Options = LzOptions());

  /// Compresses \p Input (≤ MaxInputSize bytes).
  CompressResult compress(ByteSpan Input) const;

  /// Compresses the lane [\p Begin, \p End) of \p Chunk, allowing
  /// matches that reach back up to \p HistoryBytes *before* Begin (the
  /// "adjacent threads inspect overlapping regions by the size of the
  /// history buffer" rule, §3.2(2)). Distances are back-distances in
  /// the full chunk, so lane payloads concatenate into one valid
  /// stream.
  CompressResult compressRange(ByteSpan Chunk, std::size_t Begin,
                               std::size_t End,
                               std::size_t HistoryBytes) const;

  /// Compresses \p Input into the v2 framed format (see
  /// compress/SubBlockFrame.h): the chunk is split into \p SubBlocks
  /// near-equal pieces, each compressed with the match history reset at
  /// its boundary (HistoryBytes = 0), so every sub-block's token stream
  /// is an independently-decodable LZ stream. The count is clamped to
  /// [1, MaxSubBlocks] and to the input size; the ratio cost of the
  /// reset is the measured tradeoff of the two-level scheme.
  FramedCompressResult compressFramed(ByteSpan Input,
                                      unsigned SubBlocks) const;

  /// Decodes \p Payload into exactly \p OriginalSize bytes appended to
  /// \p Out. Returns false on any malformed token (no partial output
  /// is appended).
  static bool decompress(ByteSpan Payload, std::size_t OriginalSize,
                         ByteVector &Out);

  const char *name() const;

private:
  MatcherKind Kind;
  LzOptions Options;
};

} // namespace padre

#endif // PADRE_COMPRESS_LZCODEC_H
