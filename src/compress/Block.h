//===----------------------------------------------------------------------===//
///
/// \file
/// The self-describing compressed block format all padre codecs emit.
///
/// Layout (little-endian):
///   offset 0  u16  magic 0x4450 ("PD")
///   offset 2  u8   method (BlockMethod)
///   offset 3  u8   flags (reserved, zero)
///   offset 4  u32  original (uncompressed) size
///   offset 8  u32  payload size
///   offset 12 u32  CRC-32C of the payload
///   offset 16 …    payload
///
/// `Raw` blocks carry the input verbatim (the incompressible-data
/// fallback); every LZ method shares one token-stream payload format
/// (see compress/LzCodec.h) so a single decoder handles all of them.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_BLOCK_H
#define PADRE_COMPRESS_BLOCK_H

#include "util/Bytes.h"

#include <cstdint>
#include <optional>

namespace padre {

/// How a block's payload encodes the original data.
enum class BlockMethod : std::uint8_t {
  Raw = 0,     ///< payload is the original bytes
  Lz77 = 1,    ///< token stream from the hash-chain matcher
  QuickLz = 2, ///< token stream from the single-probe matcher
  GpuLane = 3, ///< token stream produced by GPU lanes + CPU refinement
  LzHuff = 4,  ///< [u32 token bytes][Huffman-coded token stream]
  LzFramed = 5, ///< v2 sub-block frame (see compress/SubBlockFrame.h)
};

/// Returns "raw", "lz77", "quicklz", "gpulane", "lzhuff" or "lzframed".
const char *blockMethodName(BlockMethod Method);

/// Size of the fixed block header in bytes.
inline constexpr std::size_t BlockHeaderSize = 16;

/// A decoded block header plus a view of its payload (aliasing the
/// encoded buffer).
struct BlockView {
  BlockMethod Method;
  std::uint32_t OriginalSize;
  ByteSpan Payload;
};

/// Encodes a block: header + \p Payload, with \p OriginalSize recorded
/// and the payload CRC computed.
ByteVector encodeBlock(BlockMethod Method, std::uint32_t OriginalSize,
                       ByteSpan Payload);

/// Parses and validates \p Encoded (magic, sizes, CRC). Returns nullopt
/// on any corruption.
std::optional<BlockView> decodeBlock(ByteSpan Encoded);

} // namespace padre

#endif // PADRE_COMPRESS_BLOCK_H
