//===----------------------------------------------------------------------===//
///
/// \file
/// LZ token codec implementation: greedy/lazy hash-chain matcher, the
/// single-probe fast matcher, the shared token emitter, and the shared
/// bounds-checked decoder.
///
//===----------------------------------------------------------------------===//

#include "compress/LzCodec.h"

#include "compress/SubBlockFrame.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <vector>

using namespace padre;

namespace {

constexpr unsigned HashBits = 14;
constexpr std::size_t HashSize = 1u << HashBits;
constexpr std::uint32_t NoPosition = 0xFFFFFFFFu;

/// Fibonacci hash of the 4-byte gram at \p Data.
std::uint32_t hashGram(const std::uint8_t *Data) {
  std::uint32_t Gram;
  std::memcpy(&Gram, Data, 4);
  return (Gram * 2654435761u) >> (32 - HashBits);
}

/// Length of the common prefix of chunk positions \p A and \p B,
/// bounded by \p Limit.
std::size_t matchLength(const std::uint8_t *Chunk, std::size_t A,
                        std::size_t B, std::size_t Limit) {
  std::size_t Length = 0;
  while (Length < Limit && Chunk[A + Length] == Chunk[B + Length])
    ++Length;
  return Length;
}

/// Accumulates tokens and stats for one compression run.
class TokenEmitter {
public:
  explicit TokenEmitter(CompressResult &Result) : Result(Result) {}

  void literal(std::uint8_t Byte) { Pending.push_back(Byte); }

  void match(std::size_t Distance, std::size_t Length) {
    assert(Distance >= 1 && Distance <= 65535 && "Distance out of range");
    flushLiterals();
    // Split long matches so that every piece is within [MinMatch,
    // MaxMatch]; never leave a sub-MinMatch remainder.
    while (Length > 0) {
      std::size_t Take = std::min(Length, LzCodec::MaxMatch);
      const std::size_t Rest = Length - Take;
      if (Rest > 0 && Rest < LzCodec::MinMatch)
        Take -= LzCodec::MinMatch - Rest;
      assert(Take >= LzCodec::MinMatch && "Match piece too short");
      Result.Payload.push_back(static_cast<std::uint8_t>(
          0x80 | (Take - LzCodec::MinMatch)));
      Result.Payload.push_back(static_cast<std::uint8_t>(Distance));
      Result.Payload.push_back(static_cast<std::uint8_t>(Distance >> 8));
      Result.Stats.MatchBytes += static_cast<std::uint32_t>(Take);
      ++Result.Stats.Matches;
      Length -= Take;
    }
  }

  void finish() { flushLiterals(); }

private:
  void flushLiterals() {
    std::size_t Offset = 0;
    while (Offset < Pending.size()) {
      const std::size_t Run =
          std::min(Pending.size() - Offset, LzCodec::MaxLiteralRun);
      Result.Payload.push_back(static_cast<std::uint8_t>(Run - 1));
      Result.Payload.insert(Result.Payload.end(),
                            Pending.begin() + Offset,
                            Pending.begin() + Offset + Run);
      Result.Stats.LiteralBytes += static_cast<std::uint32_t>(Run);
      ++Result.Stats.LiteralRuns;
      Offset += Run;
    }
    Pending.clear();
  }

  CompressResult &Result;
  ByteVector Pending;
};

/// Hash-chain match finder over one chunk. Positions are inserted as
/// the scan advances; lane compression pre-seeds the overlap region.
class ChainMatcher {
public:
  ChainMatcher(ByteSpan Chunk, unsigned MaxChainLength)
      : Chunk(Chunk.data()), ChunkSize(Chunk.size()),
        MaxChainLength(MaxChainLength), Head(HashSize, NoPosition),
        Prev(Chunk.size(), NoPosition) {}

  void insert(std::size_t Position) {
    if (Position + LzCodec::MinMatch > ChunkSize)
      return;
    const std::uint32_t Hash = hashGram(Chunk + Position);
    Prev[Position] = Head[Hash];
    Head[Hash] = static_cast<std::uint32_t>(Position);
  }

  /// Best match at \p Position with candidates restricted to
  /// [\p WindowStart, Position) and length to \p MaxLength.
  /// Returns length 0 if none reaches MinMatch.
  struct Match {
    std::size_t Distance = 0;
    std::size_t Length = 0;
  };
  Match find(std::size_t Position, std::size_t WindowStart,
             std::size_t MaxLength) const {
    Match Best;
    if (Position + LzCodec::MinMatch > ChunkSize)
      return Best;
    const std::size_t Limit = std::min(MaxLength, ChunkSize - Position);
    std::uint32_t Candidate = Head[hashGram(Chunk + Position)];
    for (unsigned Tries = 0;
         Candidate != NoPosition && Candidate >= WindowStart &&
         Tries < MaxChainLength;
         ++Tries, Candidate = Prev[Candidate]) {
      const std::size_t Length =
          matchLength(Chunk, Candidate, Position, Limit);
      if (Length > Best.Length) {
        Best.Length = Length;
        Best.Distance = Position - Candidate;
        if (Length == Limit)
          break; // cannot improve
      }
    }
    if (Best.Length < LzCodec::MinMatch)
      Best.Length = 0;
    return Best;
  }

private:
  const std::uint8_t *Chunk;
  std::size_t ChunkSize;
  unsigned MaxChainLength;
  std::vector<std::uint32_t> Head;
  std::vector<std::uint32_t> Prev;
};

/// Single-probe match finder: one table slot per hash, no chains. This
/// is the branch-light strategy suitable for lockstep GPU lanes and the
/// QuickLZ-class fast CPU path.
class ProbeMatcher {
public:
  explicit ProbeMatcher(ByteSpan Chunk)
      : Chunk(Chunk.data()), ChunkSize(Chunk.size()),
        Table(HashSize, NoPosition) {}

  void insert(std::size_t Position) {
    if (Position + LzCodec::MinMatch > ChunkSize)
      return;
    Table[hashGram(Chunk + Position)] =
        static_cast<std::uint32_t>(Position);
  }

  ChainMatcher::Match find(std::size_t Position, std::size_t WindowStart,
                           std::size_t MaxLength) const {
    ChainMatcher::Match Best;
    if (Position + LzCodec::MinMatch > ChunkSize)
      return Best;
    const std::uint32_t Candidate = Table[hashGram(Chunk + Position)];
    if (Candidate == NoPosition || Candidate < WindowStart)
      return Best;
    const std::size_t Limit = std::min(MaxLength, ChunkSize - Position);
    const std::size_t Length = matchLength(Chunk, Candidate, Position, Limit);
    if (Length >= LzCodec::MinMatch) {
      Best.Length = Length;
      Best.Distance = Position - Candidate;
    }
    return Best;
  }

private:
  const std::uint8_t *Chunk;
  std::size_t ChunkSize;
  std::vector<std::uint32_t> Table;
};

/// The scan loop shared by both matchers.
template <typename Matcher>
void scan(Matcher &Finder, ByteSpan Chunk, std::size_t Begin,
          std::size_t End, std::size_t WindowStart, bool Lazy,
          CompressResult &Result) {
  TokenEmitter Emitter(Result);
  std::size_t Position = Begin;
  while (Position < End) {
    auto Match = Finder.find(Position, WindowStart, End - Position);
    if (Match.Length == 0) {
      Emitter.literal(Chunk[Position]);
      Finder.insert(Position);
      ++Position;
      continue;
    }
    if (Lazy && Position + 1 < End) {
      // One-byte lookahead: if deferring yields a strictly longer
      // match, emit this byte as a literal instead.
      Finder.insert(Position);
      const auto Next =
          Finder.find(Position + 1, WindowStart, End - Position - 1);
      if (Next.Length > Match.Length + 1) {
        Emitter.literal(Chunk[Position]);
        ++Position;
        continue;
      }
      Emitter.match(Match.Distance, Match.Length);
      for (std::size_t I = Position + 1; I < Position + Match.Length; ++I)
        Finder.insert(I);
      Position += Match.Length;
      continue;
    }
    Emitter.match(Match.Distance, Match.Length);
    for (std::size_t I = Position; I < Position + Match.Length; ++I)
      Finder.insert(I);
    Position += Match.Length;
  }
  Emitter.finish();
}

} // namespace

LzCodec::LzCodec(MatcherKind Kind, LzOptions Options)
    : Kind(Kind), Options(Options) {
  assert(Options.MaxChainLength > 0 && "Chain length must be nonzero");
}

const char *LzCodec::name() const {
  return Kind == MatcherKind::HashChain ? "lz77-chain" : "lz-probe";
}

CompressResult LzCodec::compress(ByteSpan Input) const {
  return compressRange(Input, 0, Input.size(), Input.size());
}

CompressResult LzCodec::compressRange(ByteSpan Chunk, std::size_t Begin,
                                      std::size_t End,
                                      std::size_t HistoryBytes) const {
  assert(Chunk.size() <= MaxInputSize && "Chunk exceeds format limit");
  assert(Begin <= End && End <= Chunk.size() && "Invalid lane range");
  const std::size_t WindowStart =
      Begin >= HistoryBytes ? Begin - HistoryBytes : 0;

  CompressResult Result;
  Result.Payload.reserve((End - Begin) / 2 + 16);

  if (Kind == MatcherKind::HashChain) {
    ChainMatcher Finder(Chunk, Options.MaxChainLength);
    for (std::size_t I = WindowStart; I < Begin; ++I)
      Finder.insert(I); // seed the overlap history
    scan(Finder, Chunk, Begin, End, WindowStart, Options.LazyMatching,
         Result);
  } else {
    ProbeMatcher Finder(Chunk);
    for (std::size_t I = WindowStart; I < Begin; ++I)
      Finder.insert(I);
    scan(Finder, Chunk, Begin, End, WindowStart, /*Lazy=*/false, Result);
  }
  assert(Result.Stats.LiteralBytes + Result.Stats.MatchBytes ==
             End - Begin &&
         "Tokens must cover the lane exactly");
  return Result;
}

FramedCompressResult LzCodec::compressFramed(ByteSpan Input,
                                             unsigned SubBlocks) const {
  assert(!Input.empty() && "Framed compression needs a non-empty chunk");
  assert(Input.size() <= MaxInputSize && "Chunk exceeds format limit");
  const unsigned Count = static_cast<unsigned>(std::min<std::size_t>(
      std::clamp(SubBlocks, 1u, MaxSubBlocks), Input.size()));

  FramedCompressResult Result;
  Result.SubBlockCount = Count;

  // Even split by output bytes; each sub-block compresses with zero
  // history so its distances never reach across the boundary.
  ByteVector Streams;
  std::uint32_t PayloadBytes[MaxSubBlocks];
  std::uint32_t OutputBytes[MaxSubBlocks];
  for (unsigned I = 0; I < Count; ++I) {
    const std::size_t Begin = Input.size() * I / Count;
    const std::size_t End = Input.size() * (I + 1) / Count;
    CompressResult Sub = compressRange(Input, Begin, End, /*HistoryBytes=*/0);
    // The u16 header entry cannot describe a worst-case-expanded
    // stream above ~64 KiB of input; a finer split always can (a
    // 32 KiB half expands to at most ~33 KB). Only reachable at
    // Count == 1 over a near-incompressible full-size chunk.
    if (Sub.Payload.size() > MaxSubBlockPayload)
      return compressFramed(Input, Count * 2);
    PayloadBytes[I] = static_cast<std::uint32_t>(Sub.Payload.size());
    OutputBytes[I] = static_cast<std::uint32_t>(End - Begin);
    Streams.insert(Streams.end(), Sub.Payload.begin(), Sub.Payload.end());
    Result.Stats.merge(Sub.Stats);
  }

  Result.Payload.reserve(subBlockHeaderSize(Count) + Streams.size());
  appendSubBlockHeader(Result.Payload, Count, PayloadBytes, OutputBytes);
  Result.Payload.insert(Result.Payload.end(), Streams.begin(), Streams.end());
  return Result;
}

bool LzCodec::decompress(ByteSpan Payload, std::size_t OriginalSize,
                         ByteVector &Out) {
  const std::size_t OutStart = Out.size();
  Out.reserve(OutStart + OriginalSize);
  std::size_t In = 0;
  std::size_t Produced = 0;
  while (In < Payload.size()) {
    const std::uint8_t Control = Payload[In++];
    if ((Control & 0x80) == 0) {
      const std::size_t Run = static_cast<std::size_t>(Control) + 1;
      if (In + Run > Payload.size() || Produced + Run > OriginalSize) {
        Out.resize(OutStart);
        return false;
      }
      Out.insert(Out.end(), Payload.begin() + In, Payload.begin() + In + Run);
      In += Run;
      Produced += Run;
      continue;
    }
    const std::size_t Length = (Control & 0x7F) + MinMatch;
    if (In + 2 > Payload.size()) {
      Out.resize(OutStart);
      return false;
    }
    const std::size_t Distance = loadLe16(Payload.data() + In);
    In += 2;
    if (Distance == 0 || Distance > Produced ||
        Produced + Length > OriginalSize) {
      Out.resize(OutStart);
      return false;
    }
    // Byte-wise copy: overlapping matches (distance < length) replicate
    // the repeated pattern, as LZ semantics require.
    for (std::size_t I = 0; I < Length; ++I)
      Out.push_back(Out[Out.size() - Distance]);
    Produced += Length;
  }
  if (Produced != OriginalSize) {
    Out.resize(OutStart);
    return false;
  }
  return true;
}
