//===----------------------------------------------------------------------===//
///
/// \file
/// Method-dispatching chunk encode/decode helpers shared by the
/// compression engine and the chunk store: one place that knows how
/// every BlockMethod's payload maps back to chunk bytes, and how the
/// optional Huffman entropy stage wraps an LZ token stream.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_CHUNKCODEC_H
#define PADRE_COMPRESS_CHUNKCODEC_H

#include "compress/Block.h"

#include <optional>

namespace padre {

/// Decodes \p View (any method) into exactly `View.OriginalSize` chunk
/// bytes appended to \p Out. Returns false on malformed payloads.
bool decodeChunkPayload(const BlockView &View, ByteVector &Out);

/// Applies the entropy stage to an LZ token stream: returns the LzHuff
/// payload (`[u32 token bytes][huffman bits]`) when it is smaller than
/// the plain tokens, nullopt otherwise.
std::optional<ByteVector> entropyEncodeTokens(ByteSpan Tokens);

} // namespace padre

#endif // PADRE_COMPRESS_CHUNKCODEC_H
