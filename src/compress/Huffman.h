//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical Huffman entropy coding — an optional second stage after
/// the LZ token pass (extension; LZ+entropy is the classic Deflate
/// recipe and a natural "future work" step for the paper's pipeline,
/// trading extra CPU cycles for ratio).
///
/// Format: a 128-byte header of 256 nibble-packed code lengths
/// (canonical codes, max length 15; length 0 = symbol absent) followed
/// by the LSB-first bitstream. Streams that would not shrink are
/// reported as nullopt so callers fall back to the plain payload.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_HUFFMAN_H
#define PADRE_COMPRESS_HUFFMAN_H

#include "util/Bytes.h"

#include <cstdint>
#include <optional>

namespace padre {

/// Maximum canonical code length (fits a nibble).
inline constexpr unsigned HuffmanMaxCodeBits = 15;
/// Size of the code-length header.
inline constexpr std::size_t HuffmanHeaderSize = 128;

/// Entropy-encodes \p Data. Returns nullopt when encoding would not
/// shrink the payload (including the header) — callers then keep the
/// input as-is.
std::optional<ByteVector> huffmanEncode(ByteSpan Data);

/// Decodes a `huffmanEncode` payload back into exactly \p OriginalSize
/// bytes appended to \p Out. Returns false (appending nothing) on any
/// malformed input.
bool huffmanDecode(ByteSpan Payload, std::size_t OriginalSize,
                   ByteVector &Out);

} // namespace padre

#endif // PADRE_COMPRESS_HUFFMAN_H
