//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU decompression kernel and its CPU pre-processing — the
/// inverse of GpuLaneCompressor, for the restore path.
///
/// Decompression is the harder half of the codec to parallelize: the
/// token stream is variable-length, so a device thread cannot know
/// where lane N's tokens start until lane N-1's tokens have been
/// parsed (Sitaridi et al., CODAG — see PAPERS.md). The standard
/// answer, mirrored here, is a cheap *CPU pre-parse*: one serial walk
/// of the token stream splits it into per-lane segments (token
/// boundaries plus output offsets), and the device lanes then decode
/// their segments independently. Where compression put its CPU stage
/// *after* the kernel (refinement), decompression puts it *before*
/// (planning) — the symmetry the cost model's PlanSetupUs/PlanPerByteNs
/// constants encode.
///
/// `plan` is that CPU stage; `runLanes` is the functional kernel body.
/// The restore engine charges the kernel with the same SIMT-lockstep
/// slowest-lane rule as the write side (`lanes x max(lane cost)`, see
/// CostModel::gpuDecodeLaneUs), with each lane's cost driven by its
/// token mix: literal/match byte counts plus *token-kind switches*, the
/// branch-divergence driver CODAG characterizes.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_GPULANEDECOMPRESSOR_H
#define PADRE_COMPRESS_GPULANEDECOMPRESSOR_H

#include "compress/LzCodec.h"

#include <optional>
#include <vector>

namespace padre {

/// One device lane's share of a chunk decode, produced by the CPU
/// pre-parse. Offsets are into the payload (token stream) and the
/// decoded output respectively; both ranges are token-aligned.
struct GpuDecodeLane {
  std::size_t PayloadBegin = 0;
  std::size_t PayloadEnd = 0;
  std::size_t OutputBegin = 0;
  std::size_t OutputEnd = 0;
  /// Functional token mix of the segment (drives the lane's modelled
  /// kernel cost).
  CompressStats Stats;
  /// Literal<->match token transitions inside the lane — the
  /// divergence driver (CostModel::DecDivergencePerTokenNs).
  std::uint32_t TokenSwitches = 0;
  /// Matches whose back-distance reaches before OutputBegin, i.e. into
  /// output another lane produces. These are what force lanes to share
  /// the chunk's output window (modelled, not charged).
  std::uint32_t CrossLaneRefs = 0;
};

/// The CPU pre-parse result for one chunk: token-aligned lane segments
/// covering the whole payload.
struct GpuDecodePlan {
  std::vector<GpuDecodeLane> Lanes;
  std::size_t OriginalSize = 0;
  std::size_t PayloadSize = 0;

  /// Total token-kind switches across lanes.
  std::uint32_t totalTokenSwitches() const;
};

/// Lane-parallel LZ decompressor (CPU planning + kernel body).
/// Stateless; safe to share between threads.
class GpuLaneDecompressor {
public:
  /// \p Lanes device threads per chunk; matches GpuLaneConfig::Lanes on
  /// the write side by default.
  explicit GpuLaneDecompressor(unsigned Lanes = 8);

  /// The CPU pre-parse: one serial walk of \p Payload (an LZ token
  /// stream decoding to exactly \p OriginalSize bytes) that splits it
  /// into at most `lanes()` token-aligned segments of roughly equal
  /// output size. Returns nullopt on any malformed token — planning
  /// doubles as validation, so the kernel body never sees a bad
  /// stream.
  std::optional<GpuDecodePlan> plan(ByteSpan Payload,
                                    std::size_t OriginalSize) const;

  /// The kernel body: decodes every lane of \p Payload per \p Plan,
  /// appending exactly Plan.OriginalSize bytes to \p Out. Lanes decode
  /// into a shared output window so cross-lane back-references resolve
  /// (matching the write side's overlapping history rule). Returns
  /// false on any mismatch against the plan (no partial output is
  /// appended). Functionally identical to LzCodec::decompress.
  static bool runLanes(ByteSpan Payload, const GpuDecodePlan &Plan,
                       ByteVector &Out);

  unsigned lanes() const { return Lanes; }

private:
  unsigned Lanes;
};

} // namespace padre

#endif // PADRE_COMPRESS_GPULANEDECOMPRESSOR_H
