//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical Huffman implementation: heap-built code lengths with
/// Kraft-sum length limiting, canonical code assignment, LSB-first
/// bit-reversed emission (the Deflate convention) and a
/// first-code-per-length decoder.
///
//===----------------------------------------------------------------------===//

#include "compress/Huffman.h"

#include "compress/BitStream.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <queue>
#include <vector>

using namespace padre;

namespace {

/// Computes length-limited Huffman code lengths for the 256 byte
/// symbols from \p Frequencies (zero frequency -> length 0).
std::array<std::uint8_t, 256>
buildCodeLengths(const std::array<std::uint32_t, 256> &Frequencies) {
  std::array<std::uint8_t, 256> Lengths{};

  struct Node {
    std::uint64_t Weight;
    int Left = -1, Right = -1;
    int Symbol = -1;
  };
  std::vector<Node> Nodes;
  auto Compare = [&Nodes](int A, int B) {
    // Tie-break on node index for determinism.
    if (Nodes[A].Weight != Nodes[B].Weight)
      return Nodes[A].Weight > Nodes[B].Weight;
    return A > B;
  };
  std::priority_queue<int, std::vector<int>, decltype(Compare)> Heap(
      Compare);

  for (int Symbol = 0; Symbol < 256; ++Symbol) {
    if (Frequencies[Symbol] == 0)
      continue;
    Nodes.push_back(Node{Frequencies[Symbol], -1, -1, Symbol});
    Heap.push(static_cast<int>(Nodes.size()) - 1);
  }
  if (Nodes.empty())
    return Lengths;
  if (Nodes.size() == 1) {
    Lengths[Nodes[0].Symbol] = 1;
    return Lengths;
  }

  while (Heap.size() > 1) {
    const int A = Heap.top();
    Heap.pop();
    const int B = Heap.top();
    Heap.pop();
    Nodes.push_back(Node{Nodes[A].Weight + Nodes[B].Weight, A, B, -1});
    Heap.push(static_cast<int>(Nodes.size()) - 1);
  }

  // Depth-first depth assignment (iterative; the tree can be deep for
  // skewed inputs before limiting).
  std::vector<std::pair<int, unsigned>> Stack = {{Heap.top(), 0}};
  while (!Stack.empty()) {
    const auto [Index, Depth] = Stack.back();
    Stack.pop_back();
    const Node &N = Nodes[Index];
    if (N.Symbol >= 0) {
      Lengths[N.Symbol] = static_cast<std::uint8_t>(std::max(1u, Depth));
      continue;
    }
    Stack.push_back({N.Left, Depth + 1});
    Stack.push_back({N.Right, Depth + 1});
  }

  // Length-limit to HuffmanMaxCodeBits: clamp, then restore the Kraft
  // inequality sum(2^(Max-l)) <= 2^Max by demoting the shallowest
  // over-budget symbols.
  const std::uint32_t Budget = 1u << HuffmanMaxCodeBits;
  auto KraftSum = [&Lengths] {
    std::uint64_t Sum = 0;
    for (std::uint8_t Length : Lengths)
      if (Length != 0)
        Sum += 1ull << (HuffmanMaxCodeBits - Length);
    return Sum;
  };
  for (std::uint8_t &Length : Lengths)
    if (Length > HuffmanMaxCodeBits)
      Length = HuffmanMaxCodeBits;
  std::uint64_t Sum = KraftSum();
  while (Sum > Budget) {
    // Demote (lengthen) the symbol with the largest length below the
    // cap — the cheapest Kraft repair.
    int Victim = -1;
    for (int Symbol = 0; Symbol < 256; ++Symbol) {
      const std::uint8_t Length = Lengths[Symbol];
      if (Length == 0 || Length >= HuffmanMaxCodeBits)
        continue;
      if (Victim < 0 || Length > Lengths[Victim])
        Victim = Symbol;
    }
    assert(Victim >= 0 && "Kraft repair ran out of symbols");
    Sum -= 1ull << (HuffmanMaxCodeBits - Lengths[Victim] - 1);
    ++Lengths[Victim];
  }
  return Lengths;
}

/// Canonical code tables shared by encoder and decoder.
struct CanonicalCodes {
  /// Per symbol: canonical code value (MSB-first) and length.
  std::array<std::uint16_t, 256> Codes{};
  std::array<std::uint8_t, 256> Lengths{};
  /// Per length: first canonical code and symbol-table offset.
  std::array<std::uint16_t, HuffmanMaxCodeBits + 1> FirstCode{};
  std::array<std::uint16_t, HuffmanMaxCodeBits + 1> Offset{};
  std::array<std::uint16_t, HuffmanMaxCodeBits + 1> Count{};
  /// Symbols sorted by (length, symbol).
  std::vector<std::uint8_t> SortedSymbols;

  /// Builds the tables; returns false if the lengths violate Kraft.
  bool build(const std::array<std::uint8_t, 256> &CodeLengths) {
    Lengths = CodeLengths;
    Count.fill(0);
    for (std::uint8_t Length : Lengths) {
      if (Length > HuffmanMaxCodeBits)
        return false;
      if (Length != 0)
        ++Count[Length];
    }
    // Kraft check, first-code and symbol-table-offset assignment.
    std::uint32_t Code = 0;
    std::uint16_t RunningOffset = 0;
    for (unsigned Length = 1; Length <= HuffmanMaxCodeBits; ++Length) {
      Code = (Code + Count[Length - 1]) << 1;
      if (static_cast<std::uint64_t>(Code) + Count[Length] >
          (1ull << Length))
        return false;
      FirstCode[Length] = static_cast<std::uint16_t>(Code);
      Offset[Length] = RunningOffset;
      RunningOffset = static_cast<std::uint16_t>(RunningOffset +
                                                 Count[Length]);
    }

    SortedSymbols.clear();
    for (unsigned Length = 1; Length <= HuffmanMaxCodeBits; ++Length)
      for (int Symbol = 0; Symbol < 256; ++Symbol)
        if (Lengths[Symbol] == Length)
          SortedSymbols.push_back(static_cast<std::uint8_t>(Symbol));

    // Per-symbol codes.
    std::array<std::uint16_t, HuffmanMaxCodeBits + 1> Next = FirstCode;
    for (std::uint8_t Symbol : SortedSymbols)
      Codes[Symbol] = Next[Lengths[Symbol]]++;
    return true;
  }
};

/// Reverses the low \p Count bits of \p Value.
std::uint32_t reverseBits(std::uint32_t Value, unsigned Count) {
  std::uint32_t Result = 0;
  for (unsigned I = 0; I < Count; ++I) {
    Result = (Result << 1) | (Value & 1);
    Value >>= 1;
  }
  return Result;
}

} // namespace

std::optional<ByteVector> padre::huffmanEncode(ByteSpan Data) {
  if (Data.size() < HuffmanHeaderSize)
    return std::nullopt; // header alone would dominate

  std::array<std::uint32_t, 256> Frequencies{};
  for (std::uint8_t Byte : Data)
    ++Frequencies[Byte];

  const std::array<std::uint8_t, 256> Lengths =
      buildCodeLengths(Frequencies);
  CanonicalCodes Tables;
  if (!Tables.build(Lengths))
    return std::nullopt;

  ByteVector Out(HuffmanHeaderSize, 0);
  for (int Symbol = 0; Symbol < 256; ++Symbol)
    Out[Symbol / 2] |= static_cast<std::uint8_t>(
        (Lengths[Symbol] & 0xF) << ((Symbol % 2) * 4));

  BitWriter Writer(Out);
  for (std::uint8_t Byte : Data) {
    const unsigned Length = Tables.Lengths[Byte];
    assert(Length != 0 && "Symbol present in data but absent in code");
    Writer.write(reverseBits(Tables.Codes[Byte], Length), Length);
    if (Out.size() >= Data.size())
      return std::nullopt; // already not shrinking; bail early
  }
  Writer.finish();
  if (Out.size() >= Data.size())
    return std::nullopt;
  return Out;
}

bool padre::huffmanDecode(ByteSpan Payload, std::size_t OriginalSize,
                          ByteVector &Out) {
  if (Payload.size() < HuffmanHeaderSize)
    return false;
  std::array<std::uint8_t, 256> Lengths{};
  for (int Symbol = 0; Symbol < 256; ++Symbol)
    Lengths[Symbol] =
        (Payload[Symbol / 2] >> ((Symbol % 2) * 4)) & 0xF;

  CanonicalCodes Tables;
  if (!Tables.build(Lengths))
    return false;
  if (Tables.SortedSymbols.empty())
    return OriginalSize == 0;

  const std::size_t OutStart = Out.size();
  Out.reserve(OutStart + OriginalSize);
  BitReader Reader(Payload.subspan(HuffmanHeaderSize));
  for (std::size_t Produced = 0; Produced < OriginalSize; ++Produced) {
    std::uint32_t Code = 0;
    unsigned Length = 0;
    std::uint8_t Symbol = 0;
    for (;;) {
      std::uint32_t Bit;
      if (!Reader.readBit(Bit) || ++Length > HuffmanMaxCodeBits) {
        Out.resize(OutStart);
        return false;
      }
      Code = (Code << 1) | Bit;
      const std::uint32_t Index = Code - Tables.FirstCode[Length];
      if (Code >= Tables.FirstCode[Length] &&
          Index < Tables.Count[Length]) {
        Symbol = Tables.SortedSymbols[Tables.Offset[Length] + Index];
        break;
      }
    }
    Out.push_back(Symbol);
  }
  return true;
}
