//===----------------------------------------------------------------------===//
///
/// \file
/// Block encode/decode implementation.
///
//===----------------------------------------------------------------------===//

#include "compress/Block.h"

#include "hash/Crc32.h"

#include <cassert>

using namespace padre;

static constexpr std::uint16_t BlockMagic = 0x4450; // "PD"

const char *padre::blockMethodName(BlockMethod Method) {
  switch (Method) {
  case BlockMethod::Raw:
    return "raw";
  case BlockMethod::Lz77:
    return "lz77";
  case BlockMethod::QuickLz:
    return "quicklz";
  case BlockMethod::GpuLane:
    return "gpulane";
  case BlockMethod::LzHuff:
    return "lzhuff";
  case BlockMethod::LzFramed:
    return "lzframed";
  }
  assert(false && "Unknown block method");
  return "?";
}

ByteVector padre::encodeBlock(BlockMethod Method, std::uint32_t OriginalSize,
                              ByteSpan Payload) {
  ByteVector Out(BlockHeaderSize + Payload.size());
  storeLe16(Out.data(), BlockMagic);
  Out[2] = static_cast<std::uint8_t>(Method);
  Out[3] = 0;
  storeLe32(Out.data() + 4, OriginalSize);
  storeLe32(Out.data() + 8, static_cast<std::uint32_t>(Payload.size()));
  storeLe32(Out.data() + 12, crc32c(Payload));
  std::copy(Payload.begin(), Payload.end(), Out.begin() + BlockHeaderSize);
  return Out;
}

std::optional<BlockView> padre::decodeBlock(ByteSpan Encoded) {
  if (Encoded.size() < BlockHeaderSize)
    return std::nullopt;
  if (loadLe16(Encoded.data()) != BlockMagic)
    return std::nullopt;
  const std::uint8_t MethodByte = Encoded[2];
  if (MethodByte > static_cast<std::uint8_t>(BlockMethod::LzFramed))
    return std::nullopt;
  if (Encoded[3] != 0)
    return std::nullopt; // reserved flags must be zero
  const std::uint32_t OriginalSize = loadLe32(Encoded.data() + 4);
  const std::uint32_t PayloadSize = loadLe32(Encoded.data() + 8);
  if (Encoded.size() != BlockHeaderSize + PayloadSize)
    return std::nullopt;
  const ByteSpan Payload = Encoded.subspan(BlockHeaderSize, PayloadSize);
  if (crc32c(Payload) != loadLe32(Encoded.data() + 12))
    return std::nullopt;
  const auto Method = static_cast<BlockMethod>(MethodByte);
  if (Method == BlockMethod::Raw && PayloadSize != OriginalSize)
    return std::nullopt;
  return BlockView{Method, OriginalSize, Payload};
}
