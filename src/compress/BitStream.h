//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian bit I/O used by the Huffman entropy stage. Bits are
/// packed LSB-first within each byte (the Deflate convention), so a
/// code written as N bits is read back by consuming N bits in the same
/// order.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_COMPRESS_BITSTREAM_H
#define PADRE_COMPRESS_BITSTREAM_H

#include "util/Bytes.h"

#include <cassert>
#include <cstdint>

namespace padre {

/// Appends bit fields to a byte buffer, LSB-first.
class BitWriter {
public:
  explicit BitWriter(ByteVector &Out) : Out(Out) {}

  /// Writes the low \p Count bits of \p Bits (Count in [0, 32]).
  void write(std::uint32_t Bits, unsigned Count) {
    assert(Count <= 32 && "Bit count out of range");
    assert((Count == 32 || (Bits >> Count) == 0) &&
           "Value wider than bit count");
    Accumulator |= static_cast<std::uint64_t>(Bits) << Filled;
    Filled += Count;
    while (Filled >= 8) {
      Out.push_back(static_cast<std::uint8_t>(Accumulator));
      Accumulator >>= 8;
      Filled -= 8;
    }
  }

  /// Flushes any partial byte (zero-padded high bits).
  void finish() {
    if (Filled != 0) {
      Out.push_back(static_cast<std::uint8_t>(Accumulator));
      Accumulator = 0;
      Filled = 0;
    }
  }

  /// Bits written so far (excluding padding).
  std::size_t bitCount() const { return Out.size() * 8 + Filled; }

private:
  ByteVector &Out;
  std::uint64_t Accumulator = 0;
  unsigned Filled = 0;
};

/// Reads bit fields from a byte buffer, LSB-first. Over-reads are
/// reported rather than asserted so corrupt payloads fail decode
/// gracefully.
class BitReader {
public:
  explicit BitReader(ByteSpan Data) : Data(Data) {}

  /// Reads \p Count bits (in [0, 32]) into \p Bits. Returns false if
  /// the stream is exhausted.
  bool read(unsigned Count, std::uint32_t &Bits) {
    assert(Count <= 32 && "Bit count out of range");
    while (Filled < Count) {
      if (Position >= Data.size())
        return false;
      Accumulator |= static_cast<std::uint64_t>(Data[Position++]) << Filled;
      Filled += 8;
    }
    Bits = static_cast<std::uint32_t>(
        Accumulator & ((Count == 32) ? 0xFFFFFFFFull
                                     : ((1ull << Count) - 1)));
    Accumulator >>= Count;
    Filled -= Count;
    return true;
  }

  /// Reads a single bit.
  bool readBit(std::uint32_t &Bit) { return read(1, Bit); }

private:
  ByteSpan Data;
  std::size_t Position = 0;
  std::uint64_t Accumulator = 0;
  unsigned Filled = 0;
};

} // namespace padre

#endif // PADRE_COMPRESS_BITSTREAM_H
