//===----------------------------------------------------------------------===//
///
/// \file
/// Sub-block frame header parse/serialise.
///
//===----------------------------------------------------------------------===//

#include "compress/SubBlockFrame.h"

#include "compress/LzCodec.h"

#include <cassert>

using namespace padre;

std::optional<SubBlockFrameView>
padre::parseSubBlockFrame(ByteSpan Payload, std::uint32_t OriginalSize) {
  if (Payload.size() < subBlockHeaderSize(1))
    return std::nullopt;
  if (Payload[0] != SubBlockFrameMagic)
    return std::nullopt;
  if (Payload[1] != SubBlockFrameVersion)
    return std::nullopt;
  const unsigned Count = Payload[2];
  if (Count < 1 || Count > MaxSubBlocks)
    return std::nullopt;
  if (Payload[3] != 0)
    return std::nullopt; // reserved must be zero
  const std::size_t HeaderSize = subBlockHeaderSize(Count);
  if (Payload.size() < HeaderSize)
    return std::nullopt;

  SubBlockFrameView View;
  View.Payload = Payload;
  View.Count = Count;
  std::uint64_t PayloadSum = 0;
  std::uint64_t OutputSum = 0;
  for (unsigned I = 0; I < Count; ++I) {
    SubBlockSeg &Seg = View.Segs[I];
    Seg.PayloadBytes = loadLe16(Payload.data() + 4 + 4 * I);
    // Stored minus one, so [1, MaxInputSize] needs no range check.
    Seg.OutputBytes =
        static_cast<std::uint32_t>(loadLe16(Payload.data() + 4 + 4 * I + 2)) +
        1;
    // A sub-block that decodes to at least one byte needs at least a
    // control byte and a literal; a zero-length token stream is
    // corruption, not a degenerate split.
    if (Seg.PayloadBytes == 0)
      return std::nullopt;
    Seg.PayloadOffset = static_cast<std::uint32_t>(HeaderSize + PayloadSum);
    Seg.OutputOffset = static_cast<std::uint32_t>(OutputSum);
    PayloadSum += Seg.PayloadBytes;
    OutputSum += Seg.OutputBytes;
    if (PayloadSum > Payload.size() || OutputSum > OriginalSize)
      return std::nullopt;
  }
  if (HeaderSize + PayloadSum != Payload.size())
    return std::nullopt;
  if (OutputSum != OriginalSize)
    return std::nullopt;
  return View;
}

void padre::appendSubBlockHeader(ByteVector &Out, unsigned Count,
                                 const std::uint32_t *PayloadBytes,
                                 const std::uint32_t *OutputBytes) {
  assert(Count >= 1 && Count <= MaxSubBlocks && "Sub-block count out of range");
  const std::size_t Base = Out.size();
  Out.resize(Base + subBlockHeaderSize(Count));
  Out[Base] = SubBlockFrameMagic;
  Out[Base + 1] = SubBlockFrameVersion;
  Out[Base + 2] = static_cast<std::uint8_t>(Count);
  Out[Base + 3] = 0;
  for (unsigned I = 0; I < Count; ++I) {
    assert(PayloadBytes[I] >= 1 && PayloadBytes[I] <= MaxSubBlockPayload &&
           "Sub-block payload outside the u16 header range");
    assert(OutputBytes[I] >= 1 && OutputBytes[I] <= LzCodec::MaxInputSize &&
           "Sub-block output outside the format range");
    storeLe16(Out.data() + Base + 4 + 4 * I,
              static_cast<std::uint16_t>(PayloadBytes[I]));
    storeLe16(Out.data() + Base + 4 + 4 * I + 2,
              static_cast<std::uint16_t>(OutputBytes[I] - 1));
  }
}
