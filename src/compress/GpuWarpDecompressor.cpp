//===----------------------------------------------------------------------===//
///
/// \file
/// Warp-cooperative LZ decompression: O(N) header planning and the
/// per-sub-block kernel body.
///
//===----------------------------------------------------------------------===//

#include "compress/GpuWarpDecompressor.h"

#include "util/Bytes.h"

#include <cassert>

using namespace padre;

std::optional<GpuWarpPlan>
GpuWarpDecompressor::plan(ByteSpan Payload, std::size_t OriginalSize,
                          std::span<WarpSubBlock> Table) {
  if (OriginalSize > LzCodec::MaxInputSize)
    return std::nullopt;
  const auto Frame =
      parseSubBlockFrame(Payload, static_cast<std::uint32_t>(OriginalSize));
  if (!Frame)
    return std::nullopt;
  if (Table.size() < Frame->Count)
    return std::nullopt;

  GpuWarpPlan Plan;
  Plan.OriginalSize = OriginalSize;
  Plan.PayloadSize = Payload.size();
  Plan.SubBlocks = Table.first(Frame->Count);
  for (unsigned I = 0; I < Frame->Count; ++I) {
    Plan.SubBlocks[I] = WarpSubBlock();
    Plan.SubBlocks[I].Seg = Frame->Segs[I];
  }
  return Plan;
}

namespace {

/// Token kinds for divergence tracking (mirrors the lane planner).
enum class TokenKind { None, Literal, Match };

} // namespace

bool GpuWarpDecompressor::runWarps(ByteSpan Payload, GpuWarpPlan &Plan,
                                   ByteVector &Out) {
  if (Plan.PayloadSize != Payload.size())
    return false;

  const std::size_t OutStart = Out.size();
  Out.reserve(OutStart + Plan.OriginalSize);

  // Sub-blocks are decoded in order here, but each one reads only its
  // own output window — the history reset at compress time means a
  // real device would run them on concurrent warps with no ordering.
  for (WarpSubBlock &Sub : Plan.SubBlocks) {
    const std::size_t PayloadEnd =
        static_cast<std::size_t>(Sub.Seg.PayloadOffset) + Sub.Seg.PayloadBytes;
    const std::size_t OutputBegin = OutStart + Sub.Seg.OutputOffset;
    const std::size_t OutputEnd = OutputBegin + Sub.Seg.OutputBytes;
    if (Out.size() != OutputBegin) {
      Out.resize(OutStart);
      return false;
    }
    std::size_t Pos = Sub.Seg.PayloadOffset;
    TokenKind LastKind = TokenKind::None;
    while (Pos < PayloadEnd) {
      const std::uint8_t Control = Payload[Pos];
      if ((Control & 0x80) == 0) {
        const std::size_t Run = static_cast<std::size_t>(Control) + 1;
        if (Pos + 1 + Run > PayloadEnd || Out.size() + Run > OutputEnd) {
          Out.resize(OutStart);
          return false;
        }
        Out.insert(Out.end(), Payload.begin() + Pos + 1,
                   Payload.begin() + Pos + 1 + Run);
        Pos += 1 + Run;
        Sub.Stats.LiteralBytes += static_cast<std::uint32_t>(Run);
        Sub.Stats.LiteralRuns += 1;
        if (LastKind == TokenKind::Match)
          Sub.TokenSwitches += 1;
        LastKind = TokenKind::Literal;
      } else {
        const std::size_t Length =
            static_cast<std::size_t>(Control & 0x7F) + LzCodec::MinMatch;
        if (Pos + 3 > PayloadEnd) {
          Out.resize(OutStart);
          return false;
        }
        const std::size_t Distance = loadLe16(Payload.data() + Pos + 1);
        // The history reset makes cross-sub-block distances impossible
        // in a well-formed frame; reaching before OutputBegin is
        // corruption, not a dependency.
        if (Distance == 0 || Distance > Out.size() - OutputBegin ||
            Out.size() + Length > OutputEnd) {
          Out.resize(OutStart);
          return false;
        }
        if (Distance < Length)
          Sub.OverlapMatches += 1;
        // Byte-by-byte: overlapping copies (distance < length)
        // replicate the window, as in LzCodec::decompress.
        for (std::size_t I = 0; I < Length; ++I)
          Out.push_back(Out[Out.size() - Distance]);
        Pos += 3;
        Sub.Stats.MatchBytes += static_cast<std::uint32_t>(Length);
        Sub.Stats.Matches += 1;
        if (LastKind == TokenKind::Literal)
          Sub.TokenSwitches += 1;
        LastKind = TokenKind::Match;
      }
    }
    if (Out.size() != OutputEnd) {
      Out.resize(OutStart);
      return false;
    }
    Sub.Tokens = Sub.Stats.LiteralRuns + Sub.Stats.Matches;
  }

  if (Out.size() - OutStart != Plan.OriginalSize) {
    Out.resize(OutStart);
    return false;
  }
  return true;
}
