//===----------------------------------------------------------------------===//
///
/// \file
/// Lane-parallel compressor implementation.
///
//===----------------------------------------------------------------------===//

#include "compress/GpuLaneCompressor.h"

#include <cassert>

using namespace padre;

std::size_t LaneOutputs::totalPayloadBytes() const {
  std::size_t Total = 0;
  for (const CompressResult &Lane : LaneResults)
    Total += Lane.Payload.size();
  return Total;
}

GpuLaneCompressor::GpuLaneCompressor(GpuLaneConfig Config)
    : Config(Config), LaneCodec(LzCodec::MatcherKind::SingleProbe) {
  assert(Config.Lanes >= 1 && "Need at least one lane");
}

LaneOutputs GpuLaneCompressor::runLanes(ByteSpan Chunk) const {
  assert(Chunk.size() <= LzCodec::MaxInputSize &&
         "Chunk exceeds codec format limit");
  LaneOutputs Outputs;
  Outputs.ChunkSize = Chunk.size();
  if (Chunk.empty())
    return Outputs;

  const std::size_t LaneCount =
      std::min<std::size_t>(Config.Lanes, Chunk.size());
  const std::size_t PerLane = (Chunk.size() + LaneCount - 1) / LaneCount;
  Outputs.LaneResults.reserve(LaneCount);
  for (std::size_t Lane = 0; Lane < LaneCount; ++Lane) {
    const std::size_t Begin = Lane * PerLane;
    const std::size_t End = std::min(Chunk.size(), Begin + PerLane);
    if (Begin >= End)
      break;
    Outputs.LaneResults.push_back(
        LaneCodec.compressRange(Chunk, Begin, End, Config.HistoryBytes));
  }
  return Outputs;
}

RefinedChunk GpuLaneCompressor::refine(const LaneOutputs &Outputs,
                                       ByteSpan Chunk) {
  assert(Outputs.ChunkSize == Chunk.size() &&
         "Lane outputs do not belong to this chunk");
  RefinedChunk Refined;

  // Re-emit every lane's tokens into one stream, merging literal runs
  // that straddle lane boundaries (each lane necessarily breaks its
  // trailing run at the boundary; merged runs save control bytes).
  ByteVector Merged;
  ByteVector PendingLiterals;
  auto FlushLiterals = [&Merged, &PendingLiterals, &Refined] {
    std::size_t Offset = 0;
    while (Offset < PendingLiterals.size()) {
      const std::size_t Run = std::min(PendingLiterals.size() - Offset,
                                       LzCodec::MaxLiteralRun);
      Merged.push_back(static_cast<std::uint8_t>(Run - 1));
      Merged.insert(Merged.end(), PendingLiterals.begin() + Offset,
                    PendingLiterals.begin() + Offset + Run);
      ++Refined.Stats.LiteralRuns;
      Offset += Run;
    }
    PendingLiterals.clear();
  };

  for (const CompressResult &Lane : Outputs.LaneResults) {
    const ByteVector &Payload = Lane.Payload;
    Refined.Stats.LiteralBytes += Lane.Stats.LiteralBytes;
    Refined.Stats.MatchBytes += Lane.Stats.MatchBytes;
    Refined.Stats.Matches += Lane.Stats.Matches;
    std::size_t In = 0;
    while (In < Payload.size()) {
      const std::uint8_t Control = Payload[In++];
      if ((Control & 0x80) == 0) {
        const std::size_t Run = static_cast<std::size_t>(Control) + 1;
        assert(In + Run <= Payload.size() && "Corrupt lane payload");
        PendingLiterals.insert(PendingLiterals.end(), Payload.begin() + In,
                               Payload.begin() + In + Run);
        In += Run;
        continue;
      }
      FlushLiterals();
      assert(In + 2 <= Payload.size() && "Corrupt lane payload");
      Merged.push_back(Control);
      Merged.push_back(Payload[In]);
      Merged.push_back(Payload[In + 1]);
      In += 2;
    }
  }
  FlushLiterals();

  // Fallback decision: the refined stream must beat raw storage.
  if (Merged.size() >= Chunk.size()) {
    Refined.StoredRaw = true;
    Refined.Block = encodeBlock(BlockMethod::Raw,
                                static_cast<std::uint32_t>(Chunk.size()),
                                Chunk);
    return Refined;
  }
  Refined.Block = encodeBlock(BlockMethod::GpuLane,
                              static_cast<std::uint32_t>(Chunk.size()),
                              ByteSpan(Merged.data(), Merged.size()));
  return Refined;
}
