//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-plan names, validity matrix and spec parser.
///
//===----------------------------------------------------------------------===//

#include "fault/FaultPlan.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace padre;
using namespace padre::fault;

const char *padre::fault::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::SsdRead:
    return "ssd-read";
  case FaultSite::SsdWrite:
    return "ssd-write";
  case FaultSite::GpuKernel:
    return "gpu-kernel";
  case FaultSite::GpuDma:
    return "gpu-dma";
  case FaultSite::Destage:
    return "destage";
  case FaultSite::Crash:
    return "crash";
  }
  assert(false && "Unknown fault site");
  return "?";
}

const char *padre::fault::crashPointName(CrashPoint Point) {
  switch (Point) {
  case CrashPoint::MidDestage:
    return "mid-destage";
  case CrashPoint::PreCommit:
    return "pre-commit";
  case CrashPoint::MidCommit:
    return "mid-commit";
  case CrashPoint::PostCommit:
    return "post-commit";
  case CrashPoint::MidCheckpoint:
    return "mid-checkpoint";
  case CrashPoint::MidGc:
    return "mid-gc";
  }
  assert(false && "Unknown crash point");
  return "?";
}

const char *padre::fault::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::LatentSectorError:
    return "latent-sector-error";
  case FaultKind::IoTimeout:
    return "io-timeout";
  case FaultKind::GpuEccError:
    return "gpu-ecc";
  case FaultKind::GpuKernelHang:
    return "gpu-hang";
  case FaultKind::GpuDmaCorrupt:
    return "gpu-dma-corrupt";
  case FaultKind::PayloadBitFlip:
    return "payload-bitflip";
  case FaultKind::Crash:
    return "crash";
  case FaultKind::TornWrite:
    return "torn-write";
  }
  assert(false && "Unknown fault kind");
  return "?";
}

bool padre::fault::faultKindValidAt(FaultSite Site, FaultKind Kind) {
  switch (Site) {
  case FaultSite::SsdRead:
  case FaultSite::SsdWrite:
    return Kind == FaultKind::LatentSectorError ||
           Kind == FaultKind::IoTimeout;
  case FaultSite::GpuKernel:
    return Kind == FaultKind::GpuEccError || Kind == FaultKind::GpuKernelHang;
  case FaultSite::GpuDma:
    return Kind == FaultKind::GpuDmaCorrupt;
  case FaultSite::Destage:
    return Kind == FaultKind::PayloadBitFlip;
  case FaultSite::Crash:
    return Kind == FaultKind::Crash || Kind == FaultKind::TornWrite;
  }
  return false;
}

namespace {

std::vector<std::string> splitOn(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  std::size_t Begin = 0;
  for (;;) {
    const std::size_t End = Text.find(Sep, Begin);
    if (End == std::string::npos) {
      Parts.push_back(Text.substr(Begin));
      return Parts;
    }
    Parts.push_back(Text.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

bool parseU64(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End == Text.c_str() + Text.size();
}

bool parseF64(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtod(Text.c_str(), &End);
  return End == Text.c_str() + Text.size();
}

/// Parses a site name, including the `crash@<point>` form which sets
/// \p PointFilter to the named crash point (-1 otherwise).
bool parseSite(const std::string &Name, FaultSite &Out, int &PointFilter) {
  PointFilter = -1;
  if (Name.rfind("crash@", 0) == 0) {
    const std::string Point = Name.substr(6);
    for (unsigned P = 0; P < CrashPointCount; ++P) {
      if (Point == crashPointName(static_cast<CrashPoint>(P))) {
        Out = FaultSite::Crash;
        PointFilter = static_cast<int>(P);
        return true;
      }
    }
    return false;
  }
  for (unsigned S = 0; S < FaultSiteCount; ++S) {
    if (Name == faultSiteName(static_cast<FaultSite>(S))) {
      Out = static_cast<FaultSite>(S);
      return true;
    }
  }
  return false;
}

/// Spec kinds are short aliases; the canonical names also parse.
bool parseKind(const std::string &Name, FaultKind &Out) {
  static constexpr const char *Aliases[FaultKindCount] = {
      "error", "timeout", "ecc", "hang", "dma-corrupt", "bitflip",
      "crash", "torn-write"};
  for (unsigned K = 0; K < FaultKindCount; ++K) {
    if (Name == Aliases[K] || Name == faultKindName(static_cast<FaultKind>(K))) {
      Out = static_cast<FaultKind>(K);
      return true;
    }
  }
  return false;
}

} // namespace

bool padre::fault::parseFaultPlan(const std::string &Spec, FaultPlan &Out,
                                  std::string &Error) {
  FaultPlan Plan;
  for (const std::string &Clause : splitOn(Spec, ';')) {
    if (Clause.empty())
      continue;

    // Global settings: key=value with no ':'.
    if (Clause.find(':') == std::string::npos) {
      const std::size_t Eq = Clause.find('=');
      if (Eq == std::string::npos) {
        Error = "clause '" + Clause + "' is neither key=value nor a rule";
        return false;
      }
      const std::string Key = Clause.substr(0, Eq);
      const std::string Value = Clause.substr(Eq + 1);
      std::uint64_t U = 0;
      double F = 0.0;
      if (Key == "seed" && parseU64(Value, U)) {
        Plan.Seed = U;
      } else if (Key == "retries" && parseU64(Value, U)) {
        Plan.Policy.MaxRetries = static_cast<unsigned>(U);
      } else if (Key == "backoff-us" && parseF64(Value, F) && F >= 0.0) {
        Plan.Policy.RetryBackoffUs = F;
      } else if (Key == "timeout-us" && parseF64(Value, F) && F >= 0.0) {
        Plan.Policy.SsdTimeoutUs = F;
      } else if (Key == "hang-us" && parseF64(Value, F) && F >= 0.0) {
        Plan.Policy.GpuHangTimeoutUs = F;
      } else {
        Error = "bad setting '" + Clause + "'";
        return false;
      }
      continue;
    }

    // Rule: site:kind:trigger.
    const std::vector<std::string> Parts = splitOn(Clause, ':');
    if (Parts.size() != 3) {
      Error = "rule '" + Clause + "' is not site:kind:trigger";
      return false;
    }
    FaultRule Rule;
    if (!parseSite(Parts[0], Rule.Site, Rule.CrashPointFilter)) {
      Error = "unknown fault site '" + Parts[0] + "'";
      return false;
    }
    if (!parseKind(Parts[1], Rule.Kind)) {
      Error = "unknown fault kind '" + Parts[1] + "'";
      return false;
    }
    if (!faultKindValidAt(Rule.Site, Rule.Kind)) {
      Error = std::string("fault kind '") + faultKindName(Rule.Kind) +
              "' cannot occur at site '" + faultSiteName(Rule.Site) + "'";
      return false;
    }
    const std::string &Trigger = Parts[2];
    if (Trigger.rfind("p=", 0) == 0) {
      double P = 0.0;
      if (!parseF64(Trigger.substr(2), P) || P < 0.0 || P > 1.0) {
        Error = "bad probability in '" + Clause + "'";
        return false;
      }
      Rule.Probability = P;
    } else if (Trigger.rfind("at=", 0) == 0) {
      for (const std::string &Item : splitOn(Trigger.substr(3), ',')) {
        std::uint64_t Op = 0;
        if (!parseU64(Item, Op)) {
          Error = "bad op index in '" + Clause + "'";
          return false;
        }
        Rule.AtOps.push_back(Op);
      }
      std::sort(Rule.AtOps.begin(), Rule.AtOps.end());
    } else if (Trigger.rfind("every=", 0) == 0) {
      std::uint64_t N = 0;
      if (!parseU64(Trigger.substr(6), N) || N == 0) {
        Error = "bad period in '" + Clause + "'";
        return false;
      }
      Rule.EveryN = N;
    } else {
      Error = "bad trigger in '" + Clause + "' (want p=, at= or every=)";
      return false;
    }
    Plan.Rules.push_back(std::move(Rule));
  }
  Out = std::move(Plan);
  return true;
}
