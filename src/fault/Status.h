//===----------------------------------------------------------------------===//
///
/// \file
/// Typed error propagation for the fault-tolerant pipeline paths.
/// Inline reduction sits on the primary write path, so a modelled
/// device fault must surface as a recoverable value — never an assert.
/// `Status` is a two-word code+detail pair (no allocation, cheap to
/// return by value); `Expected<T>` carries either a result or a
/// non-ok Status, for read-path functions that previously returned
/// std::optional and lost the failure reason.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_FAULT_STATUS_H
#define PADRE_FAULT_STATUS_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>

namespace padre {
namespace fault {

/// Every failure class a pipeline operation can surface. The code
/// identifies *what* went wrong; Status::detail() carries the where
/// (typically a chunk location) when one exists.
enum class ErrorCode : std::uint8_t {
  Ok = 0,
  /// A latent sector error or timeout persisted past the retry budget.
  SsdReadError,
  SsdWriteError,
  /// GPU kernel hang or uncorrectable ECC error; results discarded.
  GpuKernelError,
  /// PCIe DMA delivered corrupt data (payload CRC mismatch on arrival).
  GpuDmaError,
  /// No block stored at the requested location.
  ChunkMissing,
  /// A stored block failed its CRC/format check.
  ChunkCorrupt,
  /// A well-formed block whose payload failed to decode.
  DecodeError,
  /// Scrub found corruption and no verified repair source exists.
  ChunkLost,
  /// A host file operation failed (open, short read/write, rename).
  IoError,
  /// A persisted volume image failed its integrity checks (CRC,
  /// truncation, malformed records); nothing was restored.
  ImageCorrupt,
  /// Journal/checkpoint framing failed in a way torn-tail discard
  /// cannot explain (bad magic, CRC-valid garbage, sequence gap).
  JournalCorrupt,
  /// A persisted artefact does not fit this volume (version, chunk
  /// size, geometry, or a shared-tracker restore).
  StateMismatch,
  /// Journal replay disagreed with the recorded intent (refcount
  /// delta, snapshot id, GC count) — the redo log and the rebuilt
  /// state diverged.
  ReplayMismatch,
  /// The volume halted at an injected crash point; the operation was
  /// not acknowledged (recover from the journal to continue).
  Crashed,
  /// A workload trace line failed to parse (detail = 1-based line).
  TraceMalformed,
  /// A parsed trace record is semantically invalid for the target
  /// volume — out-of-range LBA, zero length, address wrap (detail =
  /// 0-based record index).
  TraceInvalid,
};

/// Stable lower-case name for \p Code ("ok", "ssd-read-error", ...).
const char *errorCodeName(ErrorCode Code);

/// A success/error result. Default-constructed is Ok. Deliberately
/// not [[nodiscard]] at the type level: write-path callers that run
/// fault-free by construction (no injector attached) may ignore it.
class Status {
public:
  Status() = default; ///< Ok — `return {};` is the success return.

  static Status error(ErrorCode Code, std::uint64_t Detail = 0) {
    assert(Code != ErrorCode::Ok && "error() requires a non-Ok code");
    Status S;
    S.Code = Code;
    S.Detail = Detail;
    return S;
  }

  bool ok() const { return Code == ErrorCode::Ok; }
  explicit operator bool() const { return ok(); }

  ErrorCode code() const { return Code; }
  /// Failure context (chunk location, op index); 0 when none applies.
  std::uint64_t detail() const { return Detail; }
  const char *message() const { return errorCodeName(Code); }

private:
  ErrorCode Code = ErrorCode::Ok;
  std::uint64_t Detail = 0;
};

/// A value or a non-ok Status (C++20 predates std::expected). The
/// moved-from/value-less states are guarded by asserts, matching the
/// std::optional idiom already used across the codebase.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status St) : St(St) {
    assert(!St.ok() && "Expected from an Ok status carries no value");
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "value() on an errored Expected");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on an errored Expected");
    return *Value;
  }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }

  /// The error (Ok when a value is present, for uniform logging).
  Status status() const { return St; }

private:
  std::optional<T> Value;
  Status St;
};

} // namespace fault
} // namespace padre

#endif // PADRE_FAULT_STATUS_H
