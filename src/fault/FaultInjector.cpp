//===----------------------------------------------------------------------===//
///
/// \file
/// Fault injector implementation. The per-op decision is a splitmix64
/// counter-mode PRF over (seed, site, op, rule): no generator state is
/// shared between ops, so concurrency cannot perturb the sequence.
///
//===----------------------------------------------------------------------===//

#include "fault/FaultInjector.h"

#include "util/Random.h"

#include <algorithm>

using namespace padre;
using namespace padre::fault;

namespace {

/// Hash-combine in counter mode: feeds \p Word into \p Seed and
/// returns a well-mixed 64-bit output.
std::uint64_t mix(std::uint64_t Seed, std::uint64_t Word) {
  std::uint64_t State = Seed ^ (Word + 0x9E3779B97F4A7C15ULL +
                                (Seed << 6) + (Seed >> 2));
  return Random::splitMix64(State);
}

double toUnitDouble(std::uint64_t Bits) {
  return static_cast<double>(Bits >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &Plan) : Plan(Plan) {
  for (auto &Count : OpCounts)
    Count.store(0);
  for (auto &Count : CrashPointCounts)
    Count.store(0);
  for (auto &Count : InjectedCounts)
    Count.store(0);
  for (std::size_t I = 0; I < this->Plan.Rules.size(); ++I) {
    FaultRule &Rule = this->Plan.Rules[I];
    std::sort(Rule.AtOps.begin(), Rule.AtOps.end());
    SiteRules[static_cast<unsigned>(Rule.Site)].push_back(I);
  }
}

void FaultInjector::setObs(obs::MetricsRegistry *Metrics) {
  if (!Metrics)
    return;
  for (unsigned K = 0; K < FaultKindCount; ++K) {
    std::string Name = "padre_fault_injected_total{kind=\"";
    Name += faultKindName(static_cast<FaultKind>(K));
    Name += "\"}";
    KindCounters[K] = &Metrics->counter(Name, "Injected faults by kind");
  }
}

std::optional<InjectedFault> FaultInjector::sample(FaultSite Site) {
  const unsigned SiteIdx = static_cast<unsigned>(Site);
  const std::uint64_t Op =
      OpCounts[SiteIdx].fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::size_t> &Rules = SiteRules[SiteIdx];
  if (Rules.empty())
    return std::nullopt;

  const std::uint64_t SiteSeed = mix(Plan.Seed, 0xFA01u + SiteIdx);
  for (const std::size_t RuleIdx : Rules) {
    const FaultRule &Rule = Plan.Rules[RuleIdx];
    bool Fires = false;
    const std::uint64_t Draw = mix(mix(SiteSeed, Op), RuleIdx);
    if (Rule.Probability > 0.0 && toUnitDouble(Draw) < Rule.Probability)
      Fires = true;
    if (!Fires && !Rule.AtOps.empty() &&
        std::binary_search(Rule.AtOps.begin(), Rule.AtOps.end(), Op))
      Fires = true;
    if (!Fires && Rule.EveryN != 0 && (Op + 1) % Rule.EveryN == 0)
      Fires = true;
    if (!Fires)
      continue;

    InjectedFault Fault;
    Fault.Kind = Rule.Kind;
    switch (Rule.Kind) {
    case FaultKind::IoTimeout:
      Fault.ExtraUs = Plan.Policy.SsdTimeoutUs;
      break;
    case FaultKind::GpuKernelHang:
      Fault.ExtraUs = Plan.Policy.GpuHangTimeoutUs;
      break;
    default:
      break;
    }
    Fault.RandomBits = mix(Draw, 0xB17F11Bu);
    InjectedCounts[static_cast<unsigned>(Rule.Kind)].fetch_add(
        1, std::memory_order_relaxed);
    if (obs::Counter *C = KindCounters[static_cast<unsigned>(Rule.Kind)])
      C->add(1);
    return Fault;
  }
  return std::nullopt;
}

std::optional<InjectedFault> FaultInjector::sampleCrash(CrashPoint Point) {
  const unsigned SiteIdx = static_cast<unsigned>(FaultSite::Crash);
  const unsigned PointIdx = static_cast<unsigned>(Point);
  const std::uint64_t GlobalOp =
      OpCounts[SiteIdx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t PointOp =
      CrashPointCounts[PointIdx].fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::size_t> &Rules = SiteRules[SiteIdx];
  if (Rules.empty())
    return std::nullopt;

  const std::uint64_t SiteSeed = mix(Plan.Seed, 0xFA01u + SiteIdx);
  for (const std::size_t RuleIdx : Rules) {
    const FaultRule &Rule = Plan.Rules[RuleIdx];
    const bool Filtered = Rule.CrashPointFilter >= 0;
    if (Filtered && Rule.CrashPointFilter != static_cast<int>(PointIdx))
      continue;
    // Point-filtered rules draw against the point's private arrival
    // counter (and a point-specific seed, so two points never share a
    // Bernoulli stream); bare rules see the global crash ordinal.
    const std::uint64_t Op = Filtered ? PointOp : GlobalOp;
    const std::uint64_t RuleSeed =
        Filtered ? mix(SiteSeed, 0xC0A5u + PointIdx) : SiteSeed;
    bool Fires = false;
    const std::uint64_t Draw = mix(mix(RuleSeed, Op), RuleIdx);
    if (Rule.Probability > 0.0 && toUnitDouble(Draw) < Rule.Probability)
      Fires = true;
    if (!Fires && !Rule.AtOps.empty() &&
        std::binary_search(Rule.AtOps.begin(), Rule.AtOps.end(), Op))
      Fires = true;
    if (!Fires && Rule.EveryN != 0 && (Op + 1) % Rule.EveryN == 0)
      Fires = true;
    if (!Fires)
      continue;

    InjectedFault Fault;
    Fault.Kind = Rule.Kind;
    Fault.RandomBits = mix(Draw, 0xB17F11Bu);
    InjectedCounts[static_cast<unsigned>(Rule.Kind)].fetch_add(
        1, std::memory_order_relaxed);
    if (obs::Counter *C = KindCounters[static_cast<unsigned>(Rule.Kind)])
      C->add(1);
    return Fault;
  }
  return std::nullopt;
}

std::uint64_t FaultInjector::injectedTotal() const {
  std::uint64_t Total = 0;
  for (const auto &Count : InjectedCounts)
    Total += Count.load(std::memory_order_relaxed);
  return Total;
}
