//===----------------------------------------------------------------------===//
///
/// \file
/// Declarative fault plans. A plan names *where* faults strike (a
/// FaultSite on a modelled device), *what* strikes (a FaultKind), and
/// *when* (per-op probability, an explicit op schedule, or every Nth
/// op), plus the recovery policy knobs (retry budget, backoff,
/// timeout latencies). Plans are pure data: the same plan handed to
/// two FaultInjectors produces bit-identical fault sequences, which is
/// what makes fault tests replayable from a single seed.
///
/// `parseFaultPlan` accepts the `padrectl --fault-plan` mini-language:
/// semicolon-separated clauses, each either a global setting or a
/// site:kind:trigger rule —
///
///   seed=N | retries=N | backoff-us=F | timeout-us=F | hang-us=F
///   <site>:<kind>:<trigger>
///     site    := ssd-read | ssd-write | gpu-kernel | gpu-dma | destage
///              | crash | crash@<point>
///     point   := mid-destage | pre-commit | mid-commit | post-commit
///              | mid-checkpoint | mid-gc
///     kind    := error | timeout | ecc | hang | dma-corrupt | bitflip
///              | crash | torn-write
///     trigger := p=F | at=N[,N...] | every=N
///
/// e.g. `seed=7;ssd-read:error:p=0.01;gpu-kernel:hang:at=2,5`.
///
/// Crash rules drive the journal layer's crash-point injection
/// (src/journal/JournaledVolume.h). A bare `crash` site counts every
/// crash-point arrival in one ordinal stream (`crash:crash:at=7` halts
/// at the 7th instrumented point of any flavour); `crash@post-commit`
/// counts only that point's arrivals, so `crash@post-commit:crash:at=N`
/// is "crash after the (N+1)th commit". `torn-write` additionally
/// leaves a deterministic partial tail of the in-flight commit bytes
/// (recovery must discard it — the torn-tail rule, DESIGN.md §3(12)).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_FAULT_FAULTPLAN_H
#define PADRE_FAULT_FAULTPLAN_H

#include <cstdint>
#include <string>
#include <vector>

namespace padre {
namespace fault {

/// Injection points instrumented by the modelled devices and the
/// pipeline destage stage.
enum class FaultSite : unsigned {
  SsdRead = 0,  ///< SsdModel read commands (sequential and random)
  SsdWrite = 1, ///< SsdModel write commands
  GpuKernel = 2,///< GpuDevice::launchKernel
  GpuDma = 3,   ///< GpuDevice transfers (both directions)
  Destage = 4,  ///< encoded payloads on their way into the chunk store
  Crash = 5,    ///< journal crash points (JournaledVolume write path)
};

inline constexpr unsigned FaultSiteCount = 6;

/// The instrumented crash points of the journaled write path, in
/// pipeline order (see src/journal/JournaledVolume.cpp). Each is a
/// distinct halt position relative to the WAL commit-ordering rule
/// (data destage -> journal commit -> ack).
enum class CrashPoint : unsigned {
  MidDestage = 0,    ///< data destaged, intent record not yet buffered
  PreCommit = 1,     ///< record buffered, commit not started
  MidCommit = 2,     ///< commit in flight (torn-write leaves a tail)
  PostCommit = 3,    ///< record durable, ack never delivered
  MidCheckpoint = 4, ///< checkpoint written, log not yet truncated
  MidGc = 5,         ///< chunks collected, Gc record not yet buffered
};

inline constexpr unsigned CrashPointCount = 6;

/// "mid-destage", "pre-commit", "mid-commit", "post-commit",
/// "mid-checkpoint", "mid-gc".
const char *crashPointName(CrashPoint Point);

/// What goes wrong when a rule fires.
enum class FaultKind : unsigned {
  LatentSectorError = 0, ///< SSD op fails; retryable
  IoTimeout = 1,         ///< SSD op stalls (extra latency), then fails
  GpuEccError = 2,       ///< kernel completes, results uncorrectable
  GpuKernelHang = 3,     ///< kernel never completes; killed at timeout
  GpuDmaCorrupt = 4,     ///< transfer delivers corrupt data
  PayloadBitFlip = 5,    ///< one bit flips in a stored block payload
  Crash = 6,             ///< clean halt at the sampled crash point
  TornWrite = 7,         ///< halt mid-commit, partial record on disk
};

inline constexpr unsigned FaultKindCount = 8;

/// "ssd-read", "ssd-write", "gpu-kernel", "gpu-dma", "destage",
/// "crash".
const char *faultSiteName(FaultSite Site);

/// "latent-sector-error", "io-timeout", "gpu-ecc", "gpu-hang",
/// "gpu-dma-corrupt", "payload-bitflip", "crash", "torn-write".
const char *faultKindName(FaultKind Kind);

/// Whether \p Kind is something that can physically happen at \p Site
/// (a kernel cannot suffer a latent sector error).
bool faultKindValidAt(FaultSite Site, FaultKind Kind);

/// One injection rule. Exactly one trigger should be set; when several
/// are, any of them firing injects the fault.
struct FaultRule {
  FaultSite Site = FaultSite::SsdRead;
  FaultKind Kind = FaultKind::LatentSectorError;
  /// Per-op Bernoulli probability in [0, 1].
  double Probability = 0.0;
  /// Explicit 0-based op indices at the site (kept sorted).
  std::vector<std::uint64_t> AtOps;
  /// Fires on every Nth op (ops N-1, 2N-1, ...); 0 = disabled.
  std::uint64_t EveryN = 0;
  /// Crash-site rules only: restricts the rule to one crash point and
  /// switches its op ordinal to that point's private arrival counter
  /// (`crash@post-commit` in the spec grammar). -1 = any point, global
  /// crash ordinal.
  int CrashPointFilter = -1;
};

/// Recovery policy: how hard the system tries before surfacing a
/// typed error, and what the modelled degradation costs.
struct FaultPolicy {
  /// Retries after the first failed SSD attempt before giving up.
  unsigned MaxRetries = 4;
  /// Linear backoff: attempt k waits k * RetryBackoffUs before the
  /// re-issue. Charged to the SSD lane (degradation is modelled time).
  double RetryBackoffUs = 100.0;
  /// Extra latency an IoTimeout adds to the stalled attempt.
  double SsdTimeoutUs = 500.0;
  /// Time a hung kernel occupies the GPU before the host kills it.
  double GpuHangTimeoutUs = 2000.0;
};

/// A complete plan. An empty plan (no rules) injects nothing and — by
/// the injector's fast-path contract — leaves every modelled cost
/// bit-identical to a run with no injector attached.
struct FaultPlan {
  std::uint64_t Seed = 0x5EED;
  FaultPolicy Policy;
  std::vector<FaultRule> Rules;

  bool empty() const { return Rules.empty(); }
};

/// Parses the --fault-plan mini-language (see file comment). Returns
/// false and fills \p Error on malformed input, unknown names, or a
/// kind/site mismatch.
bool parseFaultPlan(const std::string &Spec, FaultPlan &Out,
                    std::string &Error);

} // namespace fault
} // namespace padre

#endif // PADRE_FAULT_FAULTPLAN_H
