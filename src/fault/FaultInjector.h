//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded, deterministic fault injector. Each instrumented device
/// calls `sample(Site)` once per modelled operation; the injector
/// decides — as a pure function of (plan seed, site, the site's op
/// ordinal, rule index) — whether a fault strikes. Because the
/// decision is counter-based rather than shared-stream-based, the
/// same plan replays bit-identically regardless of how calls from
/// different sites interleave, and two runs of the same workload see
/// the same faults at the same ops.
///
/// With no rules at a site, `sample` costs one relaxed fetch_add and
/// returns nullopt — and the devices skip even that when no injector
/// is attached, so the no-fault hot path is untouched.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_FAULT_FAULTINJECTOR_H
#define PADRE_FAULT_FAULTINJECTOR_H

#include "fault/FaultPlan.h"
#include "obs/MetricsRegistry.h"

#include <atomic>
#include <cstdint>
#include <optional>

namespace padre {
namespace fault {

/// One injected fault, as delivered to the faulting device.
struct InjectedFault {
  FaultKind Kind = FaultKind::LatentSectorError;
  /// Extra modelled latency the fault costs (timeout stall, hang
  /// occupancy); 0 for instant failures.
  double ExtraUs = 0.0;
  /// Deterministic per-fault entropy — bit-flip sites derive the
  /// corrupted offset/bit from this so corruption is replayable too.
  std::uint64_t RandomBits = 0;
};

/// Thread-safe. One injector serves every device of one pipeline.
class FaultInjector {
public:
  explicit FaultInjector(const FaultPlan &Plan);

  /// Called once per modelled op at \p Site. Returns the fault to
  /// apply, or nullopt. Always advances the site's op ordinal.
  std::optional<InjectedFault> sample(FaultSite Site);

  /// Crash-point variant (journal layer): advances both the global
  /// Crash-site ordinal and \p Point's private arrival counter, then
  /// evaluates the Crash-site rules — point-filtered rules against the
  /// point counter, unfiltered rules against the global ordinal. The
  /// decision stays a pure function of (seed, point, ordinals, rule),
  /// so crash schedules replay bit-identically.
  std::optional<InjectedFault> sampleCrash(CrashPoint Point);

  /// Crash-point arrivals sampled at \p Point so far.
  std::uint64_t crashPointOps(CrashPoint Point) const {
    return CrashPointCounts[static_cast<unsigned>(Point)].load(
        std::memory_order_relaxed);
  }

  const FaultPlan &plan() const { return Plan; }

  /// Ops sampled at \p Site so far.
  std::uint64_t ops(FaultSite Site) const {
    return OpCounts[static_cast<unsigned>(Site)].load(
        std::memory_order_relaxed);
  }

  /// Faults injected of \p Kind / in total.
  std::uint64_t injected(FaultKind Kind) const {
    return InjectedCounts[static_cast<unsigned>(Kind)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t injectedTotal() const;

  /// Registers `padre_fault_injected_total{kind=...}` counters. Call
  /// before traffic; \p Metrics must outlive the injector.
  void setObs(obs::MetricsRegistry *Metrics);

private:
  FaultPlan Plan;
  /// Indices into Plan.Rules, bucketed by site (built once).
  std::vector<std::size_t> SiteRules[FaultSiteCount];
  std::atomic<std::uint64_t> OpCounts[FaultSiteCount];
  std::atomic<std::uint64_t> CrashPointCounts[CrashPointCount];
  std::atomic<std::uint64_t> InjectedCounts[FaultKindCount];
  obs::Counter *KindCounters[FaultKindCount] = {};
};

} // namespace fault
} // namespace padre

#endif // PADRE_FAULT_FAULTINJECTOR_H
