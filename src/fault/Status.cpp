//===----------------------------------------------------------------------===//
///
/// \file
/// Error-code names.
///
//===----------------------------------------------------------------------===//

#include "fault/Status.h"

using namespace padre;
using namespace padre::fault;

const char *padre::fault::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::SsdReadError:
    return "ssd-read-error";
  case ErrorCode::SsdWriteError:
    return "ssd-write-error";
  case ErrorCode::GpuKernelError:
    return "gpu-kernel-error";
  case ErrorCode::GpuDmaError:
    return "gpu-dma-error";
  case ErrorCode::ChunkMissing:
    return "chunk-missing";
  case ErrorCode::ChunkCorrupt:
    return "chunk-corrupt";
  case ErrorCode::DecodeError:
    return "decode-error";
  case ErrorCode::ChunkLost:
    return "chunk-lost";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::ImageCorrupt:
    return "image-corrupt";
  case ErrorCode::JournalCorrupt:
    return "journal-corrupt";
  case ErrorCode::StateMismatch:
    return "state-mismatch";
  case ErrorCode::ReplayMismatch:
    return "replay-mismatch";
  case ErrorCode::Crashed:
    return "crashed";
  case ErrorCode::TraceMalformed:
    return "trace-malformed";
  case ErrorCode::TraceInvalid:
    return "trace-invalid";
  }
  assert(false && "Unknown error code");
  return "?";
}
