//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity features for resemblance detection (extension; the
/// delta-compression direction of Xia et al.'s DARE/Ddelta line cited
/// in the paper's related work). A chunk's *features* are min-hashes
/// of its rolling-window fingerprints under independent permutations;
/// by the min-hash property, two chunks share a feature with
/// probability equal to their content resemblance. Features are
/// grouped into *super-features*: two chunks that agree on any
/// super-feature are similar with high confidence and become a delta
/// base/target pair.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_DELTA_SUPERFEATURES_H
#define PADRE_DELTA_SUPERFEATURES_H

#include "util/Bytes.h"

#include <array>
#include <cstdint>

namespace padre {

/// Feature geometry: 12 min-hash features grouped into 3
/// super-features of 4 (the classic configuration).
inline constexpr unsigned FeatureCount = 12;
inline constexpr unsigned SuperFeatureCount = 3;
inline constexpr unsigned FeaturesPerSuper =
    FeatureCount / SuperFeatureCount;

/// A chunk's super-features.
using SuperFeatureSet = std::array<std::uint64_t, SuperFeatureCount>;

/// Computes \p Data's super-features. Deterministic; chunks shorter
/// than the rolling window get degenerate (but stable) features.
SuperFeatureSet computeSuperFeatures(ByteSpan Data);

/// True if two sets share at least one super-feature — the similarity
/// predicate.
inline bool similar(const SuperFeatureSet &A, const SuperFeatureSet &B) {
  for (unsigned I = 0; I < SuperFeatureCount; ++I)
    if (A[I] == B[I])
      return true;
  return false;
}

} // namespace padre

#endif // PADRE_DELTA_SUPERFEATURES_H
