//===----------------------------------------------------------------------===//
///
/// \file
/// The similarity index: maps super-features to candidate base-chunk
/// locations. A lookup that matches any super-feature yields a delta
/// base candidate. Memory is bounded per super-feature table with
/// random replacement — the same capacity discipline as the paper's
/// dedup index (§3.1(1)).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_DELTA_SIMILARITYINDEX_H
#define PADRE_DELTA_SIMILARITYINDEX_H

#include "delta/SuperFeatures.h"
#include "util/Random.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace padre {

/// Bounded super-feature -> location index.
class SimilarityIndex {
public:
  /// \p MaxEntriesPerTable bounds each super-feature table (0 =
  /// unbounded); \p Seed drives random replacement.
  explicit SimilarityIndex(std::size_t MaxEntriesPerTable = 0,
                           std::uint64_t Seed = 0xDE17A);

  /// Returns the location of a similar chunk, if any table has a
  /// matching super-feature (tables are consulted in order).
  std::optional<std::uint64_t> findBase(const SuperFeatureSet &Fs) const;

  /// Registers \p Location under every super-feature (overwriting any
  /// colliding entry — newer bases win, matching delta locality).
  void insert(const SuperFeatureSet &Fs, std::uint64_t Location);

  /// Removes entries pointing at \p Location (GC support). Returns
  /// the number of table entries dropped.
  std::size_t removeLocation(std::uint64_t Location);

  /// Total entries across the tables.
  std::size_t size() const;

private:
  struct Table {
    std::unordered_map<std::uint64_t, std::uint64_t> Map;
    std::vector<std::uint64_t> Keys; ///< for random eviction
  };

  std::size_t MaxEntriesPerTable;
  Random Rng;
  Table Tables[SuperFeatureCount];
};

} // namespace padre

#endif // PADRE_DELTA_SIMILARITYINDEX_H
