//===----------------------------------------------------------------------===//
///
/// \file
/// Super-feature computation: a gear rolling hash over a 32-byte
/// window; each feature is the minimum of (Hash * Mi + Ai) over all
/// window positions (an affine permutation per feature); each
/// super-feature is FNV over its feature group.
///
//===----------------------------------------------------------------------===//

#include "delta/SuperFeatures.h"

#include "hash/Fnv.h"
#include "util/Random.h"

#include <algorithm>
#include <limits>

using namespace padre;

namespace {

constexpr std::size_t WindowSize = 32;

/// Gear table shared by all feature computations (deterministic).
struct GearTable {
  std::uint64_t Entries[256];
  GearTable() {
    Random Rng(0x5EA7F00DBEEFULL);
    for (std::uint64_t &Entry : Entries)
      Entry = Rng.nextU64();
  }
};

/// Affine permutation constants per feature (odd multipliers).
struct Permutations {
  std::uint64_t Mul[FeatureCount];
  std::uint64_t Add[FeatureCount];
  Permutations() {
    Random Rng(0xFEA7FEA7ULL);
    for (unsigned I = 0; I < FeatureCount; ++I) {
      Mul[I] = Rng.nextU64() | 1; // odd => bijective mod 2^64
      Add[I] = Rng.nextU64();
    }
  }
};

} // namespace

SuperFeatureSet padre::computeSuperFeatures(ByteSpan Data) {
  static const GearTable Gear;
  static const Permutations Perm;

  std::uint64_t Features[FeatureCount];
  std::fill(Features, Features + FeatureCount,
            std::numeric_limits<std::uint64_t>::max());

  // Gear hash: shift-and-add per byte; the window is implicit (the
  // shift ages old bytes out after 64 shifts; sampling every position
  // past WindowSize keeps the classic semantics).
  std::uint64_t Hash = 0;
  for (std::size_t I = 0; I < Data.size(); ++I) {
    Hash = (Hash << 1) + Gear.Entries[Data[I]];
    if (I + 1 < WindowSize)
      continue;
    for (unsigned F = 0; F < FeatureCount; ++F) {
      const std::uint64_t Permuted = Hash * Perm.Mul[F] + Perm.Add[F];
      Features[F] = std::min(Features[F], Permuted);
    }
  }
  // Degenerate tiny inputs: fold the bytes so the features are stable
  // and content-dependent.
  if (Data.size() < WindowSize)
    for (unsigned F = 0; F < FeatureCount; ++F)
      Features[F] = fnv1a64(Data, Perm.Add[F] | 1);

  SuperFeatureSet Supers;
  for (unsigned S = 0; S < SuperFeatureCount; ++S) {
    std::uint64_t Acc = FnvOffsetBasis;
    for (unsigned F = 0; F < FeaturesPerSuper; ++F)
      Acc = fnv1a64(Features[S * FeaturesPerSuper + F]) ^ (Acc * FnvPrime);
    Supers[S] = Acc;
  }
  return Supers;
}
