//===----------------------------------------------------------------------===//
///
/// \file
/// Similarity index implementation.
///
//===----------------------------------------------------------------------===//

#include "delta/SimilarityIndex.h"

#include <algorithm>
#include <cassert>

using namespace padre;

SimilarityIndex::SimilarityIndex(std::size_t MaxEntriesPerTable,
                                 std::uint64_t Seed)
    : MaxEntriesPerTable(MaxEntriesPerTable), Rng(Seed) {}

std::optional<std::uint64_t>
SimilarityIndex::findBase(const SuperFeatureSet &Fs) const {
  for (unsigned I = 0; I < SuperFeatureCount; ++I) {
    const auto It = Tables[I].Map.find(Fs[I]);
    if (It != Tables[I].Map.end())
      return It->second;
  }
  return std::nullopt;
}

void SimilarityIndex::insert(const SuperFeatureSet &Fs,
                             std::uint64_t Location) {
  for (unsigned I = 0; I < SuperFeatureCount; ++I) {
    Table &T = Tables[I];
    const auto [It, Inserted] = T.Map.try_emplace(Fs[I], Location);
    if (!Inserted) {
      It->second = Location; // newer base wins
      continue;
    }
    T.Keys.push_back(Fs[I]);
    if (MaxEntriesPerTable != 0 && T.Map.size() > MaxEntriesPerTable) {
      // Random replacement: evict one key (swap-pop keeps Keys dense).
      const std::size_t Victim = Rng.nextBelow(T.Keys.size());
      const std::uint64_t Key = T.Keys[Victim];
      if (Key != Fs[I]) {
        T.Map.erase(Key);
        T.Keys[Victim] = T.Keys.back();
        T.Keys.pop_back();
      } else {
        // Never evict the entry just inserted; pick its neighbour.
        const std::size_t Other =
            Victim == 0 ? T.Keys.size() - 1 : Victim - 1;
        T.Map.erase(T.Keys[Other]);
        T.Keys[Other] = T.Keys.back();
        T.Keys.pop_back();
      }
    }
  }
}

std::size_t SimilarityIndex::removeLocation(std::uint64_t Location) {
  std::size_t Removed = 0;
  for (Table &T : Tables) {
    for (std::size_t I = T.Keys.size(); I > 0; --I) {
      const std::uint64_t Key = T.Keys[I - 1];
      const auto It = T.Map.find(Key);
      assert(It != T.Map.end() && "Keys/Map out of sync");
      if (It->second != Location)
        continue;
      T.Map.erase(It);
      T.Keys[I - 1] = T.Keys.back();
      T.Keys.pop_back();
      ++Removed;
    }
  }
  return Removed;
}

std::size_t SimilarityIndex::size() const {
  std::size_t Total = 0;
  for (const Table &T : Tables)
    Total += T.Map.size();
  return Total;
}
