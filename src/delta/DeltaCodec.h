//===----------------------------------------------------------------------===//
///
/// \file
/// Delta encoding of a target chunk against a similar base chunk
/// (extension): the third data-reduction axis after dedup (identical
/// chunks) and LZ (intra-chunk redundancy) — cross-chunk *similarity*.
///
/// Payload format (little-endian):
///   control byte C:
///     C bit7 = 0: INSERT run of (C + 1) literal bytes (1..128)
///     C bit7 = 1: COPY of ((C & 0x7F) + MinCopy) bytes (8..135) from
///                 the base, followed by a 16-bit base offset
/// Base and target are chunk-sized (≤ 64 KiB), so 16-bit offsets
/// suffice. An incompressible delta simply exceeds the target size and
/// the caller falls back to ordinary LZ.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_DELTA_DELTACODEC_H
#define PADRE_DELTA_DELTACODEC_H

#include "util/Bytes.h"

#include <cstdint>

namespace padre {

/// Functional outcome of a delta encode (cost-model food, like
/// CompressStats).
struct DeltaResult {
  ByteVector Payload;
  std::uint32_t CopyBytes = 0;   ///< target bytes covered by copies
  std::uint32_t InsertBytes = 0; ///< target bytes inserted literally
  std::uint32_t Copies = 0;
};

/// Format limits.
inline constexpr std::size_t DeltaMinCopy = 8;
inline constexpr std::size_t DeltaMaxCopy = 135;
inline constexpr std::size_t DeltaMaxInput = 65536;

/// Delta-encodes \p Target against \p Base (both ≤ DeltaMaxInput).
DeltaResult deltaEncode(ByteSpan Base, ByteSpan Target);

/// Reconstructs exactly \p TargetSize bytes from \p Payload and
/// \p Base, appended to \p Out. Returns false (appending nothing) on
/// any malformed token.
bool deltaDecode(ByteSpan Base, ByteSpan Payload, std::size_t TargetSize,
                 ByteVector &Out);

} // namespace padre

#endif // PADRE_DELTA_DELTACODEC_H
