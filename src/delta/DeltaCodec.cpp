//===----------------------------------------------------------------------===//
///
/// \file
/// Delta codec implementation: a single-probe 8-gram index over the
/// base with bidirectional match extension, and a bounds-checked
/// decoder.
///
//===----------------------------------------------------------------------===//

#include "delta/DeltaCodec.h"

#include <cassert>
#include <cstring>
#include <vector>

using namespace padre;

namespace {

constexpr unsigned HashBits = 14;
constexpr std::size_t HashSize = 1u << HashBits;
constexpr std::uint32_t NoPosition = 0xFFFFFFFFu;

std::uint32_t hashGram8(const std::uint8_t *Data) {
  std::uint64_t Gram;
  std::memcpy(&Gram, Data, 8);
  return static_cast<std::uint32_t>((Gram * 0x9E3779B97F4A7C15ULL) >>
                                    (64 - HashBits));
}

/// Emits an INSERT run (splitting at 128 bytes).
void emitInsert(ByteVector &Payload, const std::uint8_t *Data,
                std::size_t Length, DeltaResult &Result) {
  std::size_t Offset = 0;
  while (Offset < Length) {
    const std::size_t Run = std::min<std::size_t>(Length - Offset, 128);
    Payload.push_back(static_cast<std::uint8_t>(Run - 1));
    Payload.insert(Payload.end(), Data + Offset, Data + Offset + Run);
    Result.InsertBytes += static_cast<std::uint32_t>(Run);
    Offset += Run;
  }
}

/// Emits a COPY (splitting so no piece is below DeltaMinCopy).
void emitCopy(ByteVector &Payload, std::size_t BaseOffset,
              std::size_t Length, DeltaResult &Result) {
  while (Length > 0) {
    std::size_t Take = std::min(Length, DeltaMaxCopy);
    const std::size_t Rest = Length - Take;
    if (Rest > 0 && Rest < DeltaMinCopy)
      Take -= DeltaMinCopy - Rest;
    assert(Take >= DeltaMinCopy && "Copy piece too short");
    Payload.push_back(
        static_cast<std::uint8_t>(0x80 | (Take - DeltaMinCopy)));
    Payload.push_back(static_cast<std::uint8_t>(BaseOffset));
    Payload.push_back(static_cast<std::uint8_t>(BaseOffset >> 8));
    Result.CopyBytes += static_cast<std::uint32_t>(Take);
    ++Result.Copies;
    BaseOffset += Take;
    Length -= Take;
  }
}

} // namespace

DeltaResult padre::deltaEncode(ByteSpan Base, ByteSpan Target) {
  assert(Base.size() <= DeltaMaxInput && Target.size() <= DeltaMaxInput &&
         "Input exceeds delta format limit");
  DeltaResult Result;
  Result.Payload.reserve(Target.size() / 4 + 16);

  // Single-probe index over the base's 8-grams.
  std::vector<std::uint32_t> Index(HashSize, NoPosition);
  if (Base.size() >= 8)
    for (std::size_t I = 0; I + 8 <= Base.size(); ++I)
      Index[hashGram8(Base.data() + I)] = static_cast<std::uint32_t>(I);

  std::size_t Position = 0;
  std::size_t PendingInsert = 0; // run start at Position - PendingInsert
  while (Position < Target.size()) {
    std::size_t MatchBase = 0, MatchLength = 0;
    if (Position + 8 <= Target.size() && Base.size() >= 8) {
      const std::uint32_t Candidate =
          Index[hashGram8(Target.data() + Position)];
      if (Candidate != NoPosition) {
        // Extend forward.
        std::size_t Length = 0;
        const std::size_t Limit =
            std::min(Base.size() - Candidate, Target.size() - Position);
        while (Length < Limit &&
               Base[Candidate + Length] == Target[Position + Length])
          ++Length;
        // Extend backward into the pending insert run.
        std::size_t Back = 0;
        while (Back < PendingInsert && Back < Candidate &&
               Base[Candidate - Back - 1] ==
                   Target[Position - Back - 1])
          ++Back;
        if (Length + Back >= DeltaMinCopy) {
          MatchBase = Candidate - Back;
          MatchLength = Length + Back;
          Position -= Back;
          PendingInsert -= Back;
        }
      }
    }
    if (MatchLength == 0) {
      ++PendingInsert;
      ++Position;
      continue;
    }
    if (PendingInsert != 0) {
      emitInsert(Result.Payload, Target.data() + Position - PendingInsert,
                 PendingInsert, Result);
      PendingInsert = 0;
    }
    emitCopy(Result.Payload, MatchBase, MatchLength, Result);
    Position += MatchLength;
  }
  if (PendingInsert != 0)
    emitInsert(Result.Payload, Target.data() + Position - PendingInsert,
               PendingInsert, Result);
  assert(Result.CopyBytes + Result.InsertBytes == Target.size() &&
         "Delta must cover the target exactly");
  return Result;
}

bool padre::deltaDecode(ByteSpan Base, ByteSpan Payload,
                        std::size_t TargetSize, ByteVector &Out) {
  const std::size_t OutStart = Out.size();
  Out.reserve(OutStart + TargetSize);
  std::size_t In = 0;
  std::size_t Produced = 0;
  while (In < Payload.size()) {
    const std::uint8_t Control = Payload[In++];
    if ((Control & 0x80) == 0) {
      const std::size_t Run = static_cast<std::size_t>(Control) + 1;
      if (In + Run > Payload.size() || Produced + Run > TargetSize) {
        Out.resize(OutStart);
        return false;
      }
      Out.insert(Out.end(), Payload.begin() + In, Payload.begin() + In + Run);
      In += Run;
      Produced += Run;
      continue;
    }
    const std::size_t Length = (Control & 0x7F) + DeltaMinCopy;
    if (In + 2 > Payload.size()) {
      Out.resize(OutStart);
      return false;
    }
    const std::size_t Offset = loadLe16(Payload.data() + In);
    In += 2;
    if (Offset + Length > Base.size() || Produced + Length > TargetSize) {
      Out.resize(OutStart);
      return false;
    }
    Out.insert(Out.end(), Base.begin() + Offset,
               Base.begin() + Offset + Length);
    Produced += Length;
  }
  if (Produced != TargetSize) {
    Out.resize(OutStart);
    return false;
  }
  return true;
}
