//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the fingerprint bin/prefix arithmetic.
///
//===----------------------------------------------------------------------===//

#include "hash/Fingerprint.h"

#include <cassert>

using namespace padre;

std::uint32_t Fingerprint::binId(unsigned BinBits) const {
  assert(BinBits >= 1 && BinBits <= 32 && "Bin bits out of range");
  std::uint64_t Lead = 0;
  for (unsigned I = 0; I < 5; ++I)
    Lead = (Lead << 8) | Bytes[I];
  // Lead holds the first 40 bits of the digest; take the top BinBits.
  return static_cast<std::uint32_t>(Lead >> (40 - BinBits));
}

std::uint64_t Fingerprint::key64(unsigned Offset) const {
  std::uint64_t Key = 0;
  for (unsigned I = 0; I < 8; ++I) {
    Key <<= 8;
    const unsigned Index = Offset + I;
    if (Index < Size)
      Key |= Bytes[Index];
  }
  return Key;
}

std::string Fingerprint::hex() const {
  return toHex(ByteSpan(Bytes.data(), Bytes.size()));
}
