//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-buffer SHA-1 implementation: W independent streaming contexts
/// advanced one 64-byte block per round in lane order. The round-robin
/// consumption order is what a SIMD multi-buffer kernel executes; the
/// arithmetic per lane is the plain FIPS 180-1 chain, so the digest of
/// every lane equals the serial Sha1::digest bit-for-bit.
///
//===----------------------------------------------------------------------===//

#include "hash/Sha1Batch.h"

#include <algorithm>
#include <cassert>

using namespace padre;

Sha1Batch::Sha1Batch(unsigned Width)
    : Width(std::clamp(Width, 1u, MaxWidth)) {}

void Sha1Batch::digestGroup(std::span<const ByteSpan> Inputs,
                            std::span<Sha1::Digest> Out) {
  const std::size_t Lanes = Inputs.size();
  assert(Lanes <= MaxWidth && "Group wider than MaxWidth");
  assert(Out.size() == Lanes && "Output span must match the group");

  Sha1 Contexts[MaxWidth];
  std::size_t Consumed[MaxWidth] = {};

  // Lockstep rounds: every live lane absorbs one 64-byte block, in lane
  // order, until the longest lane has no full block left. Lanes whose
  // message is exhausted simply retire (tail divergence) — their chain
  // state is complete and waits for finalization.
  bool AnyFullBlock = true;
  while (AnyFullBlock) {
    AnyFullBlock = false;
    for (std::size_t Lane = 0; Lane < Lanes; ++Lane) {
      const std::size_t Remaining = Inputs[Lane].size() - Consumed[Lane];
      if (Remaining < 64)
        continue;
      Contexts[Lane].update(Inputs[Lane].subspan(Consumed[Lane], 64));
      Consumed[Lane] += 64;
      AnyFullBlock = true;
    }
  }

  // Finalization: the sub-block tail plus padding, per lane. A SIMD
  // kernel pads lanes to a common block count; arithmetic is identical.
  for (std::size_t Lane = 0; Lane < Lanes; ++Lane) {
    const std::size_t Remaining = Inputs[Lane].size() - Consumed[Lane];
    if (Remaining != 0)
      Contexts[Lane].update(Inputs[Lane].subspan(Consumed[Lane], Remaining));
    Out[Lane] = Contexts[Lane].final();
  }
}

void Sha1Batch::digestMany(std::span<const ByteSpan> Inputs,
                           std::span<Sha1::Digest> Out) const {
  assert(Out.size() == Inputs.size() && "Output span must match inputs");
  for (std::size_t Begin = 0; Begin < Inputs.size(); Begin += Width) {
    const std::size_t Count = std::min<std::size_t>(Width, Inputs.size() - Begin);
    digestGroup(Inputs.subspan(Begin, Count), Out.subspan(Begin, Count));
  }
}
