//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-1 implemented from the FIPS 180-1 specification. The paper uses
/// SHA-1 (20-byte digests) as the chunk identifier for deduplication
/// (§2: "the hash size (SHA1, 20 bytes)"); collisions are treated as
/// identity, the standard assumption in deduplication systems.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_SHA1_H
#define PADRE_HASH_SHA1_H

#include "util/Bytes.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace padre {

/// Streaming SHA-1 context. Supports incremental `update` calls followed
/// by a single `final`; `Sha1::digest` is the one-shot convenience form.
class Sha1 {
public:
  static constexpr std::size_t DigestSize = 20;
  using Digest = std::array<std::uint8_t, DigestSize>;

  Sha1() { reset(); }

  /// Reinitializes the context to the standard initial state.
  void reset();

  /// Absorbs \p Data into the running hash.
  void update(ByteSpan Data);

  /// Finishes the hash and returns the 20-byte digest. The context must
  /// be `reset` before further use.
  Digest final();

  /// One-shot convenience: digest of \p Data.
  static Digest digest(ByteSpan Data);

private:
  void processBlock(const std::uint8_t *Block);

  std::uint32_t State[5];
  std::uint64_t TotalBits;
  std::uint8_t Buffer[64];
  std::size_t BufferedBytes;
};

} // namespace padre

#endif // PADRE_HASH_SHA1_H
