//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-buffer batched SHA-1: hashes several independent chunks per
/// call by interleaving their 64-byte block rounds — the software
/// pattern behind SIMD "multi-buffer" hash libraries (one SHA-1 round
/// executed across W lanes at once, each lane a different message).
/// There is no data dependency *between* chunks (§3.1: hashing is the
/// embarrassingly parallel half of dedup), only within one chunk's
/// block chain, so W chains advance in lockstep.
///
/// This implementation is scalar — the host has no guaranteed SHA-NI /
/// AVX2 — but it is *shaped* like the SIMD kernel: blocks are consumed
/// round-robin across the lane group, the group runs until its longest
/// lane finishes (shorter lanes retire early, the tail-divergence case
/// the width sweep in tests/test_hash.cpp pins), and the cost model
/// charges it as W-lane SIMD work (CostModel::cpuHashBatchUs). Digests
/// are bit-identical to Sha1::digest for every width and batch size,
/// including batches that do not divide the width (e.g. 5 chunks at
/// width 4 → one full group + one group of 1).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_SHA1BATCH_H
#define PADRE_HASH_SHA1BATCH_H

#include "hash/Sha1.h"
#include "util/Bytes.h"

#include <cstddef>
#include <span>

namespace padre {

/// Batched SHA-1 over lane groups of a fixed width.
class Sha1Batch {
public:
  /// Widths above this are clamped (8 models the widest practical
  /// multi-buffer kernel: AVX2 does 8 SHA-1 lanes of 32-bit words).
  static constexpr unsigned MaxWidth = 8;

  /// \p Width lanes per group, clamped to [1, MaxWidth]. Width 1 is
  /// exactly the serial one-at-a-time path.
  explicit Sha1Batch(unsigned Width = 4);

  unsigned width() const { return Width; }

  /// Digests every input: Out[i] = SHA-1(Inputs[i]). Inputs are
  /// processed in groups of width(); the final group may be narrower
  /// (the tail case). \p Out must have Inputs.size() elements.
  void digestMany(std::span<const ByteSpan> Inputs,
                  std::span<Sha1::Digest> Out) const;

  /// Hashes one lane group (up to MaxWidth inputs) with interleaved
  /// block rounds. Exposed for the width-sweep tests.
  static void digestGroup(std::span<const ByteSpan> Inputs,
                          std::span<Sha1::Digest> Out);

private:
  unsigned Width;
};

} // namespace padre

#endif // PADRE_HASH_SHA1BATCH_H
