//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-256 (FIPS 180-2). Provided as an alternative, collision-stronger
/// fingerprint for deployments that cannot accept SHA-1; the dedup index
/// is digest-width agnostic (see index/BinLayout.h).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_SHA256_H
#define PADRE_HASH_SHA256_H

#include "util/Bytes.h"

#include <array>
#include <cstddef>
#include <cstdint>

namespace padre {

/// Streaming SHA-256 context mirroring the Sha1 interface.
class Sha256 {
public:
  static constexpr std::size_t DigestSize = 32;
  using Digest = std::array<std::uint8_t, DigestSize>;

  Sha256() { reset(); }

  /// Reinitializes the context to the standard initial state.
  void reset();

  /// Absorbs \p Data into the running hash.
  void update(ByteSpan Data);

  /// Finishes the hash and returns the 32-byte digest.
  Digest final();

  /// One-shot convenience: digest of \p Data.
  static Digest digest(ByteSpan Data);

private:
  void processBlock(const std::uint8_t *Block);

  std::uint32_t State[8];
  std::uint64_t TotalBits;
  std::uint8_t Buffer[64];
  std::size_t BufferedBytes;
};

} // namespace padre

#endif // PADRE_HASH_SHA256_H
