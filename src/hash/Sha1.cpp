//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-1 per FIPS 180-1 (straightforward 80-round implementation).
///
//===----------------------------------------------------------------------===//

#include "hash/Sha1.h"

#include <cassert>
#include <cstring>

using namespace padre;

static std::uint32_t rotl32(std::uint32_t X, int K) {
  return (X << K) | (X >> (32 - K));
}

void Sha1::reset() {
  State[0] = 0x67452301u;
  State[1] = 0xEFCDAB89u;
  State[2] = 0x98BADCFEu;
  State[3] = 0x10325476u;
  State[4] = 0xC3D2E1F0u;
  TotalBits = 0;
  BufferedBytes = 0;
}

void Sha1::update(ByteSpan Data) {
  TotalBits += static_cast<std::uint64_t>(Data.size()) * 8;
  const std::uint8_t *Ptr = Data.data();
  std::size_t Remaining = Data.size();

  if (BufferedBytes != 0) {
    const std::size_t Take = std::min(Remaining, 64 - BufferedBytes);
    std::memcpy(Buffer + BufferedBytes, Ptr, Take);
    BufferedBytes += Take;
    Ptr += Take;
    Remaining -= Take;
    if (BufferedBytes == 64) {
      processBlock(Buffer);
      BufferedBytes = 0;
    }
  }
  while (Remaining >= 64) {
    processBlock(Ptr);
    Ptr += 64;
    Remaining -= 64;
  }
  if (Remaining != 0) {
    std::memcpy(Buffer, Ptr, Remaining);
    BufferedBytes = Remaining;
  }
}

Sha1::Digest Sha1::final() {
  // Append the 0x80 terminator, zero padding, and the 64-bit big-endian
  // message length so the total is a multiple of 64 bytes.
  const std::uint64_t MessageBits = TotalBits;
  std::uint8_t Pad[72] = {0x80};
  const std::size_t PadLength =
      (BufferedBytes < 56) ? (56 - BufferedBytes) : (120 - BufferedBytes);
  update(ByteSpan(Pad, PadLength));
  std::uint8_t Length[8];
  for (unsigned I = 0; I < 8; ++I)
    Length[I] = static_cast<std::uint8_t>(MessageBits >> (56 - 8 * I));
  // `update` also advanced TotalBits for the padding; that is harmless
  // because MessageBits was captured first.
  update(ByteSpan(Length, 8));
  assert(BufferedBytes == 0 && "Padding must align to a full block");

  Digest Result;
  for (unsigned I = 0; I < 5; ++I)
    for (unsigned J = 0; J < 4; ++J)
      Result[I * 4 + J] = static_cast<std::uint8_t>(State[I] >> (24 - 8 * J));
  return Result;
}

Sha1::Digest Sha1::digest(ByteSpan Data) {
  Sha1 Context;
  Context.update(Data);
  return Context.final();
}

void Sha1::processBlock(const std::uint8_t *Block) {
  std::uint32_t W[80];
  for (unsigned I = 0; I < 16; ++I)
    W[I] = (static_cast<std::uint32_t>(Block[I * 4]) << 24) |
           (static_cast<std::uint32_t>(Block[I * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(Block[I * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(Block[I * 4 + 3]);
  for (unsigned I = 16; I < 80; ++I)
    W[I] = rotl32(W[I - 3] ^ W[I - 8] ^ W[I - 14] ^ W[I - 16], 1);

  std::uint32_t A = State[0], B = State[1], C = State[2], D = State[3],
                E = State[4];
  for (unsigned I = 0; I < 80; ++I) {
    std::uint32_t F, K;
    if (I < 20) {
      F = (B & C) | (~B & D);
      K = 0x5A827999u;
    } else if (I < 40) {
      F = B ^ C ^ D;
      K = 0x6ED9EBA1u;
    } else if (I < 60) {
      F = (B & C) | (B & D) | (C & D);
      K = 0x8F1BBCDCu;
    } else {
      F = B ^ C ^ D;
      K = 0xCA62C1D6u;
    }
    const std::uint32_t Temp = rotl32(A, 5) + F + E + K + W[I];
    E = D;
    D = C;
    C = rotl32(B, 30);
    B = A;
    A = Temp;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
  State[4] += E;
}
