//===----------------------------------------------------------------------===//
///
/// \file
/// SHA-256 per FIPS 180-2 (64-round implementation).
///
//===----------------------------------------------------------------------===//

#include "hash/Sha256.h"

#include <cassert>
#include <cstring>

using namespace padre;

static std::uint32_t rotr32(std::uint32_t X, int K) {
  return (X >> K) | (X << (32 - K));
}

static const std::uint32_t RoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void Sha256::reset() {
  static const std::uint32_t Initial[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                           0xa54ff53a, 0x510e527f, 0x9b05688c,
                                           0x1f83d9ab, 0x5be0cd19};
  std::memcpy(State, Initial, sizeof(State));
  TotalBits = 0;
  BufferedBytes = 0;
}

void Sha256::update(ByteSpan Data) {
  TotalBits += static_cast<std::uint64_t>(Data.size()) * 8;
  const std::uint8_t *Ptr = Data.data();
  std::size_t Remaining = Data.size();

  if (BufferedBytes != 0) {
    const std::size_t Take = std::min(Remaining, 64 - BufferedBytes);
    std::memcpy(Buffer + BufferedBytes, Ptr, Take);
    BufferedBytes += Take;
    Ptr += Take;
    Remaining -= Take;
    if (BufferedBytes == 64) {
      processBlock(Buffer);
      BufferedBytes = 0;
    }
  }
  while (Remaining >= 64) {
    processBlock(Ptr);
    Ptr += 64;
    Remaining -= 64;
  }
  if (Remaining != 0) {
    std::memcpy(Buffer, Ptr, Remaining);
    BufferedBytes = Remaining;
  }
}

Sha256::Digest Sha256::final() {
  const std::uint64_t MessageBits = TotalBits;
  std::uint8_t Pad[72] = {0x80};
  const std::size_t PadLength =
      (BufferedBytes < 56) ? (56 - BufferedBytes) : (120 - BufferedBytes);
  update(ByteSpan(Pad, PadLength));
  std::uint8_t Length[8];
  for (unsigned I = 0; I < 8; ++I)
    Length[I] = static_cast<std::uint8_t>(MessageBits >> (56 - 8 * I));
  update(ByteSpan(Length, 8));
  assert(BufferedBytes == 0 && "Padding must align to a full block");

  Digest Result;
  for (unsigned I = 0; I < 8; ++I)
    for (unsigned J = 0; J < 4; ++J)
      Result[I * 4 + J] = static_cast<std::uint8_t>(State[I] >> (24 - 8 * J));
  return Result;
}

Sha256::Digest Sha256::digest(ByteSpan Data) {
  Sha256 Context;
  Context.update(Data);
  return Context.final();
}

void Sha256::processBlock(const std::uint8_t *Block) {
  std::uint32_t W[64];
  for (unsigned I = 0; I < 16; ++I)
    W[I] = (static_cast<std::uint32_t>(Block[I * 4]) << 24) |
           (static_cast<std::uint32_t>(Block[I * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(Block[I * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(Block[I * 4 + 3]);
  for (unsigned I = 16; I < 64; ++I) {
    const std::uint32_t S0 = rotr32(W[I - 15], 7) ^ rotr32(W[I - 15], 18) ^
                             (W[I - 15] >> 3);
    const std::uint32_t S1 = rotr32(W[I - 2], 17) ^ rotr32(W[I - 2], 19) ^
                             (W[I - 2] >> 10);
    W[I] = W[I - 16] + S0 + W[I - 7] + S1;
  }

  std::uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  std::uint32_t E = State[4], F = State[5], G = State[6], H = State[7];
  for (unsigned I = 0; I < 64; ++I) {
    const std::uint32_t S1 = rotr32(E, 6) ^ rotr32(E, 11) ^ rotr32(E, 25);
    const std::uint32_t Ch = (E & F) ^ (~E & G);
    const std::uint32_t Temp1 = H + S1 + Ch + RoundConstants[I] + W[I];
    const std::uint32_t S0 = rotr32(A, 2) ^ rotr32(A, 13) ^ rotr32(A, 22);
    const std::uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
    const std::uint32_t Temp2 = S0 + Maj;
    H = G;
    G = F;
    F = E;
    E = D + Temp1;
    D = C;
    C = B;
    B = A;
    A = Temp1 + Temp2;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
  State[4] += E;
  State[5] += F;
  State[6] += G;
  State[7] += H;
}
