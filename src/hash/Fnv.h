//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a 64-bit hashing. Used for cheap non-cryptographic needs: hash
/// chains in the LZ matchers and bucket selection in tests. Not used as
/// a chunk identity (that is SHA-1, see hash/Sha1.h).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_FNV_H
#define PADRE_HASH_FNV_H

#include "util/Bytes.h"

#include <cstdint>

namespace padre {

inline constexpr std::uint64_t FnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t FnvPrime = 0x100000001B3ULL;

/// FNV-1a over \p Data, optionally continuing from \p Seed.
inline std::uint64_t fnv1a64(ByteSpan Data,
                             std::uint64_t Seed = FnvOffsetBasis) {
  std::uint64_t Hash = Seed;
  for (std::uint8_t Byte : Data) {
    Hash ^= Byte;
    Hash *= FnvPrime;
  }
  return Hash;
}

/// FNV-1a over a single 64-bit value (mixes all 8 bytes).
inline std::uint64_t fnv1a64(std::uint64_t Value) {
  std::uint64_t Hash = FnvOffsetBasis;
  for (unsigned I = 0; I < 8; ++I) {
    Hash ^= (Value >> (8 * I)) & 0xFF;
    Hash *= FnvPrime;
  }
  return Hash;
}

} // namespace padre

#endif // PADRE_HASH_FNV_H
