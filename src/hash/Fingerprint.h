//===----------------------------------------------------------------------===//
///
/// \file
/// The chunk identity type: a 20-byte SHA-1 digest plus the prefix/bin
/// arithmetic the bin-based index is built on. The bin id is taken from
/// the leading bits of the digest, so storing an entry inside bin B can
/// drop those leading bits without losing information — the paper's
/// "prefix removal" memory optimization (§3.1(1)).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_FINGERPRINT_H
#define PADRE_HASH_FINGERPRINT_H

#include "hash/Sha1.h"
#include "util/Bytes.h"

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace padre {

/// A chunk fingerprint (SHA-1 digest) with helpers for bin-based
/// indexing. Value type; totally ordered bytewise.
class Fingerprint {
public:
  static constexpr std::size_t Size = Sha1::DigestSize;

  Fingerprint() : Bytes{} {}
  explicit Fingerprint(const Sha1::Digest &Digest) : Bytes(Digest) {}

  /// Fingerprint of \p Data (SHA-1).
  static Fingerprint ofData(ByteSpan Data) {
    return Fingerprint(Sha1::digest(Data));
  }

  /// Raw digest bytes.
  const std::array<std::uint8_t, Size> &bytes() const { return Bytes; }

  /// Bin id formed from the leading \p BinBits bits of the digest
  /// (big-endian bit order). \p BinBits must be in [1, 32].
  std::uint32_t binId(unsigned BinBits) const;

  /// A 64-bit key read from the digest starting at byte \p Offset
  /// (big-endian). Used as the primary sort/compare key for truncated
  /// entries; bytes past the digest end read as zero.
  std::uint64_t key64(unsigned Offset) const;

  /// Lowercase hex rendering of the digest.
  std::string hex() const;

  friend bool operator==(const Fingerprint &A, const Fingerprint &B) {
    return A.Bytes == B.Bytes;
  }
  friend std::strong_ordering operator<=>(const Fingerprint &A,
                                          const Fingerprint &B) {
    return A.Bytes <=> B.Bytes;
  }

private:
  std::array<std::uint8_t, Size> Bytes;
};

/// std::hash-compatible functor (uses the digest's own leading bytes —
/// SHA-1 output is already uniform).
struct FingerprintHash {
  std::size_t operator()(const Fingerprint &Fp) const {
    std::size_t Value = 0;
    for (unsigned I = 0; I < sizeof(std::size_t); ++I)
      Value = (Value << 8) | Fp.bytes()[I];
    return Value;
  }
};

} // namespace padre

#endif // PADRE_HASH_FINGERPRINT_H
