//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected). Used as the
/// integrity check on compressed block payloads and SSD destage records.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_HASH_CRC32_H
#define PADRE_HASH_CRC32_H

#include "util/Bytes.h"

#include <cstdint>

namespace padre {

/// CRC-32C of \p Data, continuing from \p Seed (pass the previous result
/// to process data in pieces; the default seed starts a fresh CRC).
std::uint32_t crc32c(ByteSpan Data, std::uint32_t Seed = 0);

} // namespace padre

#endif // PADRE_HASH_CRC32_H
