//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven CRC-32C. The table is computed on first use from the
/// reflected Castagnoli polynomial (no static constructors; the lazy
/// local static is initialized on first call).
///
//===----------------------------------------------------------------------===//

#include "hash/Crc32.h"

#include <array>

using namespace padre;

namespace {

std::array<std::uint32_t, 256> buildTable() {
  constexpr std::uint32_t ReflectedPoly = 0x82F63B78u; // 0x1EDC6F41 reflected
  std::array<std::uint32_t, 256> Table{};
  for (std::uint32_t I = 0; I < 256; ++I) {
    std::uint32_t Crc = I;
    for (unsigned Bit = 0; Bit < 8; ++Bit)
      Crc = (Crc & 1) ? (Crc >> 1) ^ ReflectedPoly : Crc >> 1;
    Table[I] = Crc;
  }
  return Table;
}

} // namespace

std::uint32_t padre::crc32c(ByteSpan Data, std::uint32_t Seed) {
  static const std::array<std::uint32_t, 256> Table = buildTable();
  std::uint32_t Crc = ~Seed;
  for (std::uint8_t Byte : Data)
    Crc = Table[(Crc ^ Byte) & 0xFF] ^ (Crc >> 8);
  return ~Crc;
}
