//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the resource ledger.
///
//===----------------------------------------------------------------------===//

#include "sim/ResourceLedger.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace padre;

const char *padre::resourceName(Resource R) {
  switch (R) {
  case Resource::CpuPool:
    return "cpu";
  case Resource::Gpu:
    return "gpu";
  case Resource::Pcie:
    return "pcie";
  case Resource::Ssd:
    return "ssd";
  case Resource::IndexLock:
    return "lock";
  }
  assert(false && "Unknown resource");
  return "?";
}

void ResourceLedger::reset() {
  for (auto &Busy : BusyNanos)
    Busy.store(0, std::memory_order_relaxed);
  KernelLaunches.store(0, std::memory_order_relaxed);
  BytesToDevice.store(0, std::memory_order_relaxed);
  BytesFromDevice.store(0, std::memory_order_relaxed);
  resetTimeline();
}

namespace {

/// Gaps narrower than the ledger's nanosecond resolution are noise —
/// not worth tracking or splitting on.
constexpr double GapMinUs = 1e-3;

} // namespace

LaneInterval ResourceLedger::scheduleLocked(unsigned LaneId,
                                            double ReadyUs, double DurUs,
                                            bool Backfill) {
  assert(LaneId < Lanes.size() && "Unknown timeline lane");
  TimelineLane &Lane = Lanes[LaneId];
  if (Backfill) {
    // Earliest-fit into an idle gap; the remainder of the gap (head
    // and/or tail) stays available for later backfills.
    auto &Gaps = Lane.GapsUs;
    for (auto It = Gaps.begin(); It != Gaps.end(); ++It) {
      const double Start = std::fmax(It->StartUs, ReadyUs);
      if (Start + DurUs > It->EndUs + GapMinUs)
        continue;
      const LaneInterval Placed{Start, Start + DurUs};
      const LaneInterval Tail{Placed.EndUs, It->EndUs};
      if (Start - It->StartUs > GapMinUs) {
        It->EndUs = Start;
        if (Tail.EndUs - Tail.StartUs > GapMinUs)
          Gaps.insert(It + 1, Tail);
      } else if (Tail.EndUs - Tail.StartUs > GapMinUs) {
        *It = Tail;
      } else {
        Gaps.erase(It);
      }
      Lane.SchedUs += DurUs;
      return Placed;
    }
  }
  double &Free = Lane.FreeUs;
  const double Start = std::fmax(Free, ReadyUs);
  if (Start - Free > GapMinUs)
    Lane.GapsUs.push_back(LaneInterval{Free, Start});
  Free = Start + DurUs;
  Lane.SchedUs += DurUs;
  return LaneInterval{Start, Free};
}

LaneInterval ResourceLedger::scheduleMicros(Resource R, double ReadyUs,
                                            double DurUs, bool Backfill) {
  return scheduleLaneMicros(static_cast<unsigned>(R), ReadyUs, DurUs,
                            Backfill);
}

LaneInterval ResourceLedger::scheduleLaneMicros(unsigned LaneId,
                                                double ReadyUs,
                                                double DurUs,
                                                bool Backfill) {
  assert(std::isfinite(ReadyUs) && ReadyUs >= 0.0 && "Invalid ready time");
  assert(std::isfinite(DurUs) && DurUs >= 0.0 && "Invalid duration");
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  return scheduleLocked(LaneId, ReadyUs, DurUs, Backfill);
}

unsigned ResourceLedger::addTimelineLane(Resource Mirror) {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  TimelineLane Lane;
  Lane.Mirror = Mirror;
  Lanes.push_back(std::move(Lane));
  return static_cast<unsigned>(Lanes.size() - 1);
}

unsigned ResourceLedger::timelineLaneCount() const {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  return static_cast<unsigned>(Lanes.size());
}

Resource ResourceLedger::laneMirror(unsigned LaneId) const {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  assert(LaneId < Lanes.size() && "Unknown timeline lane");
  return Lanes[LaneId].Mirror;
}

double ResourceLedger::laneFreeMicros(Resource R) const {
  return laneFreeMicrosAt(static_cast<unsigned>(R));
}

double ResourceLedger::laneFreeMicrosAt(unsigned LaneId) const {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  assert(LaneId < Lanes.size() && "Unknown timeline lane");
  return Lanes[LaneId].FreeUs;
}

double ResourceLedger::laneScheduledMicros(Resource R) const {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  double Total = 0.0;
  for (const TimelineLane &Lane : Lanes)
    if (Lane.Mirror == R)
      Total += Lane.SchedUs;
  return Total;
}

double ResourceLedger::timelineWallMicros() const {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  double Max = 0.0;
  for (const TimelineLane &Lane : Lanes)
    Max = std::fmax(Max, Lane.FreeUs);
  return Max;
}

void ResourceLedger::resetTimeline() {
  std::lock_guard<std::mutex> Lock(TimelineMutex);
  if (Lanes.size() < ResourceCount) {
    Lanes.resize(ResourceCount);
    for (unsigned I = 0; I < ResourceCount; ++I)
      Lanes[I].Mirror = static_cast<Resource>(I);
  }
  for (TimelineLane &Lane : Lanes) {
    Lane.FreeUs = Lane.SchedUs = 0.0;
    Lane.GapsUs.clear();
  }
}

void ResourceLedger::chargeMicros(Resource R, double Micros) {
  assert(std::isfinite(Micros) && Micros >= 0.0 && "Invalid charge");
  const auto Nanos = static_cast<std::uint64_t>(Micros * 1e3 + 0.5);
  BusyNanos[static_cast<unsigned>(R)].fetch_add(Nanos,
                                                std::memory_order_relaxed);
}

double ResourceLedger::busySeconds(Resource R) const {
  return static_cast<double>(
             BusyNanos[static_cast<unsigned>(R)].load(
                 std::memory_order_relaxed)) *
         1e-9;
}

double ResourceLedger::busyMicros(Resource R) const {
  return static_cast<double>(
             BusyNanos[static_cast<unsigned>(R)].load(
                 std::memory_order_relaxed)) *
         1e-3;
}

namespace {

double laneCapacity(Resource R, unsigned CpuThreads,
                    unsigned GpuDevices) {
  if (R == Resource::CpuPool)
    return static_cast<double>(CpuThreads);
  if (R == Resource::Gpu || R == Resource::Pcie)
    return static_cast<double>(GpuDevices);
  return 1.0;
}

} // namespace

double ResourceLedger::makespanSeconds(unsigned CpuThreads, unsigned Mask,
                                       unsigned GpuDevices) const {
  assert(CpuThreads > 0 && "CPU pool needs at least one thread");
  assert(GpuDevices > 0 && "GPU capacity needs at least one device");
  double Max = 0.0;
  for (unsigned I = 0; I < ResourceCount; ++I) {
    if ((Mask & (1u << I)) == 0)
      continue;
    const auto R = static_cast<Resource>(I);
    Max = std::fmax(Max, busySeconds(R) /
                             laneCapacity(R, CpuThreads, GpuDevices));
  }
  return Max;
}

Resource ResourceLedger::bottleneck(unsigned CpuThreads, unsigned Mask,
                                    unsigned GpuDevices) const {
  Resource Best = Resource::CpuPool;
  double Max = -1.0;
  for (unsigned I = 0; I < ResourceCount; ++I) {
    if ((Mask & (1u << I)) == 0)
      continue;
    const auto R = static_cast<Resource>(I);
    const double Normalized =
        busySeconds(R) / laneCapacity(R, CpuThreads, GpuDevices);
    if (Normalized > Max) {
      Max = Normalized;
      Best = R;
    }
  }
  return Best;
}

std::string ResourceLedger::summary(unsigned CpuThreads) const {
  char Buffer[256];
  std::snprintf(
      Buffer, sizeof(Buffer),
      "cpu=%.4fs(/%u) gpu=%.4fs pcie=%.4fs ssd=%.4fs launches=%llu "
      "h2d=%llu d2h=%llu",
      busySeconds(Resource::CpuPool), CpuThreads,
      busySeconds(Resource::Gpu), busySeconds(Resource::Pcie),
      busySeconds(Resource::Ssd),
      static_cast<unsigned long long>(kernelLaunches()),
      static_cast<unsigned long long>(bytesToDevice()),
      static_cast<unsigned long long>(bytesFromDevice()));
  return Buffer;
}
