//===----------------------------------------------------------------------===//
///
/// \file
/// Platform profile definitions.
///
//===----------------------------------------------------------------------===//

#include "sim/Platform.h"

using namespace padre;

Platform Platform::paper() {
  Platform Result;
  Result.Name = "paper(i7-3770K+HD7970+SSD830)";
  Result.Model = CostModel();
  return Result;
}

Platform Platform::noGpu() {
  Platform Result = paper();
  Result.Name = "no-gpu";
  Result.Model.Gpu.Present = false;
  return Result;
}

Platform Platform::weakGpu() {
  Platform Result = paper();
  Result.Name = "weak-gpu";
  GpuCosts &Gpu = Result.Model.Gpu;
  Gpu.LaunchUs *= 2.0;
  Gpu.HashPerByteNs *= 3.0;
  Gpu.ProbePerEntryUs *= 3.0;
  Gpu.LaneSetupNs *= 3.0;
  Gpu.LzLiteralPerByteNs *= 3.0;
  Gpu.LzMatchPerByteNs *= 3.0;
  Gpu.DeviceMemoryMiB /= 2.0;
  Result.Model.Pcie.GigabytesPerSec /= 4.0; // x4 link
  return Result;
}

Platform Platform::fastGpu() {
  Platform Result = paper();
  Result.Name = "fast-gpu";
  GpuCosts &Gpu = Result.Model.Gpu;
  Gpu.LaunchUs /= 2.0;
  Gpu.HashPerByteNs /= 2.0;
  Gpu.ProbePerEntryUs /= 2.0;
  Gpu.LaneSetupNs /= 2.0;
  Gpu.LzLiteralPerByteNs /= 2.0;
  Gpu.LzMatchPerByteNs /= 2.0;
  Gpu.DeviceMemoryMiB *= 4.0;
  Result.Model.Pcie.GigabytesPerSec *= 2.0; // PCIe 3.0 x16
  return Result;
}

std::vector<Platform> Platform::allProfiles() {
  return {paper(), noGpu(), weakGpu(), fastGpu()};
}
