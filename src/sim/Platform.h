//===----------------------------------------------------------------------===//
///
/// \file
/// Named platform profiles. §4(3) of the paper: "because hardware
/// specifications may be different on different platforms, we cannot
/// guarantee that this integration is always right" — the Calibrator
/// (core/Calibrator.h) probes each integration mode with dummy I/O and
/// picks the best one per platform. These profiles are the platforms the
/// calibration experiment (E5) sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SIM_PLATFORM_H
#define PADRE_SIM_PLATFORM_H

#include "sim/CostModel.h"

#include <string>
#include <vector>

namespace padre {

/// A named hardware platform with its calibrated cost model.
struct Platform {
  std::string Name;
  CostModel Model;

  /// The paper's testbed: i7-3770K + Radeon HD 7970 + SSD 830.
  static Platform paper();
  /// Same CPU/SSD, no GPU installed (Calibrator must pick CpuOnly).
  static Platform noGpu();
  /// A low-end GPU: 3x slower kernels, 2x launch latency, half the
  /// device memory, PCIe x4 (Calibrator may keep compression on CPU).
  static Platform weakGpu();
  /// A next-generation GPU: 2x faster kernels, half the launch latency,
  /// 4x device memory, PCIe 3.0 x16.
  static Platform fastGpu();

  /// All profiles above, in a stable order (used by bench E5).
  static std::vector<Platform> allProfiles();
};

} // namespace padre

#endif // PADRE_SIM_PLATFORM_H
