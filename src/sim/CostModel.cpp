//===----------------------------------------------------------------------===//
///
/// \file
/// Cost model validation.
///
//===----------------------------------------------------------------------===//

#include "sim/CostModel.h"

#include <cmath>

using namespace padre;

namespace padre {

/// Returns true if every constant in \p Model is finite and positive
/// (or, for counts, nonzero). Used by engine constructors to reject
/// nonsensical user-supplied models early.
bool isValidCostModel(const CostModel &Model) {
  const double Values[] = {
      Model.Cpu.RequestOverheadUs, Model.Cpu.ChunkingPerByteNs,
      Model.Cpu.HashPerByteNs,     Model.Cpu.IndexProbeUs,
      Model.Cpu.IndexProbeHotUs,   Model.Cpu.IndexProbeBufferUs,
      Model.Cpu.IndexMaintainUs,
      Model.Cpu.LzSetupUs,         Model.Cpu.LzLiteralPerByteNs,
      Model.Cpu.LzMatchPerByteNs,  Model.Cpu.PostSetupUs,
      Model.Cpu.PostPerByteNs,     Model.Cpu.StoreRawPostUs,
      Model.Cpu.DecompressPerByteNs, Model.Cpu.HuffmanPerByteNs,
      Model.Cpu.VerifyPerByteNs,  Model.Cpu.CacheCopyPerByteNs,
      Model.Cpu.DecompressSetupUs, Model.Cpu.PlanSetupUs,
      Model.Cpu.PlanPerByteNs,     Model.Cpu.FramePlanUs,
      Model.Gpu.LaunchUs,          Model.Gpu.HashPerByteNs,
      Model.Gpu.ProbePerEntryUs,   Model.Gpu.LaneSetupNs,
      Model.Gpu.LzLiteralPerByteNs, Model.Gpu.LzMatchPerByteNs,
      Model.Gpu.DecLaneSetupNs,    Model.Gpu.DecLiteralPerByteNs,
      Model.Gpu.DecMatchPerByteNs, Model.Gpu.DecDivergencePerTokenNs,
      Model.Gpu.WarpSubBlockSetupNs, Model.Gpu.WarpReaderPerTokenNs,
      Model.Gpu.WarpDecoderPerByteNs, Model.Gpu.WarpDivergencePerTokenNs,
      Model.Gpu.WarpOverlapPerMatchNs, Model.Gpu.WarpSyncNs,
      Model.Gpu.WarpDoorbellUs,
      Model.Gpu.MixedKernelPenalty, Model.Gpu.DeviceMemoryMiB,
      Model.Pcie.GigabytesPerSec,  Model.Pcie.PerTransferUs,
      Model.Ssd.SeqWriteMBps,      Model.Ssd.SeqReadMBps,
      Model.Ssd.RandWrite4KUs,     Model.Ssd.RandRead4KUs,
      Model.Ssd.SeqCommandUs,      Model.Ssd.SequentialWaf,
      Model.Ssd.RandomWaf,         Model.Ssd.FtlGcPageReadUs,
      Model.Ssd.FtlGcPageProgramUs, Model.Ssd.FtlBlockEraseUs};
  for (double Value : Values)
    if (!std::isfinite(Value) || Value <= 0.0)
      return false;
  return Model.Cpu.Threads > 0 && Model.Cpu.HashBatchWidth > 0 &&
         std::isfinite(Model.Cpu.HashBatchLaneOverhead) &&
         Model.Cpu.HashBatchLaneOverhead >= 0.0 &&
         Model.Gpu.DedupBatchChunks > 0 &&
         Model.Gpu.CompressBatchChunks > 0 &&
         Model.Gpu.DecompressBatchChunks > 0 &&
         Model.Gpu.MixedKernelPenalty >= 1.0;
}

} // namespace padre
