//===----------------------------------------------------------------------===//
///
/// \file
/// The resource ledger: modelled busy-time accounting for the four
/// hardware resources of the paper's platform (CPU pool, GPU, PCIe link,
/// SSD).
///
/// The host running this reproduction has a single core and no GPU, so
/// wall-clock time cannot express the paper's parallel hardware. Instead
/// every operation executes *functionally* on host threads and *charges*
/// modelled busy time to this ledger using the calibrated constants in
/// sim/CostModel.h. Steady-state pipeline throughput is then
///
///   bytes processed / makespan,   makespan = max_r busy(r) / capacity(r)
///
/// i.e. the bottleneck resource determines throughput, assuming the
/// pipeline overlaps stages perfectly — the same first-order model the
/// paper's own throughput numbers reflect (see DESIGN.md §1).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SIM_RESOURCELEDGER_H
#define PADRE_SIM_RESOURCELEDGER_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace padre {

/// The modelled hardware resources.
enum class Resource : unsigned {
  CpuPool = 0, ///< all CPU hardware threads together (capacity = threads)
  Gpu = 1,     ///< the discrete GPU device (capacity = 1 device)
  Pcie = 2,    ///< the host<->device link (capacity = 1 link)
  Ssd = 3,     ///< the storage device (capacity = 1 device)
  /// A serialization point (capacity = 1): work charged here executes
  /// on the CPU *and* holds a global lock — used by the P-Dedupe-style
  /// serial-indexing baseline (bench_baselines).
  IndexLock = 4,
};

inline constexpr unsigned ResourceCount = 5;

/// Returns a human-readable resource name ("cpu", "gpu", "pcie", "ssd").
const char *resourceName(Resource R);

/// Bitmask helpers for selecting resources in makespan queries.
inline constexpr unsigned resourceBit(Resource R) {
  return 1u << static_cast<unsigned>(R);
}
inline constexpr unsigned AllResources =
    resourceBit(Resource::CpuPool) | resourceBit(Resource::Gpu) |
    resourceBit(Resource::Pcie) | resourceBit(Resource::Ssd) |
    resourceBit(Resource::IndexLock);
/// The compute-side resources: what the paper's "data reduction
/// throughput" measures (the SSD is reported as a separate baseline).
inline constexpr unsigned ComputeResources =
    resourceBit(Resource::CpuPool) | resourceBit(Resource::Gpu) |
    resourceBit(Resource::Pcie) | resourceBit(Resource::IndexLock);

/// One occupancy interval on a lane's scheduled timeline (modelled µs).
struct LaneInterval {
  double StartUs = 0.0;
  double EndUs = 0.0;
};

/// Thread-safe accumulator of modelled busy time per resource, plus a
/// few event counters used by the benchmark reports.
///
/// Besides the unconditional busy accumulators (whose sum is
/// order-independent and therefore identical for any stage
/// interleaving), the ledger keeps a *dependency-aware timeline*: one
/// free-clock per lane that `scheduleMicros` advances to
/// `max(lane free, inputs ready) + duration`. The batch scheduler
/// (core/BatchScheduler.h) replays each stage's charges onto this
/// timeline, so `timelineWallMicros` is the wall time of the
/// dependency-constrained schedule — serial at PipelineDepth=1, the
/// paper's Fig. 1 overlap at deeper windows — while the busy totals
/// stay depth-invariant.
class ResourceLedger {
public:
  ResourceLedger() { reset(); }

  /// Zeroes all accumulated time and counters (timeline included).
  void reset();

  /// Adds \p Micros microseconds of busy time to \p R. Negative or
  /// non-finite charges are invalid.
  void chargeMicros(Resource R, double Micros);

  /// Accumulated busy time of \p R in seconds.
  double busySeconds(Resource R) const;

  /// Accumulated busy time of \p R in microseconds. This is the span
  /// clock of the observability layer: obs::LaneSpan/StageSpan snapshot
  /// it around charge sites (see src/obs/TraceRecorder.h).
  double busyMicros(Resource R) const;

  /// Bottleneck makespan over the resources selected by \p Mask:
  /// max(busy(r) / capacity(r)). CPU capacity is \p CpuThreads parallel
  /// hardware threads; GPU capacity is \p GpuDevices modelled devices
  /// (the multi-GPU backend shares one busy accumulator across
  /// devices, so capacity — not busy — carries the device count);
  /// other resources have capacity one.
  double makespanSeconds(unsigned CpuThreads,
                         unsigned Mask = AllResources,
                         unsigned GpuDevices = 1) const;

  /// The resource that determines `makespanSeconds` for \p Mask.
  Resource bottleneck(unsigned CpuThreads,
                      unsigned Mask = AllResources,
                      unsigned GpuDevices = 1) const;

  /// Schedules \p DurUs of occupancy on lane \p R no earlier than
  /// \p ReadyUs (when the work's inputs exist): the lane's free clock
  /// advances to `max(free, ReadyUs) + DurUs` and the occupied
  /// interval is returned. Lanes are FIFO — successive calls on one
  /// lane never reorder — which is exactly a device queue (SSD command
  /// queue, GPU stream, DMA engine). CPU durations should be divided
  /// by the pool's thread count before scheduling (the lane models the
  /// pool at full width).
  ///
  /// With \p Backfill the task may instead be placed in the earliest
  /// idle gap left on the lane that both fits \p DurUs and starts no
  /// earlier than \p ReadyUs. Device queues must not use this (command
  /// order is part of their contract), but the CPU pool is a work-
  /// stealing scheduler, not a queue: a later-submitted batch whose
  /// inputs are ready runs while an earlier-submitted stage still
  /// waits on the GPU. This is what lets batch N+2's dedup proceed
  /// under batch N+1's kernel (the Fig. 1 overlap across batches).
  LaneInterval scheduleMicros(Resource R, double ReadyUs, double DurUs,
                              bool Backfill = false);

  /// Registers an extra timeline lane mirroring \p Mirror — a second
  /// device queue of the same resource kind (GPU 1's stream, its PCIe
  /// link, …). Returns the new lane id (>= ResourceCount), stable for
  /// the ledger's lifetime: resetTimeline() rewinds the lane's clock
  /// but keeps the registration. Busy time stays on the shared
  /// per-Resource accumulators — only the *scheduled timeline* fans
  /// out per device — which is what keeps charges bit-identical
  /// across device counts while the wall clock scales.
  unsigned addTimelineLane(Resource Mirror);

  /// Timeline lanes in existence: ResourceCount plus registered aux
  /// lanes. Lane ids [0, ResourceCount) are the resources themselves.
  unsigned timelineLaneCount() const;

  /// The resource an aux lane mirrors (identity for ids < ResourceCount).
  Resource laneMirror(unsigned LaneId) const;

  /// scheduleMicros by lane id: ids < ResourceCount address the
  /// resource lanes, ids from addTimelineLane address aux lanes.
  LaneInterval scheduleLaneMicros(unsigned LaneId, double ReadyUs,
                                  double DurUs, bool Backfill = false);

  /// Lane \p R's free-clock position (µs): when the next scheduled
  /// operation could start at the earliest.
  double laneFreeMicros(Resource R) const;

  /// Free clock of an arbitrary lane id (µs).
  double laneFreeMicrosAt(unsigned LaneId) const;

  /// Total duration scheduled onto lane \p R so far (µs), aux lanes
  /// mirroring \p R included — so the scheduled-equals-busy invariant
  /// holds per *resource* no matter how many device lanes fan it out.
  double laneScheduledMicros(Resource R) const;

  /// Wall time of the scheduled timeline: the latest lane free clock
  /// (µs). Zero until something is scheduled.
  double timelineWallMicros() const;

  /// Rewinds every lane free clock (and scheduled total) to zero
  /// without touching busy time. reset() includes this.
  void resetTimeline();

  /// Event counters (benchmark reporting only).
  void countKernelLaunch() { KernelLaunches.fetch_add(1); }
  void countHostToDevice(std::uint64_t Bytes) { BytesToDevice += Bytes; }
  void countDeviceToHost(std::uint64_t Bytes) { BytesFromDevice += Bytes; }

  std::uint64_t kernelLaunches() const { return KernelLaunches.load(); }
  std::uint64_t bytesToDevice() const { return BytesToDevice.load(); }
  std::uint64_t bytesFromDevice() const { return BytesFromDevice.load(); }

  /// One-line report "cpu=…s gpu=…s pcie=…s ssd=…s launches=…".
  std::string summary(unsigned CpuThreads) const;

private:
  // Busy time is stored as integer nanoseconds so charges can use plain
  // fetch_add (no atomic<double> CAS loops).
  std::atomic<std::uint64_t> BusyNanos[ResourceCount];
  std::atomic<std::uint64_t> KernelLaunches;
  std::atomic<std::uint64_t> BytesToDevice;
  std::atomic<std::uint64_t> BytesFromDevice;
  // Timeline state (mutex-guarded: scheduling is a per-stage replay,
  // not a hot path). One entry per timeline lane: the first
  // ResourceCount entries are the resources themselves, the rest are
  // aux device lanes from addTimelineLane.
  mutable std::mutex TimelineMutex;
  struct TimelineLane {
    Resource Mirror = Resource::CpuPool;
    double FreeUs = 0.0;
    double SchedUs = 0.0;
    /// Idle gaps left behind whenever a task started past the lane's
    /// free clock, sorted by start; backfill consumes them.
    std::vector<LaneInterval> GapsUs;
  };
  std::vector<TimelineLane> Lanes;
  LaneInterval scheduleLocked(unsigned LaneId, double ReadyUs,
                              double DurUs, bool Backfill);
};

} // namespace padre

#endif // PADRE_SIM_RESOURCELEDGER_H
