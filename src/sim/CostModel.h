//===----------------------------------------------------------------------===//
///
/// \file
/// The calibrated per-operation cost model for the paper's evaluation
/// platform (Intel i7-3770K, AMD Radeon HD 7970, Samsung SSD 830,
/// PaCT'17 §4). Engines execute every operation functionally and charge
/// these costs to the ResourceLedger; benchmark throughput is derived
/// from the ledger (see ResourceLedger.h).
///
/// Calibration: the constants were fitted so that the model reproduces
/// the paper's reported endpoints —
///   * CPU indexing 4.16–5.45x faster than GPU indexing (§3.1(3)),
///   * CPU-only parallel dedup ≈ 209 K IOPS and GPU-assisted ≈ +15%,
///     3x the SSD's ≈ 80 K IOPS (§4(1)),
///   * CPU compression ≈ 50 K IOPS at low ratio, GPU ≈ 100 K (§4(2)),
///   * integrated GPU-for-compression ≈ +89.7% over CPU-only (§4(3)).
/// EXPERIMENTS.md records the fit and per-constant rationale.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SIM_COSTMODEL_H
#define PADRE_SIM_COSTMODEL_H

#include <cstddef>
#include <cstdint>

namespace padre {

/// CPU-side costs (the i7-3770K's 8 hardware threads).
struct CpuCosts {
  /// Parallel hardware threads in the pool (4 cores x 2-way SMT).
  unsigned Threads = 8;
  /// Fixed storage-request path cost per chunk (request handling,
  /// metadata, buffer management) — charged once per incoming chunk in
  /// every pipeline configuration.
  double RequestOverheadUs = 20.0;
  /// Chunk boundary scan (fixed-size chunking is nearly free; CDC
  /// chunkers multiply this, see chunk/).
  double ChunkingPerByteNs = 0.05;
  /// SHA-1 fingerprinting (≈ 330 MB/s per thread on the paper's CPU).
  double HashPerByteNs = 3.05;
  /// Multi-buffer (SIMD) SHA-1 lanes per batched hash call. The batch
  /// runs W independent block chains in lockstep (hash/Sha1Batch.h), so
  /// a lane group costs roughly one chunk's serial time instead of W —
  /// the per-chunk cost divides by ~W. Width 1 is exactly the serial
  /// path (cpuHashBatchUs reduces bit-for-bit to cpuHashUs).
  unsigned HashBatchWidth = 1;
  /// Per-extra-lane overhead of the multi-buffer kernel, as a fraction
  /// of the group's lockstep time: transposing message words into lane
  /// order and the widest lane gating the group. An 8-lane group costs
  /// maxLaneBytes x HashPerByteNs x (1 + 7 x this) — ≈ 7x speedup at
  /// width 8, matching measured multi-buffer SHA-1 kernels rather than
  /// the ideal 8x.
  double HashBatchLaneOverhead = 0.02;
  /// One bin probe in the steady-state pipeline (random bin, cold
  /// caches: buffer scan miss followed by a tree descent with DRAM
  /// misses).
  double IndexProbeUs = 2.8;
  /// A probe satisfied by the bin buffer (§3.3 temporal locality): a
  /// short scan of the recently-touched staging area, no tree descent.
  double IndexProbeBufferUs = 1.0;
  /// One bin probe in a tight microbenchmark loop (hot caches); used by
  /// the §3.1(3) preliminary indexing comparison.
  double IndexProbeHotUs = 0.30;
  /// Index maintenance per unique chunk, amortized: scatter to the bin
  /// bucket, bin-buffer insert, and the buffer->tree flush share.
  double IndexMaintainUs = 3.0;
  /// LZ compression: fixed setup per chunk plus per-byte costs split by
  /// how the byte is covered (literal bytes are scanned and re-hashed;
  /// match-covered bytes are skipped faster). Incompressible data is
  /// all-literals and therefore slowest — this reproduces the paper's
  /// "throughput is high when the compression ratio is high".
  double LzSetupUs = 20.0;
  double LzLiteralPerByteNs = 26.9;
  double LzMatchPerByteNs = 17.8;
  /// Post-processing (refinement) of a GPU-compressed chunk: merging
  /// lane outputs into the canonical stream.
  double PostSetupUs = 14.5;
  double PostPerByteNs = 3.9; ///< per compressed output byte
  /// Post-processing when the GPU result fell back to store-raw.
  double StoreRawPostUs = 5.0;
  /// LZ decompression (read path), per original byte.
  double DecompressPerByteNs = 2.5;
  /// Fixed per-chunk decode-call setup on the batched restore path
  /// (block header parse, CRC check, output allocation). The serial
  /// `readChunk` path folds this into its per-byte charge; the restore
  /// engine models it explicitly so shallow batches pay the true fixed
  /// costs. (See src/restore/ReadPipeline.h.)
  double DecompressSetupUs = 6.0;
  /// GPU-decode pre-parse on the CPU: one serial walk of the token
  /// stream to split it into lane segments (token boundaries + output
  /// offsets). Mirrors PostSetupUs/PostPerByteNs on the write side —
  /// decompression's CPU stage runs *before* the kernel instead of
  /// after it. Charged per payload byte scanned.
  double PlanSetupUs = 2.0;
  double PlanPerByteNs = 1.2;
  /// Warp-decode pre-parse on the CPU: reading a v2 frame header (see
  /// compress/SubBlockFrame.h) to build the sub-block table. O(N) in
  /// the sub-block count instead of O(payload) — the compress-time
  /// framing is what buys this down from PlanSetupUs + PlanPerByteNs x
  /// payload. Charged once per framed chunk.
  double FramePlanUs = 0.4;
  /// Optional Huffman entropy stage (extension): per token byte
  /// encoded or decoded (two passes + bit packing).
  double HuffmanPerByteNs = 6.0;
  /// Optional verify-on-dedup (extension): byte comparison of an
  /// incoming chunk against the stored copy its digest matched.
  double VerifyPerByteNs = 0.25;
  /// Read-cache hit: copying a decompressed chunk out of DRAM.
  double CacheCopyPerByteNs = 0.15;
};

/// GPU-side costs (the Radeon HD 7970 over PCIe 2.0).
struct GpuCosts {
  /// False on platforms without a GPU (Calibrator then never offloads).
  bool Present = true;
  /// Fixed kernel-launch latency — the "inevitable time at which the
  /// GPU kernel starts" (§3.1(3)) that caps GPU indexing performance.
  double LaunchUs = 50.0;
  /// SHA-1 on the device (per byte, at full occupancy).
  double HashPerByteNs = 0.60;
  /// One probe of a GPU-resident bin (linear-scan lockstep compare) in
  /// the steady-state pipeline.
  double ProbePerEntryUs = 1.2;
  /// Lane-parallel LZ compression, charged per *wavefront*: lanes run
  /// in lockstep, so a chunk's kernel cost is
  ///   lanes x max over lanes (LaneSetupNs + literals x LzLiteral +
  ///                            match bytes x LzMatch)
  /// — divergence between literal-heavy and match-heavy lanes is paid
  /// by every lane in the wavefront (§3.1(2): "GPU threads in the same
  /// workgroup run the same command regardless of branching").
  double LaneSetupNs = 95.0;
  double LzLiteralPerByteNs = 2.05;
  double LzMatchPerByteNs = 1.8;
  /// Multiplier applied to every GPU cost while kernels from both
  /// reduction operations share the device (integration mode GpuBoth):
  /// interleaved small indexing kernels break compression batching and
  /// reduce occupancy.
  double MixedKernelPenalty = 1.30;
  /// Chunks per indexing kernel. Small: inline dedup cannot delay
  /// requests long enough to build large batches, so launch latency is
  /// poorly amortized (this is why GPU indexing loses to CPU indexing).
  unsigned DedupBatchChunks = 8;
  /// Chunks per compression kernel. Compression tolerates deeper
  /// batching because unique chunks are already buffered for destage.
  unsigned CompressBatchChunks = 256;
  /// Lane-parallel LZ *decompression* (read path), charged per
  /// wavefront under the same lockstep rule as compression:
  ///   lanes x max over lanes (DecLaneSetupNs
  ///                           + literals x DecLiteral
  ///                           + match bytes x DecMatch
  ///                           + token-kind switches x DecDivergence)
  /// Decoding has no match search, so the per-byte rates are far below
  /// the compression rates; what it does have is *control-flow
  /// divergence* — every literal/match token boundary is a branch, and
  /// lanes whose token mixes differ replay each other's paths (CODAG's
  /// characterization; see PAPERS.md). DecDivergencePerTokenNs prices
  /// one token-kind transition inside a lane.
  double DecLaneSetupNs = 60.0;
  double DecLiteralPerByteNs = 0.20;
  double DecMatchPerByteNs = 0.14;
  double DecDivergencePerTokenNs = 2.0;
  /// Chunks per decompression kernel. Reads tolerate deep batching the
  /// same way destage does — the restore engine gathers fetches before
  /// decoding — but shallow read bursts leave the launch latency
  /// unamortized (the CPU/GPU crossover bench_read sweeps).
  unsigned DecompressBatchChunks = 256;
  /// Warp-cooperative LZ decompression of v2 framed payloads (CODAG's
  /// reader-warp design; see compress/GpuWarpDecompressor.h). One warp
  /// owns one sub-block: a reader sub-warp streams tokens while the
  /// decoder lanes expand them, so divergence is paid per *token* on
  /// the narrow reader path rather than per lockstep wavefront — that
  /// is why WarpDivergencePerTokenNs is far below
  /// DecDivergencePerTokenNs. Warps are independent (no cross-warp
  /// lockstep), so a chunk's kernel cost is the *sum* of its
  /// sub-block costs:
  ///   sum over sub-blocks (WarpSubBlockSetupNs + WarpSyncNs
  ///                        + tokens x WarpReaderPerTokenNs
  ///                        + output bytes x WarpDecoderPerByteNs
  ///                        + token switches x WarpDivergencePerTokenNs
  ///                        + overlap matches x WarpOverlapPerMatchNs)
  /// WarpOverlapPerMatchNs prices Gompresso's bit-parallel resolution
  /// of self-overlapping matches (distance < length): the decoder
  /// lanes must serialise the replicated copy in log-steps instead of
  /// one parallel gather.
  double WarpSubBlockSetupNs = 100.0;
  double WarpReaderPerTokenNs = 1.1;
  double WarpDecoderPerByteNs = 0.055;
  double WarpDivergencePerTokenNs = 0.5;
  double WarpOverlapPerMatchNs = 6.0;
  double WarpSyncNs = 120.0;
  /// Work-queue doorbell for the *persistent* warp-decode kernel: the
  /// first warp batch pays LaunchUs to start the kernel; while it stays
  /// resident, subsequent batches only ring the doorbell (one mapped
  /// write + device-side dequeue). This is what moves the read
  /// crossover below batch depth 16 — LaunchUs per batch alone would
  /// keep the GPU losing until depth ~25.
  double WarpDoorbellUs = 4.0;
  /// Device memory budget for the GPU bin table, in MiB. Bounds which
  /// fraction of the index is GPU-resident (random replacement).
  double DeviceMemoryMiB = 512.0;
};

/// Host<->device link costs (PCIe 2.0 x16, effective).
struct PcieCosts {
  double GigabytesPerSec = 8.0;
  /// Fixed DMA setup per transfer.
  double PerTransferUs = 2.5;
};

/// SSD costs (Samsung SSD 830 profile). The paper quotes ≈ 80 K IOPS as
/// "the throughput of the SSD" for 4 KiB operations; sequential rates
/// are the device's data-sheet class.
struct SsdCosts {
  double SeqWriteMBps = 320.0;
  double SeqReadMBps = 500.0;
  double RandWrite4KUs = 12.5; ///< ≈ 80 K IOPS
  double RandRead4KUs = 12.5;  ///< ≈ 80 K IOPS
  /// Fixed per-command overhead for sequential streams.
  double SeqCommandUs = 20.0;
  /// Flash-translation-layer write amplification applied to NAND-byte
  /// accounting: sequential streams map almost 1:1; random page writes
  /// trigger garbage-collection copies.
  double SequentialWaf = 1.05;
  double RandomWaf = 1.5;
  /// FTL overhead costs (only charged when the page-level FTL is
  /// enabled; see ssd/Ftl.h): a GC relocation is one page read plus
  /// one page program, and reclaiming a block costs an erase.
  double FtlGcPageReadUs = 10.0;
  double FtlGcPageProgramUs = 12.0;
  double FtlBlockEraseUs = 1800.0;
};

/// The full calibrated platform cost model plus derived-cost helpers.
struct CostModel {
  CpuCosts Cpu;
  GpuCosts Gpu;
  PcieCosts Pcie;
  SsdCosts Ssd;

  /// CPU SHA-1 cost for \p Bytes input bytes, in microseconds.
  double cpuHashUs(std::size_t Bytes) const {
    return Cpu.HashPerByteNs * 1e-3 * static_cast<double>(Bytes);
  }

  /// CPU multi-buffer SHA-1 cost for one lane group, in microseconds.
  /// \p MaxLaneBytes is the longest lane's length (lockstep: the group
  /// runs until its widest lane finishes) and \p Lanes the group's
  /// actual width — the tail group of a batch may be narrower than
  /// Cpu.HashBatchWidth. At Lanes == 1 the factor is exactly 1.0, so a
  /// width-1 batch charges bit-identically to cpuHashUs.
  double cpuHashBatchUs(std::size_t MaxLaneBytes, unsigned Lanes) const {
    return cpuHashUs(MaxLaneBytes) *
           (1.0 + Cpu.HashBatchLaneOverhead *
                      static_cast<double>(Lanes - 1));
  }

  /// GPU SHA-1 cost for \p Bytes input bytes (exclusive of launch and
  /// transfer), in microseconds.
  double gpuHashUs(std::size_t Bytes) const {
    return Gpu.HashPerByteNs * 1e-3 * static_cast<double>(Bytes);
  }

  /// CPU LZ cost given the functional outcome of compressing a chunk:
  /// \p LiteralBytes emitted as literals, \p MatchBytes covered by
  /// matches.
  double cpuCompressUs(std::size_t LiteralBytes,
                       std::size_t MatchBytes) const {
    return Cpu.LzSetupUs +
           Cpu.LzLiteralPerByteNs * 1e-3 * static_cast<double>(LiteralBytes) +
           Cpu.LzMatchPerByteNs * 1e-3 * static_cast<double>(MatchBytes);
  }

  /// One GPU lane's LZ cost in microseconds, from its functional
  /// outcome. A chunk's kernel cost is `lanes x max(lane costs)` — the
  /// lockstep rule (see GpuCosts::LaneSetupNs).
  double gpuLaneUs(std::size_t LiteralBytes, std::size_t MatchBytes) const {
    return 1e-3 * (Gpu.LaneSetupNs +
                   Gpu.LzLiteralPerByteNs *
                       static_cast<double>(LiteralBytes) +
                   Gpu.LzMatchPerByteNs * static_cast<double>(MatchBytes));
  }

  /// One GPU lane's LZ *decode* cost in microseconds, from the token
  /// mix it decodes: \p LiteralBytes copied from the stream,
  /// \p MatchBytes copied from history, \p TokenSwitches transitions
  /// between literal and match tokens (the divergence driver). A
  /// chunk's kernel cost is `lanes x max(lane costs)` — the same
  /// lockstep rule as gpuLaneUs.
  double gpuDecodeLaneUs(std::size_t LiteralBytes, std::size_t MatchBytes,
                         std::size_t TokenSwitches) const {
    return 1e-3 *
           (Gpu.DecLaneSetupNs +
            Gpu.DecLiteralPerByteNs * static_cast<double>(LiteralBytes) +
            Gpu.DecMatchPerByteNs * static_cast<double>(MatchBytes) +
            Gpu.DecDivergencePerTokenNs * static_cast<double>(TokenSwitches));
  }

  /// One sub-block's cost under the warp-cooperative decode kernel, in
  /// microseconds: \p Tokens streamed by the reader sub-warp,
  /// \p OutputBytes expanded by the decoder lanes, \p TokenSwitches
  /// literal/match transitions, \p OverlapMatches self-overlapping
  /// matches (distance < length). A chunk's kernel cost is the sum
  /// over its sub-blocks — warps are independent, unlike the lockstep
  /// lanes of gpuDecodeLaneUs (see GpuCosts::WarpSubBlockSetupNs).
  double gpuWarpSubBlockUs(std::size_t Tokens, std::size_t OutputBytes,
                           std::size_t TokenSwitches,
                           std::size_t OverlapMatches) const {
    return 1e-3 *
           (Gpu.WarpSubBlockSetupNs + Gpu.WarpSyncNs +
            Gpu.WarpReaderPerTokenNs * static_cast<double>(Tokens) +
            Gpu.WarpDecoderPerByteNs * static_cast<double>(OutputBytes) +
            Gpu.WarpDivergencePerTokenNs *
                static_cast<double>(TokenSwitches) +
            Gpu.WarpOverlapPerMatchNs * static_cast<double>(OverlapMatches));
  }

  /// CPU post-processing (refinement) cost for a GPU-compressed chunk
  /// whose output payload is \p CompressedBytes; \p StoredRaw selects
  /// the cheap fallback path.
  double cpuPostprocessUs(std::size_t CompressedBytes, bool StoredRaw) const {
    if (StoredRaw)
      return Cpu.StoreRawPostUs;
    return Cpu.PostSetupUs +
           Cpu.PostPerByteNs * 1e-3 * static_cast<double>(CompressedBytes);
  }

  /// PCIe transfer cost for one DMA of \p Bytes, in microseconds.
  double pcieTransferUs(std::size_t Bytes) const {
    return Pcie.PerTransferUs +
           static_cast<double>(Bytes) / (Pcie.GigabytesPerSec * 1e3);
  }

  /// SSD sequential write/read cost for \p Bytes, in microseconds.
  double ssdSeqWriteUs(std::size_t Bytes) const {
    return Ssd.SeqCommandUs +
           static_cast<double>(Bytes) / Ssd.SeqWriteMBps;
  }
  double ssdSeqReadUs(std::size_t Bytes) const {
    return Ssd.SeqCommandUs + static_cast<double>(Bytes) / Ssd.SeqReadMBps;
  }
};

/// Returns true if every constant in \p Model is finite and positive.
bool isValidCostModel(const CostModel &Model);

} // namespace padre

#endif // PADRE_SIM_COSTMODEL_H
