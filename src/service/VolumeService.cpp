//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-tenant volume service implementation.
///
//===----------------------------------------------------------------------===//

#include "service/VolumeService.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace padre;

namespace {

/// Applies the ServiceConfig::ConcurrentIndex convenience switch to the
/// nested pipeline config before anything is built from it.
ServiceConfig withConcurrentIndex(ServiceConfig Config) {
  if (Config.ConcurrentIndex)
    Config.Pipeline.Dedup.Index.Concurrent = true;
  return Config;
}

} // namespace

VolumeService::VolumeService(const Platform &Plat,
                             const ServiceConfig &Config)
    : Config(withConcurrentIndex(Config)),
      Pipeline(Plat, this->Config.Pipeline),
      Tracker(std::make_shared<ChunkRefTracker>()) {
  obs::MetricsRegistry *Metrics = Config.Pipeline.Metrics;
  if (!Metrics)
    return;
  LocalityHist = &Metrics->histogram(
      "padre_svc_locality_score",
      "Per-tenant locality score (EWMA of inline duplicate fractions)",
      1.0 / 1024.0, 2.0, 11);
  const DedupEngine *Engine = Pipeline.dedupEngine();
  if (!Engine)
    return;
  const unsigned Shards = Engine->index().shardCount();
  for (unsigned S = 0; S < Shards; ++S) {
    const std::string Label = "{shard=\"" + std::to_string(S) + "\"}";
    ShardEntriesGauges.push_back(&Metrics->gauge(
        "padre_svc_shard_entries" + Label,
        "Bin-tree entries resident in this index shard"));
    ShardHitsGauges.push_back(&Metrics->gauge(
        "padre_svc_shard_hits" + Label,
        "Cumulative duplicate hits resolved by this index shard"));
    ShardMemoryGauges.push_back(&Metrics->gauge(
        "padre_svc_shard_memory_bytes" + Label,
        "Index memory occupied by this shard (tree + buffered)"));
  }
}

VolumeService::TenantId
VolumeService::addTenant(const std::string &Name,
                         const TenantConfig &TenantCfg) {
  TenantState T;
  T.Name = Name;
  T.Config = TenantCfg;
  VolumeConfig VolCfg;
  VolCfg.BlockCount = TenantCfg.Blocks;
  T.Vol = std::make_unique<Volume>(Pipeline, VolCfg, Tracker);
  if (obs::MetricsRegistry *Metrics = Config.Pipeline.Metrics) {
    const std::string Label = "{tenant=\"" + Name + "\"}";
    T.AdmittedCtr = &Metrics->counter(
        "padre_svc_admitted_bytes_total" + Label,
        "Bytes dispatched through the inline reduction path");
    T.DeferredCtr = &Metrics->counter(
        "padre_svc_deferred_bytes_total" + Label,
        "Bytes dispatched raw for deferred (post-process) dedup");
    T.RejectedCtr = &Metrics->counter(
        "padre_svc_rejected_bytes_total" + Label,
        "Bytes refused at admission by the tenant quota");
  }
  Tenants.push_back(std::move(T));
  return static_cast<TenantId>(Tenants.size() - 1);
}

std::size_t VolumeService::entryBytes() const {
  if (const DedupEngine *Engine = Pipeline.dedupEngine())
    return Engine->index().layout().cpuEntryBytes();
  return Fingerprint::Size + sizeof(std::uint64_t);
}

bool VolumeService::submitWrite(TenantId Tenant, std::uint64_t Lba,
                                ByteSpan Data) {
  assert(Tenant < Tenants.size() && "Unknown tenant");
  TenantState &T = Tenants[Tenant];
  const std::size_t BlockSize = Pipeline.config().ChunkSize;
  if (Data.empty() || Data.size() % BlockSize != 0)
    return false;
  const std::uint64_t Blocks = Data.size() / BlockSize;
  if (Lba + Blocks > T.Config.Blocks || Lba + Blocks < Lba)
    return false;
  // Quota admission: every byte this tenant has ever had accepted
  // (queued, inline or deferred) counts against the logical quota.
  if (T.Config.QuotaBytes != 0) {
    const std::uint64_t Accepted =
        T.QueuedBytes + T.AdmittedBytes + T.DeferredBytes;
    if (Accepted + Data.size() > T.Config.QuotaBytes) {
      T.RejectedBytes += Data.size();
      if (T.RejectedCtr)
        T.RejectedCtr->add(Data.size());
      return false;
    }
  }
  PendingWrite W;
  W.Lba = Lba;
  W.Data.assign(Data.begin(), Data.end());
  T.QueuedBytes += Data.size();
  T.Queue.push_back(std::move(W));
  return true;
}

void VolumeService::noteInlineRun(TenantState &T,
                                  std::span<const ChunkWriteInfo> Info) {
  if (Info.empty())
    return;
  std::size_t Dups = 0;
  for (const ChunkWriteInfo &I : Info) {
    if (I.Outcome == LookupOutcome::Unique) {
      if (Config.IndexMemoryBudget != 0)
        T.TrackedFps.push_back(I.Fp);
    } else {
      ++Dups;
    }
  }
  T.PeakTrackedFps = std::max(T.PeakTrackedFps, T.TrackedFps.size());
  const double Fraction =
      static_cast<double>(Dups) / static_cast<double>(Info.size());
  T.Locality = Config.LocalityAlpha * Fraction +
               (1.0 - Config.LocalityAlpha) * T.Locality;
  if (LocalityHist)
    LocalityHist->observe(T.Locality);
}

bool VolumeService::decideInline(TenantState &T) {
  const bool Probe =
      !T.Resident && Config.ProbePeriodRounds != 0 &&
      Round - T.LastInlineRound >= Config.ProbePeriodRounds;
  const bool Inline = T.Resident || Probe;
  // Marked at decision time (not after the write) so a probing
  // tenant's later picks this round see the probe spent — the decision
  // sequence matches per-run dispatch exactly.
  if (Inline)
    T.LastInlineRound = Round;
  return Inline;
}

void VolumeService::dispatchOne(TenantState &T, PendingWrite &W) {
  ++DispatchSeq;
  const ByteSpan Data(W.Data.data(), W.Data.size());
  if (decideInline(T)) {
    const obs::StageSpan Span(Pipeline.config().Trace, Pipeline.ledger(),
                              "svc:dispatch", obs::CategorySvc);
    std::vector<ChunkWriteInfo> Info;
    if (T.Vol->writeBlocks(W.Lba, Data, &Info)) {
      T.AdmittedBytes += W.Data.size();
      if (T.AdmittedCtr)
        T.AdmittedCtr->add(W.Data.size());
      noteInlineRun(T, Info);
    }
  } else {
    const obs::StageSpan Span(Pipeline.config().Trace, Pipeline.ledger(),
                              "svc:defer", obs::CategorySvc);
    if (T.Vol->writeBlocksRaw(W.Lba, Data)) {
      T.DeferredBytes += W.Data.size();
      if (T.DeferredCtr)
        T.DeferredCtr->add(W.Data.size());
      T.NeedsSweep = true;
    }
  }
  T.LastDispatchSeq = DispatchSeq;
}

bool VolumeService::pump() {
  ++Round;
  bool Any = false;
  const std::uint64_t BlockSize = Pipeline.config().ChunkSize;
  std::vector<Pick> Picks;
  for (TenantState &T : Tenants) {
    if (T.Queue.empty()) {
      T.CreditBytes = 0; // no banking while idle (classic DRR)
      continue;
    }
    T.CreditBytes +=
        T.Config.Weight * Config.DispatchRunBlocks * BlockSize;
    while (!T.Queue.empty() &&
           T.Queue.front().Data.size() <= T.CreditBytes) {
      PendingWrite W = std::move(T.Queue.front());
      T.Queue.pop_front();
      T.QueuedBytes -= W.Data.size();
      T.CreditBytes -= W.Data.size();
      if (Config.CoalesceDispatch) {
        Pick P;
        P.T = &T;
        P.W = std::move(W);
        P.Inline = decideInline(T);
        Picks.push_back(std::move(P));
      } else {
        dispatchOne(T, W);
      }
      Any = true;
    }
  }
  if (!Picks.empty())
    dispatchCoalesced(Picks);
  if (Any) {
    rescoreResidency();
    updateShardMetrics();
  }
  return Any;
}

void VolumeService::dispatchCoalesced(std::vector<Pick> &Picks) {
  const std::size_t BlockSize = Pipeline.config().ChunkSize;
  std::size_t I = 0;
  while (I < Picks.size()) {
    if (!Picks[I].Inline) {
      TenantState &T = *Picks[I].T;
      ++DispatchSeq;
      const obs::StageSpan Span(Pipeline.config().Trace, Pipeline.ledger(),
                                "svc:defer", obs::CategorySvc);
      const ByteSpan Data(Picks[I].W.Data.data(), Picks[I].W.Data.size());
      if (T.Vol->writeBlocksRaw(Picks[I].W.Lba, Data)) {
        T.DeferredBytes += Picks[I].W.Data.size();
        if (T.DeferredCtr)
          T.DeferredCtr->add(Picks[I].W.Data.size());
        T.NeedsSweep = true;
      }
      T.LastDispatchSeq = DispatchSeq;
      ++I;
      continue;
    }
    // A maximal run of consecutive inline picks becomes one combined
    // ingest: batches span runs, so the overlap window stays full.
    std::size_t End = I;
    std::vector<ByteSpan> Streams;
    while (End < Picks.size() && Picks[End].Inline) {
      Streams.emplace_back(Picks[End].W.Data.data(),
                           Picks[End].W.Data.size());
      ++End;
    }
    std::vector<ChunkWriteInfo> Infos;
    {
      const obs::StageSpan Span(Pipeline.config().Trace, Pipeline.ledger(),
                                "svc:dispatch", obs::CategorySvc);
      Pipeline.writeV(Streams, &Infos);
    }
    // Partition the per-chunk outcomes back to each pick's volume.
    std::size_t Consumed = 0;
    for (; I < End; ++I) {
      TenantState &T = *Picks[I].T;
      ++DispatchSeq;
      const std::size_t Blocks = Picks[I].W.Data.size() / BlockSize;
      const std::span<const ChunkWriteInfo> Slice(Infos.data() + Consumed,
                                                  Blocks);
      Consumed += Blocks;
      T.Vol->applyChunkWrites(Picks[I].W.Lba, Slice);
      T.AdmittedBytes += Picks[I].W.Data.size();
      if (T.AdmittedCtr)
        T.AdmittedCtr->add(Picks[I].W.Data.size());
      noteInlineRun(T, Slice);
      T.LastDispatchSeq = DispatchSeq;
    }
    assert(Consumed == Infos.size() && "Pipeline chunking disagrees");
  }
}

void VolumeService::drain() {
  while (pump())
    ;
}

void VolumeService::demote(TenantState &T) {
  for (const Fingerprint &Fp : T.TrackedFps)
    Pipeline.dropIndexEntry(Fp);
  T.TrackedFps.clear();
  T.Resident = false;
}

void VolumeService::rescoreResidency() {
  // No budget (or a lone tenant) means no cache tier: everything stays
  // resident and the service remains a bit-identical pass-through.
  if (Config.IndexMemoryBudget == 0 || Tenants.size() <= 1)
    return;
  std::vector<std::size_t> Order(Tenants.size());
  std::iota(Order.begin(), Order.end(), 0);
  if (Config.Policy == CachePolicy::Prioritized) {
    std::stable_sort(Order.begin(), Order.end(),
                     [&](std::size_t A, std::size_t B) {
                       return Tenants[A].Locality > Tenants[B].Locality;
                     });
  } else {
    std::stable_sort(Order.begin(), Order.end(),
                     [&](std::size_t A, std::size_t B) {
                       return Tenants[A].LastDispatchSeq >
                              Tenants[B].LastDispatchSeq;
                     });
  }
  std::size_t Remaining = Config.IndexMemoryBudget;
  bool First = true;
  for (std::size_t Id : Order) {
    TenantState &T = Tenants[Id];
    const std::size_t Footprint =
        std::max(T.PeakTrackedFps, T.TrackedFps.size()) * entryBytes();
    // The best-ranked tenant is always admitted — an empty resident
    // set would make the budget a pure post-process system.
    const bool Admit = First || Footprint <= Remaining;
    First = false;
    Remaining -= std::min(Footprint, Remaining);
    if (Admit) {
      T.Resident = true;
    } else if (T.Resident || !T.TrackedFps.empty()) {
      // Demotion frees the tenant's index entries (including any a
      // probe run inserted while it was already non-resident).
      demote(T);
    }
  }
}

ServiceSweepStats VolumeService::sweepDeferred() {
  ServiceSweepStats Stats;
  for (TenantState &T : Tenants) {
    if (!T.NeedsSweep)
      continue;
    const obs::StageSpan Span(Pipeline.config().Trace, Pipeline.ledger(),
                              "svc:sweep", obs::CategorySvc);
    std::vector<ChunkWriteInfo> Info;
    const BackgroundReduceStats SweepStats =
        backgroundReduce(*T.Vol, Config.SweepRunBlocks, &Info);
    T.NeedsSweep = false;
    ++Stats.TenantsSwept;
    Stats.BlocksProcessed += SweepStats.BlocksProcessed;
    Stats.ChunksCollected += SweepStats.ChunksCollected;
    if (Config.IndexMemoryBudget == 0)
      continue;
    if (T.Resident) {
      // A resident tenant keeps what the sweep inserted, on budget.
      noteInlineRun(T, Info);
      continue;
    }
    // Post-process entries of a non-resident tenant are transient: the
    // sweep needed them to find duplicates within the run, but the
    // inline budget does not cover them. Each Unique rewrite inserted
    // its fingerprint; the sweep's own GC pass may have dropped it
    // already (the dead raw original shares the fingerprint), so the
    // drop below is a no-op in that case — either way the entry is no
    // longer resident once this loop finishes.
    for (const ChunkWriteInfo &I : Info) {
      if (I.Outcome != LookupOutcome::Unique)
        continue;
      Pipeline.dropIndexEntry(I.Fp);
      ++Stats.EntriesExpired;
    }
  }
  updateShardMetrics();
  return Stats;
}

void VolumeService::finish() {
  drain();
  Pipeline.finish();
  updateShardMetrics();
}

std::optional<ByteVector> VolumeService::readBlocks(TenantId Tenant,
                                                    std::uint64_t Lba,
                                                    std::uint64_t Count) {
  assert(Tenant < Tenants.size() && "Unknown tenant");
  return Tenants[Tenant].Vol->readBlocks(Lba, Count);
}

TenantStats VolumeService::tenantStats(TenantId Tenant) const {
  assert(Tenant < Tenants.size() && "Unknown tenant");
  const TenantState &T = Tenants[Tenant];
  TenantStats Stats;
  Stats.Name = T.Name;
  Stats.QueuedBytes = T.QueuedBytes;
  Stats.AdmittedBytes = T.AdmittedBytes;
  Stats.DeferredBytes = T.DeferredBytes;
  Stats.RejectedBytes = T.RejectedBytes;
  Stats.LocalityScore = T.Locality;
  Stats.Resident = T.Resident;
  Stats.TrackedEntries = T.TrackedFps.size();
  return Stats;
}

void VolumeService::updateShardMetrics() {
  if (ShardEntriesGauges.empty())
    return;
  const DedupEngine *Engine = Pipeline.dedupEngine();
  if (!Engine)
    return;
  const FingerprintIndex &Index = Engine->index();
  for (unsigned S = 0; S < ShardEntriesGauges.size(); ++S) {
    const IndexShardStats Stats = Index.shardStats(S);
    ShardEntriesGauges[S]->set(static_cast<double>(Stats.TreeEntries));
    ShardHitsGauges[S]->set(static_cast<double>(
        Stats.BufferHits + Stats.TreeHits + Stats.GpuHits));
    ShardMemoryGauges[S]->set(static_cast<double>(Stats.MemoryBytes));
  }
}
