//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-tenant volume service: N tenant volumes behind an
/// admission/dispatch front-end, all sharing one inline reduction
/// pipeline, one chunk reference domain and one global fingerprint
/// index (optionally sharded by digest prefix,
/// index/ShardedFingerprintIndex.h). This is the ROADMAP's "many
/// users over one dedup domain" tier built from existing parts — the
/// StoragePool sharing pattern plus three service-only mechanisms:
///
///   * per-tenant quotas — a submitted write that would push the
///     tenant past its logical-byte quota is rejected at admission,
///     before it can consume any modelled resource;
///   * weighted-fair dispatch — queued writes drain in deficit
///     round-robin order, each tenant earning Weight x
///     DispatchRunBlocks blocks of credit per round, so one noisy
///     neighbour cannot starve the rest of the shared pipeline;
///   * an HPDedup-style hybrid prioritized cache tier — per-tenant
///     locality scores (EWMA of each inline run's duplicate fraction)
///     decide which tenants' fingerprints stay memory-resident under
///     the index budget; demoted tenants write raw and are deduplicated
///     later by the BackgroundReducer post-process pass (deferred
///     dedup), with their transient index entries expired afterwards.
///
/// With the defaults (no budget, one tenant) the service is a pure
/// pass-through: results and ledger charges are bit-identical to
/// driving a Volume directly, at every index shard count
/// (tests/test_service.cpp). See SERVICE.md for the full architecture.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SERVICE_VOLUMESERVICE_H
#define PADRE_SERVICE_VOLUMESERVICE_H

#include "core/BackgroundReducer.h"
#include "core/ReductionPipeline.h"
#include "core/Volume.h"

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace padre {

/// Inline-cache admission policy for the shared fingerprint index.
enum class CachePolicy {
  /// HPDedup-style: admit tenants by locality score (descending) while
  /// their projected index footprints fit the budget.
  Prioritized,
  /// Baseline: admit by dispatch recency (most recent first) — the
  /// policy E8 shows losing dedup ratio per MB under interference.
  Lru,
};

/// Per-tenant knobs.
struct TenantConfig {
  /// Addressable blocks of the tenant's volume.
  std::uint64_t Blocks = 1 << 16;
  /// Logical-byte quota across accepted writes (0 = unlimited). A
  /// submit that would exceed it is rejected at admission.
  std::uint64_t QuotaBytes = 0;
  /// Weighted-fair dispatch share (credit per round scales with it).
  unsigned Weight = 1;
};

/// Service-wide knobs.
struct ServiceConfig {
  /// Shared pipeline (set Pipeline.Dedup.Index.Shards for the sharded
  /// global index; obs sinks and fault plans attach here too).
  PipelineConfig Pipeline;
  /// Fingerprint-index memory budget for the prioritized cache tier
  /// (bytes). 0 = unlimited: every tenant stays inline-resident and
  /// the service is a pure pass-through.
  std::size_t IndexMemoryBudget = 0;
  CachePolicy Policy = CachePolicy::Prioritized;
  /// Blocks of dispatch credit per weight unit per round.
  std::uint64_t DispatchRunBlocks = 64;
  /// EWMA smoothing factor for per-tenant locality scores.
  double LocalityAlpha = 0.25;
  /// A demoted tenant gets one inline "probe" run every this many
  /// rounds so a stream that turns hot can re-earn residency.
  std::uint64_t ProbePeriodRounds = 8;
  /// Run length of the deferred-dedup background sweeps.
  std::uint64_t SweepRunBlocks = 64;
  /// Convenience switch for the lock-free concurrent index
  /// (index/ConcurrentBinIndex.h): sets
  /// Pipeline.Dedup.Index.Concurrent before the pipeline is built, so
  /// service callers opt in without reaching three configs deep.
  /// Observationally equivalent to the serial index on the service's
  /// single-threaded dispatch loop (tests/test_service.cpp).
  bool ConcurrentIndex = false;
  /// Coalesced dispatch: each fair-share round's inline runs are
  /// ingested as ONE combined pipeline write
  /// (ReductionPipeline::writeV), so batches span runs and fill the
  /// batch scheduler's overlap window instead of under-filling one
  /// batch per run. Chunk order is preserved — locations, recipes and
  /// read-back stay bit-identical to per-run dispatch; only the batch
  /// grouping (and so the modelled overlap) changes. Off by default:
  /// per-run dispatch remains the bit-identical pass-through baseline.
  bool CoalesceDispatch = false;
};

/// Point-in-time view of one tenant.
struct TenantStats {
  std::string Name;
  std::uint64_t QueuedBytes = 0;   ///< accepted, not yet dispatched
  std::uint64_t AdmittedBytes = 0; ///< dispatched through inline dedup
  std::uint64_t DeferredBytes = 0; ///< dispatched raw (deferred dedup)
  std::uint64_t RejectedBytes = 0; ///< refused at admission (quota)
  double LocalityScore = 0.0;
  bool Resident = false; ///< fingerprints currently memory-resident
  std::size_t TrackedEntries = 0; ///< index entries charged to tenant
};

/// Aggregated outcome of sweepDeferred().
struct ServiceSweepStats {
  std::uint64_t TenantsSwept = 0;
  std::uint64_t BlocksProcessed = 0;
  std::uint64_t ChunksCollected = 0;
  std::uint64_t EntriesExpired = 0; ///< transient index entries dropped
};

/// N tenant volumes over one pipeline, one tracker, one index.
/// Single-writer semantics, like the layers below it.
class VolumeService {
public:
  using TenantId = unsigned;

  VolumeService(const Platform &Plat, const ServiceConfig &Config);

  /// Registers a tenant (name must be unique; used as the metrics
  /// label). Returns its id. Tenants start inline-resident with an
  /// optimistic locality score.
  TenantId addTenant(const std::string &Name, const TenantConfig &Config);

  std::size_t tenantCount() const { return Tenants.size(); }

  /// Admission: queues a write of \p Data (a multiple of the block
  /// size) at \p Lba for weighted-fair dispatch. Returns false — and
  /// charges nothing — when the tenant's quota would be exceeded or
  /// the range is invalid.
  bool submitWrite(TenantId Tenant, std::uint64_t Lba, ByteSpan Data);

  /// One weighted-fair dispatch round over all queues, then a
  /// residency re-score. Returns true if anything was dispatched.
  bool pump();

  /// Pumps until every queue is empty.
  void drain();

  /// Deferred-dedup lifecycle: one BackgroundReducer pass per tenant
  /// with raw (deferred) blocks outstanding. A still-non-resident
  /// tenant's freshly inserted index entries are expired afterwards —
  /// the budget buys an *inline* cache, not a post-process one.
  ServiceSweepStats sweepDeferred();

  /// drain() + end-of-run pipeline flush (bin-buffer drains).
  void finish();

  /// Reads \p Count blocks of \p Tenant at \p Lba (through the shared
  /// store; unmapped blocks read as zeros).
  std::optional<ByteVector> readBlocks(TenantId Tenant, std::uint64_t Lba,
                                       std::uint64_t Count);

  TenantStats tenantStats(TenantId Tenant) const;

  /// The tenant's volume (tests / maintenance; single-writer rules).
  Volume &tenantVolume(TenantId Tenant) { return *Tenants[Tenant].Vol; }

  ReductionPipeline &pipeline() { return Pipeline; }
  const ReductionPipeline &pipeline() const { return Pipeline; }
  const ServiceConfig &config() const { return Config; }

  /// Dispatch rounds completed.
  std::uint64_t rounds() const { return Round; }

private:
  struct PendingWrite {
    std::uint64_t Lba = 0;
    ByteVector Data;
  };

  struct TenantState {
    std::string Name;
    TenantConfig Config;
    std::unique_ptr<Volume> Vol;
    std::deque<PendingWrite> Queue;
    std::uint64_t QueuedBytes = 0;
    std::uint64_t AdmittedBytes = 0;
    std::uint64_t DeferredBytes = 0;
    std::uint64_t RejectedBytes = 0;
    /// Deficit round-robin credit (bytes).
    std::uint64_t CreditBytes = 0;
    /// EWMA of inline runs' duplicate fractions; optimistic start so
    /// new tenants begin resident.
    double Locality = 1.0;
    bool Resident = true;
    bool NeedsSweep = false;
    /// Global dispatch sequence of the last run (LRU recency).
    std::uint64_t LastDispatchSeq = 0;
    std::uint64_t LastInlineRound = 0;
    /// Fingerprints this tenant inserted while resident — dropped from
    /// the index on demotion to actually free its budget share.
    std::vector<Fingerprint> TrackedFps;
    /// High-water mark of TrackedFps (projected footprint for
    /// admission decisions; survives demotion).
    std::size_t PeakTrackedFps = 0;
    obs::Counter *AdmittedCtr = nullptr;
    obs::Counter *DeferredCtr = nullptr;
    obs::Counter *RejectedCtr = nullptr;
  };

  /// One write picked by the fair-share round, awaiting dispatch.
  struct Pick {
    TenantState *T = nullptr;
    PendingWrite W;
    bool Inline = false; ///< inline reduction vs raw (deferred)
  };

  /// Dispatches one queued write: inline (resident or probing) or raw.
  void dispatchOne(TenantState &T, PendingWrite &W);

  /// Whether the write dispatches inline (resident or probing); marks
  /// a probing tenant's round so later picks this round see it.
  bool decideInline(TenantState &T);

  /// Coalesced dispatch of one round's picks: maximal runs of
  /// consecutive inline picks become one combined pipeline ingest.
  void dispatchCoalesced(std::vector<Pick> &Picks);

  /// Records an inline run's outcomes into the tenant's locality score
  /// and tracked-fingerprint set.
  void noteInlineRun(TenantState &T, std::span<const ChunkWriteInfo> Info);

  /// Recomputes the resident set under the index budget per the cache
  /// policy; demotions drop the tenant's tracked index entries.
  void rescoreResidency();

  void demote(TenantState &T);

  /// Pushes per-shard occupancy/hit gauges (no-op without metrics).
  void updateShardMetrics();

  std::size_t entryBytes() const;

  ServiceConfig Config;
  ReductionPipeline Pipeline;
  std::shared_ptr<ChunkRefTracker> Tracker;
  std::vector<TenantState> Tenants;
  std::uint64_t Round = 0;
  std::uint64_t DispatchSeq = 0;
  obs::LogHistogram *LocalityHist = nullptr;
  std::vector<obs::Gauge *> ShardEntriesGauges;
  std::vector<obs::Gauge *> ShardHitsGauges;
  std::vector<obs::Gauge *> ShardMemoryGauges;
};

} // namespace padre

#endif // PADRE_SERVICE_VOLUMESERVICE_H
