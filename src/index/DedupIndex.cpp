//===----------------------------------------------------------------------===//
///
/// \file
/// Dedup index facade implementation.
///
//===----------------------------------------------------------------------===//

#include "index/DedupIndex.h"

#include <cassert>

using namespace padre;

DedupIndex::DedupIndex(const DedupIndexConfig &Config)
    : Layout(Config.BinBits), Config(Config),
      Buffer(Layout, Config.BufferCapacityPerBin),
      Tree(Layout, Config.MaxEntriesPerBin, Config.Seed) {}

LookupResult DedupIndex::processOne(std::uint32_t Bin, const Fingerprint &Fp,
                                    std::uint64_t Location,
                                    std::vector<FlushEvent> &LocalFlush) {
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);

  // Paper lookup order (§3.3): bin buffer first — "recently updated
  // chunks can reside in the bin buffer and chunks are more likely to
  // find duplicates in the bin buffer due to temporal locality".
  std::size_t Depth = 0;
  if (auto Hit = Buffer.lookup(Bin, Suffix, &Depth)) {
    BufferHits.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{LookupOutcome::DupBuffer, *Hit,
                        static_cast<std::uint32_t>(Depth)};
  }
  if (auto Hit = Tree.lookup(Bin, Suffix)) {
    TreeHits.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{LookupOutcome::DupTree, *Hit, 0};
  }

  // Unique chunk: stage it in the bin buffer; drain on fill.
  UniqueInserts.fetch_add(1, std::memory_order_relaxed);
  const bool Full = Buffer.insert(Bin, Suffix, Location);
  if (Full) {
    FlushEvent Event;
    Event.Bin = Bin;
    Buffer.drain(Bin, Event.Suffixes, Event.Locations);
    const std::size_t Evicted =
        Tree.mergeRun(Bin, ByteSpan(Event.Suffixes.data(),
                                    Event.Suffixes.size()),
                      Event.Locations);
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    LocalFlush.push_back(std::move(Event));
  }
  return LookupResult{LookupOutcome::Unique, Location};
}

void DedupIndex::processBatch(std::span<const Fingerprint> Fingerprints,
                              std::span<const std::uint64_t> Locations,
                              std::span<const std::uint8_t> KnownDuplicate,
                              ThreadPool &Pool,
                              std::span<LookupResult> Results,
                              std::vector<FlushEvent> &FlushOut) {
  const std::size_t Count = Fingerprints.size();
  assert(Locations.size() == Count && Results.size() == Count &&
         "Batch arrays disagree");
  assert((KnownDuplicate.empty() || KnownDuplicate.size() == Count) &&
         "KnownDuplicate must be empty or batch-sized");
  if (Count == 0)
    return;

  // Scatter: counting-sort item indices by bin so each worker can walk
  // a contiguous run of bins.
  const std::uint32_t BinCount = Layout.binCount();
  std::vector<std::uint32_t> BinOf(Count);
  std::vector<std::uint32_t> CountPerBin(BinCount + 1, 0);
  for (std::size_t I = 0; I < Count; ++I) {
    BinOf[I] = Layout.binOf(Fingerprints[I]);
    ++CountPerBin[BinOf[I] + 1];
  }
  for (std::uint32_t B = 0; B < BinCount; ++B)
    CountPerBin[B + 1] += CountPerBin[B];
  std::vector<std::uint32_t> ItemsByBin(Count);
  {
    std::vector<std::uint32_t> Cursor(CountPerBin.begin(),
                                      CountPerBin.end() - 1);
    for (std::size_t I = 0; I < Count; ++I)
      ItemsByBin[Cursor[BinOf[I]]++] = static_cast<std::uint32_t>(I);
  }

  // Bin-parallel phase: each slice of the bin space is owned by one
  // worker, so bins (buffer + tree) need no locks.
  const unsigned Workers = Pool.size();
  std::vector<std::vector<FlushEvent>> FlushPerWorker(Workers);
  Pool.parallelForSlices(
      0, BinCount,
      [&](std::size_t BinBegin, std::size_t BinEnd, unsigned Worker) {
        std::vector<FlushEvent> &LocalFlush = FlushPerWorker[Worker];
        for (std::size_t Bin = BinBegin; Bin < BinEnd; ++Bin) {
          for (std::uint32_t Slot = CountPerBin[Bin];
               Slot < CountPerBin[Bin + 1]; ++Slot) {
            const std::uint32_t Item = ItemsByBin[Slot];
            if (!KnownDuplicate.empty() && KnownDuplicate[Item]) {
              GpuHits.fetch_add(1, std::memory_order_relaxed);
              Results[Item].Outcome = LookupOutcome::DupGpu;
              // Location already resolved by the caller from the GPU
              // metadata mirror; leave Results[Item].Location intact.
              continue;
            }
            Results[Item] =
                processOne(static_cast<std::uint32_t>(Bin),
                           Fingerprints[Item], Locations[Item], LocalFlush);
          }
        }
      });

  for (std::vector<FlushEvent> &Local : FlushPerWorker)
    for (FlushEvent &Event : Local)
      FlushOut.push_back(std::move(Event));
}

std::optional<std::uint64_t> DedupIndex::lookup(const Fingerprint &Fp) const {
  const std::uint32_t Bin = Layout.binOf(Fp);
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);
  if (auto Hit = Buffer.lookup(Bin, Suffix))
    return Hit;
  return Tree.lookup(Bin, Suffix);
}

LookupResult DedupIndex::upsert(const Fingerprint &Fp,
                                std::uint64_t Location,
                                std::vector<FlushEvent> &FlushOut) {
  return processOne(Layout.binOf(Fp), Fp, Location, FlushOut);
}

bool DedupIndex::remove(const Fingerprint &Fp) {
  const std::uint32_t Bin = Layout.binOf(Fp);
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);
  if (Buffer.remove(Bin, Suffix))
    return true;
  return Tree.remove(Bin, Suffix);
}

void DedupIndex::flushAll(std::vector<FlushEvent> &FlushOut) {
  for (std::uint32_t Bin = 0; Bin < Layout.binCount(); ++Bin) {
    if (Buffer.size(Bin) == 0)
      continue;
    FlushEvent Event;
    Event.Bin = Bin;
    Buffer.drain(Bin, Event.Suffixes, Event.Locations);
    const std::size_t Evicted =
        Tree.mergeRun(Bin, ByteSpan(Event.Suffixes.data(),
                                    Event.Suffixes.size()),
                      Event.Locations);
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    FlushOut.push_back(std::move(Event));
  }
}

std::size_t DedupIndex::memoryBytes() const {
  return Tree.memoryBytes() +
         Buffer.totalEntries() * Layout.cpuEntryBytes();
}

IndexShardStats DedupIndex::shardStats(unsigned Shard) const {
  assert(Shard == 0 && "Unsharded index has exactly one shard");
  (void)Shard;
  IndexShardStats Stats;
  Stats.BufferHits = bufferHits();
  Stats.TreeHits = treeHits();
  Stats.GpuHits = gpuHits();
  Stats.UniqueInserts = uniqueInserts();
  Stats.Evictions = evictions();
  Stats.TreeEntries = treeEntries();
  Stats.MemoryBytes = memoryBytes();
  Stats.BinBegin = 0;
  Stats.BinEnd = Layout.binCount();
  return Stats;
}
