//===----------------------------------------------------------------------===//
///
/// \file
/// The bin buffer (§3.3): a small per-bin staging area in front of the
/// bin tree. New (unique) hashes land here first; lookups check it
/// before the tree because "recently updated chunks can reside in the
/// bin buffer and chunks are more likely to find duplicates in the bin
/// buffer due to temporal locality". When a bin's buffer fills, it is
/// drained — the pipeline then writes the drained entries sequentially
/// to the SSD, merges them into the bin tree, and updates the GPU bin
/// table.
///
/// No internal locking: the DedupIndex partitions bins across worker
/// threads so each bin is only ever touched by one thread at a time.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_BINBUFFER_H
#define PADRE_INDEX_BINBUFFER_H

#include "index/BinLayout.h"
#include "util/Bytes.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace padre {

/// Per-bin staging buffers for freshly inserted index entries.
class BinBuffer {
public:
  /// \p CapacityPerBin entries per bin before a drain is required.
  BinBuffer(const BinLayout &Layout, std::size_t CapacityPerBin);

  /// Looks up \p Suffix (Layout.suffixBytes() bytes) in \p Bin,
  /// scanning newest-first (temporal locality). Returns the entry's
  /// location on hit. When \p DepthOut is non-null it receives the
  /// number of entries scanned (1 = newest entry hit) — the locality
  /// signal behind the padre_bin_buffer_hit_depth metric.
  std::optional<std::uint64_t> lookup(std::uint32_t Bin,
                                      const std::uint8_t *Suffix,
                                      std::size_t *DepthOut = nullptr) const;

  /// Appends an entry to \p Bin. Returns true if the bin is now full
  /// and must be drained before further inserts.
  bool insert(std::uint32_t Bin, const std::uint8_t *Suffix,
              std::uint64_t Location);

  /// Removes the newest entry matching \p Suffix from \p Bin (garbage
  /// collection of a dead chunk's hint). Returns true if found.
  bool remove(std::uint32_t Bin, const std::uint8_t *Suffix);

  /// Moves all of \p Bin's entries out, sorted by suffix, appended to
  /// the flat arrays \p Suffixes / \p Locations. The bin is left empty.
  void drain(std::uint32_t Bin, ByteVector &Suffixes,
             std::vector<std::uint64_t> &Locations);

  /// Number of buffered entries in \p Bin.
  std::size_t size(std::uint32_t Bin) const;

  /// Buffered entries across all bins.
  std::size_t totalEntries() const;

  std::size_t capacityPerBin() const { return CapacityPerBin; }

private:
  struct Slot {
    ByteVector Suffixes; ///< flat, SuffixBytes per entry, newest last
    std::vector<std::uint64_t> Locations;
  };

  BinLayout Layout;
  std::size_t CapacityPerBin;
  unsigned SuffixBytes;
  std::vector<Slot> Slots;
};

} // namespace padre

#endif // PADRE_INDEX_BINBUFFER_H
