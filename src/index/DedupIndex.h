//===----------------------------------------------------------------------===//
///
/// \file
/// The CPU-side deduplication index facade: bin buffer in front of the
/// bin tree, probed and maintained bin-parallel without locks.
///
/// A batch of fingerprints is scattered to per-bin buckets, the bin
/// space is partitioned across worker threads (each bin is owned by
/// exactly one worker for the batch — the DHT-style trick of §3.1(1)),
/// and each worker runs the paper's CPU lookup order for its bins:
/// bin buffer first (temporal locality), then bin tree, else unique →
/// insert into the bin buffer. A filling buffer drains into a flush
/// event (sequential SSD write + bin-tree merge + GPU-table update are
/// performed by the engine, §3.3).
///
/// The shared batch types (LookupResult, FlushEvent, DedupIndexConfig)
/// live in index/FingerprintIndex.h with the abstract interface this
/// class implements.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_DEDUPINDEX_H
#define PADRE_INDEX_DEDUPINDEX_H

#include "index/BinBuffer.h"
#include "index/BinLayout.h"
#include "index/CpuBinStore.h"
#include "index/FingerprintIndex.h"
#include "util/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace padre {

/// Lock-free-by-partitioning dedup index (bin buffer + bin tree).
class DedupIndex : public FingerprintIndex {
public:
  explicit DedupIndex(const DedupIndexConfig &Config = DedupIndexConfig());

  const BinLayout &layout() const override { return Layout; }

  /// Processes a batch: for each fingerprint, runs the CPU lookup
  /// order and fills \p Results. Unique fingerprints are inserted with
  /// their \p Locations value. \p KnownDuplicate (same length, may be
  /// empty) marks items the GPU already resolved: they are recorded as
  /// DupGpu and skip the CPU path (the pipeline fills their location).
  /// Buffer drains are merged into the tree immediately and appended
  /// to \p FlushOut for the engine's SSD/GPU follow-up.
  void processBatch(std::span<const Fingerprint> Fingerprints,
                    std::span<const std::uint64_t> Locations,
                    std::span<const std::uint8_t> KnownDuplicate,
                    ThreadPool &Pool, std::span<LookupResult> Results,
                    std::vector<FlushEvent> &FlushOut) override;

  /// Single-item lookup without insertion (read path / tests).
  std::optional<std::uint64_t> lookup(const Fingerprint &Fp) const override;

  /// Removes \p Fp from the buffer or tree (garbage collection of a
  /// dead chunk's entry). Returns true if an entry was removed.
  bool remove(const Fingerprint &Fp) override;

  /// Single-item insert-if-absent (restore path / tools): runs the
  /// normal lookup order and inserts \p Fp at \p Location when unique.
  /// Drains land in \p FlushOut exactly as in processBatch.
  LookupResult upsert(const Fingerprint &Fp, std::uint64_t Location,
                      std::vector<FlushEvent> &FlushOut) override;

  /// Drains every non-empty bin buffer into flush events (end-of-run
  /// flush), merging into the tree as in processBatch.
  void flushAll(std::vector<FlushEvent> &FlushOut) override;

  /// Cumulative per-stage hit counters.
  std::uint64_t bufferHits() const override { return BufferHits.load(); }
  std::uint64_t treeHits() const override { return TreeHits.load(); }
  std::uint64_t gpuHits() const override { return GpuHits.load(); }
  std::uint64_t uniqueInserts() const override {
    return UniqueInserts.load();
  }
  std::uint64_t evictions() const override { return Evictions.load(); }

  /// Entries in the tree (buffered entries excluded).
  std::size_t treeEntries() const override { return Tree.totalEntries(); }

  /// Index memory: tree entry storage plus buffered entries.
  std::size_t memoryBytes() const override;

  /// The whole index is its only shard.
  IndexShardStats shardStats(unsigned Shard) const override;

private:
  /// Runs the CPU path for one fingerprint (caller owns its bin).
  LookupResult processOne(std::uint32_t Bin, const Fingerprint &Fp,
                          std::uint64_t Location,
                          std::vector<FlushEvent> &LocalFlush);

  BinLayout Layout;
  DedupIndexConfig Config;
  BinBuffer Buffer;
  CpuBinStore Tree;

  std::atomic<std::uint64_t> BufferHits{0};
  std::atomic<std::uint64_t> TreeHits{0};
  std::atomic<std::uint64_t> GpuHits{0};
  std::atomic<std::uint64_t> UniqueInserts{0};
  std::atomic<std::uint64_t> Evictions{0};
};

} // namespace padre

#endif // PADRE_INDEX_DEDUPINDEX_H
