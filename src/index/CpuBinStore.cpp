//===----------------------------------------------------------------------===//
///
/// \file
/// CPU bin store implementation.
///
//===----------------------------------------------------------------------===//

#include "index/CpuBinStore.h"

#include <cassert>
#include <cstring>

using namespace padre;

CpuBinStore::CpuBinStore(const BinLayout &Layout,
                         std::size_t MaxEntriesPerBin, std::uint64_t Seed)
    : Layout(Layout), MaxEntriesPerBin(MaxEntriesPerBin),
      SuffixBytes(Layout.suffixBytes()), Bins(Layout.binCount()) {
  // Give every bin an independent eviction stream so bins owned by
  // different workers never share generator state.
  std::uint64_t State = Seed;
  for (Bin &B : Bins)
    B.Rng.reseed(Random::splitMix64(State));
}

std::optional<std::uint64_t>
CpuBinStore::lookup(std::uint32_t Bin, const std::uint8_t *Suffix) const {
  const struct Bin &B = Bins[Bin];
  const std::uint8_t *Base = B.Suffixes.data();
  std::size_t Lo = 0;
  std::size_t Hi = B.Locations.size();
  while (Lo < Hi) {
    const std::size_t Mid = Lo + (Hi - Lo) / 2;
    const int Cmp =
        std::memcmp(Base + Mid * SuffixBytes, Suffix, SuffixBytes);
    if (Cmp == 0)
      return B.Locations[Mid];
    if (Cmp < 0)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return std::nullopt;
}

std::size_t
CpuBinStore::mergeRun(std::uint32_t Bin, ByteSpan Suffixes,
                      const std::vector<std::uint64_t> &Locations,
                      ByteVector *EvictedOut) {
  assert(Suffixes.size() == Locations.size() * SuffixBytes &&
         "Run arrays disagree");
  struct Bin &B = Bins[Bin];
  const std::size_t OldCount = B.Locations.size();
  const std::size_t RunCount = Locations.size();
  if (RunCount == 0)
    return 0;

  // Merge the sorted run with the sorted bin into fresh arrays.
  ByteVector NewSuffixes;
  NewSuffixes.reserve((OldCount + RunCount) * SuffixBytes);
  std::vector<std::uint64_t> NewLocations;
  NewLocations.reserve(OldCount + RunCount);

  const std::uint8_t *OldBase = B.Suffixes.data();
  const std::uint8_t *RunBase = Suffixes.data();
  std::size_t I = 0, J = 0;
  while (I < OldCount || J < RunCount) {
    bool TakeOld;
    if (I == OldCount)
      TakeOld = false;
    else if (J == RunCount)
      TakeOld = true;
    else
      TakeOld = std::memcmp(OldBase + I * SuffixBytes,
                            RunBase + J * SuffixBytes, SuffixBytes) <= 0;
    if (TakeOld) {
      NewSuffixes.insert(NewSuffixes.end(), OldBase + I * SuffixBytes,
                         OldBase + (I + 1) * SuffixBytes);
      NewLocations.push_back(B.Locations[I]);
      ++I;
    } else {
      NewSuffixes.insert(NewSuffixes.end(), RunBase + J * SuffixBytes,
                         RunBase + (J + 1) * SuffixBytes);
      NewLocations.push_back(Locations[J]);
      ++J;
    }
  }
  B.Suffixes = std::move(NewSuffixes);
  B.Locations = std::move(NewLocations);

  // Random replacement down to the capacity bound (§3.1(1): the index
  // is memory-bounded and may then miss some duplicates).
  std::size_t Evicted = 0;
  if (MaxEntriesPerBin != 0) {
    while (B.Locations.size() > MaxEntriesPerBin) {
      // Ordered erase keeps the bin sorted; eviction only happens on
      // the rare over-capacity flush, so O(n) removal is acceptable.
      const std::size_t Victim = B.Rng.nextBelow(B.Locations.size());
      if (EvictedOut)
        EvictedOut->insert(EvictedOut->end(),
                           B.Suffixes.begin() + Victim * SuffixBytes,
                           B.Suffixes.begin() + (Victim + 1) * SuffixBytes);
      B.Suffixes.erase(B.Suffixes.begin() + Victim * SuffixBytes,
                       B.Suffixes.begin() + (Victim + 1) * SuffixBytes);
      B.Locations.erase(B.Locations.begin() + Victim);
      ++Evicted;
    }
  }
  return Evicted;
}

bool CpuBinStore::remove(std::uint32_t Bin, const std::uint8_t *Suffix) {
  struct Bin &B = Bins[Bin];
  const std::uint8_t *Base = B.Suffixes.data();
  std::size_t Lo = 0;
  std::size_t Hi = B.Locations.size();
  while (Lo < Hi) {
    const std::size_t Mid = Lo + (Hi - Lo) / 2;
    const int Cmp =
        std::memcmp(Base + Mid * SuffixBytes, Suffix, SuffixBytes);
    if (Cmp == 0) {
      B.Suffixes.erase(B.Suffixes.begin() + Mid * SuffixBytes,
                       B.Suffixes.begin() + (Mid + 1) * SuffixBytes);
      B.Locations.erase(B.Locations.begin() + Mid);
      return true;
    }
    if (Cmp < 0)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return false;
}

std::size_t CpuBinStore::entryCount(std::uint32_t Bin) const {
  return Bins[Bin].Locations.size();
}

std::size_t CpuBinStore::totalEntries() const {
  std::size_t Total = 0;
  for (const Bin &B : Bins)
    Total += B.Locations.size();
  return Total;
}

std::size_t CpuBinStore::memoryBytes() const {
  std::size_t Total = 0;
  for (const Bin &B : Bins)
    Total += B.Suffixes.size() + B.Locations.size() * sizeof(std::uint64_t);
  return Total;
}
