//===----------------------------------------------------------------------===//
///
/// \file
/// The global fingerprint index sharded by digest prefix: K independent
/// bin indexes (index/DedupIndex.h), each owning a contiguous range of
/// the bin space. A fingerprint's bin id — its leading BinBits, i.e.
/// the digest prefix — picks the shard, so shards never share state and
/// need no cross-shard coordination (the service-scale extension of the
/// paper's §3.1(1) bin partitioning: the same trick, one level up).
///
/// Because a bin's buffer and tree behave identically no matter which
/// shard hosts them, every shard count produces bit-identical lookup
/// outcomes, flush contents and counter totals. What sharding adds is
/// introspection granularity — per-shard hit/occupancy stats that the
/// multi-tenant service exports as padre_svc_shard_* metrics — and a
/// seam for scaling the index across nodes later (ROADMAP).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_SHARDEDFINGERPRINTINDEX_H
#define PADRE_INDEX_SHARDEDFINGERPRINTINDEX_H

#include "index/DedupIndex.h"
#include "index/FingerprintIndex.h"
#include "util/Arena.h"

#include <memory>
#include <vector>

namespace padre {

/// Prefix-sharded composite over K plain bin indexes.
class ShardedFingerprintIndex : public FingerprintIndex {
public:
  /// \p Config.Shards shards (clamped to [1, binCount]); every shard
  /// is configured identically, so the composite behaves exactly like
  /// one DedupIndex built from the same config.
  explicit ShardedFingerprintIndex(const DedupIndexConfig &Config);

  const BinLayout &layout() const override;

  void processBatch(std::span<const Fingerprint> Fingerprints,
                    std::span<const std::uint64_t> Locations,
                    std::span<const std::uint8_t> KnownDuplicate,
                    ThreadPool &Pool, std::span<LookupResult> Results,
                    std::vector<FlushEvent> &FlushOut) override;

  std::optional<std::uint64_t> lookup(const Fingerprint &Fp) const override;
  bool remove(const Fingerprint &Fp) override;
  LookupResult upsert(const Fingerprint &Fp, std::uint64_t Location,
                      std::vector<FlushEvent> &FlushOut) override;
  void flushAll(std::vector<FlushEvent> &FlushOut) override;

  std::uint64_t bufferHits() const override;
  std::uint64_t treeHits() const override;
  std::uint64_t gpuHits() const override;
  std::uint64_t uniqueInserts() const override;
  std::uint64_t evictions() const override;
  std::size_t treeEntries() const override;
  std::size_t memoryBytes() const override;

  unsigned shardCount() const override {
    return static_cast<unsigned>(Shards.size());
  }
  IndexShardStats shardStats(unsigned Shard) const override;

  /// Shard id owning \p Bin (contiguous ranges: shard = bin·K/bins).
  unsigned shardOfBin(std::uint32_t Bin) const;

private:
  std::vector<std::unique_ptr<DedupIndex>> Shards;
  /// processBatch scratch (shard scatter tables and sub-batch arrays),
  /// reset per batch. The engine drives one batch at a time, matching
  /// the arena's single-owner discipline.
  Arena BatchScratch;
};

} // namespace padre

#endif // PADRE_INDEX_SHARDEDFINGERPRINTINDEX_H
