//===----------------------------------------------------------------------===//
///
/// \file
/// Bin buffer implementation.
///
//===----------------------------------------------------------------------===//

#include "index/BinBuffer.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <numeric>

using namespace padre;

BinBuffer::BinBuffer(const BinLayout &Layout, std::size_t CapacityPerBin)
    : Layout(Layout), CapacityPerBin(CapacityPerBin),
      SuffixBytes(Layout.suffixBytes()), Slots(Layout.binCount()) {
  assert(CapacityPerBin > 0 && "Buffer capacity must be nonzero");
}

std::optional<std::uint64_t>
BinBuffer::lookup(std::uint32_t Bin, const std::uint8_t *Suffix,
                  std::size_t *DepthOut) const {
  const Slot &S = Slots[Bin];
  const std::size_t Count = S.Locations.size();
  // Newest-first: recently written chunks are the likeliest duplicates.
  for (std::size_t I = Count; I > 0; --I) {
    const std::uint8_t *Entry = S.Suffixes.data() + (I - 1) * SuffixBytes;
    if (std::memcmp(Entry, Suffix, SuffixBytes) == 0) {
      if (DepthOut)
        *DepthOut = Count - I + 1;
      return S.Locations[I - 1];
    }
  }
  if (DepthOut)
    *DepthOut = Count;
  return std::nullopt;
}

bool BinBuffer::insert(std::uint32_t Bin, const std::uint8_t *Suffix,
                       std::uint64_t Location) {
  Slot &S = Slots[Bin];
  assert(S.Locations.size() < CapacityPerBin &&
         "Bin must be drained before inserting into a full buffer");
  S.Suffixes.insert(S.Suffixes.end(), Suffix, Suffix + SuffixBytes);
  S.Locations.push_back(Location);
  return S.Locations.size() == CapacityPerBin;
}

bool BinBuffer::remove(std::uint32_t Bin, const std::uint8_t *Suffix) {
  Slot &S = Slots[Bin];
  for (std::size_t I = S.Locations.size(); I > 0; --I) {
    const std::size_t Index = I - 1;
    if (std::memcmp(S.Suffixes.data() + Index * SuffixBytes, Suffix,
                    SuffixBytes) != 0)
      continue;
    S.Suffixes.erase(S.Suffixes.begin() + Index * SuffixBytes,
                     S.Suffixes.begin() + (Index + 1) * SuffixBytes);
    S.Locations.erase(S.Locations.begin() + Index);
    return true;
  }
  return false;
}

void BinBuffer::drain(std::uint32_t Bin, ByteVector &Suffixes,
                      std::vector<std::uint64_t> &Locations) {
  Slot &S = Slots[Bin];
  const std::size_t Count = S.Locations.size();
  if (Count == 0)
    return;

  // Sort entry indices by suffix so the drained run can be merge-joined
  // into the sorted bin tree.
  std::vector<std::uint32_t> Order(Count);
  std::iota(Order.begin(), Order.end(), 0);
  const std::uint8_t *Base = S.Suffixes.data();
  const unsigned Width = SuffixBytes;
  std::sort(Order.begin(), Order.end(),
            [Base, Width](std::uint32_t A, std::uint32_t B) {
              return std::memcmp(Base + A * Width, Base + B * Width,
                                 Width) < 0;
            });

  Suffixes.reserve(Suffixes.size() + Count * Width);
  Locations.reserve(Locations.size() + Count);
  for (std::uint32_t Index : Order) {
    const std::uint8_t *Entry = Base + Index * Width;
    Suffixes.insert(Suffixes.end(), Entry, Entry + Width);
    Locations.push_back(S.Locations[Index]);
  }
  S.Suffixes.clear();
  S.Locations.clear();
}

std::size_t BinBuffer::size(std::uint32_t Bin) const {
  return Slots[Bin].Locations.size();
}

std::size_t BinBuffer::totalEntries() const {
  std::size_t Total = 0;
  for (const Slot &S : Slots)
    Total += S.Locations.size();
  return Total;
}
