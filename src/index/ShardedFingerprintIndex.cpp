//===----------------------------------------------------------------------===//
///
/// \file
/// Prefix-sharded fingerprint index implementation, plus the factory
/// that picks between it and the plain bin index.
///
//===----------------------------------------------------------------------===//

#include "index/ShardedFingerprintIndex.h"

#include "index/ConcurrentBinIndex.h"

#include <algorithm>
#include <cassert>

using namespace padre;

ShardedFingerprintIndex::ShardedFingerprintIndex(
    const DedupIndexConfig &Config) {
  DedupIndexConfig ShardConfig = Config;
  ShardConfig.Shards = 1;
  const std::uint32_t BinCount = 1u << Config.BinBits;
  const unsigned Count = static_cast<unsigned>(
      std::clamp<std::uint64_t>(Config.Shards, 1, BinCount));
  Shards.reserve(Count);
  for (unsigned S = 0; S < Count; ++S)
    Shards.push_back(std::make_unique<DedupIndex>(ShardConfig));
}

const BinLayout &ShardedFingerprintIndex::layout() const {
  return Shards.front()->layout();
}

unsigned ShardedFingerprintIndex::shardOfBin(std::uint32_t Bin) const {
  const std::uint64_t BinCount = layout().binCount();
  return static_cast<unsigned>(static_cast<std::uint64_t>(Bin) *
                               Shards.size() / BinCount);
}

void ShardedFingerprintIndex::processBatch(
    std::span<const Fingerprint> Fingerprints,
    std::span<const std::uint64_t> Locations,
    std::span<const std::uint8_t> KnownDuplicate, ThreadPool &Pool,
    std::span<LookupResult> Results, std::vector<FlushEvent> &FlushOut) {
  const std::size_t Count = Fingerprints.size();
  assert(Locations.size() == Count && Results.size() == Count &&
         "Batch arrays disagree");
  if (Count == 0)
    return;
  if (Shards.size() == 1) {
    Shards.front()->processBatch(Fingerprints, Locations, KnownDuplicate,
                                 Pool, Results, FlushOut);
    return;
  }

  // Partition item indices by shard with a counting sort over arena
  // scratch, preserving stream order within each shard — the per-bin
  // probe order (and thus every outcome) is then identical to the
  // unsharded index's.
  BatchScratch.reset();
  std::span<std::size_t> CountPerShard =
      BatchScratch.allocateFilled<std::size_t>(Shards.size(), 0);
  for (std::size_t I = 0; I < Count; ++I)
    ++CountPerShard[shardOfBin(layout().binOf(Fingerprints[I]))];
  std::span<std::size_t> ShardOffset =
      BatchScratch.allocateSpan<std::size_t>(Shards.size());
  std::size_t Offset = 0;
  for (std::size_t S = 0; S < Shards.size(); ++S) {
    ShardOffset[S] = Offset;
    Offset += CountPerShard[S];
  }
  std::span<std::uint32_t> ItemsByShard =
      BatchScratch.allocateSpan<std::uint32_t>(Count);
  {
    std::span<std::size_t> Cursor =
        BatchScratch.allocateSpan<std::size_t>(Shards.size());
    for (std::size_t S = 0; S < Shards.size(); ++S)
      Cursor[S] = ShardOffset[S];
    for (std::size_t I = 0; I < Count; ++I) {
      const unsigned S = shardOfBin(layout().binOf(Fingerprints[I]));
      ItemsByShard[Cursor[S]++] = static_cast<std::uint32_t>(I);
    }
  }

  // Shards run one after another (each inner batch is bin-parallel on
  // the pool already); flush events therefore land in shard order.
  std::span<Fingerprint> SubFps =
      BatchScratch.allocateSpan<Fingerprint>(Count);
  std::span<std::uint64_t> SubLocations =
      BatchScratch.allocateSpan<std::uint64_t>(Count);
  std::span<std::uint8_t> SubKnown =
      BatchScratch.allocateSpan<std::uint8_t>(Count);
  std::span<LookupResult> SubResults =
      BatchScratch.allocateSpan<LookupResult>(Count);
  for (std::size_t S = 0; S < Shards.size(); ++S) {
    const std::span<const std::uint32_t> Items =
        ItemsByShard.subspan(ShardOffset[S], CountPerShard[S]);
    if (Items.empty())
      continue;
    for (std::size_t J = 0; J < Items.size(); ++J) {
      SubFps[J] = Fingerprints[Items[J]];
      SubLocations[J] = Locations[Items[J]];
      if (!KnownDuplicate.empty())
        SubKnown[J] = KnownDuplicate[Items[J]];
    }
    for (std::size_t J = 0; J < Items.size(); ++J)
      SubResults[J] = LookupResult();
    Shards[S]->processBatch(
        SubFps.first(Items.size()), SubLocations.first(Items.size()),
        KnownDuplicate.empty()
            ? std::span<const std::uint8_t>()
            : std::span<const std::uint8_t>(SubKnown.first(Items.size())),
        Pool, SubResults.first(Items.size()), FlushOut);
    for (std::size_t J = 0; J < Items.size(); ++J) {
      // DupGpu items keep their caller-resolved location; mirror the
      // unsharded contract of leaving Results[Item].Location intact.
      if (SubResults[J].Outcome == LookupOutcome::DupGpu)
        Results[Items[J]].Outcome = LookupOutcome::DupGpu;
      else
        Results[Items[J]] = SubResults[J];
    }
  }
}

std::optional<std::uint64_t>
ShardedFingerprintIndex::lookup(const Fingerprint &Fp) const {
  return Shards[shardOfBin(layout().binOf(Fp))]->lookup(Fp);
}

bool ShardedFingerprintIndex::remove(const Fingerprint &Fp) {
  return Shards[shardOfBin(layout().binOf(Fp))]->remove(Fp);
}

LookupResult
ShardedFingerprintIndex::upsert(const Fingerprint &Fp,
                                std::uint64_t Location,
                                std::vector<FlushEvent> &FlushOut) {
  return Shards[shardOfBin(layout().binOf(Fp))]->upsert(Fp, Location,
                                                        FlushOut);
}

void ShardedFingerprintIndex::flushAll(std::vector<FlushEvent> &FlushOut) {
  // Shard order = ascending bin order, matching the unsharded drain.
  for (std::unique_ptr<DedupIndex> &Shard : Shards)
    Shard->flushAll(FlushOut);
}

std::uint64_t ShardedFingerprintIndex::bufferHits() const {
  std::uint64_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->bufferHits();
  return Total;
}

std::uint64_t ShardedFingerprintIndex::treeHits() const {
  std::uint64_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->treeHits();
  return Total;
}

std::uint64_t ShardedFingerprintIndex::gpuHits() const {
  std::uint64_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->gpuHits();
  return Total;
}

std::uint64_t ShardedFingerprintIndex::uniqueInserts() const {
  std::uint64_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->uniqueInserts();
  return Total;
}

std::uint64_t ShardedFingerprintIndex::evictions() const {
  std::uint64_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->evictions();
  return Total;
}

std::size_t ShardedFingerprintIndex::treeEntries() const {
  std::size_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->treeEntries();
  return Total;
}

std::size_t ShardedFingerprintIndex::memoryBytes() const {
  std::size_t Total = 0;
  for (const std::unique_ptr<DedupIndex> &Shard : Shards)
    Total += Shard->memoryBytes();
  return Total;
}

IndexShardStats ShardedFingerprintIndex::shardStats(unsigned Shard) const {
  assert(Shard < Shards.size() && "Shard id out of range");
  IndexShardStats Stats = Shards[Shard]->shardStats(0);
  // Report the bin range this shard actually owns, not the inner
  // index's full (mostly idle) bin space.
  const std::uint64_t BinCount = layout().binCount();
  Stats.BinBegin = static_cast<std::uint32_t>(
      (Shard * BinCount + Shards.size() - 1) / Shards.size());
  Stats.BinEnd = static_cast<std::uint32_t>(
      ((Shard + 1) * BinCount + Shards.size() - 1) / Shards.size());
  return Stats;
}

std::unique_ptr<FingerprintIndex>
padre::makeFingerprintIndex(const DedupIndexConfig &Config) {
  if (Config.Concurrent)
    return std::make_unique<ConcurrentBinIndex>(Config);
  if (Config.Shards <= 1)
    return std::make_unique<DedupIndex>(Config);
  return std::make_unique<ShardedFingerprintIndex>(Config);
}
