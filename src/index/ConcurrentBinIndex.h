//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-free concurrent fingerprint index: the first hot path in the
/// repo that tolerates genuinely simultaneous mutators (DESIGN.md
/// decision 15). The serial DedupIndex is safe only because processBatch
/// partitions bins across workers; any *external* concurrency — two
/// volumes upserting at once, a GC remove racing a write batch — would
/// race on its vectors. This implementation keeps the paper's exact
/// semantics (bin buffer → bin tree lookup order, drained sorted runs,
/// random replacement) while making every operation thread-safe:
///
///  * The bin tree is K open-addressed slot tables (shards over
///    contiguous bin ranges). Slots are 64-byte-aligned: one atomic
///    header word (state | bin | tag) plus the location and suffix
///    payload in the same cache line. Probes are lock-free — an
///    acquire-load of the header happens-after the inserter's release
///    publication, so the payload read is race-free. Inserters claim an
///    Empty slot by CAS (failures count into casRetries()), write the
///    payload, then release-store the Full header.
///
///  * Everything per-bin (buffer staging, eviction Rng, directory) is
///    serialized by a per-bin CAS spinlock — the concurrent analogue of
///    the serial index's "one worker owns each bin" discipline, but held
///    only for one operation instead of one batch.
///
///  * Growth is RCU-lite: the grower takes the shard's shared_mutex
///    exclusively (mutators hold it shared), rebuilds into a table twice
///    the size (dropping tombstones), publishes it with a release store,
///    and retires the old table to a graveyard freed at destruction —
///    lock-free probes in flight keep reading the retired table safely.
///
/// Observational equivalence with DedupIndex is load-bearing and tested
/// (tests/OracleCheck.h, tests/test_hotpath.cpp): on any serial op
/// sequence, outcomes, buffer depths, flush events, counters, tree
/// entries and memory bytes are bit-identical. Eviction identities match
/// because bounded mode routes drains through a real CpuBinStore (the
/// oracle's own structure) whose per-bin Rng seeding is unchanged, and
/// tombstones the evicted suffixes out of the slot table.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_CONCURRENTBININDEX_H
#define PADRE_INDEX_CONCURRENTBININDEX_H

#include "index/BinBuffer.h"
#include "index/BinLayout.h"
#include "index/CpuBinStore.h"
#include "index/FingerprintIndex.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

namespace padre {

/// Lock-free sharded concurrent bin index.
class ConcurrentBinIndex : public FingerprintIndex {
public:
  /// \p Config.Shards slot-table shards (clamped to [1, binCount]).
  explicit ConcurrentBinIndex(const DedupIndexConfig &Config);
  ~ConcurrentBinIndex() override;

  const BinLayout &layout() const override { return Layout; }

  void processBatch(std::span<const Fingerprint> Fingerprints,
                    std::span<const std::uint64_t> Locations,
                    std::span<const std::uint8_t> KnownDuplicate,
                    ThreadPool &Pool, std::span<LookupResult> Results,
                    std::vector<FlushEvent> &FlushOut) override;

  std::optional<std::uint64_t> lookup(const Fingerprint &Fp) const override;
  bool remove(const Fingerprint &Fp) override;
  LookupResult upsert(const Fingerprint &Fp, std::uint64_t Location,
                      std::vector<FlushEvent> &FlushOut) override;
  void flushAll(std::vector<FlushEvent> &FlushOut) override;

  std::uint64_t bufferHits() const override;
  std::uint64_t treeHits() const override;
  std::uint64_t gpuHits() const override;
  std::uint64_t uniqueInserts() const override;
  std::uint64_t evictions() const override;
  std::size_t treeEntries() const override;
  std::size_t memoryBytes() const override;

  unsigned shardCount() const override {
    return static_cast<unsigned>(ShardCount);
  }
  IndexShardStats shardStats(unsigned Shard) const override;
  std::uint64_t casRetries() const override;

  /// Shard id owning \p Bin (contiguous ranges: shard = bin·K/bins —
  /// the same map ShardedFingerprintIndex uses).
  unsigned shardOfBin(std::uint32_t Bin) const {
    return static_cast<unsigned>(static_cast<std::uint64_t>(Bin) *
                                 ShardCount / Layout.binCount());
  }

private:
  /// Slot header states (bits 0..1 of the header word).
  static constexpr std::uint64_t StateEmpty = 0;
  static constexpr std::uint64_t StateBusy = 1;
  static constexpr std::uint64_t StateFull = 2;
  static constexpr std::uint64_t StateTomb = 3;

  /// One open-addressed slot: header + payload share a cache line, so a
  /// successful probe costs one line fill.
  struct alignas(64) Slot {
    /// state(2) | bin(32, bits 2..33) | tag(30, bits 34..63).
    std::atomic<std::uint64_t> Header{0};
    std::uint64_t Location = 0;
    std::uint8_t Suffix[Fingerprint::Size] = {};
  };

  /// One immutable-capacity probe table (replaced wholesale on growth).
  struct Table {
    explicit Table(std::size_t Capacity);
    std::unique_ptr<Slot[]> Slots;
    std::size_t Capacity; ///< power of two
    std::atomic<std::size_t> Used{0}; ///< claimed slots (incl. tombstones)
  };

  /// One shard: its live table, retired tables, growth mutex, and
  /// cache-line-aligned stat counters.
  struct alignas(64) Shard {
    std::atomic<Table *> Current{nullptr};
    std::unique_ptr<Table> CurrentOwned;
    /// Retired tables stay readable until destruction (RCU-lite: probes
    /// never block, so an in-flight probe may still hold a retired
    /// table's pointer).
    std::vector<std::unique_ptr<Table>> Graveyard;
    mutable std::shared_mutex TableMutex;

    std::atomic<std::uint64_t> BufferHits{0};
    std::atomic<std::uint64_t> TreeHits{0};
    std::atomic<std::uint64_t> GpuHits{0};
    std::atomic<std::uint64_t> UniqueInserts{0};
    std::atomic<std::uint64_t> Evictions{0};
    std::atomic<std::uint64_t> Epoch{0};
    std::atomic<std::uint64_t> CasRetries{0};
    std::atomic<std::size_t> TreeEntries{0};
    std::atomic<std::size_t> BufferedEntries{0};
  };

  /// RAII per-bin spinlock hold.
  class BinGuard;

  /// Runs the paper's CPU lookup order for one fingerprint with its bin
  /// locked. Exactly DedupIndex::processOne, against the slot table.
  LookupResult processOne(std::uint32_t Bin, const Fingerprint &Fp,
                          std::uint64_t Location,
                          std::vector<FlushEvent> &LocalFlush);

  /// Drains \p Bin's buffer (caller holds the bin lock) into a flush
  /// event, merges it into the tree, and appends to \p FlushOut.
  void drainBinLocked(std::uint32_t Bin, Shard &S,
                      std::vector<FlushEvent> &FlushOut);

  /// Lock-free probe of \p S's live table.
  std::optional<std::uint64_t> tableProbe(const Shard &S, std::uint32_t Bin,
                                          const std::uint8_t *Suffix) const;
  /// Claims a slot and publishes (bin lock + shared table lock held
  /// inside; grows the table when the load factor demands it).
  void tableInsert(Shard &S, std::uint32_t Bin, const std::uint8_t *Suffix,
                   std::uint64_t Location);
  /// Tombstones one matching Full slot. Returns true if found.
  bool tableRemove(Shard &S, std::uint32_t Bin, const std::uint8_t *Suffix);
  /// Rebuilds \p S's table at twice the capacity (exclusive lock),
  /// dropping tombstones; the old table is retired, not freed.
  void growTable(Shard &S);

  BinLayout Layout;
  DedupIndexConfig Config;
  std::size_t ShardCount;
  unsigned SuffixBytes;

  std::unique_ptr<Shard[]> Shards;
  /// Per-bin spinlock words (0 = free, 1 = held). Deliberately packed —
  /// a cache line of padding per bin would cost 64 B x 2^BinBits; the
  /// lock is held for nanoseconds, so false sharing is cheaper.
  std::unique_ptr<std::atomic<std::uint32_t>[]> BinLocks;
  /// Buffer staging: the serial index's own BinBuffer, one bin accessed
  /// per locked operation (distinct vector elements are race-free).
  BinBuffer Buffer;
  /// Bounded mode only: the oracle's bin store as eviction directory,
  /// so victim identities replay the serial Rng stream bit-for-bit.
  std::unique_ptr<CpuBinStore> Directory;
};

} // namespace padre

#endif // PADRE_INDEX_CONCURRENTBININDEX_H
