//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract fingerprint-index interface: the contract the dedup engine
/// programs against, extracted from the concrete bin index so the
/// multi-tenant service layer can swap in a sharded implementation
/// (index/ShardedFingerprintIndex.h) without the engine noticing. The
/// shared batch types (LookupResult, FlushEvent) and the index config
/// live here too, since every implementation trades in them.
///
/// Every implementation preserves the paper's lookup order and the
/// bin-partitioning lock-freedom: a fingerprint's bin id (its leading
/// BinBits — the digest prefix) fully determines which per-bin
/// structures it touches, so any partition of the bin space yields the
/// same functional outcomes. That invariant is what makes sharding a
/// pure layout decision (SERVICE.md, "shard map"), asserted by the
/// shard-count-invariance tests in tests/test_service.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_FINGERPRINTINDEX_H
#define PADRE_INDEX_FINGERPRINTINDEX_H

#include "index/BinLayout.h"
#include "util/Bytes.h"
#include "util/ThreadPool.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace padre {

/// Where a lookup was satisfied (or not).
enum class LookupOutcome : std::uint8_t {
  Unique = 0,    ///< not found anywhere; inserted as a new entry
  DupBuffer = 1, ///< found in the bin buffer
  DupTree = 2,   ///< found in the bin tree
  DupGpu = 3,    ///< resolved by the GPU before the CPU path
};

/// Per-fingerprint batch result.
struct LookupResult {
  LookupOutcome Outcome = LookupOutcome::Unique;
  std::uint64_t Location = 0; ///< existing location for duplicates
  /// For DupBuffer: entries scanned newest-first before the hit
  /// (1 = the newest entry). Zero otherwise. Feeds the
  /// padre_bin_buffer_hit_depth metric — small depths confirm the
  /// paper's temporal-locality argument for probing the buffer first.
  std::uint32_t BufferDepth = 0;
};

/// A drained bin-buffer run: destined for a sequential SSD write, a
/// bin-tree merge (already performed), and a GPU bin-table update.
struct FlushEvent {
  std::uint32_t Bin = 0;
  ByteVector Suffixes;
  std::vector<std::uint64_t> Locations;
};

/// Index configuration.
struct DedupIndexConfig {
  /// log2 of the bin count; 16 = the paper's 2-byte prefix.
  unsigned BinBits = 16;
  /// Bin-buffer entries per bin before a flush.
  std::size_t BufferCapacityPerBin = 64;
  /// Bin-tree entries per bin (0 = unbounded); bounds index memory.
  std::size_t MaxEntriesPerBin = 0;
  std::uint64_t Seed = 0x5EED5EED5EEDULL;
  /// Shards the bin space into this many contiguous digest-prefix
  /// ranges, each an independent bin index (ShardedFingerprintIndex).
  /// 1 (the default) builds the plain single index. Because bins are
  /// disjoint across shards, every shard count yields bit-identical
  /// outcomes — sharding only changes the introspection granularity
  /// (per-shard stats) available to the service layer.
  unsigned Shards = 1;
  /// Selects the lock-free concurrent implementation
  /// (index/ConcurrentBinIndex.h): open-addressed cache-line-aligned
  /// slot tables with CAS claim + release publication, safe to mutate
  /// from many threads at once (DESIGN.md decision 15). Observationally
  /// equivalent to the serial index on any single-threaded op sequence
  /// (tests/OracleCheck.h); Shards then selects the concurrent index's
  /// internal table shards instead of building the sequential
  /// ShardedFingerprintIndex composite.
  bool Concurrent = false;
};

/// Point-in-time statistics of one index shard (or of a whole unsharded
/// index, which reports itself as its only shard). Hit counters are
/// cumulative; occupancy fields are current.
struct IndexShardStats {
  std::uint64_t BufferHits = 0;
  std::uint64_t TreeHits = 0;
  std::uint64_t GpuHits = 0;
  std::uint64_t UniqueInserts = 0;
  std::uint64_t Evictions = 0;
  std::size_t TreeEntries = 0;
  std::size_t MemoryBytes = 0;
  /// First and one-past-last bin id routed to this shard.
  std::uint32_t BinBegin = 0;
  std::uint32_t BinEnd = 0;
  /// Mutations applied to this shard (concurrent index only; the
  /// serial implementations report 0). A cheap freshness signal for
  /// stats readers: two equal epochs bracket an unchanged shard.
  std::uint64_t Epoch = 0;
  /// Failed CAS attempts (slot claims + bin-lock acquisitions) on this
  /// shard — the contention signal behind padre_index_cas_retry_total.
  std::uint64_t CasRetries = 0;
};

/// The fingerprint-index contract (see index/DedupIndex.h for the
/// semantics of each operation; this interface adds nothing beyond
/// virtual dispatch and the shard introspection hooks).
class FingerprintIndex {
public:
  virtual ~FingerprintIndex() = default;

  /// Bin geometry. All shards of one index share a single layout.
  virtual const BinLayout &layout() const = 0;

  /// Batch probe/insert (the paper's CPU lookup order, bin-parallel).
  virtual void processBatch(std::span<const Fingerprint> Fingerprints,
                            std::span<const std::uint64_t> Locations,
                            std::span<const std::uint8_t> KnownDuplicate,
                            ThreadPool &Pool,
                            std::span<LookupResult> Results,
                            std::vector<FlushEvent> &FlushOut) = 0;

  /// Single-item lookup without insertion.
  virtual std::optional<std::uint64_t>
  lookup(const Fingerprint &Fp) const = 0;

  /// Removes an entry (GC / cache-tier demotion). True if one existed.
  virtual bool remove(const Fingerprint &Fp) = 0;

  /// Single-item insert-if-absent (restore path).
  virtual LookupResult upsert(const Fingerprint &Fp, std::uint64_t Location,
                              std::vector<FlushEvent> &FlushOut) = 0;

  /// End-of-run drain of every bin buffer.
  virtual void flushAll(std::vector<FlushEvent> &FlushOut) = 0;

  /// Cumulative per-tier hit counters (sums across shards).
  virtual std::uint64_t bufferHits() const = 0;
  virtual std::uint64_t treeHits() const = 0;
  virtual std::uint64_t gpuHits() const = 0;
  virtual std::uint64_t uniqueInserts() const = 0;
  virtual std::uint64_t evictions() const = 0;

  /// Current occupancy (sums across shards).
  virtual std::size_t treeEntries() const = 0;
  virtual std::size_t memoryBytes() const = 0;

  /// Shard introspection: an unsharded index is its own single shard.
  virtual unsigned shardCount() const { return 1; }
  virtual IndexShardStats shardStats(unsigned Shard) const = 0;

  /// Cumulative failed CAS attempts across shards. The serial
  /// implementations never retry (bins are partitioned, not contended)
  /// and report 0; the concurrent index counts every lost slot-claim
  /// and bin-lock race (exported as padre_index_cas_retry_total).
  virtual std::uint64_t casRetries() const { return 0; }
};

/// Builds the index an engine config asks for: the plain bin index when
/// Config.Shards <= 1, the prefix-sharded composite otherwise.
std::unique_ptr<FingerprintIndex>
makeFingerprintIndex(const DedupIndexConfig &Config);

} // namespace padre

#endif // PADRE_INDEX_FINGERPRINTINDEX_H
