//===----------------------------------------------------------------------===//
///
/// \file
/// GPU bin table implementation.
///
//===----------------------------------------------------------------------===//

#include "index/GpuBinTable.h"

#include <cassert>
#include <cstring>

using namespace padre;

GpuBinTable::GpuBinTable(GpuDevice &Device, const BinLayout &Layout,
                         std::size_t SlotsPerBin, std::uint64_t Seed)
    : Device(Device), Layout(Layout), SuffixBytes(Layout.suffixBytes()),
      SlotsPerBin(SlotsPerBin), Rng(Seed) {
  assert(Device.present() && "GPU bin table requires a GPU");
  assert(SlotsPerBin > 0 && SlotsPerBin <= 0xFFFF &&
         "Slots per bin out of range");

  // Cover as many bins as the device-memory budget allows. Per slot the
  // device holds the suffix plus a validity byte.
  const std::uint64_t BytesPerBin =
      static_cast<std::uint64_t>(SlotsPerBin) * (SuffixBytes + 1);
  const std::uint64_t Budget =
      Device.memoryCapacityBytes() - Device.memoryUsedBytes();
  std::uint64_t Bins = BytesPerBin == 0 ? 0 : Budget / BytesPerBin;
  Bins = std::min<std::uint64_t>(Bins, Layout.binCount());
  CoveredBins = static_cast<std::uint32_t>(Bins);

  DeviceBytes = CoveredBins * BytesPerBin;
  [[maybe_unused]] const bool Ok = Device.allocateMemory(DeviceBytes);
  assert(Ok && "Device arena accounting disagrees with budget math");

  const std::size_t TotalSlots =
      static_cast<std::size_t>(CoveredBins) * SlotsPerBin;
  DeviceSuffixes.resize(TotalSlots * SuffixBytes);
  SlotValid.assign(TotalSlots, 0);
  BinFill.assign(CoveredBins, 0);
  HostLocations.assign(TotalSlots, 0);
}

GpuBinTable::~GpuBinTable() { Device.releaseMemory(DeviceBytes); }

double GpuBinTable::coverageFraction() const {
  return static_cast<double>(CoveredBins) /
         static_cast<double>(Layout.binCount());
}

GpuProbeResult GpuBinTable::probe(const Fingerprint &Fp) const {
  const std::uint32_t Bin = Layout.binOf(Fp);
  assert(coversBin(Bin) && "Probe of a non-resident bin");
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);

  // Linear scan — the lockstep-friendly access pattern (§3.1(2)).
  const std::size_t Base = slotBase(Bin);
  const std::size_t Fill = BinFill[Bin];
  for (std::size_t I = 0; I < Fill; ++I) {
    const std::size_t Slot = Base + I;
    if (SlotValid[Slot] &&
        std::memcmp(DeviceSuffixes.data() + Slot * SuffixBytes, Suffix,
                    SuffixBytes) == 0)
      return GpuProbeResult{true, static_cast<std::uint32_t>(Slot)};
  }
  return GpuProbeResult{};
}

std::uint64_t GpuBinTable::resolveLocation(std::uint32_t SlotIndex) const {
  assert(SlotIndex < HostLocations.size() && SlotValid[SlotIndex] &&
         "Resolving an invalid slot");
  return HostLocations[SlotIndex];
}

void GpuBinTable::applyFlush(std::uint32_t Bin, ByteSpan Suffixes,
                             const std::vector<std::uint64_t> &Locations) {
  assert(Suffixes.size() == Locations.size() * SuffixBytes &&
         "Run arrays disagree");
  if (!coversBin(Bin))
    return;
  const std::size_t Base = slotBase(Bin);
  for (std::size_t I = 0; I < Locations.size(); ++I) {
    std::size_t Slot;
    if (BinFill[Bin] < SlotsPerBin) {
      Slot = Base + BinFill[Bin];
      ++BinFill[Bin];
    } else {
      // Random replacement (§3.3): the device bin is full.
      Slot = Base + Rng.nextBelow(SlotsPerBin);
    }
    std::memcpy(DeviceSuffixes.data() + Slot * SuffixBytes,
                Suffixes.data() + I * SuffixBytes, SuffixBytes);
    SlotValid[Slot] = 1;
    HostLocations[Slot] = Locations[I];
  }
}

bool GpuBinTable::invalidate(const Fingerprint &Fp) {
  const std::uint32_t Bin = Layout.binOf(Fp);
  if (!coversBin(Bin))
    return false;
  const GpuProbeResult Probe = probe(Fp);
  if (!Probe.Hit)
    return false;
  SlotValid[Probe.SlotIndex] = 0;
  return true;
}

std::size_t GpuBinTable::occupiedSlots() const {
  std::size_t Total = 0;
  for (std::uint8_t Valid : SlotValid)
    Total += Valid;
  return Total;
}
