//===----------------------------------------------------------------------===//
///
/// \file
/// The CPU-side bin tree (§3.3 "check the bin tree to store most of the
/// hash table entries"): the main in-memory index, one sorted entry run
/// per bin. Entries are prefix-truncated (index/BinLayout.h) and held
/// "in memory space only, not disk space" (§3.1(1)); when a bin exceeds
/// its capacity, random entries are evicted — the index may then miss
/// some duplicates, which the paper accepts for primary storage.
///
/// Inserts arrive only as sorted drained runs from the bin buffer, so
/// each bin is maintained by an O(n) merge instead of per-entry tree
/// rebalancing. No internal locking: the DedupIndex partitions bins
/// across workers.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_CPUBINSTORE_H
#define PADRE_INDEX_CPUBINSTORE_H

#include "index/BinLayout.h"
#include "util/Bytes.h"
#include "util/Random.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace padre {

/// All CPU-resident bins of the dedup index.
class CpuBinStore {
public:
  /// \p MaxEntriesPerBin bounds each bin's memory (0 = unbounded);
  /// \p Seed drives the random-replacement eviction.
  CpuBinStore(const BinLayout &Layout, std::size_t MaxEntriesPerBin,
              std::uint64_t Seed);

  /// Binary-searches \p Bin for \p Suffix. Returns the location on hit.
  std::optional<std::uint64_t> lookup(std::uint32_t Bin,
                                      const std::uint8_t *Suffix) const;

  /// Merges a sorted drained run (\p Suffixes flat / \p Locations) into
  /// \p Bin, then evicts random entries down to the capacity bound.
  /// Returns the number of evicted entries. When \p EvictedOut is
  /// non-null the evicted suffixes are appended to it (flat,
  /// suffixBytes() per entry) — the concurrent index uses this to
  /// tombstone the same identities in its slot table, keeping its
  /// eviction stream bit-identical to the serial oracle's.
  std::size_t mergeRun(std::uint32_t Bin, ByteSpan Suffixes,
                       const std::vector<std::uint64_t> &Locations,
                       ByteVector *EvictedOut = nullptr);

  /// Removes one entry matching \p Suffix from \p Bin (garbage
  /// collection of a dead chunk). Returns true if found.
  bool remove(std::uint32_t Bin, const std::uint8_t *Suffix);

  /// Entries currently stored in \p Bin.
  std::size_t entryCount(std::uint32_t Bin) const;

  /// Entries across all bins.
  std::size_t totalEntries() const;

  /// Bytes of entry storage across all bins (suffixes + locations) —
  /// the quantity the prefix-removal optimization shrinks.
  std::size_t memoryBytes() const;

  const BinLayout &layout() const { return Layout; }

private:
  struct Bin {
    ByteVector Suffixes; ///< flat, sorted, SuffixBytes per entry
    std::vector<std::uint64_t> Locations;
    Random Rng;
  };

  BinLayout Layout;
  std::size_t MaxEntriesPerBin;
  unsigned SuffixBytes;
  std::vector<Bin> Bins;
};

} // namespace padre

#endif // PADRE_INDEX_CPUBINSTORE_H
