//===----------------------------------------------------------------------===//
///
/// \file
/// Bin layout math for the bin-based deduplication index (§3.1(1)).
///
/// The global hash table is divided into 2^BinBits small tables (bins)
/// so that worker threads can probe and update disjoint bins without
/// locks ("a technique commonly used in existing DHT-based systems").
/// The bin id is the leading BinBits of the SHA-1 digest, so an entry
/// stored inside its bin only needs the digest *suffix* — the paper's
/// prefix-removal memory optimization: "if the prefix value is n bytes,
/// the deduplication system keeps only 20-n bytes for each hash value"
/// (a 2-byte prefix saves 1 GiB on a 4 TB / 8 KiB-chunk system).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_BINLAYOUT_H
#define PADRE_INDEX_BINLAYOUT_H

#include "hash/Fingerprint.h"

#include <cstdint>

namespace padre {

/// Geometry of the bin space and of truncated entries.
class BinLayout {
public:
  /// \p BinBits in [1, 32]; the default 16 matches the paper's 2-byte
  /// prefix example (65536 bins).
  explicit BinLayout(unsigned BinBits = 16);

  unsigned binBits() const { return BinBits; }
  std::uint32_t binCount() const { return 1u << BinBits; }

  /// Bin id of \p Fp (its leading BinBits).
  std::uint32_t binOf(const Fingerprint &Fp) const {
    return Fp.binId(BinBits);
  }

  /// Digest bytes wholly determined by the bin id — these are dropped
  /// from stored entries.
  unsigned prefixBytes() const { return BinBits / 8; }

  /// Stored bytes per entry key (the digest minus the dropped prefix).
  unsigned suffixBytes() const {
    return static_cast<unsigned>(Fingerprint::Size) - prefixBytes();
  }

  /// Copies the stored suffix of \p Fp into \p Out (suffixBytes()
  /// bytes).
  void extractSuffix(const Fingerprint &Fp, std::uint8_t *Out) const;

  /// Bytes per CPU index entry: suffix + 8-byte chunk location.
  std::size_t cpuEntryBytes() const {
    return suffixBytes() + sizeof(std::uint64_t);
  }

  /// Bytes per GPU-resident entry: suffix only ("only the hash value
  /// persists in GPU memory, and other metadata … is maintained in
  /// system memory", §3.1(2)).
  std::size_t gpuEntryBytes() const { return suffixBytes(); }

private:
  unsigned BinBits;
};

} // namespace padre

#endif // PADRE_INDEX_BINLAYOUT_H
