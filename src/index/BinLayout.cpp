//===----------------------------------------------------------------------===//
///
/// \file
/// Bin layout implementation.
///
//===----------------------------------------------------------------------===//

#include "index/BinLayout.h"

#include <cassert>
#include <cstring>

using namespace padre;

BinLayout::BinLayout(unsigned BinBits) : BinBits(BinBits) {
  assert(BinBits >= 1 && BinBits <= 32 && "Bin bits out of range");
}

void BinLayout::extractSuffix(const Fingerprint &Fp,
                              std::uint8_t *Out) const {
  std::memcpy(Out, Fp.bytes().data() + prefixBytes(), suffixBytes());
}
