//===----------------------------------------------------------------------===//
///
/// \file
/// The GPU-resident bin table (§3.1(2)): the device-side copy of (part
/// of) the dedup index, organized per the paper's GPU considerations —
///
///   * each bin is a *linear* table, not a tree: consecutive slots let
///     lockstep threads stream entries from global to local memory and
///     avoid branch divergence;
///   * "only the hash value persists in GPU memory"; metadata stays in
///     system memory, so a probe returns an (index number, hit/miss)
///     pair and the host resolves the location from its mirror array;
///   * device memory is bounded, so only a subset of bins is resident
///     and slot updates use random replacement (§3.3).
///
/// The probe is a functional kernel body; the engine wraps it in
/// GpuDevice::launchKernel so launch/transfer/execution time is charged.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_INDEX_GPUBINTABLE_H
#define PADRE_INDEX_GPUBINTABLE_H

#include "gpu/GpuDevice.h"
#include "index/BinLayout.h"
#include "util/Bytes.h"
#include "util/Random.h"

#include <cstdint>
#include <vector>

namespace padre {

/// Result of probing one fingerprint against the GPU table.
struct GpuProbeResult {
  bool Hit = false;
  std::uint32_t SlotIndex = 0; ///< device slot; host resolves metadata
};

/// Device-resident linear bin tables with a host-side metadata mirror.
class GpuBinTable {
public:
  /// Sizes the table to the device-memory budget: covers as many bins
  /// as fit with \p SlotsPerBin suffix slots each. Reserves the arena
  /// space in \p Device; the device must outlive the table.
  GpuBinTable(GpuDevice &Device, const BinLayout &Layout,
              std::size_t SlotsPerBin, std::uint64_t Seed);
  ~GpuBinTable();

  GpuBinTable(const GpuBinTable &) = delete;
  GpuBinTable &operator=(const GpuBinTable &) = delete;

  /// True if \p Bin is device-resident (probe-able).
  bool coversBin(std::uint32_t Bin) const { return Bin < CoveredBins; }

  /// Fraction of the bin space that is device-resident.
  double coverageFraction() const;

  /// Kernel body: probes \p Fp against its (covered) bin by linear
  /// scan. The caller is responsible for charging launch/exec time.
  GpuProbeResult probe(const Fingerprint &Fp) const;

  /// Host-side metadata resolution for a hit ("the metadata space
  /// structure in system memory then uses the results of the GPU").
  std::uint64_t resolveLocation(std::uint32_t SlotIndex) const;

  /// Applies a drained bin-buffer run to the device table with random
  /// slot replacement. No-op for non-covered bins. The caller charges
  /// the update transfer.
  void applyFlush(std::uint32_t Bin, ByteSpan Suffixes,
                  const std::vector<std::uint64_t> &Locations);

  /// Invalidates the slot holding \p Fp, if resident (garbage
  /// collection of a dead chunk). Returns true if a slot was cleared.
  bool invalidate(const Fingerprint &Fp);

  /// Occupied slots across all covered bins.
  std::size_t occupiedSlots() const;

  /// Device memory reserved by this table, in bytes.
  std::uint64_t deviceBytes() const { return DeviceBytes; }

  std::size_t slotsPerBin() const { return SlotsPerBin; }

private:
  std::size_t slotBase(std::uint32_t Bin) const {
    return static_cast<std::size_t>(Bin) * SlotsPerBin;
  }

  GpuDevice &Device;
  BinLayout Layout;
  unsigned SuffixBytes;
  std::size_t SlotsPerBin;
  std::uint32_t CoveredBins;
  std::uint64_t DeviceBytes = 0;

  // "Device memory": flat suffix slots + validity, modelled on the
  // host but accounted against the device arena.
  ByteVector DeviceSuffixes;
  std::vector<std::uint8_t> SlotValid;
  std::vector<std::uint16_t> BinFill; ///< occupied slots per bin
  // Host-side metadata mirror (not device memory).
  std::vector<std::uint64_t> HostLocations;
  Random Rng;
};

} // namespace padre

#endif // PADRE_INDEX_GPUBINTABLE_H
