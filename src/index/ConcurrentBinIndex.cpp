//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrent bin index implementation. Memory-ordering map (the
/// contract DESIGN.md decision 15 documents):
///
///   * slot claim:   CAS Empty -> Busy, acq_rel (failure: acquire)
///   * slot publish: payload plain stores, then header release-store
///   * slot probe:   header acquire-load, then payload plain loads
///   * table publish (growth): Current release-store under the
///     exclusive TableMutex; probes acquire-load Current
///   * bin lock:     CAS 0 -> 1 acquire, unlock release-store 0
///   * stat counters: relaxed (monotonic, read for reporting only)
///
//===----------------------------------------------------------------------===//

#include "index/ConcurrentBinIndex.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

using namespace padre;

namespace {

/// SplitMix64 finalizer: full-avalanche mix for slot hashing.
std::uint64_t mix64(std::uint64_t X) {
  X += 0x9E3779B97F4A7C15ULL;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ULL;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBULL;
  return X ^ (X >> 31);
}

/// Probe hash of (bin, suffix). The suffix is at least 16 bytes (the
/// digest minus at most a 4-byte prefix), so the 8-byte read is safe.
std::uint64_t slotHash(std::uint32_t Bin, const std::uint8_t *Suffix) {
  std::uint64_t Key;
  std::memcpy(&Key, Suffix, sizeof(Key));
  return mix64(Key ^ (static_cast<std::uint64_t>(Bin) *
                      0xD6E8FEB86659FD93ULL));
}

/// Header word: state(2) | bin(32) | tag(top 30 bits of the hash).
std::uint64_t headerFor(std::uint64_t State, std::uint32_t Bin,
                        std::uint64_t Hash) {
  return State | (static_cast<std::uint64_t>(Bin) << 2) |
         ((Hash >> 34) << 34);
}

std::uint64_t stateOf(std::uint64_t Header) { return Header & 3; }
std::uint32_t binOfHeader(std::uint64_t Header) {
  return static_cast<std::uint32_t>(Header >> 2);
}

/// Slots per shard table at construction; grows x2 at 70% load.
constexpr std::size_t InitialTableCapacity = 256;

} // namespace

ConcurrentBinIndex::Table::Table(std::size_t Capacity)
    : Slots(new Slot[Capacity]), Capacity(Capacity) {}

/// Per-bin spinlock hold. Lost CAS races feed the shard's retry
/// counter; the inner relaxed spin keeps the lock word's cache line
/// shared until it is plausibly free.
class ConcurrentBinIndex::BinGuard {
public:
  BinGuard(std::atomic<std::uint32_t> &Lock, Shard &S) : Lock(Lock) {
    std::uint32_t Expected = 0;
    while (!Lock.compare_exchange_weak(Expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      S.CasRetries.fetch_add(1, std::memory_order_relaxed);
      while (Lock.load(std::memory_order_relaxed) != 0) {
      }
      Expected = 0;
    }
  }
  ~BinGuard() { Lock.store(0, std::memory_order_release); }

  BinGuard(const BinGuard &) = delete;
  BinGuard &operator=(const BinGuard &) = delete;

private:
  std::atomic<std::uint32_t> &Lock;
};

ConcurrentBinIndex::ConcurrentBinIndex(const DedupIndexConfig &Config)
    : Layout(Config.BinBits), Config(Config),
      ShardCount(std::clamp<std::uint64_t>(Config.Shards, 1,
                                           Layout.binCount())),
      SuffixBytes(Layout.suffixBytes()),
      Shards(std::make_unique<Shard[]>(ShardCount)),
      BinLocks(std::make_unique<std::atomic<std::uint32_t>[]>(
          Layout.binCount())),
      Buffer(Layout, Config.BufferCapacityPerBin) {
  for (std::size_t S = 0; S < ShardCount; ++S) {
    Shards[S].CurrentOwned = std::make_unique<Table>(InitialTableCapacity);
    Shards[S].Current.store(Shards[S].CurrentOwned.get(),
                            std::memory_order_relaxed);
  }
  // Bounded mode shadows the tree in the oracle's own store so that
  // eviction victims replay the identical per-bin Rng stream.
  if (Config.MaxEntriesPerBin != 0)
    Directory = std::make_unique<CpuBinStore>(
        Layout, Config.MaxEntriesPerBin, Config.Seed);
}

ConcurrentBinIndex::~ConcurrentBinIndex() = default;

std::optional<std::uint64_t>
ConcurrentBinIndex::tableProbe(const Shard &S, std::uint32_t Bin,
                               const std::uint8_t *Suffix) const {
  const Table &T = *S.Current.load(std::memory_order_acquire);
  const std::uint64_t Hash = slotHash(Bin, Suffix);
  const std::uint64_t FullHeader = headerFor(StateFull, Bin, Hash);
  const std::size_t Mask = T.Capacity - 1;
  for (std::size_t P = 0; P < T.Capacity; ++P) {
    const Slot &Sl = T.Slots[(Hash + P) & Mask];
    const std::uint64_t Header = Sl.Header.load(std::memory_order_acquire);
    if (Header == 0)
      return std::nullopt; // Empty terminates the probe chain.
    // Payload reads are ordered after the inserter's release-store of
    // the Full header; a Full slot's payload is never rewritten
    // (removal tombstones the header only), so these are race-free.
    if (Header == FullHeader &&
        std::memcmp(Sl.Suffix, Suffix, SuffixBytes) == 0)
      return Sl.Location;
  }
  return std::nullopt;
}

void ConcurrentBinIndex::tableInsert(Shard &S, std::uint32_t Bin,
                                     const std::uint8_t *Suffix,
                                     std::uint64_t Location) {
  std::shared_lock<std::shared_mutex> Guard(S.TableMutex);
  for (;;) {
    Table &T = *S.Current.load(std::memory_order_acquire);
    // Grow at 70% load (tombstones count: they lengthen probe chains
    // just like live entries until growth drops them).
    if ((T.Used.load(std::memory_order_relaxed) + 1) * 10 >=
        T.Capacity * 7) {
      Guard.unlock();
      growTable(S);
      Guard.lock();
      continue;
    }
    const std::uint64_t Hash = slotHash(Bin, Suffix);
    const std::uint64_t BusyHeader = headerFor(StateBusy, Bin, Hash);
    const std::uint64_t FullHeader = headerFor(StateFull, Bin, Hash);
    const std::size_t Mask = T.Capacity - 1;
    for (std::size_t P = 0; P < T.Capacity; ++P) {
      Slot &Sl = T.Slots[(Hash + P) & Mask];
      std::uint64_t Header = Sl.Header.load(std::memory_order_acquire);
      while (stateOf(Header) == StateEmpty) {
        std::uint64_t Expected = 0;
        if (Sl.Header.compare_exchange_weak(Expected, BusyHeader,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
          Sl.Location = Location;
          std::memcpy(Sl.Suffix, Suffix, SuffixBytes);
          Sl.Header.store(FullHeader, std::memory_order_release);
          T.Used.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Lost the claim race to another bin's inserter.
        S.CasRetries.fetch_add(1, std::memory_order_relaxed);
        Header = Expected;
      }
    }
    // A full sweep without a claimable slot (the table filled under
    // us): force growth and retry.
    Guard.unlock();
    growTable(S);
    Guard.lock();
  }
}

bool ConcurrentBinIndex::tableRemove(Shard &S, std::uint32_t Bin,
                                     const std::uint8_t *Suffix) {
  std::shared_lock<std::shared_mutex> Guard(S.TableMutex);
  Table &T = *S.Current.load(std::memory_order_acquire);
  const std::uint64_t Hash = slotHash(Bin, Suffix);
  const std::uint64_t FullHeader = headerFor(StateFull, Bin, Hash);
  const std::uint64_t TombHeader = headerFor(StateTomb, Bin, Hash);
  const std::size_t Mask = T.Capacity - 1;
  for (std::size_t P = 0; P < T.Capacity; ++P) {
    Slot &Sl = T.Slots[(Hash + P) & Mask];
    const std::uint64_t Header = Sl.Header.load(std::memory_order_acquire);
    if (Header == 0)
      return false;
    if (Header == FullHeader &&
        std::memcmp(Sl.Suffix, Suffix, SuffixBytes) == 0) {
      // The caller holds this bin's lock, so no other mutator races on
      // this key; the tombstone leaves the payload intact for probes
      // that loaded the Full header just before.
      Sl.Header.store(TombHeader, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ConcurrentBinIndex::growTable(Shard &S) {
  std::unique_lock<std::shared_mutex> Guard(S.TableMutex);
  Table &Old = *S.Current.load(std::memory_order_relaxed);
  // Another grower may have already replaced the table while we waited
  // for the exclusive lock.
  if ((Old.Used.load(std::memory_order_relaxed) + 1) * 10 <
      Old.Capacity * 7)
    return;
  auto Fresh = std::make_unique<Table>(Old.Capacity * 2);
  const std::size_t Mask = Fresh->Capacity - 1;
  std::size_t Live = 0;
  for (std::size_t I = 0; I < Old.Capacity; ++I) {
    const Slot &From = Old.Slots[I];
    const std::uint64_t Header = From.Header.load(std::memory_order_relaxed);
    if (stateOf(Header) != StateFull)
      continue; // tombstones (and impossible Busy) are dropped
    const std::uint64_t Hash = slotHash(binOfHeader(Header), From.Suffix);
    for (std::size_t P = 0; P < Fresh->Capacity; ++P) {
      Slot &To = Fresh->Slots[(Hash + P) & Mask];
      if (To.Header.load(std::memory_order_relaxed) != 0)
        continue;
      To.Location = From.Location;
      std::memcpy(To.Suffix, From.Suffix, SuffixBytes);
      To.Header.store(Header, std::memory_order_relaxed);
      break;
    }
    ++Live;
  }
  Fresh->Used.store(Live, std::memory_order_relaxed);
  Table *Published = Fresh.get();
  // Retire, don't free: lock-free probes in flight may still read the
  // old table. The graveyard is reclaimed at destruction.
  S.Graveyard.push_back(std::move(S.CurrentOwned));
  S.CurrentOwned = std::move(Fresh);
  S.Current.store(Published, std::memory_order_release);
}

void ConcurrentBinIndex::drainBinLocked(std::uint32_t Bin, Shard &S,
                                        std::vector<FlushEvent> &FlushOut) {
  FlushEvent Event;
  Event.Bin = Bin;
  Buffer.drain(Bin, Event.Suffixes, Event.Locations);
  const std::size_t Run = Event.Locations.size();
  S.BufferedEntries.fetch_sub(Run, std::memory_order_relaxed);

  for (std::size_t I = 0; I < Run; ++I)
    tableInsert(S, Bin, Event.Suffixes.data() + I * SuffixBytes,
                Event.Locations[I]);

  std::size_t Evicted = 0;
  if (Directory) {
    ByteVector EvictedSuffixes;
    Evicted = Directory->mergeRun(
        Bin, ByteSpan(Event.Suffixes.data(), Event.Suffixes.size()),
        Event.Locations, &EvictedSuffixes);
    // Tombstone the evicted identities (possibly including run entries
    // inserted just above — random replacement may pick them).
    for (std::size_t J = 0; J < Evicted; ++J) {
      const bool Removed = tableRemove(
          S, Bin, EvictedSuffixes.data() + J * SuffixBytes);
      assert(Removed && "Evicted entry missing from the slot table");
      (void)Removed;
    }
    S.Evictions.fetch_add(Evicted, std::memory_order_relaxed);
  }
  S.TreeEntries.fetch_add(Run - Evicted, std::memory_order_relaxed);
  S.Epoch.fetch_add(1, std::memory_order_relaxed);
  FlushOut.push_back(std::move(Event));
}

LookupResult
ConcurrentBinIndex::processOne(std::uint32_t Bin, const Fingerprint &Fp,
                               std::uint64_t Location,
                               std::vector<FlushEvent> &LocalFlush) {
  Shard &S = Shards[shardOfBin(Bin)];
  BinGuard Guard(BinLocks[Bin], S);

  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);

  // Paper lookup order (§3.3): bin buffer first, then bin tree.
  std::size_t Depth = 0;
  if (auto Hit = Buffer.lookup(Bin, Suffix, &Depth)) {
    S.BufferHits.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{LookupOutcome::DupBuffer, *Hit,
                        static_cast<std::uint32_t>(Depth)};
  }
  if (auto Hit = tableProbe(S, Bin, Suffix)) {
    S.TreeHits.fetch_add(1, std::memory_order_relaxed);
    return LookupResult{LookupOutcome::DupTree, *Hit, 0};
  }

  S.UniqueInserts.fetch_add(1, std::memory_order_relaxed);
  const bool Full = Buffer.insert(Bin, Suffix, Location);
  S.BufferedEntries.fetch_add(1, std::memory_order_relaxed);
  S.Epoch.fetch_add(1, std::memory_order_relaxed);
  if (Full)
    drainBinLocked(Bin, S, LocalFlush);
  return LookupResult{LookupOutcome::Unique, Location};
}

void ConcurrentBinIndex::processBatch(
    std::span<const Fingerprint> Fingerprints,
    std::span<const std::uint64_t> Locations,
    std::span<const std::uint8_t> KnownDuplicate, ThreadPool &Pool,
    std::span<LookupResult> Results, std::vector<FlushEvent> &FlushOut) {
  const std::size_t Count = Fingerprints.size();
  assert(Locations.size() == Count && Results.size() == Count &&
         "Batch arrays disagree");
  assert((KnownDuplicate.empty() || KnownDuplicate.size() == Count) &&
         "KnownDuplicate must be empty or batch-sized");
  if (Count == 0)
    return;

  // Identical scatter + bin-slicing structure to DedupIndex: the same
  // counting sort and the same worker-order flush concatenation keep
  // flush events in the same order, so batch results are bit-identical
  // to the serial oracle's.
  const std::uint32_t BinCount = Layout.binCount();
  std::vector<std::uint32_t> BinOf(Count);
  std::vector<std::uint32_t> CountPerBin(BinCount + 1, 0);
  for (std::size_t I = 0; I < Count; ++I) {
    BinOf[I] = Layout.binOf(Fingerprints[I]);
    ++CountPerBin[BinOf[I] + 1];
  }
  for (std::uint32_t B = 0; B < BinCount; ++B)
    CountPerBin[B + 1] += CountPerBin[B];
  std::vector<std::uint32_t> ItemsByBin(Count);
  {
    std::vector<std::uint32_t> Cursor(CountPerBin.begin(),
                                      CountPerBin.end() - 1);
    for (std::size_t I = 0; I < Count; ++I)
      ItemsByBin[Cursor[BinOf[I]]++] = static_cast<std::uint32_t>(I);
  }

  const unsigned Workers = Pool.size();
  std::vector<std::vector<FlushEvent>> FlushPerWorker(Workers);
  Pool.parallelForSlices(
      0, BinCount,
      [&](std::size_t BinBegin, std::size_t BinEnd, unsigned Worker) {
        std::vector<FlushEvent> &LocalFlush = FlushPerWorker[Worker];
        for (std::size_t Bin = BinBegin; Bin < BinEnd; ++Bin) {
          for (std::uint32_t Slot = CountPerBin[Bin];
               Slot < CountPerBin[Bin + 1]; ++Slot) {
            const std::uint32_t Item = ItemsByBin[Slot];
            if (!KnownDuplicate.empty() && KnownDuplicate[Item]) {
              Shards[shardOfBin(static_cast<std::uint32_t>(Bin))]
                  .GpuHits.fetch_add(1, std::memory_order_relaxed);
              Results[Item].Outcome = LookupOutcome::DupGpu;
              // Location already resolved by the caller from the GPU
              // metadata mirror; leave Results[Item].Location intact.
              continue;
            }
            Results[Item] =
                processOne(static_cast<std::uint32_t>(Bin),
                           Fingerprints[Item], Locations[Item], LocalFlush);
          }
        }
      });

  for (std::vector<FlushEvent> &Local : FlushPerWorker)
    for (FlushEvent &Event : Local)
      FlushOut.push_back(std::move(Event));
}

std::optional<std::uint64_t>
ConcurrentBinIndex::lookup(const Fingerprint &Fp) const {
  const std::uint32_t Bin = Layout.binOf(Fp);
  Shard &S = Shards[shardOfBin(Bin)];
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);
  {
    // The buffer's vectors are mutated under the bin lock, so even a
    // read-only scan must hold it; the tree probe below is lock-free.
    BinGuard Guard(BinLocks[Bin], S);
    if (auto Hit = Buffer.lookup(Bin, Suffix))
      return Hit;
  }
  return tableProbe(S, Bin, Suffix);
}

LookupResult ConcurrentBinIndex::upsert(const Fingerprint &Fp,
                                        std::uint64_t Location,
                                        std::vector<FlushEvent> &FlushOut) {
  return processOne(Layout.binOf(Fp), Fp, Location, FlushOut);
}

bool ConcurrentBinIndex::remove(const Fingerprint &Fp) {
  const std::uint32_t Bin = Layout.binOf(Fp);
  Shard &S = Shards[shardOfBin(Bin)];
  BinGuard Guard(BinLocks[Bin], S);
  std::uint8_t Suffix[Fingerprint::Size];
  Layout.extractSuffix(Fp, Suffix);
  if (Buffer.remove(Bin, Suffix)) {
    S.BufferedEntries.fetch_sub(1, std::memory_order_relaxed);
    S.Epoch.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (Directory) {
    if (!Directory->remove(Bin, Suffix))
      return false;
    const bool Removed = tableRemove(S, Bin, Suffix);
    assert(Removed && "Directory and slot table disagree");
    (void)Removed;
  } else if (!tableRemove(S, Bin, Suffix)) {
    return false;
  }
  S.TreeEntries.fetch_sub(1, std::memory_order_relaxed);
  S.Epoch.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ConcurrentBinIndex::flushAll(std::vector<FlushEvent> &FlushOut) {
  for (std::uint32_t Bin = 0; Bin < Layout.binCount(); ++Bin) {
    Shard &S = Shards[shardOfBin(Bin)];
    BinGuard Guard(BinLocks[Bin], S);
    if (Buffer.size(Bin) == 0)
      continue;
    drainBinLocked(Bin, S, FlushOut);
  }
}

std::uint64_t ConcurrentBinIndex::bufferHits() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].BufferHits.load(std::memory_order_relaxed);
  return Total;
}

std::uint64_t ConcurrentBinIndex::treeHits() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].TreeHits.load(std::memory_order_relaxed);
  return Total;
}

std::uint64_t ConcurrentBinIndex::gpuHits() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].GpuHits.load(std::memory_order_relaxed);
  return Total;
}

std::uint64_t ConcurrentBinIndex::uniqueInserts() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].UniqueInserts.load(std::memory_order_relaxed);
  return Total;
}

std::uint64_t ConcurrentBinIndex::evictions() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].Evictions.load(std::memory_order_relaxed);
  return Total;
}

std::size_t ConcurrentBinIndex::treeEntries() const {
  std::size_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].TreeEntries.load(std::memory_order_relaxed);
  return Total;
}

std::size_t ConcurrentBinIndex::memoryBytes() const {
  // The oracle's logical definition — entry payload bytes, not slot
  // table footprint — so memory-budget policies (the service's cache
  // tier) behave identically over either implementation.
  std::size_t Entries = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Entries += Shards[S].TreeEntries.load(std::memory_order_relaxed) +
               Shards[S].BufferedEntries.load(std::memory_order_relaxed);
  return Entries * Layout.cpuEntryBytes();
}

std::uint64_t ConcurrentBinIndex::casRetries() const {
  std::uint64_t Total = 0;
  for (std::size_t S = 0; S < ShardCount; ++S)
    Total += Shards[S].CasRetries.load(std::memory_order_relaxed);
  return Total;
}

IndexShardStats ConcurrentBinIndex::shardStats(unsigned Shard) const {
  assert(Shard < ShardCount && "Shard id out of range");
  const struct Shard &S = Shards[Shard];
  IndexShardStats Stats;
  Stats.BufferHits = S.BufferHits.load(std::memory_order_relaxed);
  Stats.TreeHits = S.TreeHits.load(std::memory_order_relaxed);
  Stats.GpuHits = S.GpuHits.load(std::memory_order_relaxed);
  Stats.UniqueInserts = S.UniqueInserts.load(std::memory_order_relaxed);
  Stats.Evictions = S.Evictions.load(std::memory_order_relaxed);
  Stats.TreeEntries = S.TreeEntries.load(std::memory_order_relaxed);
  Stats.MemoryBytes =
      (S.TreeEntries.load(std::memory_order_relaxed) +
       S.BufferedEntries.load(std::memory_order_relaxed)) *
      Layout.cpuEntryBytes();
  const std::uint64_t BinCount = Layout.binCount();
  Stats.BinBegin = static_cast<std::uint32_t>(
      (Shard * BinCount + ShardCount - 1) / ShardCount);
  Stats.BinEnd = static_cast<std::uint32_t>(
      ((Shard + 1) * BinCount + ShardCount - 1) / ShardCount);
  Stats.Epoch = S.Epoch.load(std::memory_order_relaxed);
  Stats.CasRetries = S.CasRetries.load(std::memory_order_relaxed);
  return Stats;
}
