//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line virtual anchor for the Chunker hierarchy.
///
//===----------------------------------------------------------------------===//

#include "chunk/Chunker.h"

using namespace padre;

Chunker::~Chunker() = default;
