//===----------------------------------------------------------------------===//
///
/// \file
/// The chunking stage: breaking a data stream into the chunks that are
/// the unit of deduplication and compression (§2 "Chunking is the
/// process of breaking a data stream into chunks"). The paper's primary
/// storage target uses fixed-size chunks (4 KiB write granularity);
/// content-defined chunkers are provided as extensions for file-backed
/// streams.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CHUNK_CHUNKER_H
#define PADRE_CHUNK_CHUNKER_H

#include "util/Bytes.h"

#include <cstdint>
#include <vector>

namespace padre {

/// A chunk within a stream: a byte view plus its stream offset. Views
/// alias the caller's stream buffer and are valid only while it lives.
struct ChunkView {
  ByteSpan Data;
  std::uint64_t StreamOffset = 0;
};

/// Abstract chunking strategy.
class Chunker {
public:
  virtual ~Chunker();

  /// Splits \p Stream into chunks appended to \p Out. \p BaseOffset is
  /// the stream offset of `Stream[0]` (recorded in each ChunkView). The
  /// concatenation of the produced views always equals \p Stream.
  virtual void split(ByteSpan Stream, std::uint64_t BaseOffset,
                     std::vector<ChunkView> &Out) const = 0;

  /// Strategy name for reports ("fixed", "rabin", "fastcdc").
  virtual const char *name() const = 0;

  /// The nominal (target/average) chunk size in bytes.
  virtual std::size_t nominalChunkSize() const = 0;
};

} // namespace padre

#endif // PADRE_CHUNK_CHUNKER_H
