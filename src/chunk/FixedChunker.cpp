//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size chunker implementation.
///
//===----------------------------------------------------------------------===//

#include "chunk/FixedChunker.h"

#include <cassert>

using namespace padre;

FixedChunker::FixedChunker(std::size_t ChunkSize) : ChunkSize(ChunkSize) {
  assert(ChunkSize > 0 && "Chunk size must be nonzero");
}

void FixedChunker::split(ByteSpan Stream, std::uint64_t BaseOffset,
                         std::vector<ChunkView> &Out) const {
  for (std::size_t Offset = 0; Offset < Stream.size(); Offset += ChunkSize) {
    const std::size_t Length = std::min(ChunkSize, Stream.size() - Offset);
    Out.push_back(
        ChunkView{Stream.subspan(Offset, Length), BaseOffset + Offset});
  }
}
