//===----------------------------------------------------------------------===//
///
/// \file
/// FastCDC-style chunker implementation.
///
//===----------------------------------------------------------------------===//

#include "chunk/FastCdcChunker.h"

#include "util/Random.h"

#include <bit>
#include <cassert>

using namespace padre;

static std::uint64_t maskWithBits(unsigned Bits) {
  assert(Bits >= 1 && Bits < 64 && "Mask bits out of range");
  // Spread mask bits across the upper word (gear hashes mix new bytes
  // into the low bits first; the high bits carry the most history).
  std::uint64_t Mask = 0;
  for (unsigned I = 0; I < Bits; ++I)
    Mask |= 1ULL << (63 - I * 2);
  return Mask;
}

FastCdcChunker::FastCdcChunker(const FastCdcConfig &Config) : Config(Config) {
  assert(Config.MinSize > 0 && Config.MinSize <= Config.AvgSize &&
         Config.AvgSize <= Config.MaxSize && "Invalid CDC size bounds");

  const unsigned AvgBits =
      std::bit_width(static_cast<std::uint64_t>(Config.AvgSize)) - 1;
  const unsigned Norm = Config.NormalizationBits;
  StrictMask = maskWithBits(AvgBits + Norm);
  LooseMask = maskWithBits(AvgBits > Norm ? AvgBits - Norm : 1);

  Random Rng(Config.Seed);
  for (std::uint64_t &Entry : GearTable)
    Entry = Rng.nextU64();
}

std::size_t FastCdcChunker::findBoundary(ByteSpan Stream,
                                         std::size_t Begin) const {
  const std::size_t Remaining = Stream.size() - Begin;
  if (Remaining <= Config.MinSize)
    return Stream.size();
  const std::size_t Limit = std::min(Remaining, Config.MaxSize);
  const std::size_t Normal = std::min(Remaining, Config.AvgSize);

  std::uint64_t Hash = 0;
  std::size_t I = Config.MinSize;
  // Phase 1: strict mask up to the target size (suppresses early cuts).
  for (; I < Normal; ++I) {
    Hash = (Hash << 1) + GearTable[Stream[Begin + I]];
    if ((Hash & StrictMask) == 0)
      return Begin + I + 1;
  }
  // Phase 2: loose mask up to MaxSize (encourages a cut before clamp).
  for (; I < Limit; ++I) {
    Hash = (Hash << 1) + GearTable[Stream[Begin + I]];
    if ((Hash & LooseMask) == 0)
      return Begin + I + 1;
  }
  return Begin + Limit;
}

void FastCdcChunker::split(ByteSpan Stream, std::uint64_t BaseOffset,
                           std::vector<ChunkView> &Out) const {
  std::size_t Begin = 0;
  while (Begin < Stream.size()) {
    const std::size_t End = findBoundary(Stream, Begin);
    assert(End > Begin && End <= Stream.size() &&
           "Chunker must make progress within the stream");
    Out.push_back(ChunkView{Stream.subspan(Begin, End - Begin),
                            BaseOffset + Begin});
    Begin = End;
  }
}
