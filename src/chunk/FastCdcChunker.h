//===----------------------------------------------------------------------===//
///
/// \file
/// FastCDC-style gear-hash content-defined chunking (extension).
/// Uses a one-table "gear" rolling hash and normalized chunking: a
/// stricter mask before the target size and a looser mask after it,
/// which concentrates the chunk-size distribution around the target.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CHUNK_FASTCDCCHUNKER_H
#define PADRE_CHUNK_FASTCDCCHUNKER_H

#include "chunk/Chunker.h"

#include <array>

namespace padre {

/// Configuration for FastCDC. Sizes must satisfy
/// `0 < MinSize <= AvgSize <= MaxSize`.
struct FastCdcConfig {
  std::size_t MinSize = 2048;
  std::size_t AvgSize = 8192;
  std::size_t MaxSize = 65536;
  std::uint64_t Seed = 0x6A09E667F3BCC908ULL;
  /// Normalization level: how many extra mask bits are required before
  /// the target size (and relaxed after it).
  unsigned NormalizationBits = 2;
};

/// Gear-hash normalized content-defined chunker.
class FastCdcChunker : public Chunker {
public:
  explicit FastCdcChunker(const FastCdcConfig &Config = FastCdcConfig());

  void split(ByteSpan Stream, std::uint64_t BaseOffset,
             std::vector<ChunkView> &Out) const override;
  const char *name() const override { return "fastcdc"; }
  std::size_t nominalChunkSize() const override { return Config.AvgSize; }

private:
  std::size_t findBoundary(ByteSpan Stream, std::size_t Begin) const;

  FastCdcConfig Config;
  std::uint64_t StrictMask; ///< used before AvgSize
  std::uint64_t LooseMask;  ///< used after AvgSize
  std::array<std::uint64_t, 256> GearTable;
};

} // namespace padre

#endif // PADRE_CHUNK_FASTCDCCHUNKER_H
