//===----------------------------------------------------------------------===//
///
/// \file
/// Content-defined chunking with a Rabin rolling fingerprint
/// (extension; the paper uses fixed-size chunks). Boundaries are placed
/// where the rolling hash over a sliding window matches a target value
/// under a mask, with min/max chunk size clamps — shift-resistant
/// boundaries for file-backed streams.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CHUNK_RABINCHUNKER_H
#define PADRE_CHUNK_RABINCHUNKER_H

#include "chunk/Chunker.h"

#include <array>

namespace padre {

/// Configuration for Rabin CDC. Sizes must satisfy
/// `0 < MinSize <= AvgSize <= MaxSize`; AvgSize must be a power of two
/// (it determines the boundary mask).
struct RabinConfig {
  std::size_t MinSize = 2048;
  std::size_t AvgSize = 4096;
  std::size_t MaxSize = 16384;
  std::size_t WindowSize = 48;
  std::uint64_t Seed = 0x9B97F4A7C15ULL;
};

/// Rabin rolling-hash content-defined chunker.
class RabinChunker : public Chunker {
public:
  explicit RabinChunker(const RabinConfig &Config = RabinConfig());

  void split(ByteSpan Stream, std::uint64_t BaseOffset,
             std::vector<ChunkView> &Out) const override;
  const char *name() const override { return "rabin"; }
  std::size_t nominalChunkSize() const override { return Config.AvgSize; }

private:
  /// Finds the end of the next chunk starting at `Stream[Begin]`.
  std::size_t findBoundary(ByteSpan Stream, std::size_t Begin) const;

  RabinConfig Config;
  std::uint64_t BoundaryMask;
  // Rolling-hash tables: PushTable mixes an incoming byte, PopTable
  // removes the byte leaving the window (precomputed byte^degree term).
  std::array<std::uint64_t, 256> PushTable;
  std::array<std::uint64_t, 256> PopTable;
};

} // namespace padre

#endif // PADRE_CHUNK_RABINCHUNKER_H
