//===----------------------------------------------------------------------===//
///
/// \file
/// Rabin-style rolling-hash content-defined chunker. A multiplicative
/// rolling hash over a fixed window stands in for the classical
/// irreducible-polynomial Rabin fingerprint; both yield uniformly
/// distributed window hashes, which is the only property CDC needs.
///
//===----------------------------------------------------------------------===//

#include "chunk/RabinChunker.h"

#include "util/Random.h"

#include <cassert>

using namespace padre;

// Odd multiplier for the rolling hash (any odd constant with good bit
// dispersion works; this is the golden-ratio constant).
static constexpr std::uint64_t HashBase = 0x9E3779B97F4A7C15ULL;

static std::uint64_t roundUpPow2(std::uint64_t Value) {
  std::uint64_t Result = 1;
  while (Result < Value)
    Result <<= 1;
  return Result;
}

RabinChunker::RabinChunker(const RabinConfig &Config) : Config(Config) {
  assert(Config.MinSize > 0 && Config.MinSize <= Config.AvgSize &&
         Config.AvgSize <= Config.MaxSize && "Invalid CDC size bounds");
  assert(Config.WindowSize >= 4 && Config.WindowSize <= Config.MinSize &&
         "Window must fit inside the minimum chunk");

  // A boundary is only tested after MinSize bytes, so aim the geometric
  // gap at (Avg - Min) to make the mean land near Avg.
  const std::uint64_t Target =
      std::max<std::uint64_t>(1, Config.AvgSize - Config.MinSize);
  BoundaryMask = roundUpPow2(Target) - 1;

  Random Rng(Config.Seed);
  for (std::uint64_t &Entry : PushTable)
    Entry = Rng.nextU64();

  // PopTable[b] = PushTable[b] * HashBase^(WindowSize-1): the term byte b
  // contributes once it is the oldest byte in the window.
  std::uint64_t Power = 1;
  for (std::size_t I = 1; I < Config.WindowSize; ++I)
    Power *= HashBase;
  for (unsigned B = 0; B < 256; ++B)
    PopTable[B] = PushTable[B] * Power;
}

std::size_t RabinChunker::findBoundary(ByteSpan Stream,
                                       std::size_t Begin) const {
  const std::size_t Remaining = Stream.size() - Begin;
  if (Remaining <= Config.MinSize)
    return Stream.size();
  const std::size_t Limit = std::min(Remaining, Config.MaxSize);

  // Prime the window over the WindowSize bytes that end at MinSize.
  std::uint64_t Hash = 0;
  const std::size_t WarmupBegin = Config.MinSize - Config.WindowSize;
  for (std::size_t I = WarmupBegin; I < Config.MinSize; ++I)
    Hash = Hash * HashBase + PushTable[Stream[Begin + I]];

  for (std::size_t I = Config.MinSize; I < Limit; ++I) {
    if ((Hash & BoundaryMask) == BoundaryMask)
      return Begin + I;
    // Slide: drop the oldest byte, append the next one.
    Hash -= PopTable[Stream[Begin + I - Config.WindowSize]];
    Hash = Hash * HashBase + PushTable[Stream[Begin + I]];
  }
  return Begin + Limit;
}

void RabinChunker::split(ByteSpan Stream, std::uint64_t BaseOffset,
                         std::vector<ChunkView> &Out) const {
  std::size_t Begin = 0;
  while (Begin < Stream.size()) {
    const std::size_t End = findBoundary(Stream, Begin);
    assert(End > Begin && "Chunker must make progress");
    Out.push_back(ChunkView{Stream.subspan(Begin, End - Begin),
                            BaseOffset + Begin});
    Begin = End;
  }
}
