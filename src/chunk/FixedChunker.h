//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size chunking — the paper's configuration: primary storage
/// writes arrive in block-sized units, so chunk boundaries are simply
/// block boundaries (4 KiB for the compression path, §3.2; the §2 memory
/// sizing example uses 8 KiB).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_CHUNK_FIXEDCHUNKER_H
#define PADRE_CHUNK_FIXEDCHUNKER_H

#include "chunk/Chunker.h"

namespace padre {

/// Splits a stream into consecutive chunks of exactly `ChunkSize` bytes
/// (the final chunk may be shorter).
class FixedChunker : public Chunker {
public:
  /// \p ChunkSize must be nonzero.
  explicit FixedChunker(std::size_t ChunkSize);

  void split(ByteSpan Stream, std::uint64_t BaseOffset,
             std::vector<ChunkView> &Out) const override;
  const char *name() const override { return "fixed"; }
  std::size_t nominalChunkSize() const override { return ChunkSize; }

private:
  std::size_t ChunkSize;
};

} // namespace padre

#endif // PADRE_CHUNK_FIXEDCHUNKER_H
