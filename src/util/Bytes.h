//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level helpers shared across padre: byte span aliases,
/// little-endian load/store, hex formatting, and human-readable size /
/// throughput formatting used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_BYTES_H
#define PADRE_UTIL_BYTES_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace padre {

/// Immutable view over raw bytes.
using ByteSpan = std::span<const std::uint8_t>;
/// Mutable view over raw bytes.
using MutableByteSpan = std::span<std::uint8_t>;
/// Owning byte buffer.
using ByteVector = std::vector<std::uint8_t>;

/// Reads a little-endian 16/32/64-bit value from \p Data.
std::uint16_t loadLe16(const std::uint8_t *Data);
std::uint32_t loadLe32(const std::uint8_t *Data);
std::uint64_t loadLe64(const std::uint8_t *Data);

/// Writes a little-endian 16/32/64-bit value to \p Data.
void storeLe16(std::uint8_t *Data, std::uint16_t Value);
void storeLe32(std::uint8_t *Data, std::uint32_t Value);
void storeLe64(std::uint8_t *Data, std::uint64_t Value);

/// Lowercase hex rendering of \p Bytes ("deadbeef…").
std::string toHex(ByteSpan Bytes);

/// "4.00 KiB", "1.50 GiB", … (binary units, two decimals).
std::string formatSize(std::uint64_t Bytes);

/// "123.4 MB/s" from bytes and seconds; "inf" guarded.
std::string formatThroughput(double Bytes, double Seconds);

/// Appends \p Suffix bytes to \p Out.
void appendBytes(ByteVector &Out, ByteSpan Suffix);

} // namespace padre

#endif // PADRE_UTIL_BYTES_H
