//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for per-batch scratch memory on the reduction
/// hot path. Every pipeline batch used to allocate (and free) a dozen
/// short-lived vectors — fingerprints, scatter tables, lookup results,
/// chunk refs — on the global heap. The arena replaces those with
/// pointer bumps over a few retained blocks: `reset()` recycles the
/// memory between batches without returning it to the allocator, so a
/// steady-state batch performs zero heap calls for scratch.
///
/// Safety: recycled memory is *poisoned* on reset (every reclaimed byte
/// is overwritten with `PoisonByte`), so a stale reference held across
/// a reset reads an obviously-wrong pattern instead of silently
/// aliasing the next batch's data — the allocator-poisoning tests in
/// tests/test_util.cpp and tests/test_hotpath.cpp assert exactly this
/// (no stale chunk refs can leak into recipes).
///
/// The arena is single-owner: one pipeline/engine instance resets it
/// between its own batches. It is not thread-safe; parallel stages may
/// *read* arena-backed spans freely (the owner does not reset while a
/// batch is in flight), but all allocation happens on the batch-driving
/// thread.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_ARENA_H
#define PADRE_UTIL_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace padre {

/// Bump-pointer arena with poisoned reuse.
class Arena {
public:
  /// The pattern written over every reclaimed byte on reset().
  static constexpr std::uint8_t PoisonByte = 0xA5;

  /// \p FirstBlockBytes sizes the initial block (subsequent blocks grow
  /// geometrically).
  explicit Arena(std::size_t FirstBlockBytes = 64 * 1024);
  ~Arena();

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align (a power of two).
  /// Never returns null; zero-byte requests return a valid aligned
  /// pointer into the current block (not necessarily distinct).
  void *allocate(std::size_t Bytes, std::size_t Align);

  /// Typed allocation: \p Count default-initialized elements of \p T.
  /// T must be trivially copyable and trivially destructible — arena
  /// memory is reclaimed wholesale, destructors never run.
  template <typename T> std::span<T> allocateSpan(std::size_t Count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena spans hold trivial types only");
    T *Data = static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
    return std::span<T>(Data, Count);
  }

  /// Typed allocation with every element set to \p Value.
  template <typename T>
  std::span<T> allocateFilled(std::size_t Count, const T &Value) {
    std::span<T> Out = allocateSpan<T>(Count);
    for (T &Element : Out)
      Element = Value;
    return Out;
  }

  /// Reclaims every allocation: all but the largest block are released,
  /// the survivor's used bytes are poisoned, and the bump pointer
  /// rewinds. Pointers handed out before the reset must not be
  /// dereferenced afterwards (they read PoisonByte until reused).
  void reset();

  /// Bytes handed out since construction or the last reset().
  std::size_t bytesAllocated() const { return Allocated; }

  /// Bytes of block storage currently owned (allocated or not).
  std::size_t bytesReserved() const;

  /// Blocks currently owned. Steady state is 1: reset() keeps only the
  /// largest block, so a spiky batch grows the arena once and then
  /// every later batch bump-allocates from the single survivor.
  std::size_t blockCount() const { return Blocks.size(); }

private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> Storage;
    std::size_t Capacity = 0;
    std::size_t Used = 0;
  };

  /// Appends a block of at least \p MinBytes (geometric growth).
  Block &grow(std::size_t MinBytes);

  std::vector<Block> Blocks;
  std::size_t NextBlockBytes;
  std::size_t Allocated = 0;
};

/// std::allocator-compatible adapter so standard containers can borrow
/// arena storage for batch-scoped scratch (`std::vector<T,
/// ArenaAllocator<T>>`). Deallocation is a no-op — the arena reclaims
/// wholesale on reset — so such containers must not outlive the owning
/// arena's next reset.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(Arena &A) : A(&A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &Other) : A(Other.arena()) {}

  T *allocate(std::size_t Count) {
    return static_cast<T *>(A->allocate(Count * sizeof(T), alignof(T)));
  }
  void deallocate(T *, std::size_t) {} // reclaimed by Arena::reset()

  Arena *arena() const { return A; }

  friend bool operator==(const ArenaAllocator &X, const ArenaAllocator &Y) {
    return X.A == Y.A;
  }

private:
  Arena *A;
};

} // namespace padre

#endif // PADRE_UTIL_ARENA_H
