//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the fixed-size worker pool.
///
//===----------------------------------------------------------------------===//

#include "util/ThreadPool.h"

#include <cassert>

using namespace padre;

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0) {
    WorkerCount = std::thread::hardware_concurrency();
    if (WorkerCount == 0)
      WorkerCount = 1;
  }
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
  assert(Queue.empty() && "Pool destroyed with queued work");
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "Cannot submit an empty task");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!ShuttingDown && "Submit after shutdown");
    Queue.push_back(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(std::size_t Begin, std::size_t End,
                             const std::function<void(std::size_t)> &Body) {
  parallelForSlices(Begin, End,
                    [&Body](std::size_t SliceBegin, std::size_t SliceEnd,
                            unsigned) {
                      for (std::size_t I = SliceBegin; I < SliceEnd; ++I)
                        Body(I);
                    });
}

void ThreadPool::parallelForSlices(
    std::size_t Begin, std::size_t End,
    const std::function<void(std::size_t, std::size_t, unsigned)> &Body) {
  if (Begin >= End)
    return;
  const std::size_t Total = End - Begin;
  const std::size_t SliceCount =
      std::min<std::size_t>(Workers.size(), Total);
  const std::size_t PerSlice = (Total + SliceCount - 1) / SliceCount;

  // Slice 0 runs on the calling thread so a single-threaded pool still
  // makes forward progress while the caller waits.
  for (std::size_t Slice = 1; Slice < SliceCount; ++Slice) {
    const std::size_t SliceBegin = Begin + Slice * PerSlice;
    const std::size_t SliceEnd = std::min(End, SliceBegin + PerSlice);
    if (SliceBegin >= SliceEnd)
      continue;
    submit([&Body, SliceBegin, SliceEnd, Slice] {
      Body(SliceBegin, SliceEnd, static_cast<unsigned>(Slice));
    });
  }
  Body(Begin, std::min(End, Begin + PerSlice), 0);
  waitIdle();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(
          Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        assert(ShuttingDown && "Spurious wake with empty queue");
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --InFlight;
      if (InFlight == 0)
        AllDone.notify_all();
    }
  }
}
