//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool used by every parallel stage in padre.
///
/// The pool is deliberately simple: a single locked queue feeding N
/// workers, plus a structured `parallelFor` helper that blocks the caller
/// until all slices complete. The evaluation harness measures *modelled*
/// time (see sim/CostModel.h), so the pool only needs to be functionally
/// parallel, not maximally scalable.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_THREADPOOL_H
#define PADRE_UTIL_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace padre {

/// A fixed-size thread pool with a blocking wait-for-idle operation.
class ThreadPool {
public:
  /// Creates a pool with \p WorkerCount workers. A count of zero selects
  /// `std::thread::hardware_concurrency()` (at least one).
  explicit ThreadPool(unsigned WorkerCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task for asynchronous execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished executing.
  void waitIdle();

  /// Runs `Body(I)` for every I in [Begin, End) across the pool and blocks
  /// until all iterations complete. Iterations are grouped into
  /// contiguous slices (one per worker by default) so `Body` may assume
  /// that same-slice iterations run on one thread in order.
  void parallelFor(std::size_t Begin, std::size_t End,
                   const std::function<void(std::size_t)> &Body);

  /// Runs `Body(SliceBegin, SliceEnd, SliceIndex)` for a partition of
  /// [Begin, End) into at most `size()` contiguous slices and blocks
  /// until all slices complete.
  void parallelForSlices(
      std::size_t Begin, std::size_t End,
      const std::function<void(std::size_t, std::size_t, unsigned)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  std::size_t InFlight = 0;
  bool ShuttingDown = false;
};

} // namespace padre

#endif // PADRE_UTIL_THREADPOOL_H
