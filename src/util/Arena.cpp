//===----------------------------------------------------------------------===//
///
/// \file
/// Arena implementation.
///
//===----------------------------------------------------------------------===//

#include "util/Arena.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace padre;

Arena::Arena(std::size_t FirstBlockBytes)
    : NextBlockBytes(std::max<std::size_t>(FirstBlockBytes, 64)) {}

Arena::~Arena() = default;

Arena::Block &Arena::grow(std::size_t MinBytes) {
  const std::size_t Capacity = std::max(NextBlockBytes, MinBytes);
  NextBlockBytes = Capacity * 2;
  Block NewBlock;
  NewBlock.Storage = std::make_unique<std::uint8_t[]>(Capacity);
  NewBlock.Capacity = Capacity;
  Blocks.push_back(std::move(NewBlock));
  return Blocks.back();
}

void *Arena::allocate(std::size_t Bytes, std::size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "Alignment must be a power of two");
  Block *Current = Blocks.empty() ? nullptr : &Blocks.back();
  std::size_t Aligned = 0;
  if (Current) {
    const std::uintptr_t Base =
        reinterpret_cast<std::uintptr_t>(Current->Storage.get());
    Aligned = (Base + Current->Used + Align - 1) / Align * Align - Base;
  }
  if (!Current || Aligned + Bytes > Current->Capacity) {
    Current = &grow(Bytes + Align);
    const std::uintptr_t Base =
        reinterpret_cast<std::uintptr_t>(Current->Storage.get());
    Aligned = (Base + Align - 1) / Align * Align - Base;
  }
  void *Result = Current->Storage.get() + Aligned;
  Current->Used = Aligned + Bytes;
  Allocated += Bytes;
  return Result;
}

void Arena::reset() {
  if (Blocks.empty()) {
    Allocated = 0;
    return;
  }
  // Keep only the largest block: the arena converges to a single block
  // sized for the worst batch seen so far.
  std::size_t Largest = 0;
  for (std::size_t I = 1; I < Blocks.size(); ++I)
    if (Blocks[I].Capacity > Blocks[Largest].Capacity)
      Largest = I;
  if (Largest != 0)
    std::swap(Blocks[0], Blocks[Largest]);
  Blocks.resize(1);
  // Poison the reclaimed bytes so stale references read an obviously
  // wrong pattern instead of the next batch's data.
  std::memset(Blocks[0].Storage.get(), PoisonByte, Blocks[0].Used);
  Blocks[0].Used = 0;
  Allocated = 0;
}

std::size_t Arena::bytesReserved() const {
  std::size_t Total = 0;
  for (const Block &B : Blocks)
    Total += B.Capacity;
  return Total;
}
