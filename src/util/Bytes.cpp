//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the byte-level helpers.
///
//===----------------------------------------------------------------------===//

#include "util/Bytes.h"

#include <cstdio>
#include <cstring>

using namespace padre;

std::uint16_t padre::loadLe16(const std::uint8_t *Data) {
  return static_cast<std::uint16_t>(Data[0] | (Data[1] << 8));
}

std::uint32_t padre::loadLe32(const std::uint8_t *Data) {
  return static_cast<std::uint32_t>(Data[0]) |
         (static_cast<std::uint32_t>(Data[1]) << 8) |
         (static_cast<std::uint32_t>(Data[2]) << 16) |
         (static_cast<std::uint32_t>(Data[3]) << 24);
}

std::uint64_t padre::loadLe64(const std::uint8_t *Data) {
  return static_cast<std::uint64_t>(loadLe32(Data)) |
         (static_cast<std::uint64_t>(loadLe32(Data + 4)) << 32);
}

void padre::storeLe16(std::uint8_t *Data, std::uint16_t Value) {
  Data[0] = static_cast<std::uint8_t>(Value);
  Data[1] = static_cast<std::uint8_t>(Value >> 8);
}

void padre::storeLe32(std::uint8_t *Data, std::uint32_t Value) {
  for (unsigned I = 0; I < 4; ++I)
    Data[I] = static_cast<std::uint8_t>(Value >> (8 * I));
}

void padre::storeLe64(std::uint8_t *Data, std::uint64_t Value) {
  for (unsigned I = 0; I < 8; ++I)
    Data[I] = static_cast<std::uint8_t>(Value >> (8 * I));
}

std::string padre::toHex(ByteSpan Bytes) {
  static const char Digits[] = "0123456789abcdef";
  std::string Result;
  Result.reserve(Bytes.size() * 2);
  for (std::uint8_t Byte : Bytes) {
    Result.push_back(Digits[Byte >> 4]);
    Result.push_back(Digits[Byte & 0xF]);
  }
  return Result;
}

std::string padre::formatSize(std::uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < 5) {
    Value /= 1024.0;
    ++Unit;
  }
  char Buffer[64];
  if (Unit == 0)
    std::snprintf(Buffer, sizeof(Buffer), "%llu B",
                  static_cast<unsigned long long>(Bytes));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.2f %s", Value, Units[Unit]);
  return Buffer;
}

std::string padre::formatThroughput(double Bytes, double Seconds) {
  if (Seconds <= 0.0)
    return "inf";
  const double MbPerSec = Bytes / Seconds / 1e6;
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.1f MB/s", MbPerSec);
  return Buffer;
}

void padre::appendBytes(ByteVector &Out, ByteSpan Suffix) {
  Out.insert(Out.end(), Suffix.begin(), Suffix.end());
}
