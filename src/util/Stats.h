//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight statistics helpers used by the engines and benchmark
/// harnesses: running mean/min/max/stddev and a fixed-resolution
/// histogram with percentile queries.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_STATS_H
#define PADRE_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace padre {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
public:
  /// Adds one observation.
  void add(double Value);

  /// Merges another accumulator into this one.
  void merge(const RunningStats &Other);

  std::uint64_t count() const { return Count; }
  double mean() const { return Count == 0 ? 0.0 : Mean; }
  double min() const { return Count == 0 ? 0.0 : Min; }
  double max() const { return Count == 0 ? 0.0 : Max; }
  double sum() const { return Mean * static_cast<double>(Count); }

  /// Sample variance (n-1 denominator); zero for fewer than two samples.
  double variance() const;
  double stddev() const;

private:
  std::uint64_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// A histogram over [0, UpperBound) with uniformly sized buckets plus an
/// overflow bucket; supports percentile estimation by linear
/// interpolation inside the containing bucket.
class Histogram {
public:
  /// Creates a histogram with \p BucketCount buckets spanning
  /// [0, UpperBound). Values >= UpperBound land in the overflow bucket.
  Histogram(double UpperBound, std::size_t BucketCount);

  void add(double Value);
  std::uint64_t count() const { return Total; }

  /// Estimated value at percentile \p P in [0, 100]. Returns the upper
  /// bound if the percentile lands in the overflow bucket.
  double percentile(double P) const;

  /// One-line summary "count=… p50=… p95=… p99=… max=…".
  std::string summary() const;

private:
  double UpperBound;
  double BucketWidth;
  std::vector<std::uint64_t> Buckets; // last bucket is overflow
  std::uint64_t Total = 0;
  double MaxSeen = 0.0;
};

} // namespace padre

#endif // PADRE_UTIL_STATS_H
