//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the statistics helpers.
///
//===----------------------------------------------------------------------===//

#include "util/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace padre;

void RunningStats::add(double Value) {
  ++Count;
  if (Count == 1) {
    Mean = Min = Max = Value;
    M2 = 0.0;
    return;
  }
  const double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
  Min = std::min(Min, Value);
  Max = std::max(Max, Value);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  const double Delta = Other.Mean - Mean;
  const std::uint64_t NewCount = Count + Other.Count;
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Count) *
                       static_cast<double>(Other.Count) /
                       static_cast<double>(NewCount);
  Mean += Delta * static_cast<double>(Other.Count) /
          static_cast<double>(NewCount);
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Count = NewCount;
}

double RunningStats::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double UpperBound, std::size_t BucketCount)
    : UpperBound(UpperBound),
      BucketWidth(UpperBound / static_cast<double>(BucketCount)),
      Buckets(BucketCount + 1, 0) {
  assert(UpperBound > 0.0 && "Histogram upper bound must be positive");
  assert(BucketCount > 0 && "Histogram needs at least one bucket");
}

void Histogram::add(double Value) {
  assert(Value >= 0.0 && "Histogram values must be non-negative");
  std::size_t Index = Value >= UpperBound
                          ? Buckets.size() - 1
                          : static_cast<std::size_t>(Value / BucketWidth);
  Index = std::min(Index, Buckets.size() - 1);
  ++Buckets[Index];
  ++Total;
  MaxSeen = std::max(MaxSeen, Value);
}

double Histogram::percentile(double P) const {
  assert(P >= 0.0 && P <= 100.0 && "Percentile out of range");
  if (Total == 0)
    return 0.0;
  const double Target = P / 100.0 * static_cast<double>(Total);
  double Cumulative = 0.0;
  for (std::size_t I = 0; I < Buckets.size(); ++I) {
    const double Next = Cumulative + static_cast<double>(Buckets[I]);
    if (Next >= Target) {
      if (I + 1 == Buckets.size())
        return MaxSeen; // overflow bucket
      const double Fraction =
          Buckets[I] == 0
              ? 0.0
              : (Target - Cumulative) / static_cast<double>(Buckets[I]);
      return (static_cast<double>(I) + Fraction) * BucketWidth;
    }
    Cumulative = Next;
  }
  return MaxSeen;
}

std::string Histogram::summary() const {
  char Buffer[160];
  std::snprintf(Buffer, sizeof(Buffer),
                "count=%llu p50=%.3g p95=%.3g p99=%.3g max=%.3g",
                static_cast<unsigned long long>(Total), percentile(50.0),
                percentile(95.0), percentile(99.0), MaxSeen);
  return Buffer;
}
