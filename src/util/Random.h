//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generation (xoshiro256** seeded by
/// splitmix64). Every stochastic component in padre (workload generator,
/// random replacement/eviction policies) draws from this generator so
/// experiments are reproducible from a single seed.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_RANDOM_H
#define PADRE_UTIL_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace padre {

/// xoshiro256** 1.0 (Blackman & Vigna, public domain reference
/// algorithm), seeded via splitmix64 so that any 64-bit seed yields a
/// well-mixed state.
class Random {
public:
  explicit Random(std::uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed.
  void reseed(std::uint64_t Seed) {
    for (std::uint64_t &Word : State)
      Word = splitMix64(Seed);
  }

  /// Next uniformly distributed 64-bit value.
  std::uint64_t nextU64() {
    const std::uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Next uniformly distributed 32-bit value.
  std::uint32_t nextU32() { return static_cast<std::uint32_t>(nextU64() >> 32); }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Plain modulo mapping; the bias is below Bound * 2^-64, negligible
    // for simulation purposes.
    return nextU64() % Bound;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// True with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fills [Data, Data + Size) with pseudo-random bytes.
  void fillBytes(void *Data, std::size_t Size) {
    auto *Out = static_cast<unsigned char *>(Data);
    while (Size >= 8) {
      const std::uint64_t Word = nextU64();
      for (unsigned I = 0; I < 8; ++I)
        Out[I] = static_cast<unsigned char>(Word >> (8 * I));
      Out += 8;
      Size -= 8;
    }
    if (Size != 0) {
      const std::uint64_t Word = nextU64();
      for (std::size_t I = 0; I < Size; ++I)
        Out[I] = static_cast<unsigned char>(Word >> (8 * I));
    }
  }

  /// The splitmix64 step; advances \p State and returns the next output.
  static std::uint64_t splitMix64(std::uint64_t &State) {
    std::uint64_t Z = (State += 0x9E3779B97F4A7C15ULL);
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

private:
  static std::uint64_t rotl(std::uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  std::uint64_t State[4];
};

} // namespace padre

#endif // PADRE_UTIL_RANDOM_H
