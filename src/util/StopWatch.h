//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch. Used for functional-mode wall timings in
/// examples and tests; the evaluation harness reports modelled time from
/// sim/ResourceLedger.h instead (see DESIGN.md §1).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_UTIL_STOPWATCH_H
#define PADRE_UTIL_STOPWATCH_H

#include <chrono>

namespace padre {

/// Measures elapsed wall time from construction or the last restart.
class StopWatch {
public:
  StopWatch() : Start(Clock::now()) {}

  /// Resets the epoch to now.
  void restart() { Start = Clock::now(); }

  /// Seconds elapsed since the epoch.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Microseconds elapsed since the epoch.
  double micros() const { return seconds() * 1e6; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace padre

#endif // PADRE_UTIL_STOPWATCH_H
