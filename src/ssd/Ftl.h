//===----------------------------------------------------------------------===//
///
/// \file
/// A page-level flash translation layer under the SSD model. The seed
/// model priced write amplification as an input constant
/// (SsdCosts::SequentialWaf / RandomWaf); this FTL makes it an
/// *output*: hosts append logical pages into log blocks, overwrites
/// and TRIMs invalidate old pages, and garbage collection relocates
/// whatever is still live out of victim blocks before erasing them —
/// so the NAND traffic (and therefore the endurance story the paper's
/// §1 motivation rests on) emerges from the actual overwrite pattern
/// instead of being assumed.
///
/// Design (log-structured / append-only logical space):
///   * A logical page is a monotonically allocated 64-bit id; the FTL
///     maps it to a physical page (block x page offset). Callers that
///     need overwrite semantics (the chunk store: one location =
///     one byte extent) hold an Extent of logical pages and release it
///     when the data dies — exactly how the destage stream behaves.
///   * Writes append into one open log block; full blocks close, and
///     a new block is taken from the free list (lowest erase count
///     first — dynamic wear leveling).
///   * When the free list drops to the reserve, greedy GC picks the
///     closed block with the fewest valid pages, relocates the
///     survivors to the log head and erases it. Over-provisioned
///     blocks (FtlConfig::OverprovisionPct) guarantee GC can always
///     make progress below the logical capacity.
///   * Static wear leveling: when the erase-count spread exceeds
///     WearDeltaLimit, the coldest closed block is migrated and
///     erased, bounding the spread.
///
/// The FTL is pure bookkeeping — deterministic, no RNG, no ledger
/// charges. SsdModel translates its counters (pages programmed,
/// relocations, erases) into modelled service time, NAND bytes and
/// `padre_ftl_*` metrics; see ssd/SsdModel.h.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SSD_FTL_H
#define PADRE_SSD_FTL_H

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace padre {
namespace ssd {

/// FTL geometry and policy knobs. The defaults model a small device
/// slice; benches size Blocks so the workload's live set plus churn
/// fits under the logical capacity.
struct FtlConfig {
  /// NAND page size; equals the volume block size in every experiment.
  std::uint32_t PageBytes = 4096;
  /// Pages per erase block.
  std::uint32_t PagesPerBlock = 64;
  /// Physical erase blocks (raw capacity = Blocks x PagesPerBlock).
  std::uint32_t Blocks = 256;
  /// Share of raw capacity reserved for the FTL (invalid-page slack
  /// that keeps GC productive). Logical capacity is
  /// raw x (1 - OverprovisionPct/100).
  double OverprovisionPct = 7.0;
  /// GC runs whenever the free list is at or below this many blocks.
  /// Must leave room for one relocation destination (>= 2).
  std::uint32_t GcReserveBlocks = 2;
  /// Static wear leveling triggers when max-min erase count exceeds
  /// this; the bound the erase-balance tests assert.
  std::uint32_t WearDeltaLimit = 16;
  /// Erase budget per block (P/E cycles); the device-lifetime model.
  std::uint32_t EraseBudget = 3000;
  /// Circular window of metadata-stream pages (journal commits, bin
  /// log flushes): an append past the window invalidates the oldest
  /// metadata page, modelling log truncation reuse.
  std::uint64_t MetadataPages = 512;
};

/// True if \p Config is internally consistent (positive geometry,
/// over-provisioning below 90%, reserve leaves usable blocks).
bool isValidFtlConfig(const FtlConfig &Config);

/// Deterministic page-level FTL. Not thread-safe — the owner
/// (SsdModel) serializes access.
class Ftl {
public:
  explicit Ftl(const FtlConfig &Config);

  /// A run of logical pages holding one caller extent (a destaged
  /// chunk). Pages at the seams may be shared with the neighbouring
  /// extents of the same append stream; the FTL refcounts them.
  struct Extent {
    std::uint64_t FirstPage = 0;
    std::uint64_t LastPage = 0;
    bool Valid = false;
  };

  /// Appends a packed stream of caller extents (\p ChunkBytes byte
  /// sizes) to the log: chunks are laid head-to-tail, so neighbours
  /// share seam pages; the stream's final partial page is closed
  /// (program-once NAND — later streams start a fresh page). Appends
  /// one Extent per chunk to \p Out. Returns false (writing nothing)
  /// when the stream would exceed the logical capacity or GC cannot
  /// free a block.
  bool appendStream(std::span<const std::uint64_t> ChunkBytes,
                    std::vector<Extent> &Out);

  /// Appends ceil(Bytes / PageBytes) whole pages to the circular
  /// metadata stream, retiring the oldest window overflow. Returns
  /// false on capacity exhaustion.
  bool appendMetadata(std::uint64_t Bytes);

  /// Releases \p E: seam-page refcounts drop, and pages with no
  /// remaining extent are invalidated (TRIM). Safe on an invalid
  /// extent (no-op).
  void releaseExtent(const Extent &E);

  /// Pages needed to append \p TotalBytes as one fresh stream.
  std::uint64_t pagesForBytes(std::uint64_t TotalBytes) const;

  //===--------------------------------------------------------------===//
  // Measurement.
  //===--------------------------------------------------------------===//

  /// Monotonic program/erase counters (SsdModel charges service time
  /// and NAND bytes from the deltas around each host command).
  struct Counters {
    std::uint64_t HostPages = 0; ///< pages programmed for host data
    std::uint64_t GcPages = 0;   ///< pages relocated by GC / wear level
    std::uint64_t Erases = 0;
    std::uint64_t GcRuns = 0;
    std::uint64_t WearMigrations = 0;
  };
  const Counters &counters() const { return Stats; }

  /// Measured write amplification: (host + relocated) / host pages.
  /// 1.0 before any host program.
  double measuredWaf() const;

  /// Erase-count balance across all blocks.
  std::uint32_t minEraseCount() const;
  std::uint32_t maxEraseCount() const;
  std::uint32_t eraseSpread() const {
    return maxEraseCount() - minEraseCount();
  }

  /// Share of the device's total erase budget consumed, in [0, 1+).
  double lifetimeFractionUsed() const;

  std::uint64_t livePages() const { return L2P.size(); }
  std::uint64_t freeBlocks() const { return FreeList.size(); }
  std::uint64_t capacityPages() const { return LogicalCapacityPages; }
  std::uint64_t rawPages() const { return TotalPages; }
  const FtlConfig &config() const { return Config; }

  /// Full cross-check of the mapping invariants: forward and reverse
  /// maps agree, per-block valid counts match the reverse map, free
  /// blocks are empty, seam refcounts cover exactly the live pages,
  /// and the live set fits the logical capacity. Returns false and
  /// fills \p Why (when non-null) on the first violation — the "GC
  /// never loses a live page" oracle of the fault tests.
  bool checkInvariants(std::string *Why = nullptr) const;

private:
  static constexpr std::uint64_t NoPage = ~0ull;

  /// Physical page number helpers.
  std::uint32_t blockOf(std::uint64_t Ppn) const {
    return static_cast<std::uint32_t>(Ppn / Config.PagesPerBlock);
  }

  /// Takes the free block with the lowest (erase count, id) as the new
  /// open log block. Requires a non-empty free list.
  void openNextBlock();

  /// Allocates the next physical page of the open log block (no GC;
  /// the reserve guarantees space during relocation).
  std::uint64_t allocPpn();

  /// Programs logical page \p Lpn at the log head and installs the
  /// mapping. \p ForHost selects the host/GC counter.
  void programPage(std::uint64_t Lpn, bool ForHost);

  /// Unmaps \p Lpn and marks its physical page invalid.
  void invalidatePage(std::uint64_t Lpn);

  /// Drops one extent reference from \p Lpn, invalidating at zero.
  void releasePageRef(std::uint64_t Lpn);

  /// Runs GC until the free list exceeds the reserve. Returns false
  /// if no victim can make progress (device wedged — callers reject
  /// the write upfront, so this is defensive).
  bool ensureFree();

  /// Erases \p Block (must hold no valid pages) and runs the static
  /// wear-leveling check.
  void eraseBlock(std::uint32_t Block);

  /// Migrates and erases the coldest closed block when the erase
  /// spread exceeds WearDeltaLimit.
  void maybeWearLevel();

  /// Relocates every valid page out of \p Block to the log head.
  void relocateBlock(std::uint32_t Block);

  FtlConfig Config;
  std::uint64_t TotalPages = 0;
  std::uint64_t LogicalCapacityPages = 0;

  struct BlockState {
    std::uint32_t ValidPages = 0;
    std::uint32_t WritePtr = 0; ///< pages programmed since last erase
    std::uint32_t EraseCount = 0;
    bool Free = true;
  };
  std::vector<BlockState> BlocksState;
  std::vector<std::uint32_t> FreeList; ///< kept sorted by (erase, id)
  std::uint32_t OpenBlock = 0;
  bool HasOpenBlock = false;

  /// Logical page id -> physical page number.
  std::unordered_map<std::uint64_t, std::uint64_t> L2P;
  /// Physical page number -> logical id (NoPage when invalid/free).
  std::vector<std::uint64_t> P2L;
  /// Extents sharing each live logical page (seam refcounting).
  std::unordered_map<std::uint64_t, std::uint32_t> PageRefs;
  /// Next logical page id.
  std::uint64_t NextLpn = 0;

  /// Circular metadata stream window (oldest first).
  std::deque<std::uint64_t> MetaRing;

  Counters Stats;
  bool InWearLevel = false;
};

} // namespace ssd
} // namespace padre

#endif // PADRE_SSD_FTL_H
