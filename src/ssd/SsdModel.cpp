//===----------------------------------------------------------------------===//
///
/// \file
/// SSD model implementation.
///
//===----------------------------------------------------------------------===//

#include "ssd/SsdModel.h"

#include <cassert>

using namespace padre;

SsdModel::SsdModel(const CostModel &Model, ResourceLedger &Ledger)
    : Model(Model), Ledger(Ledger) {
  assert(isValidCostModel(Model) && "Invalid cost model");
}

void SsdModel::noteHostWrite(std::uint64_t Bytes) {
  HostBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void SsdModel::writeSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  Ledger.chargeMicros(Resource::Ssd, Model.ssdSeqWriteUs(Bytes));
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Bytes) *
                                 Model.Ssd.SequentialWaf),
      std::memory_order_relaxed);
}

void SsdModel::writeRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return;
  Ledger.chargeMicros(Resource::Ssd,
                      Model.Ssd.RandWrite4KUs * static_cast<double>(Count));
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Count) * 4096.0 *
                                 Model.Ssd.RandomWaf),
      std::memory_order_relaxed);
}

void SsdModel::readSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  Ledger.chargeMicros(Resource::Ssd, Model.ssdSeqReadUs(Bytes));
}

void SsdModel::readRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return;
  Ledger.chargeMicros(Resource::Ssd,
                      Model.Ssd.RandRead4KUs * static_cast<double>(Count));
}

double SsdModel::enduranceRatio() const {
  const std::uint64_t Host = hostBytesWritten();
  if (Host == 0)
    return 0.0;
  return static_cast<double>(nandBytesWritten()) / static_cast<double>(Host);
}

double SsdModel::baselineWriteIops4K() const {
  return 1e6 / Model.Ssd.RandWrite4KUs;
}
