//===----------------------------------------------------------------------===//
///
/// \file
/// SSD model implementation.
///
//===----------------------------------------------------------------------===//

#include "ssd/SsdModel.h"

#include <cassert>

using namespace padre;

SsdModel::SsdModel(const CostModel &Model, ResourceLedger &Ledger)
    : Model(Model), Ledger(Ledger) {
  assert(isValidCostModel(Model) && "Invalid cost model");
}

void SsdModel::setObs(const obs::ObsSinks &Obs) {
  Trace = Obs.Trace;
  if (!Obs.Metrics)
    return;
  // Service time per SSD command. A command's span position on the SSD
  // lane doubles as its modelled queue position (the lane is a
  // capacity-one device, so accumulated busy time IS the queue).
  IoHist = &Obs.Metrics->histogram("padre_ssd_io_us",
                                   "SSD command service time "
                                   "(modelled microseconds)",
                                   1.0, 2.0, 24);
  SeqWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-write\"}", "SSD commands by type");
  RandWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-write\"}", "SSD commands by type");
  SeqReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-read\"}", "SSD commands by type");
  RandReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-read\"}", "SSD commands by type");
}

void SsdModel::noteHostWrite(std::uint64_t Bytes) {
  HostBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void SsdModel::writeSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, "ssd:seq-write",
                           obs::CategoryIo);
  const double Micros = Model.ssdSeqWriteUs(Bytes);
  Ledger.chargeMicros(Resource::Ssd, Micros);
  if (IoHist) {
    IoHist->observe(Micros);
    SeqWriteOps->add(1);
  }
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Bytes) *
                                 Model.Ssd.SequentialWaf),
      std::memory_order_relaxed);
}

void SsdModel::writeRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return;
  const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, "ssd:rand-write",
                           obs::CategoryIo);
  const double Micros =
      Model.Ssd.RandWrite4KUs * static_cast<double>(Count);
  Ledger.chargeMicros(Resource::Ssd, Micros);
  if (IoHist) {
    IoHist->observe(Micros);
    RandWriteOps->add(1);
  }
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Count) * 4096.0 *
                                 Model.Ssd.RandomWaf),
      std::memory_order_relaxed);
}

void SsdModel::readSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, "ssd:seq-read",
                           obs::CategoryIo);
  const double Micros = Model.ssdSeqReadUs(Bytes);
  Ledger.chargeMicros(Resource::Ssd, Micros);
  if (IoHist) {
    IoHist->observe(Micros);
    SeqReadOps->add(1);
  }
}

void SsdModel::readRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return;
  const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, "ssd:rand-read",
                           obs::CategoryIo);
  const double Micros =
      Model.Ssd.RandRead4KUs * static_cast<double>(Count);
  Ledger.chargeMicros(Resource::Ssd, Micros);
  if (IoHist) {
    IoHist->observe(Micros);
    RandReadOps->add(1);
  }
}

double SsdModel::enduranceRatio() const {
  const std::uint64_t Host = hostBytesWritten();
  if (Host == 0)
    return 0.0;
  return static_cast<double>(nandBytesWritten()) / static_cast<double>(Host);
}

double SsdModel::baselineWriteIops4K() const {
  return 1e6 / Model.Ssd.RandWrite4KUs;
}
