//===----------------------------------------------------------------------===//
///
/// \file
/// SSD model implementation.
///
//===----------------------------------------------------------------------===//

#include "ssd/SsdModel.h"

#include "fault/FaultInjector.h"

#include <cassert>

using namespace padre;

SsdModel::SsdModel(const CostModel &Model, ResourceLedger &Ledger)
    : Model(Model), Ledger(Ledger) {
  assert(isValidCostModel(Model) && "Invalid cost model");
}

void SsdModel::setObs(const obs::ObsSinks &Obs) {
  Trace = Obs.Trace;
  if (!Obs.Metrics)
    return;
  MetricsReg = Obs.Metrics;
  if (FtlModel)
    registerFtlMetrics();
  // Service time per SSD command. A command's span position on the SSD
  // lane doubles as its modelled queue position (the lane is a
  // capacity-one device, so accumulated busy time IS the queue).
  IoHist = &Obs.Metrics->histogram("padre_ssd_io_us",
                                   "SSD command service time "
                                   "(modelled microseconds)",
                                   1.0, 2.0, 24);
  SeqWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-write\"}", "SSD commands by type");
  RandWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-write\"}", "SSD commands by type");
  SeqReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-read\"}", "SSD commands by type");
  RandReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-read\"}", "SSD commands by type");
  RetryReads = &Obs.Metrics->counter("padre_retry_total{op=\"read\"}",
                                     "SSD commands re-issued after a "
                                     "transient fault");
  RetryWrites = &Obs.Metrics->counter("padre_retry_total{op=\"write\"}",
                                      "SSD commands re-issued after a "
                                      "transient fault");
}

void SsdModel::noteHostWrite(std::uint64_t Bytes) {
  HostBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void SsdModel::enableFtl(const ssd::FtlConfig &Config) {
  assert(ssd::isValidFtlConfig(Config) && "invalid FTL config");
  std::lock_guard<std::mutex> Lock(FtlMutex);
  FtlModel = std::make_unique<ssd::Ftl>(Config);
  Extents.clear();
  if (MetricsReg)
    registerFtlMetrics();
}

void SsdModel::registerFtlMetrics() {
  FtlHostPagesC = &MetricsReg->counter(
      "padre_ftl_pages_total{kind=\"host\"}",
      "FTL pages programmed, by origin (host data vs GC relocation)");
  FtlGcPagesC =
      &MetricsReg->counter("padre_ftl_pages_total{kind=\"gc\"}",
                           "FTL pages programmed, by origin (host data "
                           "vs GC relocation)");
  FtlErasesC = &MetricsReg->counter("padre_ftl_erase_total",
                                    "FTL block erases (endurance)");
  FtlGcRunsC = &MetricsReg->counter("padre_ftl_gc_total",
                                    "FTL garbage-collection victim "
                                    "reclaims");
  FtlWearMigsC = &MetricsReg->counter("padre_ftl_wear_migration_total",
                                      "Static wear-leveling block "
                                      "migrations");
  FtlWafG = &MetricsReg->gauge("padre_ftl_measured_waf",
                               "Measured write amplification "
                               "(host+GC pages over host pages)");
  FtlFreeBlocksG =
      &MetricsReg->gauge("padre_ftl_free_blocks", "FTL free erase blocks");
  FtlLivePagesG =
      &MetricsReg->gauge("padre_ftl_live_pages", "FTL live (mapped) pages");
  FtlSpreadG = &MetricsReg->gauge("padre_ftl_erase_spread",
                                  "Max minus min per-block erase count "
                                  "(wear-leveling bound)");
}

void SsdModel::settleFtlWork(const ssd::Ftl::Counters &Before) {
  const ssd::Ftl::Counters &Now = FtlModel->counters();
  const std::uint64_t HostP = Now.HostPages - Before.HostPages;
  const std::uint64_t GcP = Now.GcPages - Before.GcPages;
  const std::uint64_t Er = Now.Erases - Before.Erases;
  // Every program — host or relocation — is NAND traffic: with the
  // FTL on, this *replaces* the constant-WAF accounting.
  NandBytes.fetch_add((HostP + GcP) * FtlModel->config().PageBytes,
                      std::memory_order_relaxed);
  if (GcP > 0 || Er > 0) {
    const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, "ftl:gc",
                             obs::CategoryIo);
    // A relocation is a page read plus a page program; reclaiming the
    // victim costs an erase.
    const double GcUs =
        static_cast<double>(GcP) *
            (Model.Ssd.FtlGcPageReadUs + Model.Ssd.FtlGcPageProgramUs) +
        static_cast<double>(Er) * Model.Ssd.FtlBlockEraseUs;
    Ledger.chargeMicros(Resource::Ssd, GcUs);
    if (OpLog)
      OpLog->push_back(GcUs);
    if (IoHist)
      IoHist->observe(GcUs);
  }
  if (FtlHostPagesC) {
    FtlHostPagesC->add(HostP);
    FtlGcPagesC->add(GcP);
    FtlErasesC->add(Er);
    FtlGcRunsC->add(Now.GcRuns - Before.GcRuns);
    FtlWearMigsC->add(Now.WearMigrations - Before.WearMigrations);
    FtlWafG->set(FtlModel->measuredWaf());
    FtlFreeBlocksG->set(static_cast<double>(FtlModel->freeBlocks()));
    FtlLivePagesG->set(static_cast<double>(FtlModel->livePages()));
    FtlSpreadG->set(static_cast<double>(FtlModel->eraseSpread()));
  }
}

fault::Status SsdModel::writeDestage(std::span<const ChunkExtent> Chunks,
                                     std::uint64_t TotalBytes) {
  if (!FtlModel)
    // Parity by construction: without the FTL a destage stream is
    // exactly the sequential write it always was.
    return writeSequential(TotalBytes);
  if (TotalBytes == 0 && Chunks.empty())
    return {};
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:seq-write",
            Model.ssdSeqWriteUs(TotalBytes), SeqWriteOps);
  std::lock_guard<std::mutex> Lock(FtlMutex);
  const ssd::Ftl::Counters Before = FtlModel->counters();
  std::vector<std::uint64_t> Sizes;
  Sizes.reserve(Chunks.size());
  for (const ChunkExtent &C : Chunks)
    Sizes.push_back(C.Bytes);
  std::vector<ssd::Ftl::Extent> Exts;
  Exts.reserve(Chunks.size());
  if (!FtlModel->appendStream(Sizes, Exts))
    return fault::Status::error(fault::ErrorCode::SsdWriteError,
                                FtlModel->livePages());
  for (std::size_t I = 0; I < Chunks.size(); ++I) {
    auto [It, Inserted] = Extents.try_emplace(Chunks[I].Location, Exts[I]);
    if (!Inserted) {
      // A location rewrite: the old pages die.
      FtlModel->releaseExtent(It->second);
      It->second = Exts[I];
    }
  }
  settleFtlWork(Before);
  return St;
}

void SsdModel::invalidateChunk(std::uint64_t Location) {
  if (!FtlModel)
    return;
  std::lock_guard<std::mutex> Lock(FtlMutex);
  auto It = Extents.find(Location);
  if (It == Extents.end())
    return;
  FtlModel->releaseExtent(It->second);
  Extents.erase(It);
  if (FtlLivePagesG) {
    FtlWafG->set(FtlModel->measuredWaf());
    FtlLivePagesG->set(static_cast<double>(FtlModel->livePages()));
  }
}

fault::Status SsdModel::rewriteChunk(std::uint64_t Location,
                                     std::uint64_t Bytes) {
  if (!FtlModel)
    // Parity by construction: the pre-FTL scrub repair charge.
    return writeRandom4K(1);
  const std::uint64_t Pages = FtlModel->pagesForBytes(Bytes);
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:rand-write",
            Model.Ssd.RandWrite4KUs * static_cast<double>(Pages ? Pages : 1),
            RandWriteOps);
  std::lock_guard<std::mutex> Lock(FtlMutex);
  const ssd::Ftl::Counters Before = FtlModel->counters();
  auto It = Extents.find(Location);
  if (It != Extents.end()) {
    FtlModel->releaseExtent(It->second);
    Extents.erase(It);
  }
  const std::uint64_t Sizes[1] = {Bytes};
  std::vector<ssd::Ftl::Extent> Exts;
  if (!FtlModel->appendStream(Sizes, Exts))
    return fault::Status::error(fault::ErrorCode::SsdWriteError,
                                FtlModel->livePages());
  Extents.emplace(Location, Exts[0]);
  settleFtlWork(Before);
  return St;
}

fault::Status SsdModel::issue(fault::FaultSite Site, const char *SpanName,
                              double OpMicros, obs::Counter *OpCounter) {
  if (!Faults) {
    const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, SpanName,
                             obs::CategoryIo);
    Ledger.chargeMicros(Resource::Ssd, OpMicros);
    if (OpLog)
      OpLog->push_back(OpMicros);
    if (IoHist) {
      IoHist->observe(OpMicros);
      OpCounter->add(1);
    }
    return {};
  }

  const fault::FaultPolicy &Policy = Faults->plan().Policy;
  const bool IsRead = Site == fault::FaultSite::SsdRead;
  // Everything this command charges — attempts, timeout stalls and
  // backoff waits — is one queue occupancy for the scheduler's replay.
  double CommandTotalUs = 0.0;
  for (unsigned Attempt = 0;; ++Attempt) {
    std::optional<fault::InjectedFault> Fault;
    {
      const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, SpanName,
                               obs::CategoryIo);
      Fault = Faults->sample(Site);
      // A timed-out attempt occupies the device for the stall on top
      // of the service time; an instant failure still costs a full
      // attempt.
      const double AttemptUs = OpMicros + (Fault ? Fault->ExtraUs : 0.0);
      Ledger.chargeMicros(Resource::Ssd, AttemptUs);
      CommandTotalUs += AttemptUs;
    }
    if (!Fault) {
      if (OpLog)
        OpLog->push_back(CommandTotalUs);
      if (IoHist) {
        IoHist->observe(OpMicros);
        OpCounter->add(1);
      }
      return {};
    }
    if (Attempt >= Policy.MaxRetries) {
      if (OpLog)
        OpLog->push_back(CommandTotalUs);
      return fault::Status::error(IsRead ? fault::ErrorCode::SsdReadError
                                         : fault::ErrorCode::SsdWriteError,
                                  Faults->ops(Site));
    }
    const double BackoffUs =
        Policy.RetryBackoffUs * static_cast<double>(Attempt + 1);
    if (BackoffUs > 0.0) {
      const obs::LaneSpan Retry(Trace, Ledger, Resource::Ssd, "ssd:retry",
                                obs::CategoryIo);
      Ledger.chargeMicros(Resource::Ssd, BackoffUs);
      CommandTotalUs += BackoffUs;
    }
    Retries.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter *C = IsRead ? RetryReads : RetryWrites)
      C->add(1);
  }
}

fault::Status SsdModel::writeSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return {};
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:seq-write",
            Model.ssdSeqWriteUs(Bytes), SeqWriteOps);
  if (FtlModel) {
    // Metadata stream (journal commits, bin-log flushes): whole pages
    // into the FTL's circular window; NAND bytes come from the pages
    // actually programmed, never from the constant WAF.
    std::lock_guard<std::mutex> Lock(FtlMutex);
    const ssd::Ftl::Counters Before = FtlModel->counters();
    if (!FtlModel->appendMetadata(Bytes))
      return fault::Status::error(fault::ErrorCode::SsdWriteError,
                                  FtlModel->livePages());
    settleFtlWork(Before);
    return St;
  }
  // NAND endurance is charged once per command: retries re-issue the
  // host transfer, but the FTL only programs the pages once the data
  // lands (and a failed command's partial programs are noise next to
  // the WAF model's precision).
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Bytes) *
                                 Model.Ssd.SequentialWaf),
      std::memory_order_relaxed);
  return St;
}

fault::Status SsdModel::writeRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return {};
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:rand-write",
            Model.Ssd.RandWrite4KUs * static_cast<double>(Count),
            RandWriteOps);
  if (FtlModel) {
    // Untracked random page updates land as metadata-stream appends
    // (no address to map); chunk rewrites should use rewriteChunk.
    std::lock_guard<std::mutex> Lock(FtlMutex);
    const ssd::Ftl::Counters Before = FtlModel->counters();
    if (!FtlModel->appendMetadata(Count * 4096))
      return fault::Status::error(fault::ErrorCode::SsdWriteError,
                                  FtlModel->livePages());
    settleFtlWork(Before);
    return St;
  }
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Count) * 4096.0 *
                                 Model.Ssd.RandomWaf),
      std::memory_order_relaxed);
  return St;
}

fault::Status SsdModel::readSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return {};
  return issue(fault::FaultSite::SsdRead, "ssd:seq-read",
               Model.ssdSeqReadUs(Bytes), SeqReadOps);
}

fault::Status SsdModel::readRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return {};
  return issue(fault::FaultSite::SsdRead, "ssd:rand-read",
               Model.Ssd.RandRead4KUs * static_cast<double>(Count),
               RandReadOps);
}

double SsdModel::enduranceRatio() const {
  const std::uint64_t Host = hostBytesWritten();
  if (Host == 0)
    return 0.0;
  return static_cast<double>(nandBytesWritten()) / static_cast<double>(Host);
}

double SsdModel::baselineWriteIops4K() const {
  return 1e6 / Model.Ssd.RandWrite4KUs;
}
