//===----------------------------------------------------------------------===//
///
/// \file
/// SSD model implementation.
///
//===----------------------------------------------------------------------===//

#include "ssd/SsdModel.h"

#include "fault/FaultInjector.h"

#include <cassert>

using namespace padre;

SsdModel::SsdModel(const CostModel &Model, ResourceLedger &Ledger)
    : Model(Model), Ledger(Ledger) {
  assert(isValidCostModel(Model) && "Invalid cost model");
}

void SsdModel::setObs(const obs::ObsSinks &Obs) {
  Trace = Obs.Trace;
  if (!Obs.Metrics)
    return;
  // Service time per SSD command. A command's span position on the SSD
  // lane doubles as its modelled queue position (the lane is a
  // capacity-one device, so accumulated busy time IS the queue).
  IoHist = &Obs.Metrics->histogram("padre_ssd_io_us",
                                   "SSD command service time "
                                   "(modelled microseconds)",
                                   1.0, 2.0, 24);
  SeqWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-write\"}", "SSD commands by type");
  RandWriteOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-write\"}", "SSD commands by type");
  SeqReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"seq-read\"}", "SSD commands by type");
  RandReadOps = &Obs.Metrics->counter(
      "padre_ssd_io_total{op=\"rand-read\"}", "SSD commands by type");
  RetryReads = &Obs.Metrics->counter("padre_retry_total{op=\"read\"}",
                                     "SSD commands re-issued after a "
                                     "transient fault");
  RetryWrites = &Obs.Metrics->counter("padre_retry_total{op=\"write\"}",
                                      "SSD commands re-issued after a "
                                      "transient fault");
}

void SsdModel::noteHostWrite(std::uint64_t Bytes) {
  HostBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

fault::Status SsdModel::issue(fault::FaultSite Site, const char *SpanName,
                              double OpMicros, obs::Counter *OpCounter) {
  if (!Faults) {
    const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, SpanName,
                             obs::CategoryIo);
    Ledger.chargeMicros(Resource::Ssd, OpMicros);
    if (OpLog)
      OpLog->push_back(OpMicros);
    if (IoHist) {
      IoHist->observe(OpMicros);
      OpCounter->add(1);
    }
    return {};
  }

  const fault::FaultPolicy &Policy = Faults->plan().Policy;
  const bool IsRead = Site == fault::FaultSite::SsdRead;
  // Everything this command charges — attempts, timeout stalls and
  // backoff waits — is one queue occupancy for the scheduler's replay.
  double CommandTotalUs = 0.0;
  for (unsigned Attempt = 0;; ++Attempt) {
    std::optional<fault::InjectedFault> Fault;
    {
      const obs::LaneSpan Span(Trace, Ledger, Resource::Ssd, SpanName,
                               obs::CategoryIo);
      Fault = Faults->sample(Site);
      // A timed-out attempt occupies the device for the stall on top
      // of the service time; an instant failure still costs a full
      // attempt.
      const double AttemptUs = OpMicros + (Fault ? Fault->ExtraUs : 0.0);
      Ledger.chargeMicros(Resource::Ssd, AttemptUs);
      CommandTotalUs += AttemptUs;
    }
    if (!Fault) {
      if (OpLog)
        OpLog->push_back(CommandTotalUs);
      if (IoHist) {
        IoHist->observe(OpMicros);
        OpCounter->add(1);
      }
      return {};
    }
    if (Attempt >= Policy.MaxRetries) {
      if (OpLog)
        OpLog->push_back(CommandTotalUs);
      return fault::Status::error(IsRead ? fault::ErrorCode::SsdReadError
                                         : fault::ErrorCode::SsdWriteError,
                                  Faults->ops(Site));
    }
    const double BackoffUs =
        Policy.RetryBackoffUs * static_cast<double>(Attempt + 1);
    if (BackoffUs > 0.0) {
      const obs::LaneSpan Retry(Trace, Ledger, Resource::Ssd, "ssd:retry",
                                obs::CategoryIo);
      Ledger.chargeMicros(Resource::Ssd, BackoffUs);
      CommandTotalUs += BackoffUs;
    }
    Retries.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter *C = IsRead ? RetryReads : RetryWrites)
      C->add(1);
  }
}

fault::Status SsdModel::writeSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return {};
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:seq-write",
            Model.ssdSeqWriteUs(Bytes), SeqWriteOps);
  // NAND endurance is charged once per command: retries re-issue the
  // host transfer, but the FTL only programs the pages once the data
  // lands (and a failed command's partial programs are noise next to
  // the WAF model's precision).
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Bytes) *
                                 Model.Ssd.SequentialWaf),
      std::memory_order_relaxed);
  return St;
}

fault::Status SsdModel::writeRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return {};
  const fault::Status St =
      issue(fault::FaultSite::SsdWrite, "ssd:rand-write",
            Model.Ssd.RandWrite4KUs * static_cast<double>(Count),
            RandWriteOps);
  NandBytes.fetch_add(
      static_cast<std::uint64_t>(static_cast<double>(Count) * 4096.0 *
                                 Model.Ssd.RandomWaf),
      std::memory_order_relaxed);
  return St;
}

fault::Status SsdModel::readSequential(std::uint64_t Bytes) {
  if (Bytes == 0)
    return {};
  return issue(fault::FaultSite::SsdRead, "ssd:seq-read",
               Model.ssdSeqReadUs(Bytes), SeqReadOps);
}

fault::Status SsdModel::readRandom4K(std::uint64_t Count) {
  if (Count == 0)
    return {};
  return issue(fault::FaultSite::SsdRead, "ssd:rand-read",
               Model.Ssd.RandRead4KUs * static_cast<double>(Count),
               RandReadOps);
}

double SsdModel::enduranceRatio() const {
  const std::uint64_t Host = hostBytesWritten();
  if (Host == 0)
    return 0.0;
  return static_cast<double>(nandBytesWritten()) / static_cast<double>(Host);
}

double SsdModel::baselineWriteIops4K() const {
  return 1e6 / Model.Ssd.RandWrite4KUs;
}
