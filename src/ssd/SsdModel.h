//===----------------------------------------------------------------------===//
///
/// \file
/// The SSD model — the substitution for the paper's Samsung SSD 830
/// (see DESIGN.md §1). The paper uses the SSD in two roles, both of
/// which are properties of this model rather than of a physical device:
///
///   1. a throughput baseline: "we compare our schemes with the
///      throughput of Samsung SSD 830" (§4) — `baselineWriteIops4K()`;
///   2. the motivation for *inline* reduction: background reduction
///      "generates more write I/O than systems without the data
///      reduction operations … due to write endurance problems" (§1) —
///      the NAND-byte endurance counters.
///
/// Service time is charged to the shared resource ledger; endurance is
/// tracked as host bytes (what the workload asked to write) vs NAND
/// bytes (what physically hit flash, including a simple FTL
/// write-amplification factor).
///
/// Fault tolerance (DESIGN.md fault model): with a FaultInjector
/// attached, each command samples the ssd-read/ssd-write fault site
/// per attempt. Latent sector errors and timeouts are retried with
/// linear backoff up to the plan's retry budget — every attempt's
/// service time, timeout stall and backoff wait is charged to the SSD
/// lane, so degradation shows up in modelled time — and a fault that
/// outlives the budget surfaces as a typed Status error. With no
/// injector the code path is exactly the pre-fault one.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SSD_SSDMODEL_H
#define PADRE_SSD_SSDMODEL_H

#include "fault/Status.h"
#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace padre {

namespace fault {
class FaultInjector;
enum class FaultSite : unsigned;
} // namespace fault

/// Modelled SSD with service-time and endurance accounting.
/// Thread-safe.
class SsdModel {
public:
  /// \p Model supplies the SSD constants; \p Ledger receives service
  /// time. Both must outlive the model.
  SsdModel(const CostModel &Model, ResourceLedger &Ledger);

  /// Records that the host submitted \p Bytes of logical writes to the
  /// storage system (before any reduction). Endurance accounting only;
  /// no service time is charged.
  void noteHostWrite(std::uint64_t Bytes);

  /// Sequentially writes \p Bytes (destage streams, bin-buffer
  /// flushes). Charges service time and NAND bytes.
  fault::Status writeSequential(std::uint64_t Bytes);

  /// Writes \p Count random 4 KiB pages. Charges service time and NAND
  /// bytes (with the random-write FTL amplification).
  fault::Status writeRandom4K(std::uint64_t Count);

  /// Sequentially reads \p Bytes.
  fault::Status readSequential(std::uint64_t Bytes);

  /// Reads \p Count random 4 KiB pages.
  fault::Status readRandom4K(std::uint64_t Count);

  /// Logical bytes the host submitted (`noteHostWrite` total).
  std::uint64_t hostBytesWritten() const { return HostBytes.load(); }

  /// Physical bytes written to NAND (after FTL amplification).
  std::uint64_t nandBytesWritten() const { return NandBytes.load(); }

  /// NAND bytes per host byte — the endurance figure of merit. Inline
  /// reduction drives this below 1; background reduction above 1.
  double enduranceRatio() const;

  /// The 4 KiB random-write IOPS of the bare device (the paper's ≈80 K
  /// IOPS comparison baseline).
  double baselineWriteIops4K() const;

  /// The sequential write bandwidth of the bare device in MB/s.
  double baselineSeqWriteMBps() const { return Model.Ssd.SeqWriteMBps; }

  /// Attaches observability sinks: per-command I/O spans on the SSD
  /// lane plus a service-time histogram and per-op counters. Call
  /// before any traffic; sinks must outlive the model.
  void setObs(const obs::ObsSinks &Obs);

  /// Arms (null detaches) the command log: each command appends its
  /// total charged service time in µs — retries, timeout stalls and
  /// backoff waits included — in issue order. The batch scheduler
  /// replays the log as the SSD's queued-command lane, so a destage
  /// write occupies the device queue on the timeline instead of
  /// blocking the CPU lane. Caller owns the vector; arm only around
  /// single-threaded command issue (the pipeline thread).
  void setOpLog(std::vector<double> *Log) { OpLog = Log; }

  /// Attaches a fault injector (null detaches; must outlive the
  /// model). Call before traffic.
  void setFaultInjector(fault::FaultInjector *Injector) {
    Faults = Injector;
  }

  /// Commands re-issued after a transient fault since construction.
  std::uint64_t retryCount() const { return Retries.load(); }

private:
  /// Shared command body: charges \p OpMicros (per attempt, under a
  /// \p SpanName lane span), drives the retry loop when an injector is
  /// attached, and feeds the I/O histogram/op counter on success.
  fault::Status issue(fault::FaultSite Site, const char *SpanName,
                      double OpMicros, obs::Counter *OpCounter);

  CostModel Model;
  ResourceLedger &Ledger;
  std::atomic<std::uint64_t> HostBytes{0};
  std::atomic<std::uint64_t> NandBytes{0};
  std::atomic<std::uint64_t> Retries{0};
  fault::FaultInjector *Faults = nullptr;
  std::vector<double> *OpLog = nullptr;
  // Observability (null = disabled); instruments cached at setObs time.
  obs::TraceRecorder *Trace = nullptr;
  obs::LogHistogram *IoHist = nullptr;
  obs::Counter *SeqWriteOps = nullptr;
  obs::Counter *RandWriteOps = nullptr;
  obs::Counter *SeqReadOps = nullptr;
  obs::Counter *RandReadOps = nullptr;
  obs::Counter *RetryReads = nullptr;
  obs::Counter *RetryWrites = nullptr;
};

} // namespace padre

#endif // PADRE_SSD_SSDMODEL_H
