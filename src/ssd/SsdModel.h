//===----------------------------------------------------------------------===//
///
/// \file
/// The SSD model — the substitution for the paper's Samsung SSD 830
/// (see DESIGN.md §1). The paper uses the SSD in two roles, both of
/// which are properties of this model rather than of a physical device:
///
///   1. a throughput baseline: "we compare our schemes with the
///      throughput of Samsung SSD 830" (§4) — `baselineWriteIops4K()`;
///   2. the motivation for *inline* reduction: background reduction
///      "generates more write I/O than systems without the data
///      reduction operations … due to write endurance problems" (§1) —
///      the NAND-byte endurance counters.
///
/// Service time is charged to the shared resource ledger; endurance is
/// tracked as host bytes (what the workload asked to write) vs NAND
/// bytes (what physically hit flash, including a simple FTL
/// write-amplification factor).
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SSD_SSDMODEL_H
#define PADRE_SSD_SSDMODEL_H

#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"

#include <atomic>
#include <cstdint>

namespace padre {

/// Modelled SSD with service-time and endurance accounting.
/// Thread-safe.
class SsdModel {
public:
  /// \p Model supplies the SSD constants; \p Ledger receives service
  /// time. Both must outlive the model.
  SsdModel(const CostModel &Model, ResourceLedger &Ledger);

  /// Records that the host submitted \p Bytes of logical writes to the
  /// storage system (before any reduction). Endurance accounting only;
  /// no service time is charged.
  void noteHostWrite(std::uint64_t Bytes);

  /// Sequentially writes \p Bytes (destage streams, bin-buffer
  /// flushes). Charges service time and NAND bytes.
  void writeSequential(std::uint64_t Bytes);

  /// Writes \p Count random 4 KiB pages. Charges service time and NAND
  /// bytes (with the random-write FTL amplification).
  void writeRandom4K(std::uint64_t Count);

  /// Sequentially reads \p Bytes.
  void readSequential(std::uint64_t Bytes);

  /// Reads \p Count random 4 KiB pages.
  void readRandom4K(std::uint64_t Count);

  /// Logical bytes the host submitted (`noteHostWrite` total).
  std::uint64_t hostBytesWritten() const { return HostBytes.load(); }

  /// Physical bytes written to NAND (after FTL amplification).
  std::uint64_t nandBytesWritten() const { return NandBytes.load(); }

  /// NAND bytes per host byte — the endurance figure of merit. Inline
  /// reduction drives this below 1; background reduction above 1.
  double enduranceRatio() const;

  /// The 4 KiB random-write IOPS of the bare device (the paper's ≈80 K
  /// IOPS comparison baseline).
  double baselineWriteIops4K() const;

  /// The sequential write bandwidth of the bare device in MB/s.
  double baselineSeqWriteMBps() const { return Model.Ssd.SeqWriteMBps; }

  /// Attaches observability sinks: per-command I/O spans on the SSD
  /// lane plus a service-time histogram and per-op counters. Call
  /// before any traffic; sinks must outlive the model.
  void setObs(const obs::ObsSinks &Obs);

private:
  CostModel Model;
  ResourceLedger &Ledger;
  std::atomic<std::uint64_t> HostBytes{0};
  std::atomic<std::uint64_t> NandBytes{0};
  // Observability (null = disabled); instruments cached at setObs time.
  obs::TraceRecorder *Trace = nullptr;
  obs::LogHistogram *IoHist = nullptr;
  obs::Counter *SeqWriteOps = nullptr;
  obs::Counter *RandWriteOps = nullptr;
  obs::Counter *SeqReadOps = nullptr;
  obs::Counter *RandReadOps = nullptr;
};

} // namespace padre

#endif // PADRE_SSD_SSDMODEL_H
