//===----------------------------------------------------------------------===//
///
/// \file
/// The SSD model — the substitution for the paper's Samsung SSD 830
/// (see DESIGN.md §1). The paper uses the SSD in two roles, both of
/// which are properties of this model rather than of a physical device:
///
///   1. a throughput baseline: "we compare our schemes with the
///      throughput of Samsung SSD 830" (§4) — `baselineWriteIops4K()`;
///   2. the motivation for *inline* reduction: background reduction
///      "generates more write I/O than systems without the data
///      reduction operations … due to write endurance problems" (§1) —
///      the NAND-byte endurance counters.
///
/// Service time is charged to the shared resource ledger; endurance is
/// tracked as host bytes (what the workload asked to write) vs NAND
/// bytes (what physically hit flash). NAND accounting has two modes:
///
///   * default: a constant FTL write-amplification factor
///     (SsdCosts::SequentialWaf / RandomWaf) scales each write — the
///     seed behaviour, bit-exact preserved;
///   * `enableFtl()`: a page-level FTL (ssd/Ftl.h) tracks every chunk
///     extent, and NAND bytes are exactly the pages it programs (host
///     plus GC relocation) — the constants are bypassed, write
///     amplification becomes measured output, GC relocations and
///     erases are charged to the SSD lane under `ftl:gc` spans, and
///     `padre_ftl_*` metrics expose the device state.
///
/// Fault tolerance (DESIGN.md fault model): with a FaultInjector
/// attached, each command samples the ssd-read/ssd-write fault site
/// per attempt. Latent sector errors and timeouts are retried with
/// linear backoff up to the plan's retry budget — every attempt's
/// service time, timeout stall and backoff wait is charged to the SSD
/// lane, so degradation shows up in modelled time — and a fault that
/// outlives the budget surfaces as a typed Status error. With no
/// injector the code path is exactly the pre-fault one.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_SSD_SSDMODEL_H
#define PADRE_SSD_SSDMODEL_H

#include "fault/Status.h"
#include "obs/Obs.h"
#include "sim/CostModel.h"
#include "sim/ResourceLedger.h"
#include "ssd/Ftl.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace padre {

namespace fault {
class FaultInjector;
enum class FaultSite : unsigned;
} // namespace fault

/// Modelled SSD with service-time and endurance accounting.
/// Thread-safe.
class SsdModel {
public:
  /// \p Model supplies the SSD constants; \p Ledger receives service
  /// time. Both must outlive the model.
  SsdModel(const CostModel &Model, ResourceLedger &Ledger);

  /// Records that the host submitted \p Bytes of logical writes to the
  /// storage system (before any reduction). Endurance accounting only;
  /// no service time is charged.
  void noteHostWrite(std::uint64_t Bytes);

  /// Sequentially writes \p Bytes (bin-buffer flushes, journal
  /// commits). Charges service time and NAND bytes. With the FTL
  /// enabled this is the metadata stream: whole pages appended to the
  /// FTL's circular metadata window.
  fault::Status writeSequential(std::uint64_t Bytes);

  /// Writes \p Count random 4 KiB pages. Charges service time and NAND
  /// bytes (with the random-write FTL amplification; with the FTL
  /// enabled, as metadata-stream page appends).
  fault::Status writeRandom4K(std::uint64_t Count);

  /// Sequentially reads \p Bytes.
  fault::Status readSequential(std::uint64_t Bytes);

  /// Reads \p Count random 4 KiB pages.
  fault::Status readRandom4K(std::uint64_t Count);

  //===--------------------------------------------------------------===//
  // Page-level FTL (optional; see ssd/Ftl.h).
  //===--------------------------------------------------------------===//

  /// One destaged chunk of a `writeDestage` stream: the chunk-store
  /// location it will live at and its encoded byte size.
  struct ChunkExtent {
    std::uint64_t Location = 0;
    std::uint64_t Bytes = 0;
  };

  /// Switches NAND accounting from the constant-WAF model to a
  /// page-level FTL with the given geometry. Call before any traffic
  /// (existing extents are dropped).
  void enableFtl(const ssd::FtlConfig &Config);

  bool ftlEnabled() const { return FtlModel != nullptr; }

  /// The FTL, for measurement (null when disabled).
  const ssd::Ftl *ftl() const { return FtlModel.get(); }

  /// Writes one destage stream: \p Chunks packed head-to-tail,
  /// \p TotalBytes their sum. Without the FTL this is exactly
  /// `writeSequential(TotalBytes)` — same charges, same NAND bytes.
  /// With it, the host transfer charges the same sequential service
  /// time, the FTL packs the chunks into log pages (NAND = pages
  /// programmed), and any GC the append triggers is charged under an
  /// `ftl:gc` span.
  fault::Status writeDestage(std::span<const ChunkExtent> Chunks,
                             std::uint64_t TotalBytes);

  /// Marks \p Location's extent dead (chunk GC / TRIM). No-op without
  /// the FTL, or for unknown locations; charges no service time.
  void invalidateChunk(std::uint64_t Location);

  /// Rewrites the chunk at \p Location in place (scrub repair).
  /// Without the FTL this is exactly `writeRandom4K(1)`; with it, the
  /// old extent dies and \p Bytes are re-appended to the log.
  fault::Status rewriteChunk(std::uint64_t Location, std::uint64_t Bytes);

  /// Logical bytes the host submitted (`noteHostWrite` total).
  std::uint64_t hostBytesWritten() const { return HostBytes.load(); }

  /// Physical bytes written to NAND (after FTL amplification).
  std::uint64_t nandBytesWritten() const { return NandBytes.load(); }

  /// NAND bytes per host byte — the endurance figure of merit. Inline
  /// reduction drives this below 1; background reduction above 1.
  double enduranceRatio() const;

  /// The 4 KiB random-write IOPS of the bare device (the paper's ≈80 K
  /// IOPS comparison baseline).
  double baselineWriteIops4K() const;

  /// The sequential write bandwidth of the bare device in MB/s.
  double baselineSeqWriteMBps() const { return Model.Ssd.SeqWriteMBps; }

  /// Attaches observability sinks: per-command I/O spans on the SSD
  /// lane plus a service-time histogram and per-op counters. Call
  /// before any traffic; sinks must outlive the model.
  void setObs(const obs::ObsSinks &Obs);

  /// Arms (null detaches) the command log: each command appends its
  /// total charged service time in µs — retries, timeout stalls and
  /// backoff waits included — in issue order. The batch scheduler
  /// replays the log as the SSD's queued-command lane, so a destage
  /// write occupies the device queue on the timeline instead of
  /// blocking the CPU lane. Caller owns the vector; arm only around
  /// single-threaded command issue (the pipeline thread).
  void setOpLog(std::vector<double> *Log) { OpLog = Log; }

  /// Attaches a fault injector (null detaches; must outlive the
  /// model). Call before traffic.
  void setFaultInjector(fault::FaultInjector *Injector) {
    Faults = Injector;
  }

  /// Commands re-issued after a transient fault since construction.
  std::uint64_t retryCount() const { return Retries.load(); }

private:
  /// Shared command body: charges \p OpMicros (per attempt, under a
  /// \p SpanName lane span), drives the retry loop when an injector is
  /// attached, and feeds the I/O histogram/op counter on success.
  fault::Status issue(fault::FaultSite Site, const char *SpanName,
                      double OpMicros, obs::Counter *OpCounter);

  /// Registers the `padre_ftl_*` instruments (requires both a metrics
  /// sink and an enabled FTL; called from whichever arrives second).
  void registerFtlMetrics();

  /// Charges NAND bytes and GC overhead (`ftl:gc` span, relocation
  /// reads/programs, erases) for the FTL work since \p Before, and
  /// refreshes the FTL gauges. Caller holds FtlMutex.
  void settleFtlWork(const ssd::Ftl::Counters &Before);

  CostModel Model;
  ResourceLedger &Ledger;
  std::atomic<std::uint64_t> HostBytes{0};
  std::atomic<std::uint64_t> NandBytes{0};
  std::atomic<std::uint64_t> Retries{0};
  fault::FaultInjector *Faults = nullptr;
  std::vector<double> *OpLog = nullptr;
  // FTL state (null = constant-WAF accounting). FtlMutex serializes
  // the mapping structures; command issue stays lock-free.
  std::unique_ptr<ssd::Ftl> FtlModel;
  std::mutex FtlMutex;
  std::unordered_map<std::uint64_t, ssd::Ftl::Extent> Extents;
  // Observability (null = disabled); instruments cached at setObs time.
  obs::MetricsRegistry *MetricsReg = nullptr;
  obs::TraceRecorder *Trace = nullptr;
  obs::LogHistogram *IoHist = nullptr;
  obs::Counter *SeqWriteOps = nullptr;
  obs::Counter *RandWriteOps = nullptr;
  obs::Counter *SeqReadOps = nullptr;
  obs::Counter *RandReadOps = nullptr;
  obs::Counter *RetryReads = nullptr;
  obs::Counter *RetryWrites = nullptr;
  obs::Counter *FtlHostPagesC = nullptr;
  obs::Counter *FtlGcPagesC = nullptr;
  obs::Counter *FtlErasesC = nullptr;
  obs::Counter *FtlGcRunsC = nullptr;
  obs::Counter *FtlWearMigsC = nullptr;
  obs::Gauge *FtlWafG = nullptr;
  obs::Gauge *FtlFreeBlocksG = nullptr;
  obs::Gauge *FtlLivePagesG = nullptr;
  obs::Gauge *FtlSpreadG = nullptr;
};

} // namespace padre

#endif // PADRE_SSD_SSDMODEL_H
