//===----------------------------------------------------------------------===//
///
/// \file
/// Page-level FTL implementation: log-structured allocation, greedy
/// garbage collection, dynamic + static wear leveling. See Ftl.h for
/// the design notes.
///
//===----------------------------------------------------------------------===//

#include "ssd/Ftl.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace padre {
namespace ssd {

bool isValidFtlConfig(const FtlConfig &Config) {
  if (Config.PageBytes == 0 || Config.PagesPerBlock == 0 ||
      Config.Blocks == 0)
    return false;
  if (!(Config.OverprovisionPct >= 0.0 && Config.OverprovisionPct < 90.0))
    return false;
  if (Config.GcReserveBlocks < 2)
    return false;
  // The reserve plus the open block must leave blocks for data.
  if (Config.Blocks <= Config.GcReserveBlocks + 2)
    return false;
  if (Config.EraseBudget == 0)
    return false;
  const std::uint64_t TotalPages =
      std::uint64_t{Config.Blocks} * Config.PagesPerBlock;
  if (Config.MetadataPages >= TotalPages / 2)
    return false;
  return true;
}

Ftl::Ftl(const FtlConfig &C) : Config(C) {
  assert(isValidFtlConfig(Config) && "invalid FTL config");
  TotalPages = std::uint64_t{Config.Blocks} * Config.PagesPerBlock;
  // Logical capacity excludes the over-provisioned share and the
  // reserve blocks GC needs for relocation headroom, so a full device
  // always has victims with invalid pages to reclaim.
  const double UsableFrac = 1.0 - Config.OverprovisionPct / 100.0;
  std::uint64_t Cap =
      static_cast<std::uint64_t>(static_cast<double>(TotalPages) * UsableFrac);
  const std::uint64_t ReservePages =
      std::uint64_t{Config.GcReserveBlocks + 1} * Config.PagesPerBlock;
  Cap = Cap > ReservePages ? Cap - ReservePages : 0;
  LogicalCapacityPages = Cap;
  BlocksState.resize(Config.Blocks);
  P2L.assign(TotalPages, NoPage);
  FreeList.resize(Config.Blocks);
  for (std::uint32_t B = 0; B < Config.Blocks; ++B)
    FreeList[B] = B;
}

std::uint64_t Ftl::pagesForBytes(std::uint64_t TotalBytes) const {
  return (TotalBytes + Config.PageBytes - 1) / Config.PageBytes;
}

void Ftl::openNextBlock() {
  assert(!FreeList.empty() && "no free block for the log head");
  // Dynamic wear leveling: open the coldest free block (ties by id
  // for determinism).
  std::size_t Best = 0;
  for (std::size_t I = 1; I < FreeList.size(); ++I) {
    const std::uint32_t A = FreeList[I], B = FreeList[Best];
    if (BlocksState[A].EraseCount < BlocksState[B].EraseCount ||
        (BlocksState[A].EraseCount == BlocksState[B].EraseCount && A < B))
      Best = I;
  }
  OpenBlock = FreeList[Best];
  FreeList.erase(FreeList.begin() + static_cast<std::ptrdiff_t>(Best));
  BlocksState[OpenBlock].Free = false;
  BlocksState[OpenBlock].WritePtr = 0;
  HasOpenBlock = true;
}

std::uint64_t Ftl::allocPpn() {
  if (!HasOpenBlock || BlocksState[OpenBlock].WritePtr == Config.PagesPerBlock)
    openNextBlock();
  BlockState &B = BlocksState[OpenBlock];
  const std::uint64_t Ppn =
      std::uint64_t{OpenBlock} * Config.PagesPerBlock + B.WritePtr;
  ++B.WritePtr;
  return Ppn;
}

void Ftl::programPage(std::uint64_t Lpn, bool ForHost) {
  const std::uint64_t Ppn = allocPpn();
  L2P[Lpn] = Ppn;
  P2L[Ppn] = Lpn;
  ++BlocksState[blockOf(Ppn)].ValidPages;
  if (ForHost)
    ++Stats.HostPages;
  else
    ++Stats.GcPages;
}

void Ftl::invalidatePage(std::uint64_t Lpn) {
  auto It = L2P.find(Lpn);
  if (It == L2P.end())
    return;
  const std::uint64_t Ppn = It->second;
  P2L[Ppn] = NoPage;
  BlockState &B = BlocksState[blockOf(Ppn)];
  assert(B.ValidPages > 0 && "valid-count underflow");
  --B.ValidPages;
  L2P.erase(It);
}

void Ftl::releasePageRef(std::uint64_t Lpn) {
  auto It = PageRefs.find(Lpn);
  if (It == PageRefs.end())
    return;
  if (--It->second == 0) {
    PageRefs.erase(It);
    invalidatePage(Lpn);
  }
}

void Ftl::releaseExtent(const Extent &E) {
  if (!E.Valid)
    return;
  for (std::uint64_t Lpn = E.FirstPage; Lpn <= E.LastPage; ++Lpn)
    releasePageRef(Lpn);
}

bool Ftl::ensureFree() {
  while (FreeList.size() <= Config.GcReserveBlocks) {
    // Greedy victim: the closed block with the fewest valid pages
    // (ties by lowest id). The open block is never a victim.
    std::uint32_t Victim = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t BestValid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t B = 0; B < Config.Blocks; ++B) {
      const BlockState &S = BlocksState[B];
      if (S.Free || (HasOpenBlock && B == OpenBlock))
        continue;
      if (S.ValidPages < BestValid) {
        BestValid = S.ValidPages;
        Victim = B;
      }
    }
    // A fully valid victim frees nothing: relocating PagesPerBlock
    // pages consumes exactly the block we would reclaim.
    if (Victim == std::numeric_limits<std::uint32_t>::max() ||
        BestValid >= Config.PagesPerBlock)
      return false;
    ++Stats.GcRuns;
    relocateBlock(Victim);
    eraseBlock(Victim);
  }
  return true;
}

void Ftl::relocateBlock(std::uint32_t Block) {
  const std::uint64_t Base = std::uint64_t{Block} * Config.PagesPerBlock;
  for (std::uint32_t P = 0; P < Config.PagesPerBlock; ++P) {
    const std::uint64_t Lpn = P2L[Base + P];
    if (Lpn == NoPage)
      continue;
    // Unmap from the victim, then program at the log head. The
    // reserve guarantees allocPpn never needs GC here.
    P2L[Base + P] = NoPage;
    assert(BlocksState[Block].ValidPages > 0);
    --BlocksState[Block].ValidPages;
    L2P.erase(Lpn);
    programPage(Lpn, /*ForHost=*/false);
  }
}

void Ftl::eraseBlock(std::uint32_t Block) {
  BlockState &B = BlocksState[Block];
  assert(B.ValidPages == 0 && "erasing a block with live pages");
  const std::uint64_t Base = std::uint64_t{Block} * Config.PagesPerBlock;
  for (std::uint32_t P = 0; P < Config.PagesPerBlock; ++P)
    P2L[Base + P] = NoPage;
  B.WritePtr = 0;
  B.Free = true;
  ++B.EraseCount;
  ++Stats.Erases;
  FreeList.push_back(Block);
  maybeWearLevel();
}

void Ftl::maybeWearLevel() {
  if (InWearLevel)
    return;
  if (eraseSpread() <= Config.WearDeltaLimit)
    return;
  // Static wear leveling: dig out the coldest closed block — its data
  // has sat still while hot blocks cycled — so its erase count can
  // catch up. Ties by lowest id.
  std::uint32_t Cold = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t B = 0; B < Config.Blocks; ++B) {
    const BlockState &S = BlocksState[B];
    if (S.Free || (HasOpenBlock && B == OpenBlock))
      continue;
    if (Cold == std::numeric_limits<std::uint32_t>::max() ||
        S.EraseCount < BlocksState[Cold].EraseCount)
      Cold = B;
  }
  if (Cold == std::numeric_limits<std::uint32_t>::max())
    return;
  // Migrating a block that is already at the hot end cannot narrow
  // the spread (cold free blocks catch up via openNextBlock instead).
  if (BlocksState[Cold].EraseCount >= maxEraseCount())
    return;
  InWearLevel = true;
  ++Stats.WearMigrations;
  relocateBlock(Cold);
  eraseBlock(Cold);
  InWearLevel = false;
}

bool Ftl::appendStream(std::span<const std::uint64_t> ChunkBytes,
                       std::vector<Extent> &Out) {
  std::uint64_t TotalBytes = 0;
  std::uint64_t ZeroChunks = 0;
  for (std::uint64_t Bytes : ChunkBytes) {
    TotalBytes += Bytes;
    ZeroChunks += Bytes == 0 ? 1 : 0;
  }
  // Zero-byte chunks still pin a page each in the worst case.
  const std::uint64_t Needed = pagesForBytes(TotalBytes) + ZeroChunks;
  if (livePages() + Needed > LogicalCapacityPages)
    return false;

  // Lay the chunks head-to-tail into fresh logical pages. PackUsed
  // tracks the byte fill of the stream's current page; a chunk whose
  // head lands mid-page shares that seam page with its predecessor.
  std::uint64_t PackUsed = Config.PageBytes; // force a fresh first page
  std::uint64_t CurLpn = 0;
  bool HaveCur = false;
  for (std::uint64_t Bytes : ChunkBytes) {
    Extent E;
    std::uint64_t Left = Bytes;
    while (Left > 0 || Bytes == 0) {
      if (PackUsed == Config.PageBytes) {
        if (!ensureFree())
          return false; // defensive: capacity check above should hold
        CurLpn = NextLpn++;
        HaveCur = true;
        programPage(CurLpn, /*ForHost=*/true);
        PageRefs[CurLpn] = 0;
        PackUsed = 0;
      }
      if (!E.Valid) {
        E.FirstPage = CurLpn;
        E.Valid = true;
      }
      E.LastPage = CurLpn;
      ++PageRefs[CurLpn];
      const std::uint64_t Take = std::min(Left, Config.PageBytes - PackUsed);
      PackUsed += Take;
      Left -= Take;
      if (Bytes == 0)
        break; // zero-byte chunk still pins one page
    }
    Out.push_back(E);
  }
  (void)HaveCur;
  return true;
}

bool Ftl::appendMetadata(std::uint64_t Bytes) {
  const std::uint64_t Pages = pagesForBytes(Bytes);
  if (Pages == 0)
    return true;
  if (livePages() + Pages > LogicalCapacityPages)
    return false;
  for (std::uint64_t I = 0; I < Pages; ++I) {
    if (!ensureFree())
      return false;
    const std::uint64_t Lpn = NextLpn++;
    programPage(Lpn, /*ForHost=*/true);
    PageRefs[Lpn] = 1;
    MetaRing.push_back(Lpn);
    // The metadata stream is a circular log: the window overflow is
    // the truncated tail, dead on the device.
    while (MetaRing.size() > Config.MetadataPages) {
      releasePageRef(MetaRing.front());
      MetaRing.pop_front();
    }
  }
  return true;
}

double Ftl::measuredWaf() const {
  if (Stats.HostPages == 0)
    return 1.0;
  return static_cast<double>(Stats.HostPages + Stats.GcPages) /
         static_cast<double>(Stats.HostPages);
}

std::uint32_t Ftl::minEraseCount() const {
  std::uint32_t Min = std::numeric_limits<std::uint32_t>::max();
  for (const BlockState &B : BlocksState)
    Min = std::min(Min, B.EraseCount);
  return Min;
}

std::uint32_t Ftl::maxEraseCount() const {
  std::uint32_t Max = 0;
  for (const BlockState &B : BlocksState)
    Max = std::max(Max, B.EraseCount);
  return Max;
}

double Ftl::lifetimeFractionUsed() const {
  const double Budget = static_cast<double>(Config.Blocks) *
                        static_cast<double>(Config.EraseBudget);
  return static_cast<double>(Stats.Erases) / Budget;
}

bool Ftl::checkInvariants(std::string *Why) const {
  auto Fail = [Why](const char *Reason) {
    if (Why)
      *Why = Reason;
    return false;
  };
  // Forward map entries have matching reverse entries.
  std::uint64_t MappedPages = 0;
  for (const auto &[Lpn, Ppn] : L2P) {
    if (Ppn >= TotalPages)
      return Fail("L2P points past the device");
    if (P2L[Ppn] != Lpn)
      return Fail("L2P/P2L disagree");
    if (BlocksState[blockOf(Ppn)].Free)
      return Fail("live page on a free block");
    ++MappedPages;
  }
  // Reverse map has no entries the forward map lacks, and per-block
  // valid counts match.
  std::vector<std::uint32_t> Valid(Config.Blocks, 0);
  std::uint64_t ReverseLive = 0;
  for (std::uint64_t Ppn = 0; Ppn < TotalPages; ++Ppn) {
    if (P2L[Ppn] == NoPage)
      continue;
    auto It = L2P.find(P2L[Ppn]);
    if (It == L2P.end() || It->second != Ppn)
      return Fail("P2L entry missing from L2P");
    ++Valid[blockOf(Ppn)];
    ++ReverseLive;
  }
  if (ReverseLive != MappedPages)
    return Fail("forward/reverse live-page counts differ");
  for (std::uint32_t B = 0; B < Config.Blocks; ++B) {
    if (Valid[B] != BlocksState[B].ValidPages)
      return Fail("per-block valid count drifted");
    if (BlocksState[B].Free && BlocksState[B].ValidPages != 0)
      return Fail("free block holds valid pages");
    if (BlocksState[B].WritePtr > Config.PagesPerBlock)
      return Fail("write pointer past block end");
  }
  // Every live page is owned by at least one extent (or the metadata
  // ring), and refcounted pages are live.
  if (PageRefs.size() != MappedPages)
    return Fail("refcount table and live set differ");
  for (const auto &[Lpn, Refs] : PageRefs) {
    if (Refs == 0)
      return Fail("zero refcount left behind");
    if (!L2P.count(Lpn))
      return Fail("refcounted page is not live");
  }
  if (MappedPages > LogicalCapacityPages)
    return Fail("live set exceeds logical capacity");
  // Free list agrees with block flags.
  std::uint64_t FreeFlagged = 0;
  for (const BlockState &B : BlocksState)
    FreeFlagged += B.Free ? 1 : 0;
  if (FreeFlagged != FreeList.size())
    return Fail("free list and free flags differ");
  return true;
}

} // namespace ssd
} // namespace padre
