//===----------------------------------------------------------------------===//
///
/// \file
/// Metrics registry implementation: instrument storage and Prometheus
/// text-format export.
///
//===----------------------------------------------------------------------===//

#include "obs/MetricsRegistry.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace padre;
using namespace padre::obs;

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

LogHistogram::LogHistogram(double FirstBound, double Growth,
                           std::size_t BucketCount)
    : Counts(BucketCount + 1) {
  assert(FirstBound > 0.0 && Growth > 1.0 && BucketCount >= 1);
  Bounds.reserve(BucketCount);
  double Bound = FirstBound;
  for (std::size_t I = 0; I < BucketCount; ++I) {
    Bounds.push_back(Bound);
    Bound *= Growth;
  }
}

std::size_t LogHistogram::bucketIndex(double V) const {
  // Linear scan beats binary search at these bucket counts and keeps
  // the `le` semantics (first bound >= V) obvious.
  for (std::size_t I = 0; I < Bounds.size(); ++I)
    if (V <= Bounds[I])
      return I;
  return Bounds.size();
}

void LogHistogram::observe(double V) {
  Counts[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
  Total.fetch_add(1, std::memory_order_relaxed);
  double Expected = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(Expected, Expected + V,
                                    std::memory_order_relaxed))
    ;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry::Entry &MetricsRegistry::entry(const std::string &Name,
                                               Kind K,
                                               const std::string &Help) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entry &E = Entries[Name];
  const bool Fresh = !E.AsCounter && !E.AsGauge && !E.AsHistogram;
  if (Fresh) {
    E.InstrumentKind = K;
    E.Help = Help;
  }
  assert(E.InstrumentKind == K && "metric re-registered as another kind");
  return E;
}

Counter &MetricsRegistry::counter(const std::string &Name,
                                  const std::string &Help) {
  Entry &E = entry(Name, Kind::Counter, Help);
  if (!E.AsCounter)
    E.AsCounter = std::make_unique<Counter>();
  return *E.AsCounter;
}

Gauge &MetricsRegistry::gauge(const std::string &Name,
                              const std::string &Help) {
  Entry &E = entry(Name, Kind::Gauge, Help);
  if (!E.AsGauge)
    E.AsGauge = std::make_unique<Gauge>();
  return *E.AsGauge;
}

LogHistogram &MetricsRegistry::histogram(const std::string &Name,
                                         const std::string &Help,
                                         double FirstBound, double Growth,
                                         std::size_t BucketCount) {
  Entry &E = entry(Name, Kind::Histogram, Help);
  if (!E.AsHistogram)
    E.AsHistogram =
        std::make_unique<LogHistogram>(FirstBound, Growth, BucketCount);
  return *E.AsHistogram;
}

const MetricsRegistry::Entry *MetricsRegistry::find(const std::string &Name,
                                                    Kind K) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  const auto It = Entries.find(Name);
  if (It == Entries.end() || It->second.InstrumentKind != K)
    return nullptr;
  return &It->second;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Counter);
  return E ? E->AsCounter.get() : nullptr;
}

const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Gauge);
  return E ? E->AsGauge.get() : nullptr;
}

const LogHistogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  const Entry *E = find(Name, Kind::Histogram);
  return E ? E->AsHistogram.get() : nullptr;
}

namespace {

/// Splits `name{label="v"}` into the base name and the brace-enclosed
/// label block ("" when unlabelled).
void splitName(const std::string &Name, std::string &Base,
               std::string &Labels) {
  const std::size_t Brace = Name.find('{');
  if (Brace == std::string::npos) {
    Base = Name;
    Labels.clear();
    return;
  }
  Base = Name.substr(0, Brace);
  Labels = Name.substr(Brace);
}

void appendDouble(std::string &Out, double V) {
  if (std::isinf(V)) {
    Out += V > 0 ? "+Inf" : "-Inf";
    return;
  }
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%g", V);
  Out += Buffer;
}

/// Appends `labels` merged with one extra pair, e.g.
/// ({tier="gpu"}, le, 4096) -> {tier="gpu",le="4096"}.
void appendMergedLabels(std::string &Out, const std::string &Labels,
                        const std::string &ExtraKey, double ExtraValue) {
  Out.push_back('{');
  if (!Labels.empty()) {
    // Labels look like {k="v",...}; strip the outer braces.
    Out.append(Labels, 1, Labels.size() - 2);
    Out.push_back(',');
  }
  Out += ExtraKey;
  Out += "=\"";
  appendDouble(Out, ExtraValue);
  Out += "\"}";
}

} // namespace

std::string MetricsRegistry::prometheusText() const {
  std::lock_guard<std::mutex> Lock(Mutex);

  std::string Out;
  Out.reserve(Entries.size() * 96);
  std::string LastBase;

  for (const auto &[Name, E] : Entries) {
    std::string Base, Labels;
    splitName(Name, Base, Labels);

    // One HELP/TYPE header per base name; the sorted map guarantees
    // all label series of a base name are adjacent.
    if (Base != LastBase) {
      LastBase = Base;
      if (!E.Help.empty()) {
        Out += "# HELP ";
        Out += Base;
        Out.push_back(' ');
        Out += E.Help;
        Out.push_back('\n');
      }
      Out += "# TYPE ";
      Out += Base;
      switch (E.InstrumentKind) {
      case Kind::Counter:
        Out += " counter\n";
        break;
      case Kind::Gauge:
        Out += " gauge\n";
        break;
      case Kind::Histogram:
        Out += " histogram\n";
        break;
      }
    }

    switch (E.InstrumentKind) {
    case Kind::Counter: {
      Out += Name;
      Out.push_back(' ');
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%llu",
                    static_cast<unsigned long long>(E.AsCounter->value()));
      Out += Buffer;
      Out.push_back('\n');
      break;
    }
    case Kind::Gauge: {
      Out += Name;
      Out.push_back(' ');
      appendDouble(Out, E.AsGauge->value());
      Out.push_back('\n');
      break;
    }
    case Kind::Histogram: {
      const LogHistogram &H = *E.AsHistogram;
      std::uint64_t Cumulative = 0;
      for (std::size_t I = 0; I < H.bounds().size(); ++I) {
        Cumulative += H.bucketCount(I);
        Out += Base;
        Out += "_bucket";
        appendMergedLabels(Out, Labels, "le", H.bounds()[I]);
        Out.push_back(' ');
        char Buffer[32];
        std::snprintf(Buffer, sizeof(Buffer), "%llu",
                      static_cast<unsigned long long>(Cumulative));
        Out += Buffer;
        Out.push_back('\n');
      }
      Out += Base;
      Out += "_bucket";
      appendMergedLabels(Out, Labels, "le",
                         std::numeric_limits<double>::infinity());
      Out.push_back(' ');
      char Buffer[32];
      std::snprintf(Buffer, sizeof(Buffer), "%llu",
                    static_cast<unsigned long long>(H.count()));
      Out += Buffer;
      Out.push_back('\n');
      Out += Base;
      Out += "_sum";
      Out += Labels;
      Out.push_back(' ');
      appendDouble(Out, H.sum());
      Out.push_back('\n');
      Out += Base;
      Out += "_count";
      Out += Labels;
      Out.push_back(' ');
      Out += Buffer; // same count as +Inf bucket
      Out.push_back('\n');
      break;
    }
    }
  }
  return Out;
}

bool MetricsRegistry::writePrometheus(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  const std::string Text = prometheusText();
  const bool Ok =
      std::fwrite(Text.data(), 1, Text.size(), File) == Text.size();
  return std::fclose(File) == 0 && Ok;
}
