//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry: named counters, gauges and log-bucketed
/// histograms with Prometheus text-format export. Instruments are
/// registered once (by the pipeline/engine constructors — registration
/// takes a lock) and then updated lock-free on the hot path through
/// cached pointers; a null registry pointer disables the whole layer.
///
/// Metric names follow Prometheus conventions (`*_total` counters,
/// unit suffixes like `_us`/`_bytes`) and may carry one inline label
/// set, e.g. `padre_dup_chunks_total{tier="buffer"}` — series of one
/// base name group under a single HELP/TYPE header in the export.
/// Every padre metric, with units and labels, is catalogued in
/// OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_OBS_METRICSREGISTRY_H
#define PADRE_OBS_METRICSREGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace padre {
namespace obs {

/// Monotonically increasing event count. Thread-safe.
class Counter {
public:
  void add(std::uint64_t N = 1) {
    Value.fetch_add(N, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return Value.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> Value{0};
};

/// Last-write-wins instantaneous value. Thread-safe.
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Histogram with exponentially growing bucket bounds:
/// bound[i] = FirstBound * Growth^i, plus an overflow bucket. A value V
/// lands in the first bucket with V <= bound (Prometheus `le`
/// semantics). Log buckets keep constant *relative* resolution across
/// the decades a latency distribution spans, at a fixed bucket count.
/// Thread-safe.
class LogHistogram {
public:
  /// \p FirstBound > 0, \p Growth > 1, \p BucketCount >= 1.
  LogHistogram(double FirstBound, double Growth, std::size_t BucketCount);

  LogHistogram(const LogHistogram &) = delete;
  LogHistogram &operator=(const LogHistogram &) = delete;

  void observe(double V);

  /// Index of the bucket \p V lands in; bounds().size() = overflow.
  std::size_t bucketIndex(double V) const;

  /// The finite upper bounds, ascending.
  const std::vector<double> &bounds() const { return Bounds; }

  /// Observations in bucket \p I (I == bounds().size() is overflow).
  std::uint64_t bucketCount(std::size_t I) const {
    return Counts[I].load(std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return Total.load(std::memory_order_relaxed);
  }
  double sum() const { return Sum.load(std::memory_order_relaxed); }

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<std::uint64_t>> Counts; ///< Bounds.size() + 1
  std::atomic<std::uint64_t> Total{0};
  std::atomic<double> Sum{0.0};
};

/// Registry of named instruments. Registration is idempotent: asking
/// for an existing name returns the same instrument (the kind and, for
/// histograms, the bucket geometry must match the first registration).
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name, const std::string &Help = "");
  Gauge &gauge(const std::string &Name, const std::string &Help = "");
  LogHistogram &histogram(const std::string &Name,
                          const std::string &Help = "",
                          double FirstBound = 1.0, double Growth = 2.0,
                          std::size_t BucketCount = 24);

  /// Lookup without registration (tests, exporters). Null if absent or
  /// a different kind.
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const LogHistogram *findHistogram(const std::string &Name) const;

  /// Prometheus text exposition format (HELP/TYPE headers per base
  /// name, `_bucket`/`_sum`/`_count` series for histograms).
  std::string prometheusText() const;

  /// Writes prometheusText() to \p Path. Returns false on I/O failure.
  bool writePrometheus(const std::string &Path) const;

private:
  enum class Kind { Counter, Gauge, Histogram };

  struct Entry {
    Kind InstrumentKind = Kind::Counter;
    std::string Help;
    std::unique_ptr<Counter> AsCounter;
    std::unique_ptr<Gauge> AsGauge;
    std::unique_ptr<LogHistogram> AsHistogram;
  };

  Entry &entry(const std::string &Name, Kind K, const std::string &Help);
  const Entry *find(const std::string &Name, Kind K) const;

  mutable std::mutex Mutex;
  // Sorted map: label series of one base name export adjacently.
  std::map<std::string, Entry> Entries;
};

} // namespace obs
} // namespace padre

#endif // PADRE_OBS_METRICSREGISTRY_H
