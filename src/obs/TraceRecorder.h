//===----------------------------------------------------------------------===//
///
/// \file
/// Span tracing over the modelled-time clock. Every span lives on one
/// resource *lane* (CPU pool, GPU, PCIe, SSD, index lock) and its
/// begin/end are positions on that lane's ResourceLedger busy-time
/// clock — NOT wall-clock time. The recorder therefore shows where a
/// write spent its *modelled* time across chunk → dedup → compress →
/// destage, which is the quantity every paper experiment (E1–E5) is
/// measured in; wall time on this host is meaningless (see
/// OBSERVABILITY.md, "modelled time vs wall time").
///
/// Spans export as Chrome `trace_event` JSON ("X" complete events, one
/// thread track per lane) loadable in about:tracing or Perfetto. The
/// RAII helpers snapshot the lane clocks so call sites bracket the
/// charges they make; a null recorder pointer disables everything at
/// the cost of one branch — no allocation, no ledger reads.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_OBS_TRACERECORDER_H
#define PADRE_OBS_TRACERECORDER_H

#include "sim/ResourceLedger.h"

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

namespace padre {
namespace obs {

/// Well-known span categories. "stage" spans are the measurement
/// contract: within one pipeline run they tile each lane exactly, so
/// their per-lane totals reconcile with the ledger's busy times
/// (asserted by tests/test_obs.cpp). Detail categories nest inside
/// stage spans and may not cover a lane completely.
inline constexpr const char *CategoryStage = "stage";
inline constexpr const char *CategoryKernel = "kernel"; ///< GPU kernels
inline constexpr const char *CategoryDma = "dma";       ///< PCIe DMAs
inline constexpr const char *CategoryIo = "io";         ///< SSD commands
inline constexpr const char *CategorySweep = "sweep";   ///< background passes
/// Batch-scheduler timeline spans. Unlike every other category, their
/// Begin/Dur are positions on the *scheduled* timeline (dependency-
/// constrained wall clock, see core/BatchScheduler.h), not the lane's
/// busy clock — so the Chrome export gives them their own per-lane
/// tracks, where cross-lane overlap between in-flight batches is
/// visually meaningful (the Fig. 1 picture). They never participate in
/// the stage-span/ledger reconciliation contract.
inline constexpr const char *CategorySched = "sched";
/// Multi-tenant service spans (src/service/VolumeService.h): one per
/// dispatched tenant run or deferred-dedup sweep. Like "sweep" spans,
/// they are umbrellas over pipeline work that emits its own stage
/// spans inside — never part of the stage/ledger reconciliation.
inline constexpr const char *CategorySvc = "svc";
/// Backend-splitter spans (src/backend): one per backend slice of a
/// split compress stage ("backend:cpu", "backend:gpu", ...), on the
/// slice's principal lane. Detail spans nested inside the "compress"
/// stage span — never part of the stage/ledger reconciliation.
inline constexpr const char *CategoryBackend = "backend";

/// One recorded span. Name/Category must be string literals (or other
/// storage outliving the recorder) — spans never copy them.
struct TraceSpan {
  const char *Name = "";
  const char *Category = "";
  Resource Lane = Resource::CpuPool;
  double BeginUs = 0.0; ///< lane-clock position at begin (modelled µs)
  double DurUs = 0.0;   ///< modelled busy time covered by the span
};

/// Thread-safe recorder of modelled-time spans.
class TraceRecorder {
public:
  /// Appends one span. Negative or sub-nanosecond durations are
  /// dropped (a stage that charged nothing on a lane has no span).
  void record(const char *Name, const char *Category, Resource Lane,
              double BeginUs, double DurUs);

  /// Snapshot of all spans, ordered by (lane, begin, longest-first) so
  /// parents precede the spans they contain.
  std::vector<TraceSpan> spans() const;

  std::size_t spanCount() const;

  /// Sum of span durations on \p Lane, restricted to \p Category when
  /// non-null. With Category == CategoryStage this equals the ledger's
  /// busy time on the lane for a traced pipeline run.
  double laneTotalUs(Resource Lane, const char *Category = nullptr) const;

  /// Drops all recorded spans (e.g. after a measurement warmup, in
  /// lockstep with ResourceLedger::reset — the lane clocks restart).
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one metadata-
  /// named thread per lane and one "X" event per span (ts/dur in µs).
  std::string chromeJson() const;

  /// Writes chromeJson() to \p Path. Returns false on I/O failure.
  bool writeChromeJson(const std::string &Path) const;

private:
  mutable std::mutex Mutex;
  std::vector<TraceSpan> Spans;
};

/// RAII span on a single lane: begin/end are the lane's busy-time clock
/// at construction/destruction, so the span covers exactly the charges
/// made on that lane within the scope. Null \p Trace disables it.
class LaneSpan {
public:
  LaneSpan(TraceRecorder *Trace, const ResourceLedger &Ledger,
           Resource Lane, const char *Name, const char *Category)
      : Trace(Trace), Ledger(&Ledger), Lane(Lane), Name(Name),
        Category(Category),
        BeginUs(Trace ? Ledger.busyMicros(Lane) : 0.0) {}

  ~LaneSpan() {
    if (Trace)
      Trace->record(Name, Category, Lane, BeginUs,
                    Ledger->busyMicros(Lane) - BeginUs);
  }

  LaneSpan(const LaneSpan &) = delete;
  LaneSpan &operator=(const LaneSpan &) = delete;

private:
  TraceRecorder *Trace;
  const ResourceLedger *Ledger;
  Resource Lane;
  const char *Name;
  const char *Category;
  double BeginUs;
};

/// RAII pipeline-stage span: snapshots every lane clock and, at scope
/// exit, records one span per lane that accrued busy time — a stage
/// like "dedup" charges CPU hashing, GPU kernels, PCIe DMA and SSD
/// drain writes all at once. Null \p Trace disables it.
class StageSpan {
public:
  StageSpan(TraceRecorder *Trace, const ResourceLedger &Ledger,
            const char *Name, const char *Category = CategoryStage)
      : Trace(Trace), Ledger(&Ledger), Name(Name), Category(Category) {
    if (Trace)
      for (unsigned R = 0; R < ResourceCount; ++R)
        BeginUs[R] = Ledger.busyMicros(static_cast<Resource>(R));
  }

  ~StageSpan() {
    if (!Trace)
      return;
    for (unsigned R = 0; R < ResourceCount; ++R) {
      const Resource Lane = static_cast<Resource>(R);
      Trace->record(Name, Category, Lane, BeginUs[R],
                    Ledger->busyMicros(Lane) - BeginUs[R]);
    }
  }

  StageSpan(const StageSpan &) = delete;
  StageSpan &operator=(const StageSpan &) = delete;

private:
  TraceRecorder *Trace;
  const ResourceLedger *Ledger;
  const char *Name;
  const char *Category;
  double BeginUs[ResourceCount] = {};
};

} // namespace obs
} // namespace padre

#endif // PADRE_OBS_TRACERECORDER_H
