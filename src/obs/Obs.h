//===----------------------------------------------------------------------===//
///
/// \file
/// The pair of observability sinks threaded through engine
/// constructors. Both pointers default to null — the engines then make
/// no instrumentation calls at all, keeping the untraced hot path
/// identical to the pre-observability code.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_OBS_OBS_H
#define PADRE_OBS_OBS_H

#include "obs/MetricsRegistry.h"
#include "obs/TraceRecorder.h"

namespace padre {
namespace obs {

/// Non-owning sinks; the owner (padrectl, a bench, a test) must keep
/// them alive for the lifetime of the engines they are passed to.
struct ObsSinks {
  TraceRecorder *Trace = nullptr;
  MetricsRegistry *Metrics = nullptr;
};

} // namespace obs
} // namespace padre

#endif // PADRE_OBS_OBS_H
