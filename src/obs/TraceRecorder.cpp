//===----------------------------------------------------------------------===//
///
/// \file
/// Trace recorder implementation: span storage and Chrome trace_event
/// JSON export.
///
//===----------------------------------------------------------------------===//

#include "obs/TraceRecorder.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

using namespace padre;
using namespace padre::obs;

void TraceRecorder::record(const char *Name, const char *Category,
                           Resource Lane, double BeginUs, double DurUs) {
  // Durations below a nanosecond are indistinguishable from "this
  // stage charged nothing here" — the ledger stores integer nanos.
  if (!(DurUs >= 1e-3))
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(TraceSpan{Name, Category, Lane, BeginUs, DurUs});
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> Copy;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Copy = Spans;
  }
  std::sort(Copy.begin(), Copy.end(),
            [](const TraceSpan &A, const TraceSpan &B) {
              if (A.Lane != B.Lane)
                return static_cast<unsigned>(A.Lane) <
                       static_cast<unsigned>(B.Lane);
              if (A.BeginUs != B.BeginUs)
                return A.BeginUs < B.BeginUs;
              return A.DurUs > B.DurUs; // parents before children
            });
  return Copy;
}

std::size_t TraceRecorder::spanCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans.size();
}

double TraceRecorder::laneTotalUs(Resource Lane,
                                  const char *Category) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  double Total = 0.0;
  for (const TraceSpan &Span : Spans) {
    if (Span.Lane != Lane)
      continue;
    if (Category && std::string_view(Span.Category) != Category)
      continue;
    Total += Span.DurUs;
  }
  return Total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.clear();
}

namespace {

/// Escapes a string for a JSON literal. Span names are static C
/// identifiers today, but the exporter must not rely on that.
void appendJsonString(std::string &Out, const char *Text) {
  Out.push_back('"');
  for (const char *P = Text; *P; ++P) {
    const char C = *P;
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

void appendNumber(std::string &Out, double Value) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.3f", Value);
  Out += Buffer;
}

} // namespace

std::string TraceRecorder::chromeJson() const {
  const std::vector<TraceSpan> Sorted = spans();
  bool HasSched = false;
  for (const TraceSpan &Span : Sorted)
    if (std::string_view(Span.Category) == CategorySched) {
      HasSched = true;
      break;
    }

  std::string Out;
  Out.reserve(128 + Sorted.size() * 96);
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Metadata: one process ("padre modelled time") with one thread
  // track per resource lane, in Resource enum order. Scheduler
  // timeline spans (CategorySched) live on a wall clock, not the lane
  // busy clocks, so they get a second set of per-lane tracks after the
  // busy-clock ones — that's where the Fig. 1 overlap is visible.
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"padre (modelled time)\"}}";
  const unsigned TrackSets = HasSched ? 2 : 1;
  for (unsigned Set = 0; Set < TrackSets; ++Set) {
    for (unsigned R = 0; R < ResourceCount; ++R) {
      const unsigned Tid = Set * ResourceCount + R;
      Out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
      appendNumber(Out, static_cast<double>(Tid));
      Out += ",\"args\":{\"name\":";
      std::string LaneName = resourceName(static_cast<Resource>(R));
      if (Set == 1)
        LaneName += " (pipelined)";
      appendJsonString(Out, LaneName.c_str());
      Out += "}}";
      // Force lane order in the viewer (lower sort index renders first).
      Out += ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
             "\"tid\":";
      appendNumber(Out, static_cast<double>(Tid));
      Out += ",\"args\":{\"sort_index\":";
      appendNumber(Out, static_cast<double>(Tid));
      Out += "}}";
    }
  }

  for (const TraceSpan &Span : Sorted) {
    const bool Sched = std::string_view(Span.Category) == CategorySched;
    const unsigned Tid = (Sched ? ResourceCount : 0) +
                         static_cast<unsigned>(Span.Lane);
    Out += ",\n{\"name\":";
    appendJsonString(Out, Span.Name);
    Out += ",\"cat\":";
    appendJsonString(Out, Span.Category);
    Out += ",\"ph\":\"X\",\"pid\":1,\"tid\":";
    appendNumber(Out, static_cast<double>(Tid));
    Out += ",\"ts\":";
    appendNumber(Out, Span.BeginUs);
    Out += ",\"dur\":";
    appendNumber(Out, Span.DurUs);
    Out += ",\"args\":{\"lane\":";
    appendJsonString(Out, resourceName(Span.Lane));
    Out += "}}";
  }

  Out += "\n]}\n";
  return Out;
}

bool TraceRecorder::writeChromeJson(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  const std::string Json = chromeJson();
  const bool Ok =
      std::fwrite(Json.data(), 1, Json.size(), File) == Json.size();
  return std::fclose(File) == 0 && Ok;
}
