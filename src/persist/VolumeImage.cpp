//===----------------------------------------------------------------------===//
///
/// \file
/// Volume image serialization: span-based encode, two-phase validated
/// decode, and the file-path wrappers.
///
//===----------------------------------------------------------------------===//

#include "persist/VolumeImage.h"

#include "hash/Crc32.h"

#include <cassert>
#include <cstdio>
#include <unordered_set>

using namespace padre;
using fault::ErrorCode;
using fault::Status;

namespace {

constexpr std::uint64_t ImageMagic = 0x314D494552444150ull; // "PADREIM1"
constexpr std::uint32_t ImageVersion = 3;
constexpr std::size_t SuperblockSize = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t ChunkRecordHeader = 8 + 4 + 4 + Fingerprint::Size;
constexpr std::size_t MappingRecordSize = 16;

void appendLe32(ByteVector &Out, std::uint32_t Value) {
  std::uint8_t Buffer[4];
  storeLe32(Buffer, Value);
  appendBytes(Out, ByteSpan(Buffer, 4));
}

void appendLe64(ByteVector &Out, std::uint64_t Value) {
  std::uint8_t Buffer[8];
  storeLe64(Buffer, Value);
  appendBytes(Out, ByteSpan(Buffer, 8));
}

/// Bounds-checked sequential reader over the loaded image.
class ImageReader {
public:
  explicit ImageReader(ByteSpan Data) : Data(Data) {}

  bool readLe32(std::uint32_t &Value) {
    if (Position + 4 > Data.size())
      return false;
    Value = loadLe32(Data.data() + Position);
    Position += 4;
    return true;
  }
  bool readLe64(std::uint64_t &Value) {
    if (Position + 8 > Data.size())
      return false;
    Value = loadLe64(Data.data() + Position);
    Position += 8;
    return true;
  }
  bool readBytes(std::uint8_t *Out, std::size_t Count) {
    if (Position + Count > Data.size())
      return false;
    std::copy(Data.begin() + Position, Data.begin() + Position + Count,
              Out);
    Position += Count;
    return true;
  }
  bool readSpan(std::size_t Count, ByteSpan &Out) {
    if (Position + Count > Data.size())
      return false;
    Out = Data.subspan(Position, Count);
    Position += Count;
    return true;
  }
  std::size_t position() const { return Position; }
  bool atEnd() const { return Position == Data.size(); }

private:
  ByteSpan Data;
  std::size_t Position = 0;
};

} // namespace

ImageResult ImageResult::failure(fault::Status St, std::string Why) {
  ImageResult Result;
  Result.Ok = false;
  Result.Status = St;
  if (!Why.empty()) {
    Result.Message = std::move(Why);
  } else {
    Result.Message = St.message();
    if (St.detail() != 0)
      Result.Message += " (detail " + std::to_string(St.detail()) + ")";
  }
  return Result;
}

Status padre::encodeVolumeImage(const Volume &Vol,
                                const ReductionPipeline &Pipeline,
                                ByteVector &Out) {
  const std::vector<Volume::ChunkRecord> Records = Vol.chunkRecords();
  const std::vector<std::uint64_t> &Mapping = Vol.mapping();
  std::uint64_t MappedCount = 0;
  for (std::uint64_t Location : Mapping)
    MappedCount += Location != Volume::Unmapped;

  // The CRC trailer covers everything appended by *this* call, so the
  // image is built in a scratch buffer and spliced in at the end —
  // callers may embed it after their own framing (journal checkpoints).
  ByteVector Image;
  Image.reserve(SuperblockSize + Pipeline.store().storedBytes() +
                Records.size() * ChunkRecordHeader +
                MappedCount * MappingRecordSize + 4);
  appendLe64(Image, ImageMagic);
  appendLe32(Image, ImageVersion);
  appendLe32(Image, static_cast<std::uint32_t>(Vol.blockSize()));
  appendLe64(Image, Vol.blockCount());
  appendLe64(Image, Records.size());
  appendLe64(Image, MappedCount);

  for (const Volume::ChunkRecord &Record : Records) {
    const auto Block = Pipeline.store().encodedBlock(Record.Location);
    if (!Block)
      return Status::error(ErrorCode::ChunkMissing, Record.Location);
    appendLe64(Image, Record.Location);
    appendLe32(Image, static_cast<std::uint32_t>(Block->size()));
    appendLe32(Image, Record.Refs);
    appendBytes(Image, ByteSpan(Record.Fp.bytes().data(),
                                Fingerprint::Size));
    appendBytes(Image, *Block);
  }

  for (std::uint64_t Lba = 0; Lba < Mapping.size(); ++Lba) {
    if (Mapping[Lba] == Volume::Unmapped)
      continue;
    appendLe64(Image, Lba);
    appendLe64(Image, Mapping[Lba]);
  }

  // Snapshot tables (since format v2): id + sparse mapping each.
  const Volume::SnapshotTable Snapshots = Vol.snapshotTable();
  appendLe64(Image, Snapshots.size());
  for (const auto &[Id, SnapMapping] : Snapshots) {
    appendLe64(Image, Id);
    std::uint64_t SnapMapped = 0;
    for (std::uint64_t Location : SnapMapping)
      SnapMapped += Location != Volume::Unmapped;
    appendLe64(Image, SnapMapped);
    for (std::uint64_t Lba = 0; Lba < SnapMapping.size(); ++Lba) {
      if (SnapMapping[Lba] == Volume::Unmapped)
        continue;
      appendLe64(Image, Lba);
      appendLe64(Image, SnapMapping[Lba]);
    }
  }

  // Snapshot-id counter (since format v3). Monotonic across deletes,
  // so it cannot be recomputed from the live table: losing it would
  // reissue a deleted snapshot's id and break journal replay of
  // acknowledged SnapshotCreate records.
  appendLe64(Image, Vol.nextSnapshotId());

  appendLe32(Image, crc32c(ByteSpan(Image.data(), Image.size())));
  appendBytes(Out, ByteSpan(Image.data(), Image.size()));
  return {};
}

Status padre::decodeVolumeImage(ByteSpan Image, ReductionPipeline &Pipeline,
                                Volume &Vol) {
  //===------------------------------------------------------------===//
  // Phase 1 — parse and validate everything. No Pipeline/Vol mutation
  // happens in this phase, so any rejection leaves the pair untouched.
  //===------------------------------------------------------------===//
  if (Image.size() < SuperblockSize + 4)
    return Status::error(ErrorCode::ImageCorrupt);

  const std::uint32_t StoredCrc = loadLe32(Image.data() + Image.size() - 4);
  if (crc32c(Image.subspan(0, Image.size() - 4)) != StoredCrc)
    return Status::error(ErrorCode::ImageCorrupt);

  ImageReader Reader(Image.subspan(0, Image.size() - 4));
  std::uint64_t Magic, BlockCount, ChunkCount, MappedCount;
  std::uint32_t Version, ChunkSize;
  if (!Reader.readLe64(Magic) || !Reader.readLe32(Version) ||
      !Reader.readLe32(ChunkSize) || !Reader.readLe64(BlockCount) ||
      !Reader.readLe64(ChunkCount) || !Reader.readLe64(MappedCount))
    return Status::error(ErrorCode::ImageCorrupt);
  if (Magic != ImageMagic)
    return Status::error(ErrorCode::ImageCorrupt);
  if (Version != ImageVersion)
    return Status::error(ErrorCode::StateMismatch, Version);
  if (ChunkSize != Pipeline.config().ChunkSize)
    return Status::error(ErrorCode::StateMismatch, ChunkSize);
  if (BlockCount != Vol.blockCount())
    return Status::error(ErrorCode::StateMismatch, BlockCount);

  struct StagedChunk {
    Volume::ChunkRecord Record;
    ByteVector Block;
  };
  std::vector<StagedChunk> Staged;
  Staged.reserve(ChunkCount);
  std::vector<Volume::ChunkRecord> Records;
  Records.reserve(ChunkCount);
  std::unordered_set<std::uint64_t> SeenLocations;
  for (std::uint64_t I = 0; I < ChunkCount; ++I) {
    Volume::ChunkRecord Record;
    std::uint32_t EncodedSize;
    std::array<std::uint8_t, Fingerprint::Size> Digest;
    if (!Reader.readLe64(Record.Location) ||
        !Reader.readLe32(EncodedSize) || !Reader.readLe32(Record.Refs) ||
        !Reader.readBytes(Digest.data(), Digest.size()))
      return Status::error(ErrorCode::ImageCorrupt);
    Record.Fp = Fingerprint(Digest);
    ByteSpan Block;
    if (!Reader.readSpan(EncodedSize, Block))
      return Status::error(ErrorCode::ImageCorrupt);
    if (!decodeBlock(Block))
      return Status::error(ErrorCode::ImageCorrupt, Record.Location);
    if (!SeenLocations.insert(Record.Location).second)
      return Status::error(ErrorCode::ImageCorrupt, Record.Location);
    if (Pipeline.store().contains(Record.Location))
      return Status::error(ErrorCode::StateMismatch, Record.Location);
    Staged.push_back({Record, ByteVector(Block.begin(), Block.end())});
    Records.push_back(Record);
  }

  std::vector<std::uint64_t> Mapping(BlockCount, Volume::Unmapped);
  for (std::uint64_t I = 0; I < MappedCount; ++I) {
    std::uint64_t Lba, Location;
    if (!Reader.readLe64(Lba) || !Reader.readLe64(Location))
      return Status::error(ErrorCode::ImageCorrupt);
    if (Lba >= BlockCount)
      return Status::error(ErrorCode::ImageCorrupt, Lba);
    Mapping[Lba] = Location;
  }
  Volume::SnapshotTable Snapshots;
  std::uint64_t SnapshotCount;
  if (!Reader.readLe64(SnapshotCount))
    return Status::error(ErrorCode::ImageCorrupt);
  for (std::uint64_t S = 0; S < SnapshotCount; ++S) {
    std::uint64_t Id, SnapMapped;
    if (!Reader.readLe64(Id) || !Reader.readLe64(SnapMapped))
      return Status::error(ErrorCode::ImageCorrupt);
    std::vector<std::uint64_t> SnapMapping(BlockCount, Volume::Unmapped);
    for (std::uint64_t I = 0; I < SnapMapped; ++I) {
      std::uint64_t Lba, Location;
      if (!Reader.readLe64(Lba) || !Reader.readLe64(Location))
        return Status::error(ErrorCode::ImageCorrupt);
      if (Lba >= BlockCount)
        return Status::error(ErrorCode::ImageCorrupt, Lba);
      SnapMapping[Lba] = Location;
    }
    Snapshots.emplace_back(Id, std::move(SnapMapping));
  }
  std::uint64_t NextSnapshotId;
  if (!Reader.readLe64(NextSnapshotId))
    return Status::error(ErrorCode::ImageCorrupt);
  // The counter must be ahead of every live snapshot: a value that
  // would reissue a live id is structurally inconsistent.
  for (const auto &[Id, SnapMapping] : Snapshots)
    if (Id >= NextSnapshotId)
      return Status::error(ErrorCode::ImageCorrupt, Id);
  if (!Reader.atEnd())
    return Status::error(ErrorCode::ImageCorrupt, Reader.position());

  //===------------------------------------------------------------===//
  // Phase 2 — apply. restoreState runs first (it checks its own
  // preconditions before mutating, and a shared tracker is the one
  // failure phase 1 cannot see); the chunk placements that follow are
  // pre-validated above and cannot fail.
  //===------------------------------------------------------------===//
  if (!Vol.restoreState(std::move(Mapping), Records, std::move(Snapshots),
                        NextSnapshotId))
    return Status::error(ErrorCode::StateMismatch);
  for (StagedChunk &Chunk : Staged) {
    const bool Placed = Pipeline.restoreChunk(
        Chunk.Record.Location, std::move(Chunk.Block), Chunk.Record.Fp);
    assert(Placed && "Pre-validated chunk placement failed");
    (void)Placed;
  }
  return {};
}

ImageResult padre::saveVolumeImage(const std::string &Path,
                                   const Volume &Vol,
                                   const ReductionPipeline &Pipeline) {
  // Build the image in memory (images are store-sized, i.e. small in
  // this reproduction), then write once.
  ByteVector Image;
  if (const Status St = encodeVolumeImage(Vol, Pipeline, Image); !St)
    return ImageResult::failure(
        St, "chunk " + std::to_string(St.detail()) +
                " missing from the store");

  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return ImageResult::failure(Status::error(ErrorCode::IoError),
                                "cannot open " + Path + " for writing");
  const std::size_t Written =
      std::fwrite(Image.data(), 1, Image.size(), File);
  const bool CloseOk = std::fclose(File) == 0;
  if (Written != Image.size() || !CloseOk)
    return ImageResult::failure(Status::error(ErrorCode::IoError),
                                "short write to " + Path);
  return ImageResult::success();
}

ImageResult padre::loadVolumeImage(const std::string &Path,
                                   ReductionPipeline &Pipeline,
                                   Volume &Vol) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return ImageResult::failure(Status::error(ErrorCode::IoError),
                                "cannot open " + Path);
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size < 0) {
    std::fclose(File);
    return ImageResult::failure(Status::error(ErrorCode::IoError),
                                "cannot size " + Path);
  }
  ByteVector Image(static_cast<std::size_t>(Size));
  const std::size_t Read = std::fread(Image.data(), 1, Image.size(), File);
  std::fclose(File);
  if (Read != Image.size())
    return ImageResult::failure(Status::error(ErrorCode::IoError),
                                "short read from " + Path);

  if (const Status St =
          decodeVolumeImage(ByteSpan(Image.data(), Image.size()),
                            Pipeline, Vol);
      !St)
    return ImageResult::failure(St);
  return ImageResult::success();
}
