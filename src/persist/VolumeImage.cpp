//===----------------------------------------------------------------------===//
///
/// \file
/// Volume image serialization.
///
//===----------------------------------------------------------------------===//

#include "persist/VolumeImage.h"

#include "hash/Crc32.h"

#include <cstdio>
#include <map>

using namespace padre;

namespace {

constexpr std::uint64_t ImageMagic = 0x314D494552444150ull; // "PADREIM1"
constexpr std::uint32_t ImageVersion = 2;
constexpr std::size_t SuperblockSize = 8 + 4 + 4 + 8 + 8 + 8;
constexpr std::size_t ChunkRecordHeader = 8 + 4 + 4 + Fingerprint::Size;
constexpr std::size_t MappingRecordSize = 16;

void appendLe32(ByteVector &Out, std::uint32_t Value) {
  std::uint8_t Buffer[4];
  storeLe32(Buffer, Value);
  appendBytes(Out, ByteSpan(Buffer, 4));
}

void appendLe64(ByteVector &Out, std::uint64_t Value) {
  std::uint8_t Buffer[8];
  storeLe64(Buffer, Value);
  appendBytes(Out, ByteSpan(Buffer, 8));
}

/// Bounds-checked sequential reader over the loaded image.
class ImageReader {
public:
  explicit ImageReader(ByteSpan Data) : Data(Data) {}

  bool readLe32(std::uint32_t &Value) {
    if (Position + 4 > Data.size())
      return false;
    Value = loadLe32(Data.data() + Position);
    Position += 4;
    return true;
  }
  bool readLe64(std::uint64_t &Value) {
    if (Position + 8 > Data.size())
      return false;
    Value = loadLe64(Data.data() + Position);
    Position += 8;
    return true;
  }
  bool readBytes(std::uint8_t *Out, std::size_t Count) {
    if (Position + Count > Data.size())
      return false;
    std::copy(Data.begin() + Position, Data.begin() + Position + Count,
              Out);
    Position += Count;
    return true;
  }
  bool readSpan(std::size_t Count, ByteSpan &Out) {
    if (Position + Count > Data.size())
      return false;
    Out = Data.subspan(Position, Count);
    Position += Count;
    return true;
  }
  std::size_t position() const { return Position; }
  bool atEnd() const { return Position == Data.size(); }

private:
  ByteSpan Data;
  std::size_t Position = 0;
};

} // namespace

ImageResult padre::saveVolumeImage(const std::string &Path,
                                   const Volume &Vol,
                                   const ReductionPipeline &Pipeline) {
  // Build the image in memory (images are store-sized, i.e. small in
  // this reproduction), then write once.
  const std::vector<Volume::ChunkRecord> Records = Vol.chunkRecords();
  const std::vector<std::uint64_t> &Mapping = Vol.mapping();
  std::uint64_t MappedCount = 0;
  for (std::uint64_t Location : Mapping)
    MappedCount += Location != Volume::Unmapped;

  ByteVector Image;
  Image.reserve(SuperblockSize + Pipeline.store().storedBytes() +
                Records.size() * ChunkRecordHeader +
                MappedCount * MappingRecordSize + 4);
  appendLe64(Image, ImageMagic);
  appendLe32(Image, ImageVersion);
  appendLe32(Image, static_cast<std::uint32_t>(Vol.blockSize()));
  appendLe64(Image, Vol.blockCount());
  appendLe64(Image, Records.size());
  appendLe64(Image, MappedCount);

  for (const Volume::ChunkRecord &Record : Records) {
    const auto Block = Pipeline.store().encodedBlock(Record.Location);
    if (!Block)
      return ImageResult::failure("chunk " +
                                  std::to_string(Record.Location) +
                                  " missing from the store");
    appendLe64(Image, Record.Location);
    appendLe32(Image, static_cast<std::uint32_t>(Block->size()));
    appendLe32(Image, Record.Refs);
    appendBytes(Image, ByteSpan(Record.Fp.bytes().data(),
                                Fingerprint::Size));
    appendBytes(Image, *Block);
  }

  for (std::uint64_t Lba = 0; Lba < Mapping.size(); ++Lba) {
    if (Mapping[Lba] == Volume::Unmapped)
      continue;
    appendLe64(Image, Lba);
    appendLe64(Image, Mapping[Lba]);
  }

  // Snapshot tables (format v2): id + sparse mapping each.
  const Volume::SnapshotTable Snapshots = Vol.snapshotTable();
  appendLe64(Image, Snapshots.size());
  for (const auto &[Id, SnapMapping] : Snapshots) {
    appendLe64(Image, Id);
    std::uint64_t SnapMapped = 0;
    for (std::uint64_t Location : SnapMapping)
      SnapMapped += Location != Volume::Unmapped;
    appendLe64(Image, SnapMapped);
    for (std::uint64_t Lba = 0; Lba < SnapMapping.size(); ++Lba) {
      if (SnapMapping[Lba] == Volume::Unmapped)
        continue;
      appendLe64(Image, Lba);
      appendLe64(Image, SnapMapping[Lba]);
    }
  }

  appendLe32(Image, crc32c(ByteSpan(Image.data(), Image.size())));

  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return ImageResult::failure("cannot open " + Path + " for writing");
  const std::size_t Written =
      std::fwrite(Image.data(), 1, Image.size(), File);
  const bool CloseOk = std::fclose(File) == 0;
  if (Written != Image.size() || !CloseOk)
    return ImageResult::failure("short write to " + Path);
  return ImageResult::success();
}

ImageResult padre::loadVolumeImage(const std::string &Path,
                                   ReductionPipeline &Pipeline,
                                   Volume &Vol) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return ImageResult::failure("cannot open " + Path);
  std::fseek(File, 0, SEEK_END);
  const long Size = std::ftell(File);
  std::fseek(File, 0, SEEK_SET);
  if (Size < static_cast<long>(SuperblockSize + 4)) {
    std::fclose(File);
    return ImageResult::failure("image too small");
  }
  ByteVector Image(static_cast<std::size_t>(Size));
  const std::size_t Read = std::fread(Image.data(), 1, Image.size(), File);
  std::fclose(File);
  if (Read != Image.size())
    return ImageResult::failure("short read from " + Path);

  // Whole-file integrity first.
  const std::uint32_t StoredCrc = loadLe32(Image.data() + Image.size() - 4);
  if (crc32c(ByteSpan(Image.data(), Image.size() - 4)) != StoredCrc)
    return ImageResult::failure("image CRC mismatch (corrupt file)");

  ImageReader Reader(ByteSpan(Image.data(), Image.size() - 4));
  std::uint64_t Magic, BlockCount, ChunkCount, MappedCount;
  std::uint32_t Version, ChunkSize;
  if (!Reader.readLe64(Magic) || !Reader.readLe32(Version) ||
      !Reader.readLe32(ChunkSize) || !Reader.readLe64(BlockCount) ||
      !Reader.readLe64(ChunkCount) || !Reader.readLe64(MappedCount))
    return ImageResult::failure("truncated superblock");
  if (Magic != ImageMagic)
    return ImageResult::failure("not a padre volume image");
  if (Version != ImageVersion)
    return ImageResult::failure("unsupported image version " +
                                std::to_string(Version));
  if (ChunkSize != Pipeline.config().ChunkSize)
    return ImageResult::failure("chunk size mismatch");
  if (BlockCount != Vol.blockCount())
    return ImageResult::failure("volume geometry mismatch");

  std::vector<Volume::ChunkRecord> Records;
  Records.reserve(ChunkCount);
  for (std::uint64_t I = 0; I < ChunkCount; ++I) {
    Volume::ChunkRecord Record;
    std::uint32_t EncodedSize;
    std::array<std::uint8_t, Fingerprint::Size> Digest;
    if (!Reader.readLe64(Record.Location) ||
        !Reader.readLe32(EncodedSize) || !Reader.readLe32(Record.Refs) ||
        !Reader.readBytes(Digest.data(), Digest.size()))
      return ImageResult::failure("truncated chunk record");
    Record.Fp = Fingerprint(Digest);
    ByteSpan Block;
    if (!Reader.readSpan(EncodedSize, Block))
      return ImageResult::failure("truncated chunk payload");
    if (!decodeBlock(Block))
      return ImageResult::failure("corrupt chunk block at location " +
                                  std::to_string(Record.Location));
    if (!Pipeline.restoreChunk(Record.Location,
                               ByteVector(Block.begin(), Block.end()),
                               Record.Fp))
      return ImageResult::failure("duplicate chunk location " +
                                  std::to_string(Record.Location));
    Records.push_back(Record);
  }

  std::vector<std::uint64_t> Mapping(BlockCount, Volume::Unmapped);
  for (std::uint64_t I = 0; I < MappedCount; ++I) {
    std::uint64_t Lba, Location;
    if (!Reader.readLe64(Lba) || !Reader.readLe64(Location))
      return ImageResult::failure("truncated mapping record");
    if (Lba >= BlockCount)
      return ImageResult::failure("mapping LBA out of range");
    Mapping[Lba] = Location;
  }
  Volume::SnapshotTable Snapshots;
  std::uint64_t SnapshotCount;
  if (!Reader.readLe64(SnapshotCount))
    return ImageResult::failure("truncated snapshot count");
  for (std::uint64_t S = 0; S < SnapshotCount; ++S) {
    std::uint64_t Id, SnapMapped;
    if (!Reader.readLe64(Id) || !Reader.readLe64(SnapMapped))
      return ImageResult::failure("truncated snapshot header");
    std::vector<std::uint64_t> SnapMapping(BlockCount, Volume::Unmapped);
    for (std::uint64_t I = 0; I < SnapMapped; ++I) {
      std::uint64_t Lba, Location;
      if (!Reader.readLe64(Lba) || !Reader.readLe64(Location))
        return ImageResult::failure("truncated snapshot record");
      if (Lba >= BlockCount)
        return ImageResult::failure("snapshot LBA out of range");
      SnapMapping[Lba] = Location;
    }
    Snapshots.emplace_back(Id, std::move(SnapMapping));
  }
  if (!Reader.atEnd())
    return ImageResult::failure("trailing bytes after snapshot tables");

  if (!Vol.restoreState(std::move(Mapping), Records,
                        std::move(Snapshots)))
    return ImageResult::failure("volume state restore rejected");
  return ImageResult::success();
}
