//===----------------------------------------------------------------------===//
///
/// \file
/// Volume image persistence: serializes a volume (LBA mapping +
/// reference table) together with its pipeline's chunk store into a
/// single self-validating file, and restores both — rebuilding the
/// dedup index from the persisted fingerprints so dedup continues
/// across remounts.
///
/// Image format (little-endian):
///   superblock: u64 magic "PADREIM1", u32 version, u32 chunk size,
///               u64 block count, u64 chunk count, u64 mapped count
///   chunk records: u64 location, u32 encoded size, u32 refs,
///                  20-byte fingerprint, encoded block bytes
///   mapping records: u64 lba, u64 location   (mapped LBAs only)
///   trailer: u32 CRC-32C over everything before it
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_PERSIST_VOLUMEIMAGE_H
#define PADRE_PERSIST_VOLUMEIMAGE_H

#include "core/Volume.h"

#include <string>

namespace padre {

/// Outcome of an image operation; `Ok` is true on success and
/// `Message` carries a human-readable reason otherwise.
struct ImageResult {
  bool Ok = false;
  std::string Message;

  static ImageResult success() { return ImageResult{true, ""}; }
  static ImageResult failure(std::string Why) {
    return ImageResult{false, std::move(Why)};
  }
};

/// Writes \p Vol (and its pipeline's chunk store) to \p Path.
ImageResult saveVolumeImage(const std::string &Path, const Volume &Vol,
                            const ReductionPipeline &Pipeline);

/// Restores an image into a *freshly constructed* \p Pipeline /
/// \p Vol pair with matching chunk size and block count. Rebuilds the
/// dedup index from the persisted fingerprints. On failure nothing is
/// guaranteed about the pair's state; rebuild before retrying.
ImageResult loadVolumeImage(const std::string &Path,
                            ReductionPipeline &Pipeline, Volume &Vol);

} // namespace padre

#endif // PADRE_PERSIST_VOLUMEIMAGE_H
