//===----------------------------------------------------------------------===//
///
/// \file
/// Volume image persistence: serializes a volume (LBA mapping +
/// reference table) together with its pipeline's chunk store into a
/// single self-validating file, and restores both — rebuilding the
/// dedup index from the persisted fingerprints so dedup continues
/// across remounts.
///
/// Image format (little-endian):
///   superblock: u64 magic "PADREIM1", u32 version, u32 chunk size,
///               u64 block count, u64 chunk count, u64 mapped count
///   chunk records: u64 location, u32 encoded size, u32 refs,
///                  20-byte fingerprint, encoded block bytes
///   mapping records: u64 lba, u64 location   (mapped LBAs only)
///   snapshot tables: u64 count, then per snapshot u64 id,
///                    u64 mapped count, sparse mapping records
///   snapshot-id counter: u64 next snapshot id (monotonic across
///                        deletes — not derivable from the tables)
///   trailer: u32 CRC-32C over everything before it
///
/// The span-based encode/decode pair is the primitive layer — the
/// journal's checkpoints embed images through it (src/journal) — and
/// the file-path functions are thin wrappers. Decoding is two-phase:
/// the entire image is parsed and validated (CRC, bounds, geometry,
/// block decode, duplicate locations) before the first mutation, so a
/// rejected image leaves the Pipeline/Vol pair exactly as it was.
///
//===----------------------------------------------------------------------===//

#ifndef PADRE_PERSIST_VOLUMEIMAGE_H
#define PADRE_PERSIST_VOLUMEIMAGE_H

#include "core/Volume.h"
#include "fault/Status.h"

#include <string>

namespace padre {

/// Outcome of a file-level image operation. A thin shim over the typed
/// `fault::Status` the persist layer reports with (PR 3): `Ok`/
/// `Message` keep the original source-compatible surface, `Status`
/// carries the machine-readable code + detail.
struct ImageResult {
  bool Ok = false;
  std::string Message;
  fault::Status Status;

  static ImageResult success() { return ImageResult{true, "", {}}; }
  static ImageResult failure(fault::Status St, std::string Why = "");
};

/// Serializes \p Vol (and its pipeline's chunk store) by appending the
/// complete image — trailer CRC included — to \p Out. Fails (without
/// touching \p Out beyond possible reserved capacity) only when a
/// tracked chunk is missing from the store.
fault::Status encodeVolumeImage(const Volume &Vol,
                                const ReductionPipeline &Pipeline,
                                ByteVector &Out);

/// Restores an image into a *freshly constructed* \p Pipeline / \p Vol
/// pair with matching chunk size and block count, rebuilding the dedup
/// index from the persisted fingerprints. Two-phase: every check runs
/// before the first mutation, so on any error the pair is untouched
/// and remains usable (e.g. for a retry with a repaired image).
/// Errors: ImageCorrupt (CRC/bounds/decode/duplicate-location),
/// StateMismatch (version, chunk size, geometry, occupied location,
/// shared tracker).
fault::Status decodeVolumeImage(ByteSpan Image, ReductionPipeline &Pipeline,
                                Volume &Vol);

/// Writes \p Vol (and its pipeline's chunk store) to \p Path.
ImageResult saveVolumeImage(const std::string &Path, const Volume &Vol,
                            const ReductionPipeline &Pipeline);

/// Loads \p Path and restores it via decodeVolumeImage (same atomic
/// failure contract: a corrupt image leaves the pair untouched).
ImageResult loadVolumeImage(const std::string &Path,
                            ReductionPipeline &Pipeline, Volume &Vol);

} // namespace padre

#endif // PADRE_PERSIST_VOLUMEIMAGE_H
