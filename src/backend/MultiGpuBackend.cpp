//===----------------------------------------------------------------------===//
///
/// \file
/// N-GPU backend implementation.
///
//===----------------------------------------------------------------------===//

#include "backend/MultiGpuBackend.h"

#include "backend/GpuBackend.h"

#include <algorithm>
#include <cassert>

using namespace padre;
using namespace padre::backend;

static CompressEngineConfig gpuConfig(CompressEngineConfig Engine) {
  Engine.Backend = CompressBackend::GpuLane;
  return Engine;
}

MultiGpuBackend::MultiGpuBackend(const CostModel &Model,
                                 ResourceLedger &Ledger, ThreadPool &Pool,
                                 GpuDevice &Primary,
                                 CompressEngineConfig Engine,
                                 const obs::ObsSinks &Obs,
                                 fault::FaultInjector *Faults,
                                 unsigned Devices)
    : Model(Model), Ledger(Ledger) {
  assert(Devices >= 2 && "Use GpuBackend for a single device");
  assert(Primary.present() && "Multi-GPU backend without a modelled GPU");
  const CompressEngineConfig Config = gpuConfig(Engine);
  Units.resize(Devices);
  for (unsigned K = 0; K < Devices; ++K) {
    Unit &U = Units[K];
    if (K == 0) {
      // Device 0 replays on the resource lanes themselves, exactly as
      // the single-GPU backend does.
      U.Device = &Primary;
      U.GpuLane = static_cast<unsigned>(Resource::Gpu);
      U.PcieLane = static_cast<unsigned>(Resource::Pcie);
    } else {
      U.Owned = std::make_unique<GpuDevice>(Model, Ledger);
      U.Device = U.Owned.get();
      U.Device->setDeviceIndex(K);
      U.Device->setMixedMode(Primary.mixedMode());
      U.Device->setObs(Obs);
      if (Faults)
        U.Device->setFaultInjector(Faults);
      // Each extra device gets its own queue lane and its own modelled
      // PCIe link lane (point-to-point links, one per device).
      U.GpuLane = Ledger.addTimelineLane(Resource::Gpu);
      U.PcieLane = Ledger.addTimelineLane(Resource::Pcie);
    }
    U.Engine = std::make_unique<CompressEngine>(Model, Ledger, Pool,
                                                U.Device, Config, Obs);
  }
  NameStr = "gpu" + std::to_string(Devices);
  SpanNameStr = "backend:" + NameStr;
  Caps.Name = NameStr.c_str();
  Caps.SpanName = SpanNameStr.c_str();
  Caps.DeviceCount = Devices;
}

double MultiGpuBackend::quoteCompressUs(std::uint64_t Bytes,
                                        std::size_t Chunks) const {
  // Ideal static partition: each device compresses 1/N of the slice on
  // its own link and queue; the shared CPU refinement does not divide.
  const unsigned N = deviceCount();
  const double OneDeviceUs = gpuQuoteCompressUs(
      Model, Bytes / N, (Chunks + N - 1) / N);
  return OneDeviceUs;
}

void MultiGpuBackend::executeSlice(
    std::span<const ChunkView> Chunks, std::size_t Begin, std::size_t End,
    std::vector<CompressedChunk> &Out,
    std::vector<BatchScheduler::CompressSlice> &Slices, bool) {
  if (Begin >= End)
    return;
  const std::size_t SubBatch =
      std::max<std::size_t>(1, Model.Gpu.CompressBatchChunks);
  const unsigned N = deviceCount();
  // Round-robin sub-batches over devices, executed grouped by device
  // (per-chunk outputs are disjoint, so execution order is free) with
  // that device's op log armed across its whole chain — the chain then
  // replays on the device's own lanes with its own staging, every
  // device's first upload ready at dedup-done (independent domains).
  for (unsigned K = 0; K < N; ++K) {
    Unit &U = Units[K];
    BatchScheduler::CompressSlice Slice;
    Slice.GpuLane = U.GpuLane;
    Slice.PcieLane = U.PcieLane;
    Slice.Staging = &U.Device->staging();
    const double CpuBeforeUs = Ledger.busyMicros(Resource::CpuPool);
    U.Device->setOpLog(&Slice.Ops);
    std::size_t Index = 0;
    for (std::size_t B = Begin; B < End; B += SubBatch, ++Index) {
      if (Index % N != K)
        continue;
      U.Engine->compressSlice(Chunks, B, std::min(End, B + SubBatch), Out);
    }
    U.Device->setOpLog(nullptr);
    Slice.CpuUs = Ledger.busyMicros(Resource::CpuPool) - CpuBeforeUs;
    if (!Slice.Ops.empty() || Slice.CpuUs > 0.0)
      Slices.push_back(std::move(Slice));
  }
}

std::uint64_t MultiGpuBackend::rawFallbacks() const {
  std::uint64_t Total = 0;
  for (const Unit &U : Units)
    Total += U.Engine->rawFallbacks();
  return Total;
}

std::uint64_t MultiGpuBackend::deviceFallbacks() const {
  std::uint64_t Total = 0;
  for (const Unit &U : Units)
    Total += U.Engine->gpuFallbackCount();
  return Total;
}

void MultiGpuBackend::resetTimelineState() {
  // The scheduler's reset covers device 0's staging; the extra
  // devices' slots rewind here, in the same lockstep.
  for (Unit &U : Units)
    if (U.Owned)
      U.Owned->staging().reset();
}
